package sofya

// Benchmark harness: one benchmark per experiment of DESIGN.md §4 (E1 =
// the paper's Table 1, E2–E7 the extension ablations) plus
// micro-benchmarks of the substrates. The experiment benchmarks run on
// the tiny world so that `go test -bench=.` finishes in minutes; the
// paper-scale numbers are produced by `go run ./cmd/experiments -spec
// paper` and recorded in EXPERIMENTS.md.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sofya/internal/core"
	"sofya/internal/endpoint"
	"sofya/internal/experiments"
	"sofya/internal/paris"
	"sofya/internal/sampling"
	"sofya/internal/sparql"
	"sofya/internal/strsim"
	"sofya/internal/synth"
)

var (
	benchWorldOnce sync.Once
	benchWorld     *synth.World
)

func world(b *testing.B) *synth.World {
	b.Helper()
	benchWorldOnce.Do(func() { benchWorld = synth.Generate(synth.TinySpec()) })
	return benchWorld
}

func benchSetup(b *testing.B) *experiments.Setup {
	return experiments.NewSetup(world(b))
}

// E1 — Table 1: the three method rows.
func BenchmarkTable1_PCABaseline(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(experiments.DbpToYago, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_CWABaseline(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(experiments.DbpToYago, core.CWAConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_UBS(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(experiments.DbpToYago, core.UBSConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_FullBothDirections(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(s); err != nil {
			b.Fatal(err)
		}
	}
}

// E2 — sample-size sweep.
func BenchmarkSampleSizeSweep(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SampleSizeSweep(s, []int{2, 10, 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 — threshold sweep over the threshold-0 baseline run.
func BenchmarkThresholdSweep(b *testing.B) {
	s := benchSetup(b)
	res, err := experiments.Table1(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ThresholdSweep(res)
	}
}

// E4 — query-budget accounting.
func BenchmarkQueryBudget(b *testing.B) {
	s := benchSetup(b)
	res, err := experiments.Table1(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.QueryBudget(s, res)
	}
}

// E5 — sameAs-coverage sensitivity.
func BenchmarkSameAsCoverage(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SameAsCoverage(s, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 — UBS strategy ablation.
func BenchmarkUBSAblation(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UBSAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — snapshot (PARIS-style) baseline.
func BenchmarkSnapshotBaseline(b *testing.B) {
	w := world(b)
	links := sampling.LinkView{Links: w.Links, KIsA: true}
	for i := 0; i < b.N; i++ {
		paris.Align(w.Yago, w.Dbp, links, paris.DefaultConfig())
	}
}

// --- micro-benchmarks of the substrates ---

func BenchmarkAlignRelation_UBS(b *testing.B) {
	w := world(b)
	k := endpoint.NewLocal(w.Yago, 1)
	kp := endpoint.NewLocal(w.Dbp, 2)
	a := core.New(k, kp, sampling.LinkView{Links: w.Links, KIsA: true}, core.UBSConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AlignRelation("http://yago-knowledge.org/resource/directedBy"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		synth.Generate(synth.TinySpec())
	}
}

func BenchmarkSPARQLParse(b *testing.B) {
	q := `SELECT DISTINCT ?x ?y WHERE {
		?x <http://x/p> ?y .
		?y <http://x/q> ?z .
		FILTER NOT EXISTS { ?x <http://x/r> ?z }
		FILTER (?x != ?y && STRLEN(STR(?x)) > 3)
	} ORDER BY RAND() LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPARQLSelectIndexed(b *testing.B) {
	w := world(b)
	e := sparql.NewEngine(w.Yago)
	q := sparql.MustParse(
		`SELECT ?y WHERE { <http://yago-knowledge.org/resource/The_Nocturne_of_the_Shadow_0> ?p ?y }`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPARQLSelectScan(b *testing.B) {
	w := world(b)
	e := sparql.NewEngine(w.Yago)
	q := sparql.MustParse(
		`SELECT ?x ?y WHERE { ?x <http://yago-knowledge.org/resource/created> ?y } ORDER BY RAND() LIMIT 50`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndpointSelect(b *testing.B) {
	w := world(b)
	ep := endpoint.NewLocal(w.Yago, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ep.Select(`SELECT ?x ?y WHERE { ?x <http://yago-knowledge.org/resource/wasBornIn> ?y } LIMIT 20`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- prepared templates vs text interpolation ---
//
// The pair below measures the PR's tentpole claim directly: the same
// probe (the aligner's predicates-between shape) through the seed-style
// text path — Sprintf, parse, plan, evaluate — and through a prepared
// template that binds two TermID registers. Run with -benchmem; the
// prepared path must win on both ns/op and allocs/op.

func benchProbeEntities(b *testing.B) (x, y string) {
	w := world(b)
	k := w.Yago
	rels := k.Relations()
	for _, p := range rels {
		for _, s := range k.SubjectsWith(p) {
			objs := k.ObjectsOf(s, p)
			if len(objs) > 0 && k.Term(objs[0]).IsIRI() {
				return k.Term(s).Value, k.Term(objs[0]).Value
			}
		}
	}
	b.Skip("no entity-entity fact")
	return "", ""
}

func BenchmarkQueryTextPath(b *testing.B) {
	w := world(b)
	ep := endpoint.NewLocal(w.Yago, 1)
	x, y := benchProbeEntities(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("SELECT ?p WHERE { <%s> ?p <%s> }", x, y)
		if _, err := ep.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryPreparedPath(b *testing.B) {
	w := world(b)
	ep := endpoint.NewLocal(w.Yago, 1)
	x, y := benchProbeEntities(b)
	pq, err := ep.Prepare("SELECT ?p WHERE { $x ?p $y }", "x", "y")
	if err != nil {
		b.Fatal(err)
	}
	ax, ay := sparql.IRIArg(x), sparql.IRIArg(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pq.Select(ax, ay); err != nil {
			b.Fatal(err)
		}
	}
}

// The sampling shape with its RAND() stream: prepared vs text.
func BenchmarkSampleTextPath(b *testing.B) {
	w := world(b)
	ep := endpoint.NewLocal(w.Yago, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT %d",
			"http://yago-knowledge.org/resource/wasBornIn", 50)
		if _, err := ep.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplePreparedPath(b *testing.B) {
	w := world(b)
	ep := endpoint.NewLocal(w.Yago, 1)
	pq, err := ep.Prepare(sampling.TmplSample, "r", "n")
	if err != nil {
		b.Fatal(err)
	}
	r := sparql.IRIArg("http://yago-knowledge.org/resource/wasBornIn")
	n := sparql.IntArg(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pq.Select(r, n); err != nil {
			b.Fatal(err)
		}
	}
}

// DISTINCT dedup over TermID keys (was: string concatenation per row).
func BenchmarkSPARQLDistinct(b *testing.B) {
	w := world(b)
	e := sparql.NewEngine(w.Yago)
	q := sparql.MustParse(`SELECT DISTINCT ?x WHERE { ?x ?p ?y }`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}

// KB freeze cost, for sizing the load → serve transition.
func BenchmarkKBFreeze(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := synth.Generate(synth.TinySpec())
		b.StartTimer()
		w.Yago.Freeze()
	}
}

func BenchmarkSimpleSampling(b *testing.B) {
	w := world(b)
	v := &sampling.Validator{
		K:       endpoint.NewLocal(w.Yago, 1),
		KPrime:  endpoint.NewLocal(w.Dbp, 2),
		Links:   sampling.LinkView{Links: w.Links, KIsA: true},
		Matcher: strsim.DefaultMatcher(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := v.SimpleEvidence(
			"http://dbpedia.org/property/birthPlace",
			"http://yago-knowledge.org/resource/wasBornIn", 10)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnbiasedSampling(b *testing.B) {
	w := world(b)
	v := &sampling.Validator{
		K:      endpoint.NewLocal(w.Yago, 1),
		KPrime: endpoint.NewLocal(w.Dbp, 2),
		Links:  sampling.LinkView{Links: w.Links, KIsA: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := v.Contradictions(sampling.BodySide,
			"http://dbpedia.org/property/hasDirector",
			"http://dbpedia.org/property/hasProducer",
			"http://yago-knowledge.org/resource/directedBy", 14)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiteralMatcher(b *testing.B) {
	m := strsim.DefaultMatcher()
	a := NewLiteral("Frank_Sinatra_Jr")
	c := NewLangLiteral("Frank Sinatra Jr", "en")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(a, c)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		strsim.Levenshtein("The Cathedral of the Orchard", "The Cathedrel of the Orchad")
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		strsim.JaroWinkler("The Cathedral of the Orchard", "The Cathedrel of the Orchad")
	}
}

func BenchmarkKBHasFact(b *testing.B) {
	w := world(b)
	k := w.Yago
	rels := k.Relations()
	p := rels[len(rels)/2]
	subs := k.SubjectsWith(p)
	if len(subs) == 0 {
		b.Skip("empty relation")
	}
	s := subs[0]
	o := k.ObjectsOf(s, p)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.HasFact(s, p, o) {
			b.Fatal("fact vanished")
		}
	}
}

func BenchmarkKBLoadNTriples(b *testing.B) {
	w := world(b)
	var sb strings.Builder
	if err := w.Yago.WriteNT(&sb); err != nil {
		b.Fatal(err)
	}
	data := sb.String()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadKB("bench", strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batch alignment: sequential vs parallel over shared caches ---

func benchBatchRelations(b *testing.B) []string {
	return world(b).Report.YagoRelations
}

// Baseline for the batch benchmarks: every relation aligned one after
// another against undecorated endpoints (Parallelism = 1).
func BenchmarkAlignRelationsSequential(b *testing.B) {
	w := world(b)
	rels := benchBatchRelations(b)
	cfg := core.UBSConfig()
	cfg.Parallelism = 1
	for i := 0; i < b.N; i++ {
		k := endpoint.NewLocal(w.Yago, 1)
		kp := endpoint.NewLocal(w.Dbp, 2)
		a := core.New(k, kp, sampling.LinkView{Links: w.Links, KIsA: true}, cfg)
		if _, err := a.AlignRelations(rels); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(k.Stats().Queries+kp.Stats().Queries), "queries/op")
		}
	}
}

// The tentpole configuration: relations aligned concurrently over
// shared Caching+Coalescing endpoints. Identical output, fewer
// endpoint queries (reported as queries/op), less wall clock.
func BenchmarkAlignRelationsParallelShared(b *testing.B) {
	w := world(b)
	rels := benchBatchRelations(b)
	cfg := core.UBSConfig()
	cfg.Parallelism = 0 // GOMAXPROCS
	for i := 0; i < b.N; i++ {
		k := endpoint.NewLocal(w.Yago, 1)
		kp := endpoint.NewLocal(w.Dbp, 2)
		qk := endpoint.NewCoalescing(endpoint.NewCaching(k, 0))
		qkp := endpoint.NewCoalescing(endpoint.NewCaching(kp, 0))
		a := core.New(qk, qkp, sampling.LinkView{Links: w.Links, KIsA: true}, cfg)
		if _, err := a.AlignRelations(rels); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(k.Stats().Queries+kp.Stats().Queries), "queries/op")
		}
	}
}

// One relation, endpoint decorators only (no batch): measures the
// decorator overhead on a cold cache.
func BenchmarkAlignRelationDecorated(b *testing.B) {
	w := world(b)
	cfg := core.UBSConfig()
	for i := 0; i < b.N; i++ {
		qk := endpoint.NewCoalescing(endpoint.NewCaching(endpoint.NewLocal(w.Yago, 1), 0))
		qkp := endpoint.NewCoalescing(endpoint.NewCaching(endpoint.NewLocal(w.Dbp, 2), 0))
		a := core.New(qk, qkp, sampling.LinkView{Links: w.Links, KIsA: true}, cfg)
		if _, err := a.AlignRelation("http://yago-knowledge.org/resource/directedBy"); err != nil {
			b.Fatal(err)
		}
	}
}

// The caching decorator on a warm cache: repeated identical queries.
func BenchmarkCachingEndpointHit(b *testing.B) {
	w := world(b)
	ep := endpoint.NewCaching(endpoint.NewLocal(w.Yago, 1), 0)
	q := `SELECT ?x ?y WHERE { ?x <http://yago-knowledge.org/resource/wasBornIn> ?y } LIMIT 20`
	if _, err := ep.Select(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ep.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}
