// Command kbgen generates the synthetic YAGO/DBpedia evaluation world
// and writes it to disk: two N-Triples files, the sameAs link file
// consumed by cmd/sofya, the gold-standard alignment pairs, and the
// relation/report sidecars cmd/experiments needs to reload the world.
//
//	kbgen -spec paper -out ./world
//
// With -snapshot, each KB (and each shard, with -shards) is also
// written as a binary snapshot (*.snap) that kb.OpenSnapshot serves by
// memory-mapping — cmd/sparqld, cmd/sofya and cmd/experiments restart
// from snapshots without re-parsing or re-indexing:
//
//	kbgen -spec paper -out ./world -snapshot -shards 3
//	sparqld -snapshot './world/yago-shard-*-of-3.snap'
//	experiments -world ./world -e table1
//
// With -candidates, a candidate-index sidecar (<kb>-candidates.idx) is
// additionally written for each alignment direction, so cmd/sofya
// -candidates -candidx skips the per-relation sampling pass on start
// the same way snapshots skip the N-Triples parse:
//
//	kbgen -spec paper -out ./world -snapshot -candidates
//	sofya -k world/yago.snap -kprime world/dbpedia.snap -links world/links.tsv \
//	      -all -candidates -candidx world/dbpedia-candidates.idx
//
// The sidecar is fingerprinted against the target inventory and index
// options; consumers fall back to a fresh build when it is stale. It is
// sampled through endpoint seed 2 — cmd/sofya's K' default — so the
// loaded index is the one sofya would have built.
//
// Shard N-Triples files need the <name>-planstats.tsv sidecar to plan
// like the whole KB (kb.ReadPlanStatsFile + KB.SetPlanStats); shard
// snapshots embed those statistics and are self-contained.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sofya/internal/candidates"
	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sampling"
	"sofya/internal/synth"
)

func main() {
	var (
		specName = flag.String("spec", "tiny", "world size: tiny | paper")
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 0, "override the spec's seed (0 keeps default)")
		shards   = flag.Int("shards", 1, "additionally write each KB partitioned into this many subject-hash shard files (kb-shard-i-of-n.nt)")
		snapshot = flag.Bool("snapshot", false, "also write binary KB snapshots (*.snap) loadable by mmap, including per-shard snapshots with -shards")
		cands    = flag.Bool("candidates", false, "also write candidate-index sidecars (<kb>-candidates.idx) for both alignment directions, loadable by sofya -candidx")
		parallel = flag.Int("parallel", 0, "sampling fan-out for -candidates index builds (0 = GOMAXPROCS)")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "kbgen:", err)
		os.Exit(1)
	}

	spec := synth.TinySpec()
	if *specName == "paper" {
		spec = synth.DefaultSpec()
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	w := synth.Generate(spec)

	if err := synth.SaveWorld(w, *out, synth.SaveOptions{Snapshots: *snapshot, Shards: *shards}); err != nil {
		fatal(err)
	}
	if *cands {
		// One sidecar per alignment direction: the index is over the
		// body-side (target) inventory, translated through the links as
		// that direction's aligner will sample it.
		for _, dir := range []struct {
			target *kb.KB
			links  sampling.LinkView
		}{
			{w.Dbp, sampling.LinkView{Links: w.Links, KIsA: true}},   // yago ⇐ dbpedia (sofya d2y)
			{w.Yago, sampling.LinkView{Links: w.Links, KIsA: false}}, // dbpedia ⇐ yago (sofya y2d)
		} {
			path, err := writeCandidateIndex(*out, dir.target, dir.links, *parallel)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	fmt.Printf("wrote %s: yago %d facts / %d relations, dbpedia %d facts / %d relations, %d links, %d gold pairs\n",
		*out, w.Report.YagoFacts, len(w.Report.YagoRelations),
		w.Report.DbpFacts, len(w.Report.DbpRelations),
		w.Report.SameAsLinks, len(w.Truth.DbpToYago)+len(w.Truth.YagoToDbp))
}

// writeCandidateIndex builds the candidate index over target (sampling
// through endpoint seed 2, cmd/sofya's K'-side default, so the sidecar
// reproduces the index sofya would build) and writes it atomically as
// <out>/<kbname>-candidates.idx.
func writeCandidateIndex(out string, target *kb.KB, links sampling.LinkView, parallel int) (string, error) {
	ep := endpoint.NewLocal(target, 2)
	rels, err := candidates.Relations(ep)
	if err != nil {
		return "", err
	}
	ix, err := candidates.Build(ep, rels, links, candidates.Options{Parallelism: parallel})
	if err != nil {
		return "", err
	}
	path := filepath.Join(out, target.Name()+"-candidates.idx")
	if err := ix.WriteIndexFile(path); err != nil {
		return "", err
	}
	return path, nil
}
