// Command kbgen generates the synthetic YAGO/DBpedia evaluation world
// and writes it to disk: two N-Triples snapshots, the sameAs link file
// consumed by cmd/sofya, and the gold-standard alignment pairs.
//
//	kbgen -spec paper -out ./world
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sofya/internal/synth"
)

func main() {
	var (
		specName = flag.String("spec", "tiny", "world size: tiny | paper")
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 0, "override the spec's seed (0 keeps default)")
	)
	flag.Parse()

	spec := synth.TinySpec()
	if *specName == "paper" {
		spec = synth.DefaultSpec()
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	w := synth.Generate(spec)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := w.Yago.WriteFile(filepath.Join(*out, "yago.nt")); err != nil {
		fatal(err)
	}
	if err := w.Dbp.WriteFile(filepath.Join(*out, "dbpedia.nt")); err != nil {
		fatal(err)
	}
	if err := writeLinks(w, filepath.Join(*out, "links.tsv")); err != nil {
		fatal(err)
	}
	if err := writeTruth(w, filepath.Join(*out, "truth.tsv")); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: yago %d facts / %d relations, dbpedia %d facts / %d relations, %d links, %d gold pairs\n",
		*out, w.Report.YagoFacts, len(w.Report.YagoRelations),
		w.Report.DbpFacts, len(w.Report.DbpRelations),
		w.Report.SameAsLinks, len(w.Truth.DbpToYago)+len(w.Truth.YagoToDbp))
}

func writeLinks(w *synth.World, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, p := range w.Links.Pairs() {
		if _, err := fmt.Fprintf(f, "%s\t%s\n", p.A, p.B); err != nil {
			return err
		}
	}
	return nil
}

func writeTruth(w *synth.World, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, p := range w.Truth.DbpToYago {
		kind := "subsumed"
		if p.Equivalent {
			kind = "equivalent"
		}
		if _, err := fmt.Fprintf(f, "d2y\t%s\t%s\t%s\n", p.Body, p.Head, kind); err != nil {
			return err
		}
	}
	for _, p := range w.Truth.YagoToDbp {
		kind := "subsumed"
		if p.Equivalent {
			kind = "equivalent"
		}
		if _, err := fmt.Fprintf(f, "y2d\t%s\t%s\t%s\n", p.Body, p.Head, kind); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kbgen:", err)
	os.Exit(1)
}
