// Command kbgen generates the synthetic YAGO/DBpedia evaluation world
// and writes it to disk: two N-Triples files, the sameAs link file
// consumed by cmd/sofya, the gold-standard alignment pairs, and the
// relation/report sidecars cmd/experiments needs to reload the world.
//
//	kbgen -spec paper -out ./world
//
// With -snapshot, each KB (and each shard, with -shards) is also
// written as a binary snapshot (*.snap) that kb.OpenSnapshot serves by
// memory-mapping — cmd/sparqld, cmd/sofya and cmd/experiments restart
// from snapshots without re-parsing or re-indexing:
//
//	kbgen -spec paper -out ./world -snapshot -shards 3
//	sparqld -snapshot './world/yago-shard-*-of-3.snap'
//	experiments -world ./world -e table1
//
// Shard N-Triples files need the <name>-planstats.tsv sidecar to plan
// like the whole KB (kb.ReadPlanStatsFile + KB.SetPlanStats); shard
// snapshots embed those statistics and are self-contained.
package main

import (
	"flag"
	"fmt"
	"os"

	"sofya/internal/synth"
)

func main() {
	var (
		specName = flag.String("spec", "tiny", "world size: tiny | paper")
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 0, "override the spec's seed (0 keeps default)")
		shards   = flag.Int("shards", 1, "additionally write each KB partitioned into this many subject-hash shard files (kb-shard-i-of-n.nt)")
		snapshot = flag.Bool("snapshot", false, "also write binary KB snapshots (*.snap) loadable by mmap, including per-shard snapshots with -shards")
	)
	flag.Parse()

	spec := synth.TinySpec()
	if *specName == "paper" {
		spec = synth.DefaultSpec()
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	w := synth.Generate(spec)

	if err := synth.SaveWorld(w, *out, synth.SaveOptions{Snapshots: *snapshot, Shards: *shards}); err != nil {
		fmt.Fprintln(os.Stderr, "kbgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: yago %d facts / %d relations, dbpedia %d facts / %d relations, %d links, %d gold pairs\n",
		*out, w.Report.YagoFacts, len(w.Report.YagoRelations),
		w.Report.DbpFacts, len(w.Report.DbpRelations),
		w.Report.SameAsLinks, len(w.Truth.DbpToYago)+len(w.Truth.YagoToDbp))
}
