// Command kbgen generates the synthetic YAGO/DBpedia evaluation world
// and writes it to disk: two N-Triples snapshots, the sameAs link file
// consumed by cmd/sofya, and the gold-standard alignment pairs.
//
//	kbgen -spec paper -out ./world
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sofya/internal/kb"
	"sofya/internal/synth"
)

func main() {
	var (
		specName = flag.String("spec", "tiny", "world size: tiny | paper")
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 0, "override the spec's seed (0 keeps default)")
		shards   = flag.Int("shards", 1, "additionally write each KB partitioned into this many subject-hash shard files (kb-shard-i-of-n.nt)")
	)
	flag.Parse()

	spec := synth.TinySpec()
	if *specName == "paper" {
		spec = synth.DefaultSpec()
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	w := synth.Generate(spec)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := w.Yago.WriteFile(filepath.Join(*out, "yago.nt")); err != nil {
		fatal(err)
	}
	if err := w.Dbp.WriteFile(filepath.Join(*out, "dbpedia.nt")); err != nil {
		fatal(err)
	}
	if err := writeLinks(w, filepath.Join(*out, "links.tsv")); err != nil {
		fatal(err)
	}
	if err := writeTruth(w, filepath.Join(*out, "truth.tsv")); err != nil {
		fatal(err)
	}
	if *shards > 1 {
		// The N-Triples partitioner: per-shard snapshot files that load
		// directly into the Local endpoints of a federation group.
		if err := writeShards(w.Yago, "yago", *out, *shards); err != nil {
			fatal(err)
		}
		if err := writeShards(w.Dbp, "dbpedia", *out, *shards); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %s: yago %d facts / %d relations, dbpedia %d facts / %d relations, %d links, %d gold pairs\n",
		*out, w.Report.YagoFacts, len(w.Report.YagoRelations),
		w.Report.DbpFacts, len(w.Report.DbpRelations),
		w.Report.SameAsLinks, len(w.Truth.DbpToYago)+len(w.Truth.YagoToDbp))
}

// writeShards partitions base by subject hash and writes one N-Triples
// file per shard, plus the whole-KB planner-statistics sidecar
// (<name>-planstats.tsv). The partition is deterministic
// (kb.SubjectShard of the canonical subject term), so re-running — or
// partitioning on another machine — reproduces identical shard files.
// To rebuild a byte-identical federation group from the files, load
// each shard and install the sidecar with kb.ReadPlanStatsFile +
// KB.SetPlanStats before serving — shard triples alone plan with local
// cardinalities and can diverge from the unsharded engine.
func writeShards(base *kb.KB, name, out string, n int) error {
	for i, sh := range kb.Partition(base, n) {
		path := filepath.Join(out, fmt.Sprintf("%s-shard-%d-of-%d.nt", name, i, n))
		if err := sh.WriteFile(path); err != nil {
			return err
		}
	}
	return base.WritePlanStatsFile(filepath.Join(out, name+"-planstats.tsv"))
}

func writeLinks(w *synth.World, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, p := range w.Links.Pairs() {
		if _, err := fmt.Fprintf(f, "%s\t%s\n", p.A, p.B); err != nil {
			return err
		}
	}
	return nil
}

func writeTruth(w *synth.World, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, p := range w.Truth.DbpToYago {
		kind := "subsumed"
		if p.Equivalent {
			kind = "equivalent"
		}
		if _, err := fmt.Fprintf(f, "d2y\t%s\t%s\t%s\n", p.Body, p.Head, kind); err != nil {
			return err
		}
	}
	for _, p := range w.Truth.YagoToDbp {
		kind := "subsumed"
		if p.Equivalent {
			kind = "equivalent"
		}
		if _, err := fmt.Fprintf(f, "y2d\t%s\t%s\t%s\n", p.Body, p.Head, kind); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kbgen:", err)
	os.Exit(1)
}
