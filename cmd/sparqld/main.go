// Command sparqld serves a knowledge base over the SPARQL 1.1 HTTP
// protocol, optionally with public-endpoint-style access restrictions —
// the remote side of the paper's setting.
//
//	sparqld -kb yago.nt -addr :8890 -max-rows 10000
//	sparqld -synthetic tiny -side dbp -addr :8890
//
// Restarts are fastest from binary snapshots (cmd/kbgen -snapshot):
// a whole-KB snapshot is memory-mapped and served with zero parse or
// re-index cost, and a set of per-shard snapshots stands a federated
// endpoint group back up in milliseconds:
//
//	sparqld -snapshot world/yago.snap
//	sparqld -snapshot 'world/yago-shard-*-of-3.snap'
//
// Cluster mode splits one logical KB across processes. Each data node
// serves one subject-hash shard (-shard-of i/n partitions the loaded
// KB; a single kbgen shard snapshot works too), and a front-end
// federates them over the network, with replica failover, health
// probing and optional hedged reads:
//
//	sparqld -synthetic tiny -shard-of 0/3 -addr :9000
//	sparqld -synthetic tiny -shard-of 1/3 -addr :9001
//	sparqld -synthetic tiny -shard-of 2/3 -addr :9002
//	sparqld -peers 'http://localhost:9000,http://localhost:9001,http://localhost:9002' \
//	        -cluster-name tiny/yago -addr :8890
//
// Replicas of a shard are pipe-separated within its comma slot:
// -peers 'http://a:9000|http://b:9000,http://a:9001|http://b:9001'.
//
// Every sparqld exposes observability endpoints next to the query
// handler: /healthz (the cluster prober's liveness answer), /debug/vars
// (expvar: query/row/latency counters, per-replica health) and
// /debug/pprof/* (live profiling).
//
// The server enforces read-header and idle timeouts (a stalled client
// cannot pin a connection forever) and drains in-flight queries on
// SIGINT/SIGTERM before exiting.
//
// Query it with curl:
//
//	curl --data-urlencode 'query=SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5' http://localhost:8890/
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sofya/internal/cluster"
	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/shard"
	"sofya/internal/synth"
)

func main() {
	var (
		kbPath     = flag.String("kb", "", "N-Triples file to serve")
		snapshot   = flag.String("snapshot", "", "binary snapshot(s) to serve: a path, comma list or glob; a complete kbgen shard set is served as a federation group")
		synthetic  = flag.String("synthetic", "", "serve a synthetic world instead: tiny | paper")
		side       = flag.String("side", "yago", "synthetic side: yago | dbp")
		addr       = flag.String("addr", ":8890", "listen address")
		maxQueries = flag.Int("max-queries", 0, "session query budget (0 = unlimited)")
		maxRows    = flag.Int("max-rows", 10000, "row cap per SELECT (0 = unlimited)")
		seed       = flag.Int64("seed", 1, "RAND() seed")
		shards     = flag.Int("shards", 1, "serve the KB as this many subject-hash shards behind a federating group")
		shardOf    = flag.String("shard-of", "", "serve only shard i of an n-way subject-hash partition, as 'i/n' (data node of a cluster)")
		peers      = flag.String("peers", "", "federate remote shard endpoints instead of serving a KB: comma-separated shards, pipe-separated replicas per shard")
		clusterNm  = flag.String("cluster-name", "kb", "logical KB name a -peers front-end serves under (must match the name the shards were partitioned from)")
		hedge      = flag.Duration("hedge", 0, "hedged reads: re-issue to another replica after this delay (0 = off)")
		hedgePct   = flag.Float64("hedge-pct", 0, "hedged reads: derive the hedge delay from this latency percentile in (0,1) once enough samples exist")
		probeEvery = flag.Duration("probe-every", 2*time.Second, "replica health probe interval for a -peers front-end (0 = off)")
		failAfter  = flag.Int("fail-after", 3, "consecutive failures before a replica is ejected")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window on SIGINT/SIGTERM")

		maxInflight  = flag.Int("max-inflight", 0, "admission control: concurrent queries allowed (0 = unlimited); excess is queued then shed as 429")
		queue        = flag.Int("queue", 0, "admission control: callers allowed to wait for a slot once -max-inflight is reached")
		queueTimeout = flag.Duration("queue-timeout", 0, "admission control: how long a queued caller waits before it is shed (0 = until a slot frees)")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
	quota := endpoint.Quota{MaxQueries: *maxQueries, MaxRows: *maxRows}

	var serve endpoint.Endpoint
	var clusterGroup *cluster.Group
	var base *kb.KB
	switch {
	case *peers != "":
		if *kbPath != "" || *snapshot != "" || *synthetic != "" {
			fatal(fmt.Errorf("-peers is a pure front-end; it takes no -kb/-snapshot/-synthetic"))
		}
		shardURLs := parsePeers(*peers)
		opt := cluster.Options{
			HedgeDelay:      *hedge,
			HedgePercentile: *hedgePct,
			FailAfter:       *failAfter,
			ProbeInterval:   *probeEvery,
		}
		g, err := cluster.FromURLs(*clusterNm, *seed, shardURLs, opt, shard.RowCap(*maxRows))
		if err != nil {
			fatal(err)
		}
		clusterGroup = g
		serve = g
		defer g.Close()
		log.Printf("sparqld: federating %q over %d remote shard(s) on %s (hedge=%s probe=%s)",
			*clusterNm, len(shardURLs), *addr, *hedge, *probeEvery)
	case *snapshot != "":
		paths, err := snapshotPaths(*snapshot)
		if err != nil {
			fatal(err)
		}
		if len(paths) == 0 {
			fatal(fmt.Errorf("-snapshot %q matches no files", *snapshot))
		}
		if len(paths) > 1 {
			// A shard set restarts as a federation group; each snapshot
			// embeds the whole KB's planner statistics, so the group is
			// byte-identical to the endpoint that wrote the shards.
			g, err := shard.GroupFromSnapshotsRestricted(*seed, quota, paths)
			if err != nil {
				fatal(err)
			}
			serve = g
			log.Printf("sparqld: serving %q from %d mapped shard snapshot(s) on %s", g.Name(), len(paths), *addr)
			break
		}
		if base, err = kb.OpenSnapshot(paths[0]); err != nil {
			fatal(err)
		}
		if i, n, ok := shard.PartitionIndex(base.Name()); ok && n > 1 {
			// A lone shard file must not masquerade as the whole KB —
			// unless this process is that shard's data node.
			if *shardOf == fmt.Sprintf("%d/%d", i, n) {
				serve = endpoint.NewLocalRestricted(base, *seed, quota)
				log.Printf("sparqld: serving shard %q (%d facts, mmap=%v) on %s", base.Name(), base.Size(), base.Mapped(), *addr)
				*shardOf = "" // consumed
				break
			}
			fatal(fmt.Errorf("%s holds shard %q of a %d-shard set; pass the complete set or -shard-of %d/%d", paths[0], base.Name(), n, i, n))
		}
	case *synthetic != "":
		spec := synth.TinySpec()
		if *synthetic == "paper" {
			spec = synth.DefaultSpec()
		}
		w := synth.Generate(spec)
		base = w.Yago
		if *side == "dbp" {
			base = w.Dbp
		}
	case *kbPath != "":
		var err error
		if base, err = kb.LoadFile("kb", *kbPath); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "sparqld: need -kb <file>, -snapshot <file(s)>, -synthetic tiny|paper or -peers <urls>")
		os.Exit(2)
	}

	if serve == nil && *shardOf != "" {
		i, n, err := parseShardOf(*shardOf)
		if err != nil {
			fatal(err)
		}
		part := kb.Partition(base, n)[i]
		serve = endpoint.NewLocalRestricted(part, *seed, quota)
		log.Printf("sparqld: serving shard %q (%d of %d facts) on %s", part.Name(), part.Size(), base.Size(), *addr)
	}
	if serve == nil {
		if *shards > 1 {
			serve = shard.PartitionedRestricted(base, *shards, *seed, quota)
		} else {
			serve = endpoint.NewLocalRestricted(base, *seed, quota)
		}
		log.Printf("sparqld: serving %q (%d facts, %d relations, %d shard(s), mmap=%v) on %s",
			base.Name(), base.Size(), len(base.Relations()), *shards, base.Mapped(), *addr)
	}
	var adm *endpoint.Admission
	if *maxInflight > 0 {
		// Admission wraps the whole serving stack (single endpoint,
		// shard group or cluster front-end alike): at most -max-inflight
		// queries execute at once, -queue callers wait (for at most
		// -queue-timeout), and everything past that is shed as HTTP 429
		// with the overload marker — retriable, so hedged cluster
		// clients fail over to a less-loaded replica.
		adm = endpoint.NewAdmission(serve, endpoint.Limits{
			MaxInFlight:  *maxInflight,
			Queue:        *queue,
			QueueTimeout: *queueTimeout,
		})
		serve = adm
		log.Printf("sparqld: admission control: max-inflight=%d queue=%d queue-timeout=%s",
			*maxInflight, *queue, *queueTimeout)
	}
	mux := newServingMux(serve, clusterGroup, adm)
	if err := serveHTTP(*addr, mux, *drain); err != nil {
		fatal(err)
	}
	log.Print("sparqld: shut down cleanly")
}

// reqMetrics counts the query handler's traffic for /debug/vars.
type reqMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64 // non-2xx answers
	totalNS  atomic.Int64
	maxNS    atomic.Int64
}

// statusRecorder captures the handler's status code for the metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (the wire protocol needs them).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newServingMux assembles the serving surface: the query handler at /,
// liveness at /healthz, expvar counters at /debug/vars, and pprof under
// /debug/pprof/ — the "measured, not asserted" serving contract.
func newServingMux(serve endpoint.Endpoint, cg *cluster.Group, adm *endpoint.Admission) *http.ServeMux {
	m := &reqMetrics{}
	sparqlHandler := endpoint.NewServerEndpoint(serve)
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		sparqlHandler.ServeHTTP(rec, r)
		d := time.Since(start).Nanoseconds()
		m.requests.Add(1)
		m.totalNS.Add(d)
		for {
			max := m.maxNS.Load()
			if d <= max || m.maxNS.CompareAndSwap(max, d) {
				break
			}
		}
		if rec.status >= 400 {
			m.errors.Add(1)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"endpoint": serve.Name(),
			"requests": m.requests.Load(),
		})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	publishVars(serve, cg, adm, m)
	return mux
}

// publishVars exposes the endpoint's counters over expvar: HTTP request
// latency, endpoint query/row statistics, admission-control sheds, and
// (for a cluster front-end) per-replica health and traffic.
func publishVars(serve endpoint.Endpoint, cg *cluster.Group, adm *endpoint.Admission, m *reqMetrics) {
	expvar.Publish("sofya", expvar.Func(func() any {
		vars := map[string]any{
			"endpoint": serve.Name(),
			"http": map[string]int64{
				"requests":         m.requests.Load(),
				"errors":           m.errors.Load(),
				"total_latency_ns": m.totalNS.Load(),
				"max_latency_ns":   m.maxNS.Load(),
			},
		}
		if sr, ok := serve.(endpoint.StatsReporter); ok {
			st := sr.Stats()
			vars["queries"] = st.Queries
			vars["rows"] = st.Rows
			vars["truncations"] = st.Truncations
			vars["denied"] = st.Denied
		}
		if adm != nil {
			st := adm.AdmissionStats()
			vars["admission"] = map[string]any{
				"admitted":        st.Admitted,
				"queued":          st.Queued,
				"shed":            st.Shed(),
				"shed_queue_full": st.ShedQueueFull,
				"shed_timeout":    st.ShedTimeout,
				"in_flight":       st.InFlight,
				"waiting":         st.Waiting,
			}
		}
		if cg != nil {
			var sets []any
			for i, set := range cg.ReplicaSets() {
				var reps []any
				for _, st := range set.Status() {
					reps = append(reps, map[string]any{
						"name":     st.Name,
						"healthy":  st.Healthy,
						"fails":    st.Fails,
						"requests": st.Requests,
						"errors":   st.Errors,
					})
				}
				sets = append(sets, map[string]any{"shard": i, "replicas": reps})
			}
			vars["cluster"] = sets
		}
		return vars
	}))
}

// parsePeers splits a -peers argument: commas separate shards, pipes
// separate a shard's replicas.
func parsePeers(arg string) [][]string {
	var shards [][]string
	for _, slot := range strings.Split(arg, ",") {
		var reps []string
		for _, u := range strings.Split(slot, "|") {
			if u = strings.TrimSpace(u); u != "" {
				reps = append(reps, u)
			}
		}
		if len(reps) > 0 {
			shards = append(shards, reps)
		}
	}
	return shards
}

// parseShardOf parses a -shard-of 'i/n' argument.
func parseShardOf(arg string) (i, n int, err error) {
	if _, err := fmt.Sscanf(arg, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -shard-of %q: want 'i/n'", arg)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard-of %q: need 0 <= i < n", arg)
	}
	return i, n, nil
}

// serveHTTP runs handler on a configured http.Server — read-header and
// idle timeouts instead of the bare ListenAndServe defaults — and
// drains in-flight requests for up to the drain window when SIGINT or
// SIGTERM arrives, force-closing whatever remains after it.
func serveHTTP(addr string, handler http.Handler, drain time.Duration) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("sparqld: %s received, draining for up to %s", s, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		if err != nil {
			// Drain window elapsed with connections still open: close
			// them rather than hang the restart.
			err = errors.Join(err, srv.Close())
		}
		done <- err
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// snapshotPaths expands a -snapshot argument: comma-separated parts,
// each a literal path or a glob pattern. A malformed pattern is an
// error, not a literal path — the open failure it would turn into
// later points at the wrong problem.
func snapshotPaths(arg string) ([]string, error) {
	var paths []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		matches, err := filepath.Glob(part)
		if err != nil {
			return nil, fmt.Errorf("bad -snapshot pattern %q: %w", part, err)
		}
		if len(matches) > 0 {
			paths = append(paths, matches...)
			continue
		}
		paths = append(paths, part)
	}
	return paths, nil
}
