// Command sparqld serves a knowledge base over the SPARQL 1.1 HTTP
// protocol, optionally with public-endpoint-style access restrictions —
// the remote side of the paper's setting.
//
//	sparqld -kb yago.nt -addr :8890 -max-rows 10000
//	sparqld -synthetic tiny -side dbp -addr :8890
//
// Restarts are fastest from binary snapshots (cmd/kbgen -snapshot):
// a whole-KB snapshot is memory-mapped and served with zero parse or
// re-index cost, and a set of per-shard snapshots stands a federated
// endpoint group back up in milliseconds:
//
//	sparqld -snapshot world/yago.snap
//	sparqld -snapshot 'world/yago-shard-*-of-3.snap'
//
// The server enforces read-header and idle timeouts (a stalled client
// cannot pin a connection forever) and drains in-flight queries on
// SIGINT/SIGTERM before exiting.
//
// Query it with curl:
//
//	curl --data-urlencode 'query=SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5' http://localhost:8890/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/shard"
	"sofya/internal/synth"
)

func main() {
	var (
		kbPath     = flag.String("kb", "", "N-Triples file to serve")
		snapshot   = flag.String("snapshot", "", "binary snapshot(s) to serve: a path, comma list or glob; a complete kbgen shard set is served as a federation group")
		synthetic  = flag.String("synthetic", "", "serve a synthetic world instead: tiny | paper")
		side       = flag.String("side", "yago", "synthetic side: yago | dbp")
		addr       = flag.String("addr", ":8890", "listen address")
		maxQueries = flag.Int("max-queries", 0, "session query budget (0 = unlimited)")
		maxRows    = flag.Int("max-rows", 10000, "row cap per SELECT (0 = unlimited)")
		seed       = flag.Int64("seed", 1, "RAND() seed")
		shards     = flag.Int("shards", 1, "serve the KB as this many subject-hash shards behind a federating group")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window on SIGINT/SIGTERM")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
	quota := endpoint.Quota{MaxQueries: *maxQueries, MaxRows: *maxRows}

	var serve endpoint.Endpoint
	var base *kb.KB
	switch {
	case *snapshot != "":
		paths, err := snapshotPaths(*snapshot)
		if err != nil {
			fatal(err)
		}
		if len(paths) == 0 {
			fatal(fmt.Errorf("-snapshot %q matches no files", *snapshot))
		}
		if len(paths) > 1 {
			// A shard set restarts as a federation group; each snapshot
			// embeds the whole KB's planner statistics, so the group is
			// byte-identical to the endpoint that wrote the shards.
			g, err := shard.GroupFromSnapshotsRestricted(*seed, quota, paths)
			if err != nil {
				fatal(err)
			}
			serve = g
			log.Printf("sparqld: serving %q from %d mapped shard snapshot(s) on %s", g.Name(), len(paths), *addr)
			break
		}
		if base, err = kb.OpenSnapshot(paths[0]); err != nil {
			fatal(err)
		}
		// A lone shard file must not masquerade as the whole KB (e.g. a
		// glob that matched only one shard of a partially copied set).
		if _, n, ok := shard.PartitionIndex(base.Name()); ok && n > 1 {
			fatal(fmt.Errorf("%s holds shard %q of a %d-shard set; pass the complete set", paths[0], base.Name(), n))
		}
	case *synthetic != "":
		spec := synth.TinySpec()
		if *synthetic == "paper" {
			spec = synth.DefaultSpec()
		}
		w := synth.Generate(spec)
		base = w.Yago
		if *side == "dbp" {
			base = w.Dbp
		}
	case *kbPath != "":
		var err error
		if base, err = kb.LoadFile("kb", *kbPath); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "sparqld: need -kb <file>, -snapshot <file(s)> or -synthetic tiny|paper")
		os.Exit(2)
	}

	if serve == nil {
		if *shards > 1 {
			serve = shard.PartitionedRestricted(base, *shards, *seed, quota)
		} else {
			serve = endpoint.NewLocalRestricted(base, *seed, quota)
		}
		log.Printf("sparqld: serving %q (%d facts, %d relations, %d shard(s), mmap=%v) on %s",
			base.Name(), base.Size(), len(base.Relations()), *shards, base.Mapped(), *addr)
	}
	if err := serveHTTP(*addr, endpoint.NewServerEndpoint(serve), *drain); err != nil {
		fatal(err)
	}
	log.Print("sparqld: shut down cleanly")
}

// serveHTTP runs handler on a configured http.Server — read-header and
// idle timeouts instead of the bare ListenAndServe defaults — and
// drains in-flight requests for up to the drain window when SIGINT or
// SIGTERM arrives, force-closing whatever remains after it.
func serveHTTP(addr string, handler http.Handler, drain time.Duration) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("sparqld: %s received, draining for up to %s", s, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		if err != nil {
			// Drain window elapsed with connections still open: close
			// them rather than hang the restart.
			err = errors.Join(err, srv.Close())
		}
		done <- err
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// snapshotPaths expands a -snapshot argument: comma-separated parts,
// each a literal path or a glob pattern. A malformed pattern is an
// error, not a literal path — the open failure it would turn into
// later points at the wrong problem.
func snapshotPaths(arg string) ([]string, error) {
	var paths []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		matches, err := filepath.Glob(part)
		if err != nil {
			return nil, fmt.Errorf("bad -snapshot pattern %q: %w", part, err)
		}
		if len(matches) > 0 {
			paths = append(paths, matches...)
			continue
		}
		paths = append(paths, part)
	}
	return paths, nil
}
