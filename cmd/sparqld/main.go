// Command sparqld serves a knowledge base over the SPARQL 1.1 HTTP
// protocol, optionally with public-endpoint-style access restrictions —
// the remote side of the paper's setting.
//
//	sparqld -kb yago.nt -addr :8890 -max-rows 10000
//	sparqld -synthetic tiny -side dbp -addr :8890
//
// Query it with curl:
//
//	curl --data-urlencode 'query=SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5' http://localhost:8890/
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/shard"
	"sofya/internal/synth"
)

func main() {
	var (
		kbPath     = flag.String("kb", "", "N-Triples file to serve")
		synthetic  = flag.String("synthetic", "", "serve a synthetic world instead: tiny | paper")
		side       = flag.String("side", "yago", "synthetic side: yago | dbp")
		addr       = flag.String("addr", ":8890", "listen address")
		maxQueries = flag.Int("max-queries", 0, "session query budget (0 = unlimited)")
		maxRows    = flag.Int("max-rows", 10000, "row cap per SELECT (0 = unlimited)")
		seed       = flag.Int64("seed", 1, "RAND() seed")
		shards     = flag.Int("shards", 1, "serve the KB as this many subject-hash shards behind a federating group")
	)
	flag.Parse()

	var (
		base *kb.KB
		err  error
	)
	switch {
	case *synthetic != "":
		spec := synth.TinySpec()
		if *synthetic == "paper" {
			spec = synth.DefaultSpec()
		}
		w := synth.Generate(spec)
		base = w.Yago
		if *side == "dbp" {
			base = w.Dbp
		}
	case *kbPath != "":
		base, err = kb.LoadFile("kb", *kbPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sparqld:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "sparqld: need -kb <file> or -synthetic tiny|paper")
		os.Exit(2)
	}

	quota := endpoint.Quota{MaxQueries: *maxQueries, MaxRows: *maxRows}
	var serve endpoint.Endpoint
	if *shards > 1 {
		serve = shard.PartitionedRestricted(base, *shards, *seed, quota)
	} else {
		serve = endpoint.NewLocalRestricted(base, *seed, quota)
	}
	log.Printf("sparqld: serving %q (%d facts, %d relations, %d shard(s)) on %s",
		base.Name(), base.Size(), len(base.Relations()), *shards, *addr)
	log.Fatal(http.ListenAndServe(*addr, endpoint.NewServerEndpoint(serve)))
}
