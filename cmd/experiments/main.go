// Command experiments runs the paper's evaluation (Table 1) and the
// extension ablations E2–E7 over the synthetic world, printing the
// tables recorded in EXPERIMENTS.md.
//
//	experiments -spec paper -e all
//	experiments -spec tiny -e table1,e4 -md
//	experiments -e candidates -candsizes 2000,20000,100000 -topk 16
//	experiments -e e9 -capn 20000 -caps 0,16,64,256
//
// With -world, the evaluation world is loaded from a directory written
// by cmd/kbgen instead of being regenerated; when the directory holds
// binary snapshots (kbgen -snapshot) the KBs are memory-mapped in
// milliseconds, and the experiment output is byte-identical to a
// generated run of the same spec:
//
//	kbgen -spec paper -out ./world -snapshot
//	experiments -world ./world -e table1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sofya/internal/core"
	"sofya/internal/eval"
	"sofya/internal/experiments"
	"sofya/internal/synth"
)

func main() {
	var (
		specName   = flag.String("spec", "paper", "world size: tiny | paper")
		worldDir   = flag.String("world", "", "load the world from this kbgen output directory (snapshots used when present) instead of generating it")
		which      = flag.String("e", "all", "comma-separated experiments: table1,e2,e3,e4,e5,e6,e7 (candidates and e9 run only when named: they generate their own scale worlds)")
		candSizes  = flag.String("candsizes", "2000,20000,100000", "target inventory sizes for the candidates asymptotics sweep")
		topk       = flag.Int("topk", 16, "candidate top-k for the candidates and e9 experiments")
		caps       = flag.String("caps", "0,16,64,256", "posting caps for the e9 truncation sweep (0 = uncapped)")
		capN       = flag.Int("capn", 20000, "target inventory size for the e9 truncation sweep")
		markdown   = flag.Bool("md", false, "emit markdown tables")
		parallel   = flag.Int("parallel", 0, "aligner worker bound per run (0 = GOMAXPROCS; results are identical at any setting)")
		shards     = flag.Int("shards", 1, "serve each KB as this many subject-hash shards behind a federating group (alignment output is identical at any setting; the E4 query/row accounting reflects the per-shard fan-out)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	start := time.Now()
	var world *synth.World
	if *worldDir != "" {
		var err error
		world, err = synth.LoadWorld(*worldDir)
		check(err)
		fmt.Fprintf(os.Stderr, "# world loaded from %s in %s (yago mmap=%v, dbpedia mmap=%v)\n",
			*worldDir, time.Since(start).Round(time.Millisecond), world.Yago.Mapped(), world.Dbp.Mapped())
	} else {
		spec := synth.DefaultSpec()
		if *specName == "tiny" {
			spec = synth.TinySpec()
		}
		world = synth.Generate(spec)
	}
	setup := experiments.NewSetup(world)
	setup.Parallelism = *parallel
	setup.Shards = *shards

	want := map[string]bool{}
	for _, e := range strings.Split(*which, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	has := func(e string) bool { return want["all"] || want[e] }

	emit := func(title string, t *eval.Table) {
		fmt.Println("##", title)
		fmt.Println()
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}

	emit("World", experiments.WorldSummary(world))

	var table1 *experiments.Table1Result
	needTable1 := has("table1") || has("e3") || has("e4") || has("e7")
	if needTable1 {
		var err error
		table1, err = experiments.Table1(setup)
		check(err)
	}
	if has("table1") {
		emit("E1 — Table 1: alignment subsumptions, YAGO ↔ DBpedia", table1.Render())
	}
	if has("e2") {
		points, err := experiments.SampleSizeSweep(setup, []int{1, 2, 5, 10, 20, 50})
		check(err)
		emit("E2 — sample-size sweep (dbpd ⊂ yago)", experiments.RenderSampleSize(points))
	}
	if has("e3") {
		pca, cwa := experiments.ThresholdSweep(table1)
		emit("E3 — threshold sweep (dbpd ⊂ yago)", experiments.RenderThresholdSweep(pca, cwa))
	}
	if has("e4") {
		emit("E4 — query budget", experiments.RenderQueryBudget(experiments.QueryBudget(setup, table1)))
	}
	if has("e5") {
		points, err := experiments.SameAsCoverage(setup, []float64{0.3, 0.5, 0.7, 0.9, 1.0})
		check(err)
		emit("E5 — sameAs coverage sensitivity (UBS, dbpd ⊂ yago)", experiments.RenderCoverage(points))
	}
	if has("e6") {
		rows, err := experiments.UBSAblation(setup)
		check(err)
		emit("E6 — UBS strategy ablation", experiments.RenderAblation(rows))
	}
	if has("e7") {
		emit("E7 — on-the-fly vs snapshot", experiments.RenderSnapshot(experiments.SnapshotComparison(setup, table1)))
	}
	// The candidates experiment ignores -spec/-world: it generates its
	// own ScaleSpec worlds, whose inventories reach the sizes where
	// all-pairs candidate generation stops being viable. It is excluded
	// from "all" because the largest sweep point takes minutes.
	if want["candidates"] {
		sizes, err := parseSizes(*candSizes)
		check(err)
		points, err := experiments.CandidateAsymptotics(sizes, *topk)
		check(err)
		emit(fmt.Sprintf("E8 — candidate generation asymptotics (top-%d)", *topk),
			experiments.RenderAsymptotics(points))
		diffN := sizes[len(sizes)-1]
		diff, err := experiments.CandidateDifferential(
			experiments.NewSetup(synth.Generate(synth.ScaleSpec(diffN))),
			core.UBSConfig(), *topk, 0)
		check(err)
		emit(fmt.Sprintf("E8 — pruned vs exact alignment differential (n=%d, top-%d)", diffN, *topk),
			experiments.RenderDifferential(diff))
	}
	// E9 likewise generates its own ScaleSpec world and runs only when
	// named: it sweeps the posting cap (-caps) over a -capn inventory,
	// scoring capped probes against the exact reference.
	if want["e9"] {
		capList, err := parseCaps(*caps)
		check(err)
		points, err := experiments.PostingCapSweep(*capN, capList, *topk)
		check(err)
		emit(fmt.Sprintf("E9 — posting-cap truncation (n=%d, top-%d)", *capN, *topk),
			experiments.RenderPostingCap(points))
	}
	fmt.Fprintf(os.Stderr, "# total time %s\n", time.Since(start).Round(time.Millisecond))
}

func parseSizes(csv string) ([]int, error) {
	var sizes []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -candsizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func parseCaps(csv string) ([]int, error) {
	var caps []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -caps entry %q", s)
		}
		caps = append(caps, n)
	}
	return caps, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
