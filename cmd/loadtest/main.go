// Command loadtest measures a SPARQL endpoint's serving behavior under
// concurrent traffic: closed-loop (fixed client count, back-to-back
// requests) or open-loop (Poisson arrivals at a fixed rate) load with
// a weighted mix of probe shapes, reported as latency quantiles from a
// log-bucketed histogram plus throughput and error/shed counts.
//
// The target is either a live sparqld URL or an in-process endpoint
// (the same engine a sparqld would serve), so overload behavior can be
// measured with and without the network in the loop:
//
//	loadtest -url http://localhost:8890/ -clients 8 -duration 10s
//	loadtest -synthetic tiny -rate 500 -duration 10s
//	loadtest -snapshot world/yago.snap -sweep 1,2,4,8,16 -md
//
// A closed-loop sweep (-sweep) walks the client counts and prints the
// capacity curve; -max-inflight/-queue/-queue-timeout wrap an
// in-process target with the same admission control sparqld offers, so
// the shed-vs-collapse comparison in EXPERIMENTS.md reproduces without
// starting a server:
//
//	loadtest -synthetic paper -sweep 1,2,4,8,16 \
//	  -max-inflight 2 -queue 4 -queue-timeout 5ms -md
//
// Output is a JSON array on stdout by default; -md renders the
// EXPERIMENTS.md markdown table instead (use both to log one and paste
// the other).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/loadtest"
	"sofya/internal/synth"
)

func main() {
	var (
		url       = flag.String("url", "", "load-test a live sparqld at this base URL")
		kbPath    = flag.String("kb", "", "load-test an in-process endpoint over this N-Triples file")
		snapshot  = flag.String("snapshot", "", "load-test an in-process endpoint over this binary snapshot")
		synthetic = flag.String("synthetic", "", "load-test an in-process synthetic world: tiny | paper")
		side      = flag.String("side", "yago", "synthetic side: yago | dbp")

		rate     = flag.Float64("rate", 0, "open-loop Poisson arrival rate per second (0 = closed loop)")
		clients  = flag.Int("clients", 4, "closed-loop concurrency; open-loop outstanding-request cap")
		duration = flag.Duration("duration", 5*time.Second, "measured window per run")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "unmeasured warmup before each run")
		mix      = flag.String("mix", "", "probe mix weights, e.g. 'ask=4,scan=3,rand=2,distinct=1' (default mix when empty)")
		sweep    = flag.String("sweep", "", "closed-loop sweep over these client counts, e.g. '1,2,4,8,16'")
		seed     = flag.Int64("seed", 1, "probe-selection and arrival-schedule seed")

		maxInflight  = flag.Int("max-inflight", 0, "wrap an in-process target with admission control: concurrent-query cap (0 = off)")
		queue        = flag.Int("queue", 0, "admission wait-queue bound")
		queueTimeout = flag.Duration("queue-timeout", 0, "admission wait-queue timeout (0 = wait until a slot frees)")

		md = flag.Bool("md", false, "print the markdown table instead of JSON")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}

	ep, err := buildTarget(*url, *kbPath, *snapshot, *synthetic, *side, *seed)
	if err != nil {
		fatal(err)
	}
	if *maxInflight > 0 {
		if *url != "" {
			fatal(fmt.Errorf("-max-inflight wraps an in-process target; a live server enforces its own admission flags"))
		}
		ep = endpoint.NewAdmission(ep, endpoint.Limits{
			MaxInFlight:  *maxInflight,
			Queue:        *queue,
			QueueTimeout: *queueTimeout,
		})
	}

	probes, err := loadtest.ParseMix(*mix)
	if err != nil {
		fatal(err)
	}
	cfg := loadtest.Config{
		Rate:     *rate,
		Clients:  *clients,
		Duration: *duration,
		Warmup:   *warmup,
		Mix:      probes,
		Seed:     *seed,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var results []loadtest.Result
	if *sweep != "" {
		counts, err := parseSweep(*sweep)
		if err != nil {
			fatal(err)
		}
		if *rate > 0 {
			fatal(fmt.Errorf("-sweep is a closed-loop client sweep; it excludes -rate"))
		}
		results, err = loadtest.Sweep(ctx, ep, cfg, counts)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err := loadtest.Run(ctx, ep, cfg)
		if err != nil {
			fatal(err)
		}
		results = []loadtest.Result{*res}
	}

	if *md {
		fmt.Print(loadtest.MarkdownTable(results))
		return
	}
	out, err := loadtest.MarshalJSON(results)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// buildTarget resolves the endpoint under test: exactly one source.
func buildTarget(url, kbPath, snapshot, synthetic, side string, seed int64) (endpoint.Endpoint, error) {
	n := 0
	for _, s := range []string{url, kbPath, snapshot, synthetic} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("need exactly one of -url, -kb, -snapshot, -synthetic")
	}
	switch {
	case url != "":
		return endpoint.NewClient("target", url, nil), nil
	case snapshot != "":
		k, err := kb.OpenSnapshot(snapshot)
		if err != nil {
			return nil, err
		}
		return endpoint.NewLocal(k, seed), nil
	case kbPath != "":
		k, err := kb.LoadFile("kb", kbPath)
		if err != nil {
			return nil, err
		}
		return endpoint.NewLocal(k, seed), nil
	default:
		spec := synth.TinySpec()
		if synthetic == "paper" {
			spec = synth.DefaultSpec()
		} else if synthetic != "tiny" {
			return nil, fmt.Errorf("bad -synthetic %q: want tiny or paper", synthetic)
		}
		w := synth.Generate(spec)
		k := w.Yago
		if side == "dbp" {
			k = w.Dbp
		}
		return endpoint.NewLocal(k, seed), nil
	}
}

func parseSweep(arg string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sweep entry %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-sweep named no client counts")
	}
	return counts, nil
}
