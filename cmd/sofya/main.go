// Command sofya aligns relations between two knowledge bases reachable
// through SPARQL endpoints, reproducing the paper's on-the-fly setting.
//
// Either generate the synthetic evaluation world:
//
//	sofya -synthetic tiny -relation http://yago-knowledge.org/resource/wasBornIn
//
// or load two KB files plus a sameAs link file (two IRIs per line,
// tab-separated, head-KB entity first). A KB file is either N-Triples
// or a binary snapshot written by cmd/kbgen -snapshot / KB.WriteSnapshot
// (*.snap) — snapshots are memory-mapped and skip parsing entirely, so
// repeated runs start in milliseconds:
//
//	sofya -k yago.nt -kprime dbpedia.nt -links links.tsv -relation <iri>
//	sofya -k yago.snap -kprime dbpedia.snap -links links.tsv -all
//
// (N-Triples KBs are labeled "K" / "Kprime" in rule output; a snapshot
// keeps the KB name it was written with, e.g. "yago".)
//
// With -all, every relation of the head KB is aligned. With -batch,
// the requested relations align concurrently (bounded by -parallel)
// over caching+coalescing endpoint decorators, which deduplicate the
// endpoint traffic the concurrent aligners share; output order and
// content match the sequential run.
//
// With -candidates, each relation's candidate universe is pruned to the
// candidate index's top-k (-topk) before validation — the sub-linear
// path for large target inventories. Without it the aligner runs in
// exact mode, byte-identical to builds predating the index. -candidx
// points the aligner at a candidate-index sidecar written by kbgen
// -candidates: when its fingerprint matches the target inventory and
// options the index is restored without any sampling, and a missing,
// corrupt or stale sidecar falls back to a fresh build. -maxpostings
// caps the index's per-gram posting lists (experiment E9 measures the
// recall cost).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sofya/internal/core"
	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sameas"
	"sofya/internal/sampling"
	"sofya/internal/shard"
	"sofya/internal/synth"
)

func main() {
	var (
		synthetic = flag.String("synthetic", "", "generate a synthetic world: tiny | paper")
		direction = flag.String("direction", "d2y", "synthetic direction: d2y (dbp⊂yago) | y2d")
		kPath     = flag.String("k", "", "N-Triples file of the head-side KB K")
		kpPath    = flag.String("kprime", "", "N-Triples file of the body-side KB K'")
		linkPath  = flag.String("links", "", "sameAs links file: K-IRI<TAB>K'-IRI per line")
		relation  = flag.String("relation", "", "relation IRI of K to align")
		all       = flag.Bool("all", false, "align every relation of K")
		method    = flag.String("method", "ubs", "method: pca | cwa | ubs")
		samples   = flag.Int("samples", 10, "sample size (subject entities)")
		shards    = flag.Int("shards", 1, "partition each KB into this many subject-hash shards behind a federating endpoint group (results are identical at any setting)")
		parallel  = flag.Int("parallel", 0, "pipeline worker bound (0 = GOMAXPROCS)")
		batch     = flag.Bool("batch", false, "align relations concurrently over shared caching+coalescing endpoints")
		cands     = flag.Bool("candidates", false, "prune each relation's candidate universe to the candidate index's top-k (internal/candidates); off = exact mode")
		topk      = flag.Int("topk", 16, "candidate top-k when -candidates is set")
		candidx   = flag.String("candidx", "", "candidate-index sidecar (kbgen -candidates); loaded instead of sampling when its fingerprint matches, rebuilt otherwise")
		maxpost   = flag.Int("maxpostings", 0, "cap candidate-index posting lists at this many relations per gram (0 = uncapped; recall cost measured by experiment E9)")
		verbose   = flag.Bool("v", false, "trace aligner decisions")
		rejected  = flag.Bool("rejected", false, "also print rejected candidates")
	)
	flag.Parse()

	cfg := methodConfig(*method)
	cfg.SampleSize = *samples
	cfg.Parallelism = *parallel
	cfg.Shards = *shards
	if *cands {
		cfg.CandidateTopK = *topk
		cfg.CandidateIndexPath = *candidx
		cfg.CandidateMaxPostings = *maxpost
	}
	if *verbose {
		cfg.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	k, kp, links, err := loadKBs(*synthetic, *direction, *kPath, *kpPath, *linkPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sofya:", err)
		os.Exit(1)
	}

	// Each KB serves unsharded, or split into subject-hash shards behind
	// a federating group; either way the aligner sees one Endpoint and
	// produces identical output.
	endpointOf := func(base *kb.KB, seed int64) endpoint.Endpoint {
		if cfg.Shards > 1 {
			return shard.Partitioned(base, cfg.Shards, seed)
		}
		return endpoint.NewLocal(base, seed)
	}
	epK := endpointOf(k, 1)
	epKP := endpointOf(kp, 2)

	// In batch mode the aligner speaks to decorated endpoints: a
	// caching layer memoizes identical queries, a coalescing layer on
	// top singleflights the ones concurrent relations issue together.
	var qK, qKP endpoint.Endpoint = epK, epKP
	var cacheK, cacheKP *endpoint.Caching
	if *batch {
		cacheK = endpoint.NewCaching(epK, 0)
		cacheKP = endpoint.NewCaching(epKP, 0)
		qK = endpoint.NewCoalescing(cacheK)
		qKP = endpoint.NewCoalescing(cacheKP)
	}
	aligner := core.New(qK, qKP, links, cfg)

	var heads []string
	switch {
	case *all:
		for _, p := range k.Relations() {
			heads = append(heads, k.Term(p).Value)
		}
	case *relation != "":
		heads = []string{*relation}
	default:
		fmt.Fprintln(os.Stderr, "sofya: need -relation <iri> or -all")
		os.Exit(2)
	}

	var results [][]core.Alignment
	if *batch {
		var err error
		results, err = aligner.AlignRelations(heads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sofya:", err)
			os.Exit(1)
		}
	} else {
		for _, head := range heads {
			als, err := aligner.AlignRelation(head)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sofya:", err)
				os.Exit(1)
			}
			results = append(results, als)
		}
	}

	for _, als := range results {
		for _, al := range als {
			if !al.Accepted && !*rejected {
				continue
			}
			status := "ACCEPT"
			if !al.Accepted {
				status = "reject"
			}
			equiv := ""
			if al.Equivalent {
				equiv = "  [equivalent]"
			}
			fmt.Printf("%s  %s  conf=%.2f pca=%.2f cwa=%.2f support=%d/%d contradictions=%d%s\n",
				status, al.Rule, al.Confidence, al.PCA, al.CWA,
				al.Support, al.Evidence, al.Contradictions, equiv)
		}
	}
	statsOf := func(ep endpoint.Endpoint) endpoint.Stats {
		if sr, ok := ep.(endpoint.StatsReporter); ok {
			return sr.Stats()
		}
		return endpoint.Stats{}
	}
	sK, sKP := statsOf(epK), statsOf(epKP)
	fmt.Fprintf(os.Stderr, "# queries: K=%d K'=%d rows: K=%d K'=%d\n",
		sK.Queries, sKP.Queries, sK.Rows, sKP.Rows)
	if *batch {
		csK, csKP := cacheK.CacheStats(), cacheKP.CacheStats()
		fmt.Fprintf(os.Stderr, "# cache hits: K=%d/%d K'=%d/%d\n",
			csK.Hits, csK.Hits+csK.Misses, csKP.Hits, csKP.Hits+csKP.Misses)
	}
}

func methodConfig(method string) core.Config {
	switch strings.ToLower(method) {
	case "pca":
		return core.DefaultConfig()
	case "cwa":
		return core.CWAConfig()
	default:
		return core.UBSConfig()
	}
}

func loadKBs(synthetic, direction, kPath, kpPath, linkPath string) (*kb.KB, *kb.KB, sampling.Translator, error) {
	if synthetic != "" {
		spec := synth.TinySpec()
		if synthetic == "paper" {
			spec = synth.DefaultSpec()
		}
		w := synth.Generate(spec)
		if direction == "y2d" {
			return w.Dbp, w.Yago, sampling.LinkView{Links: w.Links, KIsA: false}, nil
		}
		return w.Yago, w.Dbp, sampling.LinkView{Links: w.Links, KIsA: true}, nil
	}
	if kPath == "" || kpPath == "" || linkPath == "" {
		return nil, nil, nil, fmt.Errorf("need -k, -kprime and -links (or -synthetic)")
	}
	k, err := loadKB("K", kPath)
	if err != nil {
		return nil, nil, nil, err
	}
	kp, err := loadKB("Kprime", kpPath)
	if err != nil {
		return nil, nil, nil, err
	}
	links, err := loadLinks(linkPath)
	if err != nil {
		return nil, nil, nil, err
	}
	return k, kp, sampling.LinkView{Links: links, KIsA: true}, nil
}

// loadKB reads a KB file: *.snap files are memory-mapped binary
// snapshots (kb.OpenSnapshot, no parsing), anything else is N-Triples.
// A per-shard snapshot is refused — it holds a fraction of the KB (but
// whole-KB planner stats) and would align confidently wrong.
func loadKB(name, path string) (*kb.KB, error) {
	if strings.HasSuffix(path, ".snap") {
		k, err := kb.OpenSnapshot(path)
		if err != nil {
			return nil, err
		}
		if _, n, ok := shard.PartitionIndex(k.Name()); ok && n > 1 {
			return nil, fmt.Errorf("%s holds shard %q of a %d-shard set, not a whole KB", path, k.Name(), n)
		}
		return k, nil
	}
	return kb.LoadFile(name, path)
}

func loadLinks(path string) (*sameas.Links, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	links := sameas.New()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want two tab-separated IRIs", path, line)
		}
		links.Add(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	}
	return links, sc.Err()
}
