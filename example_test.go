package sofya_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sofya"
)

// Align one relation of the synthetic YAGO-like KB against the
// DBpedia-like KB, on the fly — the paper's core operation.
func ExampleAligner_AlignRelation() {
	world := sofya.Generate(sofya.TinyWorldSpec())
	k := sofya.NewLocalEndpoint(world.Yago, 1) // source KB K
	kp := sofya.NewLocalEndpoint(world.Dbp, 2) // target KB K'
	links := sofya.LinkView{Links: world.Links, KIsA: true}

	aligner := sofya.NewAligner(k, kp, links, sofya.UBSConfig())
	alignments, err := aligner.AlignRelation("http://yago-knowledge.org/resource/wasBornIn")
	if err != nil {
		log.Fatal(err)
	}
	for _, al := range sofya.AcceptedAlignments(alignments) {
		fmt.Printf("%s conf=%.2f\n", al.Rule, al.Confidence)
	}
	// Output:
	// dbpedia:birthPlace(x, y) ⇒ yago:wasBornIn(x, y) conf=1.00
}

// Serve a KB as subject-hash shards behind one federating endpoint:
// the drop-in scale-out replacement for NewLocalEndpoint, with
// byte-identical answers at any shard count.
func ExampleNewShardedEndpoint() {
	world := sofya.Generate(sofya.TinyWorldSpec())
	const seed = 1
	local := sofya.NewLocalEndpoint(world.Yago, seed)
	sharded := sofya.NewShardedEndpoint(world.Yago, 3, seed)

	const probe = `SELECT ?x ?y WHERE {
		?x <http://yago-knowledge.org/resource/wasBornIn> ?y .
	} ORDER BY RAND() LIMIT 2`
	want, err := local.Select(probe)
	if err != nil {
		log.Fatal(err)
	}
	got, err := sharded.Select(probe)
	if err != nil {
		log.Fatal(err)
	}
	identical := len(got.Rows) == len(want.Rows)
	for i := range got.Rows {
		for j := range got.Rows[i] {
			identical = identical && got.Rows[i][j] == want.Rows[i][j]
		}
	}
	fmt.Printf("rows=%d identical-to-unsharded=%v\n", len(got.Rows), identical)
	// Output:
	// rows=2 identical-to-unsharded=true
}

// Persist a frozen KB as a binary snapshot and reopen it by
// memory-mapping — the instant-restart path: no N-Triples parsing, no
// re-indexing, byte-identical query answers.
func ExampleOpenKBSnapshot() {
	dir, err := os.MkdirTemp("", "sofya-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	k := sofya.NewKB("demo")
	k.AddIRIs("http://x/Marie", "http://x/bornIn", "http://x/Warsaw")
	k.AddIRIs("http://x/Marie", "http://x/field", "http://x/Physics")
	path := filepath.Join(dir, "demo.snap")
	if err := k.WriteSnapshotFile(path); err != nil {
		log.Fatal(err)
	}

	reopened, err := sofya.OpenKBSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	ep := sofya.NewLocalEndpoint(reopened, 1)
	res, err := ep.Select("SELECT ?p ?o WHERE { <http://x/Marie> ?p ?o }")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d facts served from snapshot\n", reopened.Name(), reopened.Size())
	for _, row := range res.Rows {
		fmt.Printf("%s -> %s\n", row[0].Value, row[1].Value)
	}
	// Output:
	// demo: 2 facts served from snapshot
	// http://x/bornIn -> http://x/Warsaw
	// http://x/field -> http://x/Physics
}
