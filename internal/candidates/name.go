package candidates

import (
	"math"
	"sort"

	"sofya/internal/strsim"
)

// nameIndex is the character-trigram side of the Index: an inverted
// index from grams to the relations whose local name contains them,
// with idf-weighted, L2-normalized posting weights laid out CSR-style.
//
// Scoring discipline: a relation's name score is the cosine between the
// query's and the relation's weight vectors, and both the inverted
// accumulation and the exact all-pairs scorer add the shared grams'
// contributions in ascending gram order — so the two paths produce
// bitwise-identical floats and the name signal contributes nothing to
// the approximation gap.
type nameIndex struct {
	// grams is the sorted gram vocabulary; gram ids index it.
	grams []string
	// df[g] is the number of relations containing gram g at least once.
	df []int32
	// idf[g] = log(1 + N/df); 0 for stop grams.
	idf []float64
	// stopDF is the document-frequency cutoff: grams with df >= stopDF
	// are stop grams, dropped from postings, queries and exact scoring.
	stopDF int32

	// CSR postings: for gram g, postRel/postW[gramStart[g]:gramStart[g+1]]
	// list the relations containing g (ascending id) with their
	// normalized weights.
	gramStart []int32
	postRel   []int32
	postW     []float64

	// relVec is each relation's sorted (gram id, weight) vector over
	// non-stop grams, CSR again — the exact scorer's operand.
	relStart []int32
	relGram  []int32
	relW     []float64
}

// stopCutoff is the stop-gram document-frequency cutoff for an
// inventory of n relations: MaxGramFrac of the inventory, floored at
// 32. Shared with the sidecar decoder, which cross-checks the stored
// cutoff against it.
func stopCutoff(n int, maxGramFrac float64) int32 {
	cut := int32(float64(n) * maxGramFrac)
	if cut < 32 {
		cut = 32
	}
	return cut
}

// buildNameIndex derives the trigram index from ix.rels.
func (ix *Index) buildNameIndex() {
	n := &ix.name
	N := len(ix.rels)
	relProfs := make([]*strsim.Profile, N)
	gramID := map[string]int32{}
	for i, rel := range ix.rels {
		p := profileOf(rel, ix.opt.GramN)
		relProfs[i] = p
		for _, g := range p.Grams {
			if _, ok := gramID[g]; !ok {
				gramID[g] = 0 // id assigned after sorting
			}
		}
	}
	n.grams = make([]string, 0, len(gramID))
	for g := range gramID {
		n.grams = append(n.grams, g)
	}
	sort.Strings(n.grams)
	for id, g := range n.grams {
		gramID[g] = int32(id)
	}

	n.df = make([]int32, len(n.grams))
	for _, p := range relProfs {
		for _, g := range p.Grams {
			n.df[gramID[g]]++
		}
	}
	n.stopDF = stopCutoff(N, ix.opt.MaxGramFrac)
	n.idf = make([]float64, len(n.grams))
	for g, df := range n.df {
		if df >= n.stopDF {
			continue // stop gram
		}
		n.idf[g] = math.Log(1 + float64(N)/float64(df))
	}

	// Per-relation weight vectors over non-stop grams, L2-normalized.
	n.relStart = make([]int32, N+1)
	for i, p := range relProfs {
		n.relStart[i+1] = n.relStart[i]
		for _, g := range p.Grams {
			if n.df[gramID[g]] < n.stopDF {
				n.relStart[i+1]++
			}
		}
	}
	n.relGram = make([]int32, n.relStart[N])
	n.relW = make([]float64, n.relStart[N])
	for i, p := range relProfs {
		at := n.relStart[i]
		norm := 0.0
		for j, g := range p.Grams {
			id := gramID[g]
			if n.df[id] >= n.stopDF {
				continue
			}
			w := float64(p.Counts[j]) * n.idf[id]
			n.relGram[at] = id
			n.relW[at] = w
			norm += w * w
			at++
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for j := n.relStart[i]; j < at; j++ {
				n.relW[j] /= norm
			}
		}
		// Profile grams are sorted, and gram ids are assigned in sorted
		// gram order, so relGram is ascending without re-sorting.
	}

	// Invert: postings per gram, relations ascending.
	n.gramStart = make([]int32, len(n.grams)+1)
	for i := 0; i < N; i++ {
		for j := n.relStart[i]; j < n.relStart[i+1]; j++ {
			n.gramStart[n.relGram[j]+1]++
		}
	}
	for g := 0; g < len(n.grams); g++ {
		n.gramStart[g+1] += n.gramStart[g]
	}
	n.postRel = make([]int32, n.relStart[N])
	n.postW = make([]float64, n.relStart[N])
	fill := append([]int32(nil), n.gramStart[:len(n.grams)]...)
	for i := 0; i < N; i++ {
		for j := n.relStart[i]; j < n.relStart[i+1]; j++ {
			g := n.relGram[j]
			n.postRel[fill[g]] = int32(i)
			n.postW[fill[g]] = n.relW[j]
			fill[g]++
		}
	}

	if ix.opt.MaxPostings > 0 {
		ix.truncatePostings(ix.opt.MaxPostings)
	}
}

// truncatePostings caps every gram's posting list at max entries,
// keeping the highest-weight relations (ties broken by ascending
// relation id) and preserving the ascending-id layout of the
// survivors. Stem-heavy namespaces concentrate document frequency just
// below the stop-gram cutoff — posting lists the stop filter keeps but
// a probe still has to walk in full; the cap bounds that walk. The
// per-relation vectors are untouched, so exactScore (and with it the
// exact reference scorer) is unaffected; only the inverted probe's
// reach narrows, which experiment E9 measures as candidate recall.
func (ix *Index) truncatePostings(max int) {
	n := &ix.name
	type post struct {
		rel int32
		w   float64
	}
	var scratch []post
	newStart := make([]int32, len(n.gramStart))
	w := int32(0)
	for g := 0; g < len(n.grams); g++ {
		lo, hi := n.gramStart[g], n.gramStart[g+1]
		newStart[g] = w
		if int(hi-lo) <= max {
			copy(n.postRel[w:], n.postRel[lo:hi])
			copy(n.postW[w:], n.postW[lo:hi])
			w += hi - lo
			continue
		}
		scratch = scratch[:0]
		for j := lo; j < hi; j++ {
			scratch = append(scratch, post{n.postRel[j], n.postW[j]})
		}
		// Highest weight first; relation id breaks ties, so the kept
		// set is deterministic.
		sort.Slice(scratch, func(a, b int) bool {
			if scratch[a].w != scratch[b].w {
				return scratch[a].w > scratch[b].w
			}
			return scratch[a].rel < scratch[b].rel
		})
		kept := scratch[:max]
		sort.Slice(kept, func(a, b int) bool { return kept[a].rel < kept[b].rel })
		for _, p := range kept {
			n.postRel[w] = p.rel
			n.postW[w] = p.w
			w++
		}
		ix.truncGrams++
		ix.truncPostings += int(hi-lo) - max
	}
	newStart[len(n.grams)] = w
	n.gramStart = newStart
	n.postRel = append([]int32(nil), n.postRel[:w]...)
	n.postW = append([]float64(nil), n.postW[:w]...)
}

// queryVec is a query's weight vector: parallel sorted gram ids and
// normalized weights.
type queryVec struct {
	gram []int32
	w    []float64
}

// queryVector builds the (gram id, weight) vector of a query profile
// against the index vocabulary: grams unknown to the index or stopped
// are dropped, weights are idf-scaled and L2-normalized. Reuses qv's
// backing arrays.
func (n *nameIndex) queryVector(p *strsim.Profile, qv *queryVec) {
	qv.gram = qv.gram[:0]
	qv.w = qv.w[:0]
	norm := 0.0
	for j, g := range p.Grams {
		id, ok := n.lookupGram(g)
		if !ok || n.df[id] >= n.stopDF {
			continue
		}
		w := float64(p.Counts[j]) * n.idf[id]
		qv.gram = append(qv.gram, id)
		qv.w = append(qv.w, w)
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range qv.w {
			qv.w[i] /= norm
		}
	}
}

// lookupGram finds a gram's id by binary search.
func (n *nameIndex) lookupGram(g string) (int32, bool) {
	lo, hi := 0, len(n.grams)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.grams[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.grams) && n.grams[lo] == g {
		return int32(lo), true
	}
	return 0, false
}

// accumulate adds the query's cosine contributions into scores (a
// sparse rel→score map) by walking the posting lists of the query's
// grams in ascending gram order. Touches only relations sharing at
// least one non-stop gram with the query.
func (n *nameIndex) accumulate(qv *queryVec, scores map[int32]float64) {
	for i, g := range qv.gram {
		qw := qv.w[i]
		for j := n.gramStart[g]; j < n.gramStart[g+1]; j++ {
			scores[n.postRel[j]] += qw * n.postW[j]
		}
	}
}

// exactScore computes the cosine between the query vector and relation
// rel by merging the two sorted gram lists — the all-pairs reference.
// The additions happen in ascending gram order, exactly like
// accumulate's per-relation sequence, so the result is bitwise equal.
func (n *nameIndex) exactScore(qv *queryVec, rel int32) float64 {
	i, j := 0, int(n.relStart[rel])
	end := int(n.relStart[rel+1])
	score := 0.0
	for i < len(qv.gram) && j < end {
		switch {
		case qv.gram[i] < n.relGram[j]:
			i++
		case qv.gram[i] > n.relGram[j]:
			j++
		default:
			score += qv.w[i] * n.relW[j]
			i++
			j++
		}
	}
	return score
}
