// Package candidates implements the candidate-generation stage that
// takes relation alignment from all-pairs to top-k. SOFYA aligns one
// source relation r against the relations of a target endpoint; naively
// every target relation is a candidate, which is O(|R'|) probing work
// per source relation and hopeless against a production property
// namespace (DBpedia's raw-infobox tail alone is thousands of
// relations). The Index built here answers "which k target relations
// could plausibly align with r" in time sub-linear in |R'|, blending
// two signals:
//
//   - a character-trigram inverted index over relation local names with
//     idf weighting: lexically similar names (birthPlace/placeOfBirth)
//     surface without scanning the inventory, because only the posting
//     lists of the query's own grams are touched;
//
//   - a minhash/LSH index over sampled (subject, object) signature
//     sets, pulled through the same prepared ORDER BY RAND() probe the
//     validator uses: extensionally similar relations surface even when
//     their names share nothing, because relations with overlapping
//     instances collide in LSH band buckets.
//
// Everything is deterministic: index layout depends only on the sorted
// relation inventory and the endpoint's seeded sampling; scores are
// accumulated in sorted-gram order so the inverted path is bitwise
// identical to the exact all-pairs scorer on the name side, and pooled
// candidates' signature scores are exact key-set Jaccards. The LSH
// band selection — which relations enter the scored pool — is the only
// approximation, and the experiments measure it as candidate recall
// against the exact all-pairs scorer.
package candidates

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sofya/internal/endpoint"
	"sofya/internal/sampling"
	"sofya/internal/sparql"
	"sofya/internal/strsim"
)

// Translator maps target-KB entity IRIs into the source KB's namespace.
// sampling.LinkView satisfies it.
type Translator interface {
	ToK(kPrime string) (string, bool)
}

// Options parameterize index construction. The zero value is usable:
// every field defaults via normalized().
type Options struct {
	// SampleSize is how many facts are sampled per relation for its
	// instance signature (default 48).
	SampleSize int
	// Hashes is the number of minhash functions (default 64).
	Hashes int
	// Bands is the number of LSH bands; Hashes/Bands rows per band
	// (default 32, i.e. two rows per band).
	Bands int
	// GramN is the n-gram size for name indexing (default 3).
	GramN int
	// NameWeight and SigWeight blend the two signals (defaults 0.65 and
	// 0.35).
	NameWeight, SigWeight float64
	// MaxGramFrac declares a gram a stop gram once its document
	// frequency exceeds this fraction of the inventory (default 0.10,
	// floored at 32 relations). Stop grams are dropped identically from
	// the postings, the query vector, and the exact scorer.
	MaxGramFrac float64
	// MaxPostings caps the inverted posting list of any single gram:
	// grams whose document frequency is below the stop-gram cutoff but
	// above this cap keep only their MaxPostings highest-weight
	// relations (ties broken by relation id). Unlike stop grams the
	// truncated grams still contribute to the per-relation vectors, so
	// the exact scorer is unaffected — truncation only narrows which
	// relations the inverted probe can reach, and experiment E9
	// measures that recall cost. 0 leaves posting lists uncapped.
	MaxPostings int
	// Seed perturbs the minhash functions (default 1).
	Seed uint64

	// Parallelism bounds the concurrent per-relation sampling probes of
	// the build pass (0 = GOMAXPROCS, 1 = serial). Sample streams are
	// seeded per query text, so the built index is byte-identical at
	// every setting; Parallelism is a build-shape knob, not an index
	// parameter, and is excluded from the fingerprint.
	Parallelism int
}

func (o Options) normalized() Options {
	if o.SampleSize <= 0 {
		o.SampleSize = 48
	}
	if o.Hashes <= 0 {
		o.Hashes = 64
	}
	if o.Bands <= 0 {
		o.Bands = 32
	}
	if o.Bands > o.Hashes {
		o.Bands = o.Hashes
	}
	// Hashes must divide evenly into bands.
	o.Hashes -= o.Hashes % o.Bands
	if o.GramN <= 0 {
		o.GramN = 3
	}
	if o.NameWeight <= 0 && o.SigWeight <= 0 {
		o.NameWeight, o.SigWeight = 0.65, 0.35
	}
	if o.MaxGramFrac <= 0 {
		o.MaxGramFrac = 0.10
	}
	if o.MaxPostings < 0 {
		o.MaxPostings = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Index is the immutable candidate-generation index over one target
// endpoint's relation inventory. Build it once, probe it from any
// number of goroutines through Prober values.
type Index struct {
	opt Options

	// rels is the sorted target relation inventory; relation ids are
	// positions in this slice, so id order is IRI order.
	rels []string

	name nameIndex
	sig  sigIndex

	// Posting-truncation accounting (Options.MaxPostings): how many
	// grams lost entries and how many posting entries were dropped.
	truncGrams, truncPostings int
}

// Relations returns the indexed inventory (sorted; do not mutate).
func (ix *Index) Relations() []string { return ix.rels }

// Len returns the number of indexed relations.
func (ix *Index) Len() int { return len(ix.rels) }

// Options returns the (normalized) options the index was built with.
// Parallelism is a build-shape knob, not an index parameter, and is
// reported as zero.
func (ix *Index) Options() Options { return ix.opt }

// Postings returns how many inverted posting entries the index holds
// (after any Options.MaxPostings truncation).
func (ix *Index) Postings() int { return len(ix.name.postRel) }

// TruncationStats reports the posting-truncation accounting of the
// build: how many grams had their posting list capped by
// Options.MaxPostings and how many posting entries were dropped in
// total. Both are zero for uncapped indexes.
func (ix *Index) TruncationStats() (grams, dropped int) {
	return ix.truncGrams, ix.truncPostings
}

// Build is BuildCtx without cancellation.
func Build(target endpoint.Endpoint, rels []string, links Translator, opt Options) (*Index, error) {
	return BuildCtx(context.Background(), target, rels, links, opt)
}

// BuildCtx constructs the index over rels, sampling each relation's
// instance signature from the target endpoint. Entity terms are
// translated into the source KB's namespace through links so that
// signatures are comparable with source-side probes; facts whose
// subject has no sameAs link contribute no subject key, mirroring the
// validator's link filtering. Building issues one prepared sampling
// query per relation, fanned out over Options.Parallelism workers with
// index-ordered collection: each relation's sample stream is seeded by
// its own query text, so the built index is byte-identical to the
// serial build at every parallelism.
//
// Cancelling ctx aborts the sampling pass; the ctx error is returned.
// Failed relation probes do not abort the pass: every relation is
// still attempted, and all failures are joined into one deterministic
// error, ordered by relation IRI (lowest first), so operators see the
// full blast radius of a misbehaving endpoint in a single report.
func BuildCtx(ctx context.Context, target endpoint.Endpoint, rels []string, links Translator, opt Options) (*Index, error) {
	opt = opt.normalized()
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The stored options describe the index content; the build shape
	// does not (see Options.Parallelism).
	opt.Parallelism = 0
	ix := &Index{opt: opt, rels: append([]string(nil), rels...)}
	sort.Strings(ix.rels)
	ix.buildNameIndex()

	probe, err := target.Prepare(sampling.TmplSample, "r", "n")
	if err != nil {
		return nil, fmt.Errorf("candidates: preparing sample probe against %s: %w", target.Name(), err)
	}
	sets := make([][]uint64, len(ix.rels))
	errs := make([]error, len(ix.rels))
	if workers > len(ix.rels) {
		workers = len(ix.rels)
	}
	if workers <= 1 {
		keys := make([]uint64, 0, 2*opt.SampleSize)
		for i, rel := range ix.rels {
			if ctx.Err() != nil {
				break
			}
			keys, errs[i] = appendSampleKeys(ctx, keys[:0], probe, rel, opt.SampleSize, links)
			if errs[i] == nil {
				sets[i] = append([]uint64(nil), keys...)
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				keys := make([]uint64, 0, 2*opt.SampleSize)
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ix.rels) || ctx.Err() != nil {
						return
					}
					keys, errs[i] = appendSampleKeys(ctx, keys[:0], probe, ix.rels[i], opt.SampleSize, links)
					if errs[i] == nil {
						sets[i] = append([]uint64(nil), keys...)
					}
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("candidates: build against %s aborted: %w", target.Name(), err)
	}
	var fails []error
	for i, err := range errs {
		if err != nil {
			fails = append(fails, fmt.Errorf("<%s>: %w", ix.rels[i], err))
		}
	}
	if len(fails) > 0 {
		return nil, fmt.Errorf("candidates: sampling %d of %d relations against %s failed: %w",
			len(fails), len(ix.rels), target.Name(), errors.Join(fails...))
	}
	ix.buildSigIndex(sets)
	return ix, nil
}

// appendSampleKeys samples up to n facts of rel and appends their
// signature keys: one key per linked subject, one per linked (or
// literal) object. Keys are deduplicated, sorted.
func appendSampleKeys(ctx context.Context, keys []uint64, probe endpoint.PreparedQuery, rel string, n int, links Translator) ([]uint64, error) {
	res, err := probe.SelectCtx(ctx, sparql.IRIArg(rel), sparql.IntArg(n))
	if err != nil {
		return nil, err
	}
	for _, row := range res.Rows {
		x, y := row[0], row[1]
		if x.IsIRI() {
			if k, ok := links.ToK(x.Value); ok {
				keys = append(keys, subjectKey(k))
			}
		}
		switch {
		case y.IsLiteral():
			keys = append(keys, literalKey(y.Value))
		case y.IsIRI():
			if k, ok := links.ToK(y.Value); ok {
				keys = append(keys, objectKey(k))
			}
		}
	}
	return dedupSorted(keys), nil
}

// identityTranslator is the Translator for source-side sampling, where
// terms are already in the source namespace.
type identityTranslator struct{}

func (identityTranslator) ToK(s string) (string, bool) { return s, true }

// sampleQueryKeys samples the query relation from its own endpoint; no
// translation is needed.
func sampleQueryKeys(keys []uint64, probe endpoint.PreparedQuery, rel string, n int) ([]uint64, error) {
	return appendSampleKeys(context.Background(), keys, probe, rel, n, identityTranslator{})
}

// Relations lists the distinct relation IRIs of an endpoint, sorted —
// the endpoint-agnostic inventory query (it needs no KB access, only
// SPARQL).
func Relations(ep endpoint.Endpoint) ([]string, error) {
	res, err := ep.Select("SELECT DISTINCT ?p WHERE { ?s ?p ?o }")
	if err != nil {
		return nil, fmt.Errorf("candidates: relation inventory of %s: %w", ep.Name(), err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		if t := row[0]; t.IsIRI() {
			out = append(out, t.Value)
		}
	}
	sort.Strings(out)
	return out, nil
}

// LocalName extracts the name part of a relation IRI: everything after
// the last '#' or '/'.
func LocalName(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 {
		return iri[i+1:]
	}
	return iri
}

// Candidate is one scored target relation.
type Candidate struct {
	Rel   string
	Score float64
	// Name and Sig are the blended components: trigram name cosine and
	// instance-signature similarity.
	Name, Sig float64
}

// Recall returns |approx ∩ exact| / |exact| over the Rel sets — the
// fraction of the exact top-k the pruned candidate set retains. An
// empty exact set has recall 1.
func Recall(approx, exact []Candidate) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[string]bool, len(approx))
	for _, c := range approx {
		in[c.Rel] = true
	}
	hit := 0
	for _, c := range exact {
		if in[c.Rel] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// ScoreRecall weighs the retained exact top-k entries by their scores:
// the fraction of the exact candidates' score mass the pruned set
// keeps. Pruning loses low-score tail candidates first, so this is the
// measure of how much alignment-relevant signal survives; an exact set
// with zero mass (or no entries) has score recall 1.
func ScoreRecall(approx, exact []Candidate) float64 {
	total := 0.0
	for _, c := range exact {
		total += c.Score
	}
	if total == 0 {
		return 1
	}
	in := make(map[string]bool, len(approx))
	for _, c := range approx {
		in[c.Rel] = true
	}
	kept := 0.0
	for _, c := range exact {
		if in[c.Rel] {
			kept += c.Score
		}
	}
	return kept / total
}

// profileOf builds the trigram profile of a relation's lowercased local
// name. Index profiles are built once per relation (not memoized
// globally: a 10⁵-relation inventory would thrash the strsim cache).
func profileOf(iri string, n int) *strsim.Profile {
	return strsim.NewProfile(strings.ToLower(LocalName(iri)), n)
}

// dedupSorted sorts keys and removes duplicates in place.
func dedupSorted(keys []uint64) []uint64 {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := keys[:0]
	var last uint64
	for i, k := range keys {
		if i > 0 && k == last {
			continue
		}
		out = append(out, k)
		last = k
	}
	return out
}

var _ Translator = sampling.LinkView{}
