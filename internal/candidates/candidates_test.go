package candidates

import (
	"fmt"
	"sync"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/sampling"
	"sofya/internal/synth"
)

// testBed wires a synth world into the pieces a candidate index needs:
// the yago side is the source (K), the dbp side the indexed target.
type testBed struct {
	world  *synth.World
	source *endpoint.Local
	target *endpoint.Local
	links  sampling.LinkView
	rels   []string
}

func newBed(t testing.TB, spec synth.Spec) *testBed {
	t.Helper()
	w := synth.Generate(spec)
	b := &testBed{
		world:  w,
		source: endpoint.NewLocal(w.Yago, 7),
		target: endpoint.NewLocal(w.Dbp, 11),
		links:  sampling.LinkView{Links: w.Links, KIsA: true},
	}
	rels, err := Relations(b.target)
	if err != nil {
		t.Fatalf("inventory: %v", err)
	}
	b.rels = rels
	return b
}

func (b *testBed) build(t testing.TB, opt Options) (*Index, *Prober) {
	t.Helper()
	ix, err := Build(b.target, b.rels, b.links, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pr, err := NewProber(ix, b.source)
	if err != nil {
		t.Fatalf("NewProber: %v", err)
	}
	return ix, pr
}

func TestRelationsInventoryMatchesReport(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	want := map[string]bool{}
	for _, iri := range b.world.Report.DbpRelations {
		want[iri] = true
	}
	if len(b.rels) != len(want) {
		t.Fatalf("inventory holds %d relations, report %d", len(b.rels), len(want))
	}
	for _, iri := range b.rels {
		if !want[iri] {
			t.Errorf("inventory relation %q not in report", iri)
		}
	}
	for i := 1; i < len(b.rels); i++ {
		if b.rels[i-1] >= b.rels[i] {
			t.Fatalf("inventory not sorted at %d", i)
		}
	}
}

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://dbpedia.org/property/birthPlace": "birthPlace",
		"http://example.org/ns#created":          "created",
		"plain":                                  "plain",
		"":                                       "",
	}
	for iri, want := range cases {
		if got := LocalName(iri); got != want {
			t.Errorf("LocalName(%q) = %q, want %q", iri, got, want)
		}
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.SampleSize <= 0 || o.Hashes <= 0 || o.Bands <= 0 || o.GramN <= 0 {
		t.Fatalf("zero options not defaulted: %+v", o)
	}
	if o.Hashes%o.Bands != 0 {
		t.Fatalf("hashes %d not divisible by bands %d", o.Hashes, o.Bands)
	}
	o = Options{Hashes: 10, Bands: 16}.normalized()
	if o.Bands != 10 || o.Hashes != 10 {
		t.Fatalf("bands not clamped to hashes: %+v", o)
	}
}

func TestRecallHelper(t *testing.T) {
	mk := func(rels ...string) []Candidate {
		out := make([]Candidate, len(rels))
		for i, r := range rels {
			out[i] = Candidate{Rel: r}
		}
		return out
	}
	if got := Recall(mk("a", "b"), mk()); got != 1 {
		t.Errorf("empty exact recall = %v, want 1", got)
	}
	if got := Recall(mk("a", "b"), mk("a", "c")); got != 0.5 {
		t.Errorf("recall = %v, want 0.5", got)
	}
	if got := Recall(mk(), mk("a")); got != 0 {
		t.Errorf("recall = %v, want 0", got)
	}
}

// TestNameScoresBitwiseIdentical pins the determinism invariant: the
// inverted accumulation and the exact merge must produce the same
// floats, so pruning changes which relations are scored but never what
// a scored relation's name score is.
func TestNameScoresBitwiseIdentical(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	_, pr := b.build(t, Options{})
	for _, r := range b.world.Report.YagoRelations {
		approx, err := pr.TopK(r, 0)
		if err != nil {
			t.Fatalf("TopK(%s): %v", r, err)
		}
		exact, err := pr.ExactTopK(r, 0)
		if err != nil {
			t.Fatalf("ExactTopK(%s): %v", r, err)
		}
		names := map[string]float64{}
		for _, c := range exact {
			names[c.Rel] = c.Name
		}
		for _, c := range approx {
			if want, ok := names[c.Rel]; ok && c.Name != want {
				t.Fatalf("name score of %s for query %s: inverted %v != exact %v",
					c.Rel, r, c.Name, want)
			}
		}
	}
}

func TestTopKDeterministic(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	_, pr1 := b.build(t, Options{})
	b2 := newBed(t, synth.TinySpec())
	_, pr2 := b2.build(t, Options{})
	for _, r := range b.world.Report.YagoRelations {
		c1, err1 := pr1.TopK(r, 10)
		c2, err2 := pr2.TopK(r, 10)
		if err1 != nil || err2 != nil {
			t.Fatalf("TopK errors: %v / %v", err1, err2)
		}
		if len(c1) != len(c2) {
			t.Fatalf("TopK(%s) lengths differ: %d vs %d", r, len(c1), len(c2))
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("TopK(%s)[%d] differs: %+v vs %+v", r, i, c1[i], c2[i])
			}
		}
	}
}

// TestTopKRecallAgainstExact measures the pruned candidate set against
// the exact all-pairs scorer. On a tiny world the exact top-k tail is
// dominated by incidental entity-pool overlap (near-zero-score
// relations sharing neither a name gram nor enough extension to
// collide in a band), so set recall is a loose canary here; the
// score-mass recall shows the pruned pool keeps what carries signal.
// The alignment-level ≥0.95 recall claim is checked in
// internal/experiments on scale worlds.
func TestTopKRecallAgainstExact(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	_, pr := b.build(t, Options{})
	const k = 15
	total, mass := 0.0, 0.0
	for _, r := range b.world.Report.YagoRelations {
		approx, err := pr.TopK(r, k)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		exact, err := pr.ExactTopK(r, k)
		if err != nil {
			t.Fatalf("ExactTopK: %v", err)
		}
		total += Recall(approx, exact)
		mass += ScoreRecall(approx, exact)
	}
	n := float64(len(b.world.Report.YagoRelations))
	meanSet, meanMass := total/n, mass/n
	if meanSet < 0.6 {
		t.Errorf("mean candidate set recall %.3f < 0.6", meanSet)
	}
	if meanMass < 0.9 {
		t.Errorf("mean candidate score-mass recall %.3f < 0.9", meanMass)
	}
	t.Logf("k=%d: set recall %.3f, score-mass recall %.3f", k, meanSet, meanMass)
}

// TestTopKFindsGoldAlignments checks end-use quality: for yago
// relations with a gold dbp equivalent, the equivalent should rank in
// the top-k candidates for nearly all of them.
func TestTopKFindsGoldAlignments(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	_, pr := b.build(t, Options{})
	const k = 20
	equiv := map[string]string{}
	for _, p := range b.world.Truth.YagoToDbp {
		if p.Equivalent {
			equiv[p.Body] = p.Head
		}
	}
	hits, want := 0, 0
	for _, r := range b.world.Report.YagoRelations {
		gold, ok := equiv[r]
		if !ok {
			continue
		}
		want++
		cands, err := pr.TopK(r, k)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		for _, c := range cands {
			if c.Rel == gold {
				hits++
				break
			}
		}
	}
	if want == 0 {
		t.Fatal("world has no gold equivalences")
	}
	if frac := float64(hits) / float64(want); frac < 0.85 {
		t.Fatalf("gold equivalent reached top-%d for only %.2f of %d relations", k, frac, want)
	}
}

func TestTopKConcurrent(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	_, pr := b.build(t, Options{})
	rels := b.world.Report.YagoRelations
	ref := make([][]Candidate, len(rels))
	for i, r := range rels {
		c, err := pr.TopK(r, 10)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		ref[i] = c
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, r := range rels {
				c, err := pr.TopK(r, 10)
				if err != nil {
					t.Errorf("concurrent TopK: %v", err)
					return
				}
				for j := range c {
					if c[j] != ref[i][j] {
						t.Errorf("concurrent TopK(%s) diverged", r)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// scaleBed caches one mid-size world + index for the benchmarks, so
// repeated bench invocations do not rebuild it per benchmark.
var scaleBed struct {
	once sync.Once
	bed  *testBed
	ix   *Index
	pr   *Prober
}

func benchBed(b *testing.B) (*testBed, *Index, *Prober) {
	scaleBed.once.Do(func() {
		bed := newBed(b, synth.ScaleSpec(4000))
		ix, pr := bed.build(b, Options{})
		scaleBed.bed, scaleBed.ix, scaleBed.pr = bed, ix, pr
	})
	return scaleBed.bed, scaleBed.ix, scaleBed.pr
}

// BenchmarkIndexBuild measures full index construction (name postings +
// signature sampling) per indexed relation count.
func BenchmarkIndexBuild(b *testing.B) {
	bed, _, _ := benchBed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(bed.target, bed.rels, bed.links, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeTopK measures one pruned candidate probe (sampling +
// inverted scoring + LSH lookup) against a 4000-relation inventory.
func BenchmarkProbeTopK(b *testing.B) {
	bed, _, pr := benchBed(b)
	rels := bed.world.Report.YagoRelations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.TopK(rels[i%len(rels)], 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactTopK is the all-pairs baseline probe on the same
// inventory — the cost pruning avoids.
func BenchmarkExactTopK(b *testing.B) {
	bed, _, pr := benchBed(b)
	rels := bed.world.Report.YagoRelations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.ExactTopK(rels[i%len(rels)], 20); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleLocalName() {
	fmt.Println(LocalName("http://dbpedia.org/property/birthPlace"))
	// Output: birthPlace
}
