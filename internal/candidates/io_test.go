package candidates

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/sparql"
	"sofya/internal/synth"
)

// encodeIndex serializes ix to bytes, failing the test on error.
func encodeIndex(t testing.TB, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.WriteIndex(&buf); err != nil {
		t.Fatalf("WriteIndex: %v", err)
	}
	return buf.Bytes()
}

// TestParallelBuildByteIdentical pins the tentpole invariant: the
// sampling fan-out must not change the built index. Every relation's
// sample stream is seeded by its own query text, so the serialized
// index bytes must agree at every parallelism.
func TestParallelBuildByteIdentical(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	ref, _ := b.build(t, Options{Parallelism: 1})
	refBytes := encodeIndex(t, ref)
	for _, par := range []int{2, 4, 8} {
		ix, err := Build(b.target, b.rels, b.links, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("Build(parallelism=%d): %v", par, err)
		}
		if got := encodeIndex(t, ix); !bytes.Equal(got, refBytes) {
			t.Fatalf("parallelism %d produced different index bytes (%d vs %d)", par, len(got), len(refBytes))
		}
		if !reflect.DeepEqual(ix, ref) {
			t.Fatalf("parallelism %d index not DeepEqual to serial", par)
		}
	}
}

// TestIndexRoundTrip checks persisted-vs-built equality: the loaded
// index must be structurally identical, re-serialize to the same
// bytes, and probe identically.
func TestIndexRoundTrip(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	built, prBuilt := b.build(t, Options{})
	path := filepath.Join(t.TempDir(), "cand.idx")
	if err := built.WriteIndexFile(path); err != nil {
		t.Fatalf("WriteIndexFile: %v", err)
	}
	loaded, err := OpenIndex(path)
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	if !reflect.DeepEqual(built, loaded) {
		t.Fatal("loaded index not DeepEqual to built index")
	}
	if !bytes.Equal(encodeIndex(t, built), encodeIndex(t, loaded)) {
		t.Fatal("loaded index re-serializes to different bytes")
	}
	if built.Fingerprint() != loaded.Fingerprint() {
		t.Fatal("fingerprints disagree")
	}
	prLoaded, err := NewProber(loaded, b.source)
	if err != nil {
		t.Fatalf("NewProber(loaded): %v", err)
	}
	for _, r := range b.world.Report.YagoRelations {
		c1, err1 := prBuilt.TopK(r, 10)
		c2, err2 := prLoaded.TopK(r, 10)
		if err1 != nil || err2 != nil {
			t.Fatalf("TopK errors: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("TopK(%s) differs between built and loaded index", r)
		}
	}
}

// tinyIndex hand-builds a minimal index (no endpoint) so exhaustive
// per-byte corruption stays fast: the file is a few KiB, not the tens
// of KiB a synth world produces.
func tinyIndex() *Index {
	ix := &Index{
		opt: Options{}.normalized(),
		rels: []string{
			"http://t/birthPlace",
			"http://t/deathPlace",
			"http://t/name",
			"http://t/population",
			"http://t/spouse",
		},
	}
	ix.buildNameIndex()
	sets := [][]uint64{
		{3, 7, 12, 40},
		{3, 9, 12},
		{},
		{5, 40, 77, 91, 120},
		{7, 9},
	}
	ix.buildSigIndex(sets)
	return ix
}

// TestOpenIndexEveryByteFlip flips every byte of a serialized index and
// requires each flip to either fail closed with ErrBadIndex or decode
// to content that re-serializes to the original bytes (flips landing in
// alignment padding or reserved footer bytes are harmless by
// construction).
func TestOpenIndexEveryByteFlip(t *testing.T) {
	orig := encodeIndex(t, tinyIndex())
	work := make([]byte, len(orig))
	for i := range orig {
		copy(work, orig)
		work[i] ^= 0x5a
		ix, err := decodeIndex(work)
		if err != nil {
			if !errors.Is(err, ErrBadIndex) {
				t.Fatalf("flip at %d: error %v does not wrap ErrBadIndex", i, err)
			}
			continue
		}
		if got := encodeIndex(t, ix); !bytes.Equal(got, orig) {
			t.Fatalf("flip at %d decoded to different content", i)
		}
	}
}

// TestOpenIndexTruncated requires every truncation of the file to fail
// closed.
func TestOpenIndexTruncated(t *testing.T) {
	orig := encodeIndex(t, tinyIndex())
	for _, n := range []int{0, 1, 8, 16, len(orig) / 2, len(orig) - 1} {
		if _, err := decodeIndex(orig[:n]); !errors.Is(err, ErrBadIndex) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrBadIndex", n, err)
		}
	}
}

func TestFingerprintSemantics(t *testing.T) {
	rels := []string{"http://t/b", "http://t/a", "http://t/c"}
	base := Fingerprint(rels, Options{})
	sorted := append([]string(nil), rels...)
	sorted[0], sorted[1] = sorted[1], sorted[0]
	if Fingerprint(sorted, Options{}) != base {
		t.Error("fingerprint depends on inventory order")
	}
	if Fingerprint(rels, Options{Parallelism: 8}) != base {
		t.Error("fingerprint depends on Parallelism")
	}
	if Fingerprint(rels, Options{SampleSize: 48}) != base {
		t.Error("fingerprint distinguishes explicit defaults from zero options")
	}
	if Fingerprint(rels, Options{SampleSize: 32}) == base {
		t.Error("fingerprint ignores SampleSize")
	}
	if Fingerprint(rels[:2], Options{}) == base {
		t.Error("fingerprint ignores inventory content")
	}
}

func TestLoadOrBuildFallback(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	built, _ := b.build(t, Options{})
	dir := t.TempDir()
	ctx := context.Background()

	// Empty path: always builds.
	ix, loaded, err := LoadOrBuild(ctx, "", b.target, b.rels, b.links, Options{})
	if err != nil || loaded {
		t.Fatalf("LoadOrBuild(\"\") = loaded %v, err %v", loaded, err)
	}
	if !reflect.DeepEqual(ix, built) {
		t.Fatal("built index differs from reference")
	}

	// Valid sidecar: loads.
	path := filepath.Join(dir, "cand.idx")
	if err := built.WriteIndexFile(path); err != nil {
		t.Fatalf("WriteIndexFile: %v", err)
	}
	ix, loaded, err = LoadOrBuild(ctx, path, b.target, b.rels, b.links, Options{})
	if err != nil || !loaded {
		t.Fatalf("LoadOrBuild(valid) = loaded %v, err %v", loaded, err)
	}
	if !reflect.DeepEqual(ix, built) {
		t.Fatal("loaded index differs from built")
	}

	// Missing file: builds.
	ix, loaded, err = LoadOrBuild(ctx, filepath.Join(dir, "absent.idx"), b.target, b.rels, b.links, Options{})
	if err != nil || loaded {
		t.Fatalf("LoadOrBuild(missing) = loaded %v, err %v", loaded, err)
	}
	if !reflect.DeepEqual(ix, built) {
		t.Fatal("fallback index differs from built")
	}

	// Corrupt sidecar: builds.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	bad := filepath.Join(dir, "bad.idx")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, loaded, err = LoadOrBuild(ctx, bad, b.target, b.rels, b.links, Options{})
	if err != nil || loaded {
		t.Fatalf("LoadOrBuild(corrupt) = loaded %v, err %v", loaded, err)
	}
	if !reflect.DeepEqual(ix, built) {
		t.Fatal("fallback index differs from built")
	}

	// Stale sidecar (different options): builds with the caller's
	// options, and openMatching reports the mismatch as ErrStaleIndex.
	if _, err := openMatching(path, Fingerprint(b.rels, Options{SampleSize: 16})); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("openMatching(stale) error %v does not wrap ErrStaleIndex", err)
	}
	ix, loaded, err = LoadOrBuild(ctx, path, b.target, b.rels, b.links, Options{SampleSize: 16})
	if err != nil || loaded {
		t.Fatalf("LoadOrBuild(stale) = loaded %v, err %v", loaded, err)
	}
	if got := ix.Options().SampleSize; got != 16 {
		t.Fatalf("fallback build used SampleSize %d, want 16", got)
	}
}

// flakyEndpoint fails the sampling probe for a chosen set of relations,
// to exercise the joined build error.
type flakyEndpoint struct {
	endpoint.Endpoint
	fail map[string]bool
}

func (f *flakyEndpoint) Prepare(tmpl string, params ...string) (endpoint.PreparedQuery, error) {
	pq, err := f.Endpoint.Prepare(tmpl, params...)
	if err != nil {
		return nil, err
	}
	return &flakyPrepared{PreparedQuery: pq, fail: f.fail}, nil
}

type flakyPrepared struct {
	endpoint.PreparedQuery
	fail map[string]bool
}

func (f *flakyPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	for rel := range f.fail {
		if strings.Contains(args[0].Key(), rel) {
			return nil, fmt.Errorf("synthetic probe failure for %s", rel)
		}
	}
	return f.PreparedQuery.SelectCtx(ctx, args...)
}

// TestBuildJoinsAllFailures checks that a failing probe no longer
// aborts the pass: every failing relation is reported, in IRI order,
// identically at every parallelism.
func TestBuildJoinsAllFailures(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	if len(b.rels) < 4 {
		t.Fatal("world too small for the failure test")
	}
	failing := []string{b.rels[1], b.rels[len(b.rels)-1]}
	flaky := &flakyEndpoint{Endpoint: b.target, fail: map[string]bool{
		failing[0]: true,
		failing[1]: true,
	}}
	var msgs []string
	for _, par := range []int{1, 4} {
		_, err := Build(flaky, b.rels, b.links, Options{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: build succeeded despite failing probes", par)
		}
		msg := err.Error()
		if !strings.Contains(msg, fmt.Sprintf("sampling 2 of %d relations", len(b.rels))) {
			t.Fatalf("parallelism %d: error lacks failure count: %v", par, msg)
		}
		for _, rel := range failing {
			if !strings.Contains(msg, rel) {
				t.Fatalf("parallelism %d: error omits failing relation %s: %v", par, rel, msg)
			}
		}
		if strings.Index(msg, failing[0]) > strings.Index(msg, failing[1]) {
			t.Fatalf("parallelism %d: failures not ordered by relation IRI: %v", par, msg)
		}
		msgs = append(msgs, msg)
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error differs across parallelism:\n%s\nvs\n%s", msgs[0], msgs[1])
	}
}

func TestBuildCtxCancelled(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		_, err := BuildCtx(ctx, b.target, b.rels, b.links, Options{Parallelism: par})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: error %v does not wrap context.Canceled", par, err)
		}
	}
}

// TestPostingTruncation checks the df-cap: no posting list outgrows the
// cap, the drop accounting is live, and the exact scorer — which reads
// the untruncated per-relation vectors — is unaffected, so a capped
// index still measures its own recall against an exact reference.
func TestPostingTruncation(t *testing.T) {
	b := newBed(t, synth.TinySpec())
	full, prFull := b.build(t, Options{})
	if g, d := full.TruncationStats(); g != 0 || d != 0 {
		t.Fatalf("uncapped index reports truncation %d/%d", g, d)
	}
	const cap = 2
	capped, prCapped := b.build(t, Options{MaxPostings: cap})
	grams, dropped := capped.TruncationStats()
	if grams == 0 || dropped == 0 {
		t.Fatal("cap of 2 truncated nothing on a tiny world")
	}
	n := &capped.name
	for g := 0; g < len(n.grams); g++ {
		if run := n.gramStart[g+1] - n.gramStart[g]; int(run) > cap {
			t.Fatalf("gram %d posting list has %d entries after cap %d", g, run, cap)
		}
		for j := n.gramStart[g] + 1; j < n.gramStart[g+1]; j++ {
			if n.postRel[j-1] >= n.postRel[j] {
				t.Fatalf("gram %d postings unsorted after truncation", g)
			}
		}
	}
	if !reflect.DeepEqual(capped.name.relGram, full.name.relGram) ||
		!reflect.DeepEqual(capped.name.relW, full.name.relW) {
		t.Fatal("truncation altered the per-relation exact vectors")
	}
	for _, r := range b.world.Report.YagoRelations {
		e1, err1 := prFull.ExactTopK(r, 10)
		e2, err2 := prCapped.ExactTopK(r, 10)
		if err1 != nil || err2 != nil {
			t.Fatalf("ExactTopK errors: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("ExactTopK(%s) differs on capped index", r)
		}
	}

	// A capped index round-trips like any other.
	path := filepath.Join(t.TempDir(), "capped.idx")
	if err := capped.WriteIndexFile(path); err != nil {
		t.Fatalf("WriteIndexFile: %v", err)
	}
	loaded, err := OpenIndex(path)
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	if !reflect.DeepEqual(capped, loaded) {
		t.Fatal("capped index did not round-trip")
	}
}

// BenchmarkIndexBuildParallel is BenchmarkIndexBuild with the sampling
// pass fanned out over GOMAXPROCS workers.
func BenchmarkIndexBuildParallel(b *testing.B) {
	bed, _, _ := benchBed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(bed.target, bed.rels, bed.links, Options{Parallelism: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenIndex measures restoring the 4000-relation index from
// its sidecar — the restart path that skips sampling entirely.
func BenchmarkOpenIndex(b *testing.B) {
	_, ix, _ := benchBed(b)
	path := filepath.Join(b.TempDir(), "bench.idx")
	if err := ix.WriteIndexFile(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenIndex(path); err != nil {
			b.Fatal(err)
		}
	}
}
