package candidates

import (
	"fmt"
	"sort"
	"sync"

	"sofya/internal/endpoint"
	"sofya/internal/sampling"
)

// Prober answers top-k candidate queries against an Index for source
// relations living on a source endpoint. It owns the prepared sampling
// probe and reusable scratch buffers; a mutex serializes probes, so one
// Prober is safe for concurrent use (the aligner already bounds probe
// concurrency with its endpoint semaphores).
type Prober struct {
	ix     *Index
	source endpoint.Endpoint

	mu        sync.Mutex
	probe     endpoint.PreparedQuery
	qv        queryVec
	keys      []uint64
	sig       []uint64
	cand      []int32
	scores    map[int32]float64
	sigScores map[int32]float64
}

// NewProber prepares the sampling probe for source-relation queries.
func NewProber(ix *Index, source endpoint.Endpoint) (*Prober, error) {
	probe, err := source.Prepare(sampling.TmplSample, "r", "n")
	if err != nil {
		return nil, fmt.Errorf("candidates: preparing source probe against %s: %w", source.Name(), err)
	}
	return &Prober{
		ix:        ix,
		source:    source,
		probe:     probe,
		sig:       make([]uint64, ix.opt.Hashes),
		scores:    make(map[int32]float64),
		sigScores: make(map[int32]float64),
	}, nil
}

// TopK returns the top-k candidate target relations for source relation
// rel, ranked by the blended name+signature score (ties broken by
// relation IRI). Cost is sub-linear in the inventory: only posting
// lists of the query's grams and LSH band buckets of the query's
// signature are touched. The signature channel is gated by the pool:
// a relation that collides with the query in some band gets its exact
// key-set Jaccard (bitwise equal to ExactTopK's); a relation that
// shares name grams but misses every band keeps a zero signature
// component — computing Jaccards for every gram-sharing relation
// would make the probe linear in the inventory on stem-heavy
// namespaces. Name cosines match ExactTopK bitwise, so the LSH band
// selection is the only approximation, and the experiments measure it
// as candidate recall. Ordering is deterministic.
func (p *Prober) TopK(rel string, k int) ([]Candidate, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	qv, qkeys, qsig, err := p.queryState(rel)
	if err != nil {
		return nil, err
	}

	for id := range p.scores {
		delete(p.scores, id)
	}
	p.ix.name.accumulate(qv, p.scores)

	for id := range p.sigScores {
		delete(p.sigScores, id)
	}
	if len(qkeys) > 0 {
		p.cand = p.ix.sig.candidates(qsig, p.cand[:0])
		for _, id := range p.cand {
			p.sigScores[id] = p.ix.sig.exactJaccard(qkeys, id)
		}
	}

	out := make([]Candidate, 0, len(p.scores)+len(p.sigScores))
	for id, name := range p.scores {
		sig := p.sigScores[id]
		out = append(out, Candidate{
			Rel:   p.ix.rels[id],
			Score: p.ix.opt.NameWeight*name + p.ix.opt.SigWeight*sig,
			Name:  name,
			Sig:   sig,
		})
	}
	for id, sig := range p.sigScores {
		if _, ok := p.scores[id]; ok {
			continue
		}
		out = append(out, Candidate{
			Rel:   p.ix.rels[id],
			Score: p.ix.opt.SigWeight * sig,
			Sig:   sig,
		})
	}
	rankAndTrim(&out, k)
	return out, nil
}

// ExactTopK is the all-pairs reference: every indexed relation is
// scored with the exact name cosine and the exact Jaccard over the full
// sampled key sets. Its name scores are bitwise identical to TopK's;
// the signature side is what TopK's minhash estimates approximate. Cost
// is linear in the inventory — the differential experiments use it as
// the unpruned baseline and recall reference.
func (p *Prober) ExactTopK(rel string, k int) ([]Candidate, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	qv, qkeys, _, err := p.queryState(rel)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, p.ix.Len())
	for id := int32(0); id < int32(p.ix.Len()); id++ {
		name := p.ix.name.exactScore(qv, id)
		sig := p.ix.sig.exactJaccard(qkeys, id)
		out = append(out, Candidate{
			Rel:   p.ix.rels[id],
			Score: p.ix.opt.NameWeight*name + p.ix.opt.SigWeight*sig,
			Name:  name,
			Sig:   sig,
		})
	}
	rankAndTrim(&out, k)
	return out, nil
}

// queryState samples rel from the source endpoint and derives the
// query-side scoring state: name vector, signature keys, minhash
// signature. Callers hold p.mu.
func (p *Prober) queryState(rel string) (*queryVec, []uint64, []uint64, error) {
	prof := profileOf(rel, p.ix.opt.GramN)
	p.ix.name.queryVector(prof, &p.qv)
	var err error
	p.keys, err = sampleQueryKeys(p.keys[:0], p.probe, rel, p.ix.opt.SampleSize)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("candidates: sampling query <%s>: %w", rel, err)
	}
	if len(p.keys) > 0 {
		minhash(p.sig, p.keys, p.ix.sig.seed)
	}
	return &p.qv, p.keys, p.sig, nil
}

// rankAndTrim orders candidates by (score desc, rel asc), drops
// zero-score rows, and truncates to k (k <= 0 keeps all scored rows).
// When the scored row count dwarfs k, a bounded min-heap selects the
// survivors in O(n log k) before the final O(k log k) sort — the
// relation IRI tiebreak makes the order strict and total, so the
// selected set (and therefore the output) is identical to a full sort.
func rankAndTrim(out *[]Candidate, k int) {
	rows := *out
	w := 0
	for _, c := range rows {
		if c.Score > 0 {
			rows[w] = c
			w++
		}
	}
	rows = rows[:w]
	if k > 0 && len(rows) > 4*k {
		rows = selectTopK(rows, k)
	}
	sort.Slice(rows, func(i, j int) bool {
		return outranks(rows[i], rows[j])
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	*out = rows
}

// outranks is the strict total candidate order: score descending,
// relation IRI ascending (IRIs are unique, so no ties remain).
func outranks(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Rel < b.Rel
}

// selectTopK keeps the k best rows (in unspecified order) via a
// min-heap over the prefix whose root is the worst kept row.
func selectTopK(rows []Candidate, k int) []Candidate {
	h := rows[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftWorstDown(h, i)
	}
	for _, c := range rows[k:] {
		if outranks(c, h[0]) {
			h[0] = c
			siftWorstDown(h, 0)
		}
	}
	return h
}

// siftWorstDown restores the heap property at i: every parent is
// outranked by (worse than) its children.
func siftWorstDown(h []Candidate, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && outranks(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && outranks(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
