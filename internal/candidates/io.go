package candidates

// io.go is the persistence half of the index lifecycle. Building the
// index is the expensive step — one sampling probe per target relation,
// seconds at 10⁵ relations even fanned out — while everything the probe
// path needs is a handful of flat arrays. So an Index serializes to a
// versioned, checksummed binary sidecar in the style of kb/snapshot.go
// (8-aligned little-endian sections, CRC-32C per section, section table
// + footer), written beside KB snapshots by kbgen, and OpenIndex
// restores it with no sampling and no endpoint at all.
//
// A sidecar is only valid for the exact inventory and options it was
// built from: a stale index silently serving wrong candidates would be
// far worse than a rebuild. Every file therefore carries a fingerprint
// — FNV-64a over the format version, the normalized Options (excluding
// Parallelism, which shapes the build, not the index) and the sorted
// relation inventory — and LoadOrBuild falls back to a fresh build
// whenever the sidecar is missing, corrupt, or fingerprint-mismatched.
//
// The encoding is exact: float weights round-trip as raw IEEE-754 bits
// and the LSH buckets are rebuilt from the stored signatures in the
// same relation order the builder used, so a loaded index is
// reflect.DeepEqual to — and WriteIndex-byte-identical with — the index
// that wrote it.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"sofya/internal/endpoint"
)

// idxMagic brands index sidecars at both ends; the final byte is the
// major format generation.
const idxMagic = "SOFYACX\x01"

// idxVersion is the format version checked on load. It also feeds the
// fingerprint, so bumping it invalidates every existing sidecar.
const idxVersion = 1

// Section ids, in file order; the section table is indexed by these
// constants, so the order is part of the format.
const (
	isecMeta      = iota // fingerprint, counts, normalized options (see writeMeta)
	isecRelOff           // (N+1) × u32 byte offsets into isecRelBlob
	isecRelBlob          // concatenated relation IRIs, id order
	isecGramOff          // (G+1) × u32 byte offsets into isecGramBlob
	isecGramBlob         // concatenated gram vocabulary, id (= sorted) order
	isecDF               // G × i32 document frequencies
	isecIdf              // G × f64 idf weights (0 for stop grams)
	isecGramStart        // (G+1) × i32 CSR posting offsets
	isecPostRel          // P × i32 posting relation ids
	isecPostW            // P × f64 posting weights
	isecRelStart         // (N+1) × i32 CSR vector offsets
	isecRelGram          // V × i32 per-relation gram ids
	isecRelW             // V × f64 per-relation weights
	isecSigs             // N*hashes × u64 minhash signatures
	isecEmpty            // N × u8 empty-signature flags
	isecKeyStart         // (N+1) × i32 CSR key-set offsets
	isecKeys             // keyStart[N] × u64 sampled signature keys
	idxNumSections
)

const (
	idxFooterSize   = 32 // tableOff u64 | count u32 | version u32 | tableCRC u32 | reserved u32 | magic
	idxTableEntSize = 24 // off u64 | len u64 | crc u32 | reserved u32
	idxPreludeSize  = 16 // magic | version u32 | count u32
)

// ErrBadIndex is wrapped by every load-time failure caused by the file
// itself (bad magic, version mismatch, checksum failure, inconsistent
// section layout) — as opposed to I/O errors.
var ErrBadIndex = errors.New("candidates: invalid or corrupt index")

// ErrStaleIndex is wrapped when a structurally valid sidecar was built
// from a different inventory or different options than the caller's.
var ErrStaleIndex = errors.New("candidates: index fingerprint mismatch")

var idxCastagnoli = crc32.MakeTable(crc32.Castagnoli)

var idxHostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ---------------------------------------------------------------------
// Fingerprint

// Fingerprint identifies the index a given inventory and options would
// build: FNV-64a over the format version, the normalized options
// (excluding Parallelism — a build-shape knob, not an index parameter)
// and the sorted relation IRIs. Two calls agree exactly when BuildCtx
// would produce interchangeable indexes, so it is the staleness key for
// persisted sidecars and the identity key for shared caches.
func Fingerprint(rels []string, opt Options) uint64 {
	opt = opt.normalized()
	sorted := rels
	if !sort.StringsAreSorted(sorted) {
		sorted = append([]string(nil), rels...)
		sort.Strings(sorted)
	}
	h := newFP()
	h.u64(idxVersion)
	h.u64(uint64(opt.SampleSize))
	h.u64(uint64(opt.Hashes))
	h.u64(uint64(opt.Bands))
	h.u64(uint64(opt.GramN))
	h.u64(math.Float64bits(opt.NameWeight))
	h.u64(math.Float64bits(opt.SigWeight))
	h.u64(math.Float64bits(opt.MaxGramFrac))
	h.u64(uint64(opt.MaxPostings))
	h.u64(opt.Seed)
	h.u64(uint64(len(sorted)))
	for _, r := range sorted {
		h.str(r)
	}
	return h.sum
}

// Fingerprint returns the fingerprint of the index's own inventory and
// options — what Fingerprint(ix.Relations(), ix.Options()) computes.
func (ix *Index) Fingerprint() uint64 { return Fingerprint(ix.rels, ix.opt) }

// fpHash is an incremental FNV-64a with length-prefixed strings so
// field boundaries cannot alias.
type fpHash struct{ sum uint64 }

func newFP() *fpHash { return &fpHash{sum: 14695981039346656037} }

func (h *fpHash) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= 1099511628211
}

func (h *fpHash) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fpHash) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// ---------------------------------------------------------------------
// Writing

// idxCountingWriter tracks the byte offset and the first error so the
// section writers can stay unconditional.
type idxCountingWriter struct {
	w   io.Writer
	off uint64
	err error
}

func (cw *idxCountingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.off += uint64(n)
	cw.err = err
	return n, err
}

var idxZeroPad [8]byte

func (cw *idxCountingWriter) align8() {
	if rem := cw.off % 8; rem != 0 {
		cw.Write(idxZeroPad[:8-rem])
	}
}

// idxSection records one table entry while writing.
type idxSection struct {
	off, len uint64
	crc      uint32
}

// idxSectionWriter checksums a section body as it streams out.
type idxSectionWriter struct {
	cw  *idxCountingWriter
	crc uint32
}

func (sw *idxSectionWriter) Write(p []byte) (int, error) {
	n, err := sw.cw.Write(p)
	sw.crc = crc32.Update(sw.crc, idxCastagnoli, p[:n])
	return n, err
}

func (sw *idxSectionWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.Write(b[:])
}

func (sw *idxSectionWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	sw.Write(b[:])
}

// int32s writes a []int32 little-endian; on little-endian hosts the
// slice's backing bytes go out directly.
func (sw *idxSectionWriter) int32s(a []int32) {
	if len(a) == 0 {
		return
	}
	if idxHostLE {
		sw.Write(unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*4))
		return
	}
	var buf [512]byte
	for len(a) > 0 {
		n := len(a)
		if n > len(buf)/4 {
			n = len(buf) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(a[i]))
		}
		sw.Write(buf[:n*4])
		a = a[n:]
	}
}

func (sw *idxSectionWriter) u64s(a []uint64) {
	if len(a) == 0 {
		return
	}
	if idxHostLE {
		sw.Write(unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*8))
		return
	}
	var buf [512]byte
	for len(a) > 0 {
		n := len(a)
		if n > len(buf)/8 {
			n = len(buf) / 8
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], a[i])
		}
		sw.Write(buf[:n*8])
		a = a[n:]
	}
}

// f64s writes a []float64 as raw IEEE-754 bits, so weights round-trip
// bitwise and a loaded index scores identically to the built one.
func (sw *idxSectionWriter) f64s(a []float64) {
	sw.u64s(unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(a))), len(a)))
}

// strCol writes a u32 offsets section followed by the blob section for
// n strings.
func strCol(section func(func(sw *idxSectionWriter)), n int, get func(i int) string) {
	section(func(sw *idxSectionWriter) {
		off := uint32(0)
		sw.u32(0)
		for i := 0; i < n; i++ {
			off += uint32(len(get(i)))
			sw.u32(off)
		}
	})
	section(func(sw *idxSectionWriter) {
		for i := 0; i < n; i++ {
			io.WriteString(sw, get(i))
		}
	})
}

// WriteIndex serializes the index as a binary sidecar that OpenIndex
// restores without any sampling. The output is deterministic: equal
// indexes produce byte-identical files, so the parallel-build identity
// differential can compare serialized bytes directly.
func (ix *Index) WriteIndex(w io.Writer) error {
	n := &ix.name
	s := &ix.sig
	N := len(ix.rels)

	var relBytes, gramBytes uint64
	for _, r := range ix.rels {
		relBytes += uint64(len(r))
	}
	for _, g := range n.grams {
		gramBytes += uint64(len(g))
	}
	if relBytes > math.MaxUint32 || gramBytes > math.MaxUint32 {
		return fmt.Errorf("candidates: index string blob exceeds 4 GiB (rels %d, grams %d bytes)", relBytes, gramBytes)
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &idxCountingWriter{w: bw}
	cw.Write([]byte(idxMagic))
	var prelude [8]byte
	binary.LittleEndian.PutUint32(prelude[0:], idxVersion)
	binary.LittleEndian.PutUint32(prelude[4:], idxNumSections)
	cw.Write(prelude[:])

	sections := make([]idxSection, 0, idxNumSections)
	section := func(body func(sw *idxSectionWriter)) {
		cw.align8()
		sw := &idxSectionWriter{cw: cw}
		start := cw.off
		body(sw)
		sections = append(sections, idxSection{off: start, len: cw.off - start, crc: sw.crc})
	}

	// isecMeta
	section(func(sw *idxSectionWriter) {
		sw.u64(ix.Fingerprint())
		sw.u64(uint64(N))
		sw.u64(uint64(ix.truncGrams))
		sw.u64(uint64(ix.truncPostings))
		sw.u32(uint32(n.stopDF))
		sw.u32(uint32(ix.opt.SampleSize))
		sw.u32(uint32(ix.opt.Hashes))
		sw.u32(uint32(ix.opt.Bands))
		sw.u32(uint32(ix.opt.GramN))
		sw.u32(uint32(ix.opt.MaxPostings))
		sw.u64(math.Float64bits(ix.opt.NameWeight))
		sw.u64(math.Float64bits(ix.opt.SigWeight))
		sw.u64(math.Float64bits(ix.opt.MaxGramFrac))
		sw.u64(ix.opt.Seed)
	})
	strCol(section, N, func(i int) string { return ix.rels[i] })
	strCol(section, len(n.grams), func(i int) string { return n.grams[i] })
	section(func(sw *idxSectionWriter) { sw.int32s(n.df) })
	section(func(sw *idxSectionWriter) { sw.f64s(n.idf) })
	section(func(sw *idxSectionWriter) { sw.int32s(n.gramStart) })
	section(func(sw *idxSectionWriter) { sw.int32s(n.postRel) })
	section(func(sw *idxSectionWriter) { sw.f64s(n.postW) })
	section(func(sw *idxSectionWriter) { sw.int32s(n.relStart) })
	section(func(sw *idxSectionWriter) { sw.int32s(n.relGram) })
	section(func(sw *idxSectionWriter) { sw.f64s(n.relW) })
	section(func(sw *idxSectionWriter) { sw.u64s(s.sigs) })
	section(func(sw *idxSectionWriter) {
		buf := make([]byte, len(s.empty))
		for i, e := range s.empty {
			if e {
				buf[i] = 1
			}
		}
		sw.Write(buf)
	})
	section(func(sw *idxSectionWriter) { sw.int32s(s.keyStart) })
	section(func(sw *idxSectionWriter) { sw.u64s(s.keys) })

	cw.align8()
	tableOff := cw.off
	tableCRC := uint32(0)
	for _, sec := range sections {
		var ent [idxTableEntSize]byte
		binary.LittleEndian.PutUint64(ent[0:], sec.off)
		binary.LittleEndian.PutUint64(ent[8:], sec.len)
		binary.LittleEndian.PutUint32(ent[16:], sec.crc)
		tableCRC = crc32.Update(tableCRC, idxCastagnoli, ent[:])
		cw.Write(ent[:])
	}
	var foot [idxFooterSize]byte
	binary.LittleEndian.PutUint64(foot[0:], tableOff)
	binary.LittleEndian.PutUint32(foot[8:], idxNumSections)
	binary.LittleEndian.PutUint32(foot[12:], idxVersion)
	binary.LittleEndian.PutUint32(foot[16:], tableCRC)
	copy(foot[24:], idxMagic)
	cw.Write(foot[:])
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// WriteIndexFile is WriteIndex to a file. The write is atomic (temp
// file + rename), so an interrupted write never leaves a truncated
// sidecar under the target name.
func (ix *Index) WriteIndexFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".candidx-tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := ix.WriteIndex(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ---------------------------------------------------------------------
// Reading

func badIdx(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadIndex, fmt.Sprintf(format, args...))
}

// leI32s views b as a little-endian []int32, aliasing b on aligned
// little-endian hosts and decoding onto the heap elsewhere.
func leI32s(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if idxHostLE && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func leU32s(b []byte) []uint32 {
	a := leI32s(b)
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(a))), len(a))
}

func leU64s(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if idxHostLE && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func leF64s(b []byte) []float64 {
	a := leU64s(b)
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(a))), len(a))
}

// idxAliasString views b as a string sharing b's storage; safe because
// decoded index bytes are immutable for the index's lifetime.
func idxAliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// OpenIndex reads and verifies an index sidecar. Every section checksum
// is validated, and the decoded structure is cross-checked (offsets
// monotonic and spanning, ids in range, sorted invariants the probe's
// binary searches rely on, idf/stop-gram values consistent with the
// stored options) — a corrupt file fails here, wrapped in ErrBadIndex,
// instead of serving wrong candidates later. It does not check the
// fingerprint against any expectation; use LoadOrBuild for that.
func OpenIndex(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ix, err := decodeIndex(data)
	if err != nil {
		return nil, fmt.Errorf("candidates: open index %s: %w", path, err)
	}
	return ix, nil
}

// ReadIndex is OpenIndex from an io.Reader.
func ReadIndex(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeIndex(data)
}

// decodeIndex validates data and builds an Index aliasing it where the
// host allows.
func decodeIndex(data []byte) (*Index, error) {
	secs, err := indexSections(data)
	if err != nil {
		return nil, err
	}

	// Meta.
	meta := secs[isecMeta]
	if len(meta) != 88 {
		return nil, badIdx("meta section has %d bytes, want 88", len(meta))
	}
	storedFP := binary.LittleEndian.Uint64(meta[0:])
	nU := binary.LittleEndian.Uint64(meta[8:])
	truncG := binary.LittleEndian.Uint64(meta[16:])
	truncP := binary.LittleEndian.Uint64(meta[24:])
	stopDF := int32(binary.LittleEndian.Uint32(meta[32:]))
	opt := Options{
		SampleSize:  int(binary.LittleEndian.Uint32(meta[36:])),
		Hashes:      int(binary.LittleEndian.Uint32(meta[40:])),
		Bands:       int(binary.LittleEndian.Uint32(meta[44:])),
		GramN:       int(binary.LittleEndian.Uint32(meta[48:])),
		MaxPostings: int(binary.LittleEndian.Uint32(meta[52:])),
		NameWeight:  math.Float64frombits(binary.LittleEndian.Uint64(meta[56:])),
		SigWeight:   math.Float64frombits(binary.LittleEndian.Uint64(meta[64:])),
		MaxGramFrac: math.Float64frombits(binary.LittleEndian.Uint64(meta[72:])),
		Seed:        binary.LittleEndian.Uint64(meta[80:]),
	}
	if opt != opt.normalized() {
		return nil, badIdx("stored options are not in normalized form")
	}
	if nU > math.MaxInt32 {
		return nil, badIdx("relation count %d exceeds int32 id space", nU)
	}
	N := int(nU)
	if truncG > uint64(math.MaxInt) || truncP > uint64(math.MaxInt) {
		return nil, badIdx("truncation counters overflow")
	}

	strCol := func(offSec, blobSec, count int, what string) ([]string, error) {
		if len(secs[offSec]) != (count+1)*4 {
			return nil, badIdx("%s offsets section has %d bytes, want %d", what, len(secs[offSec]), (count+1)*4)
		}
		offs := leU32s(secs[offSec])
		blob := secs[blobSec]
		if offs[0] != 0 || uint64(offs[count]) != uint64(len(blob)) {
			return nil, badIdx("%s offsets do not span the blob", what)
		}
		out := make([]string, count)
		for i := 0; i < count; i++ {
			if offs[i] > offs[i+1] {
				return nil, badIdx("%s offsets decrease at entry %d", what, i)
			}
			out[i] = idxAliasString(blob[offs[i]:offs[i+1]])
		}
		return out, nil
	}
	rels, err := strCol(isecRelOff, isecRelBlob, N, "relation")
	if err != nil {
		return nil, err
	}
	if !sort.StringsAreSorted(rels) {
		return nil, badIdx("relation inventory not sorted")
	}

	ix := &Index{opt: opt, rels: rels, truncGrams: int(truncG), truncPostings: int(truncP)}
	n := &ix.name
	n.stopDF = stopDF
	if want := stopCutoff(N, opt.MaxGramFrac); stopDF != want {
		return nil, badIdx("stop-gram cutoff %d inconsistent with options (want %d)", stopDF, want)
	}

	// Gram vocabulary — strictly sorted, because lookupGram binary
	// searches it.
	gramCount := len(secs[isecGramOff])/4 - 1
	if gramCount < 0 {
		return nil, badIdx("gram offsets section too short")
	}
	if n.grams, err = strCol(isecGramOff, isecGramBlob, gramCount, "gram"); err != nil {
		return nil, err
	}
	for g := 1; g < gramCount; g++ {
		if n.grams[g-1] >= n.grams[g] {
			return nil, badIdx("gram vocabulary not strictly sorted at entry %d", g)
		}
	}

	i32Sec := func(sec, wantLen int, what string) ([]int32, error) {
		if len(secs[sec])%4 != 0 {
			return nil, badIdx("%s section length %d is not a multiple of 4", what, len(secs[sec]))
		}
		a := leI32s(secs[sec])
		if wantLen >= 0 && len(a) != wantLen {
			return nil, badIdx("%s section has %d entries, want %d", what, len(a), wantLen)
		}
		return a, nil
	}
	f64Sec := func(sec, wantLen int, what string) ([]float64, error) {
		if len(secs[sec])%8 != 0 {
			return nil, badIdx("%s section length %d is not a multiple of 8", what, len(secs[sec]))
		}
		a := leF64s(secs[sec])
		if wantLen >= 0 && len(a) != wantLen {
			return nil, badIdx("%s section has %d entries, want %d", what, len(a), wantLen)
		}
		return a, nil
	}
	checkOffsets := func(off []int32, max int, what string) error {
		if off[0] != 0 || int(off[len(off)-1]) != max {
			return badIdx("%s offsets do not span [0,%d]", what, max)
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				return badIdx("%s offsets decrease at entry %d", what, i)
			}
		}
		return nil
	}

	// df and idf must agree with each other and the stop cutoff: the
	// probe trusts idf==0 to mean "stop gram".
	if n.df, err = i32Sec(isecDF, gramCount, "df"); err != nil {
		return nil, err
	}
	if n.idf, err = f64Sec(isecIdf, gramCount, "idf"); err != nil {
		return nil, err
	}
	for g := 0; g < gramCount; g++ {
		if n.df[g] < 1 || int(n.df[g]) > N {
			return nil, badIdx("df[%d] = %d out of range [1,%d]", g, n.df[g], N)
		}
		want := 0.0
		if n.df[g] < n.stopDF {
			want = math.Log(1 + float64(N)/float64(n.df[g]))
		}
		if n.idf[g] != want {
			return nil, badIdx("idf[%d] inconsistent with df and stop cutoff", g)
		}
	}

	// CSR postings: gram-major, relation ids strictly ascending within
	// each gram (the layout the builder and truncation both preserve).
	if n.gramStart, err = i32Sec(isecGramStart, gramCount+1, "gramStart"); err != nil {
		return nil, err
	}
	if n.postRel, err = i32Sec(isecPostRel, -1, "postRel"); err != nil {
		return nil, err
	}
	if err = checkOffsets(n.gramStart, len(n.postRel), "gramStart"); err != nil {
		return nil, err
	}
	if n.postW, err = f64Sec(isecPostW, len(n.postRel), "postW"); err != nil {
		return nil, err
	}
	for g := 0; g < gramCount; g++ {
		for j := n.gramStart[g]; j < n.gramStart[g+1]; j++ {
			if n.postRel[j] < 0 || int(n.postRel[j]) >= N {
				return nil, badIdx("posting %d holds out-of-range relation id %d", j, n.postRel[j])
			}
			if j > n.gramStart[g] && n.postRel[j-1] >= n.postRel[j] {
				return nil, badIdx("postings of gram %d not strictly ascending", g)
			}
		}
	}

	// CSR per-relation vectors: relation-major, gram ids strictly
	// ascending within each relation (exactScore merge relies on it).
	if n.relStart, err = i32Sec(isecRelStart, N+1, "relStart"); err != nil {
		return nil, err
	}
	if n.relGram, err = i32Sec(isecRelGram, -1, "relGram"); err != nil {
		return nil, err
	}
	if err = checkOffsets(n.relStart, len(n.relGram), "relStart"); err != nil {
		return nil, err
	}
	if n.relW, err = f64Sec(isecRelW, len(n.relGram), "relW"); err != nil {
		return nil, err
	}
	for i := 0; i < N; i++ {
		for j := n.relStart[i]; j < n.relStart[i+1]; j++ {
			if n.relGram[j] < 0 || int(n.relGram[j]) >= gramCount {
				return nil, badIdx("vector entry %d holds out-of-range gram id %d", j, n.relGram[j])
			}
			if j > n.relStart[i] && n.relGram[j-1] >= n.relGram[j] {
				return nil, badIdx("vector of relation %d not strictly ascending", i)
			}
		}
	}

	// Signature side.
	s := &ix.sig
	s.hashes, s.bands = opt.Hashes, opt.Bands
	s.rows = s.hashes / s.bands
	s.seed = opt.Seed
	if len(secs[isecSigs])%8 != 0 || len(secs[isecSigs])/8 != N*s.hashes {
		return nil, badIdx("signature section has %d bytes, want %d", len(secs[isecSigs]), 8*N*s.hashes)
	}
	s.sigs = leU64s(secs[isecSigs])
	if len(secs[isecEmpty]) != N {
		return nil, badIdx("empty-flag section has %d bytes, want %d", len(secs[isecEmpty]), N)
	}
	s.empty = make([]bool, N)
	for i, b := range secs[isecEmpty] {
		switch b {
		case 0:
		case 1:
			s.empty[i] = true
		default:
			return nil, badIdx("empty flag %d holds invalid value %d", i, b)
		}
	}
	if s.keyStart, err = i32Sec(isecKeyStart, N+1, "keyStart"); err != nil {
		return nil, err
	}
	if len(secs[isecKeys])%8 != 0 {
		return nil, badIdx("key section length %d is not a multiple of 8", len(secs[isecKeys]))
	}
	s.keys = leU64s(secs[isecKeys])
	if err = checkOffsets(s.keyStart, len(s.keys), "keyStart"); err != nil {
		return nil, err
	}
	for i := 0; i < N; i++ {
		if s.empty[i] != (s.keyStart[i] == s.keyStart[i+1]) {
			return nil, badIdx("empty flag of relation %d disagrees with its key set", i)
		}
		for j := s.keyStart[i] + 1; j < s.keyStart[i+1]; j++ {
			if s.keys[j-1] >= s.keys[j] {
				return nil, badIdx("key set of relation %d not strictly ascending", i)
			}
		}
	}

	// LSH buckets are not serialized: they rebuild deterministically
	// from the signatures in the same relation-ascending order the
	// builder used, keeping the file smaller.
	s.buckets = make(map[uint64][]int32)
	for i := 0; i < N; i++ {
		if s.empty[i] {
			continue
		}
		sig := s.sigs[i*s.hashes : (i+1)*s.hashes]
		for b := 0; b < s.bands; b++ {
			key := bandHash(b, sig[b*s.rows:(b+1)*s.rows])
			s.buckets[key] = append(s.buckets[key], int32(i))
		}
	}

	// The stored fingerprint must match the decoded content: a sidecar
	// whose inventory or options were tampered with (with checksums
	// re-stamped) still fails closed.
	if got := ix.Fingerprint(); got != storedFP {
		return nil, badIdx("stored fingerprint %016x disagrees with content fingerprint %016x", storedFP, got)
	}
	return ix, nil
}

// indexSections validates the prelude, footer, table checksum and every
// section checksum, returning the payload byte ranges by section id.
func indexSections(data []byte) ([][]byte, error) {
	if len(data) < idxPreludeSize+idxFooterSize {
		return nil, badIdx("file too small (%d bytes)", len(data))
	}
	if string(data[:8]) != idxMagic {
		return nil, badIdx("bad magic %q", data[:8])
	}
	foot := data[len(data)-idxFooterSize:]
	if string(foot[24:]) != idxMagic {
		return nil, badIdx("bad trailing magic (file truncated?)")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != idxVersion {
		return nil, badIdx("unsupported version %d (want %d)", v, idxVersion)
	}
	if v := binary.LittleEndian.Uint32(foot[12:]); v != idxVersion {
		return nil, badIdx("footer version %d disagrees with prelude", v)
	}
	count := binary.LittleEndian.Uint32(foot[8:])
	if count != idxNumSections || binary.LittleEndian.Uint32(data[12:]) != idxNumSections {
		return nil, badIdx("section count %d, want %d", count, idxNumSections)
	}
	tableOff := binary.LittleEndian.Uint64(foot)
	tableLen := uint64(idxNumSections) * idxTableEntSize
	body := uint64(len(data) - idxFooterSize)
	if body < idxPreludeSize+tableLen || tableOff != body-tableLen {
		return nil, badIdx("section table at %d does not abut the footer", tableOff)
	}
	table := data[tableOff : tableOff+tableLen]
	if crc := crc32.Checksum(table, idxCastagnoli); crc != binary.LittleEndian.Uint32(foot[16:]) {
		return nil, badIdx("section table checksum mismatch")
	}
	secs := make([][]byte, idxNumSections)
	for i := range secs {
		ent := table[i*idxTableEntSize:]
		off := binary.LittleEndian.Uint64(ent)
		length := binary.LittleEndian.Uint64(ent[8:])
		if off%8 != 0 || off < idxPreludeSize || off+length < off || off+length > tableOff {
			return nil, badIdx("section %d range [%d,%d) escapes the file", i, off, off+length)
		}
		sec := data[off : off+length]
		if crc := crc32.Checksum(sec, idxCastagnoli); crc != binary.LittleEndian.Uint32(ent[16:]) {
			return nil, badIdx("section %d checksum mismatch", i)
		}
		secs[i] = sec
	}
	return secs, nil
}

// ---------------------------------------------------------------------
// LoadOrBuild

// LoadOrBuild restores the index from the sidecar at path when it
// matches the fingerprint of (rels, opt), and builds it fresh from the
// target endpoint otherwise. Any open failure — missing file, I/O
// error, corruption, stale fingerprint — falls back to building, never
// to wrong candidates; loaded reports which path produced the index.
// An empty path always builds.
func LoadOrBuild(ctx context.Context, path string, target endpoint.Endpoint, rels []string, links Translator, opt Options) (ix *Index, loaded bool, err error) {
	if path != "" {
		if ix, err := openMatching(path, Fingerprint(rels, opt)); err == nil {
			return ix, true, nil
		}
	}
	ix, err = BuildCtx(ctx, target, rels, links, opt)
	return ix, false, err
}

// openMatching opens a sidecar and checks it against the wanted
// fingerprint, wrapping a mismatch in ErrStaleIndex.
func openMatching(path string, want uint64) (*Index, error) {
	ix, err := OpenIndex(path)
	if err != nil {
		return nil, err
	}
	if got := ix.Fingerprint(); got != want {
		return nil, fmt.Errorf("%w: %s has %016x, want %016x", ErrStaleIndex, path, got, want)
	}
	return ix, nil
}
