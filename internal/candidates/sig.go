package candidates

import "sort"

// sigIndex is the instance-signature side of the Index: a minhash
// sketch per relation over its sampled (subject, object) key set, LSH
// band buckets for sub-linear candidate lookup, and the exact sorted
// key sets for the all-pairs reference scorer.
//
// Minhash signatures exist purely to select candidates: relations
// whose signatures agree on every row of some band collide in that
// band's bucket. Scoring then runs on the stored exact key sets, so
// the band-collision pool — which relations get scored at all — is the
// index's only approximation.
type sigIndex struct {
	hashes, bands, rows int
	seed                uint64

	// sigs holds each relation's minhash signature, flattened:
	// sigs[rel*hashes : (rel+1)*hashes]. Relations with an empty key
	// set have no signature (empty[rel] is true) and never collide.
	sigs  []uint64
	empty []bool

	// CSR exact key sets: keys[keyStart[rel]:keyStart[rel+1]], sorted.
	keyStart []int32
	keys     []uint64

	// buckets maps a band hash to the relations whose signature falls
	// in that bucket, ascending.
	buckets map[uint64][]int32
}

// splitmix64 is the standard 64-bit finalizer used to derive the
// per-position hash functions and band bucket keys.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a hashes a string (64-bit FNV-1a).
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Key constructors tag the term role so a subject IRI and an object
// IRI of the same entity stay distinct keys.
func subjectKey(iri string) uint64 { return splitmix64(fnv64a(iri) ^ 0x5368) } // "Sh"
func objectKey(iri string) uint64  { return splitmix64(fnv64a(iri) ^ 0x4f62) } // "Ob"
func literalKey(lex string) uint64 { return splitmix64(fnv64a(lex) ^ 0x4c69) } // "Li"

// minhash fills sig (length hashes) with the minimum of
// splitmix64(key ^ seed_i) over keys for each hash position i.
func minhash(sig []uint64, keys []uint64, seed uint64) {
	for i := range sig {
		hseed := splitmix64(seed + uint64(i))
		min := ^uint64(0)
		for _, k := range keys {
			if h := splitmix64(k ^ hseed); h < min {
				min = h
			}
		}
		sig[i] = min
	}
}

// bandHash folds one band of a signature into a bucket key. The band
// index participates so equal row values in different bands do not
// alias into one bucket.
func bandHash(band int, rowsVals []uint64) uint64 {
	h := splitmix64(uint64(band) + 0x9e37)
	for _, v := range rowsVals {
		h = splitmix64(h ^ v)
	}
	return h
}

// buildSigIndex derives signatures, buckets and exact key sets from the
// per-relation sampled key sets (index order = ix.rels order).
func (ix *Index) buildSigIndex(sets [][]uint64) {
	s := &ix.sig
	s.hashes = ix.opt.Hashes
	s.bands = ix.opt.Bands
	s.rows = s.hashes / s.bands
	s.seed = ix.opt.Seed
	N := len(ix.rels)

	s.keyStart = make([]int32, N+1)
	total := 0
	for _, set := range sets {
		total += len(set)
	}
	s.keys = make([]uint64, 0, total)
	s.sigs = make([]uint64, N*s.hashes)
	s.empty = make([]bool, N)
	s.buckets = make(map[uint64][]int32)
	for i, set := range sets {
		s.keyStart[i+1] = s.keyStart[i] + int32(len(set))
		s.keys = append(s.keys, set...)
		if len(set) == 0 {
			s.empty[i] = true
			continue
		}
		sig := s.sigs[i*s.hashes : (i+1)*s.hashes]
		minhash(sig, set, s.seed)
		for b := 0; b < s.bands; b++ {
			key := bandHash(b, sig[b*s.rows:(b+1)*s.rows])
			s.buckets[key] = append(s.buckets[key], int32(i))
		}
	}
}

// candidates appends to out the relations colliding with sig in at
// least one band, deduplicated ascending. Empty-signature queries
// yield nothing.
func (s *sigIndex) candidates(sig []uint64, out []int32) []int32 {
	for b := 0; b < s.bands; b++ {
		key := bandHash(b, sig[b*s.rows:(b+1)*s.rows])
		out = append(out, s.buckets[key]...)
	}
	if len(out) < 2 {
		return out
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// exactJaccard computes |Q ∩ rel| / |Q ∪ rel| over the sorted key
// sets — the all-pairs reference. Either side empty scores 0.
func (s *sigIndex) exactJaccard(q []uint64, rel int32) float64 {
	rk := s.keys[s.keyStart[rel]:s.keyStart[rel+1]]
	if len(q) == 0 || len(rk) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(q) && j < len(rk) {
		switch {
		case q[i] < rk[j]:
			i++
		case q[i] > rk[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return float64(inter) / float64(len(q)+len(rk)-inter)
}
