package sampling

import (
	"strings"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sameas"
	"sofya/internal/strsim"
)

const (
	yNS = "http://y/" // K (head side)
	dNS = "http://d/" // K' (body side)
)

// paperWorld builds the paper's §2.2 examples by hand:
//
//	K  (yago-ish):  creatorOf, directedBy, bornYear (literal)
//	K' (dbp-ish):   composerOf ⊂ creatorOf, writerOf ⊂ creatorOf,
//	                hasDirector ≡ directedBy, hasProducer (confounder),
//	                birthDate (literal ≡ bornYear)
func paperWorld() (*kb.KB, *kb.KB, *sameas.Links) {
	y := kb.New("K")
	d := kb.New("Kprime")
	links := sameas.New()

	link := func(name string) (string, string) {
		a, b := yNS+name, dNS+name
		links.Add(a, b) // A side = K(y), B side = K'(d)
		return a, b
	}

	// entities: composers c0..c4 (compose only), writers w0..w4,
	// polymath p (composes and writes), movies m0..m5, directors,
	// producers.
	for i := 0; i < 6; i++ {
		n := string(rune('0' + i))
		link("comp" + n) // compositions
		link("book" + n) // books
		link("movie" + n)
		link("dirP" + n)
		link("prodP" + n)
	}
	for i := 0; i < 5; i++ {
		n := string(rune('0' + i))
		link("c" + n)
		link("w" + n)
	}
	link("poly")

	addBoth := func(yRel, dRel, s, o string) {
		y.AddIRIs(yNS+s, yNS+yRel, yNS+o)
		d.AddIRIs(dNS+s, dNS+dRel, dNS+o)
	}

	// composers create compositions; writers create books
	for i := 0; i < 5; i++ {
		n := string(rune('0' + i))
		addBoth("creatorOf", "composerOf", "c"+n, "comp"+n)
		addBoth("creatorOf", "writerOf", "w"+n, "book"+n)
	}
	// the polymath creates one of each — the UBS overlap subject
	addBoth("creatorOf", "composerOf", "poly", "comp5")
	addBoth("creatorOf", "writerOf", "poly", "book5")

	// movies: directors; producers same person for movies 0..3,
	// different for movies 4..5
	for i := 0; i < 6; i++ {
		n := string(rune('0' + i))
		addBoth("directedBy", "hasDirector", "movie"+n, "dirP"+n)
		if i < 4 {
			// producer == director
			y.AddIRIs(yNS+"movie"+n, yNS+"producedBy", yNS+"dirP"+n)
			d.AddIRIs(dNS+"movie"+n, dNS+"hasProducer", dNS+"dirP"+n)
		} else {
			y.AddIRIs(yNS+"movie"+n, yNS+"producedBy", yNS+"prodP"+n)
			d.AddIRIs(dNS+"movie"+n, dNS+"hasProducer", dNS+"prodP"+n)
		}
	}

	// literal relation: bornYear (gYear) vs birthDate (date)
	for i := 0; i < 5; i++ {
		n := string(rune('0' + i))
		y.Add(rdf.NewTriple(rdf.NewIRI(yNS+"c"+n), rdf.NewIRI(yNS+"bornYear"),
			rdf.NewTypedLiteral("190"+n, rdf.XSDGYear)))
		d.Add(rdf.NewTriple(rdf.NewIRI(dNS+"c"+n), rdf.NewIRI(dNS+"birthDate"),
			rdf.NewTypedLiteral("190"+n+"-03-04", rdf.XSDDate)))
	}

	return y, d, links
}

func newValidator(t *testing.T) (*Validator, *endpoint.Local, *endpoint.Local) {
	t.Helper()
	y, d, links := paperWorld()
	ky := endpoint.NewLocal(y, 11)
	kd := endpoint.NewLocal(d, 22)
	v := &Validator{
		K:       ky,
		KPrime:  kd,
		Links:   LinkView{Links: links, KIsA: true},
		Matcher: strsim.DefaultMatcher(),
	}
	return v, ky, kd
}

func TestLinkView(t *testing.T) {
	links := sameas.New()
	links.Add("a1", "b1")
	v := LinkView{Links: links, KIsA: true}
	if got, ok := v.ToK("b1"); !ok || got != "a1" {
		t.Fatalf("ToK = %q, %v", got, ok)
	}
	if got, ok := v.FromK("a1"); !ok || got != "b1" {
		t.Fatalf("FromK = %q, %v", got, ok)
	}
	fl := v.Flip()
	if got, ok := fl.ToK("a1"); !ok || got != "b1" {
		t.Fatalf("flipped ToK = %q, %v", got, ok)
	}
	if _, ok := fl.ToK("zzz"); ok {
		t.Fatal("unknown entity translated")
	}
}

func TestSampleBody(t *testing.T) {
	v, _, _ := newValidator(t)
	set, err := v.SampleBody(dNS+"composerOf", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Subjects) != 3 {
		t.Fatalf("subjects = %d, want 3", len(set.Subjects))
	}
	for _, f := range set.Facts {
		if !strings.HasPrefix(f.X, yNS) {
			t.Fatalf("subject not translated: %q", f.X)
		}
		if !f.Y.IsIRI() || !strings.HasPrefix(f.Y.Value, yNS) {
			t.Fatalf("object not translated: %v", f.Y)
		}
	}
}

func TestSampleBodyMoreThanAvailable(t *testing.T) {
	v, _, _ := newValidator(t)
	set, err := v.SampleBody(dNS+"composerOf", 100)
	if err != nil {
		t.Fatal(err)
	}
	// 5 composers + the polymath
	if len(set.Subjects) != 6 {
		t.Fatalf("subjects = %d, want 6", len(set.Subjects))
	}
	if len(set.Facts) != 6 {
		t.Fatalf("facts = %d, want 6", len(set.Facts))
	}
}

func TestSampleBodySkipsUnlinked(t *testing.T) {
	y, d, links := paperWorld()
	// an unlinked fact: subject with no sameAs
	d.AddIRIs(dNS+"ghost", dNS+"composerOf", dNS+"comp0")
	v := &Validator{
		K:      endpoint.NewLocal(y, 1),
		KPrime: endpoint.NewLocal(d, 2),
		Links:  LinkView{Links: links, KIsA: true},
	}
	set, err := v.SampleBody(dNS+"composerOf", 100)
	if err != nil {
		t.Fatal(err)
	}
	if set.SkippedNoLink == 0 {
		t.Fatal("unlinked fact not counted as skipped")
	}
	for _, f := range set.Facts {
		if strings.Contains(f.X, "ghost") {
			t.Fatal("unlinked subject sampled")
		}
	}
}

func TestSimpleEvidenceTrueRule(t *testing.T) {
	v, _, _ := newValidator(t)
	// composerOf ⇒ creatorOf is true: every sampled fact confirmed
	ev, set, err := v.SimpleEvidence(dNS+"composerOf", yNS+"creatorOf", 10)
	if err != nil {
		t.Fatal(err)
	}
	if set == nil || ev.Total() == 0 {
		t.Fatal("no evidence gathered")
	}
	if ev.Support() != ev.Total() {
		t.Fatalf("true rule has counterexamples: %d/%d", ev.Support(), ev.Total())
	}
	if ev.PCAConf() != 1 || ev.CWAConf() != 1 {
		t.Fatalf("confidences = %f, %f", ev.PCAConf(), ev.CWAConf())
	}
}

func TestSimpleEvidenceWrongDirectionIsBlindWithoutUBS(t *testing.T) {
	// creatorOf ⇒ composerOf (wrong: creators also write books). With
	// simple sampling the polymath might expose it, but pure composers
	// dominate; verify the measure shape rather than a fixed number:
	// pca ≥ cwa, and support < total (the writers' books are
	// unconfirmed).
	v, _, _ := newValidator(t)
	flip := &Validator{K: v.KPrime, KPrime: v.K, Links: LinkView{Links: v.Links.(LinkView).Links, KIsA: false}, Matcher: v.Matcher}
	ev, _, err := flip.SimpleEvidence(yNS+"creatorOf", dNS+"composerOf", 12)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total() == 0 {
		t.Fatal("no evidence")
	}
	if ev.PCAConf() < ev.CWAConf() {
		t.Fatalf("pca (%f) < cwa (%f)", ev.PCAConf(), ev.CWAConf())
	}
	if ev.Support() == ev.Total() {
		t.Fatal("wrong rule fully confirmed — world construction broken")
	}
}

func TestHeadObjects(t *testing.T) {
	v, _, _ := newValidator(t)
	objs, err := v.HeadObjects(yNS+"creatorOf", yNS+"poly")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objects = %v", objs)
	}
}

func TestLiteralEvidence(t *testing.T) {
	v, _, _ := newValidator(t)
	// birthDate(x, 1900-03-04) ⇒ bornYear(x, 1900): literal matcher
	// bridges date vs gYear.
	ev, _, err := v.SimpleEvidence(dNS+"birthDate", yNS+"bornYear", 10)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total() != 5 {
		t.Fatalf("evidence total = %d, want 5", ev.Total())
	}
	if ev.Support() != 5 {
		t.Fatalf("support = %d, want 5", ev.Support())
	}
}

func TestLiteralEvidenceWithoutMatcher(t *testing.T) {
	v, _, _ := newValidator(t)
	v.Matcher = nil
	ev, set, err := v.SimpleEvidence(dNS+"birthDate", yNS+"bornYear", 10)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total() != 0 || set.SkippedNoLink != 5 {
		t.Fatalf("matcherless literal sampling: total=%d skipped=%d", ev.Total(), set.SkippedNoLink)
	}
}

func TestContradictionsComposerWriter(t *testing.T) {
	v, _, _ := newValidator(t)
	// siblings composerOf/writerOf against creatorOf: the polymath is
	// the only overlap subject; creatorOf holds for both of its works,
	// so the row refutes the equivalence creatorOf ⇔ composerOf but NOT
	// the subsumption writerOf ⇒ creatorOf.
	res, err := v.Contradictions(BodySide, dNS+"composerOf", dNS+"writerOf", yNS+"creatorOf", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (the polymath)", len(res.Rows))
	}
	if res.CounterReverse() != 1 {
		t.Fatal("equivalence not refuted")
	}
	if res.CounterSubsumption() != 0 {
		t.Fatal("true subsumption wrongly refuted")
	}
}

func TestContradictionsDirectorProducer(t *testing.T) {
	v, _, _ := newValidator(t)
	// siblings hasDirector/hasProducer against directedBy: movies 4..5
	// have producer ≠ director; directedBy(x, director) holds while
	// directedBy(x, producer) does not → refutes hasProducer ⇒ directedBy.
	res, err := v.Contradictions(BodySide, dNS+"hasDirector", dNS+"hasProducer", yNS+"directedBy", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (movies 4,5)", len(res.Rows))
	}
	if res.CounterSubsumption() != 2 {
		t.Fatalf("wrong subsumption not refuted: %+v", res.Rows)
	}
	if res.CounterReverse() != 0 {
		t.Fatal("phantom equivalence refutation")
	}
}

func TestContradictionsHeadSide(t *testing.T) {
	v, _, _ := newValidator(t)
	// Mirror test: sample overlap subjects of creatorOf… there is no
	// sibling of creatorOf in K, so use the composer/writer pair through
	// the head side of the flipped direction instead: siblings live in
	// K (here K'), check relation lives in K'. We emulate the flipped
	// aligner direction: rules yago-body ⇒ dbp-head.
	res, err := v.Contradictions(HeadSide, yNS+"creatorOf", yNS+"creatorOf", dNS+"composerOf", 10)
	if err != nil {
		t.Fatal(err)
	}
	// a(x,y1) ∧ a(x,y2) ∧ ¬a(x,y2) is unsatisfiable with a == b… except
	// for multi-object subjects (poly): y1=comp5,y2=book5 with
	// ¬creatorOf(poly, book5) false → zero rows.
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0 for degenerate sibling pair", len(res.Rows))
	}
}

func TestContradictionsQueryBudget(t *testing.T) {
	v, ky, kd := newValidator(t)
	ky.ResetStats()
	kd.ResetStats()
	_, err := v.Contradictions(BodySide, dNS+"hasDirector", dNS+"hasProducer", yNS+"directedBy", 10)
	if err != nil {
		t.Fatal(err)
	}
	// 1 overlap query on K' + one object fetch per distinct subject on K
	if kd.Stats().Queries != 1 {
		t.Fatalf("K' queries = %d, want 1", kd.Stats().Queries)
	}
	if ky.Stats().Queries != 2 {
		t.Fatalf("K queries = %d, want 2 (two movies)", ky.Stats().Queries)
	}
}

func TestSimpleEvidenceEmptyRelation(t *testing.T) {
	v, _, _ := newValidator(t)
	ev, set, err := v.SimpleEvidence(dNS+"nonexistent", yNS+"creatorOf", 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total() != 0 || len(set.Subjects) != 0 {
		t.Fatal("evidence from empty relation")
	}
}
