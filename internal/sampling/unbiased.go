package sampling

import (
	"context"
	"fmt"

	"sofya/internal/endpoint"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// Side selects which KB a contradiction search samples from.
type Side uint8

const (
	// BodySide samples sibling relations that live in K' (the rule
	// bodies). This is the paper's presentation: candidates
	// K':r' and K':r'' subsumed by K:r.
	BodySide Side = iota
	// HeadSide samples sibling relations that live in K. It is the same
	// primitive applied to the mirrored problem, used to prune rules
	// whose body is broader than their head (e.g. created ⇒ composerOf
	// is refuted by sampling composerOf/writerOf overlap subjects from
	// the head-side KB).
	HeadSide
)

// Contradiction is one UBS sample row, fully translated into the
// opposite KB's identifier space and checked against the relation under
// test.
type Contradiction struct {
	// X is the overlap subject (identifier space of the checked KB).
	X string
	// Y1 is the object of the first sibling a (a(x,y1) held).
	Y1 rdf.Term
	// Y2 is the object of the second sibling b (b(x,y2) held, ¬a(x,y2)).
	Y2 rdf.Term
	// CheckY1 and CheckY2 report whether the checked relation holds for
	// (x,y1) and (x,y2) in the opposite KB.
	CheckY1, CheckY2 bool
}

// RefutesSubsumption reports whether this row is a PCA counter-example
// to b ⇒ check: check(x,y1) holds but check(x,y2) does not, so the
// subject provably has check-facts and b(x,y2) is uncovered.
func (c Contradiction) RefutesSubsumption() bool { return c.CheckY1 && !c.CheckY2 }

// RefutesReverse reports whether this row is a PCA counter-example to
// check ⇒ a: check(x,y2) holds while a(x,y2) is known false (the query
// guarantees ¬a(x,y2)) and x provably has a-facts (a(x,y1)). When a ⇒
// check is a mined subsumption, this demotes a ⇔ check to a strict
// subsumption — the paper's "wrong equivalence" case.
func (c Contradiction) RefutesReverse() bool { return c.CheckY2 }

// UBSResult aggregates a contradiction search for a sibling pair (a,b)
// against relation check.
type UBSResult struct {
	// Rows are the translated, checked sample rows.
	Rows []Contradiction
	// Sampled counts raw overlap rows inspected before translation
	// filtering. The overlap query streams, so rows past the m-th
	// translated contradiction are never pulled or counted.
	Sampled int
	// Untranslatable counts rows dropped for missing sameAs links.
	Untranslatable int
}

// CounterSubsumption counts rows refuting b ⇒ check.
func (u *UBSResult) CounterSubsumption() int {
	n := 0
	for _, r := range u.Rows {
		if r.RefutesSubsumption() {
			n++
		}
	}
	return n
}

// CounterReverse counts rows refuting check ⇒ a.
func (u *UBSResult) CounterReverse() int {
	n := 0
	for _, r := range u.Rows {
		if r.RefutesReverse() {
			n++
		}
	}
	return n
}

// Contradictions runs Unbiased Sample Extraction for the sibling pair
// (a, b) against relation check. With side == BodySide, a and b are K'
// relations and check is a K relation; with side == HeadSide the roles
// are mirrored. It samples up to m overlap subjects
// x: a(x,y1) ∧ b(x,y2) ∧ ¬a(x,y2), translates each row into the opposite
// KB, and evaluates check(x,y1) / check(x,y2) there.
//
// Entity-entity relations only: rows with literal objects are skipped
// (literal candidates are validated by the simple sampler alone).
func (v *Validator) Contradictions(side Side, a, b, check string, m int) (*UBSResult, error) {
	if err := v.prepare(); err != nil {
		return nil, err
	}
	overlap, checkObjs := v.pOverlapBody, v.pHeadObjects
	translate := v.Links.ToK
	if side == HeadSide {
		overlap, checkObjs = v.pOverlapHead, v.pPrimeObjs
		translate = v.Links.FromK
	}
	rows, err := overlap.Stream(context.Background(), sparql.IRIArg(a), sparql.IRIArg(b), sparql.IntArg(v.window(m)))
	if err != nil {
		return nil, fmt.Errorf("sampling: UBS overlap query (%s,%s): %w", a, b, err)
	}
	defer rows.Close()
	out := &UBSResult{}
	objsCache := map[string][]rdf.Term{}
	for len(out.Rows) < m && rows.Next() {
		out.Sampled++
		row := rows.Row()
		xp, y1p, y2p := row[0], row[1], row[2]
		if !xp.IsIRI() || !y1p.IsIRI() || !y2p.IsIRI() {
			continue
		}
		x, okX := translate(xp.Value)
		y1, okY1 := translate(y1p.Value)
		y2, okY2 := translate(y2p.Value)
		if !okX || !okY1 || !okY2 {
			out.Untranslatable++
			continue
		}
		objs, cached := objsCache[x]
		if !cached {
			var err error
			objs, err = fetchObjects(checkObjs, check, x)
			if err != nil {
				return nil, err
			}
			objsCache[x] = objs
		}
		c := Contradiction{
			X:       x,
			Y1:      rdf.NewIRI(y1),
			Y2:      rdf.NewIRI(y2),
			CheckY1: containsIRI(objs, y1),
			CheckY2: containsIRI(objs, y2),
		}
		out.Rows = append(out.Rows, c)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("sampling: UBS overlap query (%s,%s): %w", a, b, err)
	}
	return out, nil
}

// fetchObjects retrieves all objects of r(x, ·) through the prepared
// object probe — the same template Simple Sample Extraction uses, so a
// caching endpoint deduplicates the two stages against each other.
func fetchObjects(pq endpoint.PreparedQuery, r, x string) ([]rdf.Term, error) {
	res, err := pq.Select(sparql.IRIArg(x), sparql.IRIArg(r))
	if err != nil {
		return nil, fmt.Errorf("sampling: UBS check objects of <%s> for <%s>: %w", r, x, err)
	}
	out := make([]rdf.Term, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, row[0])
	}
	return out, nil
}

func containsIRI(objs []rdf.Term, iri string) bool {
	for _, o := range objs {
		if o.IsIRI() && o.Value == iri {
			return true
		}
	}
	return false
}
