// Package sampling implements the two instance-sampling strategies of
// SOFYA §2.2 over SPARQL endpoints:
//
//   - Simple Sample Extraction: a pseudo-random sample of subjects of a
//     candidate relation r_sub in K', restricted to facts whose subject
//     (and, for entity objects, object) carries a sameAs link into K;
//     the sampled facts are translated into K identifiers (the set
//     P^rsub_S) and all r-facts of the translated subjects are fetched
//     from K, as required by the PCA denominator.
//
//   - Unbiased Sample Extraction (UBS): a targeted search for subjects
//     x with a(x,y1) ∧ b(x,y2) ∧ ¬a(x,y2) over two sibling relations
//     a, b — exactly the contradiction pattern that exposes (i) wrong
//     equivalences (r(x,y1) ∧ r(x,y2) both hold in the other KB) and
//     (ii) wrong subsumptions (r(x,y1) holds but r(x,y2) does not).
//
// Both samplers speak only SPARQL against endpoint.Endpoint values and
// translate entities through a Translator, so they run unchanged against
// in-process KBs and remote HTTP endpoints.
package sampling

import (
	"context"
	"fmt"
	"sync"

	"sofya/internal/endpoint"
	"sofya/internal/ilp"
	"sofya/internal/rdf"
	"sofya/internal/sameas"
	"sofya/internal/sparql"
	"sofya/internal/strsim"
)

// Query templates of the sampling stages. Each sampler executes its
// probes through endpoint.PreparedQuery handles compiled once per
// validator (see Validator.prepare), so the per-probe cost is argument
// binding — no query construction, parsing or planning. The object
// probe is shared by Simple Sample Extraction and the UBS check stage:
// with a caching endpoint the two stages deduplicate against each
// other, exactly as their identical query texts used to.
const (
	// TmplSample randomly samples facts of one relation.
	TmplSample = "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n"
	// TmplObjects fetches every object of r(x, ·).
	TmplObjects = "SELECT ?y WHERE { $x $r ?y }"
	// TmplOverlap is the UBS contradiction pattern
	// a(x,y1) ∧ b(x,y2) ∧ ¬a(x,y2).
	TmplOverlap = `SELECT ?x ?y1 ?y2 WHERE {
  ?x $a ?y1 .
  ?x $b ?y2 .
  FILTER NOT EXISTS { ?x $a ?y2 }
} ORDER BY RAND() LIMIT $n`
)

// Translator converts entity IRIs between the two KBs' namespaces.
type Translator interface {
	// ToK maps a K'-entity IRI to its K equivalent.
	ToK(kPrime string) (string, bool)
	// FromK maps a K-entity IRI to its K' equivalent.
	FromK(k string) (string, bool)
}

// LinkView adapts a sameas.Links to a Translator. If KIsA, the link
// set's A side is the K (head-side) KB; otherwise B is.
type LinkView struct {
	Links *sameas.Links
	KIsA  bool
}

// ToK implements Translator.
func (v LinkView) ToK(kPrime string) (string, bool) {
	if v.KIsA {
		return v.Links.BtoA(kPrime)
	}
	return v.Links.AtoB(kPrime)
}

// FromK implements Translator.
func (v LinkView) FromK(k string) (string, bool) {
	if v.KIsA {
		return v.Links.AtoB(k)
	}
	return v.Links.BtoA(k)
}

// Flip returns the Translator for the swapped direction.
func (v LinkView) Flip() LinkView { return LinkView{Links: v.Links, KIsA: !v.KIsA} }

// Validator runs sampling-based validation of candidate rules between a
// head-side endpoint K and a body-side endpoint KPrime.
type Validator struct {
	// K is the endpoint of the source KB (rule heads r).
	K endpoint.Endpoint
	// KPrime is the endpoint of the target KB (rule bodies r_sub).
	KPrime endpoint.Endpoint
	// Links translates entities between the KBs.
	Links Translator
	// Matcher aligns literal objects; nil disables literal alignment.
	Matcher *strsim.LiteralMatcher
	// FetchWindow bounds how many candidate facts one sampling query
	// retrieves before link-filtering (default 40× the sample size).
	FetchWindow int

	// prepared probe handles, compiled lazily once per validator.
	prepOnce     sync.Once
	prepErr      error
	pBodySample  endpoint.PreparedQuery // on KPrime: TmplSample
	pHeadObjects endpoint.PreparedQuery // on K: TmplObjects
	pPrimeObjs   endpoint.PreparedQuery // on KPrime: TmplObjects
	pOverlapBody endpoint.PreparedQuery // on KPrime: TmplOverlap
	pOverlapHead endpoint.PreparedQuery // on K: TmplOverlap
}

// prepare compiles the validator's probe templates against both
// endpoints, once.
func (v *Validator) prepare() error {
	v.prepOnce.Do(func() {
		prep := func(ep endpoint.Endpoint, tmpl string, params ...string) endpoint.PreparedQuery {
			if v.prepErr != nil {
				return nil
			}
			pq, err := ep.Prepare(tmpl, params...)
			if err != nil {
				v.prepErr = fmt.Errorf("sampling: preparing probe against %s: %w", ep.Name(), err)
			}
			return pq
		}
		v.pBodySample = prep(v.KPrime, TmplSample, "r", "n")
		v.pHeadObjects = prep(v.K, TmplObjects, "x", "r")
		v.pPrimeObjs = prep(v.KPrime, TmplObjects, "x", "r")
		v.pOverlapBody = prep(v.KPrime, TmplOverlap, "a", "b", "n")
		v.pOverlapHead = prep(v.K, TmplOverlap, "a", "b", "n")
	})
	return v.prepErr
}

// BodyFact is one sampled r_sub fact translated into K space.
type BodyFact struct {
	// XPrime, YPrime are the original K' terms.
	XPrime, YPrime rdf.Term
	// X is the subject translated into K.
	X string
	// Y is the object translated into K: an IRI term for entities, the
	// original literal for literal objects.
	Y rdf.Term
}

// SampleSet is the outcome of Simple Sample Extraction for one
// candidate: the translated pairs P^rsub_S grouped by subject.
type SampleSet struct {
	// Subjects lists the distinct sampled subject IRIs (K space), in
	// sample order; at most the requested sample size.
	Subjects []string
	// Facts holds every translated r_sub fact of the sampled subjects.
	Facts []BodyFact
	// SkippedNoLink counts fetched facts dropped for missing sameAs
	// links (the paper: such facts are ignored, not punished).
	SkippedNoLink int
}

func (v *Validator) window(n int) int {
	if v.FetchWindow > 0 {
		return v.FetchWindow
	}
	w := 40 * n
	if w < 200 {
		w = 200
	}
	return w
}

// SampleBody performs Simple Sample Extraction for rsub: it samples up
// to n subject entities of rsub in K' whose facts translate into K, and
// returns all their translated rsub facts. The sample window streams
// row by row — the full window is never materialized at once.
func (v *Validator) SampleBody(rsub string, n int) (*SampleSet, error) {
	if err := v.prepare(); err != nil {
		return nil, err
	}
	rows, err := v.pBodySample.Stream(context.Background(), sparql.IRIArg(rsub), sparql.IntArg(v.window(n)))
	if err != nil {
		return nil, fmt.Errorf("sampling: body sample for <%s>: %w", rsub, err)
	}
	defer rows.Close()
	set := &SampleSet{}
	seen := map[string]bool{}
	factsBySubject := map[string][]BodyFact{}
	for rows.Next() {
		row := rows.Row()
		xp, yp := row[0], row[1]
		if !xp.IsIRI() {
			continue
		}
		x, ok := v.Links.ToK(xp.Value)
		if !ok {
			set.SkippedNoLink++
			continue
		}
		var y rdf.Term
		switch {
		case yp.IsLiteral():
			if v.Matcher == nil {
				set.SkippedNoLink++
				continue
			}
			y = yp
		case yp.IsIRI():
			yk, ok := v.Links.ToK(yp.Value)
			if !ok {
				set.SkippedNoLink++
				continue
			}
			y = rdf.NewIRI(yk)
		default:
			continue
		}
		if !seen[xp.Value] {
			if len(set.Subjects) >= n {
				continue
			}
			seen[xp.Value] = true
			set.Subjects = append(set.Subjects, x)
		}
		factsBySubject[x] = append(factsBySubject[x], BodyFact{XPrime: xp, YPrime: yp, X: x, Y: y})
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("sampling: body sample for <%s>: %w", rsub, err)
	}
	for _, x := range set.Subjects {
		set.Facts = append(set.Facts, factsBySubject[x]...)
	}
	return set, nil
}

// HeadObjects fetches every object of r(x, ·) from K — the full r-facts
// of one sampled subject, as pcaconf requires.
func (v *Validator) HeadObjects(r, x string) ([]rdf.Term, error) {
	if err := v.prepare(); err != nil {
		return nil, err
	}
	res, err := v.pHeadObjects.Select(sparql.IRIArg(x), sparql.IRIArg(r))
	if err != nil {
		return nil, fmt.Errorf("sampling: head objects of <%s> for <%s>: %w", r, x, err)
	}
	out := make([]rdf.Term, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, row[0])
	}
	return out, nil
}

// SimpleEvidence runs the full Simple Sample Extraction pipeline for the
// rule rsub ⇒ r with a sample of n subjects and returns the evidence
// (one PairEvidence per translated rsub fact).
func (v *Validator) SimpleEvidence(rsub, r string, n int) (*ilp.Evidence, *SampleSet, error) {
	set, err := v.SampleBody(rsub, n)
	if err != nil {
		return nil, nil, err
	}
	ev := &ilp.Evidence{}
	headObjs := map[string][]rdf.Term{}
	for _, x := range set.Subjects {
		objs, err := v.HeadObjects(r, x)
		if err != nil {
			return nil, nil, err
		}
		headObjs[x] = objs
	}
	for _, f := range set.Facts {
		objs := headObjs[f.X]
		ev.Add(ilp.PairEvidence{
			X:              f.X,
			Y:              f.Y.String(),
			HeadHolds:      v.objectMatches(f.Y, objs),
			SubjectHasHead: len(objs) > 0,
		})
	}
	return ev, set, nil
}

// objectMatches decides whether the translated object y occurs among the
// head objects: IRI equality for entities, literal matching for
// literals.
func (v *Validator) objectMatches(y rdf.Term, objs []rdf.Term) bool {
	if y.IsLiteral() {
		if v.Matcher == nil {
			return false
		}
		_, _, ok := v.Matcher.Best(y, objs)
		return ok
	}
	for _, o := range objs {
		if o == y {
			return true
		}
	}
	return false
}
