package sameas

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAddAndTranslate(t *testing.T) {
	l := New()
	if !l.Add("a1", "b1") {
		t.Fatal("first Add not fresh")
	}
	if l.Add("a1", "b2") {
		t.Fatal("second Add for same A reported fresh")
	}
	b, ok := l.AtoB("a1")
	if !ok || b != "b1" {
		t.Fatalf("AtoB = %q, %v", b, ok)
	}
	a, ok := l.BtoA("b1")
	if !ok || a != "a1" {
		t.Fatalf("BtoA = %q, %v", a, ok)
	}
	if _, ok := l.AtoB("ghost"); ok {
		t.Fatal("translation for unknown entity")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSameClosure(t *testing.T) {
	l := New()
	l.Add("a1", "b1")
	l.Add("a2", "b1") // a1 ~ b1 ~ a2
	l.Add("a3", "b3")
	if !l.Same("a1", "a2") {
		t.Fatal("closure missing a1~a2")
	}
	if !l.Same("a1", "b1") || !l.Same("b1", "a2") {
		t.Fatal("direct links missing")
	}
	if l.Same("a1", "a3") {
		t.Fatal("disjoint classes merged")
	}
	if l.Same("a1", "never-seen") {
		t.Fatal("unknown entity equivalent to known")
	}
	if !l.Same("x", "x") {
		t.Fatal("reflexivity")
	}
}

func TestInvert(t *testing.T) {
	l := New()
	l.Add("a1", "b1")
	l.Add("a2", "b2")
	inv := l.Invert()
	if b, ok := inv.AtoB("b1"); !ok || b != "a1" {
		t.Fatalf("inverted AtoB = %q, %v", b, ok)
	}
	if a, ok := inv.BtoA("a2"); !ok || a != "b2" {
		t.Fatalf("inverted BtoA = %q, %v", a, ok)
	}
}

func TestSubsetFractionAndDeterminism(t *testing.T) {
	l := New()
	for i := 0; i < 100; i++ {
		l.Add(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	half1 := l.Subset(0.5, 42)
	half2 := l.Subset(0.5, 42)
	if half1.Len() != 50 || half2.Len() != 50 {
		t.Fatalf("len = %d, %d", half1.Len(), half2.Len())
	}
	p1, p2 := half1.Pairs(), half2.Pairs()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different subsets")
		}
	}
	all := l.Subset(1.0, 1)
	if all.Len() != 100 {
		t.Fatalf("full subset len = %d", all.Len())
	}
	none := l.Subset(0, 1)
	if none.Len() != 0 {
		t.Fatalf("empty subset len = %d", none.Len())
	}
	// out-of-range fractions clamp
	if l.Subset(2.0, 1).Len() != 100 || l.Subset(-1, 1).Len() != 0 {
		t.Fatal("fraction clamping broken")
	}
}

// Property: Same is symmetric and transitive over random link graphs.
func TestQuickEquivalenceRelation(t *testing.T) {
	f := func(edges []uint8) bool {
		l := New()
		names := func(i uint8) (string, string) {
			return fmt.Sprintf("a%d", i%8), fmt.Sprintf("b%d", (i>>3)%8)
		}
		for _, e := range edges {
			a, b := names(e)
			l.Add(a, b)
		}
		var all []string
		for i := 0; i < 8; i++ {
			all = append(all, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
		}
		for _, x := range all {
			for _, y := range all {
				if l.Same(x, y) != l.Same(y, x) {
					return false
				}
				for _, z := range all {
					if l.Same(x, y) && l.Same(y, z) && !l.Same(x, z) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
