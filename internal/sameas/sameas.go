// Package sameas maintains the set E of owl:sameAs entity equivalences
// between two knowledge bases, which SOFYA's samplers use to translate
// sampled facts from K' into K identifiers.
//
// Links are kept both as a union-find over all entity IRIs (so chains of
// sameAs statements collapse into equivalence classes) and as direct
// translation maps between the two KBs. Real sameAs link sets are
// incomplete; Subset derives a deterministic random sub-sample for the
// coverage-sensitivity experiment (E5).
package sameas

import (
	"math/rand"
	"sort"
)

// Links is a bidirectional entity-equivalence registry between a KB "A"
// and a KB "B". The zero value is not usable; call New.
type Links struct {
	parent map[string]string
	rank   map[string]int
	ab     map[string]string // A-IRI -> B-IRI
	ba     map[string]string // B-IRI -> A-IRI
	pairs  []Pair            // insertion order, for iteration/Subset
}

// Pair is one sameAs statement between an entity of A and one of B.
type Pair struct {
	A, B string
}

// New returns an empty link set.
func New() *Links {
	return &Links{
		parent: make(map[string]string),
		rank:   make(map[string]int),
		ab:     make(map[string]string),
		ba:     make(map[string]string),
	}
}

// Add records owl:sameAs(a, b) with a an entity of KB A and b of KB B.
// The first link for an entity wins for translation purposes; later
// links still join the union-find equivalence class. Add reports whether
// the pair established a new translation (i.e. both directions were
// previously unmapped).
func (l *Links) Add(a, b string) bool {
	l.union(a, b)
	fresh := false
	if _, ok := l.ab[a]; !ok {
		l.ab[a] = b
		fresh = true
	}
	if _, ok := l.ba[b]; !ok {
		l.ba[b] = a
	} else {
		fresh = false
	}
	l.pairs = append(l.pairs, Pair{A: a, B: b})
	return fresh
}

// Len returns the number of recorded pairs (including duplicates).
func (l *Links) Len() int { return len(l.pairs) }

// AtoB translates an A-entity into its B equivalent.
func (l *Links) AtoB(a string) (string, bool) {
	b, ok := l.ab[a]
	return b, ok
}

// BtoA translates a B-entity into its A equivalent.
func (l *Links) BtoA(b string) (string, bool) {
	a, ok := l.ba[b]
	return a, ok
}

// Same reports whether x and y belong to the same equivalence class
// (possibly through a chain of links).
func (l *Links) Same(x, y string) bool {
	if x == y {
		return true
	}
	if _, ok := l.parent[x]; !ok {
		return false
	}
	if _, ok := l.parent[y]; !ok {
		return false
	}
	return l.find(x) == l.find(y)
}

// Pairs returns the recorded pairs in insertion order. The slice is a
// copy and safe to mutate.
func (l *Links) Pairs() []Pair {
	out := make([]Pair, len(l.pairs))
	copy(out, l.pairs)
	return out
}

// Invert returns a new Links with the roles of A and B swapped.
func (l *Links) Invert() *Links {
	inv := New()
	for _, p := range l.pairs {
		inv.Add(p.B, p.A)
	}
	return inv
}

// Subset returns a new Links containing a deterministic random fraction
// of the pairs (0 ≤ fraction ≤ 1), seeded by seed. Pair order is first
// canonicalized so that equal inputs yield equal outputs regardless of
// insertion order.
func (l *Links) Subset(fraction float64, seed int64) *Links {
	ps := l.Pairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
	keep := int(float64(len(ps)) * fraction)
	if keep < 0 {
		keep = 0
	}
	if keep > len(ps) {
		keep = len(ps)
	}
	out := New()
	for _, p := range ps[:keep] {
		out.Add(p.A, p.B)
	}
	return out
}

func (l *Links) find(x string) string {
	root := x
	for {
		p, ok := l.parent[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	// path compression
	for x != root {
		next := l.parent[x]
		l.parent[x] = root
		x = next
	}
	return root
}

func (l *Links) union(x, y string) {
	if _, ok := l.parent[x]; !ok {
		l.parent[x] = x
	}
	if _, ok := l.parent[y]; !ok {
		l.parent[y] = y
	}
	rx, ry := l.find(x), l.find(y)
	if rx == ry {
		return
	}
	if l.rank[rx] < l.rank[ry] {
		rx, ry = ry, rx
	}
	l.parent[ry] = rx
	if l.rank[rx] == l.rank[ry] {
		l.rank[rx]++
	}
}
