package strsim

import (
	"testing"
	"testing/quick"

	"sofya/internal/rdf"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"go", "go", 0},
		{"café", "cafe", 1}, // rune-aware
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if LevenshteinSim("", "") != 1 {
		t.Fatal("empty strings should be fully similar")
	}
	if s := LevenshteinSim("abc", "abc"); s != 1 {
		t.Fatalf("identical = %f", s)
	}
	if s := LevenshteinSim("abc", "xyz"); s != 0 {
		t.Fatalf("disjoint = %f", s)
	}
}

func TestJaroKnownValues(t *testing.T) {
	// canonical textbook example: MARTHA/MARHTA ≈ 0.944
	if s := Jaro("MARTHA", "MARHTA"); s < 0.94 || s > 0.95 {
		t.Fatalf("Jaro(MARTHA,MARHTA) = %f", s)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Fatal("empty-string handling")
	}
	if Jaro("abc", "abc") != 1 {
		t.Fatal("identity")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Fatal("disjoint")
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	j := Jaro("prefixed", "prefixes")
	jw := JaroWinkler("prefixed", "prefixes")
	if jw <= j {
		t.Fatalf("JW (%f) should exceed Jaro (%f) for shared prefixes", jw, j)
	}
	if JaroWinkler("abc", "abc") != 1 {
		t.Fatal("identity")
	}
}

func TestTokensAndJaccard(t *testing.T) {
	toks := Tokens("Frank Sinatra, Jr. (singer)")
	want := []string{"frank", "sinatra", "jr", "singer"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v", toks)
		}
	}
	if s := JaccardTokens("Frank Sinatra", "Sinatra, Frank"); s != 1 {
		t.Fatalf("word-order invariance: %f", s)
	}
	if s := JaccardTokens("alpha beta", "beta gamma"); s < 0.32 || s > 0.34 {
		t.Fatalf("jaccard = %f", s)
	}
	if JaccardTokens("", "") != 1 || JaccardTokens("a", "") != 0 {
		t.Fatal("empty handling")
	}
}

func TestNGramDice(t *testing.T) {
	if s := NGramDice("night", "nacht", 2); s <= 0 || s >= 1 {
		t.Fatalf("dice = %f", s)
	}
	if NGramDice("ab", "ab", 2) != 1 {
		t.Fatal("identity")
	}
	if NGramDice("a", "a", 2) != 1 {
		t.Fatal("short equal strings")
	}
	if NGramDice("a", "b", 2) != 0 {
		t.Fatal("short distinct strings")
	}
	// n < 1 falls back to bigrams rather than panicking
	if NGramDice("ab", "ab", 0) != 1 {
		t.Fatal("n<1 fallback")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  Frank   Sinatra ", "frank sinatra"},
		{"Jean-Paul Sartre", "jean paul sartre"},
		{"U.S.A.", "u s a"},
		{"", ""},
		{"---", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseNumber(t *testing.T) {
	if f, ok := ParseNumber(" 1,234.5 "); !ok || f != 1234.5 {
		t.Fatalf("ParseNumber = %f, %v", f, ok)
	}
	if _, ok := ParseNumber("not a number"); ok {
		t.Fatal("garbage accepted")
	}
	if _, ok := ParseNumber(""); ok {
		t.Fatal("empty accepted")
	}
}

// Property: similarity measures stay in [0,1], are symmetric, and give 1
// for identical strings.
func TestQuickMetricAxioms(t *testing.T) {
	measures := map[string]func(a, b string) float64{
		"levenshteinSim": LevenshteinSim,
		"jaro":           Jaro,
		"jaroWinkler":    JaroWinkler,
		"jaccard":        JaccardTokens,
		"dice2":          func(a, b string) float64 { return NGramDice(a, b, 2) },
	}
	for name, sim := range measures {
		f := func(a, b string) bool {
			s := sim(a, b)
			if s < 0 || s > 1 {
				return false
			}
			if sim(b, a) != s {
				return false
			}
			return sim(a, a) == 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLiteralMatcherNumeric(t *testing.T) {
	m := DefaultMatcher()
	ok, s := m.Match(rdf.NewTypedLiteral("42", rdf.XSDInteger), rdf.NewTypedLiteral("42.0", rdf.XSDDouble))
	if !ok || s != 1 {
		t.Fatalf("numeric match = %v, %f", ok, s)
	}
	ok, _ = m.Match(rdf.NewTypedLiteral("42", rdf.XSDInteger), rdf.NewTypedLiteral("43", rdf.XSDInteger))
	if ok {
		t.Fatal("42 matched 43")
	}
	// plain numeric literals participate
	ok, _ = m.Match(rdf.NewLiteral("1234"), rdf.NewTypedLiteral("1234", rdf.XSDInteger))
	if !ok {
		t.Fatal("plain numeric vs typed numeric")
	}
}

func TestLiteralMatcherDates(t *testing.T) {
	m := DefaultMatcher()
	ok, _ := m.Match(rdf.NewTypedLiteral("1815-12-10", rdf.XSDDate), rdf.NewTypedLiteral("1815", rdf.XSDGYear))
	if !ok {
		t.Fatal("date vs gYear with same year should match")
	}
	ok, _ = m.Match(rdf.NewTypedLiteral("1815-12-10", rdf.XSDDate), rdf.NewTypedLiteral("1816", rdf.XSDGYear))
	if ok {
		t.Fatal("different years matched")
	}
	// plain ISO date literal
	ok, _ = m.Match(rdf.NewLiteral("1815-12-10"), rdf.NewTypedLiteral("1815", rdf.XSDGYear))
	if !ok {
		t.Fatal("plain ISO date vs gYear")
	}
}

func TestLiteralMatcherStrings(t *testing.T) {
	m := DefaultMatcher()
	ok, s := m.Match(rdf.NewLiteral("Frank Sinatra"), rdf.NewLangLiteral("frank  sinatra", "en"))
	if !ok || s != 1 {
		t.Fatalf("normalized exact = %v, %f", ok, s)
	}
	ok, _ = m.Match(rdf.NewLiteral("Frank Sinatra"), rdf.NewLiteral("Frank Sinatre"))
	if !ok {
		t.Fatal("near-identical names should fuzzy-match")
	}
	ok, _ = m.Match(rdf.NewLiteral("Frank Sinatra"), rdf.NewLiteral("Miles Davis"))
	if ok {
		t.Fatal("unrelated names matched")
	}
	// non-literals never match
	ok, _ = m.Match(rdf.NewIRI("http://x/a"), rdf.NewLiteral("a"))
	if ok {
		t.Fatal("IRI matched a literal")
	}
	// empty strings never match
	ok, _ = m.Match(rdf.NewLiteral(""), rdf.NewLiteral(""))
	if ok {
		t.Fatal("empty literals matched")
	}
}

func TestLiteralMatcherBest(t *testing.T) {
	m := DefaultMatcher()
	candidates := []rdf.Term{
		rdf.NewLiteral("Mile Davis"),
		rdf.NewLiteral("Frank Sinatra"),
		rdf.NewLiteral("Frank Sinatre"),
	}
	best, score, ok := m.Best(rdf.NewLiteral("Frank Sinatra"), candidates)
	if !ok || best.Value != "Frank Sinatra" || score != 1 {
		t.Fatalf("Best = %v, %f, %v", best, score, ok)
	}
	_, _, ok = m.Best(rdf.NewLiteral("zzz"), candidates)
	if ok {
		t.Fatal("Best matched nothing similar")
	}
}

func TestLiteralMatcherCustomSim(t *testing.T) {
	m := &LiteralMatcher{Threshold: 0.5, Sim: JaccardTokens}
	ok, _ := m.Match(rdf.NewLiteral("alpha beta gamma"), rdf.NewLiteral("beta gamma alpha"))
	if !ok {
		t.Fatal("token-based matcher should be order-invariant")
	}
	// nil Sim falls back to JaroWinkler
	m2 := &LiteralMatcher{Threshold: 0.99}
	ok, _ = m2.Match(rdf.NewLiteral("abc"), rdf.NewLiteral("abc"))
	if !ok {
		t.Fatal("default sim fallback broken")
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abc", "acb", 1}, // one transposition (plain Levenshtein: 2)
		{"ca", "abc", 3},  // OSA variant: no substring moves
		{"kitten", "sitting", 3},
		{"hello", "ehllo", 1},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Damerau-Levenshtein never exceeds Levenshtein, and both are
// symmetric with zero self-distance.
func TestQuickDamerauBounds(t *testing.T) {
	f := func(a, b string) bool {
		d := DamerauLevenshtein(a, b)
		l := Levenshtein(a, b)
		if d > l || d < 0 {
			return false
		}
		if DamerauLevenshtein(b, a) != d {
			return false
		}
		return DamerauLevenshtein(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
