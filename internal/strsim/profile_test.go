package strsim

import (
	"fmt"
	"sync"
	"testing"
)

// ngramDiceRebuild is the pre-memoization NGramDice: both gram
// multisets rebuilt on every call. It is the differential reference and
// the "before" side of the benchmark pair.
func ngramDiceRebuild(a, b string, n int) float64 {
	if n < 1 {
		n = 2
	}
	ga, gb := ngrams(a, n), ngrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ga))
	for _, g := range ga {
		counts[g]++
	}
	common := 0
	for _, g := range gb {
		if counts[g] > 0 {
			counts[g]--
			common++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb))
}

var dicePairs = [][2]string{
	{"birthPlace", "wasBornIn"},
	{"birthPlace", "placeOfBirth"},
	{"hasDirector", "directedBy"},
	{"composerOf", "created"},
	{"", ""},
	{"a", "a"},
	{"a", "b"},
	{"ab", "ab"},
	{"Ab", "ab"},
	{"aa", "aaa"},
	{"aaaa", "aaaa"},
	{"née Müller", "nee muller"},
	{"The Nocturne of the River", "Nocturne River"},
	{"mississippi", "mississippi"},
	{"mississippi", "missouri"},
}

func TestNGramDiceMatchesRebuildReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		for _, p := range dicePairs {
			want := ngramDiceRebuild(p[0], p[1], n)
			got := NGramDice(p[0], p[1], n)
			if got != want {
				t.Errorf("NGramDice(%q, %q, %d) = %v, reference %v", p[0], p[1], n, got, want)
			}
		}
	}
}

func TestProfileMemoized(t *testing.T) {
	a := ProfileOf("memo-probe-string", 3)
	b := ProfileOf("memo-probe-string", 3)
	if a != b {
		t.Fatalf("ProfileOf returned distinct profiles for the same key")
	}
	c := ProfileOf("memo-probe-string", 2)
	if c == a {
		t.Fatalf("ProfileOf shared a profile across different n")
	}
}

func TestProfileCounts(t *testing.T) {
	p := NewProfile("aabab", 2) // grams: aa ab ba ab
	if p.Total != 4 {
		t.Fatalf("Total = %d, want 4", p.Total)
	}
	want := map[string]int32{"aa": 1, "ab": 2, "ba": 1}
	if len(p.Grams) != len(want) {
		t.Fatalf("distinct grams = %v, want %v", p.Grams, want)
	}
	for i, g := range p.Grams {
		if p.Counts[i] != want[g] {
			t.Errorf("count(%q) = %d, want %d", g, p.Counts[i], want[g])
		}
		if i > 0 && p.Grams[i-1] >= g {
			t.Errorf("grams not strictly sorted: %v", p.Grams)
		}
	}
}

func TestProfileCacheResetKeepsAnswers(t *testing.T) {
	// Force at least one generation flip and check profiles built
	// before it still answer correctly.
	before := ProfileOf("survivor", 3)
	for i := 0; i < profileCacheCap+64; i++ {
		ProfileOf(fmt.Sprintf("filler-%d", i), 3)
	}
	after := ProfileOf("survivor", 3)
	if before.Dice(after) != 1 {
		t.Fatalf("profile changed across cache reset")
	}
}

func TestProfileOfConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := fmt.Sprintf("conc-%d", i%17)
				if NGramDice(s, "conc-3", 3) != ngramDiceRebuild(s, "conc-3", 3) {
					t.Errorf("concurrent NGramDice diverged for %q", s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// The before/after pair for the memoization satellite: Rebuild is the
// old per-call gram extraction, Memoized the shipped path. One warm
// string pair compared repeatedly, as the aligner does when scoring a
// literal against a candidate list.
func BenchmarkNGramDiceRebuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ngramDiceRebuild("The Nocturne of the River 42", "Nocturne_of_the_River_42", 3)
	}
}

func BenchmarkNGramDiceMemoized(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NGramDice("The Nocturne of the River 42", "Nocturne_of_the_River_42", 3)
	}
}
