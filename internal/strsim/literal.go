package strsim

import (
	"strings"

	"sofya/internal/rdf"
)

// LiteralMatcher decides whether two literals from different KBs denote
// the same value, per the matching cascade used when aligning
// entity–literal relations:
//
//  1. numeric datatypes (and numeric-looking plain literals) compare by
//     value within Epsilon;
//  2. date/gYear datatypes compare by contained year (so "1815-12-10"
//     matches "1815");
//  3. everything else compares Normalize()d forms exactly, then by the
//     configured string similarity against Threshold.
type LiteralMatcher struct {
	// Threshold is the minimum similarity for a fuzzy string match.
	Threshold float64
	// Epsilon is the tolerance for numeric equality.
	Epsilon float64
	// Sim scores two normalized strings; nil means JaroWinkler.
	Sim func(a, b string) float64
}

// DefaultMatcher returns a matcher with JaroWinkler ≥ 0.9 and numeric
// epsilon 1e-9.
func DefaultMatcher() *LiteralMatcher {
	return &LiteralMatcher{Threshold: 0.9, Epsilon: 1e-9, Sim: JaroWinkler}
}

// Match reports whether a and b denote the same value, with the score
// that justified the decision (1.0 for value-level matches).
func (m *LiteralMatcher) Match(a, b rdf.Term) (bool, float64) {
	if a.Kind != rdf.Literal || b.Kind != rdf.Literal {
		return false, 0
	}
	// numeric pass
	if na, okA := numericValue(a); okA {
		if nb, okB := numericValue(b); okB {
			d := na - nb
			if d < 0 {
				d = -d
			}
			if d <= m.Epsilon {
				return true, 1
			}
			return false, 0
		}
	}
	// date pass: compare years when either side is a date-like datatype
	if ya, okA := yearOf(a); okA {
		if yb, okB := yearOf(b); okB {
			if ya == yb {
				return true, 1
			}
			return false, 0
		}
	}
	// string pass
	la, lb := Normalize(a.Value), Normalize(b.Value)
	if la == lb {
		return la != "", 1
	}
	sim := m.simFunc()(la, lb)
	return sim >= m.Threshold, sim
}

// Best returns the highest Match score of a against any of bs, with the
// matched term. ok is false if none reaches the threshold.
func (m *LiteralMatcher) Best(a rdf.Term, bs []rdf.Term) (best rdf.Term, score float64, ok bool) {
	for _, b := range bs {
		if matched, s := m.Match(a, b); matched && s >= score {
			best, score, ok = b, s, true
		}
	}
	return best, score, ok
}

func (m *LiteralMatcher) simFunc() func(a, b string) float64 {
	if m.Sim != nil {
		return m.Sim
	}
	return JaroWinkler
}

func numericValue(t rdf.Term) (float64, bool) {
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		return ParseNumber(t.Value)
	case "":
		// plain literals participate only if fully numeric
		return ParseNumber(t.Value)
	default:
		return 0, false
	}
}

// yearOf extracts a 3-4 digit year from date-like literals. It accepts
// xsd:date, xsd:dateTime, xsd:gYear, and plain literals shaped like
// ISO dates ("1815-12-10") or bare years.
func yearOf(t rdf.Term) (string, bool) {
	dateTyped := t.Datatype == rdf.XSDDate || t.Datatype == rdf.XSDDateTime || t.Datatype == rdf.XSDGYear
	v := strings.TrimSpace(t.Value)
	if !dateTyped {
		// plain literal: only ISO-looking "YYYY-MM-DD" shapes qualify,
		// to avoid misreading arbitrary numbers as years.
		if len(v) != 10 || v[4] != '-' || v[7] != '-' {
			return "", false
		}
	}
	digits := 0
	for digits < len(v) && v[digits] >= '0' && v[digits] <= '9' {
		digits++
	}
	if digits < 3 || digits > 4 {
		return "", false
	}
	if digits == len(v) || v[digits] == '-' {
		return v[:digits], true
	}
	return "", false
}
