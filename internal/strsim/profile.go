package strsim

import (
	"sort"
	"sync"
)

// Profile is the character n-gram multiset of one string in a compact,
// immutable form: the distinct grams sorted ascending with their
// multiplicities. Profiles are built once per (string, n) and shared —
// similarity functions that used to rebuild both gram sets on every
// call (NGramDice) now merge two prebuilt profiles instead, and the
// candidate-generation index reuses the same profiles for its weighted
// trigram postings.
type Profile struct {
	// N is the gram length the profile was built with.
	N int
	// Grams holds the distinct lower-cased grams, sorted ascending.
	Grams []string
	// Counts holds the multiplicity of each gram, parallel to Grams.
	Counts []int32
	// Total is the total number of grams (Σ Counts) — the multiset
	// cardinality the Dice denominator needs.
	Total int
}

// NewProfile builds the n-gram profile of s without consulting the
// cache. Strings shorter than n (in runes) produce an empty profile.
func NewProfile(s string, n int) *Profile {
	if n < 1 {
		n = 2
	}
	gs := ngrams(s, n)
	p := &Profile{N: n, Total: len(gs)}
	if len(gs) == 0 {
		return p
	}
	sort.Strings(gs)
	p.Grams = make([]string, 0, len(gs))
	p.Counts = make([]int32, 0, len(gs))
	for i := 0; i < len(gs); {
		j := i + 1
		for j < len(gs) && gs[j] == gs[i] {
			j++
		}
		p.Grams = append(p.Grams, gs[i])
		p.Counts = append(p.Counts, int32(j-i))
		i = j
	}
	return p
}

// Dice computes the Dice coefficient between two profiles of the same
// n: 2·|A∩B| / (|A|+|B|) over the gram multisets. Two empty profiles
// score 0 (callers that want the equal-short-string convention must
// compare the strings themselves, as NGramDice does).
func (p *Profile) Dice(q *Profile) float64 {
	if p.Total == 0 || q.Total == 0 {
		return 0
	}
	common := 0
	i, j := 0, 0
	for i < len(p.Grams) && j < len(q.Grams) {
		switch {
		case p.Grams[i] < q.Grams[j]:
			i++
		case p.Grams[i] > q.Grams[j]:
			j++
		default:
			ca, cb := p.Counts[i], q.Counts[j]
			if cb < ca {
				ca = cb
			}
			common += int(ca)
			i++
			j++
		}
	}
	return 2 * float64(common) / float64(p.Total+q.Total)
}

// profileCacheCap bounds the memoized profiles. When the cap is hit the
// cache resets wholesale — a generation flip, not an LRU — which keeps
// the hot path a single map read and the worst case bounded. Cached
// profiles stay valid after a reset; only future lookups rebuild.
const profileCacheCap = 1 << 16

type profileKey struct {
	s string
	n int
}

var (
	profMu    sync.RWMutex
	profCache = make(map[profileKey]*Profile, 1024)
)

// ProfileOf returns the memoized n-gram profile of s, building it on
// first use. Profiles are immutable and safe to share across
// goroutines.
func ProfileOf(s string, n int) *Profile {
	key := profileKey{s: s, n: n}
	profMu.RLock()
	p, ok := profCache[key]
	profMu.RUnlock()
	if ok {
		return p
	}
	p = NewProfile(s, n)
	profMu.Lock()
	if len(profCache) >= profileCacheCap {
		profCache = make(map[profileKey]*Profile, 1024)
	}
	profCache[key] = p
	profMu.Unlock()
	return p
}
