// Package strsim provides the string-similarity machinery SOFYA uses to
// align entity–literal relations (§2.2 of the paper: "If r_sub is an
// entity-literal relation, we retrieve from K facts of the samples and
// apply string similarity functions to align the literals").
//
// It implements the classical token- and edit-based measures
// (Levenshtein, Jaro, Jaro-Winkler, Jaccard, n-gram Dice) plus a
// datatype-aware LiteralMatcher that short-circuits numeric and date
// literals through value comparison before falling back to string
// similarity — which is what makes "1815-12-10" match "10 December 1815".
package strsim

import (
	"strconv"
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b (insertions,
// deletions, substitutions), operating on runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(curr[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshtein returns the edit distance allowing adjacent
// transpositions in addition to insertions, deletions and substitutions
// (the optimal-string-alignment variant).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev2 := make([]int, len(rb)+1)
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(curr[j-1]+1, prev[j]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < curr[j] {
					curr[j] = t
				}
			}
		}
		prev2, prev, curr = prev, curr, prev2
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes Levenshtein into a similarity in [0,1]:
// 1 - dist/maxLen. Two empty strings are fully similar.
func LevenshteinSim(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Jaro returns the Jaro similarity in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, len(ra))
	bMatch := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if bMatch[j] || ra[i] != rb[j] {
				continue
			}
			aMatch[i] = true
			bMatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// transpositions
	trans := 0
	j := 0
	for i := range ra {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix
// (up to 4 runes), with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Tokens lower-cases s and splits it on any non-letter/non-digit rune.
func Tokens(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// JaccardTokens computes |A∩B|/|A∪B| over the token sets of a and b.
func JaccardTokens(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	inter, union := 0, 0
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}

// NGramDice computes the Dice coefficient over character n-grams
// (n ≥ 1). Strings shorter than n compare by equality. The per-string
// gram multisets are memoized (ProfileOf), so repeated comparisons
// against the same strings — the aligner scores each literal against
// many candidates — skip gram extraction entirely.
func NGramDice(a, b string, n int) float64 {
	if n < 1 {
		n = 2
	}
	pa, pb := ProfileOf(a, n), ProfileOf(b, n)
	if pa.Total == 0 && pb.Total == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	return pa.Dice(pb)
}

func ngrams(s string, n int) []string {
	r := []rune(strings.ToLower(s))
	if len(r) < n {
		return nil
	}
	out := make([]string, 0, len(r)-n+1)
	for i := 0; i+n <= len(r); i++ {
		out = append(out, string(r[i:i+n]))
	}
	return out
}

// Normalize lower-cases, trims, and collapses runs of whitespace and
// punctuation into single spaces — the canonical form compared by the
// literal matcher's exact pass.
func Normalize(s string) string {
	var sb strings.Builder
	lastSpace := true
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(r)
			lastSpace = false
		} else if !lastSpace {
			sb.WriteByte(' ')
			lastSpace = true
		}
	}
	return strings.TrimSpace(sb.String())
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max2(a, b int) int {
	if b > a {
		return b
	}
	return a
}

// ParseNumber attempts a numeric read of a lexical form, tolerating
// surrounding whitespace and thousands separators.
func ParseNumber(s string) (float64, bool) {
	clean := strings.TrimSpace(strings.ReplaceAll(s, ",", ""))
	if clean == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(clean, 64)
	return f, err == nil
}
