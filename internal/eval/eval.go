// Package eval scores predicted relation alignments against a gold
// standard and renders the experiment tables. It provides the
// precision/recall/F1 accounting behind Table 1, post-hoc threshold
// sweeps (the paper selects the τ with the best average F1), and plain
// text/markdown table formatting.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sofya/internal/core"
)

// Gold is a set of gold-standard subsumption pairs body ⇒ head.
type Gold struct {
	set map[string]bool
}

// NewGold builds a gold set from (body, head) IRI pairs.
func NewGold(pairs [][2]string) *Gold {
	g := &Gold{set: make(map[string]bool, len(pairs))}
	for _, p := range pairs {
		g.set[p[0]+"\x00"+p[1]] = true
	}
	return g
}

// Holds reports whether body ⇒ head is gold.
func (g *Gold) Holds(body, head string) bool { return g.set[body+"\x00"+head] }

// Size is the number of gold pairs.
func (g *Gold) Size() int { return len(g.set) }

// PRF is a precision/recall/F1 triple with its contingency counts.
type PRF struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

func prf(tp, fp, fn int) PRF {
	out := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		out.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		out.Recall = float64(tp) / float64(tp+fn)
	}
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// String renders the triple compactly.
func (m PRF) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f (tp=%d fp=%d fn=%d)",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

// Score compares accepted alignments against the gold set. Duplicate
// (body, head) predictions count once.
func Score(accepted []core.Alignment, gold *Gold) PRF {
	pred := map[string]bool{}
	for _, al := range accepted {
		if !al.Accepted {
			continue
		}
		pred[al.Rule.Body+"\x00"+al.Rule.Head] = true
	}
	tp, fp := 0, 0
	for k := range pred {
		if gold.set[k] {
			tp++
		} else {
			fp++
		}
	}
	return prf(tp, fp, gold.Size()-tp)
}

// ScoreAt re-thresholds the full candidate list post hoc: a rule counts
// as predicted when its confidence ≥ tau, its support ≥ minSupport, and
// (when respectUBS) its recorded contradictions stay below
// minContradictions. This matches the paper's methodology of choosing τ
// after the fact.
func ScoreAt(all []core.Alignment, gold *Gold, tau float64, minSupport int, respectUBS bool, minContradictions int) PRF {
	pred := map[string]bool{}
	for _, al := range all {
		if al.Confidence < tau || al.Support < minSupport {
			continue
		}
		if respectUBS && al.Contradictions >= minContradictions {
			continue
		}
		pred[al.Rule.Body+"\x00"+al.Rule.Head] = true
	}
	tp, fp := 0, 0
	for k := range pred {
		if gold.set[k] {
			tp++
		} else {
			fp++
		}
	}
	return prf(tp, fp, gold.Size()-tp)
}

// SweepPoint is one threshold evaluation.
type SweepPoint struct {
	Tau float64
	PRF PRF
}

// SweepThresholds scores the candidate list at each τ.
func SweepThresholds(all []core.Alignment, gold *Gold, taus []float64, minSupport int) []SweepPoint {
	out := make([]SweepPoint, 0, len(taus))
	for _, tau := range taus {
		out = append(out, SweepPoint{Tau: tau, PRF: ScoreAt(all, gold, tau, minSupport, false, 1)})
	}
	return out
}

// BestAvgF1 picks the τ that maximizes the mean F1 across several
// directions' candidate lists — the paper's selection criterion ("we
// have selected the thresholds τ that led to the highest average F1
// score for both ways implications").
func BestAvgF1(directions [][]core.Alignment, golds []*Gold, taus []float64, minSupport int) (float64, []PRF) {
	if len(directions) != len(golds) {
		panic("eval: directions and golds must pair up")
	}
	bestTau, bestAvg := 0.0, math.Inf(-1)
	var bestPRFs []PRF
	for _, tau := range taus {
		var sum float64
		prfs := make([]PRF, len(directions))
		for i := range directions {
			prfs[i] = ScoreAt(directions[i], golds[i], tau, minSupport, false, 1)
			sum += prfs[i].F1
		}
		avg := sum / float64(len(directions))
		if avg > bestAvg {
			bestAvg, bestTau, bestPRFs = avg, tau, prfs
		}
	}
	return bestTau, bestPRFs
}

// DefaultTaus is the sweep grid used by the experiments.
func DefaultTaus() []float64 {
	taus := make([]float64, 0, 20)
	for t := 0.05; t < 1.0001; t += 0.05 {
		taus = append(taus, math.Round(t*100)/100)
	}
	return taus
}

// Table renders rows of cells as an aligned plain-text table with a
// header row, suitable for terminal output and EXPERIMENTS.md.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return sb.String()
}

// FalsePositives lists accepted rules absent from gold, sorted, for
// debugging experiment calibration.
func FalsePositives(accepted []core.Alignment, gold *Gold) []string {
	var out []string
	for _, al := range accepted {
		if al.Accepted && !gold.Holds(al.Rule.Body, al.Rule.Head) {
			out = append(out, al.Rule.String())
		}
	}
	sort.Strings(out)
	return out
}

// FalseNegativeKeys lists gold pairs missing from the accepted set.
func FalseNegativeKeys(accepted []core.Alignment, gold *Gold) []string {
	pred := map[string]bool{}
	for _, al := range accepted {
		if al.Accepted {
			pred[al.Rule.Body+"\x00"+al.Rule.Head] = true
		}
	}
	var out []string
	for k := range gold.set {
		if !pred[k] {
			out = append(out, strings.ReplaceAll(k, "\x00", " => "))
		}
	}
	sort.Strings(out)
	return out
}
