package eval

import (
	"strings"
	"testing"

	"sofya/internal/core"
	"sofya/internal/ilp"
)

func al(body, head string, conf float64, support int, accepted bool) core.Alignment {
	return core.Alignment{
		Rule:       ilp.Rule{Body: body, Head: head, BodyKB: "b", HeadKB: "h"},
		Confidence: conf,
		Support:    support,
		Accepted:   accepted,
	}
}

func TestGold(t *testing.T) {
	g := NewGold([][2]string{{"b1", "h1"}, {"b2", "h2"}})
	if !g.Holds("b1", "h1") || g.Holds("b1", "h2") {
		t.Fatal("Holds wrong")
	}
	if g.Size() != 2 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func TestScore(t *testing.T) {
	g := NewGold([][2]string{{"b1", "h1"}, {"b2", "h2"}, {"b3", "h3"}})
	accepted := []core.Alignment{
		al("b1", "h1", 0.9, 5, true),  // TP
		al("bX", "h1", 0.8, 5, true),  // FP
		al("b2", "h2", 0.2, 5, false), // rejected: ignored
		al("b1", "h1", 0.9, 5, true),  // duplicate TP: counted once
	}
	m := Score(accepted, g)
	if m.TP != 1 || m.FP != 1 || m.FN != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Precision != 0.5 {
		t.Fatalf("precision = %f", m.Precision)
	}
	if m.Recall < 0.33 || m.Recall > 0.34 {
		t.Fatalf("recall = %f", m.Recall)
	}
	if m.F1 <= 0 || m.F1 >= 1 {
		t.Fatalf("f1 = %f", m.F1)
	}
	if !strings.Contains(m.String(), "P=0.50") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestScoreEmpty(t *testing.T) {
	g := NewGold(nil)
	m := Score(nil, g)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestScoreAt(t *testing.T) {
	g := NewGold([][2]string{{"b1", "h1"}, {"b2", "h2"}})
	all := []core.Alignment{
		al("b1", "h1", 0.9, 5, false),
		al("b2", "h2", 0.4, 5, false),
		al("bX", "h1", 0.5, 5, false),
		al("bY", "h2", 0.9, 1, false), // support 1
	}
	// τ 0.8, minSupport 2: accepts only b1
	m := ScoreAt(all, g, 0.8, 2, false, 1)
	if m.TP != 1 || m.FP != 0 || m.FN != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// τ 0.3: accepts b1, b2, bX
	m = ScoreAt(all, g, 0.3, 2, false, 1)
	if m.TP != 2 || m.FP != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// UBS-respecting scoring drops contradicted rules
	contr := al("bX", "h1", 0.5, 5, false)
	contr.Contradictions = 3
	m = ScoreAt([]core.Alignment{contr}, g, 0.3, 2, true, 1)
	if m.FP != 0 {
		t.Fatalf("contradicted rule not dropped: %+v", m)
	}
}

func TestSweepAndBestAvgF1(t *testing.T) {
	g := NewGold([][2]string{{"b1", "h1"}})
	all := []core.Alignment{
		al("b1", "h1", 0.9, 5, false),
		al("bX", "h1", 0.4, 5, false),
	}
	points := SweepThresholds(all, g, []float64{0.2, 0.5, 0.95}, 1)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// τ 0.2: P=0.5 R=1; τ 0.5: P=1 R=1; τ 0.95: P=0 R=0
	if points[1].PRF.F1 != 1 {
		t.Fatalf("sweep = %+v", points)
	}
	tau, prfs := BestAvgF1([][]core.Alignment{all}, []*Gold{g}, []float64{0.2, 0.5, 0.95}, 1)
	if tau != 0.5 || prfs[0].F1 != 1 {
		t.Fatalf("best tau = %f, prfs = %+v", tau, prfs)
	}
}

func TestBestAvgF1PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	BestAvgF1(nil, []*Gold{NewGold(nil)}, []float64{0.5}, 1)
}

func TestDefaultTaus(t *testing.T) {
	taus := DefaultTaus()
	if len(taus) != 20 || taus[0] != 0.05 || taus[len(taus)-1] != 1.0 {
		t.Fatalf("taus = %v", taus)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("alpha", 0.123456)
	tab.Add("b", 42)
	s := tab.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "0.12") || !strings.Contains(s, "42") {
		t.Fatalf("table = %q", s)
	}
	// aligned: header row and separator present
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	md := tab.Markdown()
	if !strings.HasPrefix(md, "| name | value |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown = %q", md)
	}
}

func TestFalsePositivesAndNegatives(t *testing.T) {
	g := NewGold([][2]string{{"b1", "h1"}, {"b2", "h2"}})
	accepted := []core.Alignment{
		al("b1", "h1", 0.9, 5, true),
		al("bX", "h1", 0.9, 5, true),
	}
	fps := FalsePositives(accepted, g)
	if len(fps) != 1 || !strings.Contains(fps[0], "bX") {
		t.Fatalf("fps = %v", fps)
	}
	fns := FalseNegativeKeys(accepted, g)
	if len(fns) != 1 || !strings.Contains(fns[0], "b2") {
		t.Fatalf("fns = %v", fns)
	}
}
