package eval

import (
	"math"
	"strings"
	"testing"

	"sofya/internal/core"
	"sofya/internal/ilp"
	"sofya/internal/synth"
)

// goldenWorld builds the tiny fixed world the golden metrics run on:
// the gold standard comes from the synthetic generator (fixed seed, so
// the pair list is stable), and the "predicted" alignment list is a
// deterministic corruption of it — the first miss fraction of gold
// pairs dropped, a fixed set of false positives added, each with a
// confidence that encodes its rank.
func goldenWorld(t *testing.T) (*Gold, []core.Alignment) {
	t.Helper()
	spec := synth.TinySpec()
	spec.Seed = 2016
	w := synth.Generate(spec)

	var pairs [][2]string
	for _, p := range w.Truth.DbpToYago {
		pairs = append(pairs, [2]string{p.Body, p.Head})
	}
	if len(pairs) < 8 {
		t.Fatalf("tiny world gold too small: %d pairs", len(pairs))
	}
	gold := NewGold(pairs)

	// Predictions: every gold pair except the last two (false
	// negatives), plus three fabricated rules (false positives), with
	// confidences spread over (0.3, 1.0] so threshold sweeps cut at
	// known points.
	var all []core.Alignment
	kept := pairs[:len(pairs)-2]
	for i, p := range kept {
		conf := 1.0 - 0.5*float64(i)/float64(len(kept)) // (0.5, 1.0]
		all = append(all, core.Alignment{
			Rule:       ilp.Rule{Body: p[0], Head: p[1]},
			Accepted:   true,
			Confidence: conf,
			Support:    5 + i,
		})
	}
	fakes := []string{"http://d/fake1", "http://d/fake2", "http://d/fake3"}
	for i, b := range fakes {
		all = append(all, core.Alignment{
			Rule:       ilp.Rule{Body: b, Head: "http://y/fakeHead"},
			Accepted:   true,
			Confidence: 0.4 - 0.02*float64(i),
			Support:    3,
			// the last fake carries recorded contradictions, so
			// UBS-respecting scoring drops it
			Contradictions: i * 2,
		})
	}
	return gold, all
}

// TestGoldenScore pins the exact contingency counts of the corrupted
// prediction list: TP = |gold|-2, FP = 3, FN = 2.
func TestGoldenScore(t *testing.T) {
	gold, all := goldenWorld(t)
	got := Score(all, gold)
	wantTP := gold.Size() - 2
	if got.TP != wantTP || got.FP != 3 || got.FN != 2 {
		t.Fatalf("Score = %+v, want tp=%d fp=3 fn=2", got, wantTP)
	}
	wantP := float64(wantTP) / float64(wantTP+3)
	wantR := float64(wantTP) / float64(gold.Size())
	wantF1 := 2 * wantP * wantR / (wantP + wantR)
	if math.Abs(got.Precision-wantP) > 1e-12 ||
		math.Abs(got.Recall-wantR) > 1e-12 ||
		math.Abs(got.F1-wantF1) > 1e-12 {
		t.Fatalf("Score metrics = %+v, want P=%v R=%v F1=%v", got, wantP, wantR, wantF1)
	}
	if !strings.Contains(got.String(), "tp=") {
		t.Fatalf("String() = %q", got.String())
	}
}

// TestGoldenScoreAt: thresholding at 0.45 removes exactly the three
// fakes (confidences ≤ 0.4); at 0.45 with UBS respected the result is
// the same; at 0 with UBS respected only the contradicted fake drops.
func TestGoldenScoreAt(t *testing.T) {
	gold, all := goldenWorld(t)
	wantTP := gold.Size() - 2

	clean := ScoreAt(all, gold, 0.45, 0, false, 1)
	if clean.TP != wantTP || clean.FP != 0 || clean.FN != 2 {
		t.Fatalf("ScoreAt(0.45) = %+v", clean)
	}
	if clean.Precision != 1.0 {
		t.Fatalf("precision at tau=0.45 = %v, want 1", clean.Precision)
	}

	ubs := ScoreAt(all, gold, 0, 0, true, 2)
	// fakes carry 0, 2, 4 contradictions; minContradictions=2 drops two
	if ubs.FP != 1 {
		t.Fatalf("UBS-respecting ScoreAt FP = %d, want 1 (%+v)", ubs.FP, ubs)
	}

	// min support gate: every gold prediction has support >= 5, fakes 3
	sup := ScoreAt(all, gold, 0, 5, false, 1)
	if sup.FP != 0 || sup.TP != wantTP {
		t.Fatalf("support-gated ScoreAt = %+v", sup)
	}
}

// TestGoldenSweepAndBestTau: the sweep is monotone in the obvious way
// (recall never rises as tau grows) and BestAvgF1 lands on a tau that
// excludes the fakes but keeps every gold prediction.
func TestGoldenSweepAndBestTau(t *testing.T) {
	gold, all := goldenWorld(t)
	taus := DefaultTaus()
	sweep := SweepThresholds(all, gold, taus, 0)
	if len(sweep) != len(taus) {
		t.Fatalf("sweep has %d points, want %d", len(sweep), len(taus))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].PRF.Recall > sweep[i-1].PRF.Recall+1e-12 {
			t.Fatalf("recall rose with tau: %v -> %v", sweep[i-1], sweep[i])
		}
	}
	bestTau, prfs := BestAvgF1([][]core.Alignment{all}, []*Gold{gold}, taus, 0)
	if bestTau < 0.45 || bestTau > 0.5 {
		t.Fatalf("best tau = %v, want the cut just above the fakes (0.45..0.5]", bestTau)
	}
	if prfs[0].FP != 0 {
		t.Fatalf("best-tau PRF = %+v, want FP=0", prfs[0])
	}
}

// TestGoldenFalsePositivesAndNegatives pins the diagnostic listings.
func TestGoldenFalsePositivesAndNegatives(t *testing.T) {
	gold, all := goldenWorld(t)
	fps := FalsePositives(all, gold)
	if len(fps) != 3 {
		t.Fatalf("FalsePositives = %v", fps)
	}
	for _, fp := range fps {
		if !strings.Contains(fp, "fake") {
			t.Fatalf("unexpected false positive %q", fp)
		}
	}
	fns := FalseNegativeKeys(all, gold)
	if len(fns) != 2 {
		t.Fatalf("FalseNegativeKeys = %v", fns)
	}
	for _, fn := range fns {
		if !strings.Contains(fn, " => ") {
			t.Fatalf("malformed false-negative key %q", fn)
		}
	}
}

// TestGoldenTableRendering pins the exact rendering of a small metric
// table in both output formats.
func TestGoldenTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"measure", "P", "R"}}
	tb.Add("pca", 0.925, 0.5)
	tb.Add("cwa", 1, "n/a")
	wantPlain := "measure  P     R   \n" +
		"-------  ----  ----\n" +
		"pca      0.93  0.50\n" +
		"cwa      1     n/a \n"
	if got := tb.String(); got != wantPlain {
		t.Fatalf("plain table:\n%q\nwant:\n%q", got, wantPlain)
	}
	wantMD := "| measure | P | R |\n| --- | --- | --- |\n| pca | 0.93 | 0.50 | \n"
	gotMD := tb.Markdown()
	if !strings.HasPrefix(gotMD, "| measure | P | R |\n| --- | --- | --- |\n| pca | 0.93 | 0.50 |") {
		t.Fatalf("markdown table:\n%q\nwant prefix:\n%q", gotMD, wantMD)
	}
}
