package synth

// io.go persists a generated world and loads it back: the bridge
// between cmd/kbgen (which writes worlds to disk) and cmd/experiments
// (which can now restart from disk instead of regenerating). A saved
// world round-trips exactly — KBs (N-Triples and, optionally, binary
// snapshots that load by mmap in milliseconds), sameAs links, gold
// truth, the relation universe, and the generation report — so an
// experiment run over a loaded world is byte-identical to one over the
// freshly generated world it was saved from.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sofya/internal/kb"
	"sofya/internal/sameas"
)

// SaveOptions selects the on-disk representation of a saved world.
type SaveOptions struct {
	// Snapshots additionally writes binary KB snapshots (yago.snap,
	// dbpedia.snap, and per-shard *.snap files) next to the N-Triples;
	// kb.OpenSnapshot serves them by memory-mapping, skipping the parse
	// and re-index cost entirely.
	Snapshots bool
	// Shards > 1 additionally writes each KB partitioned into that many
	// subject-hash shard files (<name>-shard-<i>-of-<n>.nt, plus .snap
	// with Snapshots) and the whole-KB planner-stats sidecar the
	// N-Triples shards need (<name>-planstats.tsv). Snapshot shards are
	// self-contained: they embed the planner statistics.
	Shards int
}

// World file names under the save directory.
const (
	fileLinks     = "links.tsv"
	fileTruth     = "truth.tsv"
	fileRelations = "relations.tsv"
	fileReport    = "report.tsv"
)

// SaveWorld writes w into dir (created if needed). See SaveOptions for
// the layout; LoadWorld reads it back.
func SaveWorld(w *World, dir string, opts SaveOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, side := range []*kb.KB{w.Yago, w.Dbp} {
		// Remove outputs a previous save may have left that this save
		// will not rewrite: LoadWorld prefers a .snap over the .nt, and
		// sparqld globs shard files, so stale ones would silently serve
		// a different world than the fresh sidecars describe.
		if stale, err := filepath.Glob(filepath.Join(dir, side.Name()+"-shard-*")); err == nil {
			for _, p := range stale {
				os.Remove(p)
			}
		}
		if !opts.Snapshots {
			os.Remove(filepath.Join(dir, side.Name()+".snap"))
		}
		if opts.Shards <= 1 {
			os.Remove(filepath.Join(dir, side.Name()+"-planstats.tsv"))
		}

		if err := side.WriteFile(filepath.Join(dir, side.Name()+".nt")); err != nil {
			return err
		}
		if opts.Snapshots {
			if err := side.WriteSnapshotFile(filepath.Join(dir, side.Name()+".snap")); err != nil {
				return err
			}
		}
		if opts.Shards > 1 {
			if err := saveShards(side, dir, opts.Shards, opts.Snapshots); err != nil {
				return err
			}
		}
	}
	if err := writeTSV(filepath.Join(dir, fileLinks), func(bw *bufio.Writer) error {
		for _, p := range w.Links.Pairs() {
			if _, err := fmt.Fprintf(bw, "%s\t%s\n", p.A, p.B); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeTSV(filepath.Join(dir, fileTruth), func(bw *bufio.Writer) error {
		return writeTruthPairs(bw, w.Truth)
	}); err != nil {
		return err
	}
	if err := writeTSV(filepath.Join(dir, fileRelations), func(bw *bufio.Writer) error {
		for _, iri := range w.Report.YagoRelations {
			if _, err := fmt.Fprintf(bw, "yago\t%s\n", iri); err != nil {
				return err
			}
		}
		for _, iri := range w.Report.DbpRelations {
			if _, err := fmt.Fprintf(bw, "dbpedia\t%s\n", iri); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return writeTSV(filepath.Join(dir, fileReport), func(bw *bufio.Writer) error {
		r := w.Report
		for _, kv := range [][2]any{
			{"families", r.Families},
			{"confounder_families", r.ConfounderFamilies},
			{"specialized_families", r.SpecializedFamilies},
			{"literal_families", r.LiteralFamilies},
			{"variant_relations", r.VariantRelations},
			{"noise_relations", r.NoiseRelations},
			{"yago_facts", r.YagoFacts},
			{"dbp_facts", r.DbpFacts},
			{"sameas_links", r.SameAsLinks},
		} {
			if _, err := fmt.Fprintf(bw, "%s\t%d\n", kv[0], kv[1]); err != nil {
				return err
			}
		}
		return nil
	})
}

// saveShards writes one file per subject-hash shard plus the planner
// statistics the N-Triples shards need to plan like the whole KB
// (snapshot shards embed them).
func saveShards(base *kb.KB, dir string, n int, snapshots bool) error {
	for i, sh := range kb.Partition(base, n) {
		stem := filepath.Join(dir, fmt.Sprintf("%s-shard-%d-of-%d", base.Name(), i, n))
		if err := sh.WriteFile(stem + ".nt"); err != nil {
			return err
		}
		if snapshots {
			if err := sh.WriteSnapshotFile(stem + ".snap"); err != nil {
				return err
			}
		}
	}
	return base.WritePlanStatsFile(filepath.Join(dir, base.Name()+"-planstats.tsv"))
}

func writeTruthPairs(w io.Writer, gt *GroundTruth) error {
	emit := func(dir string, pairs []TruthPair) error {
		for _, p := range pairs {
			kind := "subsumed"
			if p.Equivalent {
				kind = "equivalent"
			}
			if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", dir, p.Body, p.Head, kind); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("d2y", gt.DbpToYago); err != nil {
		return err
	}
	return emit("y2d", gt.YagoToDbp)
}

func writeTSV(path string, body func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := body(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadWorld reads a world saved by SaveWorld (or cmd/kbgen) back from
// dir. Each KB loads from its binary snapshot when one is present —
// memory-mapped, no parsing — and falls back to parsing the N-Triples
// file otherwise. The result is equivalent to the generated world it
// was saved from: same KBs (contents and iteration orders), links,
// truth, relation universe and report, so experiment output over a
// loaded world matches the generated one byte for byte.
func LoadWorld(dir string) (*World, error) {
	w := &World{Links: sameas.New(), Truth: newGroundTruth()}
	var err error
	if w.Yago, err = loadKBFile(dir, "yago"); err != nil {
		return nil, err
	}
	if w.Dbp, err = loadKBFile(dir, "dbpedia"); err != nil {
		return nil, err
	}
	if err := scanTSV(filepath.Join(dir, fileLinks), 2, func(f []string) error {
		w.Links.Add(f[0], f[1])
		return nil
	}); err != nil {
		return nil, err
	}
	if err := scanTSV(filepath.Join(dir, fileTruth), 4, func(f []string) error {
		equiv := f[3] == "equivalent"
		switch f[0] {
		case "d2y":
			w.Truth.addD2Y(f[1], f[2], equiv)
		case "y2d":
			w.Truth.addY2D(f[1], f[2], equiv)
		default:
			return fmt.Errorf("unknown truth direction %q", f[0])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := scanTSV(filepath.Join(dir, fileRelations), 2, func(f []string) error {
		switch f[0] {
		case "yago":
			w.Report.YagoRelations = append(w.Report.YagoRelations, f[1])
		case "dbpedia":
			w.Report.DbpRelations = append(w.Report.DbpRelations, f[1])
		default:
			return fmt.Errorf("unknown relation side %q", f[0])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	counts := map[string]*int{
		"families":             &w.Report.Families,
		"confounder_families":  &w.Report.ConfounderFamilies,
		"specialized_families": &w.Report.SpecializedFamilies,
		"literal_families":     &w.Report.LiteralFamilies,
		"variant_relations":    &w.Report.VariantRelations,
		"noise_relations":      &w.Report.NoiseRelations,
		"yago_facts":           &w.Report.YagoFacts,
		"dbp_facts":            &w.Report.DbpFacts,
		"sameas_links":         &w.Report.SameAsLinks,
	}
	if err := scanTSV(filepath.Join(dir, fileReport), 2, func(f []string) error {
		dst, ok := counts[f[0]]
		if !ok {
			return nil // forward compatibility: ignore unknown counters
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return err
		}
		*dst = n
		return nil
	}); err != nil {
		return nil, err
	}
	return w, nil
}

// loadKBFile opens <dir>/<name>.snap when present, else parses
// <dir>/<name>.nt. An unreadable or corrupt snapshot falls back to the
// N-Triples file when that exists (identical contents, slower load),
// so a damaged .snap never strands a directory that still has its .nt.
func loadKBFile(dir, name string) (*kb.KB, error) {
	snap := filepath.Join(dir, name+".snap")
	nt := filepath.Join(dir, name+".nt")
	if _, err := os.Stat(snap); err == nil {
		k, err := kb.OpenSnapshot(snap)
		if err == nil {
			return k, nil
		}
		if _, ntErr := os.Stat(nt); ntErr != nil {
			return nil, err
		}
	}
	return kb.LoadFile(name, nt)
}

// scanTSV applies fn to every non-empty, non-comment line of a
// tab-separated file, enforcing the field count.
func scanTSV(path string, fields int, fn func([]string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != fields {
			return fmt.Errorf("%s:%d: want %d tab-separated fields, got %d", path, line, fields, len(parts))
		}
		if err := fn(parts); err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
	}
	return sc.Err()
}
