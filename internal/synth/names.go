package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Entity classes of the synthetic world.
type class uint8

const (
	clPerson class = iota
	clWork
	clPlace
	clOrg
	numClasses
)

func (c class) String() string {
	switch c {
	case clPerson:
		return "Person"
	case clWork:
		return "Work"
	case clPlace:
		return "Place"
	case clOrg:
		return "Organization"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Namespace bases mirror the real datasets.
const (
	yagoNS = "http://yago-knowledge.org/resource/"
	dbrNS  = "http://dbpedia.org/resource/"
	dbpNS  = "http://dbpedia.org/property/"
)

var firstNames = []string{
	"Ada", "Blaise", "Clara", "Dmitri", "Edith", "Felix", "Grace",
	"Henri", "Ingrid", "Jorge", "Klara", "Louis", "Miriam", "Nikola",
	"Olive", "Pierre", "Quentin", "Rosa", "Stefan", "Talia", "Ursula",
	"Viktor", "Wanda", "Xavier", "Yara", "Zoltan",
}

var lastNames = []string{
	"Arnold", "Bessel", "Curie", "Darwin", "Euler", "Fourier", "Gauss",
	"Hilbert", "Ito", "Jacobi", "Klein", "Laplace", "Markov", "Noether",
	"Oresme", "Pascal", "Quine", "Riemann", "Sinatra", "Turing",
	"Ulam", "Volterra", "Weyl", "Xenakis", "Young", "Zariski",
}

var workWords = []string{
	"Nocturne", "Voyage", "Shadow", "River", "Lantern", "Meridian",
	"Harvest", "Echo", "Cathedral", "Orchard", "Silence", "Mirror",
	"Garden", "Winter", "Letters", "Atlas", "Requiem", "Horizon",
}

var placeWords = []string{
	"Aven", "Brook", "Carres", "Dolm", "Elb", "Fenn", "Gard", "Holm",
	"Istr", "Jur", "Kovel", "Lund", "Morav", "Nantes", "Orle", "Prag",
	"Quim", "Ravel", "Sarre", "Tulle",
}

var placeSuffixes = []string{"berg", "ford", "grad", "holm", "ia", "mont", "stad", "ville", "wick"}

var orgWords = []string{
	"Northfield", "Meridian", "Atlas", "Cobalt", "Juniper", "Halcyon",
	"Vanguard", "Pinnacle", "Sterling", "Harbor",
}

var orgSuffixes = []string{"University", "Institute", "Laboratories", "Industries", "Collective", "Press"}

// entityName produces a deterministic human-readable name for entity i
// of a class.
func entityName(c class, i int, rng *rand.Rand) string {
	switch c {
	case clPerson:
		f := firstNames[rng.Intn(len(firstNames))]
		l := lastNames[rng.Intn(len(lastNames))]
		return fmt.Sprintf("%s %s %d", f, l, i)
	case clWork:
		a := workWords[rng.Intn(len(workWords))]
		b := workWords[rng.Intn(len(workWords))]
		return fmt.Sprintf("The %s of the %s %d", a, b, i)
	case clPlace:
		return placeWords[rng.Intn(len(placeWords))] + placeSuffixes[rng.Intn(len(placeSuffixes))] + fmt.Sprintf(" %d", i)
	default:
		return orgWords[rng.Intn(len(orgWords))] + " " + orgSuffixes[rng.Intn(len(orgSuffixes))] + fmt.Sprintf(" %d", i)
	}
}

// yagoEntityIRI renders names YAGO-style: underscores for spaces.
func yagoEntityIRI(name string) string {
	return yagoNS + strings.ReplaceAll(name, " ", "_")
}

// dbpEntityIRI renders names DBpedia-style.
func dbpEntityIRI(name string) string {
	return dbrNS + strings.ReplaceAll(name, " ", "_")
}

// relation-name fragments for auto-generated families, combined
// deterministically into verbs like "performedIn", "ownedBy".
var relVerbs = []string{
	"acted", "advised", "backed", "chaired", "coached", "composed",
	"curated", "designed", "edited", "endorsed", "financed", "founded",
	"guided", "hosted", "illustrated", "judged", "launched", "managed",
	"mentored", "narrated", "organized", "painted", "performed",
	"produced", "published", "recorded", "restored", "sponsored",
	"staged", "supervised", "translated", "voiced",
}

var relSuffixes = []string{"In", "At", "For", "With", "By", "On"}

var dbpSynonymPrefixes = []string{"", "has", "is", "main", "notable", "primary"}

var yagoStylePrefixes = []string{"was", "is", "has", "did"}

// yagoStyleName derives a YAGO-flavored relation name from a canonical
// verb, e.g. "performedIn3" → "wasPerformedIn3".
func yagoStyleName(canonical string, rng *rand.Rand) string {
	p := yagoStylePrefixes[rng.Intn(len(yagoStylePrefixes))]
	return p + strings.ToUpper(canonical[:1]) + canonical[1:]
}

// dbpVariantName derives a DBpedia-flavored synonym of a canonical verb:
// e.g. canonical "birthPlace" stays, "created" → "notableWork", handled
// by the caller for flagship names; auto families use prefix+verb.
func dbpVariantName(canonical string, variant int, rng *rand.Rand) string {
	p := dbpSynonymPrefixes[rng.Intn(len(dbpSynonymPrefixes))]
	if p == "" {
		return canonical + fmt.Sprintf("%d", variant)
	}
	return p + strings.ToUpper(canonical[:1]) + canonical[1:] + fmt.Sprintf("%d", variant)
}
