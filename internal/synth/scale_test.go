package synth

import (
	"strings"
	"testing"
)

func TestReserveRelDisambiguatesDeterministically(t *testing.T) {
	g := &generator{usedRel: map[string]bool{}}
	if got := g.reserveRel("http://x/p"); got != "http://x/p" {
		t.Fatalf("first claim renamed: %q", got)
	}
	if got := g.reserveRel("http://x/p"); got != "http://x/p_v2" {
		t.Fatalf("second claim = %q, want _v2 suffix", got)
	}
	if got := g.reserveRel("http://x/p"); got != "http://x/p_v3" {
		t.Fatalf("third claim = %q, want _v3 suffix", got)
	}
}

// assertUniqueSorted fails when the (sorted) list has adjacent
// duplicates — which is how a silent relation-name collision would
// surface in the report.
func assertUniqueSorted(t *testing.T, label string, iris []string) {
	t.Helper()
	for i := 1; i < len(iris); i++ {
		if iris[i-1] == iris[i] {
			t.Fatalf("%s: duplicate relation IRI %q", label, iris[i])
		}
		if iris[i-1] > iris[i] {
			t.Fatalf("%s: not sorted at %d", label, i)
		}
	}
}

// TestScaleWorldRelationIRIsUnique is the large-n collision regression:
// before reserveRel, independently derived relation names could
// coincide at scale, and the KB would silently merge the relations
// (fewer distinct predicates than the spec asked for) while the report
// and gold truth still listed both names.
func TestScaleWorldRelationIRIsUnique(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 100k-relation world")
	}
	const n = 100_000
	w := Generate(ScaleSpec(n))
	if got := len(w.Report.DbpRelations); got != n {
		t.Errorf("report lists %d dbp relations, want %d", got, n)
	}
	assertUniqueSorted(t, "dbp", w.Report.DbpRelations)
	// The KB may hold slightly fewer distinct predicates than the
	// report lists: a specialization can draw zero facts (empty
	// relation). A *collision* would instead surface as a duplicate in
	// the report list above. Keep the gap tightly bounded so a new
	// silent-merge path cannot hide behind the empty-relation slack.
	if gap := n - len(w.Dbp.Relations()); gap < 0 || gap > 8 {
		t.Errorf("dbp KB holds %d distinct relations for %d listed (gap %d)",
			len(w.Dbp.Relations()), n, gap)
	}
	assertUniqueSorted(t, "yago", w.Report.YagoRelations)
	if got, want := len(w.Report.YagoRelations), ScaleSpec(n).YagoRelations; got != want {
		t.Errorf("yago relations = %d, want %d", got, want)
	}
	// every yago relation must be distinct from every dbp relation too:
	// the two KBs use disjoint namespaces.
	seen := make(map[string]bool, n)
	for _, iri := range w.Report.DbpRelations {
		seen[iri] = true
	}
	for _, iri := range w.Report.YagoRelations {
		if seen[iri] {
			t.Errorf("relation IRI %q appears in both KBs", iri)
		}
	}
}

// TestWideSpecializationWorldUnique drives the concrete collision path:
// with two-digit specialization indexes, dbpVariantName renders the same
// string for different (family, variant) pairs — at this seed,
// "endorsedIn82"+“4” and "endorsedIn8"+“24” both yield
// notableEndorsedIn824. Unguarded, the KB silently merged the two and
// the report listed the name twice (assertUniqueSorted catches that);
// guarded, the second claim is renamed with a _v2 suffix, which the test
// requires to prove the collision path actually fired.
func TestWideSpecializationWorldUnique(t *testing.T) {
	s := TinySpec()
	s.Seed = 37
	s.YagoRelations = 300
	s.DbpRelations = 2000
	s.SpecializationFraction = 0.9
	s.MaxSpecializations = 30 // two-digit variant indexes
	w := Generate(s)
	assertUniqueSorted(t, "dbp", w.Report.DbpRelations)
	disambiguated := false
	for _, iri := range w.Report.DbpRelations {
		if strings.Contains(iri, "_v2") {
			disambiguated = true
			break
		}
	}
	if !disambiguated {
		t.Fatalf("expected at least one _v2-disambiguated relation at this seed; " +
			"the collision path is no longer exercised")
	}
	// Wide splits overflow DbpRelations by design (noise only tops the
	// count up, never trims families); the invariant is distinctness.
	if got := len(w.Report.DbpRelations); got < s.DbpRelations {
		t.Fatalf("report lists %d dbp relations, want at least %d", got, s.DbpRelations)
	}
}
