package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sameas"
)

// World is a generated evaluation substrate.
type World struct {
	// Yago and Dbp are the two derived KBs.
	Yago, Dbp *kb.KB
	// Links maps YAGO entity IRIs (side A) to DBpedia entity IRIs
	// (side B).
	Links *sameas.Links
	// Truth is the gold-standard alignment.
	Truth *GroundTruth
	// Report summarizes what was generated.
	Report Report
}

// Report counts the generated structures, for documentation and tests.
type Report struct {
	Families            int
	ConfounderFamilies  int
	SpecializedFamilies int
	LiteralFamilies     int
	VariantRelations    int
	NoiseRelations      int
	YagoFacts, DbpFacts int
	SameAsLinks         int
	// YagoRelations and DbpRelations list the relation IRIs that form
	// the alignment universe, sorted.
	YagoRelations []string
	DbpRelations  []string
}

type litKind uint8

const (
	litNone litKind = iota
	litLabel
	litYear
	litNumber
)

// family is one canonical relation of the world.
type family struct {
	idx        int
	verb       string // canonical camelCase verb
	dom, ran   class
	lit        litKind
	functional bool
	fanout     int // max objects per subject for non-functional
	nFacts     int

	yagoRel string   // YAGO relation IRI
	dbpRels []string // either one equivalent or ≥2 specializations
	split   bool     // true when dbpRels are specializations

	yCov, dCov float64 // per-subject retention in each KB
	gmr        float64 // cross-KB object-disagreement rate (dbp side)

	confOf int     // index of confounded family, or -1
	corr   float64 // object-sharing probability with confOf

	// variantSource marks clean families whose dbp relations may grow
	// near-duplicate variants.
	variantSource bool

	facts []factPair // canonical facts (entity indexes into pools)
}

type factPair struct {
	s, o int // entity index in dom/ran pool; o is a synthetic value seed for literals
}

type generator struct {
	spec Spec
	rng  *rand.Rand

	pools    [numClasses][]string // display names per class
	families []*family

	// usedRel holds every relation IRI handed out so far. Derived names
	// are not injective — dbpVariantName("actedIn1", 20) and
	// dbpVariantName("actedIn12", 0) both render "actedIn120" — and the
	// KB would silently merge the colliding relations while the report
	// and gold truth still listed both names. Every relation IRI must
	// pass through reserveRel.
	usedRel map[string]bool

	// clean dbp facts buffered during emission, feeding variant
	// relations: relation IRI → emitted (subject, object) pool indexes.
	dbpEmitted    map[string][]factPair
	dbpEmittedFam map[string]*family

	world *World
}

// Generate builds a world from the spec. Generation is deterministic in
// the spec (including the seed).
func Generate(spec Spec) *World {
	g := &generator{
		spec:    spec,
		rng:     rand.New(rand.NewSource(spec.Seed)),
		usedRel: make(map[string]bool),
		world: &World{
			Yago:  kb.New("yago"),
			Dbp:   kb.New("dbpedia"),
			Links: sameas.New(),
			Truth: newGroundTruth(),
		},
	}
	g.buildPools()
	g.buildFlagshipFamilies()
	g.buildAutoFamilies()
	g.buildFacts()
	g.emitKBs()
	g.emitVariants()
	g.emitNoiseRelations()
	g.emitSameAs()
	g.buildTruth()
	g.finishReport()
	return g.world
}

func (g *generator) buildPools() {
	sizes := [numClasses]int{
		clPerson: g.spec.Persons,
		clWork:   g.spec.Works,
		clPlace:  g.spec.Places,
		clOrg:    g.spec.Orgs,
	}
	for c := class(0); c < numClasses; c++ {
		pool := make([]string, sizes[c])
		for i := range pool {
			pool[i] = entityName(c, i, g.rng)
		}
		g.pools[c] = pool
	}
}

// flagship families mirror the paper's §2.2 examples explicitly.
func (g *generator) buildFlagshipFamilies() {
	add := func(f *family) *family {
		f.idx = len(g.families)
		f.confOf = -1
		g.families = append(g.families, f)
		return f
	}

	// wasBornIn ≡ birthPlace: the paper's introduction example.
	born := add(&family{verb: "birthPlace", dom: clPerson, ran: clPlace, functional: true})
	born.yagoRel = g.reserveRel(yagoNS + "wasBornIn")
	born.dbpRels = []string{g.reserveRel(dbpNS + "birthPlace")}

	// created ⊐ {composerOf, writerOf, directorOf}: §2.2 example 1
	// (subsumptions that are not equivalences).
	created := add(&family{verb: "created", dom: clPerson, ran: clWork, functional: false, fanout: 3})
	created.yagoRel = g.reserveRel(yagoNS + "created")
	created.dbpRels = []string{
		g.reserveRel(dbpNS + "composerOf"),
		g.reserveRel(dbpNS + "writerOf"),
		g.reserveRel(dbpNS + "directorOf"),
	}
	created.split = true

	// directedBy ≡ hasDirector, with producedBy ≡ hasProducer as its
	// correlated confounder: §2.2 example 2 (overlaps that are not
	// subsumptions).
	directed := add(&family{verb: "directedBy", dom: clWork, ran: clPerson, functional: true})
	directed.yagoRel = g.reserveRel(yagoNS + "directedBy")
	directed.dbpRels = []string{g.reserveRel(dbpNS + "hasDirector")}

	produced := add(&family{verb: "producedBy", dom: clWork, ran: clPerson, functional: true})
	produced.yagoRel = g.reserveRel(yagoNS + "producedBy")
	produced.dbpRels = []string{g.reserveRel(dbpNS + "hasProducer")}
	produced.confOf = directed.idx
	produced.corr = 0.72

	// label: entity–literal with formatting heterogeneity.
	label := add(&family{verb: "label", dom: clPerson, lit: litLabel, functional: true})
	label.yagoRel = g.reserveRel(yagoNS + "hasPreferredName")
	label.dbpRels = []string{g.reserveRel(dbpNS + "name")}

	// birth date: gYear (YAGO) vs full xsd:date (DBpedia).
	bdate := add(&family{verb: "birthDate", dom: clPerson, lit: litYear, functional: true})
	bdate.yagoRel = g.reserveRel(yagoNS + "wasBornOnDate")
	bdate.dbpRels = []string{g.reserveRel(dbpNS + "birthDate")}
}

func (g *generator) buildAutoFamilies() {
	for len(g.families) < g.spec.YagoRelations {
		i := len(g.families)
		f := &family{idx: i, confOf: -1}
		base := relVerbs[g.rng.Intn(len(relVerbs))] + relSuffixes[g.rng.Intn(len(relSuffixes))]
		f.verb = fmt.Sprintf("%s%d", base, i)
		f.dom = class(g.rng.Intn(int(numClasses)))
		if g.rng.Float64() < g.spec.LiteralFraction {
			f.lit = []litKind{litLabel, litYear, litNumber}[g.rng.Intn(3)]
			f.functional = true
			// at most one label relation per domain class: two label
			// families over the same subjects would hold identical
			// strings, which in the real world would make them the same
			// relation, not a gold-negative pair.
			if f.lit == litLabel && g.labelFamilyExists(f.dom) {
				f.lit = litYear
			}
		} else {
			f.ran = class(g.rng.Intn(int(numClasses)))
			f.functional = g.rng.Float64() < 0.55
			if !f.functional {
				f.fanout = 2 + g.rng.Intn(3)
			}
		}
		f.yagoRel = g.reserveRel(yagoNS + yagoStyleName(f.verb, g.rng))

		// confounder? requires a compatible earlier entity-entity family
		if f.lit == litNone && g.rng.Float64() < g.spec.ConfounderFraction {
			if prev := g.findConfounderTarget(f); prev != nil {
				f.confOf = prev.idx
				f.dom, f.ran = prev.dom, prev.ran
				f.functional = prev.functional
				f.fanout = prev.fanout
				lo, hi := g.spec.ConfounderCorrelation[0], g.spec.ConfounderCorrelation[1]
				f.corr = lo + g.rng.Float64()*(hi-lo)
			}
		}

		// DBpedia side: split or equivalent
		if f.lit == litNone && f.confOf < 0 && g.rng.Float64() < g.spec.SpecializationFraction {
			k := 2 + g.rng.Intn(g.spec.MaxSpecializations-1)
			f.split = true
			for j := 0; j < k; j++ {
				f.dbpRels = append(f.dbpRels, g.reserveRel(dbpNS+dbpVariantName(f.verb, j, g.rng)))
			}
			// specializations of functional relations split by object,
			// which requires fanout ≥ 2 for UBS overlap subjects to
			// exist; force non-functional.
			if f.functional {
				f.functional = false
				f.fanout = 2
			}
		} else {
			f.dbpRels = []string{g.reserveRel(dbpNS + dbpVariantName(f.verb, 0, g.rng))}
		}
		g.families = append(g.families, f)
	}
}

// labelFamilyExists reports whether a litLabel family already covers
// the domain class.
func (g *generator) labelFamilyExists(dom class) bool {
	for _, f := range g.families {
		if f.lit == litLabel && f.dom == dom {
			return true
		}
	}
	return false
}

// findConfounderTarget picks an earlier entity-entity, non-split family
// that nothing else confounds yet.
func (g *generator) findConfounderTarget(f *family) *family {
	taken := map[int]bool{}
	for _, other := range g.families {
		if other.confOf >= 0 {
			taken[other.confOf] = true
		}
	}
	var candidates []*family
	for _, other := range g.families {
		if other.lit == litNone && !other.split && other.confOf < 0 && !taken[other.idx] {
			candidates = append(candidates, other)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[g.rng.Intn(len(candidates))]
}

func (g *generator) buildFacts() {
	for _, f := range g.families {
		f.yCov = g.spec.YagoCoverage[0] + g.rng.Float64()*(g.spec.YagoCoverage[1]-g.spec.YagoCoverage[0])
		f.dCov = g.spec.DbpCoverage[0] + g.rng.Float64()*(g.spec.DbpCoverage[1]-g.spec.DbpCoverage[0])

		if f.confOf >= 0 {
			g.buildConfounderFacts(f, g.families[f.confOf])
			continue
		}
		n := g.factCount(f)
		domPool := g.pools[f.dom]
		if f.functional || f.lit != litNone {
			// distinct subjects, one object each
			perm := g.rng.Perm(len(domPool))
			if n > len(perm) {
				n = len(perm)
			}
			for i := 0; i < n; i++ {
				f.facts = append(f.facts, factPair{s: perm[i], o: g.objectFor(f, perm[i], 0)})
			}
		} else {
			subjects := n / ((f.fanout + 1) / 2)
			if subjects < 1 {
				subjects = 1
			}
			perm := g.rng.Perm(len(domPool))
			if subjects > len(perm) {
				subjects = len(perm)
			}
			for i := 0; i < subjects; i++ {
				k := 1 + g.rng.Intn(f.fanout)
				seen := map[int]bool{}
				for j := 0; j < k; j++ {
					o := g.objectFor(f, perm[i], j)
					if seen[o] {
						continue
					}
					seen[o] = true
					f.facts = append(f.facts, factPair{s: perm[i], o: o})
				}
			}
		}
	}
}

// factCount draws a log-uniform family size around BaseFacts.
func (g *generator) factCount(f *family) int {
	u := -1.6 + g.rng.Float64()*4.0 // exponent in [-1.6, 2.4]
	n := int(float64(g.spec.BaseFacts) * math.Pow(2, u))
	if n < 8 {
		n = 8
	}
	return n
}

func (g *generator) objectFor(f *family, subj, ord int) int {
	if f.lit != litNone {
		// literal families derive the value from the subject index so
		// both KBs agree; the int is a value seed.
		return subj
	}
	return g.rng.Intn(len(g.pools[f.ran]))
}

// buildConfounderFacts correlates f with target: same subjects; shared
// object with probability f.corr.
func (g *generator) buildConfounderFacts(f, target *family) {
	for _, tf := range target.facts {
		o := tf.o
		if g.rng.Float64() >= f.corr {
			o = g.rng.Intn(len(g.pools[f.ran]))
		}
		f.facts = append(f.facts, factPair{s: tf.s, o: o})
	}
}

// emitKBs derives the two KBs from the canonical facts.
//
// Coverage is per (relation, subject), not per fact: a KB either knows
// all objects a subject has under a relation or none of them. This is
// the completeness model the PCA (Equation 2) assumes — "a KB knows
// either all or none of the r-attributes of some x" — and it is what
// keeps UBS contradictions trustworthy.
func (g *generator) emitKBs() {
	g.dbpEmitted = make(map[string][]factPair)
	g.dbpEmittedFam = make(map[string]*family)
	confTargets := map[int]bool{}
	for _, f := range g.families {
		if f.confOf >= 0 {
			confTargets[f.confOf] = true
		}
	}
	for _, f := range g.families {
		// clean entity relations (no granularity mismatch) can grow
		// near-duplicate variants; buffer their dbp facts.
		f.variantSource = f.lit == litNone && (f.split || f.confOf >= 0 || confTargets[f.idx])
		// granularity mismatch by family kind; see Spec.
		f.gmr = g.spec.ValueNoise
		switch {
		case f.lit != litNone || f.confOf >= 0 || confTargets[f.idx]:
			// clean: base value noise only
		case f.split:
			lo, hi := g.spec.SpecGranularityMismatch[0], g.spec.SpecGranularityMismatch[1]
			f.gmr += lo + g.rng.Float64()*(hi-lo)
		default:
			lo, hi := g.spec.GranularityMismatch[0], g.spec.GranularityMismatch[1]
			f.gmr += lo + g.rng.Float64()*(hi-lo)
		}

		yKeep := map[int]bool{}
		dKeep := map[int]bool{}
		decide := func(m map[int]bool, s int, cov float64) bool {
			if v, ok := m[s]; ok {
				return v
			}
			v := g.rng.Float64() < cov
			m[s] = v
			return v
		}
		for _, fp := range f.facts {
			inYago := decide(yKeep, fp.s, f.yCov)
			inDbp := decide(dKeep, fp.s, f.dCov)
			// cross-KB disagreement: dbp sees a different object
			dbpO := fp.o
			if f.lit == litNone && g.rng.Float64() < f.gmr {
				dbpO = g.rng.Intn(len(g.pools[f.ran]))
			}
			if inYago {
				g.addYagoFact(f, fp.s, fp.o)
			}
			if inDbp {
				g.addDbpFact(f, fp.s, dbpO)
			}
		}
	}
}

func (g *generator) addYagoFact(f *family, s, o int) {
	subj := rdf.NewIRI(yagoEntityIRI(g.pools[f.dom][s]))
	pred := rdf.NewIRI(f.yagoRel)
	g.world.Yago.Add(rdf.NewTriple(subj, pred, g.yagoObject(f, o)))
}

// literalYear derives a family-specific year for value seed o: distinct
// literal relations of the same subject hold different values (birth
// year vs founding year), exactly as in real KBs.
func literalYear(f *family, o int) int { return 1700 + (o*3+f.idx*13)%320 }

func literalNumber(f *family, o int) int { return 1000 + (o*17+f.idx*911)%90000 }

func (g *generator) yagoObject(f *family, o int) rdf.Term {
	switch f.lit {
	case litNone:
		return rdf.NewIRI(yagoEntityIRI(g.pools[f.ran][o]))
	case litLabel:
		// YAGO style: underscored label
		name := g.pools[f.dom][o]
		return rdf.NewLiteral(underscored(name))
	case litYear:
		return rdf.NewTypedLiteral(fmt.Sprintf("%d", literalYear(f, o)), rdf.XSDGYear)
	default: // litNumber
		return rdf.NewTypedLiteral(fmt.Sprintf("%d", literalNumber(f, o)), rdf.XSDInteger)
	}
}

func (g *generator) addDbpFact(f *family, s, o int) {
	subj := rdf.NewIRI(dbpEntityIRI(g.pools[f.dom][s]))
	rel := f.dbpRels[0]
	if f.split {
		rel = f.dbpRels[o%len(f.dbpRels)]
	}
	pred := rdf.NewIRI(rel)
	g.world.Dbp.Add(rdf.NewTriple(subj, pred, g.dbpObject(f, o)))
	if f.variantSource {
		g.dbpEmitted[rel] = append(g.dbpEmitted[rel], factPair{s: s, o: o})
		g.dbpEmittedFam[rel] = f
	}
}

// emitVariants derives DBpedia-only near-duplicate relations from clean
// dbp relations: a subject subset with imperfect object agreement. They
// model the raw-infobox synonym tail of real DBpedia (dbp:birthPlace vs
// dbp:placeOfBirth vs dbp:origin) and are gold-negative.
func (g *generator) emitVariants() {
	rels := make([]string, 0, len(g.dbpEmitted))
	for rel := range g.dbpEmitted {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	maxV := g.spec.MaxVariantsPerRelation
	if maxV < 1 {
		maxV = 1
	}
	for _, rel := range rels {
		if g.rng.Float64() >= g.spec.VariantFraction {
			continue
		}
		f := g.dbpEmittedFam[rel]
		n := 1 + g.rng.Intn(maxV)
		for v := 0; v < n; v++ {
			agr := g.spec.VariantAgreement[0] +
				g.rng.Float64()*(g.spec.VariantAgreement[1]-g.spec.VariantAgreement[0])
			cov := g.spec.VariantSubjectCoverage[0] +
				g.rng.Float64()*(g.spec.VariantSubjectCoverage[1]-g.spec.VariantSubjectCoverage[0])
			vrel := rdf.NewIRI(g.reserveRel(fmt.Sprintf("%sRaw%d", rel, v)))
			keep := map[int]bool{}
			added := 0
			for _, fp := range g.dbpEmitted[rel] {
				k, seen := keep[fp.s]
				if !seen {
					k = g.rng.Float64() < cov
					keep[fp.s] = k
				}
				if !k {
					continue
				}
				o := fp.o
				if g.rng.Float64() >= agr {
					o = g.rng.Intn(len(g.pools[f.ran]))
				}
				subj := rdf.NewIRI(dbpEntityIRI(g.pools[f.dom][fp.s]))
				obj := rdf.NewIRI(dbpEntityIRI(g.pools[f.ran][o]))
				if g.world.Dbp.Add(rdf.NewTriple(subj, vrel, obj)) {
					added++
				}
			}
			if added > 0 {
				g.world.Report.VariantRelations++
			}
		}
	}
}

func (g *generator) dbpObject(f *family, o int) rdf.Term {
	switch f.lit {
	case litNone:
		return rdf.NewIRI(dbpEntityIRI(g.pools[f.ran][o]))
	case litLabel:
		return rdf.NewLangLiteral(g.pools[f.dom][o], "en")
	case litYear:
		year := literalYear(f, o)
		month := 1 + o%12
		day := 1 + o%28
		return rdf.NewTypedLiteral(fmt.Sprintf("%04d-%02d-%02d", year, month, day), rdf.XSDDate)
	default: // litNumber
		return rdf.NewTypedLiteral(fmt.Sprintf("%d", literalNumber(f, o)), rdf.XSDInteger)
	}
}

// emitNoiseRelations fills the DBpedia relation count with long-tail
// raw-infobox properties that have no YAGO counterpart.
func (g *generator) emitNoiseRelations() {
	have := g.world.Report.VariantRelations
	for _, f := range g.families {
		have += len(f.dbpRels)
	}
	need := g.spec.DbpRelations - have
	for i := 0; i < need; i++ {
		rel := rdf.NewIRI(g.reserveRel(fmt.Sprintf("%sinfobox%s%d", dbpNS,
			relVerbs[g.rng.Intn(len(relVerbs))], i)))
		n := 2 + g.rng.Intn(g.spec.NoiseFactsMax-1)
		dom := class(g.rng.Intn(int(numClasses)))
		for j := 0; j < n; j++ {
			s := g.rng.Intn(len(g.pools[dom]))
			subj := rdf.NewIRI(dbpEntityIRI(g.pools[dom][s]))
			var obj rdf.Term
			if g.rng.Intn(3) == 0 {
				obj = rdf.NewLiteral(fmt.Sprintf("raw value %d", g.rng.Intn(1000)))
			} else {
				ran := class(g.rng.Intn(int(numClasses)))
				obj = rdf.NewIRI(dbpEntityIRI(g.pools[ran][g.rng.Intn(len(g.pools[ran]))]))
			}
			g.world.Dbp.Add(rdf.NewTriple(subj, rel, obj))
		}
		g.world.Report.NoiseRelations++
	}
}

func (g *generator) emitSameAs() {
	for c := class(0); c < numClasses; c++ {
		for _, name := range g.pools[c] {
			if g.rng.Float64() < g.spec.SameAsCoverage {
				g.world.Links.Add(yagoEntityIRI(name), dbpEntityIRI(name))
			}
		}
	}
	g.world.Report.SameAsLinks = g.world.Links.Len()
}

func (g *generator) buildTruth() {
	for _, f := range g.families {
		if f.split {
			for _, d := range f.dbpRels {
				g.world.Truth.addD2Y(d, f.yagoRel, false)
			}
		} else {
			d := f.dbpRels[0]
			g.world.Truth.addD2Y(d, f.yagoRel, true)
			g.world.Truth.addY2D(f.yagoRel, d, true)
		}
	}
}

func (g *generator) finishReport() {
	r := &g.world.Report
	r.Families = len(g.families)
	for _, f := range g.families {
		if f.confOf >= 0 {
			r.ConfounderFamilies++
		}
		if f.split {
			r.SpecializedFamilies++
		}
		if f.lit != litNone {
			r.LiteralFamilies++
		}
		r.YagoRelations = append(r.YagoRelations, f.yagoRel)
		r.DbpRelations = append(r.DbpRelations, f.dbpRels...)
	}
	sort.Strings(r.YagoRelations)
	// noise relations belong to the DBpedia alignment universe too:
	// SOFYA cannot know a priori that they are junk.
	seen := make(map[string]bool, len(r.DbpRelations))
	for _, iri := range r.DbpRelations {
		seen[iri] = true
	}
	for _, p := range g.world.Dbp.Relations() {
		iri := g.world.Dbp.Term(p).Value
		if !seen[iri] {
			seen[iri] = true
			r.DbpRelations = append(r.DbpRelations, iri)
		}
	}
	sort.Strings(r.DbpRelations)
	r.YagoFacts = g.world.Yago.Size()
	r.DbpFacts = g.world.Dbp.Size()
}

// reserveRel claims a relation IRI, disambiguating collisions with a
// deterministic _v2, _v3, ... suffix. It draws no randomness, so worlds
// whose derived names never collide generate byte-identically to the
// unguarded generator.
func (g *generator) reserveRel(iri string) string {
	if !g.usedRel[iri] {
		g.usedRel[iri] = true
		return iri
	}
	for i := 2; ; i++ {
		c := fmt.Sprintf("%s_v%d", iri, i)
		if !g.usedRel[c] {
			g.usedRel[c] = true
			return c
		}
	}
}

func underscored(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] == ' ' {
			b[i] = '_'
		}
	}
	return string(b)
}
