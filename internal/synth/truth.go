package synth

// TruthPair is one gold-standard subsumption Body(x,y) ⇒ Head(x,y).
type TruthPair struct {
	// Body and Head are relation IRIs; Body belongs to the direction's
	// body KB, Head to its head KB.
	Body, Head string
	// Equivalent marks pairs that are half of an equivalence (the
	// converse pair is also in the gold standard).
	Equivalent bool
}

// GroundTruth is the generator's gold standard, one pair list per
// direction. Direction naming follows DESIGN.md §6: YagoToDbp holds
// rules with YAGO bodies and DBpedia heads ("yago ⊂ dbpd").
type GroundTruth struct {
	YagoToDbp []TruthPair
	DbpToYago []TruthPair

	y2d map[string]bool
	d2y map[string]bool
}

func newGroundTruth() *GroundTruth {
	return &GroundTruth{y2d: make(map[string]bool), d2y: make(map[string]bool)}
}

func gtKey(body, head string) string { return body + "\x00" + head }

func (gt *GroundTruth) addY2D(body, head string, equiv bool) {
	if gt.y2d[gtKey(body, head)] {
		return
	}
	gt.y2d[gtKey(body, head)] = true
	gt.YagoToDbp = append(gt.YagoToDbp, TruthPair{Body: body, Head: head, Equivalent: equiv})
}

func (gt *GroundTruth) addD2Y(body, head string, equiv bool) {
	if gt.d2y[gtKey(body, head)] {
		return
	}
	gt.d2y[gtKey(body, head)] = true
	gt.DbpToYago = append(gt.DbpToYago, TruthPair{Body: body, Head: head, Equivalent: equiv})
}

// HoldsYagoToDbp reports whether body(x,y) ⇒ head(x,y) is gold for a
// YAGO body and DBpedia head.
func (gt *GroundTruth) HoldsYagoToDbp(body, head string) bool {
	return gt.y2d[gtKey(body, head)]
}

// HoldsDbpToYago reports whether body(x,y) ⇒ head(x,y) is gold for a
// DBpedia body and YAGO head.
func (gt *GroundTruth) HoldsDbpToYago(body, head string) bool {
	return gt.d2y[gtKey(body, head)]
}
