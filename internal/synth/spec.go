// Package synth generates the synthetic evaluation substrate: a pair of
// knowledge bases shaped like YAGO2 (92 relations) and DBpedia (1313
// relations) derived from one ground-truth "world", together with the
// owl:sameAs link set and the gold-standard relation alignments.
//
// The paper evaluates on real YAGO2/DBpedia SPARQL endpoints, which are
// unavailable offline and — more importantly — have no machine-readable
// gold standard for exact precision/recall accounting. The generator
// plants, with known ground truth, exactly the phenomena that drive the
// paper's Table 1:
//
//   - equivalent relation pairs under different names
//     (yago:wasBornIn ≡ dbp:birthPlace);
//   - strict subsumptions from granularity mismatch: one broad YAGO
//     relation vs several DBpedia specializations
//     (dbp:composerOf ⊂ yago:created, §2.2 example 1);
//   - correlated-but-unrelated confounder pairs
//     (hasDirector/hasProducer vs directedBy, §2.2 example 2) that fool
//     sample-based confidence measures;
//   - per-relation incompleteness in both KBs (CWA counter-example
//     noise) and a small cross-KB value-disagreement rate;
//   - incomplete sameAs links;
//   - entity–literal relations with heterogeneous formatting
//     (underscored YAGO labels vs spaced DBpedia labels, xsd:gYear vs
//     xsd:date) exercising the string-similarity matcher;
//   - a long tail of DBpedia-only "raw infobox" noise properties, which
//     is how the real DBpedia property namespace reaches 1313 relations.
package synth

// Spec parameterizes world generation. Use DefaultSpec or TinySpec and
// tweak fields; the zero value is not usable.
type Spec struct {
	// Seed drives every random choice; equal specs generate equal worlds.
	Seed int64

	// Persons, Works, Places, Orgs size the entity pools.
	Persons int
	Works   int
	Places  int
	Orgs    int

	// YagoRelations is the number of YAGO relations (the paper: 92).
	// Each relation family contributes exactly one.
	YagoRelations int
	// DbpRelations is the total number of DBpedia relations (the paper:
	// 1313); the gap left by family-derived relations is filled with
	// long-tail noise properties.
	DbpRelations int

	// SameAsCoverage is the fraction of shared entities that receive a
	// sameAs link.
	SameAsCoverage float64

	// YagoCoverage and DbpCoverage bound the per-relation fact-retention
	// probability in each KB (uniform in [min,max]).
	YagoCoverage [2]float64
	DbpCoverage  [2]float64

	// ValueNoise is the probability that a fact's object disagrees
	// across the two KBs (a different city, a misparsed date, ...).
	ValueNoise float64

	// GranularityMismatch bounds the per-family rate at which the two
	// KBs record different-but-related objects for the same fact (city
	// vs country for birthPlace, work vs series, ...). It applies only
	// to plain-equivalence entity families: confounder families and
	// their targets keep clean object identity so that UBS
	// contradictions stay trustworthy, mirroring the PCA's
	// per-subject-completeness model.
	GranularityMismatch [2]float64
	// SpecGranularityMismatch is the (smaller) mismatch range for
	// specialization families: enough to blur the baselines' threshold
	// separation, small enough that sibling-pair overlap rows stay
	// dominated by genuine multi-subtype subjects rather than noise.
	SpecGranularityMismatch [2]float64

	// ConfounderFraction is the fraction of entity-entity families that
	// get a correlated sibling family (director/producer style).
	ConfounderFraction float64
	// ConfounderCorrelation bounds the correlation of confounder pairs:
	// the probability that the sibling shares the object.
	ConfounderCorrelation [2]float64

	// SpecializationFraction is the fraction of families whose DBpedia
	// side splits into 2..MaxSpecializations specialized relations
	// instead of one equivalent.
	SpecializationFraction float64
	MaxSpecializations     int

	// LiteralFraction is the fraction of families whose range is a
	// literal (labels, dates, numbers).
	LiteralFraction float64

	// BaseFacts scales per-family fact counts (median family size).
	BaseFacts int

	// NoiseFactsMax caps the facts of each long-tail noise property.
	NoiseFactsMax int

	// VariantFraction is the probability that a clean DBpedia relation
	// (a specialization, a confounder, or a confounder target) gains
	// partial near-duplicate "raw infobox" variants — DBpedia-only
	// relations covering a subject subset with imperfect object
	// agreement. Variants are gold-negative: they are what makes
	// small-sample confidence measures overaccept, as in real DBpedia
	// (dbp:birthPlace vs dbp:placeOfBirth vs dbp:origin).
	VariantFraction float64
	// MaxVariantsPerRelation caps how many variants one relation grows.
	MaxVariantsPerRelation int
	// VariantAgreement bounds a variant's per-fact object agreement
	// with its source relation.
	VariantAgreement [2]float64
	// VariantSubjectCoverage bounds the fraction of source subjects a
	// variant covers.
	VariantSubjectCoverage [2]float64
}

// DefaultSpec reproduces the paper's scale: 92 YAGO relations, 1313
// DBpedia relations.
func DefaultSpec() Spec {
	return Spec{
		Seed:                    2016,
		Persons:                 2600,
		Works:                   2000,
		Places:                  420,
		Orgs:                    380,
		YagoRelations:           92,
		DbpRelations:            1313,
		SameAsCoverage:          0.78,
		YagoCoverage:            [2]float64{0.62, 0.95},
		DbpCoverage:             [2]float64{0.60, 0.92},
		ValueNoise:              0.015,
		GranularityMismatch:     [2]float64{0.0, 0.45},
		SpecGranularityMismatch: [2]float64{0.03, 0.15},
		ConfounderFraction:      0.40,
		ConfounderCorrelation:   [2]float64{0.60, 0.95},
		SpecializationFraction:  0.38,
		MaxSpecializations:      4,
		LiteralFraction:         0.18,
		BaseFacts:               130,
		NoiseFactsMax:           18,
		VariantFraction:         0.9,
		MaxVariantsPerRelation:  3,
		VariantAgreement:        [2]float64{0.55, 0.85},
		VariantSubjectCoverage:  [2]float64{0.5, 0.85},
	}
}

// ScaleSpec sizes a candidate-pruning stress world: n target (DBpedia)
// relations — overwhelmingly long-tail noise properties, which is what
// a production property namespace looks like — against a few hundred
// source (YAGO) relations. Fact counts per relation stay small so a
// 10⁵–10⁶-relation world generates in seconds and fits in memory; the
// point of these worlds is relation-count asymptotics (candidate
// generation must be sub-linear in n), not per-relation statistics.
// Literal and confounder machinery is disabled: both are per-relation
// phenomena already covered by the paper-scale specs, and disabling
// them keeps generation O(n).
func ScaleSpec(n int) Spec {
	s := DefaultSpec()
	s.Seed = 4242
	s.Persons, s.Works, s.Places, s.Orgs = 1500, 1000, 400, 300
	s.YagoRelations = 200
	if n < 2*s.YagoRelations {
		s.YagoRelations = n / 2
	}
	s.DbpRelations = n
	s.LiteralFraction = 0
	s.ConfounderFraction = 0
	s.SpecializationFraction = 0.25
	s.MaxSpecializations = 3
	s.BaseFacts = 24
	s.NoiseFactsMax = 5
	s.VariantFraction = 0.3
	s.MaxVariantsPerRelation = 1
	return s
}

// TinySpec is a fast small world for unit tests: 14 YAGO relations, 48
// DBpedia relations, a few hundred entities.
func TinySpec() Spec {
	s := DefaultSpec()
	s.Persons, s.Works, s.Places, s.Orgs = 260, 200, 60, 40
	s.YagoRelations = 14
	s.DbpRelations = 48
	s.BaseFacts = 60
	// tiny relations leave variants statistically unprunable (UBS needs
	// a couple of disagreement rows); keep the tiny world's variant tail
	// thin so unit tests probe the mechanism, not sampling starvation.
	s.VariantFraction = 0.7
	s.MaxVariantsPerRelation = 1
	return s
}
