package synth

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLoadWorldCorruptSnapshotFallsBack: a truncated .snap next to an
// intact .nt must not strand the directory — LoadWorld falls back to
// parsing the N-Triples.
func TestLoadWorldCorruptSnapshotFallsBack(t *testing.T) {
	w := Generate(TinySpec())
	dir := t.TempDir()
	if err := SaveWorld(w, dir, SaveOptions{Snapshots: true}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "yago.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWorld(dir)
	if err != nil {
		t.Fatalf("LoadWorld with corrupt snapshot: %v", err)
	}
	if got.Yago.Mapped() {
		t.Error("corrupt snapshot should have fallen back to N-Triples")
	}
	if !reflect.DeepEqual(got.Yago.Triples(), w.Yago.Triples()) {
		t.Error("fallback load diverges from the source KB")
	}
}

// TestSaveWorldRemovesStaleOutputs: re-saving into a directory that
// previously held snapshots and shard files must not leave stale ones
// behind — LoadWorld would prefer an old .snap over the fresh .nt.
func TestSaveWorldRemovesStaleOutputs(t *testing.T) {
	big := Generate(TinySpec())
	dir := t.TempDir()
	if err := SaveWorld(big, dir, SaveOptions{Snapshots: true, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	spec := TinySpec()
	spec.Seed++
	fresh := Generate(spec)
	if err := SaveWorld(fresh, dir, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, leftover := range []string{"yago.snap", "dbpedia.snap", "yago-shard-0-of-3.nt", "dbpedia-shard-2-of-3.snap", "yago-planstats.tsv"} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); err == nil {
			t.Errorf("stale %s survived the re-save", leftover)
		}
	}
	got, err := LoadWorld(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Yago.Triples(), fresh.Yago.Triples()) {
		t.Error("LoadWorld served a stale KB after re-save")
	}
}

// TestSaveLoadWorldRoundTrip: a saved world loads back equivalent —
// KBs byte-identical (via Triples), links, truth (including the lookup
// maps), the relation universe and the report.
func TestSaveLoadWorldRoundTrip(t *testing.T) {
	for _, snapshots := range []bool{false, true} {
		name := "nt"
		if snapshots {
			name = "snapshots"
		}
		t.Run(name, func(t *testing.T) {
			w := Generate(TinySpec())
			dir := t.TempDir()
			if err := SaveWorld(w, dir, SaveOptions{Snapshots: snapshots, Shards: 3}); err != nil {
				t.Fatal(err)
			}
			if snapshots {
				for _, f := range []string{"yago.snap", "dbpedia.snap", "yago-shard-0-of-3.snap", "dbpedia-shard-2-of-3.snap"} {
					if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
						t.Errorf("expected %s: %v", f, err)
					}
				}
			}
			got, err := LoadWorld(dir)
			if err != nil {
				t.Fatal(err)
			}
			if snapshots && !got.Yago.Mapped() {
				t.Error("LoadWorld did not use the snapshot (KB not mapped)")
			}
			if !reflect.DeepEqual(got.Yago.Triples(), w.Yago.Triples()) {
				t.Error("yago triples diverge after save/load")
			}
			if !reflect.DeepEqual(got.Dbp.Triples(), w.Dbp.Triples()) {
				t.Error("dbpedia triples diverge after save/load")
			}
			if !reflect.DeepEqual(got.Links.Pairs(), w.Links.Pairs()) {
				t.Error("links diverge after save/load")
			}
			if !reflect.DeepEqual(got.Truth.YagoToDbp, w.Truth.YagoToDbp) ||
				!reflect.DeepEqual(got.Truth.DbpToYago, w.Truth.DbpToYago) {
				t.Error("truth pairs diverge after save/load")
			}
			for _, p := range w.Truth.DbpToYago {
				if !got.Truth.HoldsDbpToYago(p.Body, p.Head) {
					t.Errorf("loaded truth lost d2y pair %s => %s", p.Body, p.Head)
				}
			}
			if !reflect.DeepEqual(got.Report, w.Report) {
				t.Errorf("report diverges after save/load:\n got %+v\nwant %+v", got.Report, w.Report)
			}
		})
	}
}
