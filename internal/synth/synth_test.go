package synth

import (
	"strings"
	"testing"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(TinySpec())
	w2 := Generate(TinySpec())
	if w1.Yago.Size() != w2.Yago.Size() || w1.Dbp.Size() != w2.Dbp.Size() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			w1.Yago.Size(), w1.Dbp.Size(), w2.Yago.Size(), w2.Dbp.Size())
	}
	for _, tr := range w1.Yago.Triples() {
		if !w2.Yago.Has(tr) {
			t.Fatalf("non-deterministic: %v missing from second world", tr)
		}
	}
	if w1.Links.Len() != w2.Links.Len() {
		t.Fatal("link counts differ")
	}
	if len(w1.Truth.DbpToYago) != len(w2.Truth.DbpToYago) {
		t.Fatal("truth sizes differ")
	}
}

func TestGenerateRelationCounts(t *testing.T) {
	spec := TinySpec()
	w := Generate(spec)
	if got := len(w.Report.YagoRelations); got != spec.YagoRelations {
		t.Fatalf("yago relations = %d, want %d", got, spec.YagoRelations)
	}
	if got := len(w.Report.DbpRelations); got != spec.DbpRelations {
		t.Fatalf("dbp relations = %d, want %d", got, spec.DbpRelations)
	}
	// every listed relation exists with at least one fact
	for _, iri := range w.Report.YagoRelations {
		id := w.Yago.LookupIRI(iri)
		if id < 0 || w.Yago.NumFactsOf(id) == 0 {
			t.Fatalf("yago relation %s has no facts", iri)
		}
	}
	empties := 0
	for _, iri := range w.Report.DbpRelations {
		id := w.Dbp.LookupIRI(iri)
		if id < 0 || w.Dbp.NumFactsOf(id) == 0 {
			empties++
		}
	}
	// coverage can eliminate a rare specialization's facts entirely, but
	// it must stay rare.
	if empties > spec.DbpRelations/20 {
		t.Fatalf("%d dbp relations have no facts", empties)
	}
}

func TestGenerateDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full world generation")
	}
	spec := DefaultSpec()
	w := Generate(spec)
	if got := len(w.Report.YagoRelations); got != 92 {
		t.Fatalf("yago relations = %d, want 92", got)
	}
	if got := len(w.Report.DbpRelations); got != 1313 {
		t.Fatalf("dbp relations = %d, want 1313", got)
	}
	if w.Yago.Size() < 5000 || w.Dbp.Size() < 5000 {
		t.Fatalf("world too small: yago=%d dbp=%d", w.Yago.Size(), w.Dbp.Size())
	}
	if w.Report.ConfounderFamilies == 0 || w.Report.SpecializedFamilies == 0 {
		t.Fatalf("phenomena missing: %+v", w.Report)
	}
}

func TestFlagshipFamiliesPresent(t *testing.T) {
	w := Generate(TinySpec())
	for _, iri := range []string{
		yagoNS + "wasBornIn", yagoNS + "created", yagoNS + "directedBy",
		yagoNS + "producedBy", yagoNS + "hasPreferredName", yagoNS + "wasBornOnDate",
	} {
		if id := w.Yago.LookupIRI(iri); id < 0 || w.Yago.NumFactsOf(id) == 0 {
			t.Fatalf("flagship yago relation %s missing", iri)
		}
	}
	for _, iri := range []string{
		dbpNS + "birthPlace", dbpNS + "composerOf", dbpNS + "writerOf",
		dbpNS + "directorOf", dbpNS + "hasDirector", dbpNS + "hasProducer",
		dbpNS + "name", dbpNS + "birthDate",
	} {
		if id := w.Dbp.LookupIRI(iri); id < 0 || w.Dbp.NumFactsOf(id) == 0 {
			t.Fatalf("flagship dbp relation %s missing", iri)
		}
	}
}

func TestGroundTruthShapes(t *testing.T) {
	w := Generate(TinySpec())
	gt := w.Truth
	// equivalences appear in both directions
	if !gt.HoldsDbpToYago(dbpNS+"birthPlace", yagoNS+"wasBornIn") {
		t.Fatal("birthPlace ⇒ wasBornIn missing from gold")
	}
	if !gt.HoldsYagoToDbp(yagoNS+"wasBornIn", dbpNS+"birthPlace") {
		t.Fatal("wasBornIn ⇒ birthPlace missing from gold")
	}
	// specializations are one-directional
	if !gt.HoldsDbpToYago(dbpNS+"composerOf", yagoNS+"created") {
		t.Fatal("composerOf ⇒ created missing from gold")
	}
	if gt.HoldsYagoToDbp(yagoNS+"created", dbpNS+"composerOf") {
		t.Fatal("created ⇒ composerOf must NOT be gold (strict subsumption)")
	}
	// confounders are not aligned to their targets
	if gt.HoldsDbpToYago(dbpNS+"hasProducer", yagoNS+"directedBy") {
		t.Fatal("hasProducer ⇒ directedBy must not be gold")
	}
	if !gt.HoldsDbpToYago(dbpNS+"hasProducer", yagoNS+"producedBy") {
		t.Fatal("hasProducer ⇒ producedBy missing from gold")
	}
	// no gold pair mentions a noise relation
	for _, p := range gt.DbpToYago {
		if strings.Contains(p.Body, "infobox") || strings.Contains(p.Head, "infobox") {
			t.Fatalf("noise relation in gold: %+v", p)
		}
	}
}

func TestConfounderCorrelation(t *testing.T) {
	w := Generate(TinySpec())
	// measure |director ∩ producer| / |producer| on the Dbp KB
	dir := w.Dbp.LookupIRI(dbpNS + "hasDirector")
	prod := w.Dbp.LookupIRI(dbpNS + "hasProducer")
	if dir < 0 || prod < 0 {
		t.Fatal("flagship confounder relations missing")
	}
	shared, total := 0, 0
	w.Dbp.EachFactOf(prod, func(s, o kb.TermID) bool {
		total++
		if w.Dbp.HasFact(s, dir, o) {
			shared++
		}
		return true
	})
	if total == 0 {
		t.Fatal("no producer facts")
	}
	ratio := float64(shared) / float64(total)
	// configured correlation is 0.72, diluted by per-KB coverage of the
	// director fact (≥0.60); anything clearly above the noise floor and
	// clearly below 1 demonstrates the confounder.
	if ratio < 0.30 || ratio > 0.95 {
		t.Fatalf("producer/director overlap = %f, outside (0.30,0.95)", ratio)
	}
}

func TestSameAsCoverage(t *testing.T) {
	spec := TinySpec()
	w := Generate(spec)
	totalEntities := spec.Persons + spec.Works + spec.Places + spec.Orgs
	got := float64(w.Links.Len()) / float64(totalEntities)
	if got < spec.SameAsCoverage-0.08 || got > spec.SameAsCoverage+0.08 {
		t.Fatalf("sameAs coverage = %f, want ≈ %f", got, spec.SameAsCoverage)
	}
	// links actually translate between namespaces
	for _, p := range w.Links.Pairs()[:5] {
		if !strings.HasPrefix(p.A, yagoNS) || !strings.HasPrefix(p.B, dbrNS) {
			t.Fatalf("link namespaces wrong: %+v", p)
		}
	}
}

func TestLiteralHeterogeneity(t *testing.T) {
	w := Generate(TinySpec())
	// YAGO labels are underscored plain literals
	lbl := w.Yago.LookupIRI(yagoNS + "hasPreferredName")
	found := false
	w.Yago.EachFactOf(lbl, func(s, o kb.TermID) bool {
		term := w.Yago.Term(o)
		if !term.IsLiteral() {
			t.Fatalf("yago label is not a literal: %v", term)
		}
		if strings.Contains(term.Value, "_") {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("no underscored yago label found")
	}
	// DBpedia birth dates are xsd:date; YAGO's are gYear
	bd := w.Dbp.LookupIRI(dbpNS + "birthDate")
	w.Dbp.EachFactOf(bd, func(s, o kb.TermID) bool {
		if dt := w.Dbp.Term(o).Datatype; dt != rdf.XSDDate {
			t.Fatalf("dbp birthDate datatype = %q", dt)
		}
		return false
	})
	yd := w.Yago.LookupIRI(yagoNS + "wasBornOnDate")
	w.Yago.EachFactOf(yd, func(s, o kb.TermID) bool {
		if dt := w.Yago.Term(o).Datatype; dt != rdf.XSDGYear {
			t.Fatalf("yago wasBornOnDate datatype = %q", dt)
		}
		return false
	})
}

func TestNamespacesSeparated(t *testing.T) {
	w := Generate(TinySpec())
	for _, p := range w.Yago.Relations() {
		iri := w.Yago.Term(p).Value
		if !strings.HasPrefix(iri, yagoNS) {
			t.Fatalf("yago KB contains foreign relation %s", iri)
		}
	}
	for _, p := range w.Dbp.Relations() {
		iri := w.Dbp.Term(p).Value
		if !strings.HasPrefix(iri, dbpNS) {
			t.Fatalf("dbp KB contains foreign relation %s", iri)
		}
	}
}

func TestNoiseRelationsAreDbpOnly(t *testing.T) {
	w := Generate(TinySpec())
	if w.Report.NoiseRelations == 0 {
		t.Fatal("no noise relations generated")
	}
	count := 0
	for _, p := range w.Dbp.Relations() {
		if strings.Contains(w.Dbp.Term(p).Value, "infobox") {
			count++
		}
	}
	if count != w.Report.NoiseRelations {
		t.Fatalf("noise relations: report=%d, kb=%d", w.Report.NoiseRelations, count)
	}
}
