package rewrite

import (
	"strings"
	"testing"

	"sofya/internal/core"
	"sofya/internal/ilp"
	"sofya/internal/sameas"
	"sofya/internal/sampling"
	"sofya/internal/sparql"
)

func testRewriter() *Rewriter {
	links := sameas.New()
	links.Add("http://y/alice", "http://d/alice") // A = K side
	links.Add("http://y/paris", "http://d/paris")
	rw := New(sampling.LinkView{Links: links, KIsA: true})
	rw.Add([]core.Alignment{
		{
			Rule:       ilp.Rule{Body: "http://d/birthPlace", Head: "http://y/wasBornIn"},
			Accepted:   true,
			Confidence: 0.95,
			Equivalent: true,
		},
		{
			Rule:       ilp.Rule{Body: "http://d/cityOfBirth", Head: "http://y/wasBornIn"},
			Accepted:   true,
			Confidence: 0.99, // higher confidence but not equivalent
		},
		{
			Rule:     ilp.Rule{Body: "http://d/rejected", Head: "http://y/wasBornIn"},
			Accepted: false,
		},
		{
			Rule:       ilp.Rule{Body: "http://d/knows", Head: "http://y/knows"},
			Accepted:   true,
			Confidence: 0.9,
		},
	})
	return rw
}

func TestMappingsOrderEquivalentFirst(t *testing.T) {
	rw := testRewriter()
	ms := rw.Mappings("http://y/wasBornIn")
	if len(ms) != 2 {
		t.Fatalf("mappings = %+v", ms)
	}
	if !ms[0].Equivalent || ms[0].Body != "http://d/birthPlace" {
		t.Fatalf("equivalent mapping should rank first: %+v", ms)
	}
	best, ok := rw.Best("http://y/wasBornIn")
	if !ok || best.Body != "http://d/birthPlace" {
		t.Fatalf("Best = %+v, %v", best, ok)
	}
	if _, ok := rw.Best("http://y/ghost"); ok {
		t.Fatal("Best for unknown relation")
	}
}

func TestRewriteQuery(t *testing.T) {
	rw := testRewriter()
	got, err := rw.RewriteString(
		`SELECT ?x WHERE { ?x <http://y/wasBornIn> <http://y/paris> . ?x <http://y/knows> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "<http://d/birthPlace>") {
		t.Fatalf("predicate not rewritten: %s", got)
	}
	if !strings.Contains(got, "<http://d/paris>") {
		t.Fatalf("entity constant not translated: %s", got)
	}
	if !strings.Contains(got, "<http://d/knows>") {
		t.Fatalf("second predicate not rewritten: %s", got)
	}
	// result must parse
	if _, err := sparql.Parse(got); err != nil {
		t.Fatalf("rewritten query does not parse: %v\n%s", err, got)
	}
}

func TestRewritePreservesFiltersAndModifiers(t *testing.T) {
	rw := testRewriter()
	got, err := rw.RewriteString(
		`SELECT DISTINCT ?x WHERE { ?x <http://y/knows> ?y . FILTER (?x != ?y) } ORDER BY ?x LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DISTINCT", "FILTER", "ORDER BY", "LIMIT 5"} {
		if !strings.Contains(got, want) {
			t.Fatalf("lost %q: %s", want, got)
		}
	}
}

func TestRewriteErrors(t *testing.T) {
	rw := testRewriter()
	// unmapped relation
	if _, err := rw.RewriteString(`SELECT ?x WHERE { ?x <http://y/unknownRel> ?y }`); err == nil {
		t.Fatal("want error for unmapped relation")
	}
	// untranslatable constant
	if _, err := rw.RewriteString(`SELECT ?x WHERE { <http://y/nolink> <http://y/knows> ?x }`); err == nil {
		t.Fatal("want error for unlinked entity")
	}
	// bad syntax
	if _, err := rw.RewriteString(`SELEC bad`); err == nil {
		t.Fatal("want parse error")
	}
}

func TestRewriteVariablePredicatePassesThrough(t *testing.T) {
	rw := testRewriter()
	got, err := rw.RewriteString(`SELECT ?p WHERE { <http://y/alice> ?p <http://y/paris> }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "?p") || !strings.Contains(got, "<http://d/alice>") {
		t.Fatalf("rewrite = %s", got)
	}
}

func TestRewriteNilLinksKeepsConstants(t *testing.T) {
	rw := New(nil)
	rw.Add([]core.Alignment{{
		Rule:     ilp.Rule{Body: "http://d/knows", Head: "http://y/knows"},
		Accepted: true, Confidence: 1,
	}})
	got, err := rw.RewriteString(`ASK { <http://y/alice> <http://y/knows> ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "<http://y/alice>") {
		t.Fatalf("constant should be unchanged: %s", got)
	}
	if !strings.HasPrefix(got, "ASK") {
		t.Fatalf("form lost: %s", got)
	}
}

func TestRewriteFilterExistsPatterns(t *testing.T) {
	rw := testRewriter()
	got, err := rw.RewriteString(
		`SELECT ?x WHERE { ?x <http://y/knows> ?y . FILTER NOT EXISTS { ?x <http://y/wasBornIn> ?z } }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "NOT EXISTS") || !strings.Contains(got, "<http://d/birthPlace>") {
		t.Fatalf("EXISTS pattern not rewritten: %s", got)
	}
}
