// Package rewrite turns discovered relation alignments into query
// rewritings — the "query-time" use case that motivates SOFYA: a query
// posed against KB K is rewritten to run against KB K' by substituting
// each relation with its aligned counterpart and translating constant
// entities through the sameAs links.
package rewrite

import (
	"fmt"
	"sort"

	"sofya/internal/core"
	"sofya/internal/sampling"
	"sofya/internal/sparql"
)

// Mapping is one usable relation substitution: the K-relation Head may
// be answered by the K'-relation Body.
type Mapping struct {
	Head, Body string
	Confidence float64
	// Equivalent marks double subsumptions; non-equivalent mappings are
	// sound for existential queries but may miss answers.
	Equivalent bool
}

// Rewriter accumulates alignments and rewrites queries.
type Rewriter struct {
	byHead map[string][]Mapping
	links  sampling.Translator
}

// New builds a rewriter; links translates entity constants from K into
// K' (pass nil to keep constants unchanged).
func New(links sampling.Translator) *Rewriter {
	return &Rewriter{byHead: make(map[string][]Mapping), links: links}
}

// Add registers the accepted alignments (rejected ones are ignored).
func (rw *Rewriter) Add(alignments []core.Alignment) {
	for _, al := range alignments {
		if !al.Accepted {
			continue
		}
		rw.byHead[al.Rule.Head] = append(rw.byHead[al.Rule.Head], Mapping{
			Head:       al.Rule.Head,
			Body:       al.Rule.Body,
			Confidence: al.Confidence,
			Equivalent: al.Equivalent,
		})
	}
	for head := range rw.byHead {
		ms := rw.byHead[head]
		sort.SliceStable(ms, func(i, j int) bool {
			if ms[i].Equivalent != ms[j].Equivalent {
				return ms[i].Equivalent
			}
			if ms[i].Confidence != ms[j].Confidence {
				return ms[i].Confidence > ms[j].Confidence
			}
			return ms[i].Body < ms[j].Body
		})
		rw.byHead[head] = ms
	}
}

// Mappings returns the substitutions for a K-relation, best first.
func (rw *Rewriter) Mappings(head string) []Mapping {
	return rw.byHead[head]
}

// Best returns the preferred substitution for a K-relation.
func (rw *Rewriter) Best(head string) (Mapping, bool) {
	ms := rw.byHead[head]
	if len(ms) == 0 {
		return Mapping{}, false
	}
	return ms[0], true
}

// Rewrite rewrites a query posed against K into one for K'. Every
// concrete predicate must have a mapping; the first missing relation
// aborts with an error. Concrete entity IRIs in subject/object position
// are translated through the sameAs links; untranslatable constants
// abort (their triple could never match in K').
func (rw *Rewriter) Rewrite(q *sparql.Query) (*sparql.Query, error) {
	var firstErr error
	out := q.MapPatterns(func(tp sparql.TriplePattern) sparql.TriplePattern {
		if firstErr != nil {
			return tp
		}
		if !tp.P.IsVar {
			m, ok := rw.Best(tp.P.Term.Value)
			if !ok {
				firstErr = fmt.Errorf("rewrite: no alignment for relation <%s>", tp.P.Term.Value)
				return tp
			}
			tp.P = sparql.Concrete(tp.P.Term)
			tp.P.Term.Value = m.Body
		}
		tp.S = rw.translateTerm(tp.S, &firstErr)
		tp.O = rw.translateTerm(tp.O, &firstErr)
		return tp
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RewriteString parses, rewrites, and serializes a query.
func (rw *Rewriter) RewriteString(query string) (string, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return "", err
	}
	out, err := rw.Rewrite(q)
	if err != nil {
		return "", err
	}
	return out.String(), nil
}

func (rw *Rewriter) translateTerm(pt sparql.PatternTerm, firstErr *error) sparql.PatternTerm {
	if *firstErr != nil || pt.IsVar || !pt.Term.IsIRI() || rw.links == nil {
		return pt
	}
	t, ok := rw.links.FromK(pt.Term.Value)
	if !ok {
		*firstErr = fmt.Errorf("rewrite: no sameAs link for entity <%s>", pt.Term.Value)
		return pt
	}
	pt.Term.Value = t
	return pt
}
