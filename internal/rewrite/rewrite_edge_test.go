package rewrite

import (
	"strings"
	"testing"

	"sofya/internal/core"
	"sofya/internal/ilp"
	"sofya/internal/sparql"
)

// TestRewriteTable drives the rewriter through the edge cases one at a
// time: every case rewrites one query against the shared fixture and
// checks substrings of (or errors from) the canonical output.
func TestRewriteTable(t *testing.T) {
	cases := []struct {
		name       string
		query      string
		want       []string // substrings of the rewritten canonical text
		reject     []string // substrings that must NOT appear
		wantErrSub string   // non-empty: expect an error containing this
	}{
		{
			name:  "predicate and both entity positions translated",
			query: `SELECT ?p WHERE { <http://y/alice> <http://y/knows> <http://y/paris> }`,
			want:  []string{"<http://d/alice>", "<http://d/knows>", "<http://d/paris>"},
		},
		{
			name:   "literal objects pass through untranslated",
			query:  `SELECT ?x WHERE { ?x <http://y/knows> "Alice"@en }`,
			want:   []string{`"Alice"@en`, "<http://d/knows>"},
			reject: []string{"<http://y/knows>"},
		},
		{
			name:  "equivalent mapping outranks higher-confidence subsumption",
			query: `SELECT ?x WHERE { ?x <http://y/wasBornIn> ?y }`,
			want:  []string{"<http://d/birthPlace>"},
			// cityOfBirth has higher confidence but is not equivalent
			reject: []string{"<http://d/cityOfBirth>"},
		},
		{
			name:  "EXISTS nested inside a boolean expression is rewritten",
			query: `SELECT ?x WHERE { ?x <http://y/knows> ?y . FILTER (EXISTS { ?x <http://y/wasBornIn> ?z } || ?x != ?y) }`,
			want:  []string{"<http://d/birthPlace>"},
			// the nested group's original predicate must be gone
			reject: []string{"<http://y/wasBornIn>"},
		},
		{
			name:  "NOT EXISTS nested under negation is rewritten",
			query: `SELECT ?x WHERE { ?x <http://y/knows> ?y . FILTER (!(NOT EXISTS { ?x <http://y/knows> <http://y/paris> })) }`,
			want:  []string{"<http://d/knows>", "<http://d/paris>"},
		},
		{
			name:  "ORDER BY, OFFSET and DISTINCT survive",
			query: `SELECT DISTINCT ?x WHERE { ?x <http://y/knows> ?y } ORDER BY DESC(?x) LIMIT 3 OFFSET 2`,
			want:  []string{"DISTINCT", "DESC(?x)", "LIMIT 3", "OFFSET 2"},
		},
		{
			name:       "unmapped relation inside EXISTS aborts",
			query:      `SELECT ?x WHERE { ?x <http://y/knows> ?y . FILTER EXISTS { ?x <http://y/unmapped> ?z } }`,
			wantErrSub: "no alignment",
		},
		{
			name:       "unlinked entity in object position aborts",
			query:      `SELECT ?x WHERE { ?x <http://y/knows> <http://y/atlantis> }`,
			wantErrSub: "no sameAs link",
		},
		{
			name:       "unlinked entity inside nested EXISTS aborts",
			query:      `SELECT ?x WHERE { ?x <http://y/knows> ?y . FILTER (?x != ?y && EXISTS { ?x <http://y/knows> <http://y/atlantis> }) }`,
			wantErrSub: "no sameAs link",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rw := testRewriter()
			got, err := rw.RewriteString(tc.query)
			if tc.wantErrSub != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErrSub) {
					t.Fatalf("error = %v, want containing %q", err, tc.wantErrSub)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Fatalf("missing %q in:\n%s", w, got)
				}
			}
			for _, r := range tc.reject {
				if strings.Contains(got, r) {
					t.Fatalf("unexpected %q in:\n%s", r, got)
				}
			}
			if _, err := sparql.Parse(got); err != nil {
				t.Fatalf("rewritten query does not parse: %v\n%s", err, got)
			}
		})
	}
}

// TestRewriteAddIsIncremental: Add may be called repeatedly; rankings
// re-sort across calls and rejected alignments never surface.
func TestRewriteAddIsIncremental(t *testing.T) {
	rw := New(nil)
	rw.Add([]core.Alignment{{
		Rule: ilp.Rule{Body: "http://d/b1", Head: "http://y/h"}, Accepted: true, Confidence: 0.6,
	}})
	rw.Add([]core.Alignment{
		{Rule: ilp.Rule{Body: "http://d/b2", Head: "http://y/h"}, Accepted: true, Confidence: 0.8},
		{Rule: ilp.Rule{Body: "http://d/b3", Head: "http://y/h"}, Accepted: false, Confidence: 0.99},
	})
	ms := rw.Mappings("http://y/h")
	if len(ms) != 2 {
		t.Fatalf("mappings = %+v", ms)
	}
	if ms[0].Body != "http://d/b2" || ms[1].Body != "http://d/b1" {
		t.Fatalf("ranking wrong after incremental Add: %+v", ms)
	}
}

// TestRewriteConfidenceTieBreaksOnBody: equal-confidence mappings order
// deterministically by body IRI.
func TestRewriteConfidenceTieBreaksOnBody(t *testing.T) {
	rw := New(nil)
	rw.Add([]core.Alignment{
		{Rule: ilp.Rule{Body: "http://d/zeta", Head: "http://y/h"}, Accepted: true, Confidence: 0.7},
		{Rule: ilp.Rule{Body: "http://d/alpha", Head: "http://y/h"}, Accepted: true, Confidence: 0.7},
	})
	ms := rw.Mappings("http://y/h")
	if ms[0].Body != "http://d/alpha" || ms[1].Body != "http://d/zeta" {
		t.Fatalf("tie-break wrong: %+v", ms)
	}
}
