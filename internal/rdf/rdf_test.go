package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Fatalf("IRI predicates wrong: %+v", iri)
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() {
		t.Fatalf("literal predicate wrong: %+v", lit)
	}
	lang := NewLangLiteral("bonjour", "fr")
	if lang.Lang != "fr" || lang.Datatype != "" {
		t.Fatalf("lang literal wrong: %+v", lang)
	}
	typed := NewTypedLiteral("42", XSDInteger)
	if typed.Datatype != XSDInteger {
		t.Fatalf("typed literal wrong: %+v", typed)
	}
	b := NewBlank("b0")
	if !b.IsBlank() {
		t.Fatalf("blank predicate wrong: %+v", b)
	}
	if (Term{}).IsZero() != true {
		t.Fatal("zero term not reported as zero")
	}
	if iri.IsZero() {
		t.Fatal("non-zero term reported as zero")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("3", XSDInteger), `"3"^^<` + XSDInteger + `>`},
		// xsd:string datatype is canonicalized away in output.
		{NewTypedLiteral("s", XSDString), `"s"`},
		{NewBlank("n1"), "_:n1"},
		{NewLiteral("a\"b\\c\nd\te"), `"a\"b\\c\nd\te"`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTermCompare(t *testing.T) {
	a := NewIRI("http://x/a")
	b := NewIRI("http://x/b")
	l := NewLiteral("a")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Fatal("IRI ordering wrong")
	}
	if a.Compare(l) >= 0 {
		t.Fatal("IRIs must order before literals")
	}
	if NewLiteral("x").Compare(NewLangLiteral("x", "en")) == 0 {
		t.Fatal("lang tag must participate in comparison")
	}
}

func TestTripleValidAndString(t *testing.T) {
	tr := NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("o"))
	if !tr.Valid() {
		t.Fatal("valid triple reported invalid")
	}
	if got, want := tr.String(), `<http://x/s> <http://x/p> "o" .`; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	bad := []Triple{
		{}, // all zero
		{S: NewLiteral("s"), P: NewIRI("http://p"), O: NewIRI("http://o")}, // literal subject
		{S: NewIRI("http://s"), P: NewLiteral("p"), O: NewIRI("http://o")}, // literal predicate
		{S: NewIRI("http://s"), P: NewBlank("b"), O: NewIRI("http://o")},   // blank predicate
	}
	for i, b := range bad {
		if b.Valid() {
			t.Errorf("case %d: invalid triple reported valid: %v", i, b)
		}
	}
}

func TestParseTripleLine(t *testing.T) {
	cases := []struct {
		in   string
		want Triple
	}{
		{
			`<http://x/s> <http://x/p> <http://x/o> .`,
			NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")),
		},
		{
			`<http://x/s> <http://x/p> "lit" .`,
			NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("lit")),
		},
		{
			`<http://x/s> <http://x/p> "lit"@en .`,
			NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLangLiteral("lit", "en")),
		},
		{
			`<http://x/s> <http://x/p> "12"^^<` + XSDInteger + `> .`,
			NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewTypedLiteral("12", XSDInteger)),
		},
		{
			`_:b0 <http://x/p> _:b1 .`,
			NewTriple(NewBlank("b0"), NewIRI("http://x/p"), NewBlank("b1")),
		},
		{
			// no trailing dot is tolerated
			`<http://x/s> <http://x/p> "x"`,
			NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("x")),
		},
		{
			`<http://x/s> <http://x/p> "a\"b\\c\nd" .`,
			NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("a\"b\\c\nd")),
		},
		{
			`<http://x/s> <http://x/p> "café" .`,
			NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("café")),
		},
	}
	for _, c := range cases {
		got, err := ParseTripleLine(c.in)
		if err != nil {
			t.Errorf("ParseTripleLine(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTripleLine(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTripleLineErrors(t *testing.T) {
	bad := []string{
		``,
		`<http://x/s>`,
		`<http://x/s> <http://x/p>`,
		`<http://x/s> <http://x/p> <http://x/o> . extra`,
		`<http://x/s <http://x/p> <http://x/o> .`,
		`"s" <http://x/p> <http://x/o> .`,
		`<http://x/s> <http://x/p> "unterminated .`,
		`<http://x/s> <http://x/p> "bad\q" .`,
		`<http://x/s> <http://x/p> "x"^^bad .`,
		`<http://x/s> <http://x/p> "x"@ .`,
		`<http://x/s> <http://x/p> "x\u12" .`,
	}
	for _, in := range bad {
		if _, err := ParseTripleLine(in); err == nil {
			t.Errorf("ParseTripleLine(%q): want error, got none", in)
		}
	}
}

func TestReadNTriples(t *testing.T) {
	in := `# comment
<http://x/a> <http://x/p> <http://x/b> .

<http://x/b> <http://x/q> "v"@en .
`
	ts, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	if ts[1].O != NewLangLiteral("v", "en") {
		t.Fatalf("second triple object = %v", ts[1].O)
	}
}

func TestReadNTriplesReportsLine(t *testing.T) {
	in := "<http://x/a> <http://x/p> <http://x/b> .\nbroken line\n"
	_, err := ReadNTriples(strings.NewReader(in))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T (%v)", err, err)
	}
	if pe.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.Line)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ts := []Triple{
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("a\nb\t\"c\"")),
		NewTriple(NewBlank("z"), NewIRI("http://x/p"), NewTypedLiteral("1999", XSDGYear)),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/q"), NewLangLiteral("être", "fr")),
	}
	var sb strings.Builder
	if err := WriteNTriples(&sb, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip length %d != %d", len(back), len(ts))
	}
	for i := range ts {
		if back[i] != ts[i] {
			t.Errorf("round trip[%d] = %v, want %v", i, back[i], ts[i])
		}
	}
}

// Property: for literals built from printable strings, String() followed by
// ParseTerm is the identity.
func TestQuickLiteralRoundTrip(t *testing.T) {
	f := func(lex string, langSel uint8) bool {
		var term Term
		switch langSel % 3 {
		case 0:
			term = NewLiteral(lex)
		case 1:
			term = NewLangLiteral(lex, "en")
		default:
			term = NewTypedLiteral(lex, XSDString)
		}
		got, err := ParseTerm(term.String())
		if err != nil {
			return false
		}
		// xsd:string typed literals canonicalize to plain literals.
		want := term
		if want.Datatype == XSDString {
			want.Datatype = ""
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: IRIs without '>' round-trip.
func TestQuickIRIRoundTrip(t *testing.T) {
	f := func(suffix string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == '>' || r == ' ' || r == '\t' || r == '\n' || r == '\r' {
				return -1
			}
			return r
		}, suffix)
		iri := NewIRI("http://example.org/" + clean)
		got, err := ParseTerm(iri.String())
		return err == nil && got == iri
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixMapExpandCompact(t *testing.T) {
	pm := StandardPrefixes()
	iri, err := pm.Expand("yago:wasBornIn")
	if err != nil {
		t.Fatal(err)
	}
	if iri != "http://yago-knowledge.org/resource/wasBornIn" {
		t.Fatalf("Expand = %q", iri)
	}
	if got := pm.Compact(iri); got != "yago:wasBornIn" {
		t.Fatalf("Compact = %q", got)
	}
	// absolute IRIs pass through Expand
	if got, err := pm.Expand("http://x/abs"); err != nil || got != "http://x/abs" {
		t.Fatalf("Expand(abs) = %q, %v", got, err)
	}
	// unknown prefixes error
	if _, err := pm.Expand("nope:x"); err == nil {
		t.Fatal("want error for unknown prefix")
	}
	if _, err := pm.Expand("noColon"); err == nil {
		t.Fatal("want error for non-qname")
	}
	// unknown IRIs compact to themselves
	if got := pm.Compact("urn:other"); got != "urn:other" {
		t.Fatalf("Compact(unknown) = %q", got)
	}
}

func TestPrefixMapLongestBaseWins(t *testing.T) {
	pm := NewPrefixMap()
	pm.Add("a", "http://x/")
	pm.Add("b", "http://x/deep/")
	if got := pm.Compact("http://x/deep/v"); got != "b:v" {
		t.Fatalf("Compact = %q, want b:v", got)
	}
	// rebinding a prefix replaces its base
	pm.Add("a", "http://y/")
	if got := pm.Compact("http://y/z"); got != "a:z" {
		t.Fatalf("Compact after rebind = %q", got)
	}
}

func TestMustExpandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustExpand should panic on unknown prefix")
		}
	}()
	NewPrefixMap().MustExpand("ghost:x")
}
