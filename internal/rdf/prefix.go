package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maps namespace prefixes (without the colon) to base IRIs.
// It expands compact names like "yago:wasBornIn" into full IRIs and
// compacts full IRIs back to the shortest available qualified name.
type PrefixMap struct {
	byPrefix map[string]string
	// sorted by decreasing base-IRI length so the longest base wins
	// when compacting.
	bases []prefixEntry
}

type prefixEntry struct {
	prefix, base string
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{byPrefix: make(map[string]string)}
}

// StandardPrefixes returns a prefix map preloaded with the namespaces
// used across this repository: rdf, rdfs, owl, xsd, plus the synthetic
// yago and dbp namespaces emitted by internal/synth.
func StandardPrefixes() *PrefixMap {
	pm := NewPrefixMap()
	pm.Add("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#")
	pm.Add("rdfs", "http://www.w3.org/2000/01/rdf-schema#")
	pm.Add("owl", "http://www.w3.org/2002/07/owl#")
	pm.Add("xsd", "http://www.w3.org/2001/XMLSchema#")
	pm.Add("yago", "http://yago-knowledge.org/resource/")
	pm.Add("dbp", "http://dbpedia.org/property/")
	pm.Add("dbr", "http://dbpedia.org/resource/")
	return pm
}

// Add registers (or replaces) a prefix binding.
func (pm *PrefixMap) Add(prefix, base string) {
	if _, ok := pm.byPrefix[prefix]; !ok {
		pm.bases = append(pm.bases, prefixEntry{prefix, base})
	} else {
		for i := range pm.bases {
			if pm.bases[i].prefix == prefix {
				pm.bases[i].base = base
				break
			}
		}
	}
	pm.byPrefix[prefix] = base
	sort.SliceStable(pm.bases, func(i, j int) bool {
		return len(pm.bases[i].base) > len(pm.bases[j].base)
	})
}

// Base returns the base IRI bound to prefix, if any.
func (pm *PrefixMap) Base(prefix string) (string, bool) {
	b, ok := pm.byPrefix[prefix]
	return b, ok
}

// Expand turns a compact name "prefix:local" into a full IRI. Inputs that
// already look like absolute IRIs (contain "://") are returned unchanged.
func (pm *PrefixMap) Expand(qname string) (string, error) {
	if strings.Contains(qname, "://") {
		return qname, nil
	}
	i := strings.IndexByte(qname, ':')
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is neither a qualified name nor an absolute IRI", qname)
	}
	prefix, local := qname[:i], qname[i+1:]
	base, ok := pm.byPrefix[prefix]
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q in %q", prefix, qname)
	}
	return base + local, nil
}

// MustExpand is Expand but panics on error; for tests and literals in code.
func (pm *PrefixMap) MustExpand(qname string) string {
	iri, err := pm.Expand(qname)
	if err != nil {
		panic(err)
	}
	return iri
}

// Compact shortens a full IRI to "prefix:local" using the longest
// matching base. If no base matches, the IRI is returned unchanged.
func (pm *PrefixMap) Compact(iri string) string {
	for _, e := range pm.bases {
		if strings.HasPrefix(iri, e.base) {
			return e.prefix + ":" + iri[len(e.base):]
		}
	}
	return iri
}

// Prefixes returns the registered prefixes in deterministic order.
func (pm *PrefixMap) Prefixes() []string {
	out := make([]string, 0, len(pm.byPrefix))
	for p := range pm.byPrefix {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
