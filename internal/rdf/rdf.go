// Package rdf implements the RDF data model used throughout SOFYA:
// terms (IRIs, literals, blank nodes), triples, prefix maps, and
// N-Triples / tab-separated parsing and serialization.
//
// The model is deliberately minimal: it covers exactly the subset of RDF
// 1.1 needed to represent entity-centric knowledge bases such as YAGO and
// DBpedia — IRIs, plain literals, language-tagged literals and typed
// literals — without the full generality of RDF datasets, graphs, or
// reification.
package rdf

import (
	"fmt"
	"strings"
)

// Kind discriminates the three syntactic categories of RDF terms.
type Kind uint8

const (
	// IRI is an absolute IRI reference such as <http://yago/wasBornIn>.
	IRI Kind = iota
	// Literal is an RDF literal: a lexical form plus optional datatype
	// IRI or language tag.
	Literal
	// Blank is a blank node with a document-scoped label.
	Blank
)

// String returns the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Well-known datatype and vocabulary IRIs.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate     = "http://www.w3.org/2001/XMLSchema#date"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDGYear    = "http://www.w3.org/2001/XMLSchema#gYear"

	RDFType   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSLabel = "http://www.w3.org/2000/01/rdf-schema#label"
	OWLSameAs = "http://www.w3.org/2002/07/owl#sameAs"
)

// Term is an RDF term. The zero value is the empty IRI, which is not a
// valid term; use the constructors.
//
// Terms are small value types and are compared with ==. Two terms are
// equal iff their kind, value, datatype and language tag are all equal.
type Term struct {
	// Kind is the syntactic category.
	Kind Kind
	// Value holds the IRI string for IRI terms, the lexical form for
	// literals, and the label (without the "_:" prefix) for blank nodes.
	Value string
	// Datatype is the datatype IRI for typed literals; empty for plain
	// literals, IRIs and blank nodes. A literal with a language tag has
	// an empty datatype.
	Datatype string
	// Lang is the language tag for language-tagged literals ("en",
	// "fr", ...); empty otherwise.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain (string) literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a typed literal term.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank-node term with the given label (no "_:").
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal of any flavor.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether the term is the zero value (invalid).
func (t Term) IsZero() bool { return t == Term{} }

// String renders the term in N-Triples syntax. IRIs render as <iri>,
// literals as quoted strings with optional @lang or ^^<dt>, blank nodes
// as _:label.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var sb strings.Builder
		sb.WriteByte('"')
		escapeLiteral(&sb, t.Value)
		sb.WriteByte('"')
		if t.Lang != "" {
			sb.WriteByte('@')
			sb.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			sb.WriteString("^^<")
			sb.WriteString(t.Datatype)
			sb.WriteByte('>')
		}
		return sb.String()
	default:
		return fmt.Sprintf("<invalid term kind %d>", t.Kind)
	}
}

// Compare orders terms: IRIs < Literals < Blanks, then by value,
// datatype, and language. It returns -1, 0 or +1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}

func escapeLiteral(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
}

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as an N-Triples line (with trailing " .").
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Valid reports whether the triple is structurally valid per RDF: the
// subject is an IRI or blank node, the predicate an IRI, and the object
// any non-zero term.
func (t Triple) Valid() bool {
	if t.S.IsZero() || t.P.IsZero() || t.O.IsZero() {
		return false
	}
	if t.S.IsLiteral() {
		return false
	}
	return t.P.IsIRI()
}
