package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError reports a syntax error while reading N-Triples input.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // description of the problem
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: line %d: %s", e.Line, e.Msg)
}

// ReadNTriples parses N-Triples from r and returns the triples in input
// order. Blank lines and lines starting with '#' are skipped. The parser
// accepts the canonical N-Triples grammar: IRIs in angle brackets,
// literals in double quotes with \-escapes and optional @lang or
// ^^<datatype>, blank nodes as _:label.
func ReadNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	err := ScanNTriples(r, func(t Triple) error {
		out = append(out, t)
		return nil
	})
	return out, err
}

// ScanNTriples streams triples from r to fn, stopping at the first error
// (from the input or from fn).
func ScanNTriples(r io.Reader, fn func(Triple) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			if pe, ok := err.(*ParseError); ok {
				pe.Line = lineNo
				return pe
			}
			return &ParseError{Line: lineNo, Msg: err.Error()}
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ParseTripleLine parses a single N-Triples statement (with or without
// the trailing dot).
func ParseTripleLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	p.skipWS()
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	pred, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if p.pos < len(p.in) {
		if p.in[p.pos] == '.' {
			p.pos++
			p.skipWS()
		}
		if p.pos < len(p.in) {
			return Triple{}, &ParseError{Msg: fmt.Sprintf("trailing garbage %q", p.in[p.pos:])}
		}
	}
	tr := Triple{S: s, P: pred, O: o}
	if !tr.Valid() {
		return Triple{}, &ParseError{Msg: fmt.Sprintf("structurally invalid triple %s", tr)}
	}
	return tr, nil
}

// ParseTerm parses a single term in N-Triples syntax.
func ParseTerm(s string) (Term, error) {
	p := &ntParser{in: strings.TrimSpace(s)}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	p.skipWS()
	if p.pos < len(p.in) {
		return Term{}, &ParseError{Msg: fmt.Sprintf("trailing garbage %q", p.in[p.pos:])}
	}
	return t, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) skipWS() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	if p.pos >= len(p.in) {
		return Term{}, &ParseError{Msg: "unexpected end of statement"}
	}
	switch p.in[p.pos] {
	case '<':
		return p.iri()
	case '"':
		return p.literal()
	case '_':
		return p.blank()
	default:
		return Term{}, &ParseError{Msg: fmt.Sprintf("unexpected character %q", p.in[p.pos])}
	}
}

func (p *ntParser) iri() (Term, error) {
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return Term{}, &ParseError{Msg: "unterminated IRI"}
	}
	iri := p.in[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if iri == "" {
		return Term{}, &ParseError{Msg: "empty IRI"}
	}
	return NewIRI(iri), nil
}

func (p *ntParser) blank() (Term, error) {
	if !strings.HasPrefix(p.in[p.pos:], "_:") {
		return Term{}, &ParseError{Msg: "malformed blank node"}
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.in) && !isTermDelim(p.in[p.pos]) {
		p.pos++
	}
	label := p.in[start:p.pos]
	if label == "" {
		return Term{}, &ParseError{Msg: "empty blank node label"}
	}
	return NewBlank(label), nil
}

func isTermDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '.'
}

func (p *ntParser) literal() (Term, error) {
	// opening quote
	p.pos++
	var sb strings.Builder
	for {
		if p.pos >= len(p.in) {
			return Term{}, &ParseError{Msg: "unterminated literal"}
		}
		c := p.in[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			if p.pos+1 >= len(p.in) {
				return Term{}, &ParseError{Msg: "dangling escape"}
			}
			esc := p.in[p.pos+1]
			p.pos += 2
			switch esc {
			case 't':
				sb.WriteByte('\t')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				if p.pos+n > len(p.in) {
					return Term{}, &ParseError{Msg: "truncated unicode escape"}
				}
				code, err := strconv.ParseUint(p.in[p.pos:p.pos+n], 16, 32)
				if err != nil {
					return Term{}, &ParseError{Msg: "bad unicode escape: " + err.Error()}
				}
				if !utf8.ValidRune(rune(code)) {
					return Term{}, &ParseError{Msg: "escape is not a valid rune"}
				}
				sb.WriteRune(rune(code))
				p.pos += n
			default:
				return Term{}, &ParseError{Msg: fmt.Sprintf("unknown escape \\%c", esc)}
			}
			continue
		}
		sb.WriteByte(c)
		p.pos++
	}
	lex := sb.String()
	// optional @lang or ^^<datatype>
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && !isTermDelim(p.in[p.pos]) {
			p.pos++
		}
		lang := p.in[start:p.pos]
		if lang == "" {
			return Term{}, &ParseError{Msg: "empty language tag"}
		}
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.in) || p.in[p.pos] != '<' {
			return Term{}, &ParseError{Msg: "datatype must be an IRI"}
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

// WriteNTriples serializes triples to w, one statement per line.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
