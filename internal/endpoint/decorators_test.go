package endpoint

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sofya/internal/sparql"
)

// gatedEndpoint wraps a Local, counting the calls that reach it and
// optionally holding them on a gate so a test can pile up concurrent
// callers deterministically.
type gatedEndpoint struct {
	*Local
	selects atomic.Int64
	asks    atomic.Int64
	gate    chan struct{} // nil = open
}

func (g *gatedEndpoint) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	g.selects.Add(1)
	if g.gate != nil {
		<-g.gate
	}
	return g.Local.SelectCtx(ctx, query)
}

func (g *gatedEndpoint) AskCtx(ctx context.Context, query string) (bool, error) {
	g.asks.Add(1)
	if g.gate != nil {
		<-g.gate
	}
	return g.Local.AskCtx(ctx, query)
}

func (g *gatedEndpoint) Select(query string) (*sparql.Result, error) {
	return g.SelectCtx(context.Background(), query)
}

func (g *gatedEndpoint) Ask(query string) (bool, error) {
	return g.AskCtx(context.Background(), query)
}

// Prepare routes prepared executions through the gated text path (not
// the embedded Local's fast path) so tests count and block them like
// any other probe.
func (g *gatedEndpoint) Prepare(template string, params ...string) (PreparedQuery, error) {
	return NewTextPrepared(g, template, params...)
}

const (
	selP  = `SELECT ?x ?y WHERE { ?x <http://x/p> ?y }`
	selPX = `SELECT ?y WHERE { <http://x/a> <http://x/p> ?y }`
	askAB = `ASK { <http://x/a> <http://x/p> <http://x/b> }`
)

func TestCachingMemoizesSelectAndAsk(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1)}
	c := NewCaching(inner, 0)
	if c.Name() != "test" {
		t.Fatalf("name = %q", c.Name())
	}

	first, err := c.Select(selP)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Select(selP)
	if err != nil {
		t.Fatal(err)
	}
	if inner.selects.Load() != 1 {
		t.Fatalf("inner selects = %d, want 1", inner.selects.Load())
	}
	if len(first.Rows) != len(second.Rows) {
		t.Fatal("cached result differs")
	}

	for i := 0; i < 3; i++ {
		ok, err := c.Ask(askAB)
		if err != nil || !ok {
			t.Fatalf("ask = %v, %v", ok, err)
		}
	}
	if inner.asks.Load() != 1 {
		t.Fatalf("inner asks = %d, want 1", inner.asks.Load())
	}

	cs := c.CacheStats()
	if cs.Hits != 3 || cs.Misses != 2 {
		t.Fatalf("cache stats = %+v", cs)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// the delegated endpoint stats still see only the real traffic
	if c.Stats().Queries != 2 {
		t.Fatalf("delegated stats = %+v", c.Stats())
	}

	c.Purge()
	if c.Len() != 0 {
		t.Fatal("Purge left entries")
	}
	if _, err := c.Select(selP); err != nil {
		t.Fatal(err)
	}
	if inner.selects.Load() != 2 {
		t.Fatal("purged entry not recomputed")
	}
}

func TestCachingLRUEviction(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1)}
	c := NewCaching(inner, 2)

	queries := []string{selP, selPX, askAB}
	if _, err := c.Select(queries[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Select(queries[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ask(queries[2]); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want LRU bound 2", c.Len())
	}
	if c.CacheStats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.CacheStats().Evictions)
	}
	// queries[0] was the least recently used → re-fetched
	before := inner.selects.Load()
	if _, err := c.Select(queries[0]); err != nil {
		t.Fatal(err)
	}
	if inner.selects.Load() != before+1 {
		t.Fatal("evicted entry served from cache")
	}
}

func TestCachingDoesNotCacheErrors(t *testing.T) {
	local := NewLocalRestricted(testKB(), 1, Quota{MaxQueries: 1})
	c := NewCaching(local, 0)
	if _, err := c.Select(selP); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Select(selPX); err == nil {
		t.Fatal("want quota error")
	}
	// the failed query must not be memoized: lift the quota and retry
	local.SetQuota(Quota{})
	if _, err := c.Select(selPX); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
}

func TestCachingConcurrent(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1)}
	c := NewCaching(inner, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				q := fmt.Sprintf(`SELECT ?y WHERE { <http://x/a> <http://x/p%d> ?y }`, j%12)
				if _, err := c.Select(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	cs := c.CacheStats()
	if cs.Hits+cs.Misses != 8*40 {
		t.Fatalf("stats lost lookups: %+v", cs)
	}
	if c.Len() > 8 {
		t.Fatalf("Len = %d exceeds bound", c.Len())
	}
}

func TestCoalescingSharesInFlightQueries(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1), gate: make(chan struct{})}
	c := NewCoalescing(inner)
	if c.Name() != "test" {
		t.Fatalf("name = %q", c.Name())
	}

	const n = 10
	var wg sync.WaitGroup
	rows := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Select(selP)
			if err != nil {
				t.Error(err)
				return
			}
			rows[i] = len(res.Rows)
		}(i)
	}
	// wait until the leader holds the gate and every follower has
	// joined its flight, then release
	for inner.selects.Load() == 0 || c.core.sel.Waiting(c.textKey(selP)) < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()

	if got := inner.selects.Load(); got != 1 {
		t.Fatalf("inner selects = %d, want 1 (coalesced)", got)
	}
	if c.Coalesced() != n-1 {
		t.Fatalf("coalesced = %d, want %d", c.Coalesced(), n-1)
	}
	for i, r := range rows {
		if r != 3 {
			t.Fatalf("caller %d rows = %d", i, r)
		}
	}
	// after completion the flight is forgotten: next call probes again
	if _, err := c.Select(selP); err != nil {
		t.Fatal(err)
	}
	if inner.selects.Load() != 2 {
		t.Fatal("coalescer memoized a completed query")
	}
}

// One caller's cancellation must not poison the coalesced probe: the
// shared inner call is detached from individual caller contexts.
func TestCoalescingLeaderCancellationDoesNotPoisonWaiters(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1), gate: make(chan struct{})}
	c := NewCoalescing(inner)

	ctx, cancel := context.WithCancel(context.Background())
	initiatorErr := make(chan error, 1)
	go func() {
		_, err := c.SelectCtx(ctx, selP)
		initiatorErr <- err
	}()
	for inner.selects.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	followerRows := make(chan int, 1)
	followerErr := make(chan error, 1)
	go func() {
		res, err := c.Select(selP)
		if err != nil {
			followerErr <- err
			return
		}
		followerRows <- len(res.Rows)
	}()
	for c.core.sel.Waiting(c.textKey(selP)) < 1 {
		time.Sleep(time.Millisecond)
	}

	cancel()
	if err := <-initiatorErr; err != context.Canceled {
		t.Fatalf("canceled initiator err = %v", err)
	}
	close(inner.gate)
	select {
	case rows := <-followerRows:
		if rows != 3 {
			t.Fatalf("follower rows = %d", rows)
		}
	case err := <-followerErr:
		t.Fatalf("follower poisoned by initiator's cancellation: %v", err)
	case <-time.After(time.Second):
		t.Fatal("follower hung")
	}
	if inner.selects.Load() != 1 {
		t.Fatalf("inner selects = %d, want 1", inner.selects.Load())
	}
}

func TestCoalescingAsk(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1)}
	c := NewCoalescing(inner)
	ok, err := c.Ask(askAB)
	if err != nil || !ok {
		t.Fatalf("ask = %v, %v", ok, err)
	}
	if c.Stats().Queries != 1 {
		t.Fatalf("delegated stats = %+v", c.Stats())
	}
}

func TestStackedDecoratorsExactlyOnceTraffic(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1)}
	ep := NewCoalescing(NewCaching(inner, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := ep.Select(selP); err != nil {
					t.Error(err)
					return
				}
				if _, err := ep.Select(selPX); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// 2 distinct queries → at most 2 probes (coalescing may even merge
	// the initial races down to exactly one per query)
	if got := inner.selects.Load(); got > 2 {
		t.Fatalf("inner selects = %d, want ≤ 2", got)
	}
}

func TestLocalSelectCtxCancellation(t *testing.T) {
	ep := NewLocalRestricted(testKB(), 1, Quota{Latency: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ep.SelectCtx(ctx, selP)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Fatal("cancellation did not cut the latency sleep short")
	}

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := ep.SelectCtx(canceled, selP); err != context.Canceled {
		t.Fatalf("pre-canceled ctx: err = %v", err)
	}
	if ok, err := ep.AskCtx(canceled, askAB); ok || err != context.Canceled {
		t.Fatalf("pre-canceled ask: %v, %v", ok, err)
	}
}

func TestLocalConcurrentIdenticalResults(t *testing.T) {
	ep := NewLocal(testKB(), 3)
	q := `SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND()`
	want, err := NewLocal(testKB(), 3).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				got, err := ep.Select(q)
				if err != nil {
					t.Error(err)
					return
				}
				for r := range want.Rows {
					if got.Rows[r][0] != want.Rows[r][0] {
						t.Errorf("row %d diverged under concurrency", r)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if ep.Stats().Queries != 8*25 {
		t.Fatalf("stats lost queries: %+v", ep.Stats())
	}
}

func TestClientSelectCtx(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal(testKB(), 1)))
	defer srv.Close()
	c := NewClient("test", srv.URL, srv.Client())
	res, err := c.SelectCtx(context.Background(), selP)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SelectCtx(ctx, selP); err == nil {
		t.Fatal("canceled ctx did not fail the HTTP exchange")
	}
}
