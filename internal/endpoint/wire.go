package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// wire.go is the batch-framed streaming side of the SPARQL HTTP
// protocol. The in-process federation merge pulls shard rows in 64-row
// batches (sparql's borrowed-iterator ring); a network hop must not
// regress that to a round trip per row, so streamed prepared queries
// cross the wire in the same granularity:
//
//	POST /sparql   query=<text>&stream=1[&batch=n][&orderspec=<text>]
//
//	→ 200 Content-Type: application/x-sofya-rows+jsonl
//	  {"head":{"vars":["s","o"],"keys":[1]}}
//	  {"rows":[[term,term],...], "keyvals":[[v],...]}   ≤ batch rows
//	  ...
//	  {"end":{"truncated":false}}                       — or —
//	  {"error":"...","quota":true}
//
// Each frame is one JSON line, flushed as a unit: the consumer costs
// one network read per batch, not per row. The terminal frame is either
// an end frame (with the stream's truncation flag) or an error frame —
// a stream that stops without one was cut mid-flight and the client
// reports the transport error instead of a silently short result.
//
// orderspec carries the canonical text of the *original* ordered query
// whose stripped enumeration this stream is (the federation's ORDER BY
// pushdown). The server re-derives the deterministic ORDER BY keys from
// it (sparql.AnalyzeShard — the same analysis the merge point runs) and
// attaches each row's key values to the frames, so the merge point
// receives keys instead of re-evaluating expressions per merged row.
// Bare RAND() keys are never attached: their draws pair with rows in
// whole-KB enumeration order, which only the merge point knows (no
// shard can see where its rows land in the interleave), so they are
// re-drawn merge-side from the seed ⊕ canonical-text stream.

// StreamContentType is the media type of the batch-framed row stream.
const StreamContentType = "application/x-sofya-rows+jsonl"

// WireBatch is the default number of rows per stream frame — matched to
// the 64-row batches the in-process merge pulls, so one network read
// feeds one merge batch.
const WireBatch = 64

// maxWireBatch bounds client-requested frame sizes.
const maxWireBatch = 4096

type wireHead struct {
	Vars []string `json:"vars"`
	// Keys lists the ORDER BY key indices whose values ride along with
	// every row (the deterministic keys of the orderspec query).
	Keys []int `json:"keys,omitempty"`
}

type wireEnd struct {
	Truncated bool `json:"truncated"`
}

type wireFrame struct {
	Head    *wireHead     `json:"head,omitempty"`
	Rows    [][]jsonTerm  `json:"rows,omitempty"`
	KeyVals [][]wireValue `json:"keyvals,omitempty"`
	End     *wireEnd      `json:"end,omitempty"`
	Error   string        `json:"error,omitempty"`
	Quota   bool          `json:"quota,omitempty"`
}

// wireValue is the JSON rendering of a sparql.Value ORDER BY key:
// exactly one of the kind fields is meaningful, selected by K.
type wireValue struct {
	K string    `json:"k"` // "b" | "n" | "s" | "t" | "e"
	B bool      `json:"b,omitempty"`
	N float64   `json:"n,omitempty"`
	S string    `json:"s,omitempty"`
	T *jsonTerm `json:"t,omitempty"`
}

func valueToWire(v sparql.Value) wireValue {
	if b, ok := v.AsBool(); ok {
		return wireValue{K: "b", B: b}
	}
	if n, ok := v.AsNum(); ok {
		return wireValue{K: "n", N: n}
	}
	if s, ok := v.AsStr(); ok {
		return wireValue{K: "s", S: s}
	}
	if t, ok := v.AsTerm(); ok {
		jt := termToJSON(t)
		return wireValue{K: "t", T: &jt}
	}
	return wireValue{K: "e"}
}

func valueFromWire(w wireValue) (sparql.Value, error) {
	switch w.K {
	case "b":
		return sparql.BoolValue(w.B), nil
	case "n":
		return sparql.NumValue(w.N), nil
	case "s":
		return sparql.StrValue(w.S), nil
	case "t":
		if w.T == nil {
			return sparql.Value{}, errors.New("endpoint: term key value without a term")
		}
		t, err := termFromJSON(*w.T)
		if err != nil {
			return sparql.Value{}, err
		}
		return sparql.TermValue(t), nil
	case "e":
		return sparql.ErrValue(), nil
	default:
		return sparql.Value{}, fmt.Errorf("endpoint: unknown key value kind %q", w.K)
	}
}

// orderKeyEvals compiles the deterministic ORDER BY key evaluators of
// an orderspec query text: the canonical original query whose stripped
// enumeration is being streamed. Returned evaluators run over projected
// rows (the pushdown preserves the projection). RAND keys and keys the
// analysis cannot compile are skipped — the merge point handles those.
func orderKeyEvals(orderspec string) (idx []int, evals []func([]rdf.Term) sparql.Value, err error) {
	q, err := sparql.Parse(orderspec)
	if err != nil {
		return nil, nil, fmt.Errorf("endpoint: bad orderspec: %w", err)
	}
	shape := sparql.AnalyzeShard(q, nil)
	for i, k := range shape.Keys {
		if k.Eval == nil {
			continue
		}
		idx = append(idx, i)
		evals = append(evals, k.Eval)
	}
	return idx, evals, nil
}

// writeStream drains rows into batch frames on w. Any mid-stream error
// — a shard quota trip, a failed upstream — becomes the terminal error
// frame; transport write errors just stop the stream (the peer is gone).
func writeStream(w http.ResponseWriter, rows Rows, keyIdx []int, keyEvals []func([]rdf.Term) sparql.Value, batch int) {
	if batch <= 0 {
		batch = WireBatch
	} else if batch > maxWireBatch {
		batch = maxWireBatch
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	w.Header().Set("Content-Type", StreamContentType)
	w.WriteHeader(http.StatusOK)

	emit := func(f *wireFrame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(&wireFrame{Head: &wireHead{Vars: rows.Vars(), Keys: keyIdx}}) {
		rows.Close()
		return
	}

	frame := wireFrame{Rows: make([][]jsonTerm, 0, batch)}
	if len(keyEvals) > 0 {
		frame.KeyVals = make([][]wireValue, 0, batch)
	}
	flushBatch := func() bool {
		if len(frame.Rows) == 0 {
			return true
		}
		ok := emit(&frame)
		frame.Rows = frame.Rows[:0]
		if frame.KeyVals != nil {
			frame.KeyVals = frame.KeyVals[:0]
		}
		return ok
	}
	for rows.Next() {
		row := rows.Row()
		jr := make([]jsonTerm, len(row))
		for i, t := range row {
			jr[i] = termToJSON(t)
		}
		frame.Rows = append(frame.Rows, jr)
		if frame.KeyVals != nil {
			kv := make([]wireValue, len(keyEvals))
			for i, ev := range keyEvals {
				kv[i] = valueToWire(ev(row))
			}
			frame.KeyVals = append(frame.KeyVals, kv)
		}
		if len(frame.Rows) == batch {
			if !flushBatch() {
				rows.Close()
				return
			}
		}
	}
	if !flushBatch() {
		rows.Close()
		return
	}
	if err := rows.Err(); err != nil {
		emit(&wireFrame{Error: err.Error(), Quota: errors.Is(err, ErrQuotaExceeded)})
		rows.Close()
		return
	}
	trunc := rows.Truncated()
	rows.Close()
	emit(&wireFrame{End: &wireEnd{Truncated: trunc}})
}

// wireRows is the client side of a batch-framed stream: Rows over an
// HTTP response body, decoding one frame per network read. It
// implements KeyedRows — rows of an orderspec stream carry their
// deterministic ORDER BY key values, which the federation merge
// consumes instead of re-evaluating expressions.
type wireRows struct {
	body    io.Closer
	dec     *json.Decoder
	cancel  context.CancelFunc // releases the request context; nil when caller-owned
	vars    []string
	keyIdx  []int
	rows    [][]rdf.Term
	keyvals [][]sparql.Value
	bi      int
	row     []rdf.Term
	keys    []sparql.Value
	err     error
	trunc   bool
	ended   bool // terminal frame seen
	done    bool
}

// newWireRows reads the stream's head frame — the open completes when
// the server has actually started answering, which is the signal hedged
// reads race on.
func newWireRows(body io.ReadCloser, cancel context.CancelFunc) (*wireRows, error) {
	r := &wireRows{body: body, dec: json.NewDecoder(body), cancel: cancel}
	var f wireFrame
	if err := r.dec.Decode(&f); err != nil {
		body.Close()
		return nil, fmt.Errorf("endpoint: reading stream head: %w", err)
	}
	if f.Error != "" {
		body.Close()
		return nil, streamError(&f)
	}
	if f.Head == nil {
		body.Close()
		return nil, errors.New("endpoint: stream did not start with a head frame")
	}
	r.vars = f.Head.Vars
	r.keyIdx = f.Head.Keys
	return r, nil
}

func streamError(f *wireFrame) error {
	if f.Quota {
		return ErrQuotaExceeded
	}
	return fmt.Errorf("endpoint: remote stream: %s", f.Error)
}

func (r *wireRows) Vars() []string          { return r.vars }
func (r *wireRows) Row() []rdf.Term         { return r.row }
func (r *wireRows) Err() error              { return r.err }
func (r *wireRows) Truncated() bool         { return r.trunc }
func (r *wireRows) AttachedKeys() []int     { return r.keyIdx }
func (r *wireRows) RowKeys() []sparql.Value { return r.keys }

func (r *wireRows) Next() bool {
	if r.done {
		return false
	}
	for r.bi >= len(r.rows) {
		if !r.decodeFrame() {
			return false
		}
	}
	r.row = r.rows[r.bi]
	r.keys = nil
	if r.keyvals != nil {
		r.keys = r.keyvals[r.bi]
	}
	r.bi++
	return true
}

// decodeFrame pulls the next frame; false at stream end (clean or not).
func (r *wireRows) decodeFrame() bool {
	var f wireFrame
	if err := r.dec.Decode(&f); err != nil {
		// The terminal frame never arrived: the connection died
		// mid-stream. Surface the transport error rather than passing
		// the prefix off as the whole result.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("endpoint: stream cut mid-flight: %w", err)
		r.finish()
		return false
	}
	switch {
	case f.Error != "":
		r.err = streamError(&f)
		r.ended = true
		r.finish()
		return false
	case f.End != nil:
		r.trunc = f.End.Truncated
		r.ended = true
		r.finish()
		return false
	}
	rows := make([][]rdf.Term, len(f.Rows))
	for i, jr := range f.Rows {
		row := make([]rdf.Term, len(jr))
		for j, jt := range jr {
			t, err := termFromJSON(jt)
			if err != nil {
				r.err = err
				r.finish()
				return false
			}
			row[j] = t
		}
		rows[i] = row
	}
	r.rows, r.bi = rows, 0
	r.keyvals = nil
	if len(f.KeyVals) > 0 {
		r.keyvals = make([][]sparql.Value, len(f.KeyVals))
		for i, kvs := range f.KeyVals {
			vals := make([]sparql.Value, len(kvs))
			for j, kv := range kvs {
				v, err := valueFromWire(kv)
				if err != nil {
					r.err = err
					r.finish()
					return false
				}
				vals[j] = v
			}
			r.keyvals[i] = vals
		}
	}
	return true
}

func (r *wireRows) Close() { r.finish() }

func (r *wireRows) finish() {
	if r.done {
		return
	}
	r.done = true
	r.row, r.keys = nil, nil
	r.body.Close()
	if r.cancel != nil {
		r.cancel()
	}
}

var (
	_ Rows      = (*wireRows)(nil)
	_ KeyedRows = (*wireRows)(nil)
)
