// Package endpoint provides the only gateway SOFYA uses to reach a
// knowledge base: a SPARQL endpoint. It deliberately mirrors the access
// model of public Linked Open Data endpoints, which the paper's
// introduction motivates — you may pose queries, but you may not
// download the dataset:
//
//   - Local wraps an in-process sparql.Engine and enforces an access
//     Quota: a per-session query budget, a per-query row cap (public
//     DBpedia truncates at 10 000 rows), and optional simulated latency.
//   - Server / Client speak the SPARQL 1.1 protocol over HTTP with
//     application/sparql-results+json bodies, so the alignment pipeline
//     can run against a genuinely remote KB.
//   - Caching and Coalescing are composable decorators for concurrent
//     alignment pipelines: Caching memoizes successful results under an
//     LRU bound, Coalescing singleflights identical in-flight queries
//     so concurrent aligners share one probe.
//
// Every endpoint offers context-aware methods (SelectCtx / AskCtx) for
// cancellation and deadlines; Select / Ask are the background-context
// convenience forms.
//
// All endpoints record Stats, which the experiments use to report the
// number of queries and rows each alignment consumed (experiment E4).
package endpoint

import (
	"context"
	"errors"
	"sync"
	"time"

	"sofya/internal/kb"
	"sofya/internal/sparql"
)

// ErrQuotaExceeded is returned once a session's query budget is spent.
var ErrQuotaExceeded = errors.New("endpoint: query quota exceeded")

// Endpoint is a queryable SPARQL service.
type Endpoint interface {
	// Name identifies the dataset behind the endpoint.
	Name() string
	// Select runs a SELECT query and returns its bindings. The result
	// may be truncated (Result.Truncated) by a row cap.
	Select(query string) (*sparql.Result, error)
	// Ask runs an ASK query.
	Ask(query string) (bool, error)
	// SelectCtx is Select honoring ctx for cancellation and deadlines.
	SelectCtx(ctx context.Context, query string) (*sparql.Result, error)
	// AskCtx is Ask honoring ctx for cancellation and deadlines.
	AskCtx(ctx context.Context, query string) (bool, error)
	// Prepare compiles a query template (parameters written $name in
	// term positions, or LIMIT $name) for repeated execution. Results
	// are byte-identical to sending the equivalent query text; local
	// endpoints skip parse, plan and interpolation per call, remote
	// ones fall back to canonical text rendering (NewTextPrepared).
	Prepare(template string, params ...string) (PreparedQuery, error)
}

// StatsReporter is implemented by endpoints that track access statistics.
type StatsReporter interface {
	Stats() Stats
	ResetStats()
}

// Quota models the access restrictions of a public SPARQL endpoint.
// The zero value means unrestricted.
type Quota struct {
	// MaxQueries is the total number of queries a session may issue;
	// 0 means unlimited. Exceeding it returns ErrQuotaExceeded.
	MaxQueries int
	// MaxRows caps the rows returned per SELECT; 0 means unlimited.
	// Truncation is flagged on the result, like a public endpoint's
	// silent result cap.
	MaxRows int
	// Latency is added to every query, simulating network round trips.
	Latency time.Duration
}

// Stats counts endpoint usage.
type Stats struct {
	// Queries is the number of queries accepted (SELECT + ASK).
	Queries int
	// Rows is the total number of rows returned across SELECTs.
	Rows int
	// Truncations counts SELECTs cut short by the row cap.
	Truncations int
	// Denied counts queries rejected by the quota.
	Denied int
}

// Local is an Endpoint over an in-process KB.
type Local struct {
	name   string
	engine *sparql.Engine
	quota  Quota

	mu    sync.Mutex
	stats Stats
}

// NewLocal builds an unrestricted endpoint over k with a deterministic
// RAND() seed. Creating an endpoint marks the load → serve boundary of
// the KB lifecycle: k is frozen into its compact read-optimized form
// (kb.Freeze) so every query runs on CSR postings with O(1) statistics.
func NewLocal(k *kb.KB, seed int64) *Local {
	k.Freeze()
	return &Local{name: k.Name(), engine: sparql.NewEngineSeeded(k, seed)}
}

// NewLocalRestricted builds an endpoint over k with an access quota,
// freezing k like NewLocal.
func NewLocalRestricted(k *kb.KB, seed int64, q Quota) *Local {
	k.Freeze()
	return &Local{name: k.Name(), engine: sparql.NewEngineSeeded(k, seed), quota: q}
}

// Name implements Endpoint.
func (l *Local) Name() string { return l.name }

// KB exposes the underlying KB for tools that legitimately own the data
// (the snapshot baseline, the generator); the aligner must not use it.
func (l *Local) KB() *kb.KB { return l.engine.KB() }

// SetQuota replaces the endpoint's quota (counters keep running).
func (l *Local) SetQuota(q Quota) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.quota = q
}

// Stats implements StatsReporter.
func (l *Local) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// ResetStats implements StatsReporter.
func (l *Local) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}

// admit charges one query against the quota.
func (l *Local) admit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.quota.MaxQueries > 0 && l.stats.Queries >= l.quota.MaxQueries {
		l.stats.Denied++
		return ErrQuotaExceeded
	}
	l.stats.Queries++
	return nil
}

// Select implements Endpoint.
func (l *Local) Select(query string) (*sparql.Result, error) {
	return l.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (l *Local) Ask(query string) (bool, error) {
	return l.AskCtx(context.Background(), query)
}

var (
	errNeedSelect = errors.New("endpoint: Select needs a SELECT query")
	errNeedAsk    = errors.New("endpoint: Ask needs an ASK query")
)

// admitCtx charges the quota and simulates latency: the context is
// checked before the query is admitted and while the latency elapses;
// evaluation itself is in-process and fast, so it is not interruptible.
func (l *Local) admitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := l.admit(); err != nil {
		return err
	}
	return sleepCtx(ctx, l.latency())
}

// capAndCount applies the row cap and records result statistics.
func (l *Local) capAndCount(res *sparql.Result) {
	l.mu.Lock()
	if l.quota.MaxRows > 0 && len(res.Rows) > l.quota.MaxRows {
		res.Rows = res.Rows[:l.quota.MaxRows]
		res.Truncated = true
		l.stats.Truncations++
	}
	l.stats.Rows += len(res.Rows)
	l.mu.Unlock()
}

// maxRows reads the quota's row cap for a stream about to start; a
// SetQuota during the stream does not retroactively re-cap it.
func (l *Local) maxRows() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quota.MaxRows
}

// countStreamed records the statistics of one finished stream: only the
// rows the consumer actually pulled are charged.
func (l *Local) countStreamed(rows int, truncated bool) {
	l.mu.Lock()
	l.stats.Rows += rows
	if truncated {
		l.stats.Truncations++
	}
	l.mu.Unlock()
}

// SelectCtx implements Endpoint.
func (l *Local) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	if err := l.admitCtx(ctx); err != nil {
		return nil, err
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Form != sparql.SelectForm {
		return nil, errNeedSelect
	}
	res, err := l.engine.Eval(q)
	if err != nil {
		return nil, err
	}
	l.capAndCount(res)
	return res, nil
}

// AskCtx implements Endpoint.
func (l *Local) AskCtx(ctx context.Context, query string) (bool, error) {
	if err := l.admitCtx(ctx); err != nil {
		return false, err
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return false, err
	}
	if q.Form != sparql.AskForm {
		return false, errNeedAsk
	}
	res, err := l.engine.Eval(q)
	if err != nil {
		return false, err
	}
	return res.Ask, nil
}

// Prepare implements Endpoint: the template compiles once into a
// slot-addressed plan over the endpoint's engine, and every execution
// binds arguments into registers directly — no parsing, no planning,
// no text interpolation. Prepared executions are charged against the
// quota and statistics exactly like text queries.
func (l *Local) Prepare(template string, params ...string) (PreparedQuery, error) {
	t, err := sparql.ParseTemplate(template, params...)
	if err != nil {
		return nil, err
	}
	plan, err := l.engine.Prepare(t)
	if err != nil {
		return nil, err
	}
	return &localPrepared{l: l, plan: plan}, nil
}

func (l *Local) latency() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quota.Latency
}

// sleepCtx sleeps for d, returning early with ctx.Err() if the context
// ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var (
	_ Endpoint      = (*Local)(nil)
	_ StatsReporter = (*Local)(nil)
)
