package endpoint

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// http_error_test.go injects failures into the HTTP protocol — the
// paths a real network exercises and a clean test run never does:
// malformed JSON, mid-stream disconnects, context cancellation, error
// status codes, and their classification for failover (Retriable).

func TestClientMalformedJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ResultsContentType)
		io.WriteString(w, `{"head": {"vars": ["x"]}, "results": {"bindings": [{"x"`)
	}))
	defer srv.Close()
	client := NewClient("bad", srv.URL, nil)
	if _, err := client.Select("SELECT ?x WHERE { ?x ?p ?o }"); err == nil {
		t.Fatal("malformed JSON was accepted")
	}
}

func TestClientStatusErrorSnippet(t *testing.T) {
	long := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "engine exploded: "+long, http.StatusInternalServerError)
	}))
	defer srv.Close()
	client := NewClient("bad", srv.URL, nil)
	_, err := client.Select("SELECT ?x WHERE { ?x ?p ?o }")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a StatusError: %v", err)
	}
	if se.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d", se.Code)
	}
	if !strings.Contains(se.Snippet, "engine exploded") {
		t.Fatalf("snippet lost the body: %q", se.Snippet)
	}
	if len(se.Snippet) > snippetLimit+len("…") {
		t.Fatalf("snippet not capped: %d bytes", len(se.Snippet))
	}
	if !Retriable(err) {
		t.Fatal("5xx must be retriable")
	}
}

func TestClient4xxNotRetriable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such query form", http.StatusBadRequest)
	}))
	defer srv.Close()
	client := NewClient("bad", srv.URL, nil)
	_, err := client.Select("SELECT ?x WHERE { ?x ?p ?o }")
	if err == nil || Retriable(err) {
		t.Fatalf("4xx must be a fatal error, got %v (retriable=%v)", err, Retriable(err))
	}
}

func TestClientQuotaIdentityPreserved(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "quota", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	client := NewClient("q", srv.URL, nil)
	if _, err := client.Select("SELECT ?x WHERE { ?x ?p ?o }"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("429 did not map to ErrQuotaExceeded: %v", err)
	}
	pq, err := client.Prepare("SELECT ?x WHERE { ?x ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Stream(context.Background()); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("429 on stream open did not map to ErrQuotaExceeded: %v", err)
	}
	if Retriable(ErrQuotaExceeded) {
		t.Fatal("quota errors must not be retriable")
	}
}

// TestStreamQuotaErrorFrame: a quota trip mid-stream travels as the
// terminal error frame and surfaces as ErrQuotaExceeded.
func TestStreamQuotaErrorFrame(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", StreamContentType)
		io.WriteString(w, `{"head":{"vars":["x"]}}`+"\n")
		io.WriteString(w, `{"rows":[[{"type":"uri","value":"http://x/a"}]]}`+"\n")
		io.WriteString(w, `{"error":"endpoint: query quota exceeded","quota":true}`+"\n")
	}))
	defer srv.Close()
	client := NewClient("q", srv.URL, nil)
	pq, err := client.Prepare("SELECT ?x WHERE { ?x ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("rows before the error = %d, want 1", n)
	}
	if !errors.Is(rows.Err(), ErrQuotaExceeded) {
		t.Fatalf("mid-stream quota error lost its identity: %v", rows.Err())
	}
}

// TestStreamCutMidFlight: a connection dropped between frames is a
// transport error, not a silently short result.
func TestStreamCutMidFlight(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", StreamContentType)
		io.WriteString(w, `{"head":{"vars":["x"]}}`+"\n")
		io.WriteString(w, `{"rows":[[{"type":"uri","value":"http://x/a"}]]}`+"\n")
		w.(http.Flusher).Flush()
		// Kill the TCP connection without a terminal frame.
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer srv.Close()
	client := NewClient("cut", srv.URL, nil)
	pq, err := client.Prepare("SELECT ?x WHERE { ?x ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("rows before the cut = %d, want 1", n)
	}
	err = rows.Err()
	if err == nil {
		t.Fatal("mid-stream disconnect was silent")
	}
	if !strings.Contains(err.Error(), "cut mid-flight") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !Retriable(err) {
		t.Fatalf("a cut stream must be retriable: %v", err)
	}
}

// TestStreamGarbageFrame: undecodable frame bytes fail the stream.
func TestStreamGarbageFrame(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", StreamContentType)
		io.WriteString(w, `{"head":{"vars":["x"]}}`+"\n")
		io.WriteString(w, "this is not JSON\n")
	}))
	defer srv.Close()
	client := NewClient("garbage", srv.URL, nil)
	pq, err := client.Prepare("SELECT ?x WHERE { ?x ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Fatal("garbage frame was accepted")
	}
}

// TestStreamContextCancellation: canceling the stream's context aborts
// the transfer; the consumer sees an error, not a truncated success.
func TestStreamContextCancellation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm() // drain the body so the client abort is detected
		w.Header().Set("Content-Type", StreamContentType)
		io.WriteString(w, `{"head":{"vars":["x"]}}`+"\n")
		io.WriteString(w, `{"rows":[[{"type":"uri","value":"http://x/a"}]]}`+"\n")
		w.(http.Flusher).Flush()
		select { // hold the stream open until the client gives up
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	client := NewClient("cancel", srv.URL, nil)
	pq, err := client.Prepare("SELECT ?x WHERE { ?x ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := pq.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("first row missing: %v", rows.Err())
	}
	cancel()
	done := make(chan struct{})
	go func() {
		for rows.Next() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled stream did not unblock")
	}
	if rows.Err() == nil {
		t.Fatal("cancellation was silent")
	}
}

// TestClientCallCancellation: a canceled whole-result call returns the
// context error, which is never retried.
func TestClientCallCancellation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm() // drain the body so the client abort is detected
		close(started)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	client := NewClient("cancel", srv.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := client.SelectCtx(ctx, "SELECT ?x WHERE { ?x ?p ?o }")
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled call succeeded")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled call did not surface context.Canceled: %v", err)
		}
		if Retriable(err) {
			t.Fatal("a caller's own cancellation must not be retried")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled call did not return")
	}
}

// TestServerStreamAskRejected: the stream flag applies to SELECT; an
// ASK with stream=1 still answers the plain JSON document.
func TestServerStreamAskRejected(t *testing.T) {
	local := NewLocal(testKB(), 1)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()
	resp, err := http.PostForm(srv.URL, map[string][]string{
		"query":  {"ASK { ?x <http://x/p> ?y }"},
		"stream": {"1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, ResultsContentType) {
		t.Fatalf("ASK answered with content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	res, err := UnmarshalResults(body)
	if err != nil || !res.Ask {
		t.Fatalf("ASK answer corrupted: %v %v", res, err)
	}
}

// TestServerBadBatch: an invalid batch size is a 400.
func TestServerBadBatch(t *testing.T) {
	local := NewLocal(testKB(), 1)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()
	for _, batch := range []string{"0", "-5", "nope"} {
		resp, err := http.PostForm(srv.URL, map[string][]string{
			"query":  {"SELECT ?x WHERE { ?x <http://x/p> ?y }"},
			"stream": {"1"},
			"batch":  {batch},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch=%q: status = %d, want 400", batch, resp.StatusCode)
		}
	}
}

// TestSetWireBatch: the client's requested frame size shapes the
// server's framing (more flushes for smaller batches).
func TestSetWireBatch(t *testing.T) {
	const rows = 64
	local := NewLocal(bigKB(rows), 1)
	client := func(batch int, flushes *int) int {
		inner := NewServer(local)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(&countOnlyWriter{ResponseWriter: w, flushes: flushes}, r)
		}))
		defer srv.Close()
		c := NewClient("batch", srv.URL, nil)
		c.SetWireBatch(batch)
		pq, err := c.Prepare("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }")
		if err != nil {
			t.Fatal(err)
		}
		stream, err := pq.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		n := 0
		for stream.Next() {
			n++
		}
		return n
	}
	var rowFlushes, batchFlushes int
	if n := client(1, &rowFlushes); n != rows {
		t.Fatalf("batch=1 streamed %d rows", n)
	}
	if n := client(64, &batchFlushes); n != rows {
		t.Fatalf("batch=64 streamed %d rows", n)
	}
	if rowFlushes <= batchFlushes {
		t.Fatalf("row framing (%d flushes) not worse than batch framing (%d) — framing knob inert", rowFlushes, batchFlushes)
	}
	if batchFlushes > 3 { // head + one full batch + end
		t.Fatalf("batch=64 framing cost %d flushes for %d rows", batchFlushes, rows)
	}
}

// countOnlyWriter counts flushes without synchronization — for tests
// whose requests are strictly sequential.
type countOnlyWriter struct {
	http.ResponseWriter
	flushes *int
}

func (w *countOnlyWriter) Flush() {
	*w.flushes++
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func TestRetriableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrQuotaExceeded, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&StatusError{Code: 500}, true},
		{&StatusError{Code: 503}, true},
		{&StatusError{Code: 400}, false},
		{&StatusError{Code: 404}, false},
		{io.ErrUnexpectedEOF, true},
		{io.EOF, true},
		{fmt.Errorf("wrapping: %w", io.ErrUnexpectedEOF), true},
		{errors.New("some semantic failure"), false},
	}
	for i, c := range cases {
		if got := Retriable(c.err); got != c.want {
			t.Errorf("case %d: Retriable(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}
