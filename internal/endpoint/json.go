package endpoint

import (
	"encoding/json"
	"fmt"

	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// The wire format is the W3C "SPARQL 1.1 Query Results JSON Format":
//
//	{"head":{"vars":["x"]},
//	 "results":{"bindings":[{"x":{"type":"uri","value":"http://..."}}]}}
//
// ASK results carry {"head":{},"boolean":true}.

type jsonResults struct {
	Head    jsonHead     `json:"head"`
	Results *jsonResRows `json:"results,omitempty"`
	Boolean *bool        `json:"boolean,omitempty"`
	// Truncated is a nonstandard extension flag used by this
	// repository's endpoints to signal a row cap, mirroring the
	// X-SPARQL-MaxRows headers some public endpoints emit.
	Truncated bool `json:"truncated,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars,omitempty"`
}

type jsonResRows struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"` // uri | literal | bnode
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

func termFromJSON(j jsonTerm) (rdf.Term, error) {
	switch j.Type {
	case "uri":
		return rdf.NewIRI(j.Value), nil
	case "bnode":
		return rdf.NewBlank(j.Value), nil
	case "literal", "typed-literal":
		switch {
		case j.Lang != "":
			return rdf.NewLangLiteral(j.Value, j.Lang), nil
		case j.Datatype != "" && j.Datatype != rdf.XSDString:
			return rdf.NewTypedLiteral(j.Value, j.Datatype), nil
		default:
			return rdf.NewLiteral(j.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("endpoint: unknown term type %q", j.Type)
	}
}

// MarshalSelect encodes a SELECT result in SPARQL-results JSON.
func MarshalSelect(res *sparql.Result) ([]byte, error) {
	out := jsonResults{
		Head:      jsonHead{Vars: res.Vars},
		Results:   &jsonResRows{Bindings: make([]map[string]jsonTerm, 0, len(res.Rows))},
		Truncated: res.Truncated,
	}
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(res.Vars))
		for i, v := range res.Vars {
			b[v] = termToJSON(row[i])
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	return json.Marshal(out)
}

// MarshalAsk encodes an ASK result in SPARQL-results JSON.
func MarshalAsk(ok bool) ([]byte, error) {
	return json.Marshal(jsonResults{Boolean: &ok})
}

// UnmarshalResults decodes a SPARQL-results JSON document into a Result.
// ASK answers come back with Ask set and no rows.
func UnmarshalResults(data []byte) (*sparql.Result, error) {
	var in jsonResults
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("endpoint: bad results JSON: %w", err)
	}
	res := &sparql.Result{Vars: in.Head.Vars, Truncated: in.Truncated}
	if in.Boolean != nil {
		res.Ask = *in.Boolean
		return res, nil
	}
	if in.Results == nil {
		return res, nil
	}
	for _, b := range in.Results.Bindings {
		row := make([]rdf.Term, len(res.Vars))
		for i, v := range res.Vars {
			jt, ok := b[v]
			if !ok {
				return nil, fmt.Errorf("endpoint: binding missing variable %q", v)
			}
			t, err := termFromJSON(jt)
			if err != nil {
				return nil, err
			}
			row[i] = t
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
