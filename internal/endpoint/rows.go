package endpoint

import (
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// Rows is a streamed SELECT result: rows arrive on demand, and closing
// the stream early aborts the remaining work wherever the endpoint can
// (a Local endpoint stops its join tree; remote endpoints have already
// drained). Row slices are read-only and remain valid after further
// Next calls — except on streams obtained through StreamBorrowed,
// whose rows are reused buffers valid only until the next Next. A Rows
// is not safe for concurrent use; independent streams from one
// endpoint are.
//
// The iteration protocol matches sparql.RowIter: Next advances and
// reports whether a row is available, Row returns it, Err reports the
// error that ended iteration (nil after clean exhaustion or Close), and
// Close is idempotent and implied by exhaustion. Truncated reports —
// once the stream has ended — whether a row cap cut it short.
type Rows interface {
	Vars() []string
	Next() bool
	Row() []rdf.Term
	Err() error
	Truncated() bool
	Close()
}

// replayRows streams an in-memory Result — the drain-then-iterate
// fallback for endpoints without a native streaming path, and the
// replay path of the caching decorator.
type replayRows struct {
	vars  []string
	rows  [][]rdf.Term
	trunc bool
	i     int
	row   []rdf.Term
}

// newReplayRows wraps a drained result. The rows are shared, not
// copied: treat them as read-only, as with any endpoint result.
func newReplayRows(res *sparql.Result) *replayRows {
	return &replayRows{vars: res.Vars, rows: res.Rows, trunc: res.Truncated}
}

// ReplayRows exposes the drain-then-iterate adapter to other endpoint
// implementations (the shard federation replays merged results with
// it). The result's rows are shared, not copied.
func ReplayRows(res *sparql.Result) Rows { return newReplayRows(res) }

func (r *replayRows) Vars() []string { return r.vars }

func (r *replayRows) Next() bool {
	if r.i >= len(r.rows) {
		r.row = nil
		return false
	}
	r.row = r.rows[r.i]
	r.i++
	return true
}

func (r *replayRows) Row() []rdf.Term { return r.row }
func (r *replayRows) Err() error      { return nil }
func (r *replayRows) Truncated() bool { return r.trunc }
func (r *replayRows) Close() {
	r.i = len(r.rows)
	r.row = nil
}

// localRows adapts a sparql.RowIter to the endpoint contract: it
// enforces the quota's row cap while rows are pulled and charges the
// endpoint's row statistics exactly once, whether the stream is
// drained, capped, or closed early.
type localRows struct {
	l       *Local
	it      *sparql.RowIter
	maxRows int
	n       int
	trunc   bool
	done    bool
}

func (r *localRows) Vars() []string  { return r.it.Vars() }
func (r *localRows) Row() []rdf.Term { return r.it.Row() }
func (r *localRows) Err() error      { return r.it.Err() }
func (r *localRows) Truncated() bool { return r.trunc }

func (r *localRows) Next() bool {
	if r.done {
		return false
	}
	if r.maxRows > 0 && r.n >= r.maxRows {
		// The cap is reached; like the drain path, only flag truncation
		// if the engine actually had another row to give.
		if r.it.Next() {
			r.trunc = true
		}
		r.finish()
		return false
	}
	if !r.it.Next() {
		r.finish()
		return false
	}
	r.n++
	return true
}

func (r *localRows) Close() { r.finish() }

func (r *localRows) finish() {
	if r.done {
		return
	}
	r.done = true
	r.it.Close()
	r.l.countStreamed(r.n, r.trunc)
}

var (
	_ Rows = (*replayRows)(nil)
	_ Rows = (*localRows)(nil)
)
