package endpoint

import (
	"container/list"
	"context"
	"sync"

	"sofya/internal/sparql"
)

// DefaultCacheSize is the LRU bound used when NewCaching is given a
// non-positive capacity.
const DefaultCacheSize = 4096

// CacheStats counts a Caching decorator's activity.
type CacheStats struct {
	// Hits and Misses count lookups served from / past the cache.
	Hits, Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
}

// Caching decorates an Endpoint with an LRU memo of successful SELECT
// and ASK results, keyed by the exact query text. Identical queries —
// the dominant traffic of a batch alignment, where many relations probe
// the same subjects and samples — reach the inner endpoint once.
//
// Errors are never cached, so quota rejections and transient failures
// are retried on the next call. Cached results are shared between
// callers: treat a returned Result's rows as read-only, exactly as with
// an undecorated endpoint.
//
// Caching assumes the inner endpoint answers a given query identically
// every time, which Local guarantees (its RAND() streams are derived
// per query text). It is safe for concurrent use; to also deduplicate
// concurrent identical misses, stack a Coalescing decorator on top.
type Caching struct {
	inner Endpoint
	max   int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	stats   CacheStats
}

type cacheEntry struct {
	key string
	res sparql.Result
}

// NewCaching wraps inner with an LRU of at most maxEntries results
// (DefaultCacheSize when maxEntries <= 0).
func NewCaching(inner Endpoint, maxEntries int) *Caching {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Caching{
		inner:   inner,
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Name implements Endpoint.
func (c *Caching) Name() string { return c.inner.Name() }

// Select implements Endpoint.
func (c *Caching) Select(query string) (*sparql.Result, error) {
	return c.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (c *Caching) Ask(query string) (bool, error) {
	return c.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint.
func (c *Caching) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	if res, ok := c.lookup("S\x00" + query); ok {
		return res, nil
	}
	res, err := c.inner.SelectCtx(ctx, query)
	if err != nil {
		return nil, err
	}
	c.store("S\x00"+query, *res)
	out := *res
	return &out, nil
}

// AskCtx implements Endpoint.
func (c *Caching) AskCtx(ctx context.Context, query string) (bool, error) {
	if res, ok := c.lookup("A\x00" + query); ok {
		return res.Ask, nil
	}
	ok, err := c.inner.AskCtx(ctx, query)
	if err != nil {
		return false, err
	}
	c.store("A\x00"+query, sparql.Result{Ask: ok})
	return ok, nil
}

// lookup returns a copy of the cached result and bumps its recency.
func (c *Caching) lookup(key string) (*sparql.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	return &res, true
}

// store inserts a successful result, evicting the least recently used
// entry past the bound. A concurrent duplicate store wins no harm: the
// inner endpoint answers identical queries identically.
func (c *Caching) store(key string, res sparql.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Prepare implements Endpoint: prepared executions flow through the
// same LRU, keyed by template, parameter order and rendered arguments,
// so identical prepared probes — from any handle or pipeline stage
// sharing the template — reach the inner endpoint once. (Text queries
// keep their own keys: a text probe and its prepared equivalent are
// cached independently.)
func (c *Caching) Prepare(template string, params ...string) (PreparedQuery, error) {
	inner, err := c.inner.Prepare(template, params...)
	if err != nil {
		return nil, err
	}
	return &cachingPrepared{c: c, inner: inner, source: template, params: params}, nil
}

type cachingPrepared struct {
	c      *Caching
	inner  PreparedQuery
	source string
	params []string
}

func (p *cachingPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *cachingPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *cachingPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	key := preparedKey('S', p.source, p.params, args)
	if res, ok := p.c.lookup(key); ok {
		return res, nil
	}
	res, err := p.inner.SelectCtx(ctx, args...)
	if err != nil {
		return nil, err
	}
	p.c.store(key, *res)
	out := *res
	return &out, nil
}

func (p *cachingPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	key := preparedKey('A', p.source, p.params, args)
	if res, ok := p.c.lookup(key); ok {
		return res.Ask, nil
	}
	ok, err := p.inner.AskCtx(ctx, args...)
	if err != nil {
		return false, err
	}
	p.c.store(key, sparql.Result{Ask: ok})
	return ok, nil
}

// CacheStats returns the decorator's own hit/miss/eviction counters.
func (c *Caching) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports how many results are currently cached.
func (c *Caching) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached result (counters keep running).
func (c *Caching) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order = list.New()
}

// Stats implements StatsReporter by delegating to the inner endpoint,
// so wrapping keeps the query accounting of the underlying service
// observable (a zero Stats is reported for non-reporting inners).
func (c *Caching) Stats() Stats {
	if sr, ok := c.inner.(StatsReporter); ok {
		return sr.Stats()
	}
	return Stats{}
}

// ResetStats implements StatsReporter.
func (c *Caching) ResetStats() {
	if sr, ok := c.inner.(StatsReporter); ok {
		sr.ResetStats()
	}
}

var (
	_ Endpoint      = (*Caching)(nil)
	_ StatsReporter = (*Caching)(nil)
)
