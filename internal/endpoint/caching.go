package endpoint

import (
	"container/list"
	"context"
	"sync"

	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// DefaultCacheSize is the LRU bound used when NewCaching is given a
// non-positive capacity.
const DefaultCacheSize = 4096

// CacheStats counts a Caching decorator's activity.
type CacheStats struct {
	// Hits and Misses count lookups served from / past the cache.
	Hits, Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
}

// Caching decorates an Endpoint with an LRU memo of successful SELECT
// and ASK results, keyed by the exact query text. Identical queries —
// the dominant traffic of a batch alignment, where many relations probe
// the same subjects and samples — reach the inner endpoint once.
//
// Errors are never cached, so quota rejections and transient failures
// are retried on the next call. Cached results are shared between
// callers: treat a returned Result's rows as read-only, exactly as with
// an undecorated endpoint.
//
// Caching assumes the inner endpoint answers a given query identically
// every time, which Local guarantees (its RAND() streams are derived
// per query text). It is safe for concurrent use; to also deduplicate
// concurrent identical misses, stack a Coalescing decorator on top.
type Caching struct {
	inner Endpoint
	max   int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	stats   CacheStats
}

type cacheEntry struct {
	key string
	res sparql.Result
	// complete marks a fully drained result. Streamed executions that
	// were closed early store their drained prefix with complete=false:
	// a later identical stream replays the prefix and only re-probes
	// the inner endpoint if its consumer pulls past it, while the
	// drain-everything paths (Select/Ask) treat prefixes as misses.
	complete bool
}

// NewCaching wraps inner with an LRU of at most maxEntries results
// (DefaultCacheSize when maxEntries <= 0).
func NewCaching(inner Endpoint, maxEntries int) *Caching {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Caching{
		inner:   inner,
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Name implements Endpoint.
func (c *Caching) Name() string { return c.inner.Name() }

// Select implements Endpoint.
func (c *Caching) Select(query string) (*sparql.Result, error) {
	return c.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (c *Caching) Ask(query string) (bool, error) {
	return c.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint.
func (c *Caching) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	if res, ok := c.lookup("S\x00" + query); ok {
		return res, nil
	}
	res, err := c.inner.SelectCtx(ctx, query)
	if err != nil {
		return nil, err
	}
	c.store("S\x00"+query, *res, true)
	out := *res
	return &out, nil
}

// AskCtx implements Endpoint.
func (c *Caching) AskCtx(ctx context.Context, query string) (bool, error) {
	if res, ok := c.lookup("A\x00" + query); ok {
		return res.Ask, nil
	}
	ok, err := c.inner.AskCtx(ctx, query)
	if err != nil {
		return false, err
	}
	c.store("A\x00"+query, sparql.Result{Ask: ok}, true)
	return ok, nil
}

// lookup returns a copy of the cached result and bumps its recency.
// Only complete results qualify — the drain-everything paths must never
// serve a stream's stored prefix.
func (c *Caching) lookup(key string) (*sparql.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok || !el.Value.(*cacheEntry).complete {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	return &res, true
}

// lookupPrefix returns the cached entry for a streamed execution: the
// drained prefix (possibly the complete result) to replay. The rows
// slice is shared read-only with the cache.
func (c *Caching) lookupPrefix(key string) (res sparql.Result, complete, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.stats.Misses++
		return sparql.Result{}, false, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.res, e.complete, true
}

// store inserts a successful result, evicting the least recently used
// entry past the bound. An existing entry is only ever upgraded — to a
// complete result, or to a longer drained prefix — never replaced by
// less data; the inner endpoint answers identical queries identically,
// so concurrent stores agree on every shared row.
func (c *Caching) store(key string, res sparql.Result, complete bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.complete || (!complete && len(res.Rows) <= len(e.res.Rows)) {
			c.order.MoveToFront(el)
			return
		}
		e.res, e.complete = res, complete
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res, complete: complete})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Prepare implements Endpoint: prepared executions flow through the
// same LRU, keyed by template, parameter order and rendered arguments,
// so identical prepared probes — from any handle or pipeline stage
// sharing the template — reach the inner endpoint once. (Text queries
// keep their own keys: a text probe and its prepared equivalent are
// cached independently.)
func (c *Caching) Prepare(template string, params ...string) (PreparedQuery, error) {
	inner, err := c.inner.Prepare(template, params...)
	if err != nil {
		return nil, err
	}
	return &cachingPrepared{c: c, inner: inner, source: template, params: params}, nil
}

type cachingPrepared struct {
	c      *Caching
	inner  PreparedQuery
	source string
	params []string
}

func (p *cachingPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *cachingPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *cachingPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	key := preparedKey('S', p.c.inner.Name(), p.source, p.params, args)
	if res, ok := p.c.lookup(key); ok {
		return res, nil
	}
	res, err := p.inner.SelectCtx(ctx, args...)
	if err != nil {
		return nil, err
	}
	p.c.store(key, *res, true)
	out := *res
	return &out, nil
}

func (p *cachingPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	key := preparedKey('A', p.c.inner.Name(), p.source, p.params, args)
	if res, ok := p.c.lookup(key); ok {
		return res.Ask, nil
	}
	ok, err := p.inner.AskCtx(ctx, args...)
	if err != nil {
		return false, err
	}
	p.c.store(key, sparql.Result{Ask: ok}, true)
	return ok, nil
}

// Stream implements PreparedQuery with prefix-aware caching. A complete
// cached result replays from memory. A cached prefix — stored by an
// earlier identical stream that was closed early — replays without
// touching the inner endpoint, and only if the consumer pulls past it
// does the stream re-issue the inner query, fast-forward over the
// prefix (the inner endpoint answers identically every time), and
// continue. Whatever this stream drains is stored back, upgrading the
// entry: repeated identical probes that stop at the same point never
// reach the inner endpoint again.
func (p *cachingPrepared) Stream(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	key := preparedKey('S', p.c.inner.Name(), p.source, p.params, args)
	if res, complete, ok := p.c.lookupPrefix(key); ok {
		if complete {
			return newReplayRows(&res), nil
		}
		return &cachingRows{
			c: p.c, key: key, vars: res.Vars, prefix: res.Rows,
			open: func() (Rows, error) { return p.inner.Stream(ctx, args...) },
		}, nil
	}
	inner, err := p.inner.Stream(ctx, args...)
	if err != nil {
		return nil, err
	}
	return &cachingRows{c: p.c, key: key, vars: inner.Vars(), inner: inner}, nil
}

// cachingRows tees a streamed execution into the cache: it replays the
// stored prefix first, continues from the inner endpoint on demand, and
// stores the drained prefix (complete, when exhausted) on finish.
type cachingRows struct {
	c      *Caching
	key    string
	vars   []string
	prefix [][]rdf.Term // cached rows to replay before touching inner
	pos    int
	drain  [][]rdf.Term // rows observed by this stream, prefix included
	inner  Rows
	open   func() (Rows, error) // lazily opens the continuation
	row    []rdf.Term
	err    error
	trunc  bool
	done   bool
}

func (r *cachingRows) Vars() []string  { return r.vars }
func (r *cachingRows) Row() []rdf.Term { return r.row }
func (r *cachingRows) Err() error      { return r.err }
func (r *cachingRows) Truncated() bool { return r.trunc }

func (r *cachingRows) Next() bool {
	if r.done {
		return false
	}
	if r.pos < len(r.prefix) {
		r.row = r.prefix[r.pos]
		r.pos++
		return true
	}
	if r.inner == nil {
		if r.open == nil || !r.openContinuation() {
			return false
		}
	}
	if !r.inner.Next() {
		r.err = r.inner.Err()
		r.trunc = r.inner.Truncated()
		r.finish(r.err == nil)
		return false
	}
	r.row = r.inner.Row()
	r.drain = append(r.drain, r.row)
	r.pos++
	return true
}

// openContinuation re-issues the inner stream and fast-forwards over
// the already-replayed prefix.
func (r *cachingRows) openContinuation() bool {
	inner, err := r.open()
	if err != nil {
		r.err = err
		r.finish(false)
		return false
	}
	r.inner = inner
	r.drain = append(make([][]rdf.Term, 0, len(r.prefix)+8), r.prefix...)
	for i := 0; i < len(r.prefix); i++ {
		if !inner.Next() {
			// the inner result ended inside the cached prefix — it must
			// have been produced by a different endpoint state; end the
			// stream without storing anything.
			r.err = inner.Err()
			r.drain = nil
			r.finish(false)
			return false
		}
	}
	return true
}

func (r *cachingRows) Close() {
	if !r.done {
		r.finish(false)
	}
}

// finish closes the continuation and stores this stream's drained rows:
// the complete result when the inner stream was exhausted cleanly, the
// prefix otherwise. Errored streams store nothing new.
func (r *cachingRows) finish(complete bool) {
	if r.done {
		return
	}
	r.done = true
	r.row = nil
	if r.inner != nil {
		r.inner.Close()
	}
	if r.err == nil && (len(r.drain) > 0 || complete) {
		r.c.store(r.key, sparql.Result{Vars: r.vars, Rows: r.drain, Truncated: r.trunc}, complete)
	}
}

var _ Rows = (*cachingRows)(nil)

// CacheStats returns the decorator's own hit/miss/eviction counters.
func (c *Caching) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports how many results are currently cached.
func (c *Caching) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached result (counters keep running).
func (c *Caching) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order = list.New()
}

// Stats implements StatsReporter by delegating to the inner endpoint,
// so wrapping keeps the query accounting of the underlying service
// observable (a zero Stats is reported for non-reporting inners).
func (c *Caching) Stats() Stats {
	if sr, ok := c.inner.(StatsReporter); ok {
		return sr.Stats()
	}
	return Stats{}
}

// ResetStats implements StatsReporter.
func (c *Caching) ResetStats() {
	if sr, ok := c.inner.(StatsReporter); ok {
		sr.ResetStats()
	}
}

var (
	_ Endpoint      = (*Caching)(nil)
	_ StatsReporter = (*Caching)(nil)
)
