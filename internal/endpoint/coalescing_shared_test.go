package endpoint

import (
	"sync"
	"testing"

	"sofya/internal/kb"
	"sofya/internal/sparql"
)

// Two endpoints with different data behind one shared coalescer: the
// same query text must never cross-answer between them, because flight
// keys carry the endpoint name. Before the name was part of the key,
// concurrent identical texts against different endpoints could collapse
// into one flight and hand one endpoint's rows to the other's caller.
func TestCoalescingSharedAcrossEndpoints(t *testing.T) {
	mk := func(name, obj string) *Local {
		k := kb.New(name)
		k.AddIRIs("http://x/s", "http://x/p", obj)
		return NewLocal(k, 1)
	}
	a := mk("kb-a", "http://x/oa")
	b := mk("kb-b", "http://x/ob")

	shared := NewCoalescing(a)
	ca, cb := shared, shared.For(b)
	if ca.Name() != "kb-a" || cb.Name() != "kb-b" {
		t.Fatalf("names = %q, %q", ca.Name(), cb.Name())
	}

	const query = "SELECT ?o WHERE { <http://x/s> <http://x/p> ?o }"
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, 2*rounds)
	check := func(c *Coalescing, want string) {
		defer wg.Done()
		res, err := c.Select(query)
		if err != nil {
			errs <- err
			return
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Value != want {
			errs <- errWrongRows(c.Name(), res)
		}
	}
	for i := 0; i < rounds; i++ {
		wg.Add(2)
		go check(ca, "http://x/oa")
		go check(cb, "http://x/ob")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Prepared handles over the shared core stay separated too.
	pa, err := ca.Prepare("SELECT ?o WHERE { $s <http://x/p> ?o }", "s")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := cb.Prepare("SELECT ?o WHERE { $s <http://x/p> ?o }", "s")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := pa.Select(sparql.IRIArg("http://x/s"))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := pb.Select(sparql.IRIArg("http://x/s"))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Rows[0][0].Value != "http://x/oa" || rb.Rows[0][0].Value != "http://x/ob" {
		t.Fatalf("prepared cross-answer: a=%v b=%v", ra.Rows[0][0], rb.Rows[0][0])
	}
}

type wrongRowsError struct {
	name string
	res  *sparql.Result
}

func errWrongRows(name string, res *sparql.Result) error {
	return &wrongRowsError{name: name, res: res}
}

func (e *wrongRowsError) Error() string {
	return "endpoint " + e.name + " answered with foreign rows"
}
