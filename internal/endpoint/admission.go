package endpoint

import (
	"context"
	"sync"
	"time"

	"sofya/internal/sparql"
)

// ErrOverloaded is returned when admission control sheds a request:
// the endpoint is saturated and the bounded wait queue is full (or the
// wait timed out). It satisfies errors.Is(err, ErrQuotaExceeded) — both
// travel as HTTP 429, and callers that treat quota rejections as
// terminal handle sheds identically — but unlike a quota rejection a
// shed is Retriable: the quota is a property of the query session
// (every replica would answer the same), while overload is a property
// of the machine that answered, and another replica of the same shard
// may well have capacity.
var ErrOverloaded error = overloadedError{}

type overloadedError struct{}

func (overloadedError) Error() string {
	return "endpoint: overloaded: request shed by admission control"
}

func (overloadedError) Is(target error) bool { return target == ErrQuotaExceeded }

// Limits configures an Admission decorator. The zero value admits
// everything (useful for flag plumbing and transparency tests).
type Limits struct {
	// MaxInFlight is the number of queries allowed to execute inside
	// the endpoint concurrently; <= 0 means unlimited (the decorator
	// only counts traffic). A streamed execution holds its slot until
	// the stream is closed or exhausted — an open stream pins endpoint
	// resources exactly like a running query.
	MaxInFlight int
	// Queue is how many callers may wait for a slot once MaxInFlight
	// is reached; a caller beyond that is shed immediately with
	// ErrOverloaded. 0 means no waiting: saturated is shed.
	Queue int
	// QueueTimeout bounds how long a queued caller waits before it is
	// shed; <= 0 waits until a slot frees or the caller's context ends.
	QueueTimeout time.Duration
}

// AdmissionStats counts an Admission decorator's activity.
type AdmissionStats struct {
	// Admitted counts calls that acquired a slot (Queued of them after
	// a wait). Sheds are split by cause: the queue bound or the queue
	// timeout. InFlight and Waiting are current gauges.
	Admitted      uint64
	Queued        uint64
	ShedQueueFull uint64
	ShedTimeout   uint64
	InFlight      int
	Waiting       int
}

// Shed is the total number of requests rejected with ErrOverloaded.
func (s AdmissionStats) Shed() uint64 { return s.ShedQueueFull + s.ShedTimeout }

// Admission decorates an Endpoint with load shedding: a max-in-flight
// semaphore and a bounded, time-limited wait queue. Excess load is
// rejected immediately with ErrOverloaded instead of queueing without
// bound — under overload the endpoint keeps answering the work it
// admits at its capacity's latency, and everything else fails fast so
// the caller (a hedged cluster client, a retrying user) can go
// elsewhere. This is the protection per-query Quotas cannot give: a
// quota bounds one session's total demand, admission bounds the
// instantaneous concurrency of all sessions together.
//
// The decorator composes like Caching and Coalescing: it is safe for
// concurrent use, delegates Stats to the inner endpoint, and with
// unlimited Limits it is byte-transparent. Admission should sit
// outermost when stacked over Caching/Coalescing, so cache hits and
// coalesced followers are not charged a slot... or innermost, so they
// are; outermost-by-default is what cmd/sparqld does, wrapping the
// whole serving stack.
type Admission struct {
	inner Endpoint
	lim   Limits
	sem   chan struct{} // cap MaxInFlight; nil = unlimited

	mu      sync.Mutex
	waiting int
	stats   AdmissionStats
}

// NewAdmission wraps inner with admission limits.
func NewAdmission(inner Endpoint, lim Limits) *Admission {
	a := &Admission{inner: inner, lim: lim}
	if lim.MaxInFlight > 0 {
		a.sem = make(chan struct{}, lim.MaxInFlight)
	}
	return a
}

// AdmissionStats returns the decorator's own admission counters.
func (a *Admission) AdmissionStats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.InFlight = len(a.sem)
	st.Waiting = a.waiting
	return st
}

// releaseFunc frees an acquired slot; it is idempotent.
type releaseFunc func()

func noRelease() {}

// acquire admits one call: immediately when a slot is free, after a
// bounded wait when the queue has room, with ErrOverloaded otherwise.
// ctx ending while queued returns ctx.Err() — the caller gave up, it
// was not shed.
func (a *Admission) acquire(ctx context.Context) (releaseFunc, error) {
	if a.sem == nil {
		a.mu.Lock()
		a.stats.Admitted++
		a.mu.Unlock()
		return noRelease, nil
	}
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.stats.Admitted++
		a.mu.Unlock()
		return a.releaser(), nil
	default:
	}
	// Saturated: join the bounded queue or shed.
	a.mu.Lock()
	if a.waiting >= a.lim.Queue {
		a.stats.ShedQueueFull++
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	a.waiting++
	a.mu.Unlock()

	var timeout <-chan time.Time
	if a.lim.QueueTimeout > 0 {
		t := time.NewTimer(a.lim.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.waiting--
		a.stats.Admitted++
		a.stats.Queued++
		a.mu.Unlock()
		return a.releaser(), nil
	case <-timeout:
		a.mu.Lock()
		a.waiting--
		a.stats.ShedTimeout++
		a.mu.Unlock()
		return nil, ErrOverloaded
	case <-ctx.Done():
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (a *Admission) releaser() releaseFunc {
	var once sync.Once
	return func() { once.Do(func() { <-a.sem }) }
}

// Name implements Endpoint.
func (a *Admission) Name() string { return a.inner.Name() }

// Select implements Endpoint.
func (a *Admission) Select(query string) (*sparql.Result, error) {
	return a.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (a *Admission) Ask(query string) (bool, error) {
	return a.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint, holding an admission slot for the
// duration of the inner call.
func (a *Admission) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	release, err := a.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return a.inner.SelectCtx(ctx, query)
}

// AskCtx implements Endpoint.
func (a *Admission) AskCtx(ctx context.Context, query string) (bool, error) {
	release, err := a.acquire(ctx)
	if err != nil {
		return false, err
	}
	defer release()
	return a.inner.AskCtx(ctx, query)
}

// Prepare implements Endpoint: preparation itself is not admitted (it
// touches no data), every execution of the handle is.
func (a *Admission) Prepare(template string, params ...string) (PreparedQuery, error) {
	inner, err := a.inner.Prepare(template, params...)
	if err != nil {
		return nil, err
	}
	return &admissionPrepared{a: a, inner: inner}, nil
}

// Stats implements StatsReporter by delegation, like the other
// decorators: sheds never reach the inner endpoint, so its Denied
// counter reflects quota rejections only; AdmissionStats counts sheds.
func (a *Admission) Stats() Stats {
	if sr, ok := a.inner.(StatsReporter); ok {
		return sr.Stats()
	}
	return Stats{}
}

// ResetStats implements StatsReporter.
func (a *Admission) ResetStats() {
	if sr, ok := a.inner.(StatsReporter); ok {
		sr.ResetStats()
	}
}

// admissionPrepared admits each execution of a prepared handle.
type admissionPrepared struct {
	a     *Admission
	inner PreparedQuery
}

func (p *admissionPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *admissionPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *admissionPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	release, err := p.a.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return p.inner.SelectCtx(ctx, args...)
}

func (p *admissionPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	release, err := p.a.acquire(ctx)
	if err != nil {
		return false, err
	}
	defer release()
	return p.inner.AskCtx(ctx, args...)
}

// Stream implements PreparedQuery: the slot is held until the returned
// stream is closed or exhausted, so an open stream counts against
// MaxInFlight like a running query.
func (p *admissionPrepared) Stream(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	return p.stream(ctx, func() (Rows, error) { return p.inner.Stream(ctx, args...) })
}

// StreamBorrowed implements StreamBorrower by delegation, preserving
// the merge layer's zero-copy path through the decorator.
func (p *admissionPrepared) StreamBorrowed(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	return p.stream(ctx, func() (Rows, error) { return StreamBorrowed(ctx, p.inner, args...) })
}

// StreamKeyed implements KeyedStreamer by delegation, so attached
// ORDER BY keys survive an admission layer below a federation merge.
func (p *admissionPrepared) StreamKeyed(ctx context.Context, orderText string, args ...sparql.Arg) (Rows, error) {
	return p.stream(ctx, func() (Rows, error) { return StreamKeyed(ctx, p.inner, orderText, args...) })
}

func (p *admissionPrepared) stream(ctx context.Context, open func() (Rows, error)) (Rows, error) {
	release, err := p.a.acquire(ctx)
	if err != nil {
		return nil, err
	}
	rows, err := open()
	if err != nil {
		release()
		return nil, err
	}
	return &admissionRows{Rows: rows, release: release}, nil
}

// admissionRows ties an admission slot to a stream's lifetime.
type admissionRows struct {
	Rows
	release releaseFunc
}

func (r *admissionRows) Next() bool {
	ok := r.Rows.Next()
	if !ok {
		r.release()
	}
	return ok
}

func (r *admissionRows) Close() {
	r.Rows.Close()
	r.release()
}

// AttachedKeys forwards the inner stream's attached ORDER BY keys (nil
// when the inner stream carries none).
func (r *admissionRows) AttachedKeys() []int {
	if kr, ok := r.Rows.(KeyedRows); ok {
		return kr.AttachedKeys()
	}
	return nil
}

// RowKeys forwards the inner stream's current row keys.
func (r *admissionRows) RowKeys() []sparql.Value {
	if kr, ok := r.Rows.(KeyedRows); ok {
		return kr.RowKeys()
	}
	return nil
}

var (
	_ Endpoint       = (*Admission)(nil)
	_ StatsReporter  = (*Admission)(nil)
	_ PreparedQuery  = (*admissionPrepared)(nil)
	_ StreamBorrower = (*admissionPrepared)(nil)
	_ KeyedStreamer  = (*admissionPrepared)(nil)
	_ KeyedRows      = (*admissionRows)(nil)
)
