package endpoint

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// wire_test.go covers the batch-framed stream protocol: value codec,
// frame granularity (one flush per batch — the round-trip budget), and
// behind-the-wire ORDER BY key attachment.

func TestWireValueRoundTrip(t *testing.T) {
	vals := []sparql.Value{
		sparql.BoolValue(true),
		sparql.BoolValue(false),
		sparql.NumValue(3.25),
		sparql.NumValue(0),
		sparql.StrValue("hello"),
		sparql.StrValue(""),
		sparql.TermValue(rdf.NewIRI("http://x/a")),
		sparql.TermValue(rdf.NewLangLiteral("Ay", "en")),
		sparql.TermValue(rdf.NewTypedLiteral("1999", rdf.XSDGYear)),
		sparql.ErrValue(),
	}
	for i, v := range vals {
		got, err := valueFromWire(valueToWire(v))
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if c, ok := sparql.OrderValues(v, got); ok && c != 0 {
			t.Errorf("value %d changed across the wire", i)
		}
		if vw := valueToWire(v); vw.K != valueToWire(got).K {
			t.Errorf("value %d changed kind across the wire: %q vs %q", i, vw.K, valueToWire(got).K)
		}
	}
	if _, err := valueFromWire(wireValue{K: "?"}); err == nil {
		t.Error("unknown value kind was accepted")
	}
}

// flushCountingWriter wraps a ResponseWriter and counts Flush calls —
// each flush is one wire write the client pays one network read for,
// so flushes bound the protocol's round trips.
type flushCountingWriter struct {
	http.ResponseWriter
	mu      *sync.Mutex
	flushes *int
}

func (w *flushCountingWriter) Flush() {
	w.mu.Lock()
	*w.flushes++
	w.mu.Unlock()
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestWireBatchRoundTrips is the acceptance check for the framing
// budget: streaming R rows costs head + ceil(R/64) row frames + end —
// at most 2 flushes per 64-row batch window, never one per row.
func TestWireBatchRoundTrips(t *testing.T) {
	const rows = 256
	local := NewLocal(bigKB(rows), 1)
	inner := NewServer(local)
	var mu sync.Mutex
	flushes := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(&flushCountingWriter{ResponseWriter: w, mu: &mu, flushes: &flushes}, r)
	}))
	defer srv.Close()
	client := NewClient("wire", srv.URL, nil)

	pq, err := client.Prepare("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for stream.Next() {
		n++
	}
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	if n != rows {
		t.Fatalf("streamed %d rows, want %d", n, rows)
	}

	mu.Lock()
	got := flushes
	mu.Unlock()
	windows := (rows + WireBatch - 1) / WireBatch
	budget := 2 * windows
	if got > budget {
		t.Fatalf("%d flushes for %d rows — exceeds 2 per %d-row batch window (budget %d)", got, rows, WireBatch, budget)
	}
	if got < windows {
		t.Fatalf("only %d flushes for %d batch windows — frames are not being flushed individually", got, windows)
	}
}

// TestWireStreamMatchesLocal: the framed stream must be byte-identical
// to the in-process stream, truncation flag included.
func TestWireStreamMatchesLocal(t *testing.T) {
	k := bigKB(100)
	const seed = 3
	remote := NewLocal(k, seed)
	srv := httptest.NewServer(NewServer(remote))
	defer srv.Close()
	client := NewClient("wire", srv.URL, nil)
	local := NewLocal(k, seed)

	const tmpl = "SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY RAND() LIMIT $n"
	cq, err := client.Prepare(tmpl, "n")
	if err != nil {
		t.Fatal(err)
	}
	lq, err := local.Prepare(tmpl, "n")
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 7, 100} {
		cs, err := cq.Stream(context.Background(), sparql.IntArg(limit))
		if err != nil {
			t.Fatal(err)
		}
		ls, err := lq.Stream(context.Background(), sparql.IntArg(limit))
		if err != nil {
			t.Fatal(err)
		}
		for ls.Next() {
			if !cs.Next() {
				t.Fatalf("limit %d: wire stream ended early", limit)
			}
			lr, cr := ls.Row(), cs.Row()
			for i := range lr {
				if lr[i] != cr[i] {
					t.Fatalf("limit %d: row differs over the wire: %v vs %v", limit, cr, lr)
				}
			}
		}
		if cs.Next() {
			t.Fatalf("limit %d: wire stream has extra rows", limit)
		}
		if ls.Err() != nil || cs.Err() != nil {
			t.Fatalf("limit %d: errs %v / %v", limit, ls.Err(), cs.Err())
		}
		if ls.Truncated() != cs.Truncated() {
			t.Fatalf("limit %d: truncation flag diverges", limit)
		}
		ls.Close()
		cs.Close()
	}
}

// TestWireTruncationPropagates: a row-capped server marks the end frame
// and the client surfaces Truncated.
func TestWireTruncationPropagates(t *testing.T) {
	remote := NewLocalRestricted(bigKB(50), 1, Quota{MaxRows: 10})
	srv := httptest.NewServer(NewServer(remote))
	defer srv.Close()
	client := NewClient("wire", srv.URL, nil)
	pq, err := client.Prepare("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	n := 0
	for stream.Next() {
		n++
	}
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("row-capped stream yielded %d rows, want 10", n)
	}
	if !stream.Truncated() {
		t.Fatal("truncation flag lost across the wire")
	}
}

// TestWireKeyedStream: StreamKeyed ships deterministic ORDER BY key
// values with the rows; RAND keys are never shipped.
func TestWireKeyedStream(t *testing.T) {
	local := NewLocal(bigKB(30), 1)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()
	client := NewClient("wire", srv.URL, nil)

	// The stripped enumeration of an ORDER BY ?o query: the pushdown
	// form streams unordered, the orderspec names the keys.
	pq, err := client.Prepare("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }")
	if err != nil {
		t.Fatal(err)
	}
	orderspec := "SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY ?o LIMIT 5"
	rows, err := StreamKeyed(context.Background(), pq, orderspec)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	kr, ok := rows.(KeyedRows)
	if !ok {
		t.Fatal("wire stream does not implement KeyedRows")
	}
	if got := kr.AttachedKeys(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("attached keys = %v, want [0]", got)
	}
	for rows.Next() {
		keys := kr.RowKeys()
		if len(keys) != 1 {
			t.Fatalf("row carries %d keys, want 1", len(keys))
		}
		// The shipped key must equal the key evaluated locally: ?o is
		// the row's second column.
		want := sparql.TermValue(rows.Row()[1])
		if c, ok := sparql.OrderValues(keys[0], want); !ok || c != 0 {
			t.Fatalf("shipped key %v does not match row term %v", keys[0], rows.Row()[1])
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}

	// RAND keys stay merge-side: an ORDER BY RAND() orderspec attaches
	// nothing.
	randSpec := "SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY RAND() LIMIT 5"
	rrows, err := StreamKeyed(context.Background(), pq, randSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer rrows.Close()
	if kr, ok := rrows.(KeyedRows); ok && len(kr.AttachedKeys()) != 0 {
		t.Fatalf("RAND key was shipped over the wire: %v", kr.AttachedKeys())
	}
}

// TestWireBadOrderspec: an unparseable orderspec is a 400, not a
// silent unkeyed stream.
func TestWireBadOrderspec(t *testing.T) {
	local := NewLocal(testKB(), 1)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()
	client := NewClient("wire", srv.URL, nil)
	pq, err := client.Prepare("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StreamKeyed(context.Background(), pq, "NOT SPARQL AT ALL"); err == nil {
		t.Fatal("malformed orderspec was accepted")
	}
}

// TestWirePlainResultsFallback: a server that answers a stream request
// with a plain JSON document (an older build) is drained and replayed.
func TestWirePlainResultsFallback(t *testing.T) {
	local := NewLocal(testKB(), 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Ignore the stream flag: answer like a pre-streaming server.
		res, err := local.Select(r.FormValue("query"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body, _ := MarshalSelect(res)
		w.Header().Set("Content-Type", ResultsContentType)
		w.Write(body)
	}))
	defer srv.Close()
	client := NewClient("old", srv.URL, nil)
	pq, err := client.Prepare("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fallback stream yielded %d rows, want 3", n)
	}
}
