package endpoint

import (
	"context"
	"sync/atomic"

	"sofya/internal/flight"
	"sofya/internal/sparql"
)

// Coalescing decorates an Endpoint by singleflighting identical
// in-flight queries: when several goroutines issue the same query text
// concurrently, one probe reaches the inner endpoint and every caller
// receives its result. Together with Caching underneath it gives a
// batch of concurrent aligners exactly-once endpoint traffic per
// distinct query.
//
// Unlike Caching it remembers nothing: once a query completes, the next
// identical call probes again. The shared probe is detached from every
// individual caller's context (context.WithoutCancel), so one caller's
// cancellation or deadline never poisons the others: each caller stops
// waiting when its own context ends, while the probe runs to completion
// for whoever remains. Results are shared between coalesced callers —
// treat rows as read-only, as with any endpoint.
type Coalescing struct {
	inner     Endpoint
	sel       flight.Group[string, *sparql.Result]
	ask       flight.Group[string, bool]
	coalesced atomic.Int64
}

// NewCoalescing wraps inner with in-flight query deduplication.
func NewCoalescing(inner Endpoint) *Coalescing {
	return &Coalescing{inner: inner}
}

// Name implements Endpoint.
func (c *Coalescing) Name() string { return c.inner.Name() }

// Select implements Endpoint.
func (c *Coalescing) Select(query string) (*sparql.Result, error) {
	return c.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (c *Coalescing) Ask(query string) (bool, error) {
	return c.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint.
func (c *Coalescing) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	res, err, shared := c.sel.DoCtx(ctx, query, func() (*sparql.Result, error) {
		return c.inner.SelectCtx(context.WithoutCancel(ctx), query)
	})
	if shared {
		c.coalesced.Add(1)
	}
	if err != nil {
		return nil, err
	}
	out := *res
	return &out, nil
}

// AskCtx implements Endpoint.
func (c *Coalescing) AskCtx(ctx context.Context, query string) (bool, error) {
	ok, err, shared := c.ask.DoCtx(ctx, query, func() (bool, error) {
		return c.inner.AskCtx(context.WithoutCancel(ctx), query)
	})
	if shared {
		c.coalesced.Add(1)
	}
	return ok, err
}

// Prepare implements Endpoint: prepared executions singleflight on the
// template source plus rendered arguments, sharing the group with
// other prepared handles of the same template.
func (c *Coalescing) Prepare(template string, params ...string) (PreparedQuery, error) {
	inner, err := c.inner.Prepare(template, params...)
	if err != nil {
		return nil, err
	}
	return &coalescingPrepared{c: c, inner: inner, source: template, params: params}, nil
}

type coalescingPrepared struct {
	c      *Coalescing
	inner  PreparedQuery
	source string
	params []string
}

func (p *coalescingPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *coalescingPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *coalescingPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	key := preparedKey('S', p.source, p.params, args)
	res, err, shared := p.c.sel.DoCtx(ctx, key, func() (*sparql.Result, error) {
		return p.inner.SelectCtx(context.WithoutCancel(ctx), args...)
	})
	if shared {
		p.c.coalesced.Add(1)
	}
	if err != nil {
		return nil, err
	}
	out := *res
	return &out, nil
}

func (p *coalescingPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	key := preparedKey('A', p.source, p.params, args)
	ok, err, shared := p.c.ask.DoCtx(ctx, key, func() (bool, error) {
		return p.inner.AskCtx(context.WithoutCancel(ctx), args...)
	})
	if shared {
		p.c.coalesced.Add(1)
	}
	return ok, err
}

// Coalesced reports how many calls were served by another caller's
// in-flight query instead of probing the inner endpoint.
func (c *Coalescing) Coalesced() int64 { return c.coalesced.Load() }

// Stats implements StatsReporter by delegating to the inner endpoint.
func (c *Coalescing) Stats() Stats {
	if sr, ok := c.inner.(StatsReporter); ok {
		return sr.Stats()
	}
	return Stats{}
}

// ResetStats implements StatsReporter.
func (c *Coalescing) ResetStats() {
	if sr, ok := c.inner.(StatsReporter); ok {
		sr.ResetStats()
	}
}

var (
	_ Endpoint      = (*Coalescing)(nil)
	_ StatsReporter = (*Coalescing)(nil)
)
