package endpoint

import (
	"context"
	"sync"
	"sync/atomic"

	"sofya/internal/flight"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// Coalescing decorates an Endpoint by singleflighting identical
// in-flight queries: when several goroutines issue the same query text
// concurrently, one probe reaches the inner endpoint and every caller
// receives its result. Together with Caching underneath it gives a
// batch of concurrent aligners exactly-once endpoint traffic per
// distinct query.
//
// Flight keys include the inner endpoint's Name(), so one coalescer can
// be shared across endpoints (For) — the shards of a federation group,
// or a group and its inner endpoints — without a query against one
// endpoint answering the same text against another.
//
// Unlike Caching it remembers nothing: once a query completes, the next
// identical call probes again. The shared probe is detached from every
// individual caller's context (context.WithoutCancel), so one caller's
// cancellation or deadline never poisons the others: each caller stops
// waiting when its own context ends, while the probe runs to completion
// for whoever remains. Results are shared between coalesced callers —
// treat rows as read-only, as with any endpoint.
type Coalescing struct {
	inner Endpoint
	core  *coalesceCore
}

// coalesceCore is the in-flight state a family of Coalescing views
// shares: the drain-path singleflight groups and the shared streams.
type coalesceCore struct {
	sel       flight.Group[string, *sparql.Result]
	ask       flight.Group[string, bool]
	coalesced atomic.Int64

	// smu guards streams: the in-flight shared streams that coalesce
	// concurrent Stream calls of one prepared execution.
	smu     sync.Mutex
	streams map[string]*sharedStream
}

// NewCoalescing wraps inner with in-flight query deduplication.
func NewCoalescing(inner Endpoint) *Coalescing {
	return &Coalescing{inner: inner, core: &coalesceCore{streams: make(map[string]*sharedStream)}}
}

// For returns a view of this coalescer over a different inner endpoint.
// The views share one in-flight table; keys carry each endpoint's name,
// so identical query texts against different endpoints never coalesce
// with each other, while concurrent callers of the same endpoint do.
func (c *Coalescing) For(inner Endpoint) *Coalescing {
	return &Coalescing{inner: inner, core: c.core}
}

// textKey scopes a raw query text to the inner endpoint.
func (c *Coalescing) textKey(query string) string {
	return c.inner.Name() + "\x00" + query
}

// Name implements Endpoint.
func (c *Coalescing) Name() string { return c.inner.Name() }

// Select implements Endpoint.
func (c *Coalescing) Select(query string) (*sparql.Result, error) {
	return c.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (c *Coalescing) Ask(query string) (bool, error) {
	return c.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint.
func (c *Coalescing) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	res, err, shared := c.core.sel.DoCtx(ctx, c.textKey(query), func() (*sparql.Result, error) {
		return c.inner.SelectCtx(context.WithoutCancel(ctx), query)
	})
	if shared {
		c.core.coalesced.Add(1)
	}
	if err != nil {
		return nil, err
	}
	out := *res
	return &out, nil
}

// AskCtx implements Endpoint.
func (c *Coalescing) AskCtx(ctx context.Context, query string) (bool, error) {
	ok, err, shared := c.core.ask.DoCtx(ctx, c.textKey(query), func() (bool, error) {
		return c.inner.AskCtx(context.WithoutCancel(ctx), query)
	})
	if shared {
		c.core.coalesced.Add(1)
	}
	return ok, err
}

// Prepare implements Endpoint: prepared executions singleflight on the
// endpoint name, template source and rendered arguments, sharing the
// group with other prepared handles of the same template.
func (c *Coalescing) Prepare(template string, params ...string) (PreparedQuery, error) {
	inner, err := c.inner.Prepare(template, params...)
	if err != nil {
		return nil, err
	}
	return &coalescingPrepared{c: c, inner: inner, source: template, params: params}, nil
}

type coalescingPrepared struct {
	c      *Coalescing
	inner  PreparedQuery
	source string
	params []string
}

func (p *coalescingPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *coalescingPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *coalescingPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	key := preparedKey('S', p.c.inner.Name(), p.source, p.params, args)
	res, err, shared := p.c.core.sel.DoCtx(ctx, key, func() (*sparql.Result, error) {
		return p.inner.SelectCtx(context.WithoutCancel(ctx), args...)
	})
	if shared {
		p.c.core.coalesced.Add(1)
	}
	if err != nil {
		return nil, err
	}
	out := *res
	return &out, nil
}

func (p *coalescingPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	key := preparedKey('A', p.c.inner.Name(), p.source, p.params, args)
	ok, err, shared := p.c.core.ask.DoCtx(ctx, key, func() (bool, error) {
		return p.inner.AskCtx(context.WithoutCancel(ctx), args...)
	})
	if shared {
		p.c.core.coalesced.Add(1)
	}
	return ok, err
}

// Stream implements PreparedQuery by broadcasting one inner stream to
// every concurrent identical call: the first caller opens the inner
// stream, rows are buffered as whoever is furthest ahead pulls them,
// and joiners replay the buffered prefix before pulling new rows — so
// all waiters observe identical prefixes while the inner endpoint does
// the work once. The shared stream is detached from every caller's
// context; each consumer leaves by closing its own Rows, and the inner
// stream closes when the last consumer leaves (early, if none of them
// drained it). Like the drain paths, nothing is remembered: once the
// last consumer closes, the next identical call probes again.
func (p *coalescingPrepared) Stream(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	key := preparedKey('S', p.c.inner.Name(), p.source, p.params, args)
	core := p.c.core
	core.smu.Lock()
	if s, ok := core.streams[key]; ok {
		s.refs++
		core.smu.Unlock()
		core.coalesced.Add(1)
		return &sharedRows{s: s}, nil
	}
	s := newSharedStream(core, key)
	core.streams[key] = s
	core.smu.Unlock()

	inner, err := p.inner.Stream(context.WithoutCancel(ctx), args...)
	s.opened(inner, err)
	if err != nil {
		s.detach()
		return nil, err
	}
	return &sharedRows{s: s}, nil
}

// sharedStream is one in-flight streamed execution shared by all
// coalesced consumers: a grow-only row buffer fed from the inner stream
// by whichever consumer needs a row first.
type sharedStream struct {
	core *coalesceCore
	key  string

	mu        sync.Mutex
	cond      *sync.Cond
	inner     Rows
	vars      []string
	ready     bool // opened() ran (inner or error is set)
	producing bool // a consumer is pulling from inner outside mu
	buf       [][]rdf.Term
	done      bool
	err       error
	trunc     bool

	refs int // guarded by core.smu
}

func newSharedStream(core *coalesceCore, key string) *sharedStream {
	s := &sharedStream{core: core, key: key, refs: 1}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// opened publishes the inner stream (or the failure to open it) to
// every consumer that joined before the opener finished. A failed open
// is removed from the coalescing table immediately — joiners already
// attached observe the error, but new calls must re-probe the endpoint
// (errors are transient; the drain-path singleflight behaves the same).
func (s *sharedStream) opened(inner Rows, err error) {
	s.mu.Lock()
	if err != nil {
		s.done, s.err = true, err
	} else {
		s.inner = inner
		s.vars = inner.Vars()
	}
	s.ready = true
	s.mu.Unlock()
	s.cond.Broadcast()
	if err != nil {
		s.core.smu.Lock()
		if s.core.streams[s.key] == s {
			delete(s.core.streams, s.key)
		}
		s.core.smu.Unlock()
	}
}

// rowAt returns row i, producing from the inner stream as needed. Only
// one consumer produces at a time; the rest wait and replay.
func (s *sharedStream) rowAt(i int) ([]rdf.Term, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if i < len(s.buf) {
			return s.buf[i], true
		}
		if s.done {
			return nil, false
		}
		if !s.ready || s.producing {
			s.cond.Wait()
			continue
		}
		s.producing = true
		inner := s.inner
		s.mu.Unlock()
		ok := inner.Next()
		s.mu.Lock()
		s.producing = false
		if ok {
			s.buf = append(s.buf, inner.Row())
		} else {
			s.done = true
			s.err = inner.Err()
			s.trunc = inner.Truncated()
		}
		s.cond.Broadcast()
	}
}

// state returns the terminal state, valid once rowAt reported the end.
func (s *sharedStream) state() (err error, trunc bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err, s.trunc
}

// detach drops one consumer; the last one out closes the inner stream
// (aborting it early if nobody drained it) and removes the stream from
// the coalescing table, so the next identical call probes afresh. The
// delete is guarded: an errored stream may already have been replaced
// under the same key, and the replacement must not be removed.
func (s *sharedStream) detach() {
	s.core.smu.Lock()
	s.refs--
	last := s.refs == 0
	if last && s.core.streams[s.key] == s {
		delete(s.core.streams, s.key)
	}
	s.core.smu.Unlock()
	if last && s.inner != nil {
		s.inner.Close()
	}
}

// sharedRows is one consumer's cursor over a sharedStream.
type sharedRows struct {
	s        *sharedStream
	pos      int
	row      []rdf.Term
	err      error
	trunc    bool
	detached bool
}

func (r *sharedRows) Vars() []string {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.ready {
		s.cond.Wait()
	}
	return s.vars
}

func (r *sharedRows) Row() []rdf.Term { return r.row }
func (r *sharedRows) Err() error      { return r.err }
func (r *sharedRows) Truncated() bool { return r.trunc }

func (r *sharedRows) Next() bool {
	if r.detached {
		return false
	}
	row, ok := r.s.rowAt(r.pos)
	if !ok {
		r.err, r.trunc = r.s.state()
		r.row = nil
		r.detached = true
		r.s.detach()
		return false
	}
	r.pos++
	r.row = row
	return true
}

func (r *sharedRows) Close() {
	if r.detached {
		return
	}
	r.detached = true
	r.row = nil
	r.s.detach()
}

var _ Rows = (*sharedRows)(nil)

// Coalesced reports how many calls were served by another caller's
// in-flight query instead of probing an inner endpoint. Views created
// with For share the counter.
func (c *Coalescing) Coalesced() int64 { return c.core.coalesced.Load() }

// Stats implements StatsReporter by delegating to the inner endpoint.
func (c *Coalescing) Stats() Stats {
	if sr, ok := c.inner.(StatsReporter); ok {
		return sr.Stats()
	}
	return Stats{}
}

// ResetStats implements StatsReporter.
func (c *Coalescing) ResetStats() {
	if sr, ok := c.inner.(StatsReporter); ok {
		sr.ResetStats()
	}
}

var (
	_ Endpoint      = (*Coalescing)(nil)
	_ StatsReporter = (*Coalescing)(nil)
)
