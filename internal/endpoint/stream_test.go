package endpoint

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// bigKB builds a KB with one large predicate, for streams worth
// aborting early.
func bigKB(n int) *kb.KB {
	k := kb.New("big")
	for i := 0; i < n; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%04d", i), "http://x/p", fmt.Sprintf("http://x/o%04d", i))
	}
	return k
}

const tmplAll = "SELECT ?x ?y WHERE { ?x $r ?y }"

// drainRows drains a Rows stream, failing the test on error.
func drainRows(t *testing.T, rows Rows, err error) *sparql.Result {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	res := &sparql.Result{Vars: rows.Vars()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	res.Truncated = rows.Truncated()
	return res
}

// TestLocalStreamMatchesSelect: a drained prepared stream equals the
// prepared Select result byte for byte, and counts the same stats.
func TestLocalStreamMatchesSelect(t *testing.T) {
	ep := NewLocal(bigKB(100), 1)
	pq, err := ep.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Select(sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	got := drainRows(t, rows, err)
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("streamed %d rows, drained %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
	st := ep.Stats()
	if st.Queries != 2 || st.Rows != 200 {
		t.Fatalf("stats = %+v, want 2 queries / 200 rows", st)
	}
}

// TestLocalStreamEarlyCloseStats: closing a stream early charges only
// the rows actually pulled — the whole point of streaming the
// LIMIT-heavy probes.
func TestLocalStreamEarlyCloseStats(t *testing.T) {
	ep := NewLocal(bigKB(500), 1)
	pq, err := ep.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended at %d", i)
		}
	}
	rows.Close()
	rows.Close() // idempotent
	if st := ep.Stats(); st.Rows != 7 || st.Queries != 1 {
		t.Fatalf("stats = %+v, want 1 query / 7 rows", st)
	}
}

// TestLocalStreamRowCap: the quota's MaxRows caps a stream like a
// drained Select, flagging truncation and counting it once.
func TestLocalStreamRowCap(t *testing.T) {
	ep := NewLocalRestricted(bigKB(50), 1, Quota{MaxRows: 5})
	pq, err := ep.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	got := drainRows(t, rows, err)
	if len(got.Rows) != 5 || !got.Truncated {
		t.Fatalf("capped stream: %d rows, truncated=%v", len(got.Rows), got.Truncated)
	}
	if st := ep.Stats(); st.Truncations != 1 || st.Rows != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLocalStreamExactCapNotTruncated: a stream whose result has
// exactly MaxRows rows is not truncated — matching the drain path,
// which only truncates past the cap.
func TestLocalStreamExactCapNotTruncated(t *testing.T) {
	ep := NewLocalRestricted(bigKB(5), 1, Quota{MaxRows: 5})
	pq, err := ep.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Select(sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	got := drainRows(t, rows, err)
	if got.Truncated != want.Truncated || got.Truncated {
		t.Fatalf("exact-cap stream truncated=%v, drain truncated=%v, want both false",
			got.Truncated, want.Truncated)
	}
	if st := ep.Stats(); st.Truncations != 0 {
		t.Fatalf("stats = %+v, want no truncations", st)
	}
}

// TestTextPreparedStreamFallback: endpoints without a native stream
// (the HTTP client path) drain then iterate, byte-identically.
func TestTextPreparedStreamFallback(t *testing.T) {
	inner := NewLocal(testKB(), 1)
	pq, err := NewTextPrepared(inner, tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Select(sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	got := drainRows(t, rows, err)
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("fallback streamed %d rows, want %d", len(got.Rows), len(want.Rows))
	}
}

// TestCachingStreamPrefix: an early-closed stream stores its drained
// prefix; an identical stream replays it without touching the inner
// endpoint, and pulling past the prefix transparently re-probes and
// upgrades the entry to the complete result.
func TestCachingStreamPrefix(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(bigKB(40), 1)}
	c := NewCaching(inner, 0)
	pq, err := c.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	full, err := pq.Select(sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	if inner.selects.Load() != 1 {
		t.Fatalf("inner selects = %d", inner.selects.Load())
	}
	c.Purge()

	pull := func(n int) [][]rdf.Term {
		rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out [][]rdf.Term
		for len(out) < n && rows.Next() {
			out = append(out, rows.Row())
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// miss: stream 10 rows, close → prefix of 10 stored
	first := pull(10)
	if n := inner.selects.Load(); n != 2 {
		t.Fatalf("after prefix stream: inner selects = %d, want 2", n)
	}
	// replay within the prefix: inner untouched
	second := pull(10)
	if n := inner.selects.Load(); n != 2 {
		t.Fatalf("prefix replay touched inner: selects = %d, want 2", n)
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("replayed row %d differs", i)
			}
		}
	}
	// pulling past the prefix re-probes once and continues correctly
	third := pull(25)
	if n := inner.selects.Load(); n != 3 {
		t.Fatalf("prefix extension: inner selects = %d, want 3", n)
	}
	if len(third) != 25 {
		t.Fatalf("extended stream returned %d rows", len(third))
	}
	for i := range third {
		for j := range third[i] {
			if third[i][j] != full.Rows[i][j] {
				t.Fatalf("extended row %d differs from full drain", i)
			}
		}
	}
	// a full drain upgrades the entry to complete; the text Select path
	// keys differently, but an identical stream now replays completely
	_ = pull(1 << 20)
	if n := inner.selects.Load(); n != 4 {
		t.Fatalf("full stream drain: inner selects = %d, want 4", n)
	}
	_ = pull(1 << 20)
	if n := inner.selects.Load(); n != 4 {
		t.Fatalf("complete replay touched inner: selects = %d, want 4", n)
	}
}

// TestCachingStreamCompleteServesSelect: a stream drained to exhaustion
// stores a complete result that the drain path then serves from cache.
func TestCachingStreamCompleteServesSelect(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(bigKB(10), 1)}
	c := NewCaching(inner, 0)
	pq, err := c.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	streamed := drainRows(t, rows, err)
	if _, err := pq.Select(sparql.IRIArg("http://x/p")); err != nil {
		t.Fatal(err)
	}
	if n := inner.selects.Load(); n != 1 {
		t.Fatalf("drain after complete stream re-probed: selects = %d, want 1", n)
	}
	if len(streamed.Rows) != 10 {
		t.Fatalf("streamed %d rows", len(streamed.Rows))
	}
	// partial prefixes must never serve the drain path
	c.Purge()
	rows, err = pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	rows.Close()
	if _, err := pq.Select(sparql.IRIArg("http://x/p")); err != nil {
		t.Fatal(err)
	}
	if n := inner.selects.Load(); n != 3 {
		t.Fatalf("drain served a partial prefix: selects = %d, want 3", n)
	}
}

// TestCoalescingStreamBroadcast: concurrent identical prepared streams
// share one inner probe; every waiter — leader and joiners alike —
// replays the identical full row sequence. Run with -race.
func TestCoalescingStreamBroadcast(t *testing.T) {
	gate := make(chan struct{})
	inner := &gatedEndpoint{Local: NewLocal(bigKB(60), 1), gate: gate}
	co := NewCoalescing(inner)
	pq, err := co.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 6
	results := make([][][]rdf.Term, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
			if err != nil {
				errs[i] = err
				return
			}
			defer rows.Close()
			for rows.Next() {
				results[i] = append(results[i], rows.Row())
			}
			errs[i] = rows.Err()
		}(i)
	}
	started.Wait()
	close(gate) // release the single gated inner drain
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if len(results[i]) != 60 {
			t.Fatalf("waiter %d got %d rows, want 60", i, len(results[i]))
		}
		for r := range results[i] {
			for c := range results[i][r] {
				if results[i][r][c] != results[0][r][c] {
					t.Fatalf("waiter %d row %d differs from waiter 0", i, r)
				}
			}
		}
	}
	if n := inner.selects.Load(); n != 1 {
		t.Fatalf("inner selects = %d, want 1 (coalesced)", n)
	}
	if co.Coalesced() == 0 {
		t.Fatal("no calls were recorded as coalesced")
	}
	// once the last consumer left, the next stream probes afresh
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	res := drainRows(t, rows, err)
	if len(res.Rows) != 60 {
		t.Fatalf("fresh stream got %d rows", len(res.Rows))
	}
	if n := inner.selects.Load(); n != 2 {
		t.Fatalf("inner selects = %d, want 2 (no memory)", n)
	}
}

// TestCoalescingStreamErrorNotSticky: when opening the shared inner
// stream fails while a joiner is attached, the errored stream must
// leave the coalescing table immediately — later identical calls
// re-probe the endpoint instead of coalescing onto the stale error.
func TestCoalescingStreamErrorNotSticky(t *testing.T) {
	gate := make(chan struct{})
	local := NewLocalRestricted(bigKB(8), 1, Quota{MaxQueries: 1})
	inner := &gatedEndpoint{Local: local, gate: gate}
	co := NewCoalescing(inner)
	pq, err := co.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	// exhaust the query budget so the opener's drain will be denied
	go func() { gate <- struct{}{} }()
	if _, err := inner.Select(`SELECT ?x ?y WHERE { ?x <http://x/p> ?y }`); err != nil {
		t.Fatal(err)
	}

	openerErr := make(chan error, 1)
	go func() {
		_, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
		openerErr <- err
	}()
	// wait until the opener is blocked on the gate inside the drain
	for inner.selects.Load() != 2 {
	}
	// a joiner attaches to the in-flight stream and just sits on it
	joiner, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // release the opener into the quota denial
	if err := <-openerErr; err == nil {
		t.Fatal("opener should have failed on the exhausted quota")
	}
	if joiner.Next() {
		t.Fatal("joiner got rows from a failed open")
	}
	if joiner.Err() == nil {
		t.Fatal("joiner should observe the open error")
	}

	// with the budget lifted, the next identical call must re-probe —
	// not coalesce onto the errored stream the joiner still holds
	local.SetQuota(Quota{})
	done := make(chan *sparql.Result, 1)
	go func() {
		rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		res := &sparql.Result{}
		for rows.Next() {
			res.Rows = append(res.Rows, rows.Row())
		}
		rows.Close()
		done <- res
	}()
	gate <- struct{}{} // the fresh probe passes the gate
	res := <-done
	if res == nil || len(res.Rows) != 8 {
		t.Fatalf("fresh stream after lifting quota: %v", res)
	}
	joiner.Close()
}

// TestCoalescingStreamStaggeredJoin: a joiner that attaches after the
// leader pulled part of the stream replays the identical prefix from
// the shared buffer. Run with -race.
func TestCoalescingStreamStaggeredJoin(t *testing.T) {
	inner := NewLocal(bigKB(30), 1)
	co := NewCoalescing(inner)
	pq, err := co.Prepare(tmplAll, "r")
	if err != nil {
		t.Fatal(err)
	}
	leader, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	var lead [][]rdf.Term
	for i := 0; i < 12; i++ {
		if !leader.Next() {
			t.Fatalf("leader ended at %d", i)
		}
		lead = append(lead, leader.Row())
	}
	joiner, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if !joiner.Next() {
			t.Fatalf("joiner ended at %d", i)
		}
		for c := range joiner.Row() {
			if joiner.Row()[c] != lead[i][c] {
				t.Fatalf("joiner row %d differs from leader", i)
			}
		}
	}
	leader.Close()
	// the joiner outlives the leader and can still advance the stream
	n := 12
	for joiner.Next() {
		n++
	}
	if err := joiner.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("joiner drained %d rows, want 30", n)
	}
	joiner.Close()
	if st := inner.Stats(); st.Queries != 1 {
		t.Fatalf("inner queries = %d, want 1", st.Queries)
	}
}
