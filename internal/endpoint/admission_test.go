package endpoint

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sofya/internal/sparql"
)

// The decorator-transparency differential: an Admission-wrapped Local
// with unlimited limits answers byte-identically to the bare Local
// across the oracle shapes — text Select/Ask, prepared execution, and
// streams (drained and closed early) — exactly like Caching and
// Coalescing.
func TestAdmissionTransparent(t *testing.T) {
	for _, lim := range []Limits{
		{},                                     // unlimited: the no-semaphore fast path
		{MaxInFlight: 1 << 20, Queue: 1 << 20}, // huge: the semaphore path, never saturated
	} {
		bare := NewLocal(testKB(), 7)
		wrapped := NewAdmission(NewLocal(testKB(), 7), lim)

		shapes := []string{
			selP,
			selPX,
			`SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND() LIMIT 2`,
			`SELECT DISTINCT ?x WHERE { ?x <http://x/p> ?y }`,
		}
		for _, q := range shapes {
			want, err1 := bare.Select(q)
			got, err2 := wrapped.Select(q)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: errs %v %v", q, err1, err2)
			}
			if renderRes(want) != renderRes(got) {
				t.Fatalf("%s: wrapped result diverged", q)
			}
		}
		wantOK, _ := bare.Ask(askAB)
		gotOK, err := wrapped.Ask(askAB)
		if err != nil || wantOK != gotOK {
			t.Fatalf("ask diverged: %v %v %v", wantOK, gotOK, err)
		}

		// Prepared + streams, drained and early-closed.
		bp, err := bare.Prepare(selP)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := wrapped.Prepare(selP)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := bp.Select()
		got, err := wp.Select()
		if err != nil || renderRes(want) != renderRes(got) {
			t.Fatalf("prepared diverged: %v", err)
		}
		ws, err := wp.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var rows int
		for ws.Next() {
			rows++
		}
		ws.Close()
		if ws.Err() != nil || rows != len(want.Rows) {
			t.Fatalf("stream rows = %d err = %v", rows, ws.Err())
		}
		early, err := wp.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !early.Next() {
			t.Fatal("no first row")
		}
		early.Close()

		// Quota/stats accounting is the inner endpoint's, undisturbed.
		if wrapped.Stats().Queries == 0 {
			t.Fatal("delegated stats lost traffic")
		}
		st := wrapped.AdmissionStats()
		if st.Shed() != 0 || st.InFlight != 0 || st.Waiting != 0 {
			t.Fatalf("transparent run shed or leaked slots: %+v", st)
		}
	}
}

func renderRes(res *sparql.Result) string {
	var sb []byte
	for _, row := range res.Rows {
		for _, term := range row {
			sb = append(sb, term.String()...)
			sb = append(sb, '\t')
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}

// Saturation with no queue sheds immediately with ErrOverloaded, which
// is both quota-family (Is) and retriable — the two halves of the
// failover contract.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1), gate: make(chan struct{})}
	a := NewAdmission(inner, Limits{MaxInFlight: 1})

	started := make(chan struct{})
	holderErr := make(chan error, 1)
	go func() {
		close(started)
		_, err := a.Select(selP)
		holderErr <- err
	}()
	<-started
	waitForInflight(t, a, 1)

	_, err := a.Select(selPX)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("ErrOverloaded must be in the quota family")
	}
	if !Retriable(err) {
		t.Fatal("a shed must be retriable")
	}
	if Retriable(ErrQuotaExceeded) {
		t.Fatal("a plain quota rejection must stay terminal")
	}

	close(inner.gate)
	if err := <-holderErr; err != nil {
		t.Fatal(err)
	}
	st := a.AdmissionStats()
	if st.Admitted != 1 || st.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// waitForInflight spins until the decorator reports n slots held.
func waitForInflight(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.AdmissionStats().InFlight != n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached %d: %+v", n, a.AdmissionStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitForWaiting spins until n callers sit in the admission queue.
func waitForWaiting(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.AdmissionStats().Waiting != n {
		if time.Now().After(deadline) {
			t.Fatalf("waiting never reached %d: %+v", n, a.AdmissionStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// A queued caller is admitted when the holder finishes; a caller past
// the queue bound sheds; a queued caller whose wait exceeds the
// timeout sheds too — the three queue outcomes, deterministically.
func TestAdmissionQueueOutcomes(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1), gate: make(chan struct{})}
	a := NewAdmission(inner, Limits{MaxInFlight: 1, Queue: 1})

	holderErr := make(chan error, 1)
	go func() {
		_, err := a.Select(selP)
		holderErr <- err
	}()
	waitForInflight(t, a, 1)

	queuedErr := make(chan error, 1)
	go func() {
		_, err := a.Select(selPX)
		queuedErr <- err
	}()
	waitForWaiting(t, a, 1)

	// The queue is full: a third caller sheds immediately.
	if _, err := a.Select(askQ); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third caller: %v, want shed", err)
	}

	// Release the holder: the queued caller must be admitted.
	close(inner.gate)
	if err := <-holderErr; err != nil {
		t.Fatal(err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued caller not admitted: %v", err)
	}
	st := a.AdmissionStats()
	if st.Admitted != 2 || st.Queued != 1 || st.ShedQueueFull != 1 || st.ShedTimeout != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

const askQ = `ASK { <http://x/b> <http://x/p> <http://x/c> }`

// Queue timeout: a queued caller sheds once the timeout elapses even
// though the holder never releases; its context ending instead
// surfaces ctx.Err, not a shed.
func TestAdmissionQueueTimeoutAndContext(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1), gate: make(chan struct{})}
	defer close(inner.gate)
	a := NewAdmission(inner, Limits{MaxInFlight: 1, Queue: 2, QueueTimeout: 20 * time.Millisecond})

	go a.Select(selP) //nolint:errcheck — released by the deferred gate close
	waitForInflight(t, a, 1)

	start := time.Now()
	_, err := a.Select(selPX)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("timed-out caller: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond || d > time.Second {
		t.Fatalf("timeout fired after %v", d)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ctxErr := make(chan error, 1)
	go func() {
		_, err := a.SelectCtx(ctx, selPX)
		ctxErr <- err
	}()
	waitForWaiting(t, a, 1)
	cancel()
	if err := <-ctxErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v, want context.Canceled", err)
	}
	st := a.AdmissionStats()
	if st.ShedTimeout != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// A streamed execution holds its slot until the stream closes: while a
// stream is open the endpoint is saturated, and Close (mid-stream, or
// after exhaustion, idempotently) releases exactly one slot.
func TestAdmissionStreamHoldsSlotUntilClose(t *testing.T) {
	a := NewAdmission(NewLocal(testKB(), 1), Limits{MaxInFlight: 1})
	pq, err := a.Prepare(selP)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}
	if _, err := a.Select(selPX); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("open stream did not hold the slot: %v", err)
	}
	rows.Close()
	rows.Close() // idempotent: must not double-release
	if _, err := a.Select(selPX); err != nil {
		t.Fatalf("slot not released on Close: %v", err)
	}
	// Exhaustion releases too.
	rows, err = pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if _, err := a.Select(selPX); err != nil {
		t.Fatalf("slot not released on exhaustion: %v", err)
	}
	rows.Close()
	if st := a.AdmissionStats(); st.InFlight != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
}

// The -race workout: concurrent acquire/release through every method,
// queue timeouts racing releases during a drain, and Close mid-stream
// with admissions held. Counters must balance and no slot may leak.
func TestAdmissionConcurrentRace(t *testing.T) {
	a := NewAdmission(NewLocal(testKB(), 1), Limits{MaxInFlight: 2, Queue: 4, QueueTimeout: 2 * time.Millisecond})
	pq, err := a.Prepare(selP)
	if err != nil {
		t.Fatal(err)
	}
	var shed, ok, ctxDone atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			for j := 0; j < 50; j++ {
				var err error
				switch j % 4 {
				case 0:
					_, err = a.SelectCtx(ctx, selP)
				case 1:
					_, err = a.AskCtx(ctx, askAB)
				case 2:
					_, err = pq.SelectCtx(ctx)
				default:
					var rows Rows
					rows, err = pq.Stream(ctx)
					if err == nil {
						if j%8 == 3 {
							rows.Next() // Close mid-stream with the slot held
						} else {
							for rows.Next() {
							}
						}
						rows.Close()
					}
				}
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.Canceled):
					ctxDone.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := a.AdmissionStats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("leaked admissions: %+v", st)
	}
	if got := ok.Load() + shed.Load() + ctxDone.Load(); got != 8*50 {
		t.Fatalf("outcomes %d != calls %d", got, 8*50)
	}
	if uint64(ok.Load()) > st.Admitted {
		t.Fatalf("successes %d exceed admissions %d", ok.Load(), st.Admitted)
	}
	if uint64(shed.Load()) != st.Shed() {
		t.Fatalf("shed outcomes %d != shed stats %d", shed.Load(), st.Shed())
	}
}

// Shed responses travel HTTP faithfully: a saturated admission-wrapped
// server answers 429 with the overload marker, the client maps it back
// to ErrOverloaded (retriable), while a real quota rejection still
// maps to the terminal ErrQuotaExceeded.
func TestAdmissionShedOverHTTP(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1), gate: make(chan struct{})}
	a := NewAdmission(inner, Limits{MaxInFlight: 1})
	srv := httptest.NewServer(NewServerEndpoint(a))
	defer srv.Close()
	c := NewClient("test", srv.URL, srv.Client())

	holderErr := make(chan error, 1)
	go func() {
		_, err := c.Select(selP)
		holderErr <- err
	}()
	waitForInflight(t, a, 1)

	_, err := c.Select(selPX)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("client err = %v, want ErrOverloaded", err)
	}
	if !Retriable(err) {
		t.Fatal("client-side shed must be retriable")
	}
	if ok, err := c.Ask(askAB); ok || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("ask shed = %v, %v", ok, err)
	}
	// The streamed path sheds identically (shed happens at open).
	pq, err := c.Prepare(selP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Stream(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("stream shed = %v", err)
	}

	close(inner.gate)
	if err := <-holderErr; err != nil {
		t.Fatal(err)
	}

	// Contrast: a quota rejection is 429 without the marker → terminal.
	q := NewLocalRestricted(testKB(), 1, Quota{MaxQueries: 0})
	q.SetQuota(Quota{MaxQueries: 1})
	qsrv := httptest.NewServer(NewServer(q))
	defer qsrv.Close()
	qc := NewClient("test", qsrv.URL, qsrv.Client())
	if _, err := qc.Select(selP); err != nil {
		t.Fatal(err)
	}
	_, err = qc.Select(selPX)
	if !errors.Is(err, ErrQuotaExceeded) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("quota err = %v", err)
	}
	if Retriable(err) {
		t.Fatal("quota rejection must stay terminal over HTTP")
	}
}

// BenchmarkAdmissionAcquire prices the decorator on the hot path: the
// same parallel ASK storm against the bare Local and against an
// admission gate that never saturates — the delta is acquire/release.
func BenchmarkAdmissionAcquire(b *testing.B) {
	run := func(b *testing.B, ep Endpoint) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := ep.Ask(askAB); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("bare", func(b *testing.B) { run(b, NewLocal(testKB(), 1)) })
	b.Run("admitted", func(b *testing.B) {
		run(b, NewAdmission(NewLocal(testKB(), 1), Limits{MaxInFlight: 64, Queue: 64}))
	})
}
