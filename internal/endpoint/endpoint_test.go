package endpoint

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

func testKB() *kb.KB {
	k := kb.New("test")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/c")
	k.AddIRIs("http://x/b", "http://x/p", "http://x/c")
	k.Add(rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/name"), rdf.NewLangLiteral("Ay", "en")))
	k.Add(rdf.NewTriple(rdf.NewIRI("http://x/b"), rdf.NewIRI("http://x/year"), rdf.NewTypedLiteral("1999", rdf.XSDGYear)))
	return k
}

func TestLocalSelectAndAsk(t *testing.T) {
	ep := NewLocal(testKB(), 1)
	res, err := ep.Select(`SELECT ?x ?y WHERE { ?x <http://x/p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	ok, err := ep.Ask(`ASK { <http://x/a> <http://x/p> <http://x/b> }`)
	if err != nil || !ok {
		t.Fatalf("ask = %v, %v", ok, err)
	}
	st := ep.Stats()
	if st.Queries != 2 || st.Rows != 3 {
		t.Fatalf("stats = %+v", st)
	}
	ep.ResetStats()
	if ep.Stats().Queries != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestLocalFormMismatch(t *testing.T) {
	ep := NewLocal(testKB(), 1)
	if _, err := ep.Select(`ASK { ?x <http://x/p> ?y }`); err == nil {
		t.Fatal("Select accepted an ASK query")
	}
	if _, err := ep.Ask(`SELECT ?x WHERE { ?x <http://x/p> ?y }`); err == nil {
		t.Fatal("Ask accepted a SELECT query")
	}
}

func TestLocalParseErrorPropagates(t *testing.T) {
	ep := NewLocal(testKB(), 1)
	if _, err := ep.Select(`SELEC ?x`); err == nil {
		t.Fatal("want parse error")
	}
}

func TestQuotaMaxQueries(t *testing.T) {
	ep := NewLocalRestricted(testKB(), 1, Quota{MaxQueries: 2})
	for i := 0; i < 2; i++ {
		if _, err := ep.Select(`SELECT ?x WHERE { ?x <http://x/p> ?y }`); err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	_, err := ep.Select(`SELECT ?x WHERE { ?x <http://x/p> ?y }`)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
	if ep.Stats().Denied != 1 {
		t.Fatalf("stats = %+v", ep.Stats())
	}
}

func TestQuotaMaxRowsTruncates(t *testing.T) {
	ep := NewLocalRestricted(testKB(), 1, Quota{MaxRows: 2})
	res, err := ep.Select(`SELECT ?x ?y WHERE { ?x <http://x/p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !res.Truncated {
		t.Fatalf("rows=%d truncated=%v", len(res.Rows), res.Truncated)
	}
	if ep.Stats().Truncations != 1 {
		t.Fatalf("stats = %+v", ep.Stats())
	}
}

func TestMarshalUnmarshalSelectRoundTrip(t *testing.T) {
	res := &sparql.Result{
		Vars: []string{"x", "n"},
		Rows: [][]rdf.Term{
			{rdf.NewIRI("http://x/a"), rdf.NewLangLiteral("Ay", "en")},
			{rdf.NewBlank("b0"), rdf.NewTypedLiteral("1999", rdf.XSDGYear)},
			{rdf.NewIRI("http://x/b"), rdf.NewLiteral("plain")},
		},
		Truncated: true,
	}
	data, err := MarshalSelect(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResults(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Truncated {
		t.Fatal("Truncated flag lost")
	}
	if len(back.Rows) != 3 {
		t.Fatalf("rows = %d", len(back.Rows))
	}
	for i := range res.Rows {
		for j := range res.Vars {
			if back.Rows[i][j] != res.Rows[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, back.Rows[i][j], res.Rows[i][j])
			}
		}
	}
}

func TestUnmarshalAsk(t *testing.T) {
	data, err := MarshalAsk(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := UnmarshalResults(data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask {
		t.Fatal("Ask lost")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalResults([]byte(`{bad json`)); err == nil {
		t.Fatal("want JSON error")
	}
	// unknown term type
	doc := `{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"martian","value":"v"}}]}}`
	if _, err := UnmarshalResults([]byte(doc)); err == nil {
		t.Fatal("want term type error")
	}
	// missing variable in binding
	doc = `{"head":{"vars":["x"]},"results":{"bindings":[{"y":{"type":"uri","value":"v"}}]}}`
	if _, err := UnmarshalResults([]byte(doc)); err == nil {
		t.Fatal("want missing-var error")
	}
}

func TestHTTPServerClientRoundTrip(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal(testKB(), 1)))
	defer srv.Close()
	c := NewClient("test", srv.URL, srv.Client())
	if c.Name() != "test" {
		t.Fatal("client name")
	}

	res, err := c.Select(`SELECT ?x ?y WHERE { ?x <http://x/p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// literals survive the wire
	res, err = c.Select(`SELECT ?n WHERE { <http://x/a> <http://x/name> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != rdf.NewLangLiteral("Ay", "en") {
		t.Fatalf("literal = %v", res.Rows[0][0])
	}
	ok, err := c.Ask(`ASK { <http://x/a> <http://x/p> <http://x/b> }`)
	if err != nil || !ok {
		t.Fatalf("ask = %v, %v", ok, err)
	}
}

func TestHTTPServerGet(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal(testKB(), 1)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?query=" + strings.ReplaceAll(
		`SELECT ?x WHERE { ?x <http://x/p> ?y }`, " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ResultsContentType {
		t.Fatalf("content type = %q", ct)
	}
}

func TestHTTPServerRawBody(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal(testKB(), 1)))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL, "application/sparql-query",
		strings.NewReader(`ASK { <http://x/a> <http://x/p> <http://x/b> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPServerErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocal(testKB(), 1)))
	defer srv.Close()

	// missing query
	resp, _ := srv.Client().Get(srv.URL)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// parse error
	resp, _ = srv.Client().PostForm(srv.URL, map[string][]string{"query": {"SELEC bad"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// bad method
	req, _ := http.NewRequest(http.MethodDelete, srv.URL, nil)
	resp, _ = srv.Client().Do(req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method: status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPQuotaSurfacesAsTooManyRequests(t *testing.T) {
	local := NewLocalRestricted(testKB(), 1, Quota{MaxQueries: 1})
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()
	c := NewClient("test", srv.URL, srv.Client())
	if _, err := c.Select(`SELECT ?x WHERE { ?x <http://x/p> ?y }`); err != nil {
		t.Fatal(err)
	}
	_, err := c.Select(`SELECT ?x WHERE { ?x <http://x/p> ?y }`)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded over HTTP, got %v", err)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("dead", "http://127.0.0.1:1/sparql", nil)
	if _, err := c.Select(`SELECT ?x WHERE { ?x <http://x/p> ?y }`); err == nil {
		t.Fatal("want connection error")
	}
}
