package endpoint

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"sofya/internal/sparql"
)

// ResultsContentType is the media type of the SPARQL results JSON format.
const ResultsContentType = "application/sparql-results+json"

// Server exposes an endpoint over the SPARQL 1.1 protocol:
// GET  /sparql?query=...          (query in the URL)
// POST /sparql with form field "query" or a raw application/sparql-query
// body.
type Server struct {
	local Endpoint
}

// NewServer wraps a Local endpoint for HTTP serving.
func NewServer(local *Local) *Server { return &Server{local: local} }

// NewServerEndpoint wraps any Endpoint — a sharded federation group, a
// decorated stack — for HTTP serving.
func NewServerEndpoint(ep Endpoint) *Server { return &Server{local: ep} }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	query, err := extractQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var body []byte
	switch q.Form {
	case sparql.AskForm:
		ok, err := s.local.Ask(query)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		body, err = MarshalAsk(ok)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	default:
		res, err := s.local.Select(query)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		body, err = MarshalSelect(res)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", ResultsContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQuotaExceeded) {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", errors.New("endpoint: missing query parameter")
		}
		return q, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				return "", err
			}
			return string(b), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", err
		}
		q := r.PostForm.Get("query")
		if q == "" {
			return "", errors.New("endpoint: missing query form field")
		}
		return q, nil
	default:
		return "", fmt.Errorf("endpoint: method %s not allowed", r.Method)
	}
}

// Client is an Endpoint backed by a remote SPARQL HTTP service.
type Client struct {
	name    string
	baseURL string
	httpc   *http.Client
}

// NewClient builds a client for the service at baseURL (e.g.
// "http://host:port/sparql"). If httpc is nil, http.DefaultClient is used.
func NewClient(name, baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{name: name, baseURL: baseURL, httpc: httpc}
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.name }

func (c *Client) roundTrip(ctx context.Context, query string) (*sparql.Result, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return UnmarshalResults(body)
	case http.StatusTooManyRequests:
		return nil, ErrQuotaExceeded
	default:
		return nil, fmt.Errorf("endpoint: %s: HTTP %d: %s", c.baseURL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// Select implements Endpoint.
func (c *Client) Select(query string) (*sparql.Result, error) {
	return c.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (c *Client) Ask(query string) (bool, error) {
	return c.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint; the context cancels the HTTP exchange.
func (c *Client) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	return c.roundTrip(ctx, query)
}

// AskCtx implements Endpoint.
func (c *Client) AskCtx(ctx context.Context, query string) (bool, error) {
	res, err := c.roundTrip(ctx, query)
	if err != nil {
		return false, err
	}
	return res.Ask, nil
}

// Prepare implements Endpoint by text interpolation: each execution
// renders the template to canonical query text and sends it over the
// wire. A Local server on the far side derives RAND() streams from
// that canonical text, so remote prepared results match in-process
// prepared results byte for byte.
func (c *Client) Prepare(template string, params ...string) (PreparedQuery, error) {
	return NewTextPrepared(c, template, params...)
}

var _ Endpoint = (*Client)(nil)
