package endpoint

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// ResultsContentType is the media type of the SPARQL results JSON format.
const ResultsContentType = "application/sparql-results+json"

// Server exposes an endpoint over the SPARQL 1.1 protocol:
// GET  /sparql?query=...          (query in the URL)
// POST /sparql with form field "query" or a raw application/sparql-query
// body.
//
// A request carrying stream=1 selects the batch-framed streaming
// response for SELECT queries (see wire.go): rows cross the wire in
// flushed frames of up to `batch` rows instead of one drained JSON
// document, and an orderspec field makes the server attach deterministic
// ORDER BY key values to every row.
type Server struct {
	local Endpoint
}

// NewServer wraps a Local endpoint for HTTP serving.
func NewServer(local *Local) *Server { return &Server{local: local} }

// NewServerEndpoint wraps any Endpoint — a sharded federation group, a
// decorated stack — for HTTP serving.
func NewServerEndpoint(ep Endpoint) *Server { return &Server{local: ep} }

// wireReq is one parsed protocol request.
type wireReq struct {
	query     string
	stream    bool
	batch     int    // requested rows per frame; 0 = server default
	orderspec string // original ordered query text for key attachment
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := extractQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(req.query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.stream && q.Form == sparql.SelectForm {
		s.serveStream(w, r, req)
		return
	}
	var body []byte
	switch q.Form {
	case sparql.AskForm:
		ok, err := s.local.AskCtx(r.Context(), req.query)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		body, err = MarshalAsk(ok)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	default:
		res, err := s.local.SelectCtx(r.Context(), req.query)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		body, err = MarshalSelect(res)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", ResultsContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// serveStream answers a stream=1 SELECT with batch frames. Errors
// before the first frame still use plain HTTP status codes; after it,
// they travel as terminal error frames.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, req *wireReq) {
	var keyIdx []int
	var keyEvals []func([]rdf.Term) sparql.Value
	if req.orderspec != "" {
		var err error
		keyIdx, keyEvals, err = orderKeyEvals(req.orderspec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	pq, err := s.local.Prepare(req.query)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	rows, err := pq.Stream(r.Context())
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeStream(w, rows, keyIdx, keyEvals, req.batch)
}

// OverloadedHeader marks a 429 as a load shed rather than a quota
// rejection: the server was saturated when this request arrived, and a
// retry — ideally on another replica — may succeed. Clients map a 429
// carrying it to ErrOverloaded (retriable) instead of ErrQuotaExceeded
// (terminal).
const OverloadedHeader = "X-Sofya-Overloaded"

func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) {
		w.Header().Set(OverloadedHeader, "1")
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	if errors.Is(err, ErrQuotaExceeded) {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// tooManyErr maps a 429 answer back to the error the server meant: a
// shed (ErrOverloaded, retriable) when the overload marker — the
// header, or "overloaded" in the body of a proxy that stripped it — is
// present, the terminal ErrQuotaExceeded otherwise.
func tooManyErr(resp *http.Response, body []byte) error {
	if resp.Header.Get(OverloadedHeader) != "" || strings.Contains(string(body), "overloaded") {
		return ErrOverloaded
	}
	return ErrQuotaExceeded
}

func extractQuery(r *http.Request) (*wireReq, error) {
	var get func(name string) string
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		get = q.Get
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				return nil, err
			}
			return &wireReq{query: string(b)}, nil
		}
		if err := r.ParseForm(); err != nil {
			return nil, err
		}
		get = r.PostForm.Get
	default:
		return nil, fmt.Errorf("endpoint: method %s not allowed", r.Method)
	}
	req := &wireReq{
		query:     get("query"),
		stream:    get("stream") == "1",
		orderspec: get("orderspec"),
	}
	if req.query == "" {
		return nil, errors.New("endpoint: missing query parameter")
	}
	if b := get("batch"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("endpoint: bad batch size %q", b)
		}
		req.batch = n
	}
	return req, nil
}

// StatusError is a non-200 answer from a remote endpoint: the HTTP
// status plus a bounded snippet of the response body, so a failure
// names its cause ("parse error at ...", a proxy's HTML error page)
// instead of a bare status code.
type StatusError struct {
	URL     string
	Code    int
	Snippet string
}

func (e *StatusError) Error() string {
	if e.Snippet == "" {
		return fmt.Sprintf("endpoint: %s: HTTP %d", e.URL, e.Code)
	}
	return fmt.Sprintf("endpoint: %s: HTTP %d: %s", e.URL, e.Code, e.Snippet)
}

// snippetLimit bounds how much of an error body travels in a
// StatusError.
const snippetLimit = 200

func bodySnippet(body []byte) string {
	s := strings.TrimSpace(string(body))
	if len(s) > snippetLimit {
		s = s[:snippetLimit] + "…"
	}
	return s
}

// Retriable reports whether an endpoint error is worth retrying on
// another replica of the same data: transport failures and 5xx answers
// are; semantic answers — quota rejections, parse errors and other 4xx,
// a caller's own context ending — are not (a replica would answer the
// same, or the caller asked to stop).
func Retriable(err error) bool {
	if err == nil {
		return false
	}
	// A shed is the one member of the quota family worth retrying: the
	// answering machine was saturated, not the query wrong — another
	// replica may have capacity. Checked before the quota test because
	// errors.Is(ErrOverloaded, ErrQuotaExceeded) holds.
	if errors.Is(err, ErrOverloaded) {
		return true
	}
	if errors.Is(err, ErrQuotaExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// defaultHTTPClient builds the client used when the caller passes none:
// unlike http.DefaultClient it bounds every phase that can hang — dial,
// TLS, response headers, idle pool — without a whole-request timeout,
// which would cut legitimate long streams.
func defaultHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   16,
		},
	}
}

// Client is an Endpoint backed by a remote SPARQL HTTP service.
type Client struct {
	name    string
	baseURL string
	httpc   *http.Client
	batch   int // requested stream frame size; 0 = server default
}

// NewClient builds a client for the service at baseURL (e.g.
// "http://host:port/sparql"). If httpc is nil, a client with bounded
// dial/TLS/header timeouts (and no whole-request timeout, so streams
// can run long) is used.
func NewClient(name, baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = defaultHTTPClient()
	}
	return &Client{name: name, baseURL: baseURL, httpc: httpc}
}

// Name implements Endpoint.
func (c *Client) Name() string { return c.name }

// SetWireBatch requests a specific rows-per-frame granularity for
// streamed queries (0 = the server's default, WireBatch). Smaller
// batches mean more round trips; the setting exists for the framing
// experiments, not for tuning down.
func (c *Client) SetWireBatch(n int) { c.batch = n }

func (c *Client) post(ctx context.Context, form url.Values) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	return c.httpc.Do(req)
}

func (c *Client) roundTrip(ctx context.Context, query string) (*sparql.Result, error) {
	resp, err := c.post(ctx, url.Values{"query": {query}})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return UnmarshalResults(body)
	case http.StatusTooManyRequests:
		return nil, tooManyErr(resp, body)
	default:
		return nil, &StatusError{URL: c.baseURL, Code: resp.StatusCode, Snippet: bodySnippet(body)}
	}
}

// openStream requests the batch-framed stream for a SELECT text. A
// server that answers with a plain JSON document (an older build, a
// generic SPARQL endpoint) is transparently drained and replayed.
func (c *Client) openStream(ctx context.Context, query, orderspec string) (Rows, error) {
	form := url.Values{"query": {query}, "stream": {"1"}}
	if c.batch > 0 {
		form.Set("batch", strconv.Itoa(c.batch))
	}
	if orderspec != "" {
		form.Set("orderspec", orderspec)
	}
	resp, err := c.post(ctx, form)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, tooManyErr(resp, body)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, &StatusError{URL: c.baseURL, Code: resp.StatusCode, Snippet: bodySnippet(body)}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, StreamContentType) {
		// Not a framed stream: drain the whole JSON answer and replay.
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		res, err := UnmarshalResults(body)
		if err != nil {
			return nil, err
		}
		return newReplayRows(res), nil
	}
	return newWireRows(resp.Body, nil)
}

// Select implements Endpoint.
func (c *Client) Select(query string) (*sparql.Result, error) {
	return c.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (c *Client) Ask(query string) (bool, error) {
	return c.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint; the context cancels the HTTP exchange.
func (c *Client) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	return c.roundTrip(ctx, query)
}

// AskCtx implements Endpoint.
func (c *Client) AskCtx(ctx context.Context, query string) (bool, error) {
	res, err := c.roundTrip(ctx, query)
	if err != nil {
		return false, err
	}
	return res.Ask, nil
}

// Prepare implements Endpoint by text interpolation: each execution
// renders the template to canonical query text and sends it over the
// wire. A Local server on the far side derives RAND() streams from
// that canonical text, so remote prepared results match in-process
// prepared results byte for byte. Streamed executions use the
// batch-framed wire protocol — rows cross the network once per frame,
// not per row — and attach ORDER BY keys when asked (StreamKeyed).
func (c *Client) Prepare(template string, params ...string) (PreparedQuery, error) {
	t, err := sparql.ParseTemplate(template, params...)
	if err != nil {
		return nil, err
	}
	return &clientPrepared{textPrepared: textPrepared{ep: c, tmpl: t}, c: c}, nil
}

// clientPrepared is the HTTP client's PreparedQuery: text interpolation
// for whole-result calls (one request, one JSON document), the framed
// wire stream for Stream/StreamKeyed.
type clientPrepared struct {
	textPrepared
	c *Client
}

// Stream overrides the drain-then-iterate fallback with the framed wire
// stream: rows arrive in batches as the consumer pulls, and closing the
// stream aborts the remote enumeration with the request context.
func (p *clientPrepared) Stream(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	text, err := p.tmpl.Text(args...)
	if err != nil {
		return nil, err
	}
	return p.c.openStream(ctx, text, "")
}

// StreamKeyed implements KeyedStreamer: the server evaluates the
// deterministic ORDER BY keys of orderText per row and ships the values
// with the frames.
func (p *clientPrepared) StreamKeyed(ctx context.Context, orderText string, args ...sparql.Arg) (Rows, error) {
	text, err := p.tmpl.Text(args...)
	if err != nil {
		return nil, err
	}
	return p.c.openStream(ctx, text, orderText)
}

var (
	_ Endpoint      = (*Client)(nil)
	_ PreparedQuery = (*clientPrepared)(nil)
	_ KeyedStreamer = (*clientPrepared)(nil)
)
