package endpoint

import (
	"context"
	"strings"

	"sofya/internal/sparql"
)

// PreparedQuery is a query template bound to an endpoint: parameters
// are filled per call, positionally, with sparql.Arg values. Against a
// Local endpoint a prepared query skips parsing, planning and text
// interpolation entirely; against a remote endpoint it falls back to
// rendering canonical query text. Either way the results — including
// ORDER BY RAND() streams — are byte-identical to sending the
// equivalent query text, so prepared and text traffic can be mixed
// freely.
//
// Implementations are safe for concurrent use.
type PreparedQuery interface {
	// Select executes the template as a SELECT query.
	Select(args ...sparql.Arg) (*sparql.Result, error)
	// SelectCtx is Select honoring ctx for cancellation and deadlines.
	SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error)
	// Ask executes the template as an ASK query.
	Ask(args ...sparql.Arg) (bool, error)
	// AskCtx is Ask honoring ctx.
	AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error)
	// Stream executes the template as a SELECT query returning rows on
	// demand. Draining the stream yields exactly the rows SelectCtx
	// would return, byte for byte; closing it early lets endpoints
	// abort the remaining work. ctx covers the stream's admission;
	// implementations without a native streaming path drain first and
	// replay. Callers must Close the returned Rows.
	Stream(ctx context.Context, args ...sparql.Arg) (Rows, error)
}

// StreamBorrower is an optional PreparedQuery extension for consumers
// that inspect each row once at a merge point and copy only the rows
// they keep (the federation's ordered merge). StreamBorrowed is Stream
// under a weaker row-lifetime contract: Row() may return a buffer that
// is reused on the next Next call, so the endpoint can skip per-row
// materialization entirely. Everything else — row order, RAND()
// pairing, errors, truncation — is byte-identical to Stream.
type StreamBorrower interface {
	StreamBorrowed(ctx context.Context, args ...sparql.Arg) (Rows, error)
}

// StreamBorrowed opens pq's borrowed-row stream when the implementation
// offers one, and falls back to the regular Stream otherwise — a stream
// whose rows remain valid trivially satisfies the weaker borrowed
// contract. Callers must treat every row as invalidated by Next.
func StreamBorrowed(ctx context.Context, pq PreparedQuery, args ...sparql.Arg) (Rows, error) {
	if b, ok := pq.(StreamBorrower); ok {
		return b.StreamBorrowed(ctx, args...)
	}
	return pq.Stream(ctx, args...)
}

// KeyedRows is a Rows whose rows arrive with pre-computed ORDER BY key
// values: AttachedKeys names the ORDER BY key indices that ride along,
// and RowKeys holds the current row's values in the same order (valid,
// like the row, only until the next Next on borrowed-contract streams).
// The federation's ordered merge consumes attached keys instead of
// re-evaluating key expressions per merged row — for a remote shard
// that moves the evaluation behind the wire, onto the shard's CPU.
type KeyedRows interface {
	Rows
	AttachedKeys() []int
	RowKeys() []sparql.Value
}

// KeyedStreamer is an optional PreparedQuery extension: StreamKeyed is
// StreamBorrowed with deterministic ORDER BY key values attached to
// every row, derived from orderText — the canonical text of the
// original ordered query whose stripped enumeration this stream is.
// Implementations that cannot attach keys simply don't implement it;
// the merge evaluates keys itself for those streams.
type KeyedStreamer interface {
	StreamKeyed(ctx context.Context, orderText string, args ...sparql.Arg) (Rows, error)
}

// StreamKeyed opens a keyed stream when pq offers one and falls back to
// the borrowed stream otherwise. Consumers must check per stream (via
// the KeyedRows interface) whether keys actually arrived.
func StreamKeyed(ctx context.Context, pq PreparedQuery, orderText string, args ...sparql.Arg) (Rows, error) {
	if ks, ok := pq.(KeyedStreamer); ok {
		return ks.StreamKeyed(ctx, orderText, args...)
	}
	return StreamBorrowed(ctx, pq, args...)
}

// preparedKey renders a stable cache/coalescing key for one execution
// of a prepared query: the endpoint name, the template source, its
// parameter declaration order, and the canonical argument renderings.
// Two prepared handles over the same endpoint, template and parameter
// list — even from different decorator instances or pipeline stages —
// collide on identical arguments; the parameter names keep handles that
// declare the same text with a different parameter order (different
// semantics) apart, and the endpoint name keeps identical templates
// against different endpoints (the shards of a federation group) from
// answering each other.
func preparedKey(form byte, name, source string, params []string, args []sparql.Arg) string {
	var sb strings.Builder
	sb.Grow(len(name) + len(source) + 16*(len(args)+len(params)) + 5)
	sb.WriteByte('P')
	sb.WriteByte(form)
	sb.WriteByte(0)
	sb.WriteString(name)
	sb.WriteByte(0)
	sb.WriteString(source)
	for _, p := range params {
		sb.WriteByte(0x1e)
		sb.WriteString(p)
	}
	for _, a := range args {
		sb.WriteByte(0x1f)
		sb.WriteString(a.Key())
	}
	return sb.String()
}

// localPrepared is Local's PreparedQuery: a compiled plan executed
// in-process under the endpoint's quota and statistics, exactly like a
// text query but with parse and plan cost paid once at Prepare.
type localPrepared struct {
	l    *Local
	plan *sparql.Prepared
}

func (p *localPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *localPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *localPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	if err := p.l.admitCtx(ctx); err != nil {
		return nil, err
	}
	if p.plan.Template().Form() != sparql.SelectForm {
		return nil, errNeedSelect
	}
	res, err := p.plan.Exec(args...)
	if err != nil {
		return nil, err
	}
	p.l.capAndCount(res)
	return res, nil
}

func (p *localPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	if err := p.l.admitCtx(ctx); err != nil {
		return false, err
	}
	if p.plan.Template().Form() != sparql.AskForm {
		return false, errNeedAsk
	}
	res, err := p.plan.Exec(args...)
	if err != nil {
		return false, err
	}
	return res.Ask, nil
}

// Stream implements PreparedQuery natively: the compiled plan's join
// tree produces rows as the caller pulls them, so an early Close stops
// the engine mid-join — the LIMIT-heavy probe sites stop paying for
// rows they discard. The execution is charged against the quota like
// any query; the row cap and row statistics apply to the rows actually
// pulled.
func (p *localPrepared) Stream(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	return p.stream(ctx, args, (*sparql.Prepared).Iter)
}

// StreamBorrowed implements StreamBorrower natively: the engine writes
// every row into one reused projection buffer (sparql.IterBorrowed), so
// a merge-point consumer pulls the whole enumeration without a single
// per-row allocation. Quota and statistics behave exactly like Stream.
func (p *localPrepared) StreamBorrowed(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	return p.stream(ctx, args, (*sparql.Prepared).IterBorrowed)
}

func (p *localPrepared) stream(ctx context.Context, args []sparql.Arg, iter func(*sparql.Prepared, ...sparql.Arg) (*sparql.RowIter, error)) (Rows, error) {
	if err := p.l.admitCtx(ctx); err != nil {
		return nil, err
	}
	if p.plan.Template().Form() != sparql.SelectForm {
		return nil, errNeedSelect
	}
	it, err := iter(p.plan, args...)
	if err != nil {
		return nil, err
	}
	return &localRows{l: p.l, it: it, maxRows: p.l.maxRows()}, nil
}

// textPrepared renders the template to canonical query text per call
// and sends it through the endpoint's text methods — the fallback for
// endpoints without an in-process engine (the HTTP client, test
// doubles). Because the rendered text is canonical, a remote Local
// server derives the same RAND() stream the in-process fast path would.
type textPrepared struct {
	ep   Endpoint
	tmpl *sparql.Template
}

// NewTextPrepared builds a PreparedQuery over any Endpoint by text
// interpolation. Endpoint implementations without a native prepared
// path use it to satisfy Prepare.
func NewTextPrepared(ep Endpoint, template string, params ...string) (PreparedQuery, error) {
	t, err := sparql.ParseTemplate(template, params...)
	if err != nil {
		return nil, err
	}
	return &textPrepared{ep: ep, tmpl: t}, nil
}

func (p *textPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *textPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *textPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	text, err := p.tmpl.Text(args...)
	if err != nil {
		return nil, err
	}
	return p.ep.SelectCtx(ctx, text)
}

func (p *textPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	text, err := p.tmpl.Text(args...)
	if err != nil {
		return false, err
	}
	return p.ep.AskCtx(ctx, text)
}

// Stream implements PreparedQuery by drain-then-iterate: endpoints
// without an in-process engine (the HTTP client, test doubles) answer
// whole results, so the stream replays a completed SelectCtx. Rows are
// byte-identical to the native streaming path; only the early-close
// saving is unavailable.
func (p *textPrepared) Stream(ctx context.Context, args ...sparql.Arg) (Rows, error) {
	res, err := p.SelectCtx(ctx, args...)
	if err != nil {
		return nil, err
	}
	return newReplayRows(res), nil
}

var (
	_ PreparedQuery  = (*localPrepared)(nil)
	_ StreamBorrower = (*localPrepared)(nil)
	_ PreparedQuery  = (*textPrepared)(nil)
)
