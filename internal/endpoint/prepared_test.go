package endpoint

import (
	"net/http/httptest"
	"testing"
	"time"

	"sofya/internal/sparql"
)

const sampleTmpl = "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n"

// TestLocalPreparedMatchesText: the prepared fast path returns
// byte-identical results to the equivalent text query, RAND() stream
// included, and charges quota and statistics the same way.
func TestLocalPreparedMatchesText(t *testing.T) {
	epText := NewLocal(testKB(), 7)
	epPrep := NewLocal(testKB(), 7)

	want, err := epText.Select(
		`SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND() LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := epPrep.Prepare(sampleTmpl, "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	got, err := pq.Select(sparql.IRIArg("http://x/p"), sparql.IntArg(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Rows[i][j] != got.Rows[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], want.Rows[i])
			}
		}
	}
	ts, ps := epText.Stats(), epPrep.Stats()
	if ts != ps {
		t.Fatalf("stats diverge: text %+v, prepared %+v", ts, ps)
	}
}

func TestLocalPreparedQuotaAndRowCap(t *testing.T) {
	ep := NewLocalRestricted(testKB(), 1, Quota{MaxQueries: 2, MaxRows: 1})
	pq, err := ep.Prepare("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Select(sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Truncated {
		t.Fatalf("row cap not applied: %d rows, truncated=%v", len(res.Rows), res.Truncated)
	}
	if _, err := pq.Select(sparql.IRIArg("http://x/p")); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Select(sparql.IRIArg("http://x/p")); err != ErrQuotaExceeded {
		t.Fatalf("err = %v, want quota exceeded", err)
	}
	if st := ep.Stats(); st.Queries != 2 || st.Denied != 1 || st.Truncations != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLocalPreparedFormMismatch(t *testing.T) {
	ep := NewLocal(testKB(), 1)
	pq, err := ep.Prepare("SELECT ?y WHERE { $s <http://x/p> ?y }", "s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Ask(sparql.IRIArg("http://x/a")); err == nil {
		t.Fatal("Ask on a SELECT template should fail")
	}
	apq, err := ep.Prepare("ASK { $s <http://x/p> $o }", "s", "o")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := apq.Ask(sparql.IRIArg("http://x/a"), sparql.IRIArg("http://x/b"))
	if err != nil || !ok {
		t.Fatalf("ASK = %v, %v", ok, err)
	}
	if _, err := apq.Select(sparql.IRIArg("http://x/a"), sparql.IRIArg("http://x/b")); err == nil {
		t.Fatal("Select on an ASK template should fail")
	}
}

// TestCachingPrepared: identical prepared executions hit the LRU;
// different arguments miss it.
func TestCachingPrepared(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1)}
	c := NewCaching(inner, 0)
	pq, err := c.Prepare("SELECT ?y WHERE { $s <http://x/p> ?y }", "s")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := pq.Select(sparql.IRIArg("http://x/a")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pq.Select(sparql.IRIArg("http://x/b")); err != nil {
		t.Fatal(err)
	}
	if st := c.CacheStats(); st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("cache stats = %+v", st)
	}
	if got := inner.Stats().Queries; got != 2 {
		t.Fatalf("inner queries = %d, want 2", got)
	}
}

// TestCoalescingPrepared: concurrent identical prepared executions
// share one probe.
func TestCoalescingPrepared(t *testing.T) {
	inner := &gatedEndpoint{Local: NewLocal(testKB(), 1), gate: make(chan struct{})}
	co := NewCoalescing(inner)
	pq, err := co.Prepare("SELECT ?y WHERE { $s <http://x/p> ?y }", "s")
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := pq.Select(sparql.IRIArg("http://x/a"))
			done <- err
		}()
	}
	key := preparedKey('S', co.Name(), "SELECT ?y WHERE { $s <http://x/p> ?y }", []string{"s"}, []sparql.Arg{sparql.IRIArg("http://x/a")})
	for inner.selects.Load() == 0 || co.core.sel.Waiting(key) < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if co.Coalesced() != n-1 {
		t.Fatalf("coalesced = %d, want %d", co.Coalesced(), n-1)
	}
}

// TestClientPreparedFallback: the HTTP client's text-interpolation
// fallback produces the same bytes as the in-process prepared path.
func TestClientPreparedFallback(t *testing.T) {
	local := NewLocal(testKB(), 7)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()
	client := NewClient("test", srv.URL, nil)

	cq, err := client.Prepare(sampleTmpl, "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	got, err := cq.Select(sparql.IRIArg("http://x/p"), sparql.IntArg(2))
	if err != nil {
		t.Fatal(err)
	}

	direct := NewLocal(testKB(), 7)
	dq, err := direct.Prepare(sampleTmpl, "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	want, err := dq.Select(sparql.IRIArg("http://x/p"), sparql.IntArg(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Rows[i][j] != got.Rows[i][j] {
				t.Fatalf("row %d differs over HTTP: %v vs %v", i, got.Rows[i], want.Rows[i])
			}
		}
	}
}
