package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sparql"
	"sofya/internal/synth"
)

// The restricted-group oracle: a row-capped Group must answer exactly
// like a row-capped unsharded Local — one cap for the whole answer
// (applied after ORDER BY, like the unsharded endpoint), not one per
// shard.
func TestGroupRowCapOracle(t *testing.T) {
	w := synth.Generate(synth.TinySpec())
	rel, _ := entityRelations(t, w)
	const seed, cap = 9, 7
	quota := endpoint.Quota{MaxRows: cap}
	local := endpoint.NewLocalRestricted(w.Yago, seed, quota)
	s, o := sampleFact(t, endpoint.NewLocal(w.Yago, seed), rel)

	queries := []string{
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y }", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND()", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 30", rel),
		fmt.Sprintf("SELECT ?p ?v WHERE { <%s> ?p ?v }", s),
		fmt.Sprintf("SELECT ?p WHERE { <%s> ?p <%s> }", s, o),
	}
	for _, k := range []int{2, 3} {
		g := PartitionedRestricted(w.Yago, k, seed, quota)
		for _, q := range queries {
			want, err := local.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.Select(q)
			if err != nil {
				t.Fatalf("k=%d %q: %v", k, q, err)
			}
			if renderResult(got) != renderResult(want) {
				t.Errorf("k=%d capped Select diverges for %q:\n--- sharded ---\n%s\n--- local ---\n%s",
					k, q, renderResult(got), renderResult(want))
			}
			if len(got.Rows) > cap {
				t.Errorf("k=%d %q returned %d rows over the %d-row cap", k, q, len(got.Rows), cap)
			}
		}
	}
}

// Routed streams respect the group row cap too.
func TestGroupRowCapRoutedStream(t *testing.T) {
	k := kb.New("capstream")
	for i := 0; i < 20; i++ {
		k.AddIRIs("http://x/s", "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	g := PartitionedRestricted(k, 2, 1, endpoint.Quota{MaxRows: 4})
	pq, err := g.Prepare("SELECT ?y WHERE { $x $r ?y }", "x", "r")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/s"), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if n != 4 || !rows.Truncated() {
		t.Fatalf("routed capped stream: %d rows, truncated=%v; want 4, true", n, rows.Truncated())
	}
	rows.Close()
}

// Cancelling the caller's context surfaces as the context error from
// every fan-out path — never as a clean partial result, a nil-row
// panic, or a definitive false ASK.
func TestGroupContextCancellation(t *testing.T) {
	k := kb.New("cancel")
	for i := 0; i < 30; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%d", i), "http://x/p", "http://x/o")
	}
	g := Partitioned(k, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := g.SelectCtx(ctx, "SELECT ?x ?y WHERE { ?x <http://x/p> ?y }"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fan-out Select returned %v, want context.Canceled", err)
	}
	if _, err := g.AskCtx(ctx, "ASK { ?x <http://x/p> ?y }"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fan-out Ask returned %v, want context.Canceled", err)
	}
	pq, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Stream(ctx, sparql.IRIArg("http://x/p")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fan-out Stream returned %v, want context.Canceled", err)
	}
}

// Hidden-subject unordered queries concatenate: the bag of rows is the
// whole KB's, deterministically ordered by shard — and the moment a
// LIMIT or OFFSET would turn that reordering into a different row set,
// the query is rejected instead.
func TestGroupConcatBagSemantics(t *testing.T) {
	k := kb.New("concat")
	for i := 0; i < 25; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%d", i), "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	local := endpoint.NewLocal(k, 1)
	g := Partitioned(k, 3, 1)

	const q = "SELECT ?y WHERE { ?x <http://x/p> ?y }" // subject not projected
	want, err := local.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	bag := func(res *sparql.Result) []string {
		out := make([]string, len(res.Rows))
		for i, row := range res.Rows {
			out[i] = rowKey(row)
		}
		sort.Strings(out)
		return out
	}
	wb, gb := bag(want), bag(got)
	if len(wb) != len(gb) {
		t.Fatalf("concat bag sizes differ: %d vs %d", len(gb), len(wb))
	}
	for i := range wb {
		if wb[i] != gb[i] {
			t.Fatalf("concat bags differ at %d: %q vs %q", i, gb[i], wb[i])
		}
	}

	for _, rejected := range []string{
		"SELECT ?y WHERE { ?x <http://x/p> ?y } LIMIT 5",
		"SELECT ?y WHERE { ?x <http://x/p> ?y } OFFSET 2",
	} {
		if _, err := g.Select(rejected); !errors.Is(err, ErrNotDecomposable) {
			t.Errorf("%q: err = %v, want ErrNotDecomposable", rejected, err)
		}
	}
}
