package shard

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sparql"
	"sofya/internal/synth"
)

// The parsed-vs-snapshot differential oracle: an endpoint (or shard
// group) over snapshot-loaded KBs must answer byte-identically to one
// over the KB that parsed the same N-Triples — Select, Ask, prepared
// streaming, ORDER BY RAND() probes — unsharded and at every shard
// count. This is the restart guarantee: a server standing back up from
// snapshot files is indistinguishable from one that re-parsed.

// parsedWorldKB reproduces the production load path: the synthetic
// world serialized to N-Triples and parsed back, so interning order is
// exactly what a `sparqld -kb yago.nt` run would see.
func parsedWorldKB(t testing.TB) *kb.KB {
	t.Helper()
	w := synth.Generate(synth.TinySpec())
	var buf bytes.Buffer
	if err := w.Yago.WriteNT(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := kb.Load(w.Yago.Name(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

// writeShardSnapshots partitions src and writes one snapshot per shard,
// returning the paths deliberately out of partition order (the loader
// must reorder by the recorded shard names).
func writeShardSnapshots(t *testing.T, src *kb.KB, n int, dir string) []string {
	t.Helper()
	paths := make([]string, 0, n)
	for i, sh := range kb.Partition(src, n) {
		p := filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.snap", i, n))
		if err := sh.WriteSnapshotFile(p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Reverse so the loader proves it orders by shard name, not by path.
	for i, j := 0, len(paths)-1; i < j; i, j = i+1, j-1 {
		paths[i], paths[j] = paths[j], paths[i]
	}
	return paths
}

func TestSnapshotGroupOracle(t *testing.T) {
	parsed := parsedWorldKB(t)
	const seed = 13
	local := endpoint.NewLocal(parsed, seed)

	w := synth.Generate(synth.TinySpec())
	rel, rel2 := entityRelations(t, w)
	s, o := sampleFact(t, local, rel)
	selects, asks := oracleQueries(rel, rel2, s, o)

	// Unsharded: a whole-KB snapshot served by a plain Local.
	wholePath := filepath.Join(t.TempDir(), "whole.snap")
	if err := parsed.WriteSnapshotFile(wholePath); err != nil {
		t.Fatal(err)
	}
	wholeKB, err := kb.OpenSnapshot(wholePath)
	if err != nil {
		t.Fatal(err)
	}
	defer wholeKB.Close()
	endpoints := map[string]endpoint.Endpoint{
		"snapshot-unsharded": endpoint.NewLocal(wholeKB, seed),
	}

	// Sharded: snapshot files reloaded into federation groups.
	for _, n := range oracleShardCounts {
		paths := writeShardSnapshots(t, parsed, n, t.TempDir())
		g, err := GroupFromSnapshots(seed, paths)
		if err != nil {
			t.Fatalf("GroupFromSnapshots n=%d: %v", n, err)
		}
		endpoints[fmt.Sprintf("snapshot-sharded-%d", n)] = g
	}

	for name, ep := range endpoints {
		for _, q := range selects {
			want, err := local.Select(q)
			if err != nil {
				t.Fatalf("local %q: %v", q, err)
			}
			got, err := ep.Select(q)
			if err != nil {
				t.Fatalf("%s %q: %v", name, q, err)
			}
			if renderResult(got) != renderResult(want) {
				t.Errorf("%s Select diverges for %q:\n--- snapshot ---\n%s\n--- parsed ---\n%s",
					name, q, renderResult(got), renderResult(want))
			}
		}
		for _, q := range asks {
			want, err := local.Ask(q)
			if err != nil {
				t.Fatalf("local %q: %v", q, err)
			}
			got, err := ep.Ask(q)
			if err != nil {
				t.Fatalf("%s %q: %v", name, q, err)
			}
			if got != want {
				t.Errorf("%s Ask(%q) = %v, want %v", name, q, got, want)
			}
		}
	}
}

func TestSnapshotGroupPreparedOracle(t *testing.T) {
	parsed := parsedWorldKB(t)
	const seed = 17
	local := endpoint.NewLocal(parsed, seed)
	w := synth.Generate(synth.TinySpec())
	rel, rel2 := entityRelations(t, w)
	s, o := sampleFact(t, local, rel)

	const (
		tmplSample  = "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n"
		tmplObjects = "SELECT ?y WHERE { $x $r ?y }"
		tmplPreds   = "SELECT ?p WHERE { $x ?p $y }"
	)
	type probe struct {
		tmpl   string
		params []string
		args   []sparql.Arg
	}
	probes := []probe{
		{tmplSample, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel), sparql.IntArg(5)}},
		{tmplSample, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel2), sparql.IntArg(300)}},
		{tmplObjects, []string{"x", "r"}, []sparql.Arg{sparql.IRIArg(s), sparql.IRIArg(rel)}},
		{tmplPreds, []string{"x", "y"}, []sparql.Arg{sparql.IRIArg(s), sparql.IRIArg(o)}},
	}

	for _, n := range oracleShardCounts {
		paths := writeShardSnapshots(t, parsed, n, t.TempDir())
		g, err := GroupFromSnapshots(seed, paths)
		if err != nil {
			t.Fatalf("GroupFromSnapshots n=%d: %v", n, err)
		}
		for pi, pr := range probes {
			lp, err := local.Prepare(pr.tmpl, pr.params...)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := g.Prepare(pr.tmpl, pr.params...)
			if err != nil {
				t.Fatalf("n=%d probe %d Prepare: %v", n, pi, err)
			}
			want, err := lp.Select(pr.args...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := gp.Select(pr.args...)
			if err != nil {
				t.Fatalf("n=%d probe %d Select: %v", n, pi, err)
			}
			if renderResult(got) != renderResult(want) {
				t.Errorf("n=%d probe %d prepared Select diverges:\n--- snapshot ---\n%s\n--- parsed ---\n%s",
					n, pi, renderResult(got), renderResult(want))
			}
			lr, err := lp.Stream(context.Background(), pr.args...)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := gp.Stream(context.Background(), pr.args...)
			if err != nil {
				t.Fatalf("n=%d probe %d Stream: %v", n, pi, err)
			}
			wantS, gotS := drainStream(t, lr), drainStream(t, gr)
			if renderResult(gotS) != renderResult(wantS) {
				t.Errorf("n=%d probe %d prepared Stream diverges:\n--- snapshot ---\n%s\n--- parsed ---\n%s",
					n, pi, renderResult(gotS), renderResult(wantS))
			}
		}
	}
}

func TestPartitionIndex(t *testing.T) {
	for _, tc := range []struct {
		name string
		i, n int
		ok   bool
	}{
		{"yago/shard-1-of-3", 1, 3, true},
		{"a/b/shard-0-of-7", 0, 7, true},
		{"yago", 0, 0, false},
		{"yago/shard-3-of-3", 0, 0, false}, // index out of range
		{"yago/shard-x-of-3", 0, 0, false},
	} {
		i, n, ok := PartitionIndex(tc.name)
		if ok != tc.ok || (ok && (i != tc.i || n != tc.n)) {
			t.Errorf("PartitionIndex(%q) = %d,%d,%v, want %d,%d,%v", tc.name, i, n, ok, tc.i, tc.n, tc.ok)
		}
	}
}

func TestGroupFromSnapshotsErrors(t *testing.T) {
	parsed := parsedWorldKB(t)
	dir := t.TempDir()
	paths := writeShardSnapshots(t, parsed, 3, dir)

	if _, err := GroupFromSnapshots(1, nil); err == nil {
		t.Error("no paths: want error")
	}
	if _, err := GroupFromSnapshots(1, paths[:2]); err == nil {
		t.Error("incomplete shard set: want error")
	}
	if _, err := GroupFromSnapshots(1, []string{paths[0], paths[0], paths[1]}); err == nil {
		t.Error("duplicate shard: want error")
	}
	whole := filepath.Join(dir, "whole.snap")
	if err := parsed.WriteSnapshotFile(whole); err != nil {
		t.Fatal(err)
	}
	if _, err := GroupFromSnapshots(1, []string{whole, paths[0]}); err == nil {
		t.Error("whole-KB snapshot mixed into a shard set: want error")
	}
	// A single whole-KB snapshot serves as a one-shard group.
	g, err := GroupFromSnapshots(1, []string{whole})
	if err != nil {
		t.Fatalf("single whole-KB snapshot: %v", err)
	}
	if got, want := g.Name(), parsed.Name(); got != want {
		t.Errorf("group name = %q, want %q", got, want)
	}
}
