//go:build !race

package shard

// raceEnabled mirrors alloc_guard_race_test.go for plain test binaries.
const raceEnabled = false
