package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sparql"
)

func raceKB(n int) *kb.KB {
	k := kb.New("race")
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("http://x/s%03d", i)
		k.AddIRIs(s, "http://x/p", fmt.Sprintf("http://x/o%d", i))
		k.AddIRIs(s, "http://x/q", fmt.Sprintf("http://x/v%d", i%7))
	}
	return k
}

// Concurrent fan-outs over one Group: mixed Select / Ask / Stream
// traffic, with streams closed mid-flight, must be race-free and
// deterministic per call.
func TestGroupConcurrentFanout(t *testing.T) {
	g := Partitioned(raceKB(120), 3, 1)
	local := endpoint.NewLocal(raceKB(120), 1)

	pq, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Select("SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND() LIMIT 9")
	if err != nil {
		t.Fatal(err)
	}
	wantText := renderResult(want)

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0: // prepared probe, full drain
				res, err := pq.Select(sparql.IRIArg("http://x/p"), sparql.IntArg(9))
				if err != nil {
					errs <- err
					return
				}
				if renderResult(res) != wantText {
					errs <- fmt.Errorf("worker %d: probe diverged", i)
				}
			case 1: // streamed fan-out, closed mid-flight
				rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"), sparql.IntArg(9))
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < 3 && rows.Next(); j++ {
				}
				rows.Close()
				if rows.Err() != nil {
					errs <- rows.Err()
				}
			default: // text traffic
				if _, err := g.Select("SELECT ?x ?y WHERE { ?x <http://x/q> ?y } LIMIT 5"); err != nil {
					errs <- err
					return
				}
				if _, err := g.Ask("ASK { ?x <http://x/p> ?y }"); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Concurrent unordered merge streams share nothing: each caller owns
// its shard streams, so interleaved pulls and early closes across
// goroutines stay independent.
func TestGroupConcurrentStreams(t *testing.T) {
	g := Partitioned(raceKB(200), 7, 1)
	pq, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
	if err != nil {
		t.Fatal(err)
	}
	var reference []string
	{
		rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
			reference = append(reference, rowKey(rows.Row()))
		}
		rows.Close()
	}

	const workers = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
			if err != nil {
				errs <- err
				return
			}
			defer rows.Close()
			stop := len(reference)
			if i%2 == 1 {
				stop = i * 3 // close early at staggered depths
			}
			for j := 0; j < stop && rows.Next(); j++ {
				if rowKey(rows.Row()) != reference[j] {
					errs <- fmt.Errorf("worker %d: row %d diverged", i, j)
					return
				}
			}
			if err := rows.Err(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
