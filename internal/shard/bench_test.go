package shard

import (
	"context"
	"fmt"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sparql"
)

func benchKB(n int) *kb.KB {
	k := kb.New("bench")
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("http://x/s%05d", i)
		k.AddIRIs(s, "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	return k
}

// BenchmarkShardedProbe compares the sampling probe (ORDER BY RAND()
// LIMIT k) on one Local endpoint against its fan-out over a shard
// Group: the sequential baseline vs the k-way merge with RAND
// reassembly. Outputs are byte-identical; the benchmark tracks the
// federation overhead.
func BenchmarkShardedProbe(b *testing.B) {
	const facts = 20000
	run := func(b *testing.B, ep endpoint.Endpoint) {
		pq, err := ep.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
		if err != nil {
			b.Fatal(err)
		}
		args := []sparql.Arg{sparql.IRIArg("http://x/p"), sparql.IntArg(10)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pq.Select(args...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) {
		run(b, endpoint.NewLocal(benchKB(facts), 1))
	})
	for _, n := range []int{2, 4, 7} {
		b.Run(fmt.Sprintf("fanout-%d", n), func(b *testing.B) {
			run(b, Partitioned(benchKB(facts), n, 1))
		})
	}
}

// BenchmarkShardedScan measures the unordered subject-merge stream
// against the sequential scan, early-closed after a fixed prefix.
func BenchmarkShardedScan(b *testing.B) {
	const facts = 20000
	run := func(b *testing.B, ep endpoint.Endpoint) {
		pq, err := ep.Prepare("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 50 && rows.Next(); j++ {
			}
			rows.Close()
		}
	}
	b.Run("seq", func(b *testing.B) {
		run(b, endpoint.NewLocal(benchKB(facts), 1))
	})
	b.Run("fanout-4", func(b *testing.B) {
		run(b, Partitioned(benchKB(facts), 4, 1))
	})
}
