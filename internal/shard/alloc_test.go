package shard

import (
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/sparql"
)

// alloc_test.go guards the O(k) claim of the streaming ordered merge
// with hard allocation ceilings: the RAND probe over a 20k-fact KB must
// stay within a constant allocation budget — per probe, independent of
// the enumeration size — both unsharded and through a fan-out merge.
// Before the streaming merge, the fanout-2 probe cost ~40k allocs/op
// (every shard row materialized, drained and replayed); the ceilings
// keep that regression from creeping back.

// allocCeiling runs fn repeatedly and fails if its average allocation
// count exceeds limit.
func allocCeiling(t *testing.T, limit float64, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	fn() // warm caches (plan, postings) outside the measured runs
	if got := testing.AllocsPerRun(20, fn); got > limit {
		t.Fatalf("%.1f allocs/op, ceiling %.0f", got, limit)
	}
}

func probeFn(t *testing.T, ep endpoint.Endpoint) func() {
	t.Helper()
	pq, err := ep.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	args := []sparql.Arg{sparql.IRIArg("http://x/p"), sparql.IntArg(10)}
	return func() {
		if _, err := pq.Select(args...); err != nil {
			t.Fatal(err)
		}
	}
}

// The unsharded prepared probe: bounded top-k over TermIDs, terms
// materialized only for the emitted rows.
func TestAllocCeilingUnshardedProbe(t *testing.T) {
	allocCeiling(t, 100, probeFn(t, endpoint.NewLocal(benchKB(20000), 1)))
}

// The fan-out probe: borrowed shard streams into the bounded merge —
// the 20k enumerated rows must not contribute per-row allocations.
func TestAllocCeilingMergedProbe(t *testing.T) {
	allocCeiling(t, 500, probeFn(t, Partitioned(benchKB(20000), 2, 1)))
}
