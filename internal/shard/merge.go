package shard

import (
	"sort"
	"strings"

	"sofya/internal/endpoint"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// merge.go reassembles shard answers into the whole-KB result. Two
// lazy pullers produce merged rows in a defined order — concatenation
// in shard order, or k-way merge on ascending subject term (= whole-KB
// enumeration order for star queries) — and fanoutRows applies the
// merge-point result pipeline (DISTINCT dedup, OFFSET skip, LIMIT
// early-exit) over either. Ordered queries drain first and go through
// mergeOrderedResults, which re-derives ORDER BY keys on the
// reconstructed enumeration and selects rows with the engine's own
// comparator.

// rowsSource is the per-shard stream the mergers consume.
type rowsSource = endpoint.Rows

// replaySources wraps drained shard results as merge inputs
// (endpoint.ReplayRows is the shared drain-then-iterate adapter).
func replaySources(results []*sparql.Result) []rowsSource {
	out := make([]rowsSource, len(results))
	for i, res := range results {
		out[i] = endpoint.ReplayRows(res)
	}
	return out
}

// capResult applies a group-level row cap to a final result, with the
// unsharded endpoint's semantics: truncate only when rows actually
// exceed the cap, and flag it. The result is copied before truncation
// — a routed shard may hand out a shared object (a caching decorator's
// entry), which must not be mutated.
func capResult(res *sparql.Result, maxRows int) *sparql.Result {
	if maxRows > 0 && len(res.Rows) > maxRows {
		capped := *res
		capped.Rows = capped.Rows[:maxRows]
		capped.Truncated = true
		return &capped
	}
	return res
}

// capRows enforces the group-level row cap on a routed stream: rows
// pass through until the cap, and truncation is flagged only if the
// shard had another row to give.
type capRows struct {
	inner   endpoint.Rows
	maxRows int
	n       int
	trunc   bool
	done    bool
}

func newCapRows(inner endpoint.Rows, maxRows int) endpoint.Rows {
	if maxRows <= 0 {
		return inner
	}
	return &capRows{inner: inner, maxRows: maxRows}
}

func (r *capRows) Vars() []string  { return r.inner.Vars() }
func (r *capRows) Row() []rdf.Term { return r.inner.Row() }
func (r *capRows) Err() error      { return r.inner.Err() }
func (r *capRows) Truncated() bool { return r.trunc || r.inner.Truncated() }

func (r *capRows) Next() bool {
	if r.done {
		return false
	}
	if r.n >= r.maxRows {
		if r.inner.Next() {
			r.trunc = true
		}
		r.done = true
		r.inner.Close()
		return false
	}
	if !r.inner.Next() {
		r.done = true
		return false
	}
	r.n++
	return true
}

func (r *capRows) Close() {
	r.done = true
	r.inner.Close()
}

// puller produces merged rows one at a time, in the merge's order.
type puller interface {
	// next returns the next merged row; ok is false at exhaustion or
	// error (err reports which — a shard quota rejection mid-stream
	// arrives here, not as a silent end).
	next() (row []rdf.Term, ok bool, err error)
	// truncated reports whether any contributing shard stream was
	// truncated so far.
	truncated() bool
	// close closes every shard stream (early, if rows remain).
	close()
}

// concatPuller yields each shard's rows in shard order.
type concatPuller struct {
	sources []rowsSource
	i       int
}

func newConcatPuller(sources []rowsSource) *concatPuller {
	return &concatPuller{sources: sources}
}

func (c *concatPuller) next() ([]rdf.Term, bool, error) {
	for c.i < len(c.sources) {
		src := c.sources[c.i]
		if src.Next() {
			return src.Row(), true, nil
		}
		if err := src.Err(); err != nil {
			return nil, false, err
		}
		c.i++
	}
	return nil, false, nil
}

func (c *concatPuller) truncated() bool { return anyTruncated(c.sources) }
func (c *concatPuller) close()          { closeAll(c.sources) }

// subjectPuller k-way merges shard streams on ascending subject term.
// Each stream is non-decreasing in its subject column (star queries
// enumerate grouped by subject in term order) and subjects never span
// shards, so always yielding the head with the least subject term
// reconstructs the whole-KB enumeration exactly.
type subjectPuller struct {
	sources []rowsSource
	heads   [][]rdf.Term
	col     int
	primed  bool
	err     error
}

func newSubjectPuller(sources []rowsSource, col int) *subjectPuller {
	return &subjectPuller{sources: sources, heads: make([][]rdf.Term, len(sources)), col: col}
}

// advance pulls the next head of source i.
func (m *subjectPuller) advance(i int) error {
	if m.sources[i].Next() {
		m.heads[i] = m.sources[i].Row()
		return nil
	}
	m.heads[i] = nil
	return m.sources[i].Err()
}

func (m *subjectPuller) next() ([]rdf.Term, bool, error) {
	if m.err != nil {
		return nil, false, m.err
	}
	if !m.primed {
		m.primed = true
		for i := range m.sources {
			if err := m.advance(i); err != nil {
				m.err = err
				return nil, false, err
			}
		}
	}
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || h[m.col].Compare(m.heads[best][m.col]) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	row := m.heads[best]
	if err := m.advance(best); err != nil {
		m.err = err
		return nil, false, err
	}
	return row, true, nil
}

func (m *subjectPuller) truncated() bool { return anyTruncated(m.sources) }
func (m *subjectPuller) close()          { closeAll(m.sources) }

func anyTruncated(sources []rowsSource) bool {
	for _, s := range sources {
		if s.Truncated() {
			return true
		}
	}
	return false
}

func closeAll(sources []rowsSource) {
	for _, s := range sources {
		s.Close()
	}
}

// rowKey renders a projected row for DISTINCT dedup. Terms render
// canonically, so the key agrees with the engine's TermID-based dedup.
func rowKey(row []rdf.Term) string {
	var sb strings.Builder
	for _, t := range row {
		sb.WriteString(t.String())
		sb.WriteByte(0x1f)
	}
	return sb.String()
}

// fanoutRows is the merged stream handed to callers: it applies the
// merge-point result pipeline over a puller and implements the Rows
// contract, closing every shard stream as soon as the LIMIT is
// satisfied (the losing shards stop producing) or the caller closes.
type fanoutRows struct {
	vars    []string
	p       puller
	seen    map[string]struct{} // nil when not DISTINCT
	offset  int
	limit   int
	maxRows int // group-level row cap (0 = unlimited)
	emitted int
	row     []rdf.Term
	err     error
	trunc   bool
	done    bool
}

func newFanoutRows(vars []string, p puller, distinct bool, offset, limit, maxRows int) *fanoutRows {
	f := &fanoutRows{vars: vars, p: p, offset: offset, limit: limit, maxRows: maxRows}
	if distinct {
		f.seen = make(map[string]struct{})
	}
	return f
}

func (f *fanoutRows) Vars() []string  { return f.vars }
func (f *fanoutRows) Row() []rdf.Term { return f.row }
func (f *fanoutRows) Err() error      { return f.err }
func (f *fanoutRows) Truncated() bool { return f.trunc }

func (f *fanoutRows) Next() bool {
	if f.done {
		return false
	}
	if f.limit >= 0 && f.emitted >= f.limit {
		f.finish()
		return false
	}
	capped := f.maxRows > 0 && f.emitted >= f.maxRows
	for {
		row, ok, err := f.p.next()
		if err != nil {
			f.err = err
			f.finish()
			return false
		}
		if !ok {
			f.finish()
			return false
		}
		if f.seen != nil {
			key := rowKey(row)
			if _, dup := f.seen[key]; dup {
				continue
			}
			f.seen[key] = struct{}{}
		}
		if f.offset > 0 {
			f.offset--
			continue
		}
		if capped {
			// The group-level row cap is reached and another row was
			// available: flag truncation, like the unsharded endpoint.
			f.trunc = true
			f.finish()
			return false
		}
		f.row = row
		f.emitted++
		return true
	}
}

func (f *fanoutRows) Close() { f.finish() }

func (f *fanoutRows) finish() {
	if f.done {
		return
	}
	f.done = true
	f.row = nil
	f.trunc = f.trunc || f.p.truncated()
	f.p.close()
}

var _ endpoint.Rows = (*fanoutRows)(nil)

// drainMerged collects a merged stream into a Result.
func drainMerged(vars []string, p puller, distinct bool, offset, limit, maxRows int) (*sparql.Result, error) {
	rows := newFanoutRows(vars, p, distinct, offset, limit, maxRows)
	defer rows.Close()
	res := &sparql.Result{Vars: vars}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	res.Truncated = rows.Truncated()
	return res, nil
}

// Truncated in fanoutRows.finish aggregates shard truncation; the
// group-level cap sets it directly in Next.

// orderedMergeSpec parameterizes the ORDER BY reassembly.
type orderedMergeSpec struct {
	col        int                    // merge column (subject)
	keys       []sparql.ShardOrderKey // per ORDER BY key
	orderTotal bool                   // bounded top-k selection is sound
	distinct   bool
	limit      int
	offset     int
	maxRows    int // group-level row cap (0 = unlimited)
	seed       int64
	text       string // canonical original text: the RAND stream's name
}

// mrow is one merged candidate row with its re-derived sort keys and
// its whole-KB enumeration index — the tiebreak that makes the bounded
// selection order total, exactly as in the engine.
type mrow struct {
	row  []rdf.Term
	keys []sparql.Value
	idx  int
}

// mergeOrderedResults reassembles an ORDER BY query from drained shard
// results: rows are enumerated in reconstructed whole-KB order
// (subject-term merge), DISTINCT drops duplicates before any key is
// derived (duplicates consume no RAND draw, as in the engine), each
// key is re-drawn (bare RAND, from the engine-identical stream) or
// re-evaluated (deterministic keys, over the projected row), and the
// final order is the engine's: a bounded top-k under the total
// (keys, enumeration-index) order when the key list is statically
// total-ordered and a LIMIT is set, the reference stable sort by keys
// alone otherwise.
func mergeOrderedResults(vars []string, results []*sparql.Result, spec orderedMergeSpec) (*sparql.Result, error) {
	res := &sparql.Result{Vars: vars}
	for _, r := range results {
		if r.Truncated {
			res.Truncated = true
		}
	}

	target := -1
	if spec.limit >= 0 {
		target = spec.offset + spec.limit
		if target == 0 {
			return res, nil
		}
	}
	bounded := target >= 0 && spec.orderTotal

	// The comparators are the engine's own (sparql.CompareKeys, the
	// single definition both sides use), with the enumeration index as
	// the tiebreak that makes `before` total.
	desc := make([]bool, len(spec.keys))
	for i, k := range spec.keys {
		desc[i] = k.Desc
	}
	keyLess := func(a, b *mrow) bool {
		return sparql.CompareKeys(a.keys, b.keys, desc) < 0
	}
	before := func(a, b *mrow) bool {
		if c := sparql.CompareKeys(a.keys, b.keys, desc); c != 0 {
			return c < 0
		}
		return a.idx < b.idx
	}

	var draw func() float64
	for _, k := range spec.keys {
		if k.Rand {
			draw = sparql.RandFloats(spec.seed, spec.text)
			break
		}
	}

	var seen map[string]struct{}
	if spec.distinct {
		seen = make(map[string]struct{})
	}
	var rows []mrow
	idx := 0
	merge := newSubjectPuller(replaySources(results), spec.col)
	for {
		row, ok, err := merge.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if seen != nil {
			key := rowKey(row)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
		}
		cur := mrow{row: row, keys: make([]sparql.Value, len(spec.keys)), idx: idx}
		idx++
		for i, k := range spec.keys {
			if k.Rand {
				cur.keys[i] = sparql.NumValue(draw())
			} else {
				cur.keys[i] = k.Eval(row)
			}
		}
		if bounded && len(rows) == target {
			// The heap root is the worst kept row; a newcomer that does
			// not order before it can never reach the output.
			if !before(&cur, &rows[0]) {
				continue
			}
			rows[0] = cur
			sparql.HeapSiftDown(rows, 0, before)
			continue
		}
		rows = append(rows, cur)
		if bounded {
			sparql.HeapSiftUp(rows, len(rows)-1, before)
		}
	}

	if bounded {
		sort.Slice(rows, func(i, j int) bool { return before(&rows[i], &rows[j]) })
	} else {
		// rows are in reconstructed enumeration order; the stable sort
		// with the pure key comparator reproduces the engine exactly.
		sort.SliceStable(rows, func(i, j int) bool { return keyLess(&rows[i], &rows[j]) })
	}
	end := len(rows)
	if target >= 0 && target < end {
		end = target
	}
	for i := spec.offset; i < end; i++ {
		res.Rows = append(res.Rows, rows[i].row)
	}
	return capResult(res, spec.maxRows), nil
}
