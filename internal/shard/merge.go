package shard

import (
	"encoding/binary"
	"sort"

	"sofya/internal/endpoint"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// merge.go reassembles shard answers into the whole-KB result. Two
// lazy pullers produce merged rows in a defined order — concatenation
// in shard order, or k-way merge on ascending subject term (= whole-KB
// enumeration order for star queries) — and fanoutRows applies the
// merge-point result pipeline (DISTINCT dedup, OFFSET skip, LIMIT
// early-exit) over either. Ordered queries stream through orderedRows,
// which re-derives ORDER BY keys on the reconstructed enumeration as
// rows are pulled and keeps only a bounded top-(offset+limit) selection
// of winners — O(k) memory and row materialization over an O(result)
// enumeration, byte-identical to the unsharded engine because the
// selection is the engine's own (sparql.TopK under sparql.CompareKeys).

// rowsSource is the per-shard stream the mergers consume. The ordered
// merge feeds on borrowed streams (endpoint.StreamBorrowed): a source's
// row is valid only until that source's next Next, so consumers copy
// the rows they keep.
type rowsSource = endpoint.Rows

// replaySources wraps drained shard results as merge inputs
// (endpoint.ReplayRows is the shared drain-then-iterate adapter).
func replaySources(results []*sparql.Result) []rowsSource {
	out := make([]rowsSource, len(results))
	for i, res := range results {
		out[i] = endpoint.ReplayRows(res)
	}
	return out
}

// capResult applies a group-level row cap to a final result, with the
// unsharded endpoint's semantics: truncate only when rows actually
// exceed the cap, and flag it. The result is copied before truncation
// — a routed shard may hand out a shared object (a caching decorator's
// entry), which must not be mutated.
func capResult(res *sparql.Result, maxRows int) *sparql.Result {
	if maxRows > 0 && len(res.Rows) > maxRows {
		capped := *res
		capped.Rows = capped.Rows[:maxRows]
		capped.Truncated = true
		return &capped
	}
	return res
}

// capRows enforces the group-level row cap on a routed stream: rows
// pass through until the cap, and truncation is flagged only if the
// shard had another row to give.
type capRows struct {
	inner   endpoint.Rows
	maxRows int
	n       int
	trunc   bool
	done    bool
}

func newCapRows(inner endpoint.Rows, maxRows int) endpoint.Rows {
	if maxRows <= 0 {
		return inner
	}
	return &capRows{inner: inner, maxRows: maxRows}
}

func (r *capRows) Vars() []string  { return r.inner.Vars() }
func (r *capRows) Row() []rdf.Term { return r.inner.Row() }
func (r *capRows) Err() error      { return r.inner.Err() }
func (r *capRows) Truncated() bool { return r.trunc || r.inner.Truncated() }

func (r *capRows) Next() bool {
	if r.done {
		return false
	}
	if r.n >= r.maxRows {
		if r.inner.Next() {
			r.trunc = true
		}
		r.done = true
		r.inner.Close()
		return false
	}
	if !r.inner.Next() {
		r.done = true
		return false
	}
	r.n++
	return true
}

func (r *capRows) Close() {
	r.done = true
	r.inner.Close()
}

// puller produces merged rows one at a time, in the merge's order.
type puller interface {
	// next returns the next merged row and the index of the source that
	// yielded it; ok is false at exhaustion or error (err reports which
	// — a shard quota rejection mid-stream arrives here, not as a
	// silent end). The row is borrowed: it is valid until the following
	// next call, which may reuse its buffer. The source index lets the
	// ordered merge read per-source row annotations (attached ORDER BY
	// keys) that share the row's lifetime.
	next() (row []rdf.Term, src int, ok bool, err error)
	// truncated reports whether any contributing shard stream was
	// truncated so far.
	truncated() bool
	// close closes every shard stream (early, if rows remain).
	close()
}

// concatPuller yields each shard's rows in shard order.
type concatPuller struct {
	sources []rowsSource
	i       int
}

func newConcatPuller(sources []rowsSource) *concatPuller {
	return &concatPuller{sources: sources}
}

func (c *concatPuller) next() ([]rdf.Term, int, bool, error) {
	for c.i < len(c.sources) {
		src := c.sources[c.i]
		if src.Next() {
			return src.Row(), c.i, true, nil
		}
		if err := src.Err(); err != nil {
			return nil, c.i, false, err
		}
		c.i++
	}
	return nil, -1, false, nil
}

func (c *concatPuller) truncated() bool { return anyTruncated(c.sources) }
func (c *concatPuller) close()          { closeAll(c.sources) }

// subjectPuller k-way merges shard streams on ascending subject term.
// Each stream is non-decreasing in its subject column (star queries
// enumerate grouped by subject in term order) and subjects never span
// shards, so always yielding the head with the least subject term
// reconstructs the whole-KB enumeration exactly.
//
// The winning source is advanced lazily, at the start of the following
// next call — a borrowed source reuses the yielded row's buffer on
// advance, so the consumer gets a full pull cycle to inspect or copy
// the row first.
type subjectPuller struct {
	sources []rowsSource
	heads   [][]rdf.Term
	col     int
	last    int // source whose head the previous next yielded; -1 none
	primed  bool
	err     error
}

func newSubjectPuller(sources []rowsSource, col int) *subjectPuller {
	return &subjectPuller{sources: sources, heads: make([][]rdf.Term, len(sources)), col: col, last: -1}
}

// advance pulls the next head of source i.
func (m *subjectPuller) advance(i int) error {
	if m.sources[i].Next() {
		m.heads[i] = m.sources[i].Row()
		return nil
	}
	m.heads[i] = nil
	return m.sources[i].Err()
}

func (m *subjectPuller) next() ([]rdf.Term, int, bool, error) {
	if m.err != nil {
		return nil, -1, false, m.err
	}
	if !m.primed {
		m.primed = true
		for i := range m.sources {
			if err := m.advance(i); err != nil {
				m.err = err
				return nil, -1, false, err
			}
		}
	} else if m.last >= 0 {
		i := m.last
		m.last = -1
		if err := m.advance(i); err != nil {
			m.err = err
			return nil, -1, false, err
		}
	}
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || h[m.col].Compare(m.heads[best][m.col]) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, -1, false, nil
	}
	m.last = best
	return m.heads[best], best, true, nil
}

// closeSource drops source i from the merge and closes its stream —
// the ordered merge calls it once it has proved the source can no
// longer contribute a winning row (see orderedRows.closeLosers).
func (m *subjectPuller) closeSource(i int) {
	if m.heads[i] == nil && m.last != i {
		return
	}
	m.heads[i] = nil
	if m.last == i {
		m.last = -1
	}
	m.sources[i].Close()
}

func (m *subjectPuller) truncated() bool { return anyTruncated(m.sources) }
func (m *subjectPuller) close()          { closeAll(m.sources) }

func anyTruncated(sources []rowsSource) bool {
	for _, s := range sources {
		if s.Truncated() {
			return true
		}
	}
	return false
}

func closeAll(sources []rowsSource) {
	for _, s := range sources {
		s.Close()
	}
}

// appendRowKey appends a compact binary rendering of a projected row to
// buf — the merge point's DISTINCT dedup key. Each term contributes its
// kind byte and length-prefixed value, datatype and language, so the
// encoding is injective on term tuples: two rows collide iff their
// terms are pairwise equal, which is exactly the engine's TermID-based
// dedup relation (shard KBs intern canonicalized terms, so equal
// TermIDs ⇔ equal canonical terms ⇔ equal keys).
func appendRowKey(buf []byte, row []rdf.Term) []byte {
	for _, t := range row {
		buf = append(buf, byte(t.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(t.Value)))
		buf = append(buf, t.Value...)
		buf = binary.AppendUvarint(buf, uint64(len(t.Datatype)))
		buf = append(buf, t.Datatype...)
		buf = binary.AppendUvarint(buf, uint64(len(t.Lang)))
		buf = append(buf, t.Lang...)
	}
	return buf
}

// rowKey renders a projected row as a self-contained dedup key (an
// owned copy of the appendRowKey encoding) — the allocation-tolerant
// form for callers outside the hot merge loop.
func rowKey(row []rdf.Term) string {
	return string(appendRowKey(nil, row))
}

// rowDedup is the merge point's DISTINCT filter: one reused key buffer,
// a map of already-emitted keys. Only a genuinely new row costs an
// allocation (the map's owned key string); duplicate checks are
// allocation-free.
type rowDedup struct {
	seen map[string]struct{}
	buf  []byte
}

func newRowDedup() *rowDedup {
	return &rowDedup{seen: make(map[string]struct{})}
}

// dup records the row and reports whether it was already seen.
func (d *rowDedup) dup(row []rdf.Term) bool {
	d.buf = appendRowKey(d.buf[:0], row)
	if _, dup := d.seen[string(d.buf)]; dup {
		return true
	}
	d.seen[string(d.buf)] = struct{}{}
	return false
}

// fanoutRows is the merged stream handed to callers: it applies the
// merge-point result pipeline over a puller and implements the Rows
// contract, closing every shard stream as soon as the LIMIT is
// satisfied (the losing shards stop producing) or the caller closes.
type fanoutRows struct {
	vars    []string
	p       puller
	dedup   *rowDedup // nil when not DISTINCT
	offset  int
	limit   int
	maxRows int // group-level row cap (0 = unlimited)
	emitted int
	row     []rdf.Term
	err     error
	trunc   bool
	done    bool
}

func newFanoutRows(vars []string, p puller, distinct bool, offset, limit, maxRows int) *fanoutRows {
	f := &fanoutRows{vars: vars, p: p, offset: offset, limit: limit, maxRows: maxRows}
	if distinct {
		f.dedup = newRowDedup()
	}
	return f
}

func (f *fanoutRows) Vars() []string  { return f.vars }
func (f *fanoutRows) Row() []rdf.Term { return f.row }
func (f *fanoutRows) Err() error      { return f.err }
func (f *fanoutRows) Truncated() bool { return f.trunc }

func (f *fanoutRows) Next() bool {
	if f.done {
		return false
	}
	if f.limit >= 0 && f.emitted >= f.limit {
		f.finish()
		return false
	}
	for {
		row, _, ok, err := f.p.next()
		if err != nil {
			f.err = err
			f.finish()
			return false
		}
		if !ok {
			f.finish()
			return false
		}
		if f.dedup != nil && f.dedup.dup(row) {
			continue
		}
		if f.offset > 0 {
			f.offset--
			continue
		}
		if f.maxRows > 0 && f.emitted >= f.maxRows {
			// The group-level row cap is checked at each emission — after
			// dedup and offset, never cached across skipped rows — and
			// trips only because another emittable row was available,
			// like the unsharded endpoint.
			f.trunc = true
			f.finish()
			return false
		}
		f.row = row
		f.emitted++
		return true
	}
}

func (f *fanoutRows) Close() { f.finish() }

func (f *fanoutRows) finish() {
	if f.done {
		return
	}
	f.done = true
	f.row = nil
	f.trunc = f.trunc || f.p.truncated()
	f.p.close()
}

var _ endpoint.Rows = (*fanoutRows)(nil)

// drainRows collects a merged stream into a Result. Emitted rows must
// be owned by the stream's consumer side (fanoutRows yields rows of
// non-borrowed sources; orderedRows yields owned winner buffers).
func drainRows(rows endpoint.Rows) (*sparql.Result, error) {
	defer rows.Close()
	res := &sparql.Result{Vars: rows.Vars()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	res.Truncated = rows.Truncated()
	return res, nil
}

// drainMerged collects an unordered merged stream into a Result.
func drainMerged(vars []string, p puller, distinct bool, offset, limit, maxRows int) (*sparql.Result, error) {
	return drainRows(newFanoutRows(vars, p, distinct, offset, limit, maxRows))
}

// orderedMergeSpec parameterizes the ORDER BY reassembly.
type orderedMergeSpec struct {
	col        int                    // merge column (subject)
	keys       []sparql.ShardOrderKey // per ORDER BY key
	orderTotal bool                   // bounded top-k selection is sound
	distinct   bool
	limit      int
	offset     int
	maxRows    int // group-level row cap (0 = unlimited)
	seed       int64
	text       string // canonical original text: the RAND stream's name
}

// mrow is one merged candidate row with its re-derived sort keys and
// its whole-KB enumeration index — the tiebreak that makes the bounded
// selection order total, exactly as in the engine. Kept rows own their
// row and keys buffers; a replaced loser's buffers are reused in place.
type mrow struct {
	row  []rdf.Term
	keys []sparql.Value
	idx  int
}

// orderedRows reassembles an ORDER BY query from live shard streams as
// an endpoint.Rows. Rows are enumerated in reconstructed whole-KB order
// (subject-term merge over borrowed streams), DISTINCT drops duplicates
// before any key is derived (duplicates consume no RAND draw, as in the
// engine), each key is re-drawn (bare RAND, from the engine-identical
// stream) or re-evaluated (deterministic keys, over the borrowed row),
// and the final order is the engine's: a bounded top-k under the total
// (keys, enumeration-index) order when the key list is statically
// total-ordered and a LIMIT is set, the reference stable sort by keys
// alone otherwise.
//
// On the bounded path only the offset+limit winners are ever
// materialized — a losing row is rejected while still borrowed, with a
// reused key buffer, so memory and copies are O(k) over an O(result)
// enumeration. The selection itself is sparql.TopK, the executor's own.
//
// The enumeration runs on the first Next (ORDER BY cannot emit before
// seeing every candidate); shard streams close as soon as the merge is
// done with them — at enumeration end, on error, on a pre-run Close,
// or early (closeLosers) once a stream provably cannot contribute.
type orderedRows struct {
	vars  []string
	merge *subjectPuller
	spec  orderedMergeSpec
	keyed []keyedSrc // per source: attached-key access, zero when none

	started bool
	done    bool
	out     []mrow // sorted winners awaiting emission
	next    int    // emission cursor into out
	row     []rdf.Term
	err     error
	trunc   bool
}

// keyedSrc caches one source's attached-key access for the merge loop:
// slot maps each ORDER BY key index to its position in the source's
// RowKeys (or -1 when the source did not attach that key).
type keyedSrc struct {
	kr   endpoint.KeyedRows
	slot []int
}

func newOrderedRows(vars []string, sources []rowsSource, spec orderedMergeSpec) *orderedRows {
	r := &orderedRows{vars: vars, merge: newSubjectPuller(sources, spec.col), spec: spec}
	r.keyed = make([]keyedSrc, len(sources))
	for i, s := range sources {
		kr, ok := s.(endpoint.KeyedRows)
		if !ok || len(kr.AttachedKeys()) == 0 {
			continue
		}
		slot := make([]int, len(spec.keys))
		for j := range slot {
			slot[j] = -1
		}
		any := false
		for pos, ki := range kr.AttachedKeys() {
			// A key the merge would re-draw (RAND) is never consumed from
			// a source: its draws pair with rows in whole-KB enumeration
			// order, which only this merge point knows.
			if ki >= 0 && ki < len(slot) && !spec.keys[ki].Rand {
				slot[ki] = pos
				any = true
			}
		}
		if any {
			r.keyed[i] = keyedSrc{kr: kr, slot: slot}
		}
	}
	return r
}

func (r *orderedRows) Vars() []string  { return r.vars }
func (r *orderedRows) Row() []rdf.Term { return r.row }
func (r *orderedRows) Err() error      { return r.err }
func (r *orderedRows) Truncated() bool { return r.trunc }

func (r *orderedRows) Next() bool {
	if r.done {
		return false
	}
	if !r.started {
		r.started = true
		r.run()
		if r.err != nil {
			r.done = true
			return false
		}
	}
	if r.next >= len(r.out) {
		r.done = true
		r.row = nil
		return false
	}
	r.row = r.out[r.next].row
	r.next++
	return true
}

func (r *orderedRows) Close() {
	if r.done {
		return
	}
	r.done = true
	r.row = nil
	if !r.started {
		// The enumeration never ran: the shard streams are still open.
		r.merge.close()
	}
}

// run drives the whole merged enumeration and leaves the selected
// window (offset applied, limit and group cap enforced) in r.out. It
// closes every shard stream before returning.
func (r *orderedRows) run() {
	spec := &r.spec
	target := -1
	if spec.limit >= 0 {
		target = spec.offset + spec.limit
	}

	// The comparators are the engine's own (sparql.CompareKeys, the
	// single definition both sides use), with the enumeration index as
	// the tiebreak that makes `before` total.
	desc := make([]bool, len(spec.keys))
	hasRand := false
	for i, k := range spec.keys {
		desc[i] = k.Desc
		hasRand = hasRand || k.Rand
	}
	keyLess := func(a, b *mrow) bool {
		return sparql.CompareKeys(a.keys, b.keys, desc) < 0
	}
	before := func(a, b *mrow) bool {
		if c := sparql.CompareKeys(a.keys, b.keys, desc); c != 0 {
			return c < 0
		}
		return a.idx < b.idx
	}

	if target == 0 {
		r.trunc = r.merge.truncated()
		r.merge.close()
		return
	}

	var draw func() float64
	if hasRand {
		draw = sparql.RandFloats(spec.seed, spec.text)
	}
	var dedup *rowDedup
	if spec.distinct {
		dedup = newRowDedup()
	}

	// Early close is sound only without RAND keys (every enumerated row
	// must consume its draw — a closed stream would shift the pairing)
	// and with the ascending subject as the first key, which makes each
	// stream's first-key sequence non-decreasing: once a head's subject
	// orders strictly after the worst kept row's, every later row of
	// that stream loses the first-key comparison outright.
	var topk *sparql.TopK[mrow]
	earlyClose := false
	if bounded := target > 0 && spec.orderTotal; bounded {
		topk = sparql.NewTopK[mrow](target, before)
		earlyClose = !hasRand && len(spec.keys) > 0 && spec.keys[0].SubjectKey && !spec.keys[0].Desc
	}

	var all []mrow // unbounded path: every candidate, enumeration order
	keyScratch := make([]sparql.Value, len(spec.keys))
	// cur is the admission probe, hoisted out of the loop: its address
	// goes into the dynamic Admits call, so a per-row local would
	// escape and allocate on every merged row.
	cur := mrow{keys: keyScratch}
	idx := 0
	for {
		row, src, ok, err := r.merge.next()
		if err != nil {
			r.err = err
			r.merge.close()
			return
		}
		if !ok {
			break
		}
		if dedup != nil && dedup.dup(row) {
			continue
		}
		// Attached keys (a remote shard evaluated them behind the wire)
		// share the borrowed row's lifetime: read before the next pull.
		var attached []sparql.Value
		var slots []int
		if ks := &r.keyed[src]; ks.kr != nil {
			attached, slots = ks.kr.RowKeys(), ks.slot
		}
		for i := range spec.keys {
			switch {
			case spec.keys[i].Rand:
				keyScratch[i] = sparql.NumValue(draw())
			case slots != nil && slots[i] >= 0 && slots[i] < len(attached):
				keyScratch[i] = attached[slots[i]]
			default:
				keyScratch[i] = spec.keys[i].Eval(row)
			}
		}
		cur.row, cur.idx = row, idx
		idx++

		if topk == nil {
			all = append(all, mrow{
				row:  append([]rdf.Term(nil), row...),
				keys: append([]sparql.Value(nil), keyScratch...),
				idx:  cur.idx,
			})
			continue
		}
		if topk.Admits(&cur) {
			if topk.Full() {
				// Overwrite the worst kept row in place, reusing its
				// buffers — the zero-allocation replacement.
				worst := topk.Worst()
				worst.row = append(worst.row[:0], row...)
				copy(worst.keys, keyScratch)
				worst.idx = cur.idx
				topk.FixWorst()
			} else {
				topk.Push(mrow{
					row:  append([]rdf.Term(nil), row...),
					keys: append([]sparql.Value(nil), keyScratch...),
					idx:  cur.idx,
				})
			}
		}
		if earlyClose && topk.Full() {
			r.closeLosers(topk.Worst().row)
		}
	}
	r.trunc = r.merge.truncated()
	r.merge.close()

	var rows []mrow
	if topk != nil {
		rows = topk.Sorted()
	} else {
		// rows are in reconstructed enumeration order; the stable sort
		// with the pure key comparator reproduces the engine exactly.
		sort.SliceStable(all, func(i, j int) bool { return keyLess(&all[i], &all[j]) })
		rows = all
	}
	end := len(rows)
	if target >= 0 && target < end {
		end = target
	}
	if spec.offset < end {
		rows = rows[spec.offset:end]
	} else {
		rows = nil
	}
	if spec.maxRows > 0 && len(rows) > spec.maxRows {
		rows = rows[:spec.maxRows]
		r.trunc = true
	}
	r.out = rows
}

// closeLosers closes every stream whose head subject orders strictly
// after the worst kept row's subject (= its first key, since the first
// key is the ascending SubjectKey) — sound under the conditions
// established in run: every later row of such a stream has a subject at
// least as large and a larger enumeration index, so it loses the
// selection outright, and dropping whole loser suffixes preserves the
// relative enumeration order (and so the idx tiebreak) of every
// surviving row.
func (r *orderedRows) closeLosers(worst []rdf.Term) {
	m := r.merge
	pivot := worst[r.spec.col]
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if h[r.spec.col].Compare(pivot) > 0 {
			m.closeSource(i)
		}
	}
}

var _ endpoint.Rows = (*orderedRows)(nil)

// mergeOrderedResults reassembles an ORDER BY query from drained shard
// results — the text-query path, which has no per-shard streams to pull
// from — by replaying them through the same streaming merge.
func mergeOrderedResults(vars []string, results []*sparql.Result, spec orderedMergeSpec) (*sparql.Result, error) {
	return drainRows(newOrderedRows(vars, replaySources(results), spec))
}
