// Package shard federates a subject-hash-partitioned knowledge base:
// a Group serves the full endpoint.Endpoint interface over k Local
// shards (kb.Partition) and merges their answers back into the
// whole-KB result — byte-identical to an unsharded endpoint for every
// query class the alignment pipeline issues.
//
// The fan-out seam is the prepared-query interface: a template prepares
// once per shard and every execution binds arguments per shard. The
// merge seam is the streaming Rows interface: shard streams interleave
// at the merge point.
//
// Three execution strategies cover the federated query classes:
//
//   - Routing. A query whose patterns all share one concrete subject
//     evaluates wholly inside the subject's shard (the partitioning
//     invariant), so it is sent verbatim to that shard — including any
//     ORDER BY RAND(), which the shard reproduces exactly because its
//     engine seed and the canonical text match the unsharded setup and
//     all matching rows are local.
//
//   - Subject-ordered k-way merge. A star query on one subject variable
//     enumerates — on the whole KB and on every shard — grouped by
//     subject in term order, with within-group orders identical because
//     shards plan with the whole KB's statistics (kb.SetPlanStats). A
//     heap over the shard heads that always yields the least subject
//     term therefore reconstructs whole-KB enumeration order exactly.
//     Unordered queries stream through this merge with DISTINCT dedup,
//     OFFSET skipping and LIMIT early-exit at the merge point (and
//     LIMIT pushed down to the shards when no DISTINCT intervenes);
//     closing the merged stream closes every shard stream.
//
//   - ORDER BY reassembly. Ordered queries are pushed down stripped of
//     ORDER BY / LIMIT / OFFSET; the merge point re-derives each key on
//     the reconstructed enumeration: bare RAND() keys are re-drawn from
//     the engine-identical PRNG stream (sparql.RandFloats over the
//     original canonical text) in enumeration order, deterministic keys
//     are re-evaluated over the projected row, and rows are selected
//     with the engine's own comparator — a bounded top-k heap with
//     enumeration-index tiebreak for statically total-ordered keys, the
//     reference stable sort otherwise. This is what keeps the sampling
//     probes (ORDER BY RAND() LIMIT k) byte-identical across any shard
//     count.
//
// Queries outside these classes — cross-subject joins, RAND() inside
// FILTER — are rejected with ErrNotDecomposable rather than answered
// wrongly; ASK fans out with a short-circuit on the first true. Quota
// errors from any shard surface through the merge, and a merged
// result is Truncated as soon as any shard's contribution was.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sparql"
)

// ErrNotDecomposable marks queries the federation cannot answer
// faithfully over subject-partitioned shards (cross-subject joins,
// RAND() in FILTER, ORDER BY keys that cannot be reproduced at the
// merge point). Callers see it wrapped with the specific reason.
var ErrNotDecomposable = errors.New("shard: query is not decomposable over subject-partitioned shards")

// Group is a federation of shard endpoints behind one Endpoint. It is
// safe for concurrent use (like every endpoint).
type Group struct {
	name    string
	shards  []endpoint.Endpoint
	seed    int64
	workers int
	maxRows int

	mu    sync.Mutex
	plans map[string]*textPlan // parsed-text plan cache
}

// Option configures a Group.
type Option func(*Group)

// Workers bounds the fan-out concurrency (default: one worker per
// shard).
func Workers(n int) Option {
	return func(g *Group) {
		if n > 0 {
			g.workers = n
		}
	}
}

// RowCap caps the rows of every SELECT the group answers — the
// group-level equivalent of Quota.MaxRows, applied to the merged (or
// routed) result so the cap matches the unsharded endpoint's contract
// instead of multiplying by the shard count. 0 means unlimited.
func RowCap(n int) Option {
	return func(g *Group) {
		if n > 0 {
			g.maxRows = n
		}
	}
}

// NewGroup federates the given shard endpoints under one name. The
// shards must be the output of kb.Partition served in order (shard i of
// the partition at index i) for routing and merge determinism to hold;
// seed must be the RAND() seed the shard engines run with, so the merge
// point can re-derive RAND() streams.
func NewGroup(name string, seed int64, shards []endpoint.Endpoint, opts ...Option) (*Group, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: a group needs at least one shard")
	}
	g := &Group{
		name:    name,
		shards:  append([]endpoint.Endpoint(nil), shards...),
		seed:    seed,
		workers: len(shards),
		plans:   make(map[string]*textPlan),
	}
	for _, opt := range opts {
		opt(g)
	}
	return g, nil
}

// Partitioned splits src into n subject-hash shards (kb.Partition) and
// federates them behind a Group: the drop-in sharded replacement for
// endpoint.NewLocal(src, seed).
func Partitioned(src *kb.KB, n int, seed int64, opts ...Option) *Group {
	return PartitionedRestricted(src, n, seed, endpoint.Quota{}, opts...)
}

// PartitionedRestricted is Partitioned under an access quota. The row
// cap is enforced at the merge point (one cap for the whole answer,
// exactly like the unsharded restricted endpoint), while the query
// budget and latency apply per shard — a fan-out consumes one query on
// every shard, a routed probe on one.
func PartitionedRestricted(src *kb.KB, n int, seed int64, q endpoint.Quota, opts ...Option) *Group {
	shardQuota := q
	shardQuota.MaxRows = 0
	parts := kb.Partition(src, n)
	eps := make([]endpoint.Endpoint, len(parts))
	for i, p := range parts {
		eps[i] = endpoint.NewLocalRestricted(p, seed, shardQuota)
	}
	g, err := NewGroup(src.Name(), seed, eps, append([]Option{RowCap(q.MaxRows)}, opts...)...)
	if err != nil {
		panic(err) // unreachable: kb.Partition returns n >= 1 shards
	}
	return g
}

// Name implements Endpoint.
func (g *Group) Name() string { return g.name }

// Shards exposes the federated shard endpoints, in partition order.
func (g *Group) Shards() []endpoint.Endpoint { return g.shards }

// Select implements Endpoint.
func (g *Group) Select(query string) (*sparql.Result, error) {
	return g.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (g *Group) Ask(query string) (bool, error) {
	return g.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint: the query is classified once (cached
// by text), then routed or fanned out and merged.
func (g *Group) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	pl, err := g.planFor(query)
	if err != nil {
		return nil, err
	}
	if pl.form != sparql.SelectForm {
		return nil, fmt.Errorf("shard: Select needs a SELECT query")
	}
	if pl.strat == stratRoute {
		res, err := g.shards[pl.routeShard].SelectCtx(ctx, query)
		if err != nil {
			return nil, err
		}
		return capResult(res, g.maxRows), nil
	}
	results, err := g.drainShards(ctx, pl.push)
	if err != nil {
		return nil, err
	}
	if pl.strat == stratMergeOrdered {
		return mergeOrderedResults(pl.vars, results, pl.orderedSpec(g.seed, g.maxRows))
	}
	return drainMerged(pl.vars, g.mergePuller(pl, replaySources(results)), pl.distinct, pl.offset, pl.limit, g.maxRows)
}

// AskCtx implements Endpoint: routed to the subject's shard, or fanned
// out with a short-circuit on the first true answer.
func (g *Group) AskCtx(ctx context.Context, query string) (bool, error) {
	pl, err := g.planFor(query)
	if err != nil {
		return false, err
	}
	if pl.form != sparql.AskForm {
		return false, fmt.Errorf("shard: Ask needs an ASK query")
	}
	if pl.strat == stratRoute {
		return g.shards[pl.routeShard].AskCtx(ctx, query)
	}
	return g.fanoutAsk(ctx, func(ctx context.Context, i int) (bool, error) {
		return g.shards[i].AskCtx(ctx, query)
	})
}

// Prepare implements Endpoint: the template is analyzed once, prepared
// once per shard (original and pushdown forms), and every execution
// routes or fans out per its bound arguments.
func (g *Group) Prepare(template string, params ...string) (endpoint.PreparedQuery, error) {
	return g.prepare(template, params)
}

// Stats implements StatsReporter by aggregating the shard endpoints'
// statistics — the federation's cost is the sum of what its shards did.
func (g *Group) Stats() endpoint.Stats {
	var sum endpoint.Stats
	for _, sh := range g.shards {
		if sr, ok := sh.(endpoint.StatsReporter); ok {
			s := sr.Stats()
			sum.Queries += s.Queries
			sum.Rows += s.Rows
			sum.Truncations += s.Truncations
			sum.Denied += s.Denied
		}
	}
	return sum
}

// ResetStats implements StatsReporter.
func (g *Group) ResetStats() {
	for _, sh := range g.shards {
		if sr, ok := sh.(endpoint.StatsReporter); ok {
			sr.ResetStats()
		}
	}
}

// drainShards runs the pushdown text on every shard concurrently under
// the worker bound and collects the results in shard order.
func (g *Group) drainShards(ctx context.Context, push string) ([]*sparql.Result, error) {
	results := make([]*sparql.Result, len(g.shards))
	err := g.fanout(ctx, func(ctx context.Context, i int) error {
		res, err := g.shards[i].SelectCtx(ctx, push)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// fanout runs task(i) for every shard index concurrently, bounded by
// the worker count. The first error cancels the remaining work. A
// caller-context cancellation that skipped any task surfaces as the
// context's error — never as a clean success with holes in the output.
func (g *Group) fanout(parent context.Context, task func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	sem := make(chan struct{}, g.workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := range g.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			if err := task(ctx, i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = parent.Err()
	}
	return firstErr
}

// fanoutAsk runs per-shard ASK probes concurrently and short-circuits
// on the first true: remaining probes are cancelled, their outcomes
// discarded. With no true answer, a shard error (a quota rejection,
// say) or a caller-context cancellation surfaces instead of being
// folded into a clean false.
func (g *Group) fanoutAsk(parent context.Context, probe func(ctx context.Context, i int) (bool, error)) (bool, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	sem := make(chan struct{}, g.workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		found    bool
		firstErr error
	)
	for i := range g.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			done := found
			mu.Unlock()
			if done || ctx.Err() != nil {
				return
			}
			ok, err := probe(ctx, i)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case ok:
				found = true
				cancel()
			case err != nil && firstErr == nil && ctx.Err() == nil:
				firstErr = err
			}
		}(i)
	}
	wg.Wait()
	if found {
		return true, nil
	}
	if firstErr == nil {
		firstErr = parent.Err()
	}
	return false, firstErr
}

var (
	_ endpoint.Endpoint      = (*Group)(nil)
	_ endpoint.StatsReporter = (*Group)(nil)
)
