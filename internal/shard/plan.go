package shard

import (
	"fmt"

	"sofya/internal/kb"
	"sofya/internal/sparql"
)

// plan.go classifies queries into federation strategies and derives the
// per-shard pushdown form. The classification rests on
// sparql.AnalyzeShard: it is the same analysis for text queries and
// prepared templates, with template parameters treated as concrete
// terms bound per execution.

// strategy is how one query executes across the shards.
type strategy uint8

const (
	// stratRoute: all patterns share one concrete subject; the query
	// goes verbatim to that subject's shard.
	stratRoute strategy = iota
	// stratMerge: unordered star query with the subject projected;
	// shard streams k-way merge on ascending subject term, which equals
	// whole-KB enumeration order.
	stratMerge
	// stratConcat: unordered decomposable query without a usable merge
	// column; shard streams concatenate in shard order. The result is
	// the exact whole-KB bag of rows, in a deterministic but
	// shard-dependent order — which is why classify rejects this shape
	// as soon as LIMIT or OFFSET would turn the order difference into a
	// row-set difference.
	stratConcat
	// stratMergeOrdered: ORDER BY query; shards stream the stripped
	// enumeration (borrowed rows, no per-row materialization), the merge
	// point re-derives keys in reconstructed whole-KB enumeration order
	// and keeps a bounded top-(offset+limit) selection of winners.
	stratMergeOrdered
)

// classify maps an analyzed query to a strategy, or an error when the
// federation cannot answer it faithfully.
func classify(q *sparql.Query, shape sparql.ShardShape) (strategy, error) {
	if !shape.Decomposable {
		return 0, fmt.Errorf("%w: triple patterns are not anchored on one common subject", ErrNotDecomposable)
	}
	if shape.SubjectParam != "" || !shape.Subject.IsZero() {
		return stratRoute, nil
	}
	if shape.RandFilters {
		return 0, fmt.Errorf("%w: RAND() inside FILTER depends on whole-KB enumeration", ErrNotDecomposable)
	}
	if q.Form == sparql.AskForm {
		return stratConcat, nil // fan out; the ask path short-circuits
	}
	if len(q.OrderBy) > 0 {
		if !shape.MergeOrdered {
			return 0, fmt.Errorf("%w: ORDER BY needs whole-KB enumeration order, which this query's shard streams cannot reconstruct", ErrNotDecomposable)
		}
		if !shape.KeysMergeable {
			return 0, fmt.Errorf("%w: ORDER BY keys cannot be re-derived at the merge point", ErrNotDecomposable)
		}
		return stratMergeOrdered, nil
	}
	if shape.MergeOrdered {
		return stratMerge, nil
	}
	if q.Limit >= 0 || q.LimitVar != "" || q.Offset > 0 {
		// Without a merge column the federation cannot reconstruct
		// whole-KB enumeration order, and LIMIT/OFFSET select a prefix
		// of exactly that order: a concatenation would return a
		// shard-dependent row set, not just a reordered one.
		return 0, fmt.Errorf("%w: LIMIT/OFFSET select a prefix of whole-KB enumeration order, which this query's shard streams cannot reconstruct", ErrNotDecomposable)
	}
	return stratConcat, nil
}

// pushdownQuery derives the per-shard form of a fanned-out query:
// ordered queries lose ORDER BY / LIMIT / OFFSET (the merge point
// reassembles them), unordered ones lose OFFSET and keep a LIMIT of
// offset+limit when no DISTINCT intervenes (a shard can contribute at
// most the first offset+limit rows of the merged prefix; DISTINCT
// voids that bound because a shard cannot see cross-shard duplicates).
func pushdownQuery(q *sparql.Query, strat strategy) *sparql.Query {
	push := q.MapPatterns(func(tp sparql.TriplePattern) sparql.TriplePattern { return tp })
	push.Offset = 0
	if strat == stratMergeOrdered {
		push.OrderBy = nil
		push.Limit = -1
		push.LimitVar = ""
		return push
	}
	switch {
	case q.Distinct:
		push.Limit = -1
		push.LimitVar = ""
	case q.LimitVar != "":
		// kept; the execution binds offset+limit into it
	case q.Limit >= 0:
		push.Limit = q.Offset + q.Limit
	}
	return push
}

// textPlan is the cached federation plan of one query text.
type textPlan struct {
	form       sparql.Form
	strat      strategy
	shape      sparql.ShardShape
	vars       []string
	distinct   bool
	limit      int
	offset     int
	routeShard int    // valid for stratRoute
	push       string // pushdown text for fan-out strategies
	canonical  string // canonical original text (RAND stream derivation)
}

// orderedSpec bundles what the ordered merge needs from a text plan.
func (pl *textPlan) orderedSpec(seed int64, maxRows int) orderedMergeSpec {
	return orderedMergeSpec{
		col:        pl.shape.SubjectCol,
		keys:       pl.shape.Keys,
		orderTotal: pl.shape.OrderTotal,
		distinct:   pl.distinct,
		limit:      pl.limit,
		offset:     pl.offset,
		maxRows:    maxRows,
		seed:       seed,
		text:       pl.canonical,
	}
}

// maxCachedPlans bounds the text-plan cache; alignment traffic draws
// from a handful of shapes, so the bound is rarely reached.
const maxCachedPlans = 256

// planFor parses and classifies a query text, caching the outcome.
func (g *Group) planFor(query string) (*textPlan, error) {
	g.mu.Lock()
	if pl, ok := g.plans[query]; ok {
		g.mu.Unlock()
		return pl, nil
	}
	g.mu.Unlock()

	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	shape := sparql.AnalyzeShard(q, nil)
	strat, err := classify(q, shape)
	if err != nil {
		return nil, err
	}
	pl := &textPlan{
		form:      q.Form,
		strat:     strat,
		shape:     shape,
		vars:      q.Vars,
		distinct:  q.Distinct,
		limit:     q.Limit,
		offset:    q.Offset,
		canonical: q.String(),
	}
	if strat == stratRoute {
		pl.routeShard = kb.SubjectShard(shape.Subject, len(g.shards))
	} else if q.Form == sparql.SelectForm {
		pl.push = pushdownQuery(q, strat).String()
	}

	g.mu.Lock()
	if len(g.plans) >= maxCachedPlans {
		g.plans = make(map[string]*textPlan, maxCachedPlans)
	}
	g.plans[query] = pl
	g.mu.Unlock()
	return pl, nil
}

// mergePuller selects the unordered merge for a plan over opened shard
// sources.
func (g *Group) mergePuller(pl *textPlan, sources []rowsSource) puller {
	if pl.strat == stratMerge {
		return newSubjectPuller(sources, pl.shape.SubjectCol)
	}
	return newConcatPuller(sources)
}
