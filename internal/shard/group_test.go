package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"sofya/internal/core"
	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sampling"
	"sofya/internal/sparql"
	"sofya/internal/synth"
)

// The full pipeline differential: an aligner speaking to sharded
// endpoints must produce exactly the alignments of one speaking to
// unsharded endpoints, because every probe it issues is byte-identical.
func TestAlignerShardedOracle(t *testing.T) {
	w := synth.Generate(synth.TinySpec())
	links := sampling.LinkView{Links: w.Links, KIsA: true}
	cfg := core.UBSConfig()
	cfg.CheckEquivalence = true

	k := endpoint.NewLocal(w.Yago, 7)
	kp := endpoint.NewLocal(w.Dbp, 8)
	baseline := core.New(k, kp, links, cfg)

	heads := w.Report.YagoRelations
	if len(heads) > 4 {
		heads = heads[:4]
	}
	want := make(map[string][]core.Alignment, len(heads))
	for _, head := range heads {
		als, err := baseline.AlignRelation(head)
		if err != nil {
			t.Fatal(err)
		}
		want[head] = als
	}

	for _, n := range []int{2, 3} {
		gk := Partitioned(w.Yago, n, 7)
		gkp := Partitioned(w.Dbp, n, 8)
		sharded := core.New(gk, gkp, links, cfg)
		for _, head := range heads {
			got, err := sharded.AlignRelation(head)
			if err != nil {
				t.Fatalf("n=%d aligning %s: %v", n, head, err)
			}
			if !reflect.DeepEqual(got, want[head]) {
				t.Errorf("n=%d alignments for %s diverge from unsharded run:\ngot  %+v\nwant %+v",
					n, head, got, want[head])
			}
		}
	}
}

// Truncated aggregation: if any shard's stream was cut by its row cap,
// the merged result reports Truncated.
func TestGroupTruncatedAggregation(t *testing.T) {
	k := kb.New("trunc")
	for i := 0; i < 40; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%d", i), "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	g := PartitionedRestricted(k, 3, 1, endpoint.Quota{MaxRows: 5})
	res, err := g.Select("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("merged result not flagged Truncated though every shard was capped")
	}

	// Streams aggregate the flag too.
	pq, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if !rows.Truncated() {
		t.Fatal("merged stream not flagged Truncated")
	}
	rows.Close()

	// An uncapped group stays untruncated.
	g2 := Partitioned(k, 3, 1)
	res2, err := g2.Select("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Truncated {
		t.Fatal("uncapped merged result flagged Truncated")
	}
}

// Quota exhaustion on a shard surfaces as ErrQuotaExceeded from the
// merge, never as a silently clean (empty or shortened) result.
func TestGroupQuotaSurfaces(t *testing.T) {
	k := kb.New("quota")
	for i := 0; i < 10; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%d", i), "http://x/p", "http://x/o")
	}
	g := PartitionedRestricted(k, 2, 1, endpoint.Quota{MaxQueries: 1})
	if _, err := g.Select("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }"); err != nil {
		t.Fatalf("first fan-out should fit the budget: %v", err)
	}
	_, err := g.Select("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if !errors.Is(err, endpoint.ErrQuotaExceeded) {
		t.Fatalf("exhausted quota surfaced as %v, want ErrQuotaExceeded", err)
	}
	if _, err := g.Ask("ASK { ?x <http://x/nothere> ?y }"); !errors.Is(err, endpoint.ErrQuotaExceeded) {
		t.Fatalf("exhausted quota on ASK surfaced as %v, want ErrQuotaExceeded", err)
	}
}

// errRows is a shard stream that fails mid-flight — the way a remote
// shard's quota or connection loss manifests inside a merge.
type errRows struct {
	rows [][]rdf.Term
	err  error
	i    int
	row  []rdf.Term
}

func (r *errRows) Vars() []string  { return []string{"x"} }
func (r *errRows) Row() []rdf.Term { return r.row }
func (r *errRows) Truncated() bool { return false }
func (r *errRows) Close()          { r.i = len(r.rows) }
func (r *errRows) Err() error {
	if r.i >= len(r.rows) {
		return r.err
	}
	return nil
}
func (r *errRows) Next() bool {
	if r.i >= len(r.rows) {
		return false
	}
	r.row = r.rows[r.i]
	r.i++
	return true
}

func TestMergeSurfacesMidStreamError(t *testing.T) {
	rowOf := func(s string) []rdf.Term { return []rdf.Term{rdf.NewIRI(s)} }
	for _, mk := range []func([]rowsSource) puller{
		func(s []rowsSource) puller { return newConcatPuller(s) },
		func(s []rowsSource) puller { return newSubjectPuller(s, 0) },
	} {
		sources := []rowsSource{
			&errRows{rows: [][]rdf.Term{rowOf("http://x/a")}, err: endpoint.ErrQuotaExceeded},
			endpoint.ReplayRows(&sparql.Result{Vars: []string{"x"}, Rows: [][]rdf.Term{rowOf("http://x/b")}}),
		}
		merged := newFanoutRows([]string{"x"}, mk(sources), false, 0, -1, 0)
		for merged.Next() {
		}
		if !errors.Is(merged.Err(), endpoint.ErrQuotaExceeded) {
			t.Fatalf("mid-stream quota error swallowed: Err() = %v", merged.Err())
		}
	}
}

// LIMIT pushdown stops losing shards early: after the merged limit is
// satisfied, no shard has produced more than the pushed-down bound, and
// the remaining shard streams are closed.
func TestGroupLimitPushdownStopsShards(t *testing.T) {
	k := kb.New("push")
	for i := 0; i < 200; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%03d", i), "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	g := Partitioned(k, 2, 1)
	pq, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } LIMIT $n", "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Select(sparql.IRIArg("http://x/p"), sparql.IntArg(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("limit ignored: got %d rows", len(res.Rows))
	}
	total := g.Stats().Rows
	if total > 6 {
		t.Fatalf("shards produced %d rows for a LIMIT-3 fan-out over 2 shards; pushdown bound is 6", total)
	}
}

// The merged stream closes its shard streams when the caller closes
// early; the shards stop producing (pulled-rows-only accounting).
func TestGroupStreamEarlyClose(t *testing.T) {
	k := kb.New("early")
	for i := 0; i < 500; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%03d", i), "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	g := Partitioned(k, 3, 1)
	pq, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4 && rows.Next(); i++ {
	}
	rows.Close()
	if produced := g.Stats().Rows; produced > 10 {
		t.Fatalf("early-closed merge left shards producing: %d rows pulled", produced)
	}
	// Closing twice is fine; Err stays nil after a clean close.
	rows.Close()
	if rows.Err() != nil {
		t.Fatalf("closed stream reports error: %v", rows.Err())
	}
}

// Decorator composition: Caching and Coalescing wrap a Group like any
// endpoint, and a shared coalescer over the group and its shards keeps
// their flights apart.
func TestGroupUnderDecorators(t *testing.T) {
	w := synth.Generate(synth.TinySpec())
	rel, _ := entityRelations(t, w)
	const seed = 5
	local := endpoint.NewLocal(w.Yago, seed)
	g := Partitioned(w.Yago, 3, seed)
	deco := endpoint.NewCoalescing(endpoint.NewCaching(g, 0))

	q := fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 5", rel)
	want, err := local.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second round hits the cache
		got, err := deco.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if renderResult(got) != renderResult(want) {
			t.Fatalf("decorated group diverges on round %d", i)
		}
	}

	pq, err := deco.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	got, err := pq.Select(sparql.IRIArg(rel), sparql.IntArg(5))
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(got) != renderResult(want) {
		t.Fatal("decorated prepared group diverges")
	}
}

// Group-level statistics aggregate the shards'.
func TestGroupStatsAggregate(t *testing.T) {
	k := kb.New("stats")
	for i := 0; i < 12; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%d", i), "http://x/p", "http://x/o")
	}
	g := Partitioned(k, 3, 1)
	if _, err := g.Select("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }"); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Queries != 3 {
		t.Fatalf("fan-out charged %d shard queries, want 3", st.Queries)
	}
	if st.Rows != 12 {
		t.Fatalf("shards produced %d rows, want 12", st.Rows)
	}
	g.ResetStats()
	if st := g.Stats(); st.Queries != 0 || st.Rows != 0 {
		t.Fatalf("ResetStats left %+v", st)
	}
}
