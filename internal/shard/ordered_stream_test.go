package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
)

// ordered_stream_test.go pins the streaming ordered merge (orderedRows):
// OFFSET windows across the whole span, mid-stream shard errors, stream
// close at every stage, early close of losing shards, and the compact
// binary dedup key's agreement with the engine's TermID-based DISTINCT.

// spanKB builds n subjects with one fact each under http://x/p.
func spanKB(n int) *kb.KB {
	k := kb.New("span")
	for i := 0; i < n; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%03d", i), "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	return k
}

// The ordered merge must reproduce the unsharded endpoint for OFFSET
// values spanning the result: 0, 1, mid-result, and beyond the end —
// for RAND-keyed and subject-keyed orderings, drained and streamed.
func TestOrderedMergeOffsetSpans(t *testing.T) {
	const facts, seed = 30, 13
	local := endpoint.NewLocal(spanKB(facts), seed)
	orderings := []string{"ORDER BY RAND()", "ORDER BY ?x"}
	offsets := []int{0, 1, facts / 2, facts + 70}
	limits := []int{5, facts + 10}

	for _, shards := range oracleShardCounts {
		g := Partitioned(spanKB(facts), shards, seed)
		for _, ord := range orderings {
			for _, off := range offsets {
				tmpl := fmt.Sprintf("SELECT ?x ?y WHERE { ?x $r ?y } %s LIMIT $n OFFSET %d", ord, off)
				lp, err := local.Prepare(tmpl, "r", "n")
				if err != nil {
					t.Fatal(err)
				}
				gp, err := g.Prepare(tmpl, "r", "n")
				if err != nil {
					t.Fatalf("k=%d %q: %v", shards, tmpl, err)
				}
				for _, n := range limits {
					args := []sparql.Arg{sparql.IRIArg("http://x/p"), sparql.IntArg(n)}
					want, err := lp.Select(args...)
					if err != nil {
						t.Fatal(err)
					}
					got, err := gp.Select(args...)
					if err != nil {
						t.Fatalf("k=%d %q n=%d: %v", shards, tmpl, n, err)
					}
					if renderResult(got) != renderResult(want) {
						t.Errorf("k=%d %q n=%d Select diverges:\n--- sharded ---\n%s\n--- local ---\n%s",
							shards, tmpl, n, renderResult(got), renderResult(want))
					}
					gr, err := gp.Stream(context.Background(), args...)
					if err != nil {
						t.Fatal(err)
					}
					if gotS := drainStream(t, gr); renderResult(gotS) != renderResult(want) {
						t.Errorf("k=%d %q n=%d Stream diverges from Select", shards, tmpl, n)
					}
				}
			}
		}
	}
}

// closeRows counts Close calls around an inner stream, so tests can
// assert that the merge released every shard stream.
type closeRows struct {
	endpoint.Rows
	closed bool
}

func (c *closeRows) Close() {
	c.closed = true
	c.Rows.Close()
}

func trackedSources(inner ...endpoint.Rows) ([]rowsSource, []*closeRows) {
	sources := make([]rowsSource, len(inner))
	trackers := make([]*closeRows, len(inner))
	for i, r := range inner {
		trackers[i] = &closeRows{Rows: r}
		sources[i] = trackers[i]
	}
	return sources, trackers
}

func assertAllClosed(t *testing.T, trackers []*closeRows) {
	t.Helper()
	for i, tr := range trackers {
		if !tr.closed {
			t.Errorf("shard stream %d left open", i)
		}
	}
}

// A shard stream failing mid-merge must surface its error from the
// ordered merge — on the bounded and the unbounded path alike — and
// every shard stream must be closed afterwards.
func TestOrderedMergeMidStreamError(t *testing.T) {
	rowOf := func(s string) []rdf.Term { return []rdf.Term{rdf.NewIRI(s)} }
	for _, limit := range []int{-1, 2} {
		sources, trackers := trackedSources(
			&errRows{rows: [][]rdf.Term{rowOf("http://x/a")}, err: endpoint.ErrQuotaExceeded},
			endpoint.ReplayRows(&sparql.Result{Vars: []string{"x"}, Rows: [][]rdf.Term{rowOf("http://x/b"), rowOf("http://x/d")}}),
		)
		spec := orderedMergeSpec{
			col:        0,
			keys:       []sparql.ShardOrderKey{{Rand: true}},
			orderTotal: true,
			limit:      limit,
			seed:       1,
			text:       "q",
		}
		rows := newOrderedRows([]string{"x"}, sources, spec)
		for rows.Next() {
		}
		if !errors.Is(rows.Err(), endpoint.ErrQuotaExceeded) {
			t.Fatalf("limit=%d: mid-stream quota error swallowed: Err() = %v", limit, rows.Err())
		}
		assertAllClosed(t, trackers)
		rows.Close() // idempotent after an error stop
	}

	// The drained form propagates the same error as a call failure.
	sources, trackers := trackedSources(
		&errRows{rows: [][]rdf.Term{rowOf("http://x/a")}, err: endpoint.ErrQuotaExceeded},
	)
	if _, err := drainRows(newOrderedRows([]string{"x"}, sources, orderedMergeSpec{col: 0, limit: -1})); !errors.Is(err, endpoint.ErrQuotaExceeded) {
		t.Fatalf("drained merge returned %v, want ErrQuotaExceeded", err)
	}
	assertAllClosed(t, trackers)
}

// Closing a streaming ordered merge — before the first row and halfway
// through emission — must close every shard stream and stay clean on a
// second Close.
func TestOrderedStreamCloseReleasesShards(t *testing.T) {
	mkResult := func(subjects ...string) *sparql.Result {
		res := &sparql.Result{Vars: []string{"x"}}
		for _, s := range subjects {
			res.Rows = append(res.Rows, []rdf.Term{rdf.NewIRI(s)})
		}
		return res
	}
	spec := orderedMergeSpec{
		col:        0,
		keys:       []sparql.ShardOrderKey{{Rand: true}},
		orderTotal: true,
		limit:      -1,
		seed:       5,
		text:       "q",
	}

	// Close before the first Next: the enumeration never ran, the shard
	// streams are still open and must be released.
	sources, trackers := trackedSources(
		endpoint.ReplayRows(mkResult("http://x/a", "http://x/c")),
		endpoint.ReplayRows(mkResult("http://x/b")),
	)
	rows := newOrderedRows([]string{"x"}, sources, spec)
	rows.Close()
	assertAllClosed(t, trackers)
	if rows.Next() {
		t.Fatal("closed merge still yields rows")
	}

	// Close halfway through emission.
	sources, trackers = trackedSources(
		endpoint.ReplayRows(mkResult("http://x/a", "http://x/c")),
		endpoint.ReplayRows(mkResult("http://x/b", "http://x/d")),
	)
	rows = newOrderedRows([]string{"x"}, sources, spec)
	if !rows.Next() {
		t.Fatalf("merge yielded no rows: %v", rows.Err())
	}
	rows.Close()
	assertAllClosed(t, trackers)
	rows.Close()
	if rows.Err() != nil {
		t.Fatalf("closed merge reports error: %v", rows.Err())
	}

	// The same through the group seam, under the race detector in CI.
	const facts, seed = 120, 3
	g := Partitioned(spanKB(facts), 3, seed)
	pq, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	gr, err := pq.Stream(context.Background(), sparql.IRIArg("http://x/p"), sparql.IntArg(20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2 && gr.Next(); i++ {
	}
	gr.Close()
	gr.Close()
	if gr.Err() != nil {
		t.Fatalf("closed group stream reports error: %v", gr.Err())
	}
}

// With an ascending subject as the only ORDER BY key, the bounded merge
// proves losing shards irrelevant and closes them early: the shards
// stop producing long before their enumerations end, and the result is
// still byte-identical to the unsharded endpoint.
func TestOrderedMergeEarlyClosesLosingShards(t *testing.T) {
	const facts, seed, limit = 600, 17, 5
	local := endpoint.NewLocal(spanKB(facts), seed)
	lp, err := local.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY ?x LIMIT $n", "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	args := []sparql.Arg{sparql.IRIArg("http://x/p"), sparql.IntArg(limit)}
	want, err := lp.Select(args...)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 7} {
		g := Partitioned(spanKB(facts), shards, seed)
		gp, err := g.Prepare("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY ?x LIMIT $n", "r", "n")
		if err != nil {
			t.Fatal(err)
		}
		got, err := gp.Select(args...)
		if err != nil {
			t.Fatal(err)
		}
		if renderResult(got) != renderResult(want) {
			t.Fatalf("k=%d subject-ordered probe diverges:\n--- sharded ---\n%s\n--- local ---\n%s",
				shards, renderResult(got), renderResult(want))
		}
		// Every shard contributes its stream heads plus the rows pulled
		// until the top-k filled and the early close fired — far below
		// the full 600-row enumeration the drain-based merge paid for.
		budget := 3*limit + 4*shards
		if pulled := g.Stats().Rows; pulled > budget {
			t.Errorf("k=%d early close ineffective: %d rows pulled from shards, want <= %d", shards, pulled, budget)
		}
	}
}

// The compact binary dedup key must be injective on term tuples — in
// particular across the concatenation and kind/lang/datatype ambiguities
// a naive string join would collide on.
func TestRowKeyInjective(t *testing.T) {
	iri := rdf.NewIRI
	lit := rdf.NewLiteral
	rows := [][]rdf.Term{
		{iri("http://x/ab"), iri("http://x/c")},
		{iri("http://x/a"), iri("http://x/bc")},
		{lit("a")},
		{iri("a")},
		{rdf.NewLangLiteral("a", "x")},
		{rdf.NewTypedLiteral("a", "x")},
		{lit("a"), lit("")},
		{lit(""), lit("a")},
	}
	seen := map[string]int{}
	for i, row := range rows {
		key := rowKey(row)
		if j, dup := seen[key]; dup {
			t.Errorf("rows %d and %d collide on key %q", j, i, key)
		}
		seen[key] = i
	}
	a := []rdf.Term{iri("http://x/a"), lit("v")}
	b := []rdf.Term{iri("http://x/a"), lit("v")}
	if rowKey(a) != rowKey(b) {
		t.Error("equal rows disagree on key")
	}
	if !bytes.Equal(appendRowKey(nil, a), appendRowKey([]byte{}, a)) {
		t.Error("appendRowKey depends on the destination buffer")
	}
}

// Merge-point DISTINCT (binary content keys) must agree with the
// engine's TermID dedup, including RDF 1.1 canonicalization: an
// xsd:string literal and the plain literal with the same lexical form
// are one term, even when they enter through different shards.
func TestGroupDistinctDedupMatchesEngine(t *testing.T) {
	build := func() *kb.KB {
		k := kb.New("dedup")
		p := rdf.NewIRI("http://x/p")
		k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s1"), p, rdf.NewTypedLiteral("v", rdf.XSDString)))
		k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s2"), p, rdf.NewLiteral("v")))
		k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s3"), p, rdf.NewLangLiteral("v", "en")))
		k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s4"), p, rdf.NewLiteral("w")))
		k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s5"), p, rdf.NewTypedLiteral("w", "http://x/custom")))
		return k
	}
	const seed = 2
	local := endpoint.NewLocal(build(), seed)

	// Without the subject in the projection the merge concatenates shard
	// streams (row order is not reconstructable), so the agreement is on
	// the row set: "v" arrives from two shards — once interned from the
	// typed form, once from the plain — and must still collapse to one.
	setOf := func(res *sparql.Result) string {
		keys := make([]string, len(res.Rows))
		for i, row := range res.Rows {
			keys[i] = rowKey(row)
		}
		sort.Strings(keys)
		return strings.Join(keys, "\x00")
	}
	const qSet = "SELECT DISTINCT ?y WHERE { ?x <http://x/p> ?y }"
	want, err := local.Select(qSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 4 {
		t.Fatalf("engine kept %d distinct objects, want 4", len(want.Rows))
	}
	for _, shards := range oracleShardCounts {
		g := Partitioned(build(), shards, seed)
		got, err := g.Select(qSet)
		if err != nil {
			t.Fatalf("k=%d %q: %v", shards, qSet, err)
		}
		if setOf(got) != setOf(want) {
			t.Errorf("k=%d DISTINCT row set diverges for %q:\n--- sharded ---\n%s\n--- local ---\n%s",
				shards, qSet, renderResult(got), renderResult(want))
		}

		// With the subject projected, the ordered merge must stay
		// byte-identical through the DISTINCT pipeline stage.
		const qOrd = "SELECT DISTINCT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND() LIMIT 4"
		wantOrd, err := local.Select(qOrd)
		if err != nil {
			t.Fatal(err)
		}
		gotOrd, err := g.Select(qOrd)
		if err != nil {
			t.Fatalf("k=%d %q: %v", shards, qOrd, err)
		}
		if renderResult(gotOrd) != renderResult(wantOrd) {
			t.Errorf("k=%d ordered DISTINCT diverges:\n--- sharded ---\n%s\n--- local ---\n%s",
				shards, renderResult(gotOrd), renderResult(wantOrd))
		}
	}
}

// The group row cap is decided per emission, after DISTINCT dedup: a
// merge whose cap is reached exactly when only duplicate rows remain
// must not flag truncation (no emittable row was cut), and one with
// more distinct rows pending must — exactly like the row-capped
// unsharded endpoint.
func TestGroupRowCapMidDistinctDedup(t *testing.T) {
	const subjects = 10
	build := func() *kb.KB {
		k := kb.New("capdedup")
		for i := 0; i < subjects; i++ {
			s := fmt.Sprintf("http://x/s%02d", i)
			// Two facts per subject: DISTINCT ?x sees every subject twice.
			k.AddIRIs(s, "http://x/p", fmt.Sprintf("http://x/o%da", i))
			k.AddIRIs(s, "http://x/p", fmt.Sprintf("http://x/o%db", i))
		}
		return k
	}
	const seed = 4
	queries := []string{
		"SELECT DISTINCT ?x WHERE { ?x <http://x/p> ?y }",
		"SELECT DISTINCT ?x WHERE { ?x <http://x/p> ?y } ORDER BY RAND()",
	}
	for _, cap := range []int{subjects, subjects / 2} {
		quota := endpoint.Quota{MaxRows: cap}
		local := endpoint.NewLocalRestricted(build(), seed, quota)
		for _, shards := range []int{2, 3} {
			g := PartitionedRestricted(build(), shards, seed, quota)
			for _, q := range queries {
				want, err := local.Select(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := g.Select(q)
				if err != nil {
					t.Fatalf("k=%d cap=%d %q: %v", shards, cap, q, err)
				}
				if renderResult(got) != renderResult(want) {
					t.Errorf("k=%d cap=%d %q diverges:\n--- sharded ---\n%s\n--- local ---\n%s",
						shards, cap, q, renderResult(got), renderResult(want))
				}
				wantTrunc := cap < subjects
				if got.Truncated != wantTrunc {
					t.Errorf("k=%d cap=%d %q: Truncated=%v, want %v", shards, cap, q, got.Truncated, wantTrunc)
				}
			}
		}
	}
}
