package shard

import (
	"context"
	"fmt"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sparql"
)

// prepared.go is the fan-out seam: a template prepares once per shard —
// in its original form for routed executions and ASK probes, and in its
// pushdown form for merged ones — and every execution binds arguments
// per shard. Which shard(s) run is decided per call when the routing
// subject is itself a parameter.

// groupPrepared is the Group's PreparedQuery.
type groupPrepared struct {
	g      *Group
	tmpl   *sparql.Template
	params []string
	shape  sparql.ShardShape
	strat  strategy
	form   sparql.Form

	distinct bool
	limit    int // static LIMIT (-1 when none or parameterized)
	offset   int
	limitIdx int // param index of LIMIT $n, or -1
	routeIdx int // param index of the routing subject, or -1
	routeTo  int // static routing shard (concrete subject), or -1
	projVars []string

	orig []endpoint.PreparedQuery // per shard, original template
	push []endpoint.PreparedQuery // per shard, pushdown template (fan-out SELECT)
	// pushMap maps pushdown argument positions to original ones;
	// pushAdjustLimit marks that the pushdown's LIMIT argument must be
	// offset+limit (unordered limit pushdown).
	pushMap         []int
	pushAdjustLimit bool
}

// prepare builds the per-shard handles for a template.
func (g *Group) prepare(template string, params []string) (endpoint.PreparedQuery, error) {
	tmpl, err := sparql.ParseTemplate(template, params...)
	if err != nil {
		return nil, err
	}
	q := tmpl.Query()
	isParam := func(name string) bool {
		for _, p := range params {
			if p == name {
				return true
			}
		}
		return false
	}
	shape := sparql.AnalyzeShard(q, isParam)
	strat, err := classify(q, shape)
	if err != nil {
		return nil, err
	}

	p := &groupPrepared{
		g:        g,
		tmpl:     tmpl,
		params:   append([]string(nil), params...),
		shape:    shape,
		strat:    strat,
		form:     q.Form,
		distinct: q.Distinct,
		limit:    q.Limit,
		offset:   q.Offset,
		limitIdx: -1,
		routeIdx: -1,
		routeTo:  -1,
		projVars: q.Vars,
	}
	if q.LimitVar != "" {
		p.limit = -1
	}
	for i, name := range params {
		if tmpl.IntParam(i) {
			p.limitIdx = i
		}
		if name == shape.SubjectParam {
			p.routeIdx = i
		}
	}
	if !shape.Subject.IsZero() {
		p.routeTo = kb.SubjectShard(shape.Subject, len(g.shards))
	}

	// Original-template handles serve routed executions and ASK probes;
	// fan-out SELECTs only ever run their pushdown form, so skip the
	// per-shard compilation they would never use.
	if strat == stratRoute || q.Form == sparql.AskForm {
		p.orig = make([]endpoint.PreparedQuery, len(g.shards))
		for i, sh := range g.shards {
			if p.orig[i], err = sh.Prepare(template, params...); err != nil {
				return nil, err
			}
		}
	}

	if strat != stratRoute && q.Form == sparql.SelectForm {
		pq := pushdownQuery(q, strat)
		var pushParams []string
		for i, name := range params {
			if tmpl.IntParam(i) && pq.LimitVar == "" {
				continue // the pushdown stripped LIMIT $name
			}
			pushParams = append(pushParams, name)
			p.pushMap = append(p.pushMap, i)
		}
		pushTmpl, err := sparql.TemplateFromQuery(pq, pushParams...)
		if err != nil {
			return nil, fmt.Errorf("shard: deriving pushdown template: %w", err)
		}
		p.pushAdjustLimit = pq.LimitVar != ""
		p.push = make([]endpoint.PreparedQuery, len(g.shards))
		for i, sh := range g.shards {
			if p.push[i], err = sh.Prepare(pushTmpl.Source(), pushParams...); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// validateArgs mirrors the per-shard handles' argument validation for
// paths that dispatch before any shard sees the arguments.
func (p *groupPrepared) validateArgs(args []sparql.Arg) error {
	if len(args) != len(p.params) {
		return fmt.Errorf("shard: prepared query needs %d args, got %d", len(p.params), len(args))
	}
	for i, a := range args {
		if n, isInt := a.Int(); isInt != p.tmpl.IntParam(i) {
			return fmt.Errorf("shard: prepared arg %d has the wrong kind", i)
		} else if isInt && n < 0 {
			return fmt.Errorf("shard: prepared arg %d: negative LIMIT", i)
		}
	}
	return nil
}

// routeShard resolves the executing shard of a routed call.
func (p *groupPrepared) routeShard(args []sparql.Arg) (int, error) {
	if p.routeTo >= 0 {
		return p.routeTo, nil
	}
	t, ok := args[p.routeIdx].Term()
	if !ok {
		return 0, fmt.Errorf("shard: routing parameter $%s is not a term", p.params[p.routeIdx])
	}
	return kb.SubjectShard(t, len(p.g.shards)), nil
}

// pushArgs derives the pushdown handles' arguments from the original
// ones, folding the merge-point OFFSET into a pushed LIMIT.
func (p *groupPrepared) pushArgs(args []sparql.Arg) []sparql.Arg {
	out := make([]sparql.Arg, len(p.pushMap))
	for j, oi := range p.pushMap {
		a := args[oi]
		if p.pushAdjustLimit && oi == p.limitIdx {
			n, _ := a.Int()
			a = sparql.IntArg(p.offset + n)
		}
		out[j] = a
	}
	return out
}

// effective returns the merge-point LIMIT and OFFSET of one execution.
func (p *groupPrepared) effective(args []sparql.Arg) (limit, offset int) {
	limit = p.limit
	if p.limitIdx >= 0 {
		limit, _ = args[p.limitIdx].Int()
	}
	return limit, p.offset
}

func (p *groupPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *groupPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *groupPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	if p.form != sparql.SelectForm {
		return nil, fmt.Errorf("shard: Select needs a SELECT query")
	}
	if err := p.validateArgs(args); err != nil {
		return nil, err
	}
	if p.strat == stratRoute {
		i, err := p.routeShard(args)
		if err != nil {
			return nil, err
		}
		res, err := p.orig[i].SelectCtx(ctx, args...)
		if err != nil {
			return nil, err
		}
		return capResult(res, p.g.maxRows), nil
	}
	if p.strat == stratMergeOrdered {
		rows, err := p.streamOrdered(ctx, args)
		if err != nil {
			return nil, err
		}
		return drainRows(rows)
	}
	results, err := p.drain(ctx, args)
	if err != nil {
		return nil, err
	}
	limit, offset := p.effective(args)
	return drainMerged(p.vars(), p.puller(replaySources(results)), p.distinct, offset, limit, p.g.maxRows)
}

func (p *groupPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	if p.form != sparql.AskForm {
		return false, fmt.Errorf("shard: Ask needs an ASK query")
	}
	if err := p.validateArgs(args); err != nil {
		return false, err
	}
	if p.strat == stratRoute {
		i, err := p.routeShard(args)
		if err != nil {
			return false, err
		}
		return p.orig[i].AskCtx(ctx, args...)
	}
	return p.g.fanoutAsk(ctx, func(ctx context.Context, i int) (bool, error) {
		return p.orig[i].AskCtx(ctx, args...)
	})
}

// Stream implements PreparedQuery. Routed executions stream natively
// from their shard. Fan-outs open every shard stream and merge lazily —
// rows are pulled from the shards only as the caller pulls, and an
// early Close aborts every shard mid-join. Ordered fan-outs reassemble
// ORDER BY through the streaming bounded merge (orderedRows): the whole
// enumeration is still consumed — ORDER BY cannot emit earlier — but
// over borrowed per-shard streams that never materialize losing rows.
func (p *groupPrepared) Stream(ctx context.Context, args ...sparql.Arg) (endpoint.Rows, error) {
	if p.form != sparql.SelectForm {
		return nil, fmt.Errorf("shard: Stream needs a SELECT query")
	}
	if err := p.validateArgs(args); err != nil {
		return nil, err
	}
	if p.strat == stratRoute {
		i, err := p.routeShard(args)
		if err != nil {
			return nil, err
		}
		rows, err := p.orig[i].Stream(ctx, args...)
		if err != nil {
			return nil, err
		}
		return newCapRows(rows, p.g.maxRows), nil
	}
	if p.strat == stratMergeOrdered {
		return p.streamOrdered(ctx, args)
	}
	sources, err := p.openStreams(ctx, args, false, "")
	if err != nil {
		return nil, err
	}
	limit, offset := p.effective(args)
	return newFanoutRows(p.vars(), p.puller(sources), p.distinct, offset, limit, p.g.maxRows), nil
}

// streamOrdered opens borrowed per-shard streams and reassembles the
// ordered whole-KB result over them — the one ordered-merge path both
// SelectCtx and Stream use.
func (p *groupPrepared) streamOrdered(ctx context.Context, args []sparql.Arg) (endpoint.Rows, error) {
	spec, err := p.orderedSpec(args)
	if err != nil {
		return nil, err
	}
	// When any key is deterministic (row-computable), offer shards the
	// chance to evaluate keys behind the wire: the canonical original
	// text names the keys, and remote shards that understand the keyed
	// stream protocol attach per-row values the merge consumes instead
	// of re-evaluating. RAND keys always stay merge-side.
	orderText := ""
	for _, k := range spec.keys {
		if k.Eval != nil {
			if orderText = spec.text; orderText == "" {
				if orderText, err = p.tmpl.Text(args...); err != nil {
					return nil, err
				}
			}
			break
		}
	}
	sources, err := p.openStreams(ctx, args, true, orderText)
	if err != nil {
		return nil, err
	}
	return newOrderedRows(p.vars(), sources, spec), nil
}

// openStreams opens the pushdown query's stream on every shard
// concurrently. borrowed selects the borrowed-row contract (for the
// ordered merge, which copies only winning rows); unordered merges keep
// the regular contract, since fanoutRows hands shard rows to callers.
// A non-empty orderText (borrowed path only) asks each shard for a
// keyed stream — ORDER BY key values attached per row; shards without
// the extension fall back to plain borrowed streams transparently.
func (p *groupPrepared) openStreams(ctx context.Context, args []sparql.Arg, borrowed bool, orderText string) ([]rowsSource, error) {
	pargs := p.pushArgs(args)
	sources := make([]rowsSource, len(p.push))
	// The shard streams outlive the fan-out (the caller pulls from them
	// after this returns), so they open under the caller's context, not
	// the fan-out's derived one, which dies when the fan-out returns —
	// a shard that re-checks its context later (an HTTP shard, a
	// caching continuation) must not see a context that expired with
	// the open.
	err := p.g.fanout(ctx, func(_ context.Context, i int) error {
		var rows endpoint.Rows
		var err error
		if borrowed && orderText != "" {
			rows, err = endpoint.StreamKeyed(ctx, p.push[i], orderText, pargs...)
		} else if borrowed {
			rows, err = endpoint.StreamBorrowed(ctx, p.push[i], pargs...)
		} else {
			rows, err = p.push[i].Stream(ctx, pargs...)
		}
		if err != nil {
			return err
		}
		sources[i] = rows
		return nil
	})
	if err != nil {
		for _, s := range sources {
			if s != nil {
				s.Close()
			}
		}
		return nil, err
	}
	return sources, nil
}

// drain runs the pushdown on every shard concurrently.
func (p *groupPrepared) drain(ctx context.Context, args []sparql.Arg) ([]*sparql.Result, error) {
	pargs := p.pushArgs(args)
	results := make([]*sparql.Result, len(p.push))
	err := p.g.fanout(ctx, func(ctx context.Context, i int) error {
		res, err := p.push[i].SelectCtx(ctx, pargs...)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// orderedSpec assembles the ORDER BY reassembly parameters of one
// execution; the canonical text of the original query names the RAND
// stream, exactly as the unsharded engine derives it.
func (p *groupPrepared) orderedSpec(args []sparql.Arg) (orderedMergeSpec, error) {
	limit, offset := p.effective(args)
	spec := orderedMergeSpec{
		col:        p.shape.SubjectCol,
		keys:       p.shape.Keys,
		orderTotal: p.shape.OrderTotal,
		distinct:   p.distinct,
		limit:      limit,
		offset:     offset,
		maxRows:    p.g.maxRows,
		seed:       p.g.seed,
	}
	for _, k := range spec.keys {
		if k.Rand {
			text, err := p.tmpl.Text(args...)
			if err != nil {
				return spec, err
			}
			spec.text = text
			break
		}
	}
	return spec, nil
}

// vars returns the projected variable names of the template's query.
func (p *groupPrepared) vars() []string { return p.projVars }

// puller selects the unordered merge for this template's strategy.
func (p *groupPrepared) puller(sources []rowsSource) puller {
	if p.strat == stratMerge {
		return newSubjectPuller(sources, p.shape.SubjectCol)
	}
	return newConcatPuller(sources)
}

var _ endpoint.PreparedQuery = (*groupPrepared)(nil)
