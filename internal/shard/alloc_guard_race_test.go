//go:build race

package shard

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation inflates allocation counts; the
// alloc-ceiling guards skip themselves then (the CI test job runs them
// in a separate non-race step).
const raceEnabled = true
