package shard

// snapshot.go restarts a federation group from disk: the per-shard
// snapshot files cmd/kbgen writes (kb.WriteSnapshot of each partition
// shard) are self-contained serving units — each embeds the whole KB's
// planner statistics — so GroupFromSnapshots can memory-map them and
// stand the group back up without re-parsing, re-partitioning, or a
// planner-stats sidecar.

import (
	"fmt"
	"strings"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
)

// PartitionIndex reports whether a KB name is a kb.Partition shard
// name ("<base>/shard-<i>-of-<n>"), returning the shard's index and
// the partition size. Loaders use it to refuse serving a lone shard
// file as if it were a whole KB.
func PartitionIndex(name string) (i, n int, ok bool) {
	_, i, n, ok = parseShardName(name)
	return i, n, ok
}

// parseShardName splits the "<base>/shard-<i>-of-<n>" name kb.Partition
// gives its shards.
func parseShardName(name string) (base string, i, n int, ok bool) {
	cut := strings.LastIndex(name, "/shard-")
	if cut < 0 {
		return "", 0, 0, false
	}
	var rest string
	base, rest = name[:cut], name[cut+len("/shard-"):]
	if _, err := fmt.Sscanf(rest, "%d-of-%d", &i, &n); err != nil {
		return "", 0, 0, false
	}
	return base, i, n, i >= 0 && n > 0 && i < n
}

// GroupFromSnapshots memory-maps one snapshot file per shard
// (kb.OpenSnapshot) and federates them behind a Group. The files must
// be a complete shard set written from one kb.Partition — kbgen's
// `-snapshot -shards n` output — in any order: each shard records its
// partition position in its KB name ("<base>/shard-<i>-of-<n>"), and
// the group is assembled in that recorded order, so routing and merge
// determinism hold no matter how the caller globbed the paths. seed
// must be the RAND() seed the original serving endpoints used for
// byte-identical reassembled ORDER BY RAND() streams.
//
// A single whole-KB snapshot (no shard suffix in its name) is also
// accepted and served as a one-shard group.
func GroupFromSnapshots(seed int64, paths []string, opts ...Option) (*Group, error) {
	return GroupFromSnapshotsRestricted(seed, endpoint.Quota{}, paths, opts...)
}

// GroupFromSnapshotsRestricted is GroupFromSnapshots under an access
// quota, with PartitionedRestricted's semantics: the row cap applies
// once at the merge point, the query budget and latency per shard.
func GroupFromSnapshotsRestricted(seed int64, q endpoint.Quota, paths []string, opts ...Option) (*Group, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("shard: no snapshot paths given")
	}
	kbs := make([]*kb.KB, 0, len(paths))
	fail := func(err error) (*Group, error) {
		for _, k := range kbs {
			k.Close()
		}
		return nil, err
	}
	for _, p := range paths {
		k, err := kb.OpenSnapshot(p)
		if err != nil {
			return fail(err)
		}
		kbs = append(kbs, k)
	}

	name := kbs[0].Name()
	ordered := kbs
	if base, _, n, ok := parseShardName(kbs[0].Name()); ok || len(kbs) > 1 {
		if !ok {
			return fail(fmt.Errorf("shard: %s holds KB %q, which is not a partition shard", paths[0], kbs[0].Name()))
		}
		if n != len(kbs) {
			return fail(fmt.Errorf("shard: %s is shard %q but %d file(s) were given", paths[0], kbs[0].Name(), len(kbs)))
		}
		name = base
		ordered = make([]*kb.KB, n)
		for j, k := range kbs {
			b, i, m, ok := parseShardName(k.Name())
			if !ok || b != base || m != n {
				return fail(fmt.Errorf("shard: %s holds KB %q, which does not belong to the %q %d-shard set", paths[j], k.Name(), base, n))
			}
			if ordered[i] != nil {
				return fail(fmt.Errorf("shard: duplicate shard %d of %q (%s)", i, base, paths[j]))
			}
			ordered[i] = k
		}
	}

	shardQuota := q
	shardQuota.MaxRows = 0
	eps := make([]endpoint.Endpoint, len(ordered))
	for i, k := range ordered {
		eps[i] = endpoint.NewLocalRestricted(k, seed, shardQuota)
	}
	g, err := NewGroup(name, seed, eps, append([]Option{RowCap(q.MaxRows)}, opts...)...)
	if err != nil {
		return fail(err)
	}
	return g, nil
}
