package shard

// Federated cold start: standing a 3-shard endpoint group back up from
// kbgen's shard files — N-Triples plus the planner-stats sidecar
// versus self-contained mmap snapshots. The EXPERIMENTS.md restart
// numbers for `-shards 3` come from here.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/synth"
)

const coldStartShards = 3

type shardFiles struct {
	ntPaths   []string
	snapPaths []string
	statsPath string
}

// paperShardFiles writes the paper-world YAGO shard files once per
// process into a temp dir (reused across the two benchmarks so the
// expensive world generation happens once).
var paperShardFiles = sync.OnceValue(func() *shardFiles {
	src := synth.Generate(synth.DefaultSpec()).Yago
	dir, err := os.MkdirTemp("", "sofya-coldstart-*")
	if err != nil {
		panic(err)
	}
	f := &shardFiles{statsPath: filepath.Join(dir, "yago-planstats.tsv")}
	for i, sh := range kb.Partition(src, coldStartShards) {
		stem := filepath.Join(dir, fmt.Sprintf("yago-shard-%d-of-%d", i, coldStartShards))
		if err := sh.WriteFile(stem + ".nt"); err != nil {
			panic(err)
		}
		if err := sh.WriteSnapshotFile(stem + ".snap"); err != nil {
			panic(err)
		}
		f.ntPaths = append(f.ntPaths, stem+".nt")
		f.snapPaths = append(f.snapPaths, stem+".snap")
	}
	if err := src.WritePlanStatsFile(f.statsPath); err != nil {
		panic(err)
	}
	return f
})

func shardBenchFiles(b *testing.B) *shardFiles {
	b.Helper()
	return paperShardFiles()
}

// BenchmarkGroupColdStartParse rebuilds the federation group the
// pre-snapshot way: parse each shard's N-Triples, install the
// planner-stats sidecar, freeze, federate.
func BenchmarkGroupColdStartParse(b *testing.B) {
	files := shardBenchFiles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := kb.ReadPlanStatsFile(files.statsPath)
		if err != nil {
			b.Fatal(err)
		}
		eps := make([]endpoint.Endpoint, len(files.ntPaths))
		for j, p := range files.ntPaths {
			sh, err := kb.LoadFile(fmt.Sprintf("yago/shard-%d-of-%d", j, coldStartShards), p)
			if err != nil {
				b.Fatal(err)
			}
			sh.SetPlanStats(stats)
			eps[j] = endpoint.NewLocal(sh, 1)
		}
		g, err := NewGroup("yago", 1, eps)
		if err != nil {
			b.Fatal(err)
		}
		if g.Name() != "yago" {
			b.Fatal("bad group")
		}
	}
}

// BenchmarkGroupColdStartSnapshot restarts the same group from mmap
// snapshots: no parsing, no sidecar, no re-index.
func BenchmarkGroupColdStartSnapshot(b *testing.B) {
	files := shardBenchFiles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := GroupFromSnapshots(1, files.snapPaths)
		if err != nil {
			b.Fatal(err)
		}
		if g.Name() != "yago" {
			b.Fatal("bad group")
		}
		for _, ep := range g.Shards() {
			if l, ok := ep.(*endpoint.Local); ok {
				l.KB().Close()
			}
		}
	}
}
