package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
	"sofya/internal/synth"
)

// The differential oracle: a Group over k subject-hash shards must
// answer byte-identically to a Local endpoint over the unsharded KB —
// Select, Ask, prepared execution and streaming, ORDER BY RAND() LIMIT
// probes included — for every shard count.

var oracleShardCounts = []int{1, 2, 3, 7}

func renderResult(res *sparql.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Vars, ","))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for _, t := range row {
			sb.WriteString(t.String())
			sb.WriteByte('\t')
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "truncated=%v", res.Truncated)
	return sb.String()
}

func drainStream(t *testing.T, rows endpoint.Rows) *sparql.Result {
	t.Helper()
	defer rows.Close()
	res := &sparql.Result{Vars: rows.Vars()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	res.Truncated = rows.Truncated()
	return res
}

// sampleFact returns one (s, o) entity pair of rel from the endpoint.
func sampleFact(t *testing.T, ep endpoint.Endpoint, rel string) (string, string) {
	t.Helper()
	res, err := ep.Select(fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT 1", rel))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("relation %s has no facts", rel)
	}
	return res.Rows[0][0].Value, res.Rows[0][1].Value
}

// entityRelations picks two relations with entity objects and facts.
func entityRelations(t *testing.T, w *synth.World) (string, string) {
	t.Helper()
	k := w.Yago
	k.Freeze()
	var rels []string
	for _, p := range k.Relations() {
		iri := k.Term(p).Value
		n := 0
		entity := true
		k.EachFactOf(p, func(s, o kb.TermID) bool {
			n++
			if k.Term(o).IsLiteral() {
				entity = false
			}
			return n < 5 && entity
		})
		if n >= 3 && entity {
			rels = append(rels, iri)
		}
		if len(rels) == 2 {
			return rels[0], rels[1]
		}
	}
	t.Fatalf("world has fewer than two entity relations (found %d)", len(rels))
	return "", ""
}

func oracleQueries(rel, rel2, s, o string) (selects, asks []string) {
	selects = []string{
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y }", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT 4", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT 0", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT 4 OFFSET 3", rel),
		fmt.Sprintf("SELECT DISTINCT ?x WHERE { ?x <%s> ?y }", rel),
		fmt.Sprintf("SELECT DISTINCT ?x WHERE { ?x <%s> ?y } LIMIT 3 OFFSET 1", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER (?x != ?y) }", rel),
		fmt.Sprintf("SELECT ?x ?y ?z WHERE { ?x <%s> ?y . ?x <%s> ?z }", rel, rel2),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER NOT EXISTS { ?x <%s> ?y } }", rel, rel2),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 5", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 200", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND()", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 3 OFFSET 2", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY ?y LIMIT 6", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY DESC(?x) ?y", rel),
		fmt.Sprintf(`SELECT ?x ?y1 ?y2 WHERE {
  ?x <%s> ?y1 .
  ?x <%s> ?y2 .
  FILTER NOT EXISTS { ?x <%s> ?y2 }
} ORDER BY RAND() LIMIT 4`, rel, rel2, rel),
		fmt.Sprintf("SELECT ?p WHERE { <%s> ?p <%s> }", s, o),
		fmt.Sprintf("SELECT ?p ?v WHERE { <%s> ?p ?v . FILTER ISLITERAL(?v) }", s),
		fmt.Sprintf("SELECT ?y WHERE { <%s> <%s> ?y }", s, rel),
		fmt.Sprintf("SELECT ?y WHERE { <http://nowhere/entity> <%s> ?y }", rel),
	}
	asks = []string{
		fmt.Sprintf("ASK { <%s> <%s> <%s> }", s, rel, o),
		fmt.Sprintf("ASK { <%s> <%s> <%s> }", s, rel2, o),
		fmt.Sprintf("ASK { ?x <%s> ?y }", rel),
		"ASK { ?x <http://nowhere/rel> ?y }",
	}
	return selects, asks
}

func TestGroupTextOracle(t *testing.T) {
	w := synth.Generate(synth.TinySpec())
	rel, rel2 := entityRelations(t, w)
	const seed = 7
	local := endpoint.NewLocal(w.Yago, seed)
	s, o := sampleFact(t, local, rel)
	selects, asks := oracleQueries(rel, rel2, s, o)

	for _, k := range oracleShardCounts {
		g := Partitioned(w.Yago, k, seed)
		for _, q := range selects {
			want, err := local.Select(q)
			if err != nil {
				t.Fatalf("local %q: %v", q, err)
			}
			got, err := g.Select(q)
			if err != nil {
				t.Fatalf("k=%d %q: %v", k, q, err)
			}
			if renderResult(got) != renderResult(want) {
				t.Errorf("k=%d Select diverges for %q:\n--- sharded ---\n%s\n--- local ---\n%s",
					k, q, renderResult(got), renderResult(want))
			}
		}
		for _, q := range asks {
			want, err := local.Ask(q)
			if err != nil {
				t.Fatalf("local %q: %v", q, err)
			}
			got, err := g.Ask(q)
			if err != nil {
				t.Fatalf("k=%d %q: %v", k, q, err)
			}
			if got != want {
				t.Errorf("k=%d Ask(%q) = %v, want %v", k, q, got, want)
			}
		}
	}
}

func TestGroupPreparedOracle(t *testing.T) {
	w := synth.Generate(synth.TinySpec())
	rel, rel2 := entityRelations(t, w)
	const seed = 11
	local := endpoint.NewLocal(w.Yago, seed)
	s, o := sampleFact(t, local, rel)

	const (
		tmplSample  = "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n"
		tmplObjects = "SELECT ?y WHERE { $x $r ?y }"
		tmplPreds   = "SELECT ?p WHERE { $x ?p $y }"
		tmplOverlap = `SELECT ?x ?y1 ?y2 WHERE {
  ?x $a ?y1 .
  ?x $b ?y2 .
  FILTER NOT EXISTS { ?x $a ?y2 }
} ORDER BY RAND() LIMIT $n`
	)
	type probe struct {
		tmpl   string
		params []string
		args   []sparql.Arg
	}
	probes := []probe{
		{tmplSample, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel), sparql.IntArg(5)}},
		{tmplSample, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel), sparql.IntArg(0)}},
		{tmplSample, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel2), sparql.IntArg(300)}},
		{tmplObjects, []string{"x", "r"}, []sparql.Arg{sparql.IRIArg(s), sparql.IRIArg(rel)}},
		{tmplPreds, []string{"x", "y"}, []sparql.Arg{sparql.IRIArg(s), sparql.IRIArg(o)}},
		{tmplOverlap, []string{"a", "b", "n"}, []sparql.Arg{sparql.IRIArg(rel), sparql.IRIArg(rel2), sparql.IntArg(6)}},
	}

	for _, k := range oracleShardCounts {
		g := Partitioned(w.Yago, k, seed)
		for pi, pr := range probes {
			lp, err := local.Prepare(pr.tmpl, pr.params...)
			if err != nil {
				t.Fatal(err)
			}
			gp, err := g.Prepare(pr.tmpl, pr.params...)
			if err != nil {
				t.Fatalf("k=%d probe %d Prepare: %v", k, pi, err)
			}
			want, err := lp.Select(pr.args...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := gp.Select(pr.args...)
			if err != nil {
				t.Fatalf("k=%d probe %d Select: %v", k, pi, err)
			}
			if renderResult(got) != renderResult(want) {
				t.Errorf("k=%d probe %d Select diverges:\n--- sharded ---\n%s\n--- local ---\n%s",
					k, pi, renderResult(got), renderResult(want))
			}

			// Streaming must drain to the same bytes...
			lr, err := lp.Stream(context.Background(), pr.args...)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := gp.Stream(context.Background(), pr.args...)
			if err != nil {
				t.Fatalf("k=%d probe %d Stream: %v", k, pi, err)
			}
			wantS, gotS := drainStream(t, lr), drainStream(t, gr)
			if renderResult(gotS) != renderResult(wantS) {
				t.Errorf("k=%d probe %d Stream diverges:\n--- sharded ---\n%s\n--- local ---\n%s",
					k, pi, renderResult(gotS), renderResult(wantS))
			}

			// ...and an early-closed stream must yield a prefix of it.
			gr2, err := gp.Stream(context.Background(), pr.args...)
			if err != nil {
				t.Fatal(err)
			}
			var prefix [][]string
			for i := 0; i < 2 && gr2.Next(); i++ {
				var row []string
				for _, tm := range gr2.Row() {
					row = append(row, tm.String())
				}
				prefix = append(prefix, row)
			}
			gr2.Close()
			for i, row := range prefix {
				for j, cell := range row {
					if cell != wantS.Rows[i][j].String() {
						t.Errorf("k=%d probe %d early-close prefix row %d differs", k, pi, i)
					}
				}
			}
		}
	}
}

// One shard empty, one holding every match: the merge must behave
// identically to the unsharded endpoint, and the empty shard must not
// contribute (or block) anything.
func TestGroupEmptyShardOracle(t *testing.T) {
	const n = 2
	// Pick subjects that all hash to shard 0 of a 2-way partition.
	var subjects []string
	for i := 0; len(subjects) < 6; i++ {
		s := fmt.Sprintf("http://x/subject-%d", i)
		if kb.SubjectShard(rdf.NewIRI(s), n) == 0 {
			subjects = append(subjects, s)
		}
	}
	build := func() *kb.KB {
		k := kb.New("lopsided")
		for i, s := range subjects {
			k.AddIRIs(s, "http://x/p", fmt.Sprintf("http://x/o%d", i))
			k.AddIRIs(s, "http://x/p", fmt.Sprintf("http://x/o%d", i+1))
		}
		return k
	}
	const seed = 3
	local := endpoint.NewLocal(build(), seed)
	g := Partitioned(build(), n, seed)
	if sh := g.Shards()[1].(*endpoint.Local); sh.KB().Size() != 0 {
		t.Fatalf("shard 1 should be empty, holds %d facts", sh.KB().Size())
	}
	queries := []string{
		"SELECT ?x ?y WHERE { ?x <http://x/p> ?y }",
		"SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND() LIMIT 3",
		"SELECT DISTINCT ?x WHERE { ?x <http://x/p> ?y } LIMIT 2",
	}
	for _, q := range queries {
		want, err := local.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Select(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if renderResult(got) != renderResult(want) {
			t.Errorf("empty-shard Select diverges for %q:\n%s\nvs\n%s", q, renderResult(got), renderResult(want))
		}
	}
	ok, err := g.Ask("ASK { ?x <http://x/p> ?y }")
	if err != nil || !ok {
		t.Fatalf("Ask over lopsided shards = %v, %v", ok, err)
	}
}

// Queries outside the federation contract are rejected, not answered
// wrongly.
func TestGroupRejectsNonDecomposable(t *testing.T) {
	k := kb.New("nd")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	g := Partitioned(k, 2, 1)
	for _, q := range []string{
		"SELECT ?x ?z WHERE { ?x <http://x/p> ?y . ?y <http://x/p> ?z }",
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (RAND() < 0.5) }",
		"SELECT ?y WHERE { ?x <http://x/p> ?y } ORDER BY ?y",
		"ASK { }",
	} {
		if _, err := g.Select(q); err == nil {
			if _, err := g.Ask(q); err == nil {
				t.Errorf("query %q was accepted", q)
			}
		} else if !errors.Is(err, ErrNotDecomposable) {
			t.Errorf("query %q: error %v is not ErrNotDecomposable", q, err)
		}
		if _, err := g.Prepare(q); err == nil {
			t.Errorf("Prepare(%q) was accepted", q)
		}
	}
}
