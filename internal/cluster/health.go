package cluster

import (
	"context"
	"time"
)

// healthProbe is the cheap liveness query every replica answers in O(1)
// — any stored triple satisfies it. Probe cost is one admission and one
// index peek; the answer's value is irrelevant, only that one arrived.
const healthProbe = "ASK { ?s ?p ?o }"

// healthLoop actively probes every replica each ProbeInterval:
// consecutive probe failures eject (FailAfter), the first success
// re-admits. It runs until Close.
func (r *Replicas) healthLoop() {
	defer close(r.done)
	t := time.NewTicker(r.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll probes the replicas sequentially — sets are small, and one
// prober goroutine per set keeps the idle cost of a large cluster flat.
func (r *Replicas) probeAll() {
	for _, rep := range r.reps {
		ctx, cancel := context.WithTimeout(context.Background(), r.opt.ProbeTimeout)
		_, err := rep.ep.AskCtx(ctx, healthProbe)
		cancel()
		if err != nil {
			rep.strike(r.opt.FailAfter)
		} else {
			rep.recover()
		}
	}
}
