// Package cluster composes the federation (internal/shard) with remote
// HTTP endpoints (internal/endpoint's Client) into a network-native,
// fault-tolerant serving tier: one logical KB over k subject-hash
// shards, each shard backed by a replica set of interchangeable
// endpoints.
//
// The determinism contract the rest of the repo lives by survives the
// network unchanged: every replica of a shard serves the same partition
// with the same seed, and RAND() streams are derived from seed ⊕
// canonical query text — a function of the query, not of the machine —
// so any replica's answer to any (sub)query is byte-identical to any
// other's, and a cluster.Group is byte-identical to the unsharded
// Local. That replica-independence is precisely what makes failover and
// hedging safe to apply per call with zero coordination.
//
// Per replica set the package provides:
//
//   - routing policies (primary-first or round-robin) over the healthy
//     replicas, with ejected replicas kept as a last resort so a fully
//     ejected set degrades to trying rather than failing outright;
//   - active health checks — a periodic cheap ASK probe per replica,
//     consecutive-failure ejection, re-admission on the first success —
//     plus passive strikes from real traffic errors;
//   - failover — a retriable error (transport failure, 5xx) moves the
//     call to the next replica; semantic errors (quota, parse, caller
//     cancellation) propagate immediately;
//   - hedged reads — after a static delay or an observed latency
//     percentile, the call is re-issued to the next replica and the
//     first answer wins, the loser's context is canceled.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sofya/internal/endpoint"
	"sofya/internal/sparql"
)

// Policy selects how reads spread over a healthy replica set.
type Policy int

const (
	// PreferPrimary always tries replicas in declaration order: the
	// first healthy replica takes all traffic, the rest are failover
	// and hedge targets. Keeps caches hot on one machine per shard.
	PreferPrimary Policy = iota
	// RoundRobin rotates the first attempt across healthy replicas.
	RoundRobin
)

// Options configures a replica set (and, via Group, every replica set
// of a cluster).
type Options struct {
	// HedgeDelay launches a second attempt on the next replica if the
	// first has not answered after this long. 0 disables hedging
	// (unless HedgePercentile is set).
	HedgeDelay time.Duration
	// HedgePercentile, in (0,1), derives the hedge delay from the
	// replica set's observed latency distribution (e.g. 0.95: hedge
	// when an attempt exceeds the p95 of recent calls). Takes over from
	// HedgeDelay once enough samples exist; before that, HedgeDelay
	// applies.
	HedgePercentile float64
	// FailAfter is the consecutive-failure count that ejects a replica
	// (default 3). Active probe failures and retriable traffic errors
	// both count; any success resets the count and re-admits.
	FailAfter int
	// ProbeInterval is the active health probe period. 0 disables
	// active probing (passive strikes still eject).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe (default 2s).
	ProbeTimeout time.Duration
	// Policy routes first attempts (default PreferPrimary).
	Policy Policy
}

func (o Options) withDefaults() Options {
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	return o
}

// latWindow is how many recent per-attempt latencies a replica retains
// for percentile hedging.
const latWindow = 64

// replica is one member of a set, with its health and traffic state.
type replica struct {
	ep endpoint.Endpoint

	mu       sync.Mutex
	fails    int  // consecutive failures (probe or traffic)
	healthy  bool // false = ejected
	requests uint64
	errors   uint64
	lat      [latWindow]time.Duration
	latN     int // total samples ever (ring cursor = latN % latWindow)
}

// observe records one attempt's outcome for routing and hedging.
func (r *replica) observe(d time.Duration, err error, failAfter int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	if err == nil {
		r.fails = 0
		r.healthy = true
		r.lat[r.latN%latWindow] = d
		r.latN++
		return
	}
	r.errors++
	if endpoint.Retriable(err) {
		r.strikeLocked(failAfter)
	}
}

// strike records one failure (probe or retriable traffic error).
func (r *replica) strike(failAfter int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.strikeLocked(failAfter)
}

func (r *replica) strikeLocked(failAfter int) {
	r.fails++
	if r.fails >= failAfter {
		r.healthy = false
	}
}

// recover marks a probe success: reset strikes, re-admit.
func (r *replica) recover() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails = 0
	r.healthy = true
}

func (r *replica) isHealthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// ReplicaStatus is one replica's health and traffic snapshot.
type ReplicaStatus struct {
	Name     string
	Healthy  bool
	Fails    int
	Requests uint64
	Errors   uint64
}

// Replicas is an Endpoint over a set of interchangeable replicas of the
// same shard: every call routes to a healthy replica, fails over on
// retriable errors, and optionally hedges. Close stops the active
// health prober (if one runs).
type Replicas struct {
	name string
	opt  Options
	reps []*replica

	mu sync.Mutex
	rr int // round-robin cursor

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewReplicas builds a replica set over interchangeable endpoints —
// each must serve the same shard with the same seed, or the cluster's
// byte-identity (and hedging's safety) is void. The set's Name is the
// first replica's: the federation's coalescing and routing key, which
// must not vary with the replica that answers.
func NewReplicas(eps []endpoint.Endpoint, opt Options) (*Replicas, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("cluster: a replica set needs at least one endpoint")
	}
	opt = opt.withDefaults()
	r := &Replicas{
		name: eps[0].Name(),
		opt:  opt,
		reps: make([]*replica, len(eps)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i, ep := range eps {
		r.reps[i] = &replica{ep: ep, healthy: true}
	}
	if opt.ProbeInterval > 0 {
		go r.healthLoop()
	} else {
		close(r.done)
	}
	return r, nil
}

// Close stops the active health prober. Calls in flight finish.
func (r *Replicas) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Status snapshots every replica's health and traffic counters, in
// declaration order.
func (r *Replicas) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(r.reps))
	for i, rep := range r.reps {
		rep.mu.Lock()
		out[i] = ReplicaStatus{
			Name:     rep.ep.Name(),
			Healthy:  rep.healthy,
			Fails:    rep.fails,
			Requests: rep.requests,
			Errors:   rep.errors,
		}
		rep.mu.Unlock()
	}
	return out
}

// order returns the replicas in attempt order: healthy ones first
// (rotated under RoundRobin), ejected ones appended as a last resort —
// a set with every replica ejected still tries rather than failing
// outright, and the attempt doubles as its recovery probe.
func (r *Replicas) order() []*replica {
	out := make([]*replica, 0, len(r.reps))
	start := 0
	if r.opt.Policy == RoundRobin {
		r.mu.Lock()
		start = r.rr
		r.rr++
		r.mu.Unlock()
	}
	n := len(r.reps)
	for k := 0; k < n; k++ {
		if rep := r.reps[(start+k)%n]; rep.isHealthy() {
			out = append(out, rep)
		}
	}
	for k := 0; k < n; k++ {
		if rep := r.reps[(start+k)%n]; !rep.isHealthy() {
			out = append(out, rep)
		}
	}
	return out
}

// hedgeDelay resolves the current hedge delay: the observed latency
// percentile once enough samples exist, the static delay before that,
// 0 when hedging is off.
func (r *Replicas) hedgeDelay() time.Duration {
	if r.opt.HedgePercentile > 0 && r.opt.HedgePercentile < 1 {
		var lats []time.Duration
		for _, rep := range r.reps {
			rep.mu.Lock()
			n := rep.latN
			if n > latWindow {
				n = latWindow
			}
			lats = append(lats, rep.lat[:n]...)
			rep.mu.Unlock()
		}
		if len(lats) >= 8 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			i := int(float64(len(lats)) * r.opt.HedgePercentile)
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
	}
	return r.opt.HedgeDelay
}

// attemptOut is one attempt's outcome inside hedge.
type attemptOut[T any] struct {
	val T
	err error
	id  int
}

// hedge runs call against the replica set: first attempt to the
// policy's first choice, a hedged second attempt after the hedge delay,
// immediate failover on retriable errors, first success wins. The
// winner's context cancel is returned, NOT invoked — a whole-result
// caller defers it; a stream caller ties it to the stream's Close so
// the remote enumeration stays alive while rows are pulled. Losing
// attempts are canceled; a loser that still completes with a value is
// released through discard (closing a stream body), never leaked.
func hedge[T any](ctx context.Context, r *Replicas, call func(ctx context.Context, ep endpoint.Endpoint) (T, error), discard func(T)) (T, context.CancelFunc, error) {
	var zero T
	cands := r.order()
	outs := make(chan attemptOut[T], len(cands))
	cancels := make([]context.CancelFunc, 0, len(cands))
	launched := 0
	launch := func() {
		rep, id := cands[launched], launched
		launched++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			start := time.Now()
			v, err := call(actx, rep.ep)
			r.observeAttempt(rep, time.Since(start), err)
			outs <- attemptOut[T]{val: v, err: err, id: id}
		}()
	}
	launch()

	var timerC <-chan time.Time
	if d := r.hedgeDelay(); d > 0 && len(cands) > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		timerC = t.C
	}

	pending := 1
	var firstErr error
	finish := func(winner int) {
		// Cancel every losing attempt and drain stragglers off-path so
		// their values (open stream bodies) are released, not leaked.
		for id, cancel := range cancels {
			if id != winner {
				cancel()
			}
		}
		if pending > 0 {
			n := pending
			go func() {
				for i := 0; i < n; i++ {
					if o := <-outs; o.err == nil && discard != nil {
						discard(o.val)
					}
				}
			}()
		}
	}
	for {
		select {
		case <-timerC:
			timerC = nil
			if launched < len(cands) {
				launch()
				pending++
			}
		case o := <-outs:
			pending--
			if o.err == nil {
				finish(o.id)
				return o.val, cancels[o.id], nil
			}
			cancels[o.id]()
			if firstErr == nil {
				firstErr = o.err
			}
			if !endpoint.Retriable(o.err) && ctx.Err() == nil {
				// A semantic answer (quota, parse error): every replica
				// would say the same — stop, don't mask it with retries.
				finish(-1)
				return zero, nil, o.err
			}
			if launched < len(cands) {
				launch()
				pending++
			} else if pending == 0 {
				return zero, nil, firstErr
			}
		}
	}
}

func (r *Replicas) observeAttempt(rep *replica, d time.Duration, err error) {
	rep.observe(d, err, r.opt.FailAfter)
}

// Name implements Endpoint. The whole set answers under one name: which
// replica served is an operational detail, invisible to coalescing,
// caching and routing above.
func (r *Replicas) Name() string { return r.name }

// Select implements Endpoint.
func (r *Replicas) Select(query string) (*sparql.Result, error) {
	return r.SelectCtx(context.Background(), query)
}

// Ask implements Endpoint.
func (r *Replicas) Ask(query string) (bool, error) {
	return r.AskCtx(context.Background(), query)
}

// SelectCtx implements Endpoint with failover and hedging.
func (r *Replicas) SelectCtx(ctx context.Context, query string) (*sparql.Result, error) {
	res, cancel, err := hedge(ctx, r, func(ctx context.Context, ep endpoint.Endpoint) (*sparql.Result, error) {
		return ep.SelectCtx(ctx, query)
	}, nil)
	if cancel != nil {
		cancel()
	}
	return res, err
}

// AskCtx implements Endpoint with failover and hedging.
func (r *Replicas) AskCtx(ctx context.Context, query string) (bool, error) {
	ok, cancel, err := hedge(ctx, r, func(ctx context.Context, ep endpoint.Endpoint) (bool, error) {
		return ep.AskCtx(ctx, query)
	}, nil)
	if cancel != nil {
		cancel()
	}
	return ok, err
}

// Prepare implements Endpoint: the template prepares once per replica,
// and each execution routes like any other read — failover, hedging,
// first answer wins. Replica-independent determinism (seed ⊕ canonical
// text) is what makes racing two replicas' RAND()-bearing executions
// safe: both would answer identically.
func (r *Replicas) Prepare(template string, params ...string) (endpoint.PreparedQuery, error) {
	handles := make([]endpoint.PreparedQuery, len(r.reps))
	for i, rep := range r.reps {
		pq, err := rep.ep.Prepare(template, params...)
		if err != nil {
			return nil, err
		}
		handles[i] = pq
	}
	return &replicasPrepared{r: r, handles: handles}, nil
}

// replicasPrepared is the set's PreparedQuery: per-replica handles, one
// hedged execution per call.
type replicasPrepared struct {
	r       *Replicas
	handles []endpoint.PreparedQuery
}

// handleFor maps a replica chosen by hedge back to its prepared handle.
func (p *replicasPrepared) handleFor(ep endpoint.Endpoint) endpoint.PreparedQuery {
	for i, rep := range p.r.reps {
		if rep.ep == ep {
			return p.handles[i]
		}
	}
	return nil // unreachable: hedge only passes the set's own endpoints
}

func (p *replicasPrepared) Select(args ...sparql.Arg) (*sparql.Result, error) {
	return p.SelectCtx(context.Background(), args...)
}

func (p *replicasPrepared) Ask(args ...sparql.Arg) (bool, error) {
	return p.AskCtx(context.Background(), args...)
}

func (p *replicasPrepared) SelectCtx(ctx context.Context, args ...sparql.Arg) (*sparql.Result, error) {
	res, cancel, err := hedge(ctx, p.r, func(ctx context.Context, ep endpoint.Endpoint) (*sparql.Result, error) {
		return p.handleFor(ep).SelectCtx(ctx, args...)
	}, nil)
	if cancel != nil {
		cancel()
	}
	return res, err
}

func (p *replicasPrepared) AskCtx(ctx context.Context, args ...sparql.Arg) (bool, error) {
	ok, cancel, err := hedge(ctx, p.r, func(ctx context.Context, ep endpoint.Endpoint) (bool, error) {
		return p.handleFor(ep).AskCtx(ctx, args...)
	}, nil)
	if cancel != nil {
		cancel()
	}
	return ok, err
}

// closeRows releases a losing attempt's open stream.
func closeRows(rows endpoint.Rows) { rows.Close() }

// Stream implements PreparedQuery. The hedge race is decided at stream
// open (for a wire stream, the head frame's arrival — the server has
// started answering); the winning attempt's context stays alive until
// the stream is closed or exhausted, and losing attempts' streams are
// canceled and closed.
func (p *replicasPrepared) Stream(ctx context.Context, args ...sparql.Arg) (endpoint.Rows, error) {
	return p.stream(ctx, func(ctx context.Context, pq endpoint.PreparedQuery) (endpoint.Rows, error) {
		return pq.Stream(ctx, args...)
	})
}

// StreamBorrowed implements endpoint.StreamBorrower by delegation.
func (p *replicasPrepared) StreamBorrowed(ctx context.Context, args ...sparql.Arg) (endpoint.Rows, error) {
	return p.stream(ctx, func(ctx context.Context, pq endpoint.PreparedQuery) (endpoint.Rows, error) {
		return endpoint.StreamBorrowed(ctx, pq, args...)
	})
}

// StreamKeyed implements endpoint.KeyedStreamer by delegation, so the
// federation's behind-the-wire ORDER BY key evaluation survives the
// replica layer.
func (p *replicasPrepared) StreamKeyed(ctx context.Context, orderText string, args ...sparql.Arg) (endpoint.Rows, error) {
	return p.stream(ctx, func(ctx context.Context, pq endpoint.PreparedQuery) (endpoint.Rows, error) {
		return endpoint.StreamKeyed(ctx, pq, orderText, args...)
	})
}

func (p *replicasPrepared) stream(ctx context.Context, open func(ctx context.Context, pq endpoint.PreparedQuery) (endpoint.Rows, error)) (endpoint.Rows, error) {
	rows, cancel, err := hedge(ctx, p.r, func(ctx context.Context, ep endpoint.Endpoint) (endpoint.Rows, error) {
		return open(ctx, p.handleFor(ep))
	}, closeRows)
	if err != nil {
		return nil, err
	}
	return &rowsWithCancel{Rows: rows, cancel: cancel}, nil
}

// rowsWithCancel ties the winning attempt's context to the stream's
// lifetime: the remote enumeration is released when the consumer closes
// or exhausts the stream, not when the open returns.
type rowsWithCancel struct {
	endpoint.Rows
	cancel context.CancelFunc
}

func (r *rowsWithCancel) Next() bool {
	ok := r.Rows.Next()
	if !ok && r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
	return ok
}

func (r *rowsWithCancel) Close() {
	r.Rows.Close()
	if r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
}

// AttachedKeys forwards the inner stream's attached ORDER BY keys (nil
// when the winner was not a keyed stream).
func (r *rowsWithCancel) AttachedKeys() []int {
	if kr, ok := r.Rows.(endpoint.KeyedRows); ok {
		return kr.AttachedKeys()
	}
	return nil
}

// RowKeys forwards the inner stream's current row keys.
func (r *rowsWithCancel) RowKeys() []sparql.Value {
	if kr, ok := r.Rows.(endpoint.KeyedRows); ok {
		return kr.RowKeys()
	}
	return nil
}

var (
	_ endpoint.Endpoint       = (*Replicas)(nil)
	_ endpoint.PreparedQuery  = (*replicasPrepared)(nil)
	_ endpoint.StreamBorrower = (*replicasPrepared)(nil)
	_ endpoint.KeyedStreamer  = (*replicasPrepared)(nil)
	_ endpoint.KeyedRows      = (*rowsWithCancel)(nil)
)
