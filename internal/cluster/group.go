package cluster

import (
	"fmt"

	"sofya/internal/endpoint"
	"sofya/internal/shard"
)

// Group is the network-native federation: a shard.Group whose shards
// are replica sets instead of in-process Locals. All query semantics —
// decomposition, routing, ordered merge, RAND() re-derivation — are the
// federation's, unchanged; this layer contributes the fault tolerance
// underneath each shard and the lifecycle of the health probers.
//
// shards[i] must be replicas of shard i of the kb.Partition of the
// logical KB (each exposing the partition's canonical shard name,
// "<base>/shard-i-of-n"), all running the same seed. Then the Group is
// byte-identical to endpoint.NewLocal over the unpartitioned KB.
type Group struct {
	*shard.Group
	sets []*Replicas
}

// NewGroup federates per-shard replica sets: shards[i] lists the
// interchangeable endpoints serving shard i. Options apply to every
// set. Close the group to stop the health probers.
func NewGroup(name string, seed int64, shards [][]endpoint.Endpoint, opt Options, shardOpts ...shard.Option) (*Group, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: a group needs at least one shard")
	}
	sets := make([]*Replicas, len(shards))
	eps := make([]endpoint.Endpoint, len(shards))
	for i, reps := range shards {
		set, err := NewReplicas(reps, opt)
		if err != nil {
			closeSets(sets[:i])
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sets[i] = set
		eps[i] = set
	}
	g, err := shard.NewGroup(name, seed, eps, shardOpts...)
	if err != nil {
		closeSets(sets)
		return nil, err
	}
	return &Group{Group: g, sets: sets}, nil
}

// FromURLs builds a Group over remote sparqld processes: shardURLs[i]
// lists the base URLs (e.g. "http://host:port/sparql") of shard i's
// replicas. Each client endpoint takes the partition's canonical shard
// name, so coalescing keys and merge routing treat a replica set as one
// shard regardless of which URL answers.
func FromURLs(name string, seed int64, shardURLs [][]string, opt Options, shardOpts ...shard.Option) (*Group, error) {
	n := len(shardURLs)
	shards := make([][]endpoint.Endpoint, n)
	for i, urls := range shardURLs {
		shardName := fmt.Sprintf("%s/shard-%d-of-%d", name, i, n)
		reps := make([]endpoint.Endpoint, len(urls))
		for j, u := range urls {
			reps[j] = endpoint.NewClient(shardName, u, nil)
		}
		shards[i] = reps
	}
	return NewGroup(name, seed, shards, opt, shardOpts...)
}

// Close stops every replica set's health prober. In-flight queries
// finish normally.
func (g *Group) Close() { closeSets(g.sets) }

// ReplicaSets exposes the per-shard replica sets, in shard order — the
// serving layer reads health and traffic status from them.
func (g *Group) ReplicaSets() []*Replicas { return g.sets }

func closeSets(sets []*Replicas) {
	for _, s := range sets {
		if s != nil {
			s.Close()
		}
	}
}
