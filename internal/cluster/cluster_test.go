package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sparql"
	"sofya/internal/synth"
)

// The cluster differential oracle: a Group over HTTP replica endpoints
// must answer byte-identically to a Local over the unsharded KB —
// Select, Ask, prepared execution and streams, ORDER BY RAND() LIMIT
// probes — at every shard × replica combination, with replicas killed
// mid-suite (failover), and with hedging racing replicas per call.

func renderResult(res *sparql.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Vars, ","))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for _, t := range row {
			sb.WriteString(t.String())
			sb.WriteByte('\t')
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "truncated=%v", res.Truncated)
	return sb.String()
}

func drainStream(t *testing.T, rows endpoint.Rows) *sparql.Result {
	t.Helper()
	defer rows.Close()
	res := &sparql.Result{Vars: rows.Vars()}
	for rows.Next() {
		row := append([]rdf.Term(nil), rows.Row()...)
		res.Rows = append(res.Rows, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	res.Truncated = rows.Truncated()
	return res
}

// testWorld builds the shared oracle fixture: a tiny synthetic KB, the
// unsharded reference endpoint, and two entity relations to probe.
func testWorld(t *testing.T, seed int64) (*synth.World, *endpoint.Local, string, string) {
	t.Helper()
	w := synth.Generate(synth.TinySpec())
	w.Yago.Freeze()
	local := endpoint.NewLocal(w.Yago, seed)
	var rels []string
	for _, p := range w.Yago.Relations() {
		iri := w.Yago.Term(p).Value
		n, entity := 0, true
		w.Yago.EachFactOf(p, func(s, o kb.TermID) bool {
			n++
			if w.Yago.Term(o).IsLiteral() {
				entity = false
			}
			return n < 5 && entity
		})
		if n >= 3 && entity {
			rels = append(rels, iri)
		}
		if len(rels) == 2 {
			break
		}
	}
	if len(rels) < 2 {
		t.Fatalf("world has fewer than two entity relations")
	}
	return w, local, rels[0], rels[1]
}

// testCluster is an in-process HTTP cluster: n shards × m replicas,
// every replica a real httptest server over a Local of its shard.
type testCluster struct {
	group   *Group
	servers [][]*httptest.Server // [shard][replica]
}

func newTestCluster(t *testing.T, src *kb.KB, nShards, nReplicas int, seed int64, opt Options) *testCluster {
	t.Helper()
	parts := kb.Partition(src, nShards)
	shards := make([][]endpoint.Endpoint, nShards)
	servers := make([][]*httptest.Server, nShards)
	for i, part := range parts {
		for j := 0; j < nReplicas; j++ {
			srv := httptest.NewServer(endpoint.NewServer(endpoint.NewLocal(part, seed)))
			servers[i] = append(servers[i], srv)
			shards[i] = append(shards[i], endpoint.NewClient(part.Name(), srv.URL, nil))
		}
	}
	g, err := NewGroup(src.Name(), seed, shards, opt)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{group: g, servers: servers}
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	tc.group.Close()
	for _, reps := range tc.servers {
		for _, srv := range reps {
			srv.Close()
		}
	}
}

// killReplica closes one replica's HTTP server; its clients start
// failing with connection errors, which the set fails over.
func (tc *testCluster) killReplica(shard, replica int) {
	tc.servers[shard][replica].Close()
}

func oracleSelects(rel, rel2 string) []string {
	return []string{
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y }", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT 4", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT 4 OFFSET 3", rel),
		fmt.Sprintf("SELECT DISTINCT ?x WHERE { ?x <%s> ?y } LIMIT 3 OFFSET 1", rel),
		fmt.Sprintf("SELECT ?x ?y ?z WHERE { ?x <%s> ?y . ?x <%s> ?z }", rel, rel2),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 5", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 3 OFFSET 2", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND()", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY ?y LIMIT 6", rel),
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY DESC(?x) ?y", rel),
	}
}

func oracleAsks(rel string) []string {
	return []string{
		fmt.Sprintf("ASK { ?x <%s> ?y }", rel),
		"ASK { ?x <http://nowhere/rel> ?y }",
	}
}

// runOracle diffs the cluster against the unsharded reference on the
// whole query battery.
func runOracle(t *testing.T, label string, local *endpoint.Local, g *Group, rel, rel2 string) {
	t.Helper()
	for _, q := range oracleSelects(rel, rel2) {
		want, err := local.Select(q)
		if err != nil {
			t.Fatalf("%s: local %q: %v", label, q, err)
		}
		got, err := g.Select(q)
		if err != nil {
			t.Fatalf("%s: cluster %q: %v", label, q, err)
		}
		if renderResult(got) != renderResult(want) {
			t.Errorf("%s: Select diverges for %q:\n--- cluster ---\n%s\n--- local ---\n%s",
				label, q, renderResult(got), renderResult(want))
		}
	}
	for _, q := range oracleAsks(rel) {
		want, err := local.Ask(q)
		if err != nil {
			t.Fatalf("%s: local %q: %v", label, q, err)
		}
		got, err := g.Ask(q)
		if err != nil {
			t.Fatalf("%s: cluster %q: %v", label, q, err)
		}
		if got != want {
			t.Errorf("%s: Ask(%q) = %v, want %v", label, q, got, want)
		}
	}
}

// runPreparedOracle diffs prepared execution and streaming.
func runPreparedOracle(t *testing.T, label string, local *endpoint.Local, g *Group, rel, rel2 string) {
	t.Helper()
	const (
		tmplSample  = "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n"
		tmplOrdered = "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY ?y LIMIT $n"
	)
	probes := []struct {
		tmpl   string
		params []string
		args   []sparql.Arg
	}{
		{tmplSample, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel), sparql.IntArg(5)}},
		{tmplSample, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel2), sparql.IntArg(300)}},
		{tmplOrdered, []string{"r", "n"}, []sparql.Arg{sparql.IRIArg(rel), sparql.IntArg(6)}},
	}
	for pi, pr := range probes {
		lp, err := local.Prepare(pr.tmpl, pr.params...)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := g.Prepare(pr.tmpl, pr.params...)
		if err != nil {
			t.Fatalf("%s: probe %d Prepare: %v", label, pi, err)
		}
		want, err := lp.Select(pr.args...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := gp.Select(pr.args...)
		if err != nil {
			t.Fatalf("%s: probe %d Select: %v", label, pi, err)
		}
		if renderResult(got) != renderResult(want) {
			t.Errorf("%s: probe %d prepared Select diverges:\n--- cluster ---\n%s\n--- local ---\n%s",
				label, pi, renderResult(got), renderResult(want))
		}
		gr, err := gp.Stream(context.Background(), pr.args...)
		if err != nil {
			t.Fatalf("%s: probe %d Stream: %v", label, pi, err)
		}
		gotS := drainStream(t, gr)
		if renderResult(gotS) != renderResult(want) {
			t.Errorf("%s: probe %d prepared Stream diverges:\n--- cluster ---\n%s\n--- local ---\n%s",
				label, pi, renderResult(gotS), renderResult(want))
		}
	}
}

func TestClusterOracle(t *testing.T) {
	const seed = 17
	w, local, rel, rel2 := testWorld(t, seed)
	for _, nShards := range []int{1, 2, 3} {
		for _, nReplicas := range []int{1, 2} {
			label := fmt.Sprintf("shards=%d/replicas=%d", nShards, nReplicas)
			t.Run(label, func(t *testing.T) {
				tc := newTestCluster(t, w.Yago, nShards, nReplicas, seed, Options{})
				runOracle(t, label, local, tc.group, rel, rel2)
				runPreparedOracle(t, label, local, tc.group, rel, rel2)
			})
		}
	}
}

// TestClusterFailover kills one replica per shard mid-suite: the
// battery before the kill and the battery after must both be
// byte-identical to the reference — the surviving replicas answer.
func TestClusterFailover(t *testing.T) {
	const seed = 23
	w, local, rel, rel2 := testWorld(t, seed)
	tc := newTestCluster(t, w.Yago, 3, 2, seed, Options{})
	runOracle(t, "pre-kill", local, tc.group, rel, rel2)
	for shard := 0; shard < 3; shard++ {
		tc.killReplica(shard, 0)
	}
	runOracle(t, "post-kill", local, tc.group, rel, rel2)
	runPreparedOracle(t, "post-kill", local, tc.group, rel, rel2)
	// The dead replicas took strikes; after FailAfter of them the sets
	// mark them ejected and stop paying the failed first attempt.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ejected := 0
		for _, set := range tc.group.ReplicaSets() {
			for _, st := range set.Status() {
				if !st.Healthy {
					ejected++
				}
			}
		}
		if ejected == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead replicas not ejected after traffic strikes (ejected=%d)", ejected)
		}
		runOracle(t, "strike-traffic", local, tc.group, rel, rel2)
	}
}

// TestClusterHedged runs the oracle with hedging aggressive enough to
// fire constantly: racing two replicas must never change a byte,
// because answers are replica-independent.
func TestClusterHedged(t *testing.T) {
	const seed = 29
	w, local, rel, rel2 := testWorld(t, seed)
	tc := newTestCluster(t, w.Yago, 2, 2, seed, Options{HedgeDelay: time.Microsecond})
	runOracle(t, "hedged", local, tc.group, rel, rel2)
	runPreparedOracle(t, "hedged", local, tc.group, rel, rel2)
}

// flakyEndpoint forwards to an inner endpoint until tripped, then
// fails everything with a retriable 503.
type flakyEndpoint struct {
	inner endpoint.Endpoint
	fail  func() bool
}

func (f *flakyEndpoint) err() error {
	return &endpoint.StatusError{URL: "flaky", Code: 503, Snippet: "injected outage"}
}

func (f *flakyEndpoint) Name() string { return f.inner.Name() }

func (f *flakyEndpoint) Select(q string) (*sparql.Result, error) {
	return f.SelectCtx(context.Background(), q)
}

func (f *flakyEndpoint) Ask(q string) (bool, error) {
	return f.AskCtx(context.Background(), q)
}

func (f *flakyEndpoint) SelectCtx(ctx context.Context, q string) (*sparql.Result, error) {
	if f.fail() {
		return nil, f.err()
	}
	return f.inner.SelectCtx(ctx, q)
}

func (f *flakyEndpoint) AskCtx(ctx context.Context, q string) (bool, error) {
	if f.fail() {
		return false, f.err()
	}
	return f.inner.AskCtx(ctx, q)
}

func (f *flakyEndpoint) Prepare(tmpl string, params ...string) (endpoint.PreparedQuery, error) {
	return endpoint.NewTextPrepared(f, tmpl, params...)
}

// TestHealthEjectionReadmission drives the active prober: a replica
// that starts failing probes is ejected after FailAfter consecutive
// failures and re-admitted on the first success.
func TestHealthEjectionReadmission(t *testing.T) {
	const seed = 31
	w, _, rel, _ := testWorld(t, seed)
	parts := kb.Partition(w.Yago, 1)
	var failing atomic.Bool
	flaky := &flakyEndpoint{
		inner: endpoint.NewLocal(parts[0], seed),
		fail:  failing.Load,
	}
	good := endpoint.NewLocal(parts[0], seed)
	set, err := NewReplicas([]endpoint.Endpoint{flaky, good}, Options{
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	waitHealth := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if set.Status()[0].Healthy == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica 0 never became %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	failing.Store(true)
	waitHealth(false, "ejected")
	// Ejected replica: traffic routes around it and still succeeds.
	if _, err := set.Select(fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT 2", rel)); err != nil {
		t.Fatalf("query during outage: %v", err)
	}
	failing.Store(false)
	waitHealth(true, "re-admitted")
}

// TestReplicaSetNameStability: the set answers under the first
// replica's name regardless of which replica serves — the federation's
// coalescing and routing key must not flap with failovers.
func TestReplicaSetNameStability(t *testing.T) {
	k := kb.New("stable/shard-0-of-1")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	a := endpoint.NewLocal(k, 1)
	b := endpoint.NewLocal(k, 1)
	set, err := NewReplicas([]endpoint.Endpoint{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Name() != "stable/shard-0-of-1" {
		t.Fatalf("set name = %q", set.Name())
	}
}
