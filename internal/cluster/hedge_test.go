package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/sparql"
)

// Hedged-read mechanics under the race detector: the hedge fires after
// the delay, the fast replica's answer wins, and the slow attempt's
// context is canceled — including for streams, where the winner's
// context must survive until the stream is closed.

// gateEndpoint forwards to inner but blocks each call until its context
// is canceled or the gate opens; it records cancellations.
type gateEndpoint struct {
	inner    endpoint.Endpoint
	delay    time.Duration
	canceled atomic.Int64
	calls    atomic.Int64
}

func (g *gateEndpoint) wait(ctx context.Context) error {
	g.calls.Add(1)
	select {
	case <-ctx.Done():
		g.canceled.Add(1)
		return ctx.Err()
	case <-time.After(g.delay):
		return nil
	}
}

func (g *gateEndpoint) Name() string { return g.inner.Name() }

func (g *gateEndpoint) Select(q string) (*sparql.Result, error) {
	return g.SelectCtx(context.Background(), q)
}

func (g *gateEndpoint) Ask(q string) (bool, error) {
	return g.AskCtx(context.Background(), q)
}

func (g *gateEndpoint) SelectCtx(ctx context.Context, q string) (*sparql.Result, error) {
	if err := g.wait(ctx); err != nil {
		return nil, err
	}
	return g.inner.SelectCtx(ctx, q)
}

func (g *gateEndpoint) AskCtx(ctx context.Context, q string) (bool, error) {
	if err := g.wait(ctx); err != nil {
		return false, err
	}
	return g.inner.AskCtx(ctx, q)
}

func (g *gateEndpoint) Prepare(tmpl string, params ...string) (endpoint.PreparedQuery, error) {
	return endpoint.NewTextPrepared(g, tmpl, params...)
}

func hedgeFixture(t *testing.T) (*gateEndpoint, *Replicas) {
	t.Helper()
	k := kb.New("hedge/shard-0-of-1")
	for i := 0; i < 20; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%d", i), "http://x/p", fmt.Sprintf("http://x/o%d", i))
	}
	k.Freeze()
	const seed = 5
	slow := &gateEndpoint{inner: endpoint.NewLocal(k, seed), delay: 10 * time.Second}
	fast := endpoint.NewLocal(k, seed)
	set, err := NewReplicas([]endpoint.Endpoint{slow, fast}, Options{
		HedgeDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(set.Close)
	return slow, set
}

func TestHedgeCancelsLoser(t *testing.T) {
	slow, set := hedgeFixture(t)
	start := time.Now()
	res, err := set.Select("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("hedged Select returned %d rows, want 20", len(res.Rows))
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("hedged Select took %v — the hedge never fired", d)
	}
	// The slow attempt was launched and then canceled by the win.
	deadline := time.Now().Add(5 * time.Second)
	for slow.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("loser was never canceled (calls=%d)", slow.calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHedgeStreamKeepsWinnerAlive(t *testing.T) {
	slow, set := hedgeFixture(t)
	pq, err := set.Prepare("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("winner stream failed after hedge: %v", err)
	}
	rows.Close()
	if n != 20 {
		t.Fatalf("hedged stream yielded %d rows, want 20", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for slow.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("losing stream attempt was never canceled")
		}
		time.Sleep(time.Millisecond)
	}
}

// A fatal (non-retriable) error must propagate immediately, not burn
// the failover ladder: every replica would answer the same.
func TestFatalErrorSkipsFailover(t *testing.T) {
	k := kb.New("fatal/shard-0-of-1")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.Freeze()
	quotaed := endpoint.NewLocalRestricted(k, 1, endpoint.Quota{MaxQueries: 1})
	if _, err := quotaed.Ask("ASK { ?x <http://x/p> ?y }"); err != nil {
		t.Fatal(err)
	}
	backup := endpoint.NewLocal(k, 1)
	set, err := NewReplicas([]endpoint.Endpoint{quotaed, backup}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	_, err = set.Select("SELECT ?x WHERE { ?x <http://x/p> ?y }")
	if !errors.Is(err, endpoint.ErrQuotaExceeded) {
		t.Fatalf("quota error was masked: %v", err)
	}
}

// Retriable failures fail over within one call: first replica down,
// second answers.
func TestFailoverWithinOneCall(t *testing.T) {
	k := kb.New("fo/shard-0-of-1")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.Freeze()
	dead := endpoint.NewClient(k.Name(), "http://127.0.0.1:1/sparql", nil)
	alive := endpoint.NewLocal(k, 1)
	set, err := NewReplicas([]endpoint.Endpoint{dead, alive}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	res, err := set.Select("SELECT ?x WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatalf("failover did not recover: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("failover answered %d rows, want 1", len(res.Rows))
	}
}
