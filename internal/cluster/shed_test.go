package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
)

// A replica that sheds under admission control must behave like a
// transient outage, not a semantic failure: traffic fails over to the
// healthy replica, the shedding one takes passive strikes (and is
// ejected after FailAfter), and once its load passes the active prober
// re-admits it — while the healthy replica is never ejected.
func TestReplicasFailOverOnShed(t *testing.T) {
	k := kb.New("shard0")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/c")
	k.AddIRIs("http://x/b", "http://x/p", "http://x/c")

	// Replica 0 serves behind admission control with a single slot and
	// no queue; replica 1 is unrestricted.
	adm := endpoint.NewAdmission(endpoint.NewLocal(k, 1), endpoint.Limits{MaxInFlight: 1})
	srv0 := httptest.NewServer(endpoint.NewServerEndpoint(adm))
	defer srv0.Close()
	srv1 := httptest.NewServer(endpoint.NewServer(endpoint.NewLocal(k, 1)))
	defer srv1.Close()
	c0 := endpoint.NewClient("shard0", srv0.URL, nil)
	c1 := endpoint.NewClient("shard0", srv1.URL, nil)

	reps, err := NewReplicas([]endpoint.Endpoint{c0, c1}, Options{
		FailAfter:     2,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reps.Close()

	// Saturate replica 0 from the inside: an open stream holds its one
	// admission slot, so every HTTP request to it sheds with 429.
	const q = `SELECT ?x ?y WHERE { ?x <http://x/p> ?y }`
	pq, err := adm.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	hold, err := pq.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hold.Next() {
		t.Fatal("holding stream empty")
	}

	// Traffic keeps succeeding: replica 0 sheds retriably, the set
	// fails over to replica 1 on every call.
	for i := 0; i < 4; i++ {
		res, err := reps.Select(q)
		if err != nil {
			t.Fatalf("select %d during shed: %v", i, err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("select %d rows = %d, want 3", i, len(res.Rows))
		}
	}
	st := reps.Status()
	if st[0].Errors == 0 {
		t.Fatalf("shedding replica took no passive strikes: %+v", st[0])
	}
	if st[0].Healthy {
		t.Fatalf("shedding replica not ejected after FailAfter strikes: %+v", st[0])
	}
	if !st[1].Healthy || st[1].Requests == 0 {
		t.Fatalf("healthy replica mistreated: %+v", st[1])
	}

	// Release replica 0's slot: the active prober's next ASK succeeds
	// and re-admits it — ejection by shedding is never permanent.
	hold.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !reps.Status()[0].Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("shedding replica never re-admitted: %+v", reps.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !reps.Status()[1].Healthy {
		t.Fatal("healthy replica was ejected")
	}

	// And the recovered replica serves again.
	res, err := reps.Select(q)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("post-recovery select: %d rows, %v", len(res.Rows), err)
	}
}

// A quota rejection — same 429 status family, but semantic — must NOT
// fail over: every replica would answer the same, so the error
// propagates and the replica keeps its health.
func TestReplicasQuotaDoesNotFailOver(t *testing.T) {
	k := kb.New("shard0")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")

	q0 := endpoint.NewLocalRestricted(k, 1, endpoint.Quota{MaxQueries: 1})
	srv0 := httptest.NewServer(endpoint.NewServer(q0))
	defer srv0.Close()
	srv1 := httptest.NewServer(endpoint.NewServer(endpoint.NewLocal(k, 1)))
	defer srv1.Close()

	reps, err := NewReplicas([]endpoint.Endpoint{
		endpoint.NewClient("shard0", srv0.URL, nil),
		endpoint.NewClient("shard0", srv1.URL, nil),
	}, Options{FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reps.Close()

	const q = `SELECT ?x WHERE { ?x <http://x/p> ?y }`
	if _, err := reps.Select(q); err != nil {
		t.Fatal(err)
	}
	// Replica 0's quota is spent: the next call must surface the quota
	// error, not mask it by retrying replica 1.
	if _, err := reps.Select(q); !errors.Is(err, endpoint.ErrQuotaExceeded) || errors.Is(err, endpoint.ErrOverloaded) {
		t.Fatalf("quota err = %v, want ErrQuotaExceeded (no failover)", err)
	}
	st := reps.Status()
	if !st[0].Healthy {
		t.Fatal("semantic quota error must not eject the replica")
	}
	if st[1].Requests != 0 {
		t.Fatalf("quota error leaked to replica 1: %+v", st[1])
	}
}
