package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/shard"
	"sofya/internal/sparql"
)

// Benchmarks for the network-federation overhead table in
// EXPERIMENTS.md: the same probe against an in-process group, an HTTP
// cluster with batch framing, and an HTTP cluster forced to row-at-a-
// time framing — the before/after of the wire batching.

func benchKB(rows int) *kb.KB {
	k := kb.New("bench")
	for i := 0; i < rows; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%05d", i), "http://x/p", fmt.Sprintf("http://x/o%05d", i))
	}
	k.Freeze()
	return k
}

const benchProbe = "SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY RAND() LIMIT $n"

func drainBench(b *testing.B, pq endpoint.PreparedQuery, n int) {
	b.Helper()
	rows, err := pq.Stream(context.Background(), sparql.IntArg(n))
	if err != nil {
		b.Fatal(err)
	}
	cnt := 0
	for rows.Next() {
		cnt++
	}
	if err := rows.Err(); err != nil {
		b.Fatal(err)
	}
	rows.Close()
	if cnt != n {
		b.Fatalf("drained %d rows, want %d", cnt, n)
	}
}

// newBenchCluster builds a 3-shard × 1-replica HTTP cluster with the
// given wire batch size (0 = server default).
func newBenchCluster(b *testing.B, src *kb.KB, batch int) (*Group, func()) {
	b.Helper()
	const seed = 41
	parts := kb.Partition(src, 3)
	var servers []*httptest.Server
	shards := make([][]endpoint.Endpoint, len(parts))
	for i, part := range parts {
		srv := httptest.NewServer(endpoint.NewServer(endpoint.NewLocal(part, seed)))
		servers = append(servers, srv)
		c := endpoint.NewClient(part.Name(), srv.URL, nil)
		if batch > 0 {
			c.SetWireBatch(batch)
		}
		shards[i] = []endpoint.Endpoint{c}
	}
	g, err := NewGroup(src.Name(), seed, shards, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return g, func() {
		g.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}
}

// BenchmarkClusterProbeHTTP: the RAND-ordered probe over a 3-shard
// HTTP cluster with default (64-row) batch framing.
func BenchmarkClusterProbeHTTP(b *testing.B) {
	src := benchKB(4096)
	g, cleanup := newBenchCluster(b, src, 0)
	defer cleanup()
	pq, err := g.Prepare(benchProbe, "n")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainBench(b, pq, 32)
	}
}

// BenchmarkClusterProbeHTTPRowFraming: the same probe with 1-row
// frames — the before of the batching comparison.
func BenchmarkClusterProbeHTTPRowFraming(b *testing.B) {
	src := benchKB(4096)
	g, cleanup := newBenchCluster(b, src, 1)
	defer cleanup()
	pq, err := g.Prepare(benchProbe, "n")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainBench(b, pq, 32)
	}
}

// BenchmarkClusterProbeInProcess: the in-process baseline — the same
// federation merge over Locals, no network.
func BenchmarkClusterProbeInProcess(b *testing.B) {
	src := benchKB(4096)
	g := shard.Partitioned(src, 3, 41)
	pq, err := g.Prepare(benchProbe, "n")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainBench(b, pq, 32)
	}
}

// BenchmarkClusterAskProbe: cheap point probes (the health checker's
// and alignment loop's shape) over HTTP.
func BenchmarkClusterAskProbe(b *testing.B) {
	src := benchKB(1024)
	g, cleanup := newBenchCluster(b, src, 0)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := g.Ask("ASK { <http://x/s00007> <http://x/p> ?o }")
		if err != nil || !ok {
			b.Fatalf("ask = %v, %v", ok, err)
		}
	}
}

// BenchmarkClusterHedgedProbe: the hedging machinery's overhead when
// the hedge never fires (healthy replicas, generous delay).
func BenchmarkClusterHedgedProbe(b *testing.B) {
	src := benchKB(1024)
	const seed = 41
	parts := kb.Partition(src, 1)
	shards := [][]endpoint.Endpoint{{
		endpoint.NewLocal(parts[0], seed),
		endpoint.NewLocal(parts[0], seed),
	}}
	g, err := NewGroup(src.Name(), seed, shards, Options{HedgeDelay: 50_000_000 /* 50ms */})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	pq, err := g.Prepare(benchProbe, "n")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainBench(b, pq, 32)
	}
}
