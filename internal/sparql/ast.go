// Package sparql implements the subset of SPARQL 1.1 that SOFYA's
// samplers and the endpoint simulation need:
//
//	PREFIX declarations
//	SELECT [DISTINCT] (?v ... | *) WHERE { ... } [ORDER BY ...] [LIMIT n] [OFFSET n]
//	ASK WHERE { ... }
//
// inside WHERE: basic graph patterns (triple patterns joined by '.'),
// FILTER with comparison/boolean expressions and the builtin functions
// STR, LANG, DATATYPE, BOUND, ISIRI, ISLITERAL, ISBLANK, SAMETERM, REGEX,
// CONTAINS, STRSTARTS, STRENDS, STRLEN, LCASE, UCASE, RAND, and
// FILTER [NOT] EXISTS { ... } sub-patterns.
//
// The engine evaluates queries over a kb.KB with index-driven joins and
// supports deterministic RAND() seeding so that sampling queries are
// reproducible in tests and benchmarks.
package sparql

import (
	"strings"

	"sofya/internal/rdf"
)

// Form is the query form.
type Form uint8

const (
	// SelectForm is a SELECT query producing variable bindings.
	SelectForm Form = iota
	// AskForm is an ASK query producing a boolean.
	AskForm
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     Form
	Distinct bool
	// Vars are the projected variable names (without '?'); empty means
	// SELECT * (all variables in the pattern, sorted).
	Vars    []string
	Where   *GroupPattern
	OrderBy []OrderKey
	// Limit is the maximum number of rows, or -1 for no limit.
	Limit int
	// LimitVar names the template parameter standing in for the LIMIT
	// value ("LIMIT $n" in a prepared-query template); empty for a
	// concrete limit.
	LimitVar string
	// Offset is the number of leading rows to skip.
	Offset int
}

// GroupPattern is a basic graph pattern plus filters.
type GroupPattern struct {
	Triples []TriplePattern
	Filters []Expr
}

// AllVars returns the variable names appearing in the triple patterns,
// sorted, each at most once.
func (g *GroupPattern) AllVars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(pt PatternTerm) {
		if pt.IsVar && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	for _, tp := range g.Triples {
		add(tp.S)
		add(tp.P)
		add(tp.O)
	}
	sortStrings(out)
	return out
}

// TriplePattern is a triple whose positions may be variables.
type TriplePattern struct {
	S, P, O PatternTerm
}

// String renders the pattern in SPARQL-ish syntax, for diagnostics.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// PatternTerm is either a variable or a concrete RDF term.
type PatternTerm struct {
	IsVar bool
	Var   string   // without '?'
	Term  rdf.Term // valid when !IsVar
}

// Variable returns a variable pattern term.
func Variable(name string) PatternTerm { return PatternTerm{IsVar: true, Var: name} }

// Concrete returns a constant pattern term.
func Concrete(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// String renders the pattern term.
func (pt PatternTerm) String() string {
	if pt.IsVar {
		return "?" + pt.Var
	}
	return pt.Term.String()
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Expr Expr
	Desc bool
}

func sortStrings(s []string) {
	// insertion sort; var lists are tiny and this avoids importing sort
	// in the hot AST path.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && strings.Compare(s[j], s[j-1]) < 0; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
