package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"sofya/internal/rdf"
)

// Arg is one bound value of a prepared-query template: an RDF term for
// a `$name` slot in a triple pattern, or an integer for `LIMIT $name`.
type Arg struct {
	term  rdf.Term
	n     int
	isInt bool
}

// TermArg binds an RDF term to a pattern parameter.
func TermArg(t rdf.Term) Arg { return Arg{term: t} }

// IRIArg binds an IRI to a pattern parameter.
func IRIArg(iri string) Arg { return Arg{term: rdf.NewIRI(iri)} }

// IntArg binds an integer to a LIMIT parameter.
func IntArg(n int) Arg { return Arg{n: n, isInt: true} }

// Key renders the argument canonically, for cache keys.
func (a Arg) Key() string {
	if a.isInt {
		return strconv.Itoa(a.n)
	}
	return a.term.String()
}

// Term returns the bound term of a pattern argument; ok is false for
// integer (LIMIT) arguments.
func (a Arg) Term() (rdf.Term, bool) { return a.term, !a.isInt }

// Int returns the bound integer of a LIMIT argument; ok is false for
// term arguments.
func (a Arg) Int() (int, bool) { return a.n, a.isInt }

// Template is a parsed, parameterized query: a query AST in which the
// variables named by params stand for constants supplied at execution
// time. Pattern parameters are written `$name` in term positions and
// bound with TermArg/IRIArg; a `LIMIT $name` parameter is bound with
// IntArg. A Template is immutable and safe for concurrent use.
//
// The canonical text of an instantiated template (Text) is byte-for-byte
// the text the same query would have after a parse → String round trip,
// which is what keeps RAND() streams — derived from canonical query
// text — identical between the prepared path and the text path.
type Template struct {
	q      *Query
	params []string
	source string

	// segs/gaps split the canonical text at parameter sites: the
	// instantiated text is segs[0] + render(gaps[0]) + segs[1] + ...
	segs []string
	gaps []tmplGap

	// isInt[i] reports whether parameter i is a LIMIT parameter.
	isInt []bool
}

type tmplGap struct {
	param int
	isInt bool
}

// ParseTemplate parses a query template. Every name in params must
// occur in the template — as `$name` in triple-pattern positions or as
// `LIMIT $name` — and may occur several times. Parameters may not be
// projected and may not appear inside FILTER or ORDER BY expressions
// (those constants belong to the template's shape, not its arguments).
func ParseTemplate(text string, params ...string) (*Template, error) {
	if strings.ContainsRune(text, 0) {
		return nil, fmt.Errorf("sparql: template contains NUL")
	}
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	t := &Template{q: q, params: params, source: text, isInt: make([]bool, len(params))}
	idx := make(map[string]int, len(params))
	for i, name := range params {
		if name == "" {
			return nil, fmt.Errorf("sparql: empty template parameter name")
		}
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("sparql: duplicate template parameter %q", name)
		}
		idx[name] = i
	}

	for _, v := range q.Vars {
		if _, isParam := idx[v]; isParam {
			return nil, fmt.Errorf("sparql: template parameter $%s cannot be projected", v)
		}
	}
	// Parameters may appear only in triple patterns of groups that the
	// canonical serializer rewrites — the main group and FILTER [NOT]
	// EXISTS groups (at any nesting of those). They may not appear in
	// value expressions, nor in EXISTS groups buried inside boolean
	// expressions (which pattern rewriting cannot reach).
	var exprErr error
	flagParamVar := func(name, where string) {
		if _, isParam := idx[name]; isParam && exprErr == nil {
			exprErr = fmt.Errorf("sparql: template parameter $%s used in %s", name, where)
		}
	}
	var checkParamFree func(g *GroupPattern)
	checkParamFree = func(g *GroupPattern) {
		for _, tp := range g.Triples {
			for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
				if pt.IsVar {
					flagParamVar(pt.Var, "an EXISTS nested inside an expression")
				}
			}
		}
		for _, f := range g.Filters {
			eachExists(f, func(ex exExists) { checkParamFree(ex.group) })
		}
	}
	var checkGroup func(g *GroupPattern)
	checkGroup = func(g *GroupPattern) {
		for _, f := range g.Filters {
			if ex, ok := f.(exExists); ok {
				checkGroup(ex.group)
				continue
			}
			for _, name := range exprVars(f) {
				flagParamVar(name, "a FILTER expression")
			}
			eachExists(f, func(ex exExists) { checkParamFree(ex.group) })
		}
	}
	checkGroup(q.Where)
	for _, k := range q.OrderBy {
		for _, name := range exprVars(k.Expr) {
			flagParamVar(name, "ORDER BY")
		}
	}
	if exprErr != nil {
		return nil, exprErr
	}

	// Mark every parameter site with a sentinel, serialize canonically,
	// and split the text at the sentinels. Marks contain NUL, which the
	// template text was checked not to contain.
	seen := make([]bool, len(params))
	mark := func(i int) string { return "\x00#" + strconv.Itoa(i) + "\x00" }
	marked := q.MapPatterns(func(tp TriplePattern) TriplePattern {
		sub := func(pt PatternTerm) PatternTerm {
			if pt.IsVar {
				if i, ok := idx[pt.Var]; ok {
					seen[i] = true
					return Concrete(rdf.NewIRI(mark(i)))
				}
			}
			return pt
		}
		return TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)}
	})
	if q.LimitVar != "" {
		i, ok := idx[q.LimitVar]
		if !ok {
			return nil, fmt.Errorf("sparql: LIMIT $%s is not a declared parameter", q.LimitVar)
		}
		seen[i] = true
		t.isInt[i] = true
		marked.LimitVar = mark(i)
	}
	for i, name := range params {
		if !seen[i] {
			return nil, fmt.Errorf("sparql: template parameter $%s does not occur in the query", name)
		}
	}

	canon := marked.String()
	rest := canon
	for {
		at := strings.Index(rest, "\x00#")
		if at < 0 {
			break
		}
		end := strings.Index(rest[at+2:], "\x00")
		if end < 0 {
			return nil, fmt.Errorf("sparql: internal template mark error")
		}
		i, err := strconv.Atoi(rest[at+2 : at+2+end])
		if err != nil {
			return nil, fmt.Errorf("sparql: internal template mark error: %v", err)
		}
		seg, tail := rest[:at], rest[at+2+end+1:]
		if t.isInt[i] {
			// drop the "$" that introduced the limit parameter
			seg = strings.TrimSuffix(seg, "$")
		} else {
			// drop the surrounding <...> of the sentinel IRI: the bound
			// term renders its own delimiters
			seg = strings.TrimSuffix(seg, "<")
			tail = strings.TrimPrefix(tail, ">")
		}
		t.segs = append(t.segs, seg)
		t.gaps = append(t.gaps, tmplGap{param: i, isInt: t.isInt[i]})
		rest = tail
	}
	t.segs = append(t.segs, rest)
	return t, nil
}

// MustParseTemplate is ParseTemplate panicking on error, for static
// templates.
func MustParseTemplate(text string, params ...string) *Template {
	t, err := ParseTemplate(text, params...)
	if err != nil {
		panic(err)
	}
	return t
}

// Params returns the declared parameter names in positional order.
func (t *Template) Params() []string { return t.params }

// IntParam reports whether parameter i is an integer (LIMIT) parameter.
func (t *Template) IntParam(i int) bool { return t.isInt[i] }

// Source returns the template text ParseTemplate was given.
func (t *Template) Source() string { return t.source }

// Form returns the query form of the template.
func (t *Template) Form() Form { return t.q.Form }

// Query returns a deep copy of the template's parsed query. Parameters
// appear as ordinary variables (the parser does not distinguish $name
// from ?name); use Params to tell them apart. The copy may be modified
// freely and turned back into a template with TemplateFromQuery — the
// federation layer derives per-shard pushdown templates this way.
func (t *Template) Query() *Query {
	return t.q.MapPatterns(func(tp TriplePattern) TriplePattern { return tp })
}

// TemplateFromQuery renders q — whose params-named variables stand for
// template parameters — back into canonical template text and parses it
// as a Template. Parameters that no longer occur in q (for instance a
// LIMIT parameter on a query whose LIMIT was stripped) must be omitted
// from params.
func TemplateFromQuery(q *Query, params ...string) (*Template, error) {
	idx := make(map[string]int, len(params))
	for i, name := range params {
		idx[name] = i
	}
	mark := func(i int) string { return "\x00#" + strconv.Itoa(i) + "\x00" }
	marked := q.MapPatterns(func(tp TriplePattern) TriplePattern {
		sub := func(pt PatternTerm) PatternTerm {
			if pt.IsVar {
				if i, ok := idx[pt.Var]; ok {
					return Concrete(rdf.NewIRI(mark(i)))
				}
			}
			return pt
		}
		return TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)}
	})
	if q.LimitVar != "" {
		i, ok := idx[q.LimitVar]
		if !ok {
			return nil, fmt.Errorf("sparql: LIMIT $%s is not a declared parameter", q.LimitVar)
		}
		marked.LimitVar = mark(i)
	}
	text := marked.String()
	for i, name := range params {
		// Pattern sites render the sentinel as an IRI; the LIMIT site
		// renders it after the "$" the serializer emits for LimitVar.
		text = strings.ReplaceAll(text, "<"+mark(i)+">", "$"+name)
		text = strings.ReplaceAll(text, mark(i), name)
	}
	return ParseTemplate(text, params...)
}

// checkArgs validates positional args against the declared parameters.
func (t *Template) checkArgs(args []Arg) error {
	if len(args) != len(t.params) {
		return fmt.Errorf("sparql: template needs %d args, got %d", len(t.params), len(args))
	}
	for i, a := range args {
		if a.isInt != t.isInt[i] {
			kind := "a term"
			if t.isInt[i] {
				kind = "an integer"
			}
			return fmt.Errorf("sparql: template parameter $%s needs %s argument", t.params[i], kind)
		}
		if a.isInt && a.n < 0 {
			return fmt.Errorf("sparql: template parameter $%s: negative LIMIT", t.params[i])
		}
	}
	return nil
}

// Text renders the canonical text of the template instantiated with
// args — exactly the String() of the equivalent concrete query.
func (t *Template) Text(args ...Arg) (string, error) {
	if err := t.checkArgs(args); err != nil {
		return "", err
	}
	return t.text(args), nil
}

// text is Text after argument validation.
func (t *Template) text(args []Arg) string {
	var sb strings.Builder
	for i, seg := range t.segs {
		sb.WriteString(seg)
		if i < len(t.gaps) {
			g := t.gaps[i]
			if g.isInt {
				sb.WriteString(strconv.Itoa(args[g.param].n))
			} else {
				sb.WriteString(args[g.param].term.String())
			}
		}
	}
	return sb.String()
}

// eachExists walks an expression tree, applying fn to every EXISTS node
// in syntactic order.
func eachExists(e Expr, fn func(exExists)) {
	switch x := e.(type) {
	case exExists:
		fn(x)
	case exNot:
		eachExists(x.arg, fn)
	case exAnd:
		eachExists(x.l, fn)
		eachExists(x.r, fn)
	case exOr:
		eachExists(x.l, fn)
		eachExists(x.r, fn)
	case exCompare:
		eachExists(x.l, fn)
		eachExists(x.r, fn)
	case exCall:
		for _, a := range x.args {
			eachExists(a, fn)
		}
	}
}
