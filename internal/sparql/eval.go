package sparql

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"strings"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// Result is the outcome of evaluating a query.
type Result struct {
	// Vars are the projected variable names, in projection order.
	Vars []string
	// Rows hold one term per projected variable. A row never contains
	// zero terms for SELECT results produced by this engine (all
	// projected variables are bound by the BGP or the row is dropped).
	Rows [][]rdf.Term
	// Ask is the boolean answer for ASK queries.
	Ask bool
	// Truncated is set by access-limited endpoints when the row cap
	// cut the result short. The engine itself never sets it.
	Truncated bool
}

// Bindings returns row i as a var→term map.
func (r *Result) Bindings(i int) map[string]rdf.Term {
	m := make(map[string]rdf.Term, len(r.Vars))
	for j, v := range r.Vars {
		m[v] = r.Rows[i][j]
	}
	return m
}

// Column returns the index of variable v in the projection, or -1.
func (r *Result) Column(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// Engine evaluates parsed queries against a KB.
//
// An Engine is stateless apart from its KB and seed, so it is safe for
// concurrent Eval calls. RAND() is deterministic and order-independent:
// each Eval draws from a PRNG derived from the engine seed and a
// fingerprint of the query text, so a given query sees the same random
// stream under a given seed no matter which other queries ran before
// or are running concurrently. This is what lets caching and
// coalescing endpoint decorators, and parallel aligners, reproduce the
// sequential results byte for byte.
type Engine struct {
	kb   *kb.KB
	seed int64
}

// NewEngine returns an engine over k with seed 1.
func NewEngine(k *kb.KB) *Engine { return &Engine{kb: k, seed: 1} }

// NewEngineSeeded returns an engine with an explicit RAND() seed.
func NewEngineSeeded(k *kb.KB, seed int64) *Engine { return &Engine{kb: k, seed: seed} }

// KB returns the underlying knowledge base.
func (e *Engine) KB() *kb.KB { return e.kb }

// EvalString parses and evaluates a query.
func (e *Engine) EvalString(query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Eval(q)
}

// errStop aborts row enumeration early once LIMIT is satisfied.
var errStop = errors.New("sparql: enumeration stopped")

// Eval evaluates a parsed query.
func (e *Engine) Eval(q *Query) (*Result, error) {
	if q.Where == nil {
		return nil, fmt.Errorf("sparql: query has no WHERE pattern")
	}
	ev := &evaluator{kb: e.kb, seed: e.seed, query: q}

	switch q.Form {
	case AskForm:
		found := false
		err := ev.run(q.Where, nil, func(b binding) error {
			found = true
			return errStop
		})
		if err != nil && err != errStop {
			return nil, err
		}
		return &Result{Ask: found}, nil
	case SelectForm:
		return e.evalSelect(q, ev)
	default:
		return nil, fmt.Errorf("sparql: unsupported query form %d", q.Form)
	}
}

func (e *Engine) evalSelect(q *Query, ev *evaluator) (*Result, error) {
	vars := q.Vars
	res := &Result{Vars: vars}

	type sortableRow struct {
		row  []rdf.Term
		keys []Value
	}
	var rows []sortableRow
	seen := map[string]bool{}
	// fast path: stop enumeration early when ordering cannot change
	// which rows qualify.
	earlyStop := len(q.OrderBy) == 0 && q.Limit >= 0
	target := -1
	if earlyStop {
		target = q.Offset + q.Limit
	}

	err := ev.run(q.Where, nil, func(b binding) error {
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			if id, ok := b[v]; ok {
				row[i] = e.kb.Term(id)
			} else {
				// unbound projected variable: drop the row; our BGP
				// evaluator binds every pattern variable, so this only
				// happens when the projection names a variable absent
				// from the pattern.
				return nil
			}
		}
		if q.Distinct {
			key := rowKey(row)
			if seen[key] {
				return nil
			}
			seen[key] = true
		}
		sr := sortableRow{row: row}
		if len(q.OrderBy) > 0 {
			sr.keys = make([]Value, len(q.OrderBy))
			envb := &bindingEnv{ev: ev, b: b}
			for i, k := range q.OrderBy {
				sr.keys[i] = k.Expr.eval(envb)
			}
		}
		rows = append(rows, sr)
		if earlyStop && len(rows) >= target {
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return nil, err
	}

	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range q.OrderBy {
				c, ok := valuesOrder(rows[i].keys[k], rows[j].keys[k])
				if !ok {
					continue
				}
				if c == 0 {
					continue
				}
				if q.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// OFFSET / LIMIT
	start := q.Offset
	if start > len(rows) {
		start = len(rows)
	}
	end := len(rows)
	if q.Limit >= 0 && start+q.Limit < end {
		end = start + q.Limit
	}
	for _, sr := range rows[start:end] {
		res.Rows = append(res.Rows, sr.row)
	}
	return res, nil
}

func rowKey(row []rdf.Term) string {
	var sb strings.Builder
	for _, t := range row {
		sb.WriteString(t.String())
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// binding maps variable names to interned term IDs.
type binding map[string]kb.TermID

type evaluator struct {
	kb    *kb.KB
	seed  int64
	query *Query
	rand  *rand.Rand
}

// rng returns the evaluator's PRNG, built on first use from the engine
// seed and a fingerprint of the query text. Queries that never call
// RAND() pay neither the serialization nor the PRNG construction.
func (ev *evaluator) rng() *rand.Rand {
	if ev.rand == nil {
		h := fnv.New64a()
		io.WriteString(h, ev.query.String())
		ev.rand = rand.New(rand.NewSource(ev.seed*1_000_003 ^ int64(h.Sum64())))
	}
	return ev.rand
}

// bindingEnv adapts a binding to the expression env interface.
type bindingEnv struct {
	ev *evaluator
	b  binding
}

func (be *bindingEnv) lookupVar(name string) (rdf.Term, bool) {
	id, ok := be.b[name]
	if !ok {
		return rdf.Term{}, false
	}
	return be.ev.kb.Term(id), true
}

func (be *bindingEnv) rng() *rand.Rand { return be.ev.rng() }

func (be *bindingEnv) evalExists(g *GroupPattern) (bool, error) {
	found := false
	err := be.ev.run(g, be.b, func(binding) error {
		found = true
		return errStop
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

// planned is a join plan: patterns in execution order with the filters
// that become evaluable after each step.
type planned struct {
	steps        []TriplePattern
	filtersAfter [][]Expr // same length as steps
	preFilters   []Expr   // filters with no pattern dependencies
}

// plan orders patterns greedily: prefer patterns with more positions
// already concrete/bound; tie-break by smaller relation when the
// predicate is concrete; then by input order. Filters attach to the
// first step after which all their variables are bound; EXISTS filters
// attach to the last step (their inner variables are existential).
func (ev *evaluator) plan(g *GroupPattern, pre binding) planned {
	n := len(g.Triples)
	used := make([]bool, n)
	bound := map[string]bool{}
	for v := range pre {
		bound[v] = true
	}
	var order []TriplePattern

	boundCount := func(tp TriplePattern) int {
		c := 0
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if !pt.IsVar || bound[pt.Var] {
				c++
			}
		}
		return c
	}
	relSize := func(tp TriplePattern) int {
		if tp.P.IsVar {
			return 1 << 30
		}
		id := ev.kb.Lookup(tp.P.Term)
		if id == kb.NoTerm {
			return 0
		}
		return ev.kb.NumFactsOf(id)
	}

	for len(order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sc := boundCount(g.Triples[i])
			sz := relSize(g.Triples[i])
			if sc > bestScore || (sc == bestScore && sz < bestSize) {
				best, bestScore, bestSize = i, sc, sz
			}
		}
		used[best] = true
		tp := g.Triples[best]
		order = append(order, tp)
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if pt.IsVar {
				bound[pt.Var] = true
			}
		}
	}

	pl := planned{steps: order, filtersAfter: make([][]Expr, n)}
	// recompute cumulative bound sets along the order
	cum := make([]map[string]bool, n+1)
	cum[0] = map[string]bool{}
	for v := range pre {
		cum[0][v] = true
	}
	for i, tp := range order {
		next := map[string]bool{}
		for v := range cum[i] {
			next[v] = true
		}
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if pt.IsVar {
				next[pt.Var] = true
			}
		}
		cum[i+1] = next
	}
	for _, f := range g.Filters {
		if _, isExists := f.(exExists); isExists {
			if n == 0 {
				pl.preFilters = append(pl.preFilters, f)
			} else {
				pl.filtersAfter[n-1] = append(pl.filtersAfter[n-1], f)
			}
			continue
		}
		deps := exprVars(f)
		placed := false
		for i := 0; i <= n && !placed; i++ {
			all := true
			for _, d := range deps {
				if !cum[i][d] {
					all = false
					break
				}
			}
			if all {
				if i == 0 {
					pl.preFilters = append(pl.preFilters, f)
				} else {
					pl.filtersAfter[i-1] = append(pl.filtersAfter[i-1], f)
				}
				placed = true
			}
		}
		if !placed {
			// variables never bound: evaluate at the end (BOUND(?v)
			// legitimately queries unbound vars).
			if n == 0 {
				pl.preFilters = append(pl.preFilters, f)
			} else {
				pl.filtersAfter[n-1] = append(pl.filtersAfter[n-1], f)
			}
		}
	}
	return pl
}

// exprVars collects the variables mentioned by an expression.
func exprVars(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case exVar:
			out = append(out, x.name)
		case exNot:
			walk(x.arg)
		case exAnd:
			walk(x.l)
			walk(x.r)
		case exOr:
			walk(x.l)
			walk(x.r)
		case exCompare:
			walk(x.l)
			walk(x.r)
		case exCall:
			for _, a := range x.args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// run enumerates all bindings of g's pattern extending pre, invoking
// emit for each. emit returning errStop aborts cleanly.
func (ev *evaluator) run(g *GroupPattern, pre binding, emit func(binding) error) error {
	pl := ev.plan(g, pre)
	b := make(binding, len(pre)+4)
	for k, v := range pre {
		b[k] = v
	}
	envb := &bindingEnv{ev: ev, b: b}
	for _, f := range pl.preFilters {
		ok, valid := f.eval(envb).EBV()
		if !valid || !ok {
			return nil
		}
	}
	return ev.join(pl, 0, b, envb, emit)
}

func (ev *evaluator) join(pl planned, step int, b binding, envb *bindingEnv, emit func(binding) error) error {
	if step == len(pl.steps) {
		return emit(b)
	}
	tp := pl.steps[step]
	return ev.matchPattern(tp, b, func(newVars []string) error {
		for _, f := range pl.filtersAfter[step] {
			ok, valid := f.eval(envb).EBV()
			if !valid || !ok {
				return nil
			}
		}
		return ev.join(pl, step+1, b, envb, emit)
	}, func(newVars []string) {
		for _, v := range newVars {
			delete(b, v)
		}
	})
}

// matchPattern enumerates KB facts matching tp under b, temporarily
// binding new variables. For each match it calls found with the list of
// newly-bound variable names, then undo with the same list.
func (ev *evaluator) matchPattern(tp TriplePattern, b binding,
	found func(newVars []string) error, undo func(newVars []string)) error {

	resolve := func(pt PatternTerm) (kb.TermID, string, bool) {
		if !pt.IsVar {
			id := ev.kb.Lookup(pt.Term)
			return id, "", true // id may be NoTerm: no matches possible
		}
		if id, ok := b[pt.Var]; ok {
			return id, "", true
		}
		return kb.NoTerm, pt.Var, false
	}

	sID, sVar, sBound := resolve(tp.S)
	pID, pVar, pBound := resolve(tp.P)
	oID, oVar, oBound := resolve(tp.O)

	// a concrete term unknown to the KB can never match
	if (sBound && sID == kb.NoTerm) || (pBound && pID == kb.NoTerm) || (oBound && oID == kb.NoTerm) {
		return nil
	}

	// try binds the still-free positions to the candidate fact, checking
	// duplicate-variable consistency (?x p ?x).
	try := func(s, p, o kb.TermID) error {
		var newVars []string
		bind := func(name string, id kb.TermID) bool {
			if name == "" {
				return true
			}
			if prev, ok := b[name]; ok {
				return prev == id
			}
			b[name] = id
			newVars = append(newVars, name)
			return true
		}
		ok := true
		if !sBound {
			ok = bind(sVar, s)
		}
		if ok && !pBound {
			ok = bind(pVar, p)
		}
		if ok && !oBound {
			ok = bind(oVar, o)
		}
		if !ok {
			for _, v := range newVars {
				delete(b, v)
			}
			return nil
		}
		err := found(newVars)
		undo(newVars)
		return err
	}

	switch {
	case sBound && pBound && oBound:
		if ev.kb.HasFact(sID, pID, oID) {
			return try(sID, pID, oID)
		}
		return nil
	case sBound && pBound:
		for _, o := range ev.kb.ObjectsOf(sID, pID) {
			if err := try(sID, pID, o); err != nil {
				return err
			}
		}
		return nil
	case pBound && oBound:
		for _, s := range ev.kb.SubjectsOf(pID, oID) {
			if err := try(s, pID, oID); err != nil {
				return err
			}
		}
		return nil
	case sBound && oBound:
		for _, p := range ev.kb.PredicatesBetween(sID, oID) {
			if err := try(sID, p, oID); err != nil {
				return err
			}
		}
		return nil
	case sBound:
		for _, p := range ev.kb.PredicatesOfSubject(sID) {
			for _, o := range ev.kb.ObjectsOf(sID, p) {
				if err := try(sID, p, o); err != nil {
					return err
				}
			}
		}
		return nil
	case pBound:
		var outerErr error
		ev.kb.EachFactOf(pID, func(s, o kb.TermID) bool {
			if err := try(s, pID, o); err != nil {
				outerErr = err
				return false
			}
			return true
		})
		return outerErr
	case oBound:
		for _, p := range ev.kb.Relations() {
			for _, s := range ev.kb.SubjectsOf(p, oID) {
				if err := try(s, p, oID); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		for _, p := range ev.kb.Relations() {
			var outerErr error
			ev.kb.EachFactOf(p, func(s, o kb.TermID) bool {
				if err := try(s, p, o); err != nil {
					outerErr = err
					return false
				}
				return true
			})
			if outerErr != nil {
				return outerErr
			}
		}
		return nil
	}
}
