package sparql

import (
	"math/rand"
	"regexp"
	"strconv"
	"strings"

	"sofya/internal/rdf"
)

// Value is the result of evaluating an expression: a boolean, a number,
// a string, an RDF term, or an evaluation error (which FILTER treats as
// false, per SPARQL semantics).
type Value struct {
	kind uint8
	b    bool
	n    float64
	s    string
	t    rdf.Term
}

const (
	vErr uint8 = iota
	vBool
	vNum
	vStr
	vTerm
)

func errValue() Value          { return Value{kind: vErr} }
func boolValue(b bool) Value   { return Value{kind: vBool, b: b} }
func numValue(n float64) Value { return Value{kind: vNum, n: n} }
func strValue(s string) Value  { return Value{kind: vStr, s: s} }
func termValue(t rdf.Term) Value {
	return Value{kind: vTerm, t: t}
}

// IsErr reports whether the value is an evaluation error.
func (v Value) IsErr() bool { return v.kind == vErr }

// EBV computes the SPARQL effective boolean value. The second result is
// false when no EBV exists (type error).
func (v Value) EBV() (bool, bool) {
	switch v.kind {
	case vBool:
		return v.b, true
	case vNum:
		return v.n != 0, true
	case vStr:
		return v.s != "", true
	case vTerm:
		if v.t.Kind != rdf.Literal {
			return false, false
		}
		if f, ok := numericLexical(v.t); ok {
			return f != 0, true
		}
		if v.t.Datatype == rdf.XSDBoolean {
			return v.t.Value == "true" || v.t.Value == "1", true
		}
		return v.t.Value != "", true
	default:
		return false, false
	}
}

// asNumber attempts numeric coercion.
func (v Value) asNumber() (float64, bool) {
	switch v.kind {
	case vNum:
		return v.n, true
	case vTerm:
		return numericLexical(v.t)
	default:
		return 0, false
	}
}

// asString attempts string coercion (plain literals, xsd:string, vStr).
func (v Value) asString() (string, bool) {
	switch v.kind {
	case vStr:
		return v.s, true
	case vTerm:
		if v.t.Kind == rdf.Literal {
			return v.t.Value, true
		}
		return "", false
	default:
		return "", false
	}
}

func numericLexical(t rdf.Term) (float64, bool) {
	if t.Kind != rdf.Literal {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble, rdf.XSDGYear:
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	case "":
		// plain literals that look numeric participate in numeric
		// comparison, which is how YAGO-style TSV dumps behave.
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// env provides variable lookups during expression evaluation.
type env interface {
	lookupVar(name string) (rdf.Term, bool)
	rng() *rand.Rand
	evalExists(g *GroupPattern) (bool, error)
}

// Expr is a parsed SPARQL expression.
type Expr interface {
	eval(e env) Value
	// String renders the expression approximately in SPARQL syntax.
	String() string
}

type exVar struct{ name string }

func (x exVar) eval(e env) Value {
	t, ok := e.lookupVar(x.name)
	if !ok {
		return errValue()
	}
	return termValue(t)
}
func (x exVar) String() string { return "?" + x.name }

type exConst struct{ t rdf.Term }

func (x exConst) eval(env) Value { return termValue(x.t) }
func (x exConst) String() string { return x.t.String() }

type exNum struct{ n float64 }

func (x exNum) eval(env) Value { return numValue(x.n) }
func (x exNum) String() string { return strconv.FormatFloat(x.n, 'g', -1, 64) }

type exBool struct{ b bool }

func (x exBool) eval(env) Value { return boolValue(x.b) }
func (x exBool) String() string { return strconv.FormatBool(x.b) }

type exNot struct{ arg Expr }

func (x exNot) eval(e env) Value {
	b, ok := x.arg.eval(e).EBV()
	if !ok {
		return errValue()
	}
	return boolValue(!b)
}
func (x exNot) String() string { return "!(" + x.arg.String() + ")" }

type exAnd struct{ l, r Expr }

func (x exAnd) eval(e env) Value {
	lb, lok := x.l.eval(e).EBV()
	if lok && !lb {
		return boolValue(false)
	}
	rb, rok := x.r.eval(e).EBV()
	if rok && !rb {
		return boolValue(false)
	}
	if !lok || !rok {
		return errValue()
	}
	return boolValue(true)
}
func (x exAnd) String() string { return "(" + x.l.String() + " && " + x.r.String() + ")" }

type exOr struct{ l, r Expr }

func (x exOr) eval(e env) Value {
	lb, lok := x.l.eval(e).EBV()
	if lok && lb {
		return boolValue(true)
	}
	rb, rok := x.r.eval(e).EBV()
	if rok && rb {
		return boolValue(true)
	}
	if !lok || !rok {
		return errValue()
	}
	return boolValue(false)
}
func (x exOr) String() string { return "(" + x.l.String() + " || " + x.r.String() + ")" }

type exCompare struct {
	op   string // = != < <= > >=
	l, r Expr
}

func (x exCompare) eval(e env) Value {
	lv, rv := x.l.eval(e), x.r.eval(e)
	if lv.IsErr() || rv.IsErr() {
		return errValue()
	}
	switch x.op {
	case "=", "!=":
		eq, ok := valuesEqual(lv, rv)
		if !ok {
			return errValue()
		}
		if x.op == "!=" {
			eq = !eq
		}
		return boolValue(eq)
	}
	c, ok := valuesOrder(lv, rv)
	if !ok {
		return errValue()
	}
	switch x.op {
	case "<":
		return boolValue(c < 0)
	case "<=":
		return boolValue(c <= 0)
	case ">":
		return boolValue(c > 0)
	case ">=":
		return boolValue(c >= 0)
	}
	return errValue()
}
func (x exCompare) String() string {
	return "(" + x.l.String() + " " + x.op + " " + x.r.String() + ")"
}

// valuesEqual implements SPARQL-style equality with numeric coercion.
func valuesEqual(l, r Value) (bool, bool) {
	if ln, ok := l.asNumber(); ok {
		if rn, ok := r.asNumber(); ok {
			return ln == rn, true
		}
	}
	if ls, ok := l.asString(); ok {
		if rs, ok := r.asString(); ok {
			// language tags distinguish literals
			if l.kind == vTerm && r.kind == vTerm && l.t.Lang != r.t.Lang {
				return false, true
			}
			return ls == rs, true
		}
	}
	if l.kind == vBool && r.kind == vBool {
		return l.b == r.b, true
	}
	if l.kind == vTerm && r.kind == vTerm {
		return l.t == r.t, true
	}
	return false, false
}

// valuesOrder implements <,> comparisons: numeric if both coercible,
// else string, else full term order.
func valuesOrder(l, r Value) (int, bool) {
	if ln, ok := l.asNumber(); ok {
		if rn, ok := r.asNumber(); ok {
			switch {
			case ln < rn:
				return -1, true
			case ln > rn:
				return 1, true
			default:
				return 0, true
			}
		}
	}
	if ls, ok := l.asString(); ok {
		if rs, ok := r.asString(); ok {
			return strings.Compare(ls, rs), true
		}
	}
	if l.kind == vTerm && r.kind == vTerm {
		return l.t.Compare(r.t), true
	}
	return 0, false
}

type exCall struct {
	name string // upper-cased
	args []Expr
}

func (x exCall) String() string {
	parts := make([]string, len(x.args))
	for i, a := range x.args {
		parts[i] = a.String()
	}
	return x.name + "(" + strings.Join(parts, ", ") + ")"
}

func (x exCall) eval(e env) Value {
	switch x.name {
	case "BOUND":
		v, ok := x.args[0].(exVar)
		if !ok {
			return errValue()
		}
		_, bound := e.lookupVar(v.name)
		return boolValue(bound)
	case "RAND":
		return numValue(e.rng().Float64())
	}
	// remaining functions evaluate all arguments strictly
	vals := make([]Value, len(x.args))
	for i, a := range x.args {
		vals[i] = a.eval(e)
		if vals[i].IsErr() {
			return errValue()
		}
	}
	return callBuiltin(x.name, vals)
}

// compileRegex builds the Go regexp for a SPARQL REGEX pattern with the
// given flags (only "i" is honored).
func compileRegex(pat, flags string) (*regexp.Regexp, error) {
	if strings.Contains(flags, "i") {
		pat = "(?i)" + pat
	}
	return regexp.Compile(pat)
}

// callBuiltin applies a strict builtin (every builtin except BOUND and
// RAND) to its evaluated, error-free arguments. It is shared by the
// tree-walking evaluator and the compiled closures (cexpr.go).
func callBuiltin(name string, vals []Value) Value {
	switch name {
	case "STR":
		v := vals[0]
		switch v.kind {
		case vTerm:
			return strValue(v.t.Value)
		case vStr:
			return strValue(v.s)
		case vNum:
			return strValue(strconv.FormatFloat(v.n, 'g', -1, 64))
		case vBool:
			return strValue(strconv.FormatBool(v.b))
		}
		return errValue()
	case "LANG":
		if vals[0].kind == vTerm && vals[0].t.Kind == rdf.Literal {
			return strValue(vals[0].t.Lang)
		}
		return errValue()
	case "DATATYPE":
		if vals[0].kind == vTerm && vals[0].t.Kind == rdf.Literal {
			dt := vals[0].t.Datatype
			if dt == "" && vals[0].t.Lang == "" {
				dt = rdf.XSDString
			}
			return termValue(rdf.NewIRI(dt))
		}
		return errValue()
	case "ISIRI", "ISURI":
		return boolValue(vals[0].kind == vTerm && vals[0].t.IsIRI())
	case "ISLITERAL":
		return boolValue(vals[0].kind == vTerm && vals[0].t.IsLiteral())
	case "ISBLANK":
		return boolValue(vals[0].kind == vTerm && vals[0].t.IsBlank())
	case "SAMETERM":
		if vals[0].kind == vTerm && vals[1].kind == vTerm {
			return boolValue(vals[0].t == vals[1].t)
		}
		return errValue()
	case "REGEX":
		text, ok1 := vals[0].asString()
		pat, ok2 := vals[1].asString()
		if !ok1 || !ok2 {
			return errValue()
		}
		var flags string
		if len(vals) > 2 {
			flags, _ = vals[2].asString()
		}
		re, err := compileRegex(pat, flags)
		if err != nil {
			return errValue()
		}
		return boolValue(re.MatchString(text))
	case "CONTAINS":
		a, ok1 := vals[0].asString()
		b, ok2 := vals[1].asString()
		if !ok1 || !ok2 {
			return errValue()
		}
		return boolValue(strings.Contains(a, b))
	case "STRSTARTS":
		a, ok1 := vals[0].asString()
		b, ok2 := vals[1].asString()
		if !ok1 || !ok2 {
			return errValue()
		}
		return boolValue(strings.HasPrefix(a, b))
	case "STRENDS":
		a, ok1 := vals[0].asString()
		b, ok2 := vals[1].asString()
		if !ok1 || !ok2 {
			return errValue()
		}
		return boolValue(strings.HasSuffix(a, b))
	case "STRLEN":
		a, ok := vals[0].asString()
		if !ok {
			return errValue()
		}
		return numValue(float64(len([]rune(a))))
	case "LCASE":
		a, ok := vals[0].asString()
		if !ok {
			return errValue()
		}
		return strValue(strings.ToLower(a))
	case "UCASE":
		a, ok := vals[0].asString()
		if !ok {
			return errValue()
		}
		return strValue(strings.ToUpper(a))
	}
	return errValue()
}

// knownFunction reports whether name (upper-cased) is a builtin and its
// argument-count range.
func knownFunction(name string) (minArgs, maxArgs int, ok bool) {
	switch name {
	case "RAND":
		return 0, 0, true
	case "BOUND", "STR", "LANG", "DATATYPE", "ISIRI", "ISURI", "ISLITERAL",
		"ISBLANK", "STRLEN", "LCASE", "UCASE":
		return 1, 1, true
	case "SAMETERM", "CONTAINS", "STRSTARTS", "STRENDS":
		return 2, 2, true
	case "REGEX":
		return 2, 3, true
	default:
		return 0, 0, false
	}
}

type exExists struct {
	negate bool
	group  *GroupPattern
}

func (x exExists) eval(e env) Value {
	ok, err := e.evalExists(x.group)
	if err != nil {
		return errValue()
	}
	if x.negate {
		ok = !ok
	}
	return boolValue(ok)
}

// String renders the EXISTS in parseable inline form, so that
// expressions embedding it — e.g. `FILTER (EXISTS { ... } || ...)` —
// serialize to canonical text that reparses (the fixpoint invariant
// RAND() determinism and text-keyed caching rest on).
func (x exExists) String() string {
	var sb strings.Builder
	if x.negate {
		sb.WriteString("NOT ")
	}
	sb.WriteString("EXISTS { ")
	writeInlineGroup(&sb, x.group)
	sb.WriteString("}")
	return sb.String()
}

// writeInlineGroup serializes a group pattern on one line.
func writeInlineGroup(sb *strings.Builder, g *GroupPattern) {
	if g == nil {
		return
	}
	for _, tp := range g.Triples {
		sb.WriteString(tp.String() + " . ")
	}
	for _, f := range g.Filters {
		if ex, ok := f.(exExists); ok {
			if ex.negate {
				sb.WriteString("FILTER NOT EXISTS { ")
			} else {
				sb.WriteString("FILTER EXISTS { ")
			}
			writeInlineGroup(sb, ex.group)
			sb.WriteString("} ")
			continue
		}
		sb.WriteString("FILTER (" + f.String() + ") ")
	}
}
