package sparql

import (
	"strings"
	"testing"

	"sofya/internal/rdf"
)

func TestParseSelectBasic(t *testing.T) {
	q := MustParse(`SELECT ?x ?y WHERE { ?x <http://x/p> ?y . }`)
	if q.Form != SelectForm || q.Distinct {
		t.Fatalf("form/distinct wrong: %+v", q)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "x" || q.Vars[1] != "y" {
		t.Fatalf("vars = %v", q.Vars)
	}
	if len(q.Where.Triples) != 1 {
		t.Fatalf("triples = %v", q.Where.Triples)
	}
	tp := q.Where.Triples[0]
	if !tp.S.IsVar || tp.S.Var != "x" {
		t.Fatalf("subject = %+v", tp.S)
	}
	if tp.P.IsVar || tp.P.Term.Value != "http://x/p" {
		t.Fatalf("predicate = %+v", tp.P)
	}
	if q.Limit != -1 || q.Offset != 0 {
		t.Fatalf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseSelectStar(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?b <http://x/p> ?a . ?a <http://x/q> ?c }`)
	// SELECT * projects all pattern variables sorted
	want := []string{"a", "b", "c"}
	if len(q.Vars) != 3 {
		t.Fatalf("vars = %v", q.Vars)
	}
	for i := range want {
		if q.Vars[i] != want[i] {
			t.Fatalf("vars = %v, want %v", q.Vars, want)
		}
	}
}

func TestParseDistinctLimitOffset(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?x WHERE { ?x <http://x/p> ?y } LIMIT 10 OFFSET 5`)
	if !q.Distinct || q.Limit != 10 || q.Offset != 5 {
		t.Fatalf("modifiers wrong: %+v", q)
	}
	// OFFSET before LIMIT also accepted
	q2 := MustParse(`SELECT ?x WHERE { ?x <http://x/p> ?y } OFFSET 2 LIMIT 3`)
	if q2.Limit != 3 || q2.Offset != 2 {
		t.Fatalf("modifiers wrong: %+v", q2)
	}
}

func TestParsePrefixes(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?x WHERE { ?x ex:knows ex:alice }`)
	tp := q.Where.Triples[0]
	if tp.P.Term.Value != "http://ex.org/knows" || tp.O.Term.Value != "http://ex.org/alice" {
		t.Fatalf("prefix expansion wrong: %+v", tp)
	}
	// built-in prefixes available without declaration
	q2 := MustParse(`SELECT ?x WHERE { ?x rdf:type yago:Person }`)
	if q2.Where.Triples[0].P.Term.Value != rdf.RDFType {
		t.Fatalf("builtin prefix wrong: %+v", q2.Where.Triples[0])
	}
}

func TestParseTypeShorthand(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x a <http://x/Person> }`)
	if q.Where.Triples[0].P.Term.Value != rdf.RDFType {
		t.Fatalf("'a' shorthand not expanded: %+v", q.Where.Triples[0])
	}
}

func TestParsePropertyList(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <http://x/p> ?y ; <http://x/q> ?z . }`)
	if len(q.Where.Triples) != 2 {
		t.Fatalf("property list not expanded: %v", q.Where.Triples)
	}
	if q.Where.Triples[1].S.Var != "x" || q.Where.Triples[1].P.Term.Value != "http://x/q" {
		t.Fatalf("second triple wrong: %+v", q.Where.Triples[1])
	}
}

func TestParseLiteralObjects(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x <http://x/name> "Ada" .
		?x <http://x/label> "Ada"@en .
		?x <http://x/born> "1815"^^xsd:gYear .
		?x <http://x/age> 42 .
		?x <http://x/score> 4.5 .
	}`)
	ts := q.Where.Triples
	if ts[0].O.Term != rdf.NewLiteral("Ada") {
		t.Fatalf("plain literal: %+v", ts[0].O.Term)
	}
	if ts[1].O.Term != rdf.NewLangLiteral("Ada", "en") {
		t.Fatalf("lang literal: %+v", ts[1].O.Term)
	}
	if ts[2].O.Term != rdf.NewTypedLiteral("1815", rdf.XSDGYear) {
		t.Fatalf("typed literal: %+v", ts[2].O.Term)
	}
	if ts[3].O.Term != rdf.NewTypedLiteral("42", rdf.XSDInteger) {
		t.Fatalf("integer literal: %+v", ts[3].O.Term)
	}
	if ts[4].O.Term != rdf.NewTypedLiteral("4.5", rdf.XSDDecimal) {
		t.Fatalf("decimal literal: %+v", ts[4].O.Term)
	}
}

func TestParseFilters(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x <http://x/age> ?a .
		FILTER (?a > 18 && ?a <= 65)
		FILTER REGEX(STR(?x), "^http://x/", "i")
	}`)
	if len(q.Where.Filters) != 2 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
}

func TestParseFilterExists(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x <http://x/p> ?y .
		FILTER NOT EXISTS { ?x <http://x/q> ?y }
	}`)
	ex, ok := q.Where.Filters[0].(exExists)
	if !ok || !ex.negate {
		t.Fatalf("filter = %#v", q.Where.Filters[0])
	}
	q2 := MustParse(`SELECT ?x WHERE { ?x <http://x/p> ?y FILTER EXISTS { ?y <http://x/q> ?x } }`)
	ex2, ok := q2.Where.Filters[0].(exExists)
	if !ok || ex2.negate {
		t.Fatalf("filter = %#v", q2.Where.Filters[0])
	}
}

func TestParseAsk(t *testing.T) {
	q := MustParse(`ASK { <http://x/a> <http://x/p> <http://x/b> }`)
	if q.Form != AskForm {
		t.Fatalf("form = %v", q.Form)
	}
}

func TestParseOrderBy(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x <http://x/p> ?y } ORDER BY DESC(?y) ?x LIMIT 2`)
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order keys = %+v", q.OrderBy)
	}
	q2 := MustParse(`SELECT ?x WHERE { ?x <http://x/p> ?y } ORDER BY RAND()`)
	if len(q2.OrderBy) != 1 {
		t.Fatalf("order keys = %+v", q2.OrderBy)
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse(`# leading comment
SELECT ?x WHERE {
  ?x <http://x/p> ?y . # trailing comment
}`)
	if len(q.Where.Triples) != 1 {
		t.Fatalf("triples = %v", q.Where.Triples)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT WHERE { ?x ?p ?y }`,            // no vars and no *
		`SELECT ?x { ?x <http://x/p> }`,        // incomplete triple
		`SELECT ?x WHERE { ?x <http://x/p> ?y`, // unterminated group
		`SELECT ?x WHERE { ?x "lit" ?y }`,      // literal predicate
		`SELECT ?x WHERE { "lit" <http://p> ?y }`, // literal subject
		`SELECT ?x WHERE { ?x <http://x/p> ?y } LIMIT -3`,
		`SELECT ?x WHERE { ?x <http://x/p> ?y } ORDER BY`,
		`SELECT ?x WHERE { ?x unknown:p ?y }`, // unknown prefix
		`SELECT ?x WHERE { ?x <http://x/p> ?y } garbage`,
		`CONSTRUCT { ?x <http://x/p> ?y } WHERE { ?x <http://x/p> ?y }`,
		`SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER REGEX(?y) }`, // arity
		`SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER NOPE(?y) }`,  // unknown fn
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse(`select distinct ?x where { ?x <http://x/p> ?y } order by ?x limit 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || q.Limit != 1 || len(q.OrderBy) != 1 {
		t.Fatalf("lowercase keywords mishandled: %+v", q)
	}
}

func TestPatternTermString(t *testing.T) {
	if Variable("x").String() != "?x" {
		t.Fatal("Variable.String")
	}
	if !strings.Contains(Concrete(rdf.NewIRI("http://x/p")).String(), "http://x/p") {
		t.Fatal("Concrete.String")
	}
	tp := TriplePattern{S: Variable("s"), P: Concrete(rdf.NewIRI("http://p")), O: Variable("o")}
	if tp.String() != "?s <http://p> ?o" {
		t.Fatalf("TriplePattern.String = %q", tp.String())
	}
}
