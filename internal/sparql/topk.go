package sparql

import "sort"

// topk.go is the bounded top-k selection primitive shared by the
// executor's ORDER BY path (streamOrdered) and the federation merge
// (internal/shard): keep the best `target` items under a total order,
// reject losers in O(log k) without retaining them, and emit the
// winners sorted. Both sides selecting with literally the same code is
// part of what keeps sharded ORDER BY results byte-identical to the
// unsharded engine's.

// TopK selects the `target` least items under a total `before` order
// over a stream of candidates, holding at most `target` items at any
// moment. Internally the kept items form a max-heap (the root is the
// worst kept item, the one that would be emitted last), so a candidate
// that does not order before the root is rejected in O(1) comparisons
// without ever being stored — callers reuse the candidate's buffers for
// the next row, which is what makes O(k) memory possible over an
// O(result) enumeration.
//
// `before` must be a strict total order (use an enumeration-index
// tiebreak to totalize a key comparison); with a merely partial order
// the heap selection can diverge from a reference stable sort.
//
// The zero value is not usable; construct with NewTopK. A TopK is not
// safe for concurrent use.
type TopK[T any] struct {
	items  []T
	target int
	before func(a, b *T) bool
}

// NewTopK returns a selector for the `target` least items under
// `before`. target must be positive.
func NewTopK[T any](target int, before func(a, b *T) bool) *TopK[T] {
	return &TopK[T]{target: target, before: before}
}

// Full reports whether the selection holds target items — from then on
// admission requires beating the worst kept item.
func (t *TopK[T]) Full() bool { return len(t.items) == t.target }

// Len returns the number of items currently held.
func (t *TopK[T]) Len() int { return len(t.items) }

// Admits reports whether x would enter the selection: always, until the
// selection is full; afterwards only if x orders before the worst kept
// item. It does not modify the selection.
func (t *TopK[T]) Admits(x *T) bool {
	return len(t.items) < t.target || t.before(x, &t.items[0])
}

// Worst returns the worst kept item in place (the heap root). Callers
// on the zero-allocation path overwrite it — reusing its buffers — and
// then call FixWorst. Only valid when Len() > 0.
func (t *TopK[T]) Worst() *T { return &t.items[0] }

// FixWorst restores the heap order after the caller overwrote *Worst().
func (t *TopK[T]) FixWorst() { siftDown(t.items, 0, t.before) }

// Push admits x into a non-full selection. Callers must check Admits
// (or !Full) first; pushing into a full selection panics via the
// append-beyond-target guard below.
func (t *TopK[T]) Push(x T) {
	if len(t.items) >= t.target {
		panic("sparql: TopK.Push on a full selection (use Worst/FixWorst)")
	}
	t.items = append(t.items, x)
	siftUp(t.items, len(t.items)-1, t.before)
}

// Sorted sorts the kept items into emission order (least first, under
// `before`) and returns them. The selection must not be used afterwards.
func (t *TopK[T]) Sorted() []T {
	items, before := t.items, t.before
	sort.Slice(items, func(i, j int) bool { return before(&items[i], &items[j]) })
	return items
}

// siftUp restores the max-heap property (the root orders last under
// `before`) upward from i.
func siftUp[T any](s []T, i int, before func(a, b *T) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !before(&s[parent], &s[i]) {
			return
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// siftDown restores the max-heap property downward from i.
func siftDown[T any](s []T, i int, before func(a, b *T) bool) {
	n := len(s)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && before(&s[largest], &s[l]) {
			largest = l
		}
		if r < n && before(&s[largest], &s[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		s[i], s[largest] = s[largest], s[i]
		i = largest
	}
}
