package sparql

import (
	"testing"

	"sofya/internal/kb"
)

// FuzzParse exercises the SPARQL parser with a seed corpus drawn from
// the aligner's real query templates (text and prepared forms). Beyond
// not crashing, it checks the canonicalization invariant the engine's
// RAND() determinism rests on: any query that parses must serialize to
// canonical text that reparses, and that canonical text must be a
// fixpoint of String ∘ Parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// discover window / body sample
		"SELECT ?x ?y WHERE { ?x <http://yago-knowledge.org/resource/wasBornIn> ?y } ORDER BY RAND() LIMIT 200",
		"SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n",
		// predicates-between / equivalence probe
		"SELECT ?p WHERE { <http://x/a> ?p <http://x/b> }",
		"SELECT ?p WHERE { $s ?p $o }",
		// literal attributes
		"SELECT ?p ?v WHERE { <http://x/a> ?p ?v . FILTER ISLITERAL(?v) }",
		"SELECT ?p ?v WHERE { $s ?p ?v . FILTER ISLITERAL(?v) }",
		// head objects
		"SELECT ?y WHERE { <http://x/a> <http://x/p> ?y }",
		// UBS overlap
		`SELECT ?x ?y1 ?y2 WHERE {
  ?x <http://x/a> ?y1 .
  ?x <http://x/b> ?y2 .
  FILTER NOT EXISTS { ?x <http://x/a> ?y2 }
} ORDER BY RAND() LIMIT 560`,
		// general coverage
		"PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT DISTINCT ?x WHERE { ?x a foaf:Person ; foaf:knows ?y . FILTER (?x != ?y && STRLEN(STR(?x)) > 3) } ORDER BY DESC(?x) LIMIT 10 OFFSET 2",
		`ASK { ?x ?p "lit"@en . FILTER REGEX(?x, "a.c", "i") }`,
		`SELECT * WHERE { ?s ?p "5"^^<http://www.w3.org/2001/XMLSchema#integer> . FILTER (?o > 4.5 || !BOUND(?z)) }`,
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER EXISTS { ?y <http://x/q> ?x } }",
		// filter-expression corpus: nested parens, EXISTS inside boolean
		// operators, NOT EXISTS under negation, mixed datatypes
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (((?y > 3) && ((?y < 9) || (?y = 11))) != false) }",
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (EXISTS { ?x <http://x/q> ?z . FILTER (?z != ?y) } || STRLEN(STR(?y)) > 2) }",
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (!(NOT EXISTS { ?x <http://x/q> ?y }) && ISIRI(?y)) }",
		`SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (?v >= "1990"^^<http://www.w3.org/2001/XMLSchema#gYear> || ?v = "x"@en || ?v < 3.25) }`,
		`SELECT ?v WHERE { ?s ?p ?v . FILTER (DATATYPE(?v) = <http://www.w3.org/2001/XMLSchema#date> && !ISBLANK(?s)) }`,
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (SAMETERM(?x, ?y) || CONTAINS(LCASE(STR(?y)), UCASE(\"a\"))) } ORDER BY RAND() LIMIT 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := Parse(in)
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical text does not reparse: %v\ninput:  %q\ncanon:  %q", err, in, canon)
		}
		if again := q2.String(); again != canon {
			t.Fatalf("canonicalization is not a fixpoint:\nfirst:  %q\nsecond: %q", canon, again)
		}
	})
}

// FuzzTemplate exercises template parameter binding: inputs are parsed
// as templates declaring parameters $r (term) and $n (integer). A
// template that parses must render, with bound arguments, to canonical
// text that reparses to its own fixpoint — the invariant that keeps
// prepared RAND() streams identical to the text path — and compiling
// and executing the template against a tiny engine must agree with
// evaluating the rendered text. Inputs that put $name where it cannot
// be bound (projected, in a FILTER or ORDER BY expression, inside an
// expression-nested EXISTS) must fail ParseTemplate gracefully.
func FuzzTemplate(f *testing.F) {
	seeds := []string{
		// the aligner's real templates
		"SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n",
		"SELECT ?y WHERE { $r <http://x/p> ?y }",
		"SELECT ?p WHERE { $r ?p $n }",
		`SELECT ?x ?y1 ?y2 WHERE {
  ?x $r ?y1 .
  ?x <http://x/b> ?y2 .
  FILTER NOT EXISTS { ?x $r ?y2 }
} ORDER BY RAND() LIMIT $n`,
		// parameters in top-level EXISTS groups (allowed)
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER EXISTS { ?x $r ?z } } LIMIT $n",
		// $name in filter position and other rejected placements
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (?y > $n) }",
		"SELECT ?x WHERE { ?x $r ?y . FILTER (STRLEN(STR($r)) > 1) }",
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (EXISTS { ?x $r ?z } || ?x != ?y) }",
		"SELECT $r WHERE { ?x <http://x/p> $r }",
		"SELECT ?x WHERE { ?x <http://x/p> ?y } ORDER BY $n",
		// nested parens and mixed datatypes around parameter sites
		`SELECT ?x WHERE { ?x $r "5"^^<http://www.w3.org/2001/XMLSchema#integer> . FILTER (((?x != ?x)) || true) } LIMIT $n`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	k := kb.New("fuzz")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.AddIRIs("http://x/b", "http://x/p", "http://x/c")
	k.AddIRIs("http://x/a", "http://x/b", "http://x/c")
	k.Freeze()
	eng := NewEngineSeeded(k, 3)
	f.Fuzz(func(t *testing.T, in string) {
		tm, err := ParseTemplate(in, "r", "n")
		if err != nil {
			return
		}
		args := make([]Arg, 2)
		for i, name := range tm.Params() {
			if tm.isInt[i] {
				args[i] = IntArg(4)
			} else {
				args[i] = IRIArg("http://x/p")
			}
			_ = name
		}
		text, err := tm.Text(args...)
		if err != nil {
			t.Fatalf("instantiating a parsed template failed: %v\ninput: %q", err, in)
		}
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("instantiated template does not parse: %v\ninput: %q\ntext:  %q", err, in, text)
		}
		if canon := q.String(); canon != text {
			t.Fatalf("instantiated text is not canonical:\ntext:  %q\ncanon: %q", text, canon)
		}
		if q.Form != SelectForm && q.Form != AskForm {
			return
		}
		prep, err := eng.Prepare(tm)
		if err != nil {
			return // engine-level rejection (e.g. int parameter in a pattern) is fine
		}
		got, err := prep.Exec(args...)
		if err != nil {
			t.Fatalf("prepared exec failed: %v\ninput: %q", err, in)
		}
		var want *Result
		if q.Form == AskForm {
			ares, err := eng.Eval(q)
			if err != nil {
				t.Fatalf("text eval failed: %v\ntext: %q", err, text)
			}
			want = ares
			if want.Ask != got.Ask {
				t.Fatalf("prepared ASK %v != text ASK %v for %q", got.Ask, want.Ask, text)
			}
			return
		}
		want, err = eng.Eval(q)
		if err != nil {
			t.Fatalf("text eval failed: %v\ntext: %q", err, text)
		}
		if len(want.Rows) != len(got.Rows) {
			t.Fatalf("prepared/text row counts differ: %d vs %d for %q", len(got.Rows), len(want.Rows), text)
		}
		if len(q.OrderBy) > 0 {
			for i := range want.Rows {
				for j := range want.Rows[i] {
					if want.Rows[i][j] != got.Rows[i][j] {
						t.Fatalf("prepared/text rows differ at %d,%d for %q", i, j, text)
					}
				}
			}
		}
	})
}
