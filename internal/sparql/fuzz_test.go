package sparql

import "testing"

// FuzzParse exercises the SPARQL parser with a seed corpus drawn from
// the aligner's real query templates (text and prepared forms). Beyond
// not crashing, it checks the canonicalization invariant the engine's
// RAND() determinism rests on: any query that parses must serialize to
// canonical text that reparses, and that canonical text must be a
// fixpoint of String ∘ Parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// discover window / body sample
		"SELECT ?x ?y WHERE { ?x <http://yago-knowledge.org/resource/wasBornIn> ?y } ORDER BY RAND() LIMIT 200",
		"SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n",
		// predicates-between / equivalence probe
		"SELECT ?p WHERE { <http://x/a> ?p <http://x/b> }",
		"SELECT ?p WHERE { $s ?p $o }",
		// literal attributes
		"SELECT ?p ?v WHERE { <http://x/a> ?p ?v . FILTER ISLITERAL(?v) }",
		"SELECT ?p ?v WHERE { $s ?p ?v . FILTER ISLITERAL(?v) }",
		// head objects
		"SELECT ?y WHERE { <http://x/a> <http://x/p> ?y }",
		// UBS overlap
		`SELECT ?x ?y1 ?y2 WHERE {
  ?x <http://x/a> ?y1 .
  ?x <http://x/b> ?y2 .
  FILTER NOT EXISTS { ?x <http://x/a> ?y2 }
} ORDER BY RAND() LIMIT 560`,
		// general coverage
		"PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT DISTINCT ?x WHERE { ?x a foaf:Person ; foaf:knows ?y . FILTER (?x != ?y && STRLEN(STR(?x)) > 3) } ORDER BY DESC(?x) LIMIT 10 OFFSET 2",
		`ASK { ?x ?p "lit"@en . FILTER REGEX(?x, "a.c", "i") }`,
		`SELECT * WHERE { ?s ?p "5"^^<http://www.w3.org/2001/XMLSchema#integer> . FILTER (?o > 4.5 || !BOUND(?z)) }`,
		"SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER EXISTS { ?y <http://x/q> ?x } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := Parse(in)
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical text does not reparse: %v\ninput:  %q\ncanon:  %q", err, in, canon)
		}
		if again := q2.String(); again != canon {
			t.Fatalf("canonicalization is not a fixpoint:\nfirst:  %q\nsecond: %q", canon, again)
		}
	})
}
