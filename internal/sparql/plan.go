package sparql

import "sofya/internal/kb"

// plan.go finalizes a compiled group for one execution: it chooses the
// join order and attaches filters to the earliest step at which their
// registers are bound. Ordering happens per execution, not per compile,
// because a Prepared's parameters are bound at execution time and the
// cost of a pattern depends on the actual predicate's cardinality.
//
// Two orderers exist:
//
//   - costOrder ranks patterns by estimated result cardinality from the
//     KB's per-predicate statistics (fact counts and functionalities,
//     O(1) on a frozen KB). It is used for every query whose results
//     cannot depend on enumeration order.
//
//   - greedyOrder reproduces the reference tree-walking evaluator's
//     heuristic exactly (most-bound first, smaller relation on ties,
//     input order last). It is used whenever the query draws from the
//     RAND() stream, because there the per-row draw sequence pairs
//     random values with enumeration order: only an identical join
//     order keeps results byte-identical to the reference engine.
type plannedGroup struct {
	order []int32   // indexes into cgroup.pats, execution order
	after [][]int32 // filter indexes evaluated after each step
	pre   []int32   // filter indexes evaluated before any step
}

// planGroup orders g's patterns given the currently-bound register set
// and attaches its filters.
func (ex *execState) planGroup(g *cgroup, bound []bool) plannedGroup {
	n := len(g.pats)
	var order []int32
	if ex.p.usesRand {
		order = ex.greedyOrder(g, bound)
	} else {
		order = ex.costOrder(g, bound)
	}

	pl := plannedGroup{order: order, after: make([][]int32, n)}

	// Cumulative bound sets along the chosen order.
	cum := make([][]bool, n+1)
	cum[0] = bound
	for i, pi := range order {
		next := make([]bool, len(bound))
		copy(next, cum[i])
		tp := g.pats[pi]
		for _, ct := range []cterm{tp.s, tp.p, tp.o} {
			if ct.isVar {
				next[ct.slot] = true
			}
		}
		cum[i+1] = next
	}

	for fi, f := range g.filters {
		if f.exists || f.unplaced {
			// EXISTS filters and filters over never-bound variables
			// evaluate after the last step (before any step when the
			// group has no patterns).
			if n == 0 {
				pl.pre = append(pl.pre, int32(fi))
			} else {
				pl.after[n-1] = append(pl.after[n-1], int32(fi))
			}
			continue
		}
		placed := false
		for i := 0; i <= n && !placed; i++ {
			all := true
			for _, d := range f.deps {
				if !cum[i][d] {
					all = false
					break
				}
			}
			if all {
				if i == 0 {
					pl.pre = append(pl.pre, int32(fi))
				} else {
					pl.after[i-1] = append(pl.after[i-1], int32(fi))
				}
				placed = true
			}
		}
		if !placed {
			if n == 0 {
				pl.pre = append(pl.pre, int32(fi))
			} else {
				pl.after[n-1] = append(pl.after[n-1], int32(fi))
			}
		}
	}
	return pl
}

// boundCount counts pattern positions that are concrete or already
// bound — the reference planner's primary criterion.
func (ex *execState) boundCount(tp cpattern, bound []bool) int {
	c := 0
	for _, ct := range []cterm{tp.s, tp.p, tp.o} {
		if !ct.isVar || bound[ct.slot] {
			c++
		}
	}
	return c
}

// relSize mirrors the reference planner's tie-break: variable
// predicates are huge, unknown predicates empty, otherwise the
// relation's fact count.
func (ex *execState) relSize(tp cpattern) int {
	if tp.p.isVar {
		return 1 << 30
	}
	id := ex.res[tp.p.res]
	if id == kb.NoTerm {
		return 0
	}
	return ex.k.PlanFactsOf(id)
}

// greedyOrder replicates the reference evaluator's plan loop exactly,
// tie-breaks included.
func (ex *execState) greedyOrder(g *cgroup, bound []bool) []int32 {
	n := len(g.pats)
	used := make([]bool, n)
	b := make([]bool, len(bound))
	copy(b, bound)
	order := make([]int32, 0, n)
	for len(order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sc := ex.boundCount(g.pats[i], b)
			sz := ex.relSize(g.pats[i])
			if sc > bestScore || (sc == bestScore && sz < bestSize) {
				best, bestScore, bestSize = i, sc, sz
			}
		}
		used[best] = true
		tp := g.pats[best]
		order = append(order, int32(best))
		for _, ct := range []cterm{tp.s, tp.p, tp.o} {
			if ct.isVar {
				b[ct.slot] = true
			}
		}
	}
	return order
}

// estimate predicts the number of rows a pattern yields given the
// bound set, from the KB's per-predicate cardinality statistics.
func (ex *execState) estimate(tp cpattern, bound []bool) int {
	sB := !tp.s.isVar || bound[tp.s.slot]
	oB := !tp.o.isVar || bound[tp.o.slot]
	if tp.p.isVar {
		// Predicate variables enumerate per-subject predicate lists or
		// whole relations; coarse buckets suffice to rank them last.
		switch {
		case sB && oB:
			return 4
		case sB:
			return 64
		case oB:
			return 1 << 10
		default:
			return 1 << 30
		}
	}
	id := ex.res[tp.p.res]
	if id == kb.NoTerm {
		return 0 // matches nothing: run it first and finish immediately
	}
	// The Plan* accessors serve partition-wide overrides on shard KBs
	// (kb.SetPlanStats) so a shard plans exactly like the whole KB; on
	// ordinary KBs they are the plain counts. PlanObjectsOf keeps the
	// frozen/mutable fallback (exact only when O(1)).
	f := ex.k.PlanFactsOf(id)
	switch {
	case sB && oB:
		return 1
	case sB:
		s := ex.k.PlanSubjectsOf(id)
		if s == 0 {
			return 0
		}
		return (f + s - 1) / s
	case oB:
		o := ex.k.PlanObjectsOf(id)
		if o == 0 {
			return 0
		}
		return (f + o - 1) / o
	default:
		return f
	}
}

// costOrder greedily picks the pattern with the smallest estimated
// cardinality next, breaking ties with the reference criteria so the
// order stays deterministic.
func (ex *execState) costOrder(g *cgroup, bound []bool) []int32 {
	n := len(g.pats)
	used := make([]bool, n)
	b := make([]bool, len(bound))
	copy(b, bound)
	order := make([]int32, 0, n)
	for len(order) < n {
		best := -1
		bestEst, bestScore, bestSize := 0, -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			est := ex.estimate(g.pats[i], b)
			sc := ex.boundCount(g.pats[i], b)
			sz := ex.relSize(g.pats[i])
			better := best == -1 || est < bestEst ||
				(est == bestEst && (sc > bestScore || (sc == bestScore && sz < bestSize)))
			if better {
				best, bestEst, bestScore, bestSize = i, est, sc, sz
			}
		}
		used[best] = true
		tp := g.pats[best]
		order = append(order, int32(best))
		for _, ct := range []cterm{tp.s, tp.p, tp.o} {
			if ct.isVar {
				b[ct.slot] = true
			}
		}
	}
	return order
}
