package sparql

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// exec.go is the final stage of the parse → compile → exec pipeline:
// it runs a Prepared plan with bindings held in a flat []TermID
// register file — no per-row maps, no string keys — and produces rows
// through a pull-friendly streaming core (streamSelect). Eval/Exec
// drain the stream into a Result; Iter (iter.go) hands the same stream
// to the caller row by row, so LIMIT-heavy probes stop paying for rows
// they discard.

// errStop aborts row enumeration early once LIMIT is satisfied or the
// consumer stops pulling.
var errStop = fmt.Errorf("sparql: enumeration stopped")

// execState is the per-execution scratch of one Prepared run.
type execState struct {
	p      *Prepared
	k      *kb.KB
	regs   []kb.TermID // register file; NoTerm = unbound
	res    []kb.TermID // resolved parameter and constant ids
	rnd    *rand.Rand
	textFn func() string

	// borrowRow, when non-nil, is the reused projection buffer of a
	// borrowed-row execution (Prepared.IterBorrowed): every emitted row
	// is written into it instead of a fresh allocation, so the consumer
	// must copy rows it keeps. nil = materialize a fresh row per
	// emission (the default contract).
	borrowRow []rdf.Term

	// planned caches per-execution join orders of EXISTS subgroups;
	// their bound-register set is fixed by the attachment point, so one
	// plan serves every row.
	planned map[*cgroup]*plannedGroup
}

// Exec runs the prepared query with positional arguments (one per
// declared template parameter). It is safe for concurrent use.
func (p *Prepared) Exec(args ...Arg) (*Result, error) {
	if err := p.checkArgs(args); err != nil {
		return nil, err
	}
	return p.exec(args, p.textFnFor(args))
}

// textFnFor builds the lazy canonical-text supplier used for RAND()
// stream derivation; it renders at most once and only when the query
// actually draws randomness.
func (p *Prepared) textFnFor(args []Arg) func() string {
	if p.tmpl != nil {
		var text string
		return func() string {
			if text == "" {
				text = p.tmpl.text(args)
			}
			return text
		}
	}
	return func() string { return p.text }
}

// start builds the execution state and resolves the effective LIMIT and
// OFFSET for one run.
func (p *Prepared) start(args []Arg, textFn func() string) (ex *execState, limit, offset int) {
	ex = &execState{
		p:      p,
		k:      p.eng.kb,
		regs:   make([]kb.TermID, p.nslots),
		res:    p.resolve(args),
		textFn: textFn,
	}
	for i := range ex.regs {
		ex.regs[i] = kb.NoTerm
	}
	limit, offset = p.limit, p.offset
	if p.limitParam >= 0 {
		limit = args[p.limitParam].n
	}
	if p.offsetParam >= 0 {
		offset = args[p.offsetParam].n
	}
	return ex, limit, offset
}

// exec runs the plan by draining the streaming core. textFn supplies
// the canonical query text for RAND() stream derivation and is only
// invoked when the query draws randomness.
func (p *Prepared) exec(args []Arg, textFn func() string) (*Result, error) {
	ex, limit, offset := p.start(args, textFn)

	if p.form == AskForm {
		found := false
		err := ex.runGroup(p.main, func() error {
			found = true
			return errStop
		})
		if err != nil && err != errStop {
			return nil, err
		}
		return &Result{Ask: found}, nil
	}

	res := &Result{Vars: p.vars}
	err := ex.streamSelect(limit, offset, func(row []rdf.Term) bool {
		res.Rows = append(res.Rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runGroup plans the main group against the empty register file,
// applies its pre-step filters and enumerates matches.
func (ex *execState) runGroup(g *cgroup, emit func() error) error {
	bound := make([]bool, len(ex.regs))
	pl := ex.planGroup(g, bound)
	for _, fi := range pl.pre {
		ok, valid := g.filters[fi].pred(ex)
		if !valid || !ok {
			return nil
		}
	}
	return ex.join(g, &pl, 0, emit)
}

// streamSelect enumerates the SELECT result rows in final result order
// — project → DISTINCT → ORDER keys → sort → OFFSET/LIMIT, mirroring
// the reference evaluator's pipeline — and calls yield for each row.
// Enumeration aborts as soon as yield returns false or the LIMIT is
// satisfied, so a consumer that stops pulling stops paying.
func (ex *execState) streamSelect(limit, offset int, yield func([]rdf.Term) bool) error {
	if !ex.p.projOK {
		// A projected variable the pattern never binds drops every row.
		return nil
	}
	if len(ex.p.orderBy) > 0 {
		return ex.streamOrdered(limit, offset, yield)
	}
	return ex.streamUnordered(limit, offset, yield)
}

// distinctFilter dedups rows on the projected register snapshot.
type distinctFilter struct {
	seen   map[string]struct{}
	keyBuf []byte
}

func newDistinctFilter(n int) *distinctFilter {
	return &distinctFilter{seen: make(map[string]struct{}), keyBuf: make([]byte, 4*n)}
}

// dup records the current projection and reports whether it was already
// emitted.
func (d *distinctFilter) dup(ex *execState) bool {
	for i, s := range ex.p.projSlot {
		binary.LittleEndian.PutUint32(d.keyBuf[4*i:], uint32(ex.regs[s]))
	}
	if _, dup := d.seen[string(d.keyBuf)]; dup {
		return true
	}
	d.seen[string(d.keyBuf)] = struct{}{}
	return false
}

// projectRow materializes the projected registers as a term row: a
// fresh slice per call, or the execution's reused borrow buffer.
func (ex *execState) projectRow() []rdf.Term {
	row := ex.borrowRow
	if row == nil {
		row = make([]rdf.Term, len(ex.p.projSlot))
	}
	for i, s := range ex.p.projSlot {
		row[i] = ex.k.Term(ex.regs[s])
	}
	return row
}

// streamUnordered streams rows straight off the join tree: DISTINCT
// filtering and OFFSET skipping happen inline and LIMIT is an early
// exit that aborts the join, so only the yielded rows are ever
// materialized.
func (ex *execState) streamUnordered(limit, offset int, yield func([]rdf.Term) bool) error {
	if limit == 0 {
		return nil
	}
	p := ex.p
	var distinct *distinctFilter
	if p.distinct {
		distinct = newDistinctFilter(len(p.projSlot))
	}
	skipped, emitted := 0, 0
	err := ex.runGroup(p.main, func() error {
		if distinct != nil && distinct.dup(ex) {
			return nil
		}
		if skipped < offset {
			skipped++
			return nil
		}
		if !yield(ex.projectRow()) {
			return errStop
		}
		emitted++
		if limit >= 0 && emitted >= limit {
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return err
	}
	return nil
}

// orderedRow is one candidate row of an ORDER BY execution: the
// projected register snapshot (terms materialize only if the row
// survives selection), its sort keys, and its enumeration index — the
// tiebreak that makes the selection order total and therefore equal to
// the reference evaluator's stable sort.
type orderedRow struct {
	ids  []kb.TermID
	keys []Value
	idx  int
}

// streamOrdered enumerates all matches (ORDER BY needs every row's
// keys, and RAND() keys must be drawn in enumeration order) and emits
// them in sorted order. When the key list is statically total-ordered
// (Prepared.orderTotal — the ORDER BY RAND() probe shape) and a LIMIT
// is set, only the top offset+limit candidates are kept in a bounded
// heap — O(k) live rows for a LIMIT-k probe regardless of the match
// count. Otherwise every candidate is kept and stable-sorted with the
// reference comparator over rows in enumeration order, which is
// byte-identical to the tree-walking evaluator by construction even
// when some key pairs are incomparable (a non-transitive comparator
// would make heap selection diverge from the stable sort, so the
// bounded path is gated on the total-order guarantee).
func (ex *execState) streamOrdered(limit, offset int, yield func([]rdf.Term) bool) error {
	p := ex.p
	target := -1 // unbounded: full stable sort
	if limit >= 0 {
		target = offset + limit
		if target == 0 {
			return nil
		}
	}
	bounded := target >= 0 && p.orderTotal
	var distinct *distinctFilter
	if p.distinct {
		distinct = newDistinctFilter(len(p.projSlot))
	}

	// keyLess is the reference comparator over the sort keys alone
	// (CompareKeys, shared with the federation merge); incomparable or
	// equal keys fall through to the next criterion.
	keyLess := func(a, b *orderedRow) bool {
		return CompareKeys(a.keys, b.keys, p.orderDesc) < 0
	}
	// before adds the enumeration-index tiebreak, making the order
	// total. It is only used on the bounded path, where orderTotal
	// guarantees keyLess is a strict weak ordering, so sorting by
	// `before` equals the stable sort by keyLess.
	before := func(a, b *orderedRow) bool {
		if c := CompareKeys(a.keys, b.keys, p.orderDesc); c != 0 {
			return c < 0
		}
		return a.idx < b.idx
	}

	keyScratch := make([]Value, len(p.orderKeys))
	idx := 0
	snapshot := func(dst *orderedRow) {
		if dst.ids == nil {
			dst.ids = make([]kb.TermID, len(p.projSlot))
			dst.keys = make([]Value, len(keyScratch))
		}
		for i, s := range p.projSlot {
			dst.ids[i] = ex.regs[s]
		}
		copy(dst.keys, keyScratch)
	}

	// Bounded: the shared top-k selector (topk.go, the same selection
	// the federation merge runs) keeps the best target rows; a newcomer
	// that does not beat the worst kept row is rejected without ever
	// being stored, and an admitted one overwrites the worst in place —
	// reusing its buffers, no allocation.
	var topk *TopK[orderedRow]
	var rows []orderedRow
	if bounded {
		topk = NewTopK[orderedRow](target, before)
	}
	// cur is the admission probe, hoisted out of the emit callback: its
	// address goes into the dynamic Admits call, so a per-row local
	// would escape and allocate on every enumerated row.
	cur := orderedRow{keys: keyScratch}
	err := ex.runGroup(p.main, func() error {
		if distinct != nil && distinct.dup(ex) {
			return nil
		}
		for i, kf := range p.orderKeys {
			keyScratch[i] = kf(ex)
		}
		cur.idx = idx
		idx++
		if topk != nil {
			if !topk.Admits(&cur) {
				return nil
			}
			if topk.Full() {
				worst := topk.Worst()
				worst.idx = cur.idx
				snapshot(worst)
				topk.FixWorst()
				return nil
			}
			kept := orderedRow{idx: cur.idx}
			snapshot(&kept)
			topk.Push(kept)
			return nil
		}
		kept := orderedRow{idx: cur.idx}
		snapshot(&kept)
		rows = append(rows, kept)
		return nil
	})
	if err != nil && err != errStop {
		return err
	}

	if topk != nil {
		rows = topk.Sorted()
	} else {
		// rows are in enumeration order; the stable sort with the pure
		// key comparator reproduces the reference engine exactly.
		sort.SliceStable(rows, func(i, j int) bool { return keyLess(&rows[i], &rows[j]) })
	}
	end := len(rows)
	if target >= 0 && target < end {
		end = target
	}
	for i := offset; i < end; i++ {
		row := ex.borrowRow
		if row == nil {
			row = make([]rdf.Term, len(rows[i].ids))
		}
		for j, id := range rows[i].ids {
			row[j] = ex.k.Term(id)
		}
		if !yield(row) {
			return nil
		}
	}
	return nil
}

// join recurses over the planned steps, applying each step's attached
// filters before descending.
func (ex *execState) join(g *cgroup, pl *plannedGroup, step int, emit func() error) error {
	if step == len(pl.order) {
		return emit()
	}
	tp := g.pats[pl.order[step]]
	return ex.match(tp, func() error {
		for _, fi := range pl.after[step] {
			ok, valid := g.filters[fi].pred(ex)
			if !valid || !ok {
				return nil
			}
		}
		return ex.join(g, pl, step+1, emit)
	})
}

// match enumerates KB facts matching tp under the current registers,
// binding free slots for the duration of each found() call. The case
// analysis and iteration orders mirror the reference evaluator, which
// is what keeps enumeration — and thus RAND() pairing — identical.
func (ex *execState) match(tp cpattern, found func() error) error {
	resolve := func(ct cterm) (kb.TermID, int32, bool) {
		if !ct.isVar {
			return ex.res[ct.res], -1, true // may be NoTerm: no matches
		}
		if v := ex.regs[ct.slot]; v != kb.NoTerm {
			return v, ct.slot, true
		}
		return kb.NoTerm, ct.slot, false
	}
	sID, sSlot, sBound := resolve(tp.s)
	pID, pSlot, pBound := resolve(tp.p)
	oID, oSlot, oBound := resolve(tp.o)

	// a concrete term unknown to the KB can never match
	if (sBound && sID == kb.NoTerm) || (pBound && pID == kb.NoTerm) || (oBound && oID == kb.NoTerm) {
		return nil
	}

	k := ex.k
	// try binds the still-free slots to the candidate fact, checking
	// duplicate-variable consistency (?x p ?x).
	try := func(s, p, o kb.TermID) error {
		var newSlots [3]int32
		n := 0
		bind := func(slot int32, id kb.TermID) bool {
			if prev := ex.regs[slot]; prev != kb.NoTerm {
				return prev == id
			}
			ex.regs[slot] = id
			newSlots[n] = slot
			n++
			return true
		}
		ok := true
		if !sBound {
			ok = bind(sSlot, s)
		}
		if ok && !pBound {
			ok = bind(pSlot, p)
		}
		if ok && !oBound {
			ok = bind(oSlot, o)
		}
		var err error
		if ok {
			err = found()
		}
		for i := 0; i < n; i++ {
			ex.regs[newSlots[i]] = kb.NoTerm
		}
		return err
	}

	switch {
	case sBound && pBound && oBound:
		if k.HasFact(sID, pID, oID) {
			return try(sID, pID, oID)
		}
		return nil
	case sBound && pBound:
		for _, o := range k.ObjectsOf(sID, pID) {
			if err := try(sID, pID, o); err != nil {
				return err
			}
		}
		return nil
	case pBound && oBound:
		for _, s := range k.SubjectsOf(pID, oID) {
			if err := try(s, pID, oID); err != nil {
				return err
			}
		}
		return nil
	case sBound && oBound:
		var outerErr error
		k.EachPredicateBetween(sID, oID, func(p kb.TermID) bool {
			if err := try(sID, p, oID); err != nil {
				outerErr = err
				return false
			}
			return true
		})
		return outerErr
	case sBound:
		for _, p := range k.PredicatesOfSubject(sID) {
			for _, o := range k.ObjectsOf(sID, p) {
				if err := try(sID, p, o); err != nil {
					return err
				}
			}
		}
		return nil
	case pBound:
		var outerErr error
		k.EachFactOf(pID, func(s, o kb.TermID) bool {
			if err := try(s, pID, o); err != nil {
				outerErr = err
				return false
			}
			return true
		})
		return outerErr
	case oBound:
		for _, p := range k.Relations() {
			for _, s := range k.SubjectsOf(p, oID) {
				if err := try(s, p, oID); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		for _, p := range k.Relations() {
			var outerErr error
			k.EachFactOf(p, func(s, o kb.TermID) bool {
				if err := try(s, p, o); err != nil {
					outerErr = err
					return false
				}
				return true
			})
			if outerErr != nil {
				return outerErr
			}
		}
		return nil
	}
}

// randSource derives the deterministic PRNG of one query execution from
// the engine seed and the canonical query text. It is the single
// definition of the RAND() stream: the execution path (rng) and the
// federation merge layer (RandFloats) both draw from it, which is what
// keeps sharded RAND() results byte-identical to unsharded ones.
func randSource(seed int64, text string) *rand.Rand {
	h := fnv.New64a()
	io.WriteString(h, text)
	return rand.New(rand.NewSource(seed*1_000_003 ^ int64(h.Sum64())))
}

// rng derives the execution's PRNG on first use, exactly like the
// reference engine: queries that never call RAND() pay neither the text
// rendering nor the PRNG construction.
func (ex *execState) rng() *rand.Rand {
	if ex.rnd == nil {
		ex.rnd = randSource(ex.p.eng.seed, ex.textFn())
	}
	return ex.rnd
}

// runExists probes a compiled EXISTS subgroup against the current
// registers — the nested compiled probe a lowered [NOT] EXISTS closure
// (cexpr.go) dispatches to. The subgroup's plan is computed on first
// evaluation and reused: the bound-register set at an attachment point
// is invariant across rows.
func (ex *execState) runExists(cg *cgroup) (bool, error) {
	if cg == nil {
		return false, fmt.Errorf("sparql: EXISTS group was not compiled")
	}
	if ex.planned == nil {
		ex.planned = make(map[*cgroup]*plannedGroup, 2)
	}
	pl := ex.planned[cg]
	if pl == nil {
		bound := make([]bool, len(ex.regs))
		for i, v := range ex.regs {
			bound[i] = v != kb.NoTerm
		}
		planned := ex.planGroup(cg, bound)
		pl = &planned
		ex.planned[cg] = pl
	}
	for _, fi := range pl.pre {
		ok, valid := cg.filters[fi].pred(ex)
		if !valid || !ok {
			return false, nil
		}
	}
	found := false
	err := ex.join(cg, pl, 0, func() error {
		found = true
		return errStop
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}
