package sparql

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// exec.go is the final stage of the parse → compile → exec pipeline:
// it runs a Prepared plan with bindings held in a flat []TermID
// register file — no per-row maps, no string keys — and materializes
// rdf.Term rows only for the surviving result set.

// errStop aborts row enumeration early once LIMIT is satisfied.
var errStop = fmt.Errorf("sparql: enumeration stopped")

// execState is the per-execution scratch of one Prepared run.
type execState struct {
	p      *Prepared
	k      *kb.KB
	regs   []kb.TermID // register file; NoTerm = unbound
	res    []kb.TermID // resolved parameter and constant ids
	rnd    *rand.Rand
	textFn func() string

	// planned caches per-execution join orders of EXISTS subgroups;
	// their bound-register set is fixed by the attachment point, so one
	// plan serves every row.
	planned map[*cgroup]*plannedGroup
}

// Exec runs the prepared query with positional arguments (one per
// declared template parameter). It is safe for concurrent use.
func (p *Prepared) Exec(args ...Arg) (*Result, error) {
	if err := p.checkArgs(args); err != nil {
		return nil, err
	}
	var textFn func() string
	if p.tmpl != nil {
		var text string
		textFn = func() string {
			if text == "" {
				text = p.tmpl.text(args)
			}
			return text
		}
	} else {
		textFn = func() string { return p.text }
	}
	return p.exec(args, textFn)
}

// exec runs the plan. textFn supplies the canonical query text for
// RAND() stream derivation and is only invoked when the query draws
// randomness.
func (p *Prepared) exec(args []Arg, textFn func() string) (*Result, error) {
	ex := &execState{
		p:      p,
		k:      p.eng.kb,
		regs:   make([]kb.TermID, p.nslots),
		res:    p.resolve(args),
		textFn: textFn,
	}
	for i := range ex.regs {
		ex.regs[i] = kb.NoTerm
	}
	limit, offset := p.limit, p.offset
	if p.limitParam >= 0 {
		limit = args[p.limitParam].n
	}
	if p.offsetParam >= 0 {
		offset = args[p.offsetParam].n
	}

	if p.form == AskForm {
		found := false
		err := ex.runGroup(p.main, func() error {
			found = true
			return errStop
		})
		if err != nil && err != errStop {
			return nil, err
		}
		return &Result{Ask: found}, nil
	}
	return ex.execSelect(limit, offset)
}

// runGroup plans the main group against the empty register file,
// applies its pre-step filters and enumerates matches.
func (ex *execState) runGroup(g *cgroup, emit func() error) error {
	bound := make([]bool, len(ex.regs))
	pl := ex.planGroup(g, bound)
	for _, fi := range pl.pre {
		ok, valid := g.filters[fi].expr.eval(ex).EBV()
		if !valid || !ok {
			return nil
		}
	}
	return ex.join(g, &pl, 0, emit)
}

// execSelect enumerates bindings and assembles the SELECT result,
// mirroring the reference evaluator's pipeline: project → DISTINCT →
// ORDER keys → sort → OFFSET/LIMIT.
func (ex *execState) execSelect(limit, offset int) (*Result, error) {
	p := ex.p
	res := &Result{Vars: p.vars}
	if !p.projOK {
		// A projected variable the pattern never binds drops every row.
		return res, nil
	}

	type sortableRow struct {
		row  []rdf.Term
		keys []Value
	}
	var rows []sortableRow
	var seen map[string]struct{}
	var keyBuf []byte
	if p.distinct {
		seen = make(map[string]struct{})
		keyBuf = make([]byte, 4*len(p.projSlot))
	}
	earlyStop := len(p.orderBy) == 0 && limit >= 0
	target := offset + limit

	err := ex.runGroup(p.main, func() error {
		if p.distinct {
			for i, s := range p.projSlot {
				binary.LittleEndian.PutUint32(keyBuf[4*i:], uint32(ex.regs[s]))
			}
			if _, dup := seen[string(keyBuf)]; dup {
				return nil
			}
			seen[string(keyBuf)] = struct{}{}
		}
		row := make([]rdf.Term, len(p.projSlot))
		for i, s := range p.projSlot {
			row[i] = ex.k.Term(ex.regs[s])
		}
		sr := sortableRow{row: row}
		if len(p.orderBy) > 0 {
			sr.keys = make([]Value, len(p.orderBy))
			for i, k := range p.orderBy {
				sr.keys[i] = k.Expr.eval(ex)
			}
		}
		rows = append(rows, sr)
		if earlyStop && len(rows) >= target {
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return nil, err
	}

	if len(p.orderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range p.orderBy {
				c, ok := valuesOrder(rows[i].keys[k], rows[j].keys[k])
				if !ok {
					continue
				}
				if c == 0 {
					continue
				}
				if p.orderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	start := offset
	if start > len(rows) {
		start = len(rows)
	}
	end := len(rows)
	if limit >= 0 && start+limit < end {
		end = start + limit
	}
	for _, sr := range rows[start:end] {
		res.Rows = append(res.Rows, sr.row)
	}
	return res, nil
}

// join recurses over the planned steps, applying each step's attached
// filters before descending.
func (ex *execState) join(g *cgroup, pl *plannedGroup, step int, emit func() error) error {
	if step == len(pl.order) {
		return emit()
	}
	tp := g.pats[pl.order[step]]
	return ex.match(tp, func() error {
		for _, fi := range pl.after[step] {
			ok, valid := g.filters[fi].expr.eval(ex).EBV()
			if !valid || !ok {
				return nil
			}
		}
		return ex.join(g, pl, step+1, emit)
	})
}

// match enumerates KB facts matching tp under the current registers,
// binding free slots for the duration of each found() call. The case
// analysis and iteration orders mirror the reference evaluator, which
// is what keeps enumeration — and thus RAND() pairing — identical.
func (ex *execState) match(tp cpattern, found func() error) error {
	resolve := func(ct cterm) (kb.TermID, int32, bool) {
		if !ct.isVar {
			return ex.res[ct.res], -1, true // may be NoTerm: no matches
		}
		if v := ex.regs[ct.slot]; v != kb.NoTerm {
			return v, ct.slot, true
		}
		return kb.NoTerm, ct.slot, false
	}
	sID, sSlot, sBound := resolve(tp.s)
	pID, pSlot, pBound := resolve(tp.p)
	oID, oSlot, oBound := resolve(tp.o)

	// a concrete term unknown to the KB can never match
	if (sBound && sID == kb.NoTerm) || (pBound && pID == kb.NoTerm) || (oBound && oID == kb.NoTerm) {
		return nil
	}

	k := ex.k
	// try binds the still-free slots to the candidate fact, checking
	// duplicate-variable consistency (?x p ?x).
	try := func(s, p, o kb.TermID) error {
		var newSlots [3]int32
		n := 0
		bind := func(slot int32, id kb.TermID) bool {
			if prev := ex.regs[slot]; prev != kb.NoTerm {
				return prev == id
			}
			ex.regs[slot] = id
			newSlots[n] = slot
			n++
			return true
		}
		ok := true
		if !sBound {
			ok = bind(sSlot, s)
		}
		if ok && !pBound {
			ok = bind(pSlot, p)
		}
		if ok && !oBound {
			ok = bind(oSlot, o)
		}
		var err error
		if ok {
			err = found()
		}
		for i := 0; i < n; i++ {
			ex.regs[newSlots[i]] = kb.NoTerm
		}
		return err
	}

	switch {
	case sBound && pBound && oBound:
		if k.HasFact(sID, pID, oID) {
			return try(sID, pID, oID)
		}
		return nil
	case sBound && pBound:
		for _, o := range k.ObjectsOf(sID, pID) {
			if err := try(sID, pID, o); err != nil {
				return err
			}
		}
		return nil
	case pBound && oBound:
		for _, s := range k.SubjectsOf(pID, oID) {
			if err := try(s, pID, oID); err != nil {
				return err
			}
		}
		return nil
	case sBound && oBound:
		var outerErr error
		k.EachPredicateBetween(sID, oID, func(p kb.TermID) bool {
			if err := try(sID, p, oID); err != nil {
				outerErr = err
				return false
			}
			return true
		})
		return outerErr
	case sBound:
		for _, p := range k.PredicatesOfSubject(sID) {
			for _, o := range k.ObjectsOf(sID, p) {
				if err := try(sID, p, o); err != nil {
					return err
				}
			}
		}
		return nil
	case pBound:
		var outerErr error
		k.EachFactOf(pID, func(s, o kb.TermID) bool {
			if err := try(s, pID, o); err != nil {
				outerErr = err
				return false
			}
			return true
		})
		return outerErr
	case oBound:
		for _, p := range k.Relations() {
			for _, s := range k.SubjectsOf(p, oID) {
				if err := try(s, p, oID); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		for _, p := range k.Relations() {
			var outerErr error
			k.EachFactOf(p, func(s, o kb.TermID) bool {
				if err := try(s, p, o); err != nil {
					outerErr = err
					return false
				}
				return true
			})
			if outerErr != nil {
				return outerErr
			}
		}
		return nil
	}
}

// --- expression environment (env) over the register file ---

func (ex *execState) lookupVar(name string) (rdf.Term, bool) {
	slot, ok := ex.p.slots[name]
	if !ok {
		return rdf.Term{}, false
	}
	id := ex.regs[slot]
	if id == kb.NoTerm {
		return rdf.Term{}, false
	}
	return ex.k.Term(id), true
}

// rng derives the execution's PRNG from the engine seed and the
// canonical query text on first use, exactly like the reference
// engine: queries that never call RAND() pay neither the text
// rendering nor the PRNG construction.
func (ex *execState) rng() *rand.Rand {
	if ex.rnd == nil {
		h := fnv.New64a()
		io.WriteString(h, ex.textFn())
		ex.rnd = rand.New(rand.NewSource(ex.p.eng.seed*1_000_003 ^ int64(h.Sum64())))
	}
	return ex.rnd
}

// evalExists runs a compiled EXISTS subgroup against the current
// registers. The subgroup's plan is computed on first evaluation and
// reused: the bound-register set at an attachment point is invariant
// across rows.
func (ex *execState) evalExists(g *GroupPattern) (bool, error) {
	cg, ok := ex.p.exists[g]
	if !ok || cg == nil {
		return false, fmt.Errorf("sparql: EXISTS group was not compiled")
	}
	if ex.planned == nil {
		ex.planned = make(map[*cgroup]*plannedGroup, 2)
	}
	pl := ex.planned[cg]
	if pl == nil {
		bound := make([]bool, len(ex.regs))
		for i, v := range ex.regs {
			bound[i] = v != kb.NoTerm
		}
		planned := ex.planGroup(cg, bound)
		pl = &planned
		ex.planned[cg] = pl
	}
	for _, fi := range pl.pre {
		ok, valid := cg.filters[fi].expr.eval(ex).EBV()
		if !valid || !ok {
			return false, nil
		}
	}
	found := false
	err := ex.join(cg, pl, 0, func() error {
		found = true
		return errStop
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

var _ env = (*execState)(nil)
