package sparql

// naive_test.go preserves the original tree-walking evaluator as a
// reference implementation. It is the seed engine this repository
// started from, kept verbatim (modulo renames) so the differential
// oracle (oracle_test.go) can prove the compiled slot-based engine
// produces byte-identical results — including ORDER BY RAND() streams.

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"strings"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// naiveEngine evaluates parsed queries against a KB by tree-walking
// with map-based bindings — the pre-compilation engine.
type naiveEngine struct {
	kb   *kb.KB
	seed int64
}

func newNaiveEngine(k *kb.KB, seed int64) *naiveEngine { return &naiveEngine{kb: k, seed: seed} }

// Eval evaluates a parsed query.
func (e *naiveEngine) Eval(q *Query) (*Result, error) {
	if q.Where == nil {
		return nil, fmt.Errorf("sparql: query has no WHERE pattern")
	}
	ev := &naiveEvaluator{kb: e.kb, seed: e.seed, query: q}

	switch q.Form {
	case AskForm:
		found := false
		err := ev.run(q.Where, nil, func(b naiveBinding) error {
			found = true
			return errStop
		})
		if err != nil && err != errStop {
			return nil, err
		}
		return &Result{Ask: found}, nil
	case SelectForm:
		return e.evalSelect(q, ev)
	default:
		return nil, fmt.Errorf("sparql: unsupported query form %d", q.Form)
	}
}

func (e *naiveEngine) EvalString(query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Eval(q)
}

func (e *naiveEngine) evalSelect(q *Query, ev *naiveEvaluator) (*Result, error) {
	vars := q.Vars
	res := &Result{Vars: vars}

	type sortableRow struct {
		row  []rdf.Term
		keys []Value
	}
	var rows []sortableRow
	seen := map[string]bool{}
	earlyStop := len(q.OrderBy) == 0 && q.Limit >= 0
	target := -1
	if earlyStop {
		target = q.Offset + q.Limit
	}

	err := ev.run(q.Where, nil, func(b naiveBinding) error {
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			if id, ok := b[v]; ok {
				row[i] = e.kb.Term(id)
			} else {
				return nil
			}
		}
		if q.Distinct {
			key := naiveRowKey(row)
			if seen[key] {
				return nil
			}
			seen[key] = true
		}
		sr := sortableRow{row: row}
		if len(q.OrderBy) > 0 {
			sr.keys = make([]Value, len(q.OrderBy))
			envb := &naiveBindingEnv{ev: ev, b: b}
			for i, k := range q.OrderBy {
				sr.keys[i] = k.Expr.eval(envb)
			}
		}
		rows = append(rows, sr)
		if earlyStop && len(rows) >= target {
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return nil, err
	}

	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range q.OrderBy {
				c, ok := valuesOrder(rows[i].keys[k], rows[j].keys[k])
				if !ok {
					continue
				}
				if c == 0 {
					continue
				}
				if q.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	start := q.Offset
	if start > len(rows) {
		start = len(rows)
	}
	end := len(rows)
	if q.Limit >= 0 && start+q.Limit < end {
		end = start + q.Limit
	}
	for _, sr := range rows[start:end] {
		res.Rows = append(res.Rows, sr.row)
	}
	return res, nil
}

func naiveRowKey(row []rdf.Term) string {
	var sb strings.Builder
	for _, t := range row {
		sb.WriteString(t.String())
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// naiveBinding maps variable names to interned term IDs.
type naiveBinding map[string]kb.TermID

type naiveEvaluator struct {
	kb    *kb.KB
	seed  int64
	query *Query
	rand  *rand.Rand
}

func (ev *naiveEvaluator) rng() *rand.Rand {
	if ev.rand == nil {
		h := fnv.New64a()
		io.WriteString(h, ev.query.String())
		ev.rand = rand.New(rand.NewSource(ev.seed*1_000_003 ^ int64(h.Sum64())))
	}
	return ev.rand
}

type naiveBindingEnv struct {
	ev *naiveEvaluator
	b  naiveBinding
}

func (be *naiveBindingEnv) lookupVar(name string) (rdf.Term, bool) {
	id, ok := be.b[name]
	if !ok {
		return rdf.Term{}, false
	}
	return be.ev.kb.Term(id), true
}

func (be *naiveBindingEnv) rng() *rand.Rand { return be.ev.rng() }

func (be *naiveBindingEnv) evalExists(g *GroupPattern) (bool, error) {
	found := false
	err := be.ev.run(g, be.b, func(naiveBinding) error {
		found = true
		return errStop
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

type naivePlanned struct {
	steps        []TriplePattern
	filtersAfter [][]Expr
	preFilters   []Expr
}

func (ev *naiveEvaluator) plan(g *GroupPattern, pre naiveBinding) naivePlanned {
	n := len(g.Triples)
	used := make([]bool, n)
	bound := map[string]bool{}
	for v := range pre {
		bound[v] = true
	}
	var order []TriplePattern

	boundCount := func(tp TriplePattern) int {
		c := 0
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if !pt.IsVar || bound[pt.Var] {
				c++
			}
		}
		return c
	}
	relSize := func(tp TriplePattern) int {
		if tp.P.IsVar {
			return 1 << 30
		}
		id := ev.kb.Lookup(tp.P.Term)
		if id == kb.NoTerm {
			return 0
		}
		return ev.kb.NumFactsOf(id)
	}

	for len(order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sc := boundCount(g.Triples[i])
			sz := relSize(g.Triples[i])
			if sc > bestScore || (sc == bestScore && sz < bestSize) {
				best, bestScore, bestSize = i, sc, sz
			}
		}
		used[best] = true
		tp := g.Triples[best]
		order = append(order, tp)
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if pt.IsVar {
				bound[pt.Var] = true
			}
		}
	}

	pl := naivePlanned{steps: order, filtersAfter: make([][]Expr, n)}
	cum := make([]map[string]bool, n+1)
	cum[0] = map[string]bool{}
	for v := range pre {
		cum[0][v] = true
	}
	for i, tp := range order {
		next := map[string]bool{}
		for v := range cum[i] {
			next[v] = true
		}
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if pt.IsVar {
				next[pt.Var] = true
			}
		}
		cum[i+1] = next
	}
	for _, f := range g.Filters {
		if _, isExists := f.(exExists); isExists {
			if n == 0 {
				pl.preFilters = append(pl.preFilters, f)
			} else {
				pl.filtersAfter[n-1] = append(pl.filtersAfter[n-1], f)
			}
			continue
		}
		deps := exprVars(f)
		placed := false
		for i := 0; i <= n && !placed; i++ {
			all := true
			for _, d := range deps {
				if !cum[i][d] {
					all = false
					break
				}
			}
			if all {
				if i == 0 {
					pl.preFilters = append(pl.preFilters, f)
				} else {
					pl.filtersAfter[i-1] = append(pl.filtersAfter[i-1], f)
				}
				placed = true
			}
		}
		if !placed {
			if n == 0 {
				pl.preFilters = append(pl.preFilters, f)
			} else {
				pl.filtersAfter[n-1] = append(pl.filtersAfter[n-1], f)
			}
		}
	}
	return pl
}

func (ev *naiveEvaluator) run(g *GroupPattern, pre naiveBinding, emit func(naiveBinding) error) error {
	pl := ev.plan(g, pre)
	b := make(naiveBinding, len(pre)+4)
	for k, v := range pre {
		b[k] = v
	}
	envb := &naiveBindingEnv{ev: ev, b: b}
	for _, f := range pl.preFilters {
		ok, valid := f.eval(envb).EBV()
		if !valid || !ok {
			return nil
		}
	}
	return ev.join(pl, 0, b, envb, emit)
}

func (ev *naiveEvaluator) join(pl naivePlanned, step int, b naiveBinding, envb *naiveBindingEnv, emit func(naiveBinding) error) error {
	if step == len(pl.steps) {
		return emit(b)
	}
	tp := pl.steps[step]
	return ev.matchPattern(tp, b, func(newVars []string) error {
		for _, f := range pl.filtersAfter[step] {
			ok, valid := f.eval(envb).EBV()
			if !valid || !ok {
				return nil
			}
		}
		return ev.join(pl, step+1, b, envb, emit)
	}, func(newVars []string) {
		for _, v := range newVars {
			delete(b, v)
		}
	})
}

func (ev *naiveEvaluator) matchPattern(tp TriplePattern, b naiveBinding,
	found func(newVars []string) error, undo func(newVars []string)) error {

	resolve := func(pt PatternTerm) (kb.TermID, string, bool) {
		if !pt.IsVar {
			id := ev.kb.Lookup(pt.Term)
			return id, "", true
		}
		if id, ok := b[pt.Var]; ok {
			return id, "", true
		}
		return kb.NoTerm, pt.Var, false
	}

	sID, sVar, sBound := resolve(tp.S)
	pID, pVar, pBound := resolve(tp.P)
	oID, oVar, oBound := resolve(tp.O)

	if (sBound && sID == kb.NoTerm) || (pBound && pID == kb.NoTerm) || (oBound && oID == kb.NoTerm) {
		return nil
	}

	try := func(s, p, o kb.TermID) error {
		var newVars []string
		bind := func(name string, id kb.TermID) bool {
			if name == "" {
				return true
			}
			if prev, ok := b[name]; ok {
				return prev == id
			}
			b[name] = id
			newVars = append(newVars, name)
			return true
		}
		ok := true
		if !sBound {
			ok = bind(sVar, s)
		}
		if ok && !pBound {
			ok = bind(pVar, p)
		}
		if ok && !oBound {
			ok = bind(oVar, o)
		}
		if !ok {
			for _, v := range newVars {
				delete(b, v)
			}
			return nil
		}
		err := found(newVars)
		undo(newVars)
		return err
	}

	switch {
	case sBound && pBound && oBound:
		if ev.kb.HasFact(sID, pID, oID) {
			return try(sID, pID, oID)
		}
		return nil
	case sBound && pBound:
		for _, o := range ev.kb.ObjectsOf(sID, pID) {
			if err := try(sID, pID, o); err != nil {
				return err
			}
		}
		return nil
	case pBound && oBound:
		for _, s := range ev.kb.SubjectsOf(pID, oID) {
			if err := try(s, pID, oID); err != nil {
				return err
			}
		}
		return nil
	case sBound && oBound:
		for _, p := range ev.kb.PredicatesBetween(sID, oID) {
			if err := try(sID, p, oID); err != nil {
				return err
			}
		}
		return nil
	case sBound:
		for _, p := range ev.kb.PredicatesOfSubject(sID) {
			for _, o := range ev.kb.ObjectsOf(sID, p) {
				if err := try(sID, p, o); err != nil {
					return err
				}
			}
		}
		return nil
	case pBound:
		var outerErr error
		ev.kb.EachFactOf(pID, func(s, o kb.TermID) bool {
			if err := try(s, pID, o); err != nil {
				outerErr = err
				return false
			}
			return true
		})
		return outerErr
	case oBound:
		for _, p := range ev.kb.Relations() {
			for _, s := range ev.kb.SubjectsOf(p, oID) {
				if err := try(s, p, oID); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		for _, p := range ev.kb.Relations() {
			var outerErr error
			ev.kb.EachFactOf(p, func(s, o kb.TermID) bool {
				if err := try(s, p, o); err != nil {
					outerErr = err
					return false
				}
				return true
			})
			if outerErr != nil {
				return outerErr
			}
		}
		return nil
	}
}
