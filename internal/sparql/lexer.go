package sparql

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

type tokKind uint8

const (
	tokEOF    tokKind = iota
	tokIdent          // bare identifier / keyword (SELECT, FILTER, a, ...)
	tokVar            // ?name
	tokIRI            // <...>
	tokPName          // prefix:local
	tokString         // "..." with optional @lang / ^^<dt> handled by parser
	tokNumber         // 123, 4.5, -1
	tokPunct          // one of { } ( ) . , * = != < > <= >= && || ! + - / ^^ @
)

type token struct {
	kind tokKind
	text string  // raw text (identifier, variable name, punct, IRI value, pname, string value)
	num  float64 // for tokNumber
	pos  int     // byte offset, for errors
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: position %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.in[l.pos]
	switch {
	case c == '?' || c == '$':
		l.pos++
		name := l.takeWhile(isNameChar)
		if name == "" {
			return token{}, l.errf("empty variable name")
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	case c == '<':
		// '<' begins an IRI only when a '>' follows before any
		// whitespace; otherwise it is the less-than operator (possibly
		// '<=' handled below).
		if end := iriEnd(l.in[l.pos:]); end > 0 {
			iri := l.in[l.pos+1 : l.pos+end]
			l.pos += end + 1
			return token{kind: tokIRI, text: iri, pos: start}, nil
		}
	case c == '"':
		s, err := l.lexString()
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, pos: start}, nil
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.in) && isDigit(l.in[l.pos+1])):
		return l.lexNumber(start)
	case isNameStart(c):
		word := l.takeWhile(isNameChar)
		// prefixed name?
		if l.pos < len(l.in) && l.in[l.pos] == ':' {
			l.pos++
			local := l.takeWhile(isNameChar)
			return token{kind: tokPName, text: word + ":" + local, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case c == ':':
		// default-prefix name ":local"
		l.pos++
		local := l.takeWhile(isNameChar)
		return token{kind: tokPName, text: ":" + local, pos: start}, nil
	}
	// punctuation, including two-char operators
	two := ""
	if l.pos+2 <= len(l.in) {
		two = l.in[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<=", ">=", "&&", "||", "^^":
		l.pos += 2
		return token{kind: tokPunct, text: two, pos: start}, nil
	}
	switch c {
	case '{', '}', '(', ')', '.', ',', ';', '*', '=', '<', '>', '!', '+', '-', '/', '@':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.in[l.pos:])
	return token{}, l.errf("unexpected character %q", r)
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			nl := strings.IndexByte(l.in[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.in)
				return
			}
			l.pos += nl + 1
			continue
		}
		return
	}
}

func (l *lexer) takeWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.in) && pred(l.in[l.pos]) {
		l.pos++
	}
	return l.in[start:l.pos]
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.in) {
			return "", l.errf("unterminated string literal")
		}
		c := l.in[l.pos]
		if c == '"' {
			l.pos++
			return sb.String(), nil
		}
		if c == '\\' {
			if l.pos+1 >= len(l.in) {
				return "", l.errf("dangling escape")
			}
			esc := l.in[l.pos+1]
			l.pos += 2
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return "", l.errf("unknown escape \\%c", esc)
			}
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
}

func (l *lexer) lexNumber(start int) (token, error) {
	numStr := ""
	if l.in[l.pos] == '-' {
		numStr = "-"
		l.pos++
	}
	numStr += l.takeWhile(isDigit)
	if l.pos < len(l.in) && l.in[l.pos] == '.' && l.pos+1 < len(l.in) && isDigit(l.in[l.pos+1]) {
		l.pos++
		numStr += "." + l.takeWhile(isDigit)
	}
	var f float64
	if _, err := fmt.Sscanf(numStr, "%g", &f); err != nil {
		return token{}, l.errf("bad number %q", numStr)
	}
	return token{kind: tokNumber, text: numStr, num: f, pos: start}, nil
}

// iriEnd returns the index of the closing '>' if s (starting at '<')
// opens an IRI — i.e. '>' appears before any whitespace — or 0 if not.
func iriEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '>':
			return i
		case ' ', '\t', '\n', '\r':
			return 0
		}
	}
	return 0
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || isDigit(c) || c == '-'
}

// keywordEq reports case-insensitive equality against an ASCII keyword.
func keywordEq(s, kw string) bool {
	if len(s) != len(kw) {
		return false
	}
	return strings.EqualFold(s, kw)
}
