package sparql

import (
	"fmt"
	"iter"

	"sofya/internal/rdf"
)

// iter.go exposes the streaming core (exec.go) as a pull-based row
// iterator: the join tree produces rows on demand, so a caller that
// stops pulling — an early LIMIT, a probe that found what it needed —
// aborts the enumeration instead of paying for the rows it discards.
// Draining a RowIter yields exactly the rows Eval/Exec would return,
// byte for byte, RAND() streams included: both run the same stream.

// RowIter iterates over the rows of one SELECT execution. It is not
// safe for concurrent use, but independent iterators obtained from one
// Engine or Prepared are. Callers must Close the iterator when done
// (draining to exhaustion closes it implicitly).
type RowIter struct {
	vars []string
	next func() ([]rdf.Term, bool)
	stop func()
	errp *error
	row  []rdf.Term
	err  error
	done bool
}

// newRowIter wraps the push-form streaming core into a pull iterator.
// run must call yield for every result row, in order, and return only
// real errors (a false yield is a clean stop).
func newRowIter(vars []string, run func(yield func([]rdf.Term) bool) error) *RowIter {
	it := &RowIter{vars: vars}
	runErr := new(error)
	it.errp = runErr
	it.next, it.stop = iter.Pull(func(yield func([]rdf.Term) bool) {
		*runErr = run(yield)
	})
	return it
}

// Vars returns the projected variable names, in projection order.
func (it *RowIter) Vars() []string { return it.vars }

// Next advances to the next row. It returns false once the result is
// exhausted, Close was called, or enumeration failed (see Err).
func (it *RowIter) Next() bool {
	if it.done {
		return false
	}
	row, ok := it.next()
	if !ok {
		it.done = true
		it.row = nil
		it.err = *it.errp
		return false
	}
	it.row = row
	return true
}

// Row returns the current row. For iterators from Iter/Stream the slice
// is freshly allocated per row and remains valid after further Next
// calls; for IterBorrowed iterators it is a reused buffer, valid only
// until the next Next.
func (it *RowIter) Row() []rdf.Term { return it.row }

// Err returns the error that ended iteration, if any. It is nil while
// rows remain and after a clean exhaustion or Close.
func (it *RowIter) Err() error { return it.err }

// Close releases the iterator's resources and aborts the underlying
// enumeration. It is idempotent and implied by exhausting the rows.
func (it *RowIter) Close() {
	if it.done {
		return
	}
	it.done = true
	it.row = nil
	it.stop()
}

// Iter executes the prepared query as a stream: rows are produced on
// demand and the join aborts as soon as the caller closes the iterator.
// The query must be a SELECT.
func (p *Prepared) Iter(args ...Arg) (*RowIter, error) {
	if p.form != SelectForm {
		return nil, fmt.Errorf("sparql: Iter needs a SELECT query")
	}
	if err := p.checkArgs(args); err != nil {
		return nil, err
	}
	ex, limit, offset := p.start(args, p.textFnFor(args))
	return newRowIter(p.vars, func(yield func([]rdf.Term) bool) error {
		return ex.streamSelect(limit, offset, yield)
	}), nil
}

// borrowBatch is the number of rows a borrowed iterator ferries per
// coroutine switch. The iter.Pull handoff costs on the order of 100ns
// per switch — per-row, that dwarfs the work of producing a row from a
// frozen KB — so borrowed iterators rotate through a ring of batch
// projection buffers and cross the coroutine boundary once per batch.
const borrowBatch = 64

// IterBorrowed is Iter with borrowed rows: Row() returns a buffer that
// is reused after at most borrowBatch further Next calls (treat it as
// valid only until the next Next) — the iterator writes rows into a
// fixed ring of projection buffers instead of allocating per row.
// Consumers that inspect rows at a merge point and copy only the
// winners (the federation's ordered merge) avoid O(result) row
// materialization; everything else about the stream — order, RAND()
// pairing, errors — is byte-identical to Iter.
func (p *Prepared) IterBorrowed(args ...Arg) (*RowIter, error) {
	if p.form != SelectForm {
		return nil, fmt.Errorf("sparql: IterBorrowed needs a SELECT query")
	}
	if err := p.checkArgs(args); err != nil {
		return nil, err
	}
	ex, limit, offset := p.start(args, p.textFnFor(args))
	nv := len(p.vars)
	slots := make([][]rdf.Term, borrowBatch)
	backing := make([]rdf.Term, borrowBatch*nv)
	for i := range slots {
		slots[i] = backing[i*nv : (i+1)*nv : (i+1)*nv]
	}
	return newBatchRowIter(p.vars, func(yield func([][]rdf.Term) bool) error {
		buf := make([][]rdf.Term, 0, borrowBatch)
		si := 0
		ex.borrowRow = slots[0]
		err := ex.streamSelect(limit, offset, func(row []rdf.Term) bool {
			buf = append(buf, row)
			si++
			if si == borrowBatch {
				if !yield(buf) {
					return false
				}
				buf, si = buf[:0], 0
			}
			ex.borrowRow = slots[si]
			return true
		})
		if err == nil && len(buf) > 0 {
			yield(buf)
		}
		return err
	}), nil
}

// newBatchRowIter wraps a batch-yielding streaming core into the same
// pull iterator, amortizing the coroutine switch over whole batches.
// run must yield non-empty batches of rows, in order; a yielded batch
// stays readable until run resumes (the consumer pulls again).
func newBatchRowIter(vars []string, run func(yield func([][]rdf.Term) bool) error) *RowIter {
	it := &RowIter{vars: vars}
	runErr := new(error)
	it.errp = runErr
	pull, stop := iter.Pull(func(yield func([][]rdf.Term) bool) {
		*runErr = run(yield)
	})
	var cur [][]rdf.Term
	bi := 0
	it.next = func() ([]rdf.Term, bool) {
		for bi >= len(cur) {
			b, ok := pull()
			if !ok {
				return nil, false
			}
			cur, bi = b, 0
		}
		row := cur[bi]
		bi++
		return row, true
	}
	it.stop = stop
	return it
}

// Stream evaluates a parsed SELECT query as a row iterator, through the
// same shape-keyed plan cache Eval uses.
func (e *Engine) Stream(q *Query) (*RowIter, error) {
	if q.Form != SelectForm {
		return nil, fmt.Errorf("sparql: Stream needs a SELECT query")
	}
	p, err := e.planFor(q)
	if err != nil {
		return nil, err
	}
	args := liftArgs(q, make([]Arg, 0, len(p.params)))
	var text string
	textFn := func() string {
		if text == "" {
			text = q.String()
		}
		return text
	}
	ex, limit, offset := p.start(args, textFn)
	return newRowIter(p.vars, func(yield func([]rdf.Term) bool) error {
		return ex.streamSelect(limit, offset, yield)
	}), nil
}

// StreamString parses and streams a SELECT query.
func (e *Engine) StreamString(query string) (*RowIter, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Stream(q)
}
