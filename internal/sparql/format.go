package sparql

import (
	"fmt"
	"strings"
)

// String serializes the query back to SPARQL concrete syntax. The
// output parses back to an equivalent query; formatting is canonical
// (one triple pattern per line, explicit WHERE).
func (q *Query) String() string {
	var sb strings.Builder
	switch q.Form {
	case AskForm:
		sb.WriteString("ASK ")
	default:
		sb.WriteString("SELECT ")
		if q.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if len(q.Vars) == 0 {
			sb.WriteString("* ")
		} else {
			for _, v := range q.Vars {
				sb.WriteString("?" + v + " ")
			}
		}
		sb.WriteString("WHERE ")
	}
	writeGroup(&sb, q.Where, "")
	for i, k := range q.OrderBy {
		if i == 0 {
			sb.WriteString("\nORDER BY")
		}
		if k.Desc {
			sb.WriteString(" DESC(" + k.Expr.String() + ")")
		} else {
			sb.WriteString(" ASC(" + k.Expr.String() + ")")
		}
	}
	if q.LimitVar != "" {
		sb.WriteString("\nLIMIT $" + q.LimitVar)
	} else if q.Limit >= 0 {
		fmt.Fprintf(&sb, "\nLIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, "\nOFFSET %d", q.Offset)
	}
	return sb.String()
}

func writeGroup(sb *strings.Builder, g *GroupPattern, indent string) {
	if g == nil {
		sb.WriteString("{ }")
		return
	}
	sb.WriteString("{\n")
	for _, tp := range g.Triples {
		sb.WriteString(indent + "  " + tp.String() + " .\n")
	}
	for _, f := range g.Filters {
		if ex, ok := f.(exExists); ok {
			if ex.negate {
				sb.WriteString(indent + "  FILTER NOT EXISTS ")
			} else {
				sb.WriteString(indent + "  FILTER EXISTS ")
			}
			writeGroup(sb, ex.group, indent+"  ")
			sb.WriteString("\n")
			continue
		}
		sb.WriteString(indent + "  FILTER (" + f.String() + ")\n")
	}
	sb.WriteString(indent + "}")
}

// MapPatterns returns a deep copy of the query with every triple
// pattern rewritten through fn. It is the hook the query rewriter uses
// to substitute aligned relations and translated entities.
func (q *Query) MapPatterns(fn func(TriplePattern) TriplePattern) *Query {
	out := *q
	out.Vars = append([]string(nil), q.Vars...)
	out.OrderBy = append([]OrderKey(nil), q.OrderBy...)
	out.Where = mapGroup(q.Where, fn)
	return &out
}

func mapGroup(g *GroupPattern, fn func(TriplePattern) TriplePattern) *GroupPattern {
	if g == nil {
		return nil
	}
	out := &GroupPattern{}
	for _, tp := range g.Triples {
		out.Triples = append(out.Triples, fn(tp))
	}
	for _, f := range g.Filters {
		out.Filters = append(out.Filters, mapExpr(f, fn))
	}
	return out
}

// mapExpr rebuilds an expression with every [NOT] EXISTS subgroup —
// top-level or nested inside boolean operators — rewritten through fn.
// Subtrees without EXISTS are shared, not copied.
func mapExpr(e Expr, fn func(TriplePattern) TriplePattern) Expr {
	switch x := e.(type) {
	case exExists:
		return exExists{negate: x.negate, group: mapGroup(x.group, fn)}
	case exNot:
		return exNot{arg: mapExpr(x.arg, fn)}
	case exAnd:
		return exAnd{l: mapExpr(x.l, fn), r: mapExpr(x.r, fn)}
	case exOr:
		return exOr{l: mapExpr(x.l, fn), r: mapExpr(x.r, fn)}
	case exCompare:
		return exCompare{op: x.op, l: mapExpr(x.l, fn), r: mapExpr(x.r, fn)}
	case exCall:
		args := make([]Expr, len(x.args))
		for i, a := range x.args {
			args[i] = mapExpr(a, fn)
		}
		return exCall{name: x.name, args: args}
	default:
		return e
	}
}
