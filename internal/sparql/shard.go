package sparql

import (
	"math/rand"

	"sofya/internal/rdf"
)

// shard.go exports the query-structure analysis and the comparability /
// randomness hooks the federation layer (internal/shard) needs to merge
// per-shard result streams back into the whole-KB result byte for byte.
// Everything here is derived from the same definitions the engine
// executes — valuesOrder for ORDER BY comparisons, the seed ⊕ canonical
// text PRNG for RAND() — so the merge point reproduces engine semantics
// exactly instead of approximating them.

// ShardOrderKey describes one ORDER BY key to the merge layer.
type ShardOrderKey struct {
	// Rand marks a bare RAND() key: its value is not a function of the
	// row but the next draw of the query's PRNG stream, taken in
	// enumeration order — the merge layer re-draws it from RandFloats.
	Rand bool
	// Desc is the key's sort direction.
	Desc bool
	// SubjectKey marks a key that is the bare common subject variable.
	// Its value is monotonically non-decreasing along the merged
	// enumeration (shard streams interleave on ascending subject term),
	// which is what lets the merge close losing shard streams early:
	// with an ascending first SubjectKey and a full top-k heap, a shard
	// whose head subject already orders strictly after the worst kept
	// row can never contribute again — every later row of that shard
	// has a ≥ subject and a larger enumeration index. RAND keys void
	// this (every enumerated row must consume a draw).
	SubjectKey bool
	// Eval computes the key's Value from a projected row; nil when Rand
	// is set or the key cannot be computed from the projection alone.
	Eval func(row []rdf.Term) Value
}

// ShardShape is the static decomposability analysis of one query over a
// subject-hash-partitioned KB federation (kb.Partition): whether the
// whole-KB result is the union of per-shard results, how shard streams
// interleave back into whole-KB enumeration order, and how ORDER BY
// keys can be reproduced at the merge point.
type ShardShape struct {
	// Decomposable reports that every triple pattern — in the main
	// group and in every [NOT] EXISTS subgroup — is anchored on one
	// common subject: the same variable, the same template parameter,
	// or the same concrete term. Then each result row is derived
	// entirely from one subject's facts, which live in one shard, so
	// the union of shard results is exactly the whole-KB result.
	Decomposable bool
	// SubjectVar is the common subject variable, "" otherwise.
	SubjectVar string
	// SubjectParam is the common subject template parameter (the query
	// routes to one shard chosen per execution), "" otherwise.
	SubjectParam string
	// Subject is the common concrete subject term (the query routes to
	// one statically-known shard); zero otherwise.
	Subject rdf.Term
	// SubjectCol is the projected column of SubjectVar, or -1.
	SubjectCol int
	// MergeOrdered reports that shard streams of the ORDER-stripped
	// query interleave back into whole-KB enumeration order by merging
	// on ascending SubjectCol term: every main pattern has the common
	// subject variable, a concrete (or parameter) predicate and a
	// variable object, so any join order the planner picks drives the
	// enumeration through per-predicate fact postings that group rows
	// by subject in term order — and subjects never span shards.
	MergeOrdered bool
	// OrderTotal mirrors the engine's static total-order guarantee: all
	// ORDER BY keys are always-numeric, so bounded top-k selection with
	// an enumeration tiebreak equals the reference stable sort.
	OrderTotal bool
	// RandFilters reports RAND() drawn outside ORDER BY keys (inside
	// FILTER expressions); those draws interleave with rows the merge
	// layer never sees, so the stream cannot be reproduced at the merge.
	RandFilters bool
	// Keys describes each ORDER BY key; KeysMergeable reports that all
	// of them are reproducible at the merge point (bare RAND draws or
	// row-computable expressions).
	Keys          []ShardOrderKey
	KeysMergeable bool
}

// AnalyzeShard classifies q for subject-partitioned federation. isParam
// reports whether a variable name is a template parameter (bound to a
// concrete term per execution); nil means no parameters.
func AnalyzeShard(q *Query, isParam func(name string) bool) ShardShape {
	if isParam == nil {
		isParam = func(string) bool { return false }
	}
	sh := ShardShape{SubjectCol: -1}
	if q.Where == nil || len(q.Where.Triples) == 0 {
		// Rows of a patternless (or filter-only) query are not derived
		// from any subject's facts; fanning such a query out would
		// replicate its rows once per shard.
		return sh
	}

	// Collect the subject of every pattern, main and EXISTS alike.
	var vars, params []string
	var terms []rdf.Term
	seenVar := map[string]bool{}
	seenTerm := map[rdf.Term]bool{}
	var walkGroup func(g *GroupPattern)
	walkGroup = func(g *GroupPattern) {
		for _, tp := range g.Triples {
			switch {
			case tp.S.IsVar && isParam(tp.S.Var):
				if !seenVar[tp.S.Var] {
					seenVar[tp.S.Var] = true
					params = append(params, tp.S.Var)
				}
			case tp.S.IsVar:
				if !seenVar[tp.S.Var] {
					seenVar[tp.S.Var] = true
					vars = append(vars, tp.S.Var)
				}
			default:
				if !seenTerm[tp.S.Term] {
					seenTerm[tp.S.Term] = true
					terms = append(terms, tp.S.Term)
				}
			}
		}
		for _, f := range g.Filters {
			eachExists(f, func(ex exExists) { walkGroup(ex.group) })
		}
	}
	walkGroup(q.Where)

	switch {
	case len(vars) == 1 && len(params) == 0 && len(terms) == 0:
		sh.Decomposable, sh.SubjectVar = true, vars[0]
	case len(vars) == 0 && len(params) == 1 && len(terms) == 0:
		sh.Decomposable, sh.SubjectParam = true, params[0]
	case len(vars) == 0 && len(params) == 0 && len(terms) == 1:
		sh.Decomposable, sh.Subject = true, terms[0]
	default:
		return sh
	}

	if sh.SubjectVar != "" {
		for i, v := range q.Vars {
			if v == sh.SubjectVar {
				sh.SubjectCol = i
				break
			}
		}
		sh.MergeOrdered = sh.SubjectCol >= 0
		for _, tp := range q.Where.Triples {
			// Predicates must resolve to concrete terms (so the driving
			// pattern enumerates one predicate's postings, grouped by
			// subject term) and objects must stay free (a bound object
			// would promote its pattern to driver through object-keyed
			// postings, whose insertion order does not interleave by
			// subject across shards).
			if tp.P.IsVar && !isParam(tp.P.Var) {
				sh.MergeOrdered = false
			}
			if !tp.O.IsVar || isParam(tp.O.Var) {
				sh.MergeOrdered = false
			}
		}
	}

	// RAND usage outside ORDER BY keys.
	var walkFilters func(g *GroupPattern)
	walkFilters = func(g *GroupPattern) {
		for _, f := range g.Filters {
			if exprUsesRand(f) {
				sh.RandFilters = true
			}
			eachExists(f, func(ex exExists) { walkFilters(ex.group) })
		}
	}
	walkFilters(q.Where)

	// ORDER BY keys. A key list is statically total-ordered when every
	// key is always-numeric (the engine's own gate) or the bare subject
	// variable: subject values are always terms of the same comparison
	// class (never numeric- or string-coercible literals), so
	// valuesOrder falls through to the total term order. Bounded top-k
	// selection with an enumeration-index tiebreak then equals the
	// reference stable sort.
	sh.Keys = make([]ShardOrderKey, len(q.OrderBy))
	sh.KeysMergeable = true
	sh.OrderTotal = len(q.OrderBy) > 0
	for i, k := range q.OrderBy {
		if v, ok := k.Expr.(exVar); ok && sh.SubjectVar != "" && v.name == sh.SubjectVar {
			sh.Keys[i].SubjectKey = true
		}
		if !exprAlwaysNumeric(k.Expr) && !sh.Keys[i].SubjectKey {
			sh.OrderTotal = false
		}
		sh.Keys[i].Desc = k.Desc
		if call, ok := k.Expr.(exCall); ok && call.name == "RAND" && len(call.args) == 0 {
			sh.Keys[i].Rand = true
			continue
		}
		if exprUsesRand(k.Expr) {
			// RAND nested inside a larger key expression: the draw is
			// reproducible but its combination is row-dependent in a way
			// the engine evaluates with interleaved draws; unsupported.
			sh.KeysMergeable = false
			continue
		}
		ev, ok := compileRowKey(k.Expr, q.Vars)
		if !ok {
			sh.KeysMergeable = false
			continue
		}
		sh.Keys[i].Eval = ev
	}
	return sh
}

// rowEnv evaluates an expression over one projected row.
type rowEnv struct {
	cols map[string]int
	row  []rdf.Term
}

func (e *rowEnv) lookupVar(name string) (rdf.Term, bool) {
	i, ok := e.cols[name]
	if !ok {
		return rdf.Term{}, false
	}
	return e.row[i], true
}

func (e *rowEnv) rng() *rand.Rand                        { return nil } // unreachable: RAND keys never compile here
func (e *rowEnv) evalExists(*GroupPattern) (bool, error) { return false, nil }

// compileRowKey builds an evaluator for an ORDER BY key over the
// projected row, when the key reads only projected variables and needs
// neither the KB (EXISTS) nor the PRNG (RAND).
func compileRowKey(e Expr, vars []string) (func(row []rdf.Term) Value, bool) {
	hasExists := false
	eachExists(e, func(exExists) { hasExists = true })
	if hasExists || exprUsesRand(e) {
		return nil, false
	}
	cols := make(map[string]int, len(vars))
	for i, v := range vars {
		cols[v] = i
	}
	for _, name := range exprVars(e) {
		if _, ok := cols[name]; !ok {
			return nil, false
		}
	}
	return func(row []rdf.Term) Value {
		return e.eval(&rowEnv{cols: cols, row: row})
	}, true
}

// OrderValues exposes the engine's ORDER BY comparison: the ordering of
// two key Values, and whether they are comparable at all. The merge
// layer must compare shard keys with exactly this function to stay
// byte-identical with the in-engine sort.
func OrderValues(a, b Value) (int, bool) { return valuesOrder(a, b) }

// CompareKeys is the engine's ORDER BY key-list comparison — the single
// definition the executor (streamOrdered) and the federation merge both
// sort with. It returns a negative value when key list a orders before
// b under the per-key Desc flags, positive for after, and 0 when every
// key pair is equal or incomparable (the caller's tiebreak decides).
func CompareKeys(a, b []Value, desc []bool) int {
	for k := range a {
		c, ok := valuesOrder(a[k], b[k])
		if !ok || c == 0 {
			continue
		}
		if desc[k] {
			return -c
		}
		return c
	}
	return 0
}

// NumValue wraps a float as the numeric Value RAND() keys produce.
func NumValue(f float64) Value { return numValue(f) }

// BoolValue wraps a boolean as an ORDER BY key Value.
func BoolValue(b bool) Value { return boolValue(b) }

// StrValue wraps a string as an ORDER BY key Value.
func StrValue(s string) Value { return strValue(s) }

// TermValue wraps an RDF term as an ORDER BY key Value.
func TermValue(t rdf.Term) Value { return termValue(t) }

// ErrValue is the evaluation-error Value; ORDER BY treats it as
// incomparable, so a shipped error key sorts exactly like a merge-point
// evaluation error would.
func ErrValue() Value { return errValue() }

// AsBool unpacks a boolean Value.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == vBool }

// AsNum unpacks a numeric Value.
func (v Value) AsNum() (float64, bool) { return v.n, v.kind == vNum }

// AsStr unpacks a string Value.
func (v Value) AsStr() (string, bool) { return v.s, v.kind == vStr }

// AsTerm unpacks an RDF-term Value.
func (v Value) AsTerm() (rdf.Term, bool) { return v.t, v.kind == vTerm }

// RandFloats returns the RAND() draw stream an engine with the given
// seed derives for the canonical text of a query — the same stream, in
// the same order, that the engine pairs with rows as it enumerates
// them. The merge layer uses it to re-assign RAND keys to merged rows
// in reconstructed enumeration order.
func RandFloats(seed int64, canonicalText string) func() float64 {
	return randSource(seed, canonicalText).Float64
}
