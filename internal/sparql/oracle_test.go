package sparql

// oracle_test.go is the differential oracle: it runs the preserved
// tree-walking reference evaluator (naive_test.go) and the compiled
// slot-based engine over randomized synthetic worlds and asserts
// identical results — byte-identical rows for every ordered query,
// ORDER BY RAND() streams included, and identical row multisets for
// unordered queries (whose row order SPARQL leaves undefined and the
// cost-based join order may legitimately permute).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/synth"
)

// oracleQueries builds a corpus of query texts over a world KB,
// covering the aligner's real probe shapes plus joins, filters,
// DISTINCT, EXISTS and paging.
func oracleQueries(k *kb.KB, rng *rand.Rand) []string {
	rels := k.Relations()
	relIRI := func() string {
		t := k.Term(rels[rng.Intn(len(rels))])
		return t.Value
	}
	subjIRI := func(p kb.TermID) string {
		subs := k.SubjectsWith(p)
		return k.Term(subs[rng.Intn(len(subs))]).Value
	}
	var qs []string
	for i := 0; i < 6; i++ {
		r := relIRI()
		// discover / body-sample shape
		qs = append(qs, fmt.Sprintf(
			"SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT %d", r, 5+rng.Intn(40)))
		// head-objects shape
		p := rels[rng.Intn(len(rels))]
		qs = append(qs, fmt.Sprintf(
			"SELECT ?y WHERE { <%s> <%s> ?y }", subjIRI(p), k.Term(p).Value))
		// predicates-between shape
		x := subjIRI(p)
		objs := k.ObjectsOf(k.LookupIRI(x), p)
		if len(objs) > 0 {
			qs = append(qs, fmt.Sprintf(
				"SELECT ?p WHERE { <%s> ?p %s }", x, k.Term(objs[rng.Intn(len(objs))])))
		}
		// literal-attributes shape
		qs = append(qs, fmt.Sprintf(
			"SELECT ?p ?v WHERE { <%s> ?p ?v . FILTER ISLITERAL(?v) }", x))
		// UBS overlap shape (two-pattern join + NOT EXISTS + RAND)
		a, b := relIRI(), relIRI()
		qs = append(qs, fmt.Sprintf(`SELECT ?x ?y1 ?y2 WHERE {
  ?x <%s> ?y1 .
  ?x <%s> ?y2 .
  FILTER NOT EXISTS { ?x <%s> ?y2 }
} ORDER BY RAND() LIMIT %d`, a, b, a, 5+rng.Intn(30)))
		// generic joins, distinct, paging, filters
		qs = append(qs, fmt.Sprintf(
			"SELECT DISTINCT ?x WHERE { ?x <%s> ?y . ?y ?p ?z }", relIRI()))
		qs = append(qs, fmt.Sprintf(
			"SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER (STRLEN(STR(?y)) > %d) } LIMIT %d OFFSET %d",
			relIRI(), rng.Intn(20), 1+rng.Intn(10), rng.Intn(5)))
		qs = append(qs, fmt.Sprintf(
			"SELECT ?x WHERE { ?x <%s> ?y . FILTER EXISTS { ?x <%s> ?z } } ORDER BY ?x", relIRI(), relIRI()))
		qs = append(qs, fmt.Sprintf("ASK { ?x <%s> ?y . ?x <%s> ?z }", relIRI(), relIRI()))
		qs = append(qs, fmt.Sprintf(
			"SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY DESC(?y) ?x LIMIT 7", relIRI()))
	}
	return append(qs, oracleFilterQueries(k, rng)...)
}

// oracleFilterQueries widens the corpus with filter-heavy shapes —
// numeric comparisons, !=, [NOT] EXISTS nested inside boolean
// operators, REGEX, BOUND over never-bound variables — and a LIMIT
// span covering 0, 1, a mid value, and beyond any result size, with
// and without ORDER BY. These are the shapes the compiled filter
// closures (cexpr.go) and the bounded top-k selection (exec.go) lower
// specially.
func oracleFilterQueries(k *kb.KB, rng *rand.Rand) []string {
	rels := k.Relations()
	relIRI := func() string { return k.Term(rels[rng.Intn(len(rels))]).Value }
	var qs []string

	// numeric comparisons over literal objects (gYear / integer /
	// plain literals all participate in numeric coercion)
	for i := 0; i < 3; i++ {
		lo := 1900 + rng.Intn(60)
		qs = append(qs, fmt.Sprintf(
			"SELECT ?x ?v WHERE { ?x <%s> ?v . FILTER (?v >= %d && ?v < %d) }", relIRI(), lo, lo+25))
		qs = append(qs, fmt.Sprintf(
			"SELECT ?x ?v WHERE { ?x <%s> ?v . FILTER (ISLITERAL(?v) && !(?v < %d)) } ORDER BY RAND() LIMIT %d",
			relIRI(), lo, 3+rng.Intn(20)))
	}

	// != over a self-join, plus nested boolean operators
	a, b := relIRI(), relIRI()
	qs = append(qs, fmt.Sprintf(
		"SELECT ?x ?y ?z WHERE { ?x <%s> ?y . ?x <%s> ?z . FILTER (?y != ?z) } LIMIT 9", a, a))
	qs = append(qs, fmt.Sprintf(
		"SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER (!(ISIRI(?y) && ?x = ?y) || STRLEN(STR(?y)) > 4) } ORDER BY ?x ?y LIMIT 11",
		b))

	// EXISTS / NOT EXISTS nested inside boolean operators
	qs = append(qs, fmt.Sprintf(
		"SELECT ?x WHERE { ?x <%s> ?y . FILTER (EXISTS { ?x <%s> ?w } || STRLEN(STR(?y)) > %d) } ORDER BY ?x LIMIT 13",
		relIRI(), relIRI(), rng.Intn(10)))
	qs = append(qs, fmt.Sprintf(
		"SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER (NOT EXISTS { ?x <%s> ?y } && ISIRI(?y)) }",
		relIRI(), relIRI()))

	// BOUND over a never-bound variable; REGEX with constant pattern;
	// DATATYPE mixing
	qs = append(qs, fmt.Sprintf(
		"SELECT ?x WHERE { ?x <%s> ?y . FILTER (!BOUND(?nope)) } ORDER BY ?x LIMIT 5", relIRI()))
	qs = append(qs, fmt.Sprintf(
		`SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER REGEX(STR(?y), "a.", "i") } LIMIT 17`, relIRI()))
	qs = append(qs, fmt.Sprintf(
		"SELECT ?x ?v WHERE { ?x <%s> ?v . FILTER (DATATYPE(?v) = <http://www.w3.org/2001/XMLSchema#gYear> || ISIRI(?v)) }",
		relIRI()))

	// LIMIT span: 0, 1, mid, beyond-result-size — streamed early exit
	// and the bounded ORDER BY selection must match the reference
	// engine's materialize-then-truncate on each of them.
	r := relIRI()
	for _, limit := range []int{0, 1, 6, 1 << 20} {
		qs = append(qs,
			fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } LIMIT %d", r, limit),
			fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT %d", r, limit),
			fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER (STRLEN(STR(?x)) > 2) } ORDER BY DESC(?x) ?y LIMIT %d OFFSET %d",
				r, limit, rng.Intn(4)))
	}
	return qs
}

// drainIter drains a RowIter into a Result, failing the test on error.
func drainIter(t *testing.T, it *RowIter, err error) *Result {
	t.Helper()
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer it.Close()
	res := &Result{Vars: it.Vars()}
	for it.Next() {
		res.Rows = append(res.Rows, it.Row())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("stream iteration: %v", err)
	}
	return res
}

func rowsEqual(a, b *Result) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	return nil
}

func rowMultiset(r *Result) map[string]int {
	m := map[string]int{}
	for _, row := range r.Rows {
		var sb strings.Builder
		for _, t := range row {
			sb.WriteString(t.String())
			sb.WriteByte(0)
		}
		m[sb.String()]++
	}
	return m
}

func multisetEqual(a, b *Result) error {
	ma, mb := rowMultiset(a), rowMultiset(b)
	if len(ma) != len(mb) {
		return fmt.Errorf("distinct row counts differ: %d vs %d", len(ma), len(mb))
	}
	for k, v := range ma {
		if mb[k] != v {
			return fmt.Errorf("row %q: count %d vs %d", k, v, mb[k])
		}
	}
	return nil
}

// TestOracleCompiledMatchesNaive compares the compiled engine — its
// drained Eval path AND its streamed Stream path — against the
// reference evaluator over randomized synth worlds, frozen and
// unfrozen. Drained and streamed execution must agree byte for byte on
// every query (they run the same enumeration); ordered queries must
// also match the reference engine byte for byte, unordered ones as row
// multisets. Early-closed streams must yield a prefix of the drained
// rows.
func TestOracleCompiledMatchesNaive(t *testing.T) {
	for _, worldSeed := range []int64{2016, 7, 99} {
		spec := synth.TinySpec()
		spec.Seed = worldSeed
		w := synth.Generate(spec)
		for _, freeze := range []bool{false, true} {
			for _, k := range []*kb.KB{w.Yago, w.Dbp} {
				if freeze {
					k.Freeze()
				}
				rng := rand.New(rand.NewSource(worldSeed * 13))
				naive := newNaiveEngine(k, worldSeed)
				compiled := NewEngineSeeded(k, worldSeed)
				for _, qtext := range oracleQueries(k, rng) {
					q, err := Parse(qtext)
					if err != nil {
						t.Fatalf("parse %q: %v", qtext, err)
					}
					want, err := naive.Eval(q)
					if err != nil {
						t.Fatalf("naive eval %q: %v", qtext, err)
					}
					got, err := compiled.Eval(q)
					if err != nil {
						t.Fatalf("compiled eval %q: %v", qtext, err)
					}
					if want.Ask != got.Ask {
						t.Fatalf("ASK differs for %q: %v vs %v", qtext, want.Ask, got.Ask)
					}
					if len(q.OrderBy) > 0 {
						if err := rowsEqual(want, got); err != nil {
							t.Fatalf("ordered results differ (freeze=%v) for\n%s\n%v", freeze, qtext, err)
						}
					} else if err := multisetEqual(want, got); err != nil {
						t.Fatalf("results differ (freeze=%v) for\n%s\n%v", freeze, qtext, err)
					}
					if q.Form != SelectForm {
						continue
					}
					it, err := compiled.Stream(q)
					streamed := drainIter(t, it, err)
					if err := rowsEqual(got, streamed); err != nil {
						t.Fatalf("streamed rows differ from drained (freeze=%v) for\n%s\n%v", freeze, qtext, err)
					}
					if n := len(got.Rows); n > 1 {
						j := 1 + int(rng.Int63())%n // early close mid-result
						it, err := compiled.Stream(q)
						if err != nil {
							t.Fatalf("stream %q: %v", qtext, err)
						}
						for i := 0; i < j; i++ {
							if !it.Next() {
								t.Fatalf("stream of %q ended at row %d, want %d", qtext, i, j)
							}
							for c := range it.Row() {
								if it.Row()[c] != got.Rows[i][c] {
									t.Fatalf("streamed prefix diverges at row %d col %d for %q", i, c, qtext)
								}
							}
						}
						it.Close()
						if it.Err() != nil {
							t.Fatalf("early close errored for %q: %v", qtext, it.Err())
						}
					}
				}
			}
		}
	}
}

// TestOracleMixedTypeOrderKeys pins the regression where ORDER BY keys
// mix comparable and incomparable values (STRLEN of a literal vs an
// IRI): the key comparator is then non-transitive, so bounded top-k
// selection is unsound and the engine must fall back to the reference
// stable sort. Naive, drained, and streamed execution must stay
// byte-identical for every LIMIT.
func TestOracleMixedTypeOrderKeys(t *testing.T) {
	k := kb.New("mixed")
	k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s1"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("hello")))
	k.AddIRIs("http://x/s2", "http://x/p", "http://x/iri")
	k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s3"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("abc")))
	k.Add(rdf.NewTriple(rdf.NewIRI("http://x/s4"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("zz")))
	k.Freeze()
	naive := newNaiveEngine(k, 5)
	compiled := NewEngineSeeded(k, 5)
	for _, shape := range []string{
		"SELECT ?y WHERE { ?s <http://x/p> ?y } ORDER BY STRLEN(?y)%s",
		"SELECT ?y WHERE { ?s <http://x/p> ?y } ORDER BY DESC(STRLEN(?y))%s",
		"SELECT ?y WHERE { ?s <http://x/p> ?y } ORDER BY STRLEN(?y) ?y%s",
	} {
		for _, limit := range []string{"", " LIMIT 1", " LIMIT 2", " LIMIT 3 OFFSET 1"} {
			qtext := fmt.Sprintf(shape, limit)
			q := MustParse(qtext)
			want, err := naive.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := compiled.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := rowsEqual(want, got); err != nil {
				t.Fatalf("drained differs from naive for %q: %v", qtext, err)
			}
			it, err := compiled.Stream(q)
			if err := rowsEqual(want, drainIter(t, it, err)); err != nil {
				t.Fatalf("streamed differs from naive for %q: %v", qtext, err)
			}
		}
	}
}

// TestOraclePreparedMatchesText proves the prepared-template fast path
// produces byte-identical results — RAND() streams included — to the
// text path for the aligner's probe templates.
func TestOraclePreparedMatchesText(t *testing.T) {
	spec := synth.TinySpec()
	w := synth.Generate(spec)
	k := w.Yago
	k.Freeze()
	e := NewEngineSeeded(k, 42)

	rels := k.Relations()
	sample := MustParseTemplate(
		"SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	overlap := MustParseTemplate(`SELECT ?x ?y1 ?y2 WHERE {
  ?x $a ?y1 .
  ?x $b ?y2 .
  FILTER NOT EXISTS { ?x $a ?y2 }
} ORDER BY RAND() LIMIT $n`, "a", "b", "n")

	pSample, err := e.Prepare(sample)
	if err != nil {
		t.Fatal(err)
	}
	pOverlap, err := e.Prepare(overlap)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < len(rels) && i < 12; i++ {
		r := k.Term(rels[i]).Value
		r2 := k.Term(rels[(i+1)%len(rels)]).Value

		text := fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT %d", r, 17)
		want, err := e.EvalString(text)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pSample.Exec(IRIArg(r), IntArg(17))
		if err != nil {
			t.Fatal(err)
		}
		if err := rowsEqual(want, got); err != nil {
			t.Fatalf("prepared sample differs from text path for <%s>: %v", r, err)
		}
		it, err := pSample.Iter(IRIArg(r), IntArg(17))
		if err := rowsEqual(got, drainIter(t, it, err)); err != nil {
			t.Fatalf("prepared sample stream differs from Exec for <%s>: %v", r, err)
		}

		text = fmt.Sprintf(`SELECT ?x ?y1 ?y2 WHERE {
  ?x <%s> ?y1 .
  ?x <%s> ?y2 .
  FILTER NOT EXISTS { ?x <%s> ?y2 }
} ORDER BY RAND() LIMIT %d`, r, r2, r, 23)
		want, err = e.EvalString(text)
		if err != nil {
			t.Fatal(err)
		}
		got, err = pOverlap.Exec(IRIArg(r), IRIArg(r2), IntArg(23))
		if err != nil {
			t.Fatal(err)
		}
		if err := rowsEqual(want, got); err != nil {
			t.Fatalf("prepared overlap differs from text path for <%s>,<%s>: %v", r, r2, err)
		}
		it2, err := pOverlap.Iter(IRIArg(r), IRIArg(r2), IntArg(23))
		if err := rowsEqual(got, drainIter(t, it2, err)); err != nil {
			t.Fatalf("prepared overlap stream differs from Exec for <%s>,<%s>: %v", r, r2, err)
		}
	}
}

// TestOracleTemplateTextCanonical: a template's instantiated canonical
// text equals the parse → String round trip of the interpolated text,
// the invariant RAND() stream identity rests on.
func TestOracleTemplateTextCanonical(t *testing.T) {
	tm := MustParseTemplate(
		"SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	got, err := tm.Text(IRIArg("http://x/p"), IntArg(50))
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse("SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND() LIMIT 50")
	if want := q.String(); got != want {
		t.Fatalf("canonical texts differ:\n%q\n%q", got, want)
	}

	tm2 := MustParseTemplate("SELECT ?p WHERE { $s ?p $o }", "s", "o")
	got2, err := tm2.Text(IRIArg("http://x/a"), TermArg(rdf.NewIRI("http://x/b")))
	if err != nil {
		t.Fatal(err)
	}
	q2 := MustParse("SELECT ?p WHERE { <http://x/a> ?p <http://x/b> }")
	if want := q2.String(); got2 != want {
		t.Fatalf("canonical texts differ:\n%q\n%q", got2, want)
	}
}

// TestPlanCacheReuse: repeated queries of one shape compile once.
func TestPlanCacheReuse(t *testing.T) {
	k := kb.New("pc")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.AddIRIs("http://x/b", "http://x/p", "http://x/c")
	k.Freeze()
	e := NewEngine(k)
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf("SELECT ?y WHERE { <http://x/%c> <http://x/p> ?y } LIMIT %d", 'a'+byte(i%3), i+1)
		if _, err := e.EvalString(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.CachedPlans(); got != 1 {
		t.Fatalf("CachedPlans = %d, want 1 (one shape)", got)
	}
}
