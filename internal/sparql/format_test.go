package sparql

import (
	"strings"
	"testing"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// queries spanning the serializer's surface; each must survive a
// parse → String → parse round trip and evaluate identically.
var roundTripQueries = []string{
	`SELECT ?x ?y WHERE { ?x <http://x/knows> ?y }`,
	`SELECT DISTINCT ?x WHERE { ?x <http://x/knows> ?y } LIMIT 2 OFFSET 1`,
	`SELECT ?x WHERE { ?x <http://x/age> ?a . FILTER (?a >= 18) } ORDER BY DESC(?a)`,
	`SELECT ?x WHERE { ?x <http://x/knows> ?y . FILTER NOT EXISTS { ?y <http://x/knows> ?x } }`,
	`SELECT ?x WHERE { ?x <http://x/knows> ?y . FILTER EXISTS { ?y <http://x/knows> ?x } }`,
	`ASK { <http://x/alice> <http://x/knows> <http://x/bob> }`,
	`SELECT ?x WHERE { ?x <http://x/name> "Alice" }`,
	`SELECT ?x WHERE { ?x <http://x/name> ?n . FILTER REGEX(STR(?n), "^A", "i") }`,
	`SELECT ?x ?y WHERE { ?x <http://x/knows> ?y } ORDER BY ?x ?y LIMIT 3`,
}

func TestQueryStringRoundTrip(t *testing.T) {
	k := familyKB()
	for _, src := range roundTripQueries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		serialized := q1.String()
		q2, err := Parse(serialized)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\nserialized: %s", src, err, serialized)
		}
		r1, err := NewEngineSeeded(k, 5).Eval(q1)
		if err != nil {
			t.Fatalf("eval original %q: %v", src, err)
		}
		r2, err := NewEngineSeeded(k, 5).Eval(q2)
		if err != nil {
			t.Fatalf("eval reparsed %q: %v", src, err)
		}
		if r1.Ask != r2.Ask || len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("round trip changed semantics of %q:\n%v\nvs\n%v", src, r1, r2)
		}
		for i := range r1.Rows {
			for j := range r1.Rows[i] {
				if r1.Rows[i][j] != r2.Rows[i][j] {
					t.Fatalf("round trip changed row %d of %q", i, src)
				}
			}
		}
	}
}

func TestQueryStringSelectStar(t *testing.T) {
	q := &Query{Form: SelectForm, Where: &GroupPattern{
		Triples: []TriplePattern{{S: Variable("s"), P: Variable("p"), O: Variable("o")}},
	}, Limit: -1}
	s := q.String()
	if !strings.Contains(s, "SELECT * ") {
		t.Fatalf("String = %q", s)
	}
	if _, err := Parse(s); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestQueryStringNilWhere(t *testing.T) {
	q := &Query{Form: AskForm, Limit: -1}
	if !strings.Contains(q.String(), "{ }") {
		t.Fatalf("String = %q", q.String())
	}
}

func TestMapPatterns(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x <http://old/p> ?y .
		FILTER NOT EXISTS { ?x <http://old/q> ?y }
	}`)
	mapped := q.MapPatterns(func(tp TriplePattern) TriplePattern {
		if !tp.P.IsVar {
			tp.P.Term.Value = strings.Replace(tp.P.Term.Value, "http://old/", "http://new/", 1)
		}
		return tp
	})
	// original untouched
	if q.Where.Triples[0].P.Term.Value != "http://old/p" {
		t.Fatal("MapPatterns mutated the original")
	}
	s := mapped.String()
	if !strings.Contains(s, "http://new/p") || !strings.Contains(s, "http://new/q") {
		t.Fatalf("mapped = %s", s)
	}
	if strings.Contains(s, "http://old/") {
		t.Fatalf("old IRIs remain: %s", s)
	}
}

func TestMapPatternsNilGroup(t *testing.T) {
	q := &Query{Form: SelectForm, Limit: -1}
	out := q.MapPatterns(func(tp TriplePattern) TriplePattern { return tp })
	if out.Where != nil {
		t.Fatal("nil group should stay nil")
	}
}

func TestEvalAfterMapPatternsOnKB(t *testing.T) {
	// rewriting a predicate points the query at different data
	k := kb.New("t")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.AddIRIs("http://x/a", "http://x/q", "http://x/c")
	q := MustParse(`SELECT ?y WHERE { <http://x/a> <http://x/p> ?y }`)
	mapped := q.MapPatterns(func(tp TriplePattern) TriplePattern {
		if !tp.P.IsVar && tp.P.Term == rdf.NewIRI("http://x/p") {
			tp.P = Concrete(rdf.NewIRI("http://x/q"))
		}
		return tp
	})
	res, err := NewEngine(k).Eval(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "http://x/c" {
		t.Fatalf("rows = %v", res.Rows)
	}
}
