package sparql

import (
	"testing"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

func analyze(t *testing.T, query string, params ...string) ShardShape {
	t.Helper()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	isParam := func(name string) bool {
		for _, p := range params {
			if p == name {
				return true
			}
		}
		return false
	}
	return AnalyzeShard(q, isParam)
}

func TestAnalyzeShardShapes(t *testing.T) {
	// The aligner's sampling probe: star on a projected subject with a
	// parameter predicate and a RAND LIMIT tail.
	sh := analyze(t, "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	if !sh.Decomposable || sh.SubjectVar != "x" || sh.SubjectCol != 0 {
		t.Fatalf("sample probe misclassified: %+v", sh)
	}
	if !sh.MergeOrdered || !sh.OrderTotal || !sh.KeysMergeable || sh.RandFilters {
		t.Fatalf("sample probe merge flags wrong: %+v", sh)
	}
	if len(sh.Keys) != 1 || !sh.Keys[0].Rand || sh.Keys[0].Desc {
		t.Fatalf("sample probe keys wrong: %+v", sh.Keys)
	}

	// The UBS overlap probe: star with an EXISTS subgroup on the same
	// subject.
	sh = analyze(t, `SELECT ?x ?y1 ?y2 WHERE {
  ?x $a ?y1 .
  ?x $b ?y2 .
  FILTER NOT EXISTS { ?x $a ?y2 }
} ORDER BY RAND() LIMIT $n`, "a", "b", "n")
	if !sh.Decomposable || sh.SubjectVar != "x" || !sh.MergeOrdered || !sh.KeysMergeable {
		t.Fatalf("overlap probe misclassified: %+v", sh)
	}

	// Concrete-subject probes route to one shard.
	sh = analyze(t, "SELECT ?p WHERE { <http://x/alice> ?p <http://x/paris> }")
	if !sh.Decomposable || sh.Subject != rdf.NewIRI("http://x/alice") {
		t.Fatalf("concrete-subject probe misclassified: %+v", sh)
	}

	// Parameter-subject probes route per execution.
	sh = analyze(t, "SELECT ?y WHERE { $x $r ?y }", "x", "r")
	if !sh.Decomposable || sh.SubjectParam != "x" {
		t.Fatalf("param-subject probe misclassified: %+v", sh)
	}

	// Cross-subject joins are not decomposable.
	sh = analyze(t, "SELECT ?x WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z }")
	if sh.Decomposable {
		t.Fatalf("path join wrongly decomposable: %+v", sh)
	}

	// Patternless queries are not decomposable (fan-out would replicate
	// their rows per shard).
	sh = analyze(t, "ASK { }")
	if sh.Decomposable {
		t.Fatalf("patternless ASK wrongly decomposable: %+v", sh)
	}

	// A concrete object demotes merge ordering (object-keyed postings
	// do not interleave by subject) but not decomposability.
	sh = analyze(t, "SELECT ?x WHERE { ?x <http://x/p> <http://x/o> }")
	if !sh.Decomposable || sh.MergeOrdered {
		t.Fatalf("object-bound probe misclassified: %+v", sh)
	}

	// An unprojected subject cannot drive the ordered merge.
	sh = analyze(t, "SELECT ?y WHERE { ?x <http://x/p> ?y }")
	if !sh.Decomposable || sh.MergeOrdered || sh.SubjectCol != -1 {
		t.Fatalf("hidden-subject probe misclassified: %+v", sh)
	}

	// A variable predicate keeps decomposability but kills ordering.
	sh = analyze(t, "SELECT ?x ?p ?y WHERE { ?x ?p ?y }")
	if !sh.Decomposable || sh.MergeOrdered {
		t.Fatalf("var-predicate probe misclassified: %+v", sh)
	}

	// RAND in a filter cannot be reproduced at the merge point.
	sh = analyze(t, "SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER (RAND() < 0.5) }")
	if !sh.RandFilters {
		t.Fatalf("filter RAND not detected: %+v", sh)
	}

	// Deterministic ORDER BY keys over projected variables compile.
	sh = analyze(t, "SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY DESC(?y) ?x")
	if !sh.KeysMergeable || len(sh.Keys) != 2 || sh.Keys[0].Eval == nil || !sh.Keys[0].Desc {
		t.Fatalf("deterministic keys misclassified: %+v", sh)
	}
	row := []rdf.Term{rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/b")}
	v := sh.Keys[0].Eval(row)
	if c, ok := OrderValues(v, sh.Keys[0].Eval(row)); !ok || c != 0 {
		t.Fatalf("key evaluator unstable: %v %v", c, ok)
	}

	// Keys over unprojected variables do not.
	sh = analyze(t, "SELECT ?x WHERE { ?x <http://x/p> ?y } ORDER BY ?y")
	if sh.KeysMergeable {
		t.Fatalf("unprojected key wrongly mergeable: %+v", sh)
	}
}

func TestRandFloatsMatchesEngineStream(t *testing.T) {
	k := kb.New("rand")
	for i := 0; i < 20; i++ {
		k.AddIRIs(
			"http://x/s"+string(rune('a'+i)),
			"http://x/p",
			"http://x/o")
	}
	const query = "SELECT ?x ?y WHERE { ?x <http://x/p> ?y } ORDER BY RAND()"
	eng := NewEngineSeeded(k, 42)
	res, err := eng.EvalString(query)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive the stream and re-sort the enumeration manually: the
	// engine's output order must match a (draw, enumeration-index)
	// sort of the rows in enumeration order.
	unordered, err := eng.EvalString("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	draw := RandFloats(42, q.String())
	type keyed struct {
		row []rdf.Term
		k   float64
		i   int
	}
	rows := make([]keyed, len(unordered.Rows))
	for i, r := range unordered.Rows {
		rows[i] = keyed{row: r, k: draw(), i: i}
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			less := rows[j].k < rows[i].k || (rows[j].k == rows[i].k && rows[j].i < rows[i].i)
			if less {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	if len(res.Rows) != len(rows) {
		t.Fatalf("row counts differ: %d vs %d", len(res.Rows), len(rows))
	}
	for i := range rows {
		for c := range rows[i].row {
			if rows[i].row[c] != res.Rows[i][c] {
				t.Fatalf("row %d differs: %v vs %v", i, rows[i].row, res.Rows[i])
			}
		}
	}
}

func TestTemplateFromQueryRoundTrip(t *testing.T) {
	src := "SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n"
	tmpl, err := ParseTemplate(src, "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	// Strip the ordering clauses the way the federation layer does.
	q := tmpl.Query()
	q.OrderBy = nil
	q.Limit = -1
	q.LimitVar = ""
	q.Offset = 0
	stripped, err := TemplateFromQuery(q, "r")
	if err != nil {
		t.Fatal(err)
	}
	text, err := stripped.Text(IRIArg("http://x/p"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Parse("SELECT ?x ?y WHERE { ?x <http://x/p> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	if text != want.String() {
		t.Fatalf("stripped template text %q, want %q", text, want.String())
	}

	// Full round trip with the parameter list unchanged.
	again, err := TemplateFromQuery(tmpl.Query(), "r", "n")
	if err != nil {
		t.Fatal(err)
	}
	a, err := tmpl.Text(IRIArg("http://x/p"), IntArg(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := again.Text(IRIArg("http://x/p"), IntArg(5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("round-tripped template text differs:\n%s\nvs\n%s", a, b)
	}

	// A vanished parameter must be reported.
	if _, err := TemplateFromQuery(q, "r", "n"); err == nil {
		t.Fatal("TemplateFromQuery accepted a parameter that no longer occurs")
	}
}
