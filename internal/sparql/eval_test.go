package sparql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// familyKB builds a small KB with people, ages and links.
func familyKB() *kb.KB {
	k := kb.New("family")
	add := func(s, p, o string) { k.AddIRIs("http://x/"+s, "http://x/"+p, "http://x/"+o) }
	lit := func(s, p string, o rdf.Term) {
		k.Add(rdf.NewTriple(rdf.NewIRI("http://x/"+s), rdf.NewIRI("http://x/"+p), o))
	}
	add("alice", "knows", "bob")
	add("alice", "knows", "carol")
	add("bob", "knows", "carol")
	add("carol", "knows", "alice")
	add("alice", "type", "Person")
	add("bob", "type", "Person")
	add("carol", "type", "Person")
	add("dave", "type", "Robot")
	lit("alice", "age", rdf.NewTypedLiteral("30", rdf.XSDInteger))
	lit("bob", "age", rdf.NewTypedLiteral("17", rdf.XSDInteger))
	lit("carol", "age", rdf.NewTypedLiteral("45", rdf.XSDInteger))
	lit("alice", "name", rdf.NewLiteral("Alice"))
	lit("bob", "name", rdf.NewLangLiteral("Bob", "en"))
	return k
}

func evalQ(t *testing.T, k *kb.KB, q string) *Result {
	t.Helper()
	res, err := NewEngine(k).EvalString(q)
	if err != nil {
		t.Fatalf("eval %q: %v", q, err)
	}
	return res
}

func TestEvalSinglePattern(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x ?y WHERE { ?x <http://x/knows> ?y }`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
}

func TestEvalJoin(t *testing.T) {
	// friends of friends of alice
	res := evalQ(t, familyKB(), `SELECT ?z WHERE {
		<http://x/alice> <http://x/knows> ?y .
		?y <http://x/knows> ?z .
	}`)
	// alice knows bob,carol; bob knows carol; carol knows alice => z in {carol, alice}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	got := map[string]bool{}
	for _, r := range res.Rows {
		got[r[0].Value] = true
	}
	if !got["http://x/carol"] || !got["http://x/alice"] {
		t.Fatalf("got = %v", got)
	}
}

func TestEvalSharedVariableInPattern(t *testing.T) {
	k := kb.New("loop")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/a") // self loop
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	res := evalQ(t, k, `SELECT ?x WHERE { ?x <http://x/p> ?x }`)
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "http://x/a" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalFilterComparison(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x WHERE {
		?x <http://x/age> ?a . FILTER (?a >= 18)
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalFilterNotExists(t *testing.T) {
	// people alice knows who do not know her back
	res := evalQ(t, familyKB(), `SELECT ?y WHERE {
		<http://x/alice> <http://x/knows> ?y .
		FILTER NOT EXISTS { ?y <http://x/knows> <http://x/alice> }
	}`)
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "http://x/bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalFilterExists(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?y WHERE {
		<http://x/alice> <http://x/knows> ?y .
		FILTER EXISTS { ?y <http://x/knows> <http://x/alice> }
	}`)
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "http://x/carol" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalAsk(t *testing.T) {
	res := evalQ(t, familyKB(), `ASK { <http://x/alice> <http://x/knows> <http://x/bob> }`)
	if !res.Ask {
		t.Fatal("ASK should be true")
	}
	res = evalQ(t, familyKB(), `ASK { <http://x/bob> <http://x/knows> <http://x/alice> }`)
	if res.Ask {
		t.Fatal("ASK should be false")
	}
}

func TestEvalDistinct(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT DISTINCT ?x WHERE { ?x <http://x/knows> ?y }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalLimitOffset(t *testing.T) {
	all := evalQ(t, familyKB(), `SELECT ?x ?y WHERE { ?x <http://x/knows> ?y } ORDER BY ?x ?y`)
	lim := evalQ(t, familyKB(), `SELECT ?x ?y WHERE { ?x <http://x/knows> ?y } ORDER BY ?x ?y LIMIT 2 OFFSET 1`)
	if len(lim.Rows) != 2 {
		t.Fatalf("rows = %d", len(lim.Rows))
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if lim.Rows[i][j] != all.Rows[i+1][j] {
				t.Fatalf("offset window wrong: %v vs %v", lim.Rows, all.Rows)
			}
		}
	}
	// offset beyond result set
	empty := evalQ(t, familyKB(), `SELECT ?x WHERE { ?x <http://x/knows> ?y } OFFSET 100`)
	if len(empty.Rows) != 0 {
		t.Fatalf("rows = %d", len(empty.Rows))
	}
	// limit 0
	zero := evalQ(t, familyKB(), `SELECT ?x WHERE { ?x <http://x/knows> ?y } LIMIT 0`)
	if len(zero.Rows) != 0 {
		t.Fatalf("rows = %d", len(zero.Rows))
	}
}

func TestEvalOrderByNumeric(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x ?a WHERE { ?x <http://x/age> ?a } ORDER BY DESC(?a)`)
	if res.Rows[0][0].Value != "http://x/carol" || res.Rows[2][0].Value != "http://x/bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalOrderByRandDeterministic(t *testing.T) {
	q := `SELECT ?x ?y WHERE { ?x <http://x/knows> ?y } ORDER BY RAND()`
	e1 := NewEngineSeeded(familyKB(), 7)
	e2 := NewEngineSeeded(familyKB(), 7)
	r1, err := e1.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Rows {
		if r1.Rows[i][0] != r2.Rows[i][0] || r1.Rows[i][1] != r2.Rows[i][1] {
			t.Fatalf("same seed produced different shuffles:\n%v\n%v", r1.Rows, r2.Rows)
		}
	}
	// different engine seeds should (for this KB) give a different order
	e3 := NewEngineSeeded(familyKB(), 99)
	r3, err := e3.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Rows {
		if r1.Rows[i][0] != r3.Rows[i][0] || r1.Rows[i][1] != r3.Rows[i][1] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: different seeds produced identical order (possible but unlikely)")
	}
}

func TestEvalStringFunctions(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x WHERE {
		?x <http://x/name> ?n . FILTER STRSTARTS(STR(?n), "Al")
	}`)
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "http://x/alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = evalQ(t, familyKB(), `SELECT ?x WHERE {
		?x <http://x/name> ?n . FILTER (LANG(?n) = "en")
	}`)
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "http://x/bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = evalQ(t, familyKB(), `SELECT ?x WHERE {
		?x <http://x/name> ?n . FILTER (STRLEN(STR(?n)) = 5)
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalRegexCaseInsensitive(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x WHERE {
		?x <http://x/name> ?n . FILTER REGEX(?n, "ALICE", "i")
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalIsFunctions(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?o WHERE {
		<http://x/alice> ?p ?o . FILTER ISLITERAL(?o)
	}`)
	if len(res.Rows) != 2 { // age + name
		t.Fatalf("rows = %v", res.Rows)
	}
	res = evalQ(t, familyKB(), `SELECT ?o WHERE {
		<http://x/alice> ?p ?o . FILTER ISIRI(?o)
	}`)
	if len(res.Rows) != 3 { // knows x2 + type
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalUnknownTermsYieldEmpty(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x WHERE { ?x <http://x/ghost> ?y }`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = evalQ(t, familyKB(), `SELECT ?p WHERE { <http://x/nobody> ?p ?y }`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalVariablePredicate(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?p WHERE { <http://x/alice> ?p <http://x/bob> }`)
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "http://x/knows" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalFullScan(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if len(res.Rows) != familyKB().Size() {
		t.Fatalf("rows = %d, want %d", len(res.Rows), familyKB().Size())
	}
}

func TestEvalObjectOnlyBound(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?s ?p WHERE { ?s ?p <http://x/carol> }`)
	if len(res.Rows) != 2 { // alice knows carol, bob knows carol
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalProjectionUnboundVarDropsRows(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?nope WHERE { ?x <http://x/knows> ?y }`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestResultHelpers(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x ?a WHERE { ?x <http://x/age> ?a } ORDER BY ?a LIMIT 1`)
	if res.Column("a") != 1 || res.Column("zzz") != -1 {
		t.Fatal("Column wrong")
	}
	b := res.Bindings(0)
	if b["x"].Value != "http://x/bob" {
		t.Fatalf("Bindings = %v", b)
	}
}

func TestEvalBoundFunction(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x WHERE { ?x <http://x/age> ?a . FILTER BOUND(?a) }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = evalQ(t, familyKB(), `SELECT ?x WHERE { ?x <http://x/age> ?a . FILTER BOUND(?zzz) }`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalBooleanConnectives(t *testing.T) {
	res := evalQ(t, familyKB(), `SELECT ?x WHERE {
		?x <http://x/age> ?a . FILTER (?a < 20 || ?a > 40)
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = evalQ(t, familyKB(), `SELECT ?x WHERE {
		?x <http://x/age> ?a . FILTER (!(?a < 20))
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// naiveBGP evaluates a BGP by brute force for the property test: all
// triples × all triples ... with consistency checks.
func naiveBGP(k *kb.KB, patterns []TriplePattern) map[string]int {
	triples := k.Triples()
	counts := map[string]int{}
	var rec func(i int, env map[string]rdf.Term)
	rec = func(i int, env map[string]rdf.Term) {
		if i == len(patterns) {
			key := ""
			// canonical: sorted var=val
			vars := make([]string, 0, len(env))
			for v := range env {
				vars = append(vars, v)
			}
			sortStrings(vars)
			for _, v := range vars {
				key += v + "=" + env[v].String() + ";"
			}
			counts[key]++
			return
		}
		tp := patterns[i]
		for _, tr := range triples {
			ok := true
			next := map[string]rdf.Term{}
			for k2, v := range env {
				next[k2] = v
			}
			check := func(pt PatternTerm, val rdf.Term) {
				if !ok {
					return
				}
				if pt.IsVar {
					if prev, bound := next[pt.Var]; bound {
						if prev != val {
							ok = false
						}
					} else {
						next[pt.Var] = val
					}
				} else if pt.Term != val {
					ok = false
				}
			}
			check(tp.S, tr.S)
			check(tp.P, tr.P)
			check(tp.O, tr.O)
			if ok {
				rec(i+1, next)
			}
		}
	}
	rec(0, map[string]rdf.Term{})
	return counts
}

// Property: the engine's BGP join agrees with the naive evaluator on
// random KBs and random 2-pattern queries.
func TestQuickBGPAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := kb.New("q")
		for i := 0; i < 30; i++ {
			k.AddIRIs(
				fmt.Sprintf("http://x/e%d", rng.Intn(6)),
				fmt.Sprintf("http://x/p%d", rng.Intn(3)),
				fmt.Sprintf("http://x/e%d", rng.Intn(6)))
		}
		mk := func() PatternTerm {
			switch rng.Intn(3) {
			case 0:
				return Variable(fmt.Sprintf("v%d", rng.Intn(3)))
			case 1:
				return Concrete(rdf.NewIRI(fmt.Sprintf("http://x/e%d", rng.Intn(6))))
			default:
				return Variable(fmt.Sprintf("w%d", rng.Intn(2)))
			}
		}
		mkP := func() PatternTerm {
			if rng.Intn(2) == 0 {
				return Variable(fmt.Sprintf("v%d", rng.Intn(3)))
			}
			return Concrete(rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(3))))
		}
		patterns := []TriplePattern{
			{S: mk(), P: mkP(), O: mk()},
			{S: mk(), P: mkP(), O: mk()},
		}
		g := &GroupPattern{Triples: patterns}
		q := &Query{Form: SelectForm, Vars: g.AllVars(), Where: g, Limit: -1}
		res, err := NewEngine(k).Eval(q)
		if err != nil {
			return false
		}
		gotCounts := map[string]int{}
		for i := range res.Rows {
			key := ""
			for j, v := range res.Vars {
				key += v + "=" + res.Rows[i][j].String() + ";"
			}
			gotCounts[key]++
		}
		wantCounts := naiveBGP(k, patterns)
		if len(gotCounts) != len(wantCounts) {
			return false
		}
		for k2, v := range wantCounts {
			if gotCounts[k2] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineConcurrentEval(t *testing.T) {
	k := familyKB()
	e := NewEngine(k)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				_, err := e.EvalString(`SELECT ?x ?y WHERE { ?x <http://x/knows> ?y }`)
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// The property the concurrent alignment pipeline rests on: a query's
// RAND() stream depends only on the engine seed and the query text,
// never on which other queries ran before or concurrently.
func TestEvalRandOrderIndependent(t *testing.T) {
	qA := `SELECT ?x ?y WHERE { ?x <http://x/knows> ?y } ORDER BY RAND()`
	qB := `SELECT ?x WHERE { ?x <http://x/knows> ?y } ORDER BY RAND() LIMIT 2`

	e1 := NewEngineSeeded(familyKB(), 7)
	a1, err := e1.EvalString(qA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.EvalString(qB); err != nil {
		t.Fatal(err)
	}

	// same seed, other interleaving: qB first, qA twice
	e2 := NewEngineSeeded(familyKB(), 7)
	if _, err := e2.EvalString(qB); err != nil {
		t.Fatal(err)
	}
	a2, err := e2.EvalString(qA)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := e2.EvalString(qA)
	if err != nil {
		t.Fatal(err)
	}

	for _, other := range [][][]rdf.Term{a2.Rows, a3.Rows} {
		if len(a1.Rows) != len(other) {
			t.Fatalf("row counts differ: %d vs %d", len(a1.Rows), len(other))
		}
		for i := range a1.Rows {
			if a1.Rows[i][0] != other[i][0] || a1.Rows[i][1] != other[i][1] {
				t.Fatalf("interleaving changed a RAND() order:\n%v\n%v", a1.Rows, other)
			}
		}
	}
}

// Concurrent RAND() queries must reproduce the isolated results — the
// engine derives a private PRNG per Eval, shared state would race and
// scramble orders.
func TestEvalRandConcurrentMatchesIsolated(t *testing.T) {
	q := `SELECT ?x ?y WHERE { ?x <http://x/knows> ?y } ORDER BY RAND()`
	want, err := NewEngineSeeded(familyKB(), 7).EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineSeeded(familyKB(), 7)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 20; j++ {
				got, err := e.EvalString(q)
				if err != nil {
					done <- err
					return
				}
				for r := range want.Rows {
					if got.Rows[r][0] != want.Rows[r][0] || got.Rows[r][1] != want.Rows[r][1] {
						done <- fmt.Errorf("concurrent RAND() order diverged at row %d", r)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
