package sparql

import (
	"fmt"
	"testing"

	"sofya/internal/kb"
)

// benchKB builds a frozen KB with one large predicate of n facts — the
// shape of a discover/body-sample window over a big relation.
func benchKB(n int) *kb.KB {
	k := kb.New("bench")
	for i := 0; i < n; i++ {
		k.AddIRIs(fmt.Sprintf("http://b/s%06d", i), "http://b/p", fmt.Sprintf("http://b/o%06d", i))
	}
	k.Freeze()
	return k
}

const benchProbeRows = 50_000

// BenchmarkRandProbeLimitK is the aligner's hot probe shape — ORDER BY
// RAND() LIMIT k on a large predicate — through the prepared drain
// path. With the bounded top-k selection the execution allocates O(k)
// rows; pair it with BenchmarkRandProbeFullDrain (same predicate, LIMIT
// = result size) to see the O(result) contrast in allocs/op.
func BenchmarkRandProbeLimitK(b *testing.B) {
	k := benchKB(benchProbeRows)
	e := NewEngineSeeded(k, 1)
	tmpl := MustParseTemplate("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	p, err := e.Prepare(tmpl)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Exec(IRIArg("http://b/p"), IntArg(10))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkRandProbeFullDrain is the same probe with the LIMIT opened
// to the full result — the cost the engine paid per probe before
// bounded selection, and still pays when a caller wants everything.
func BenchmarkRandProbeFullDrain(b *testing.B) {
	k := benchKB(benchProbeRows)
	e := NewEngineSeeded(k, 1)
	tmpl := MustParseTemplate("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	p, err := e.Prepare(tmpl)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Exec(IRIArg("http://b/p"), IntArg(benchProbeRows))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != benchProbeRows {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkStreamEarlyClose pulls k rows from an un-LIMITed scan of the
// large predicate and closes — the consumer-driven early exit that
// drained execution cannot express at all.
func BenchmarkStreamEarlyClose(b *testing.B) {
	k := benchKB(benchProbeRows)
	e := NewEngineSeeded(k, 1)
	tmpl := MustParseTemplate("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
	p, err := e.Prepare(tmpl)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := p.Iter(IRIArg("http://b/p"))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			if !it.Next() {
				b.Fatal("short stream")
			}
		}
		it.Close()
	}
}

// BenchmarkStreamFullScan drains the same scan completely, for the
// wall-clock and allocation contrast with the early close.
func BenchmarkStreamFullScan(b *testing.B) {
	k := benchKB(benchProbeRows)
	e := NewEngineSeeded(k, 1)
	tmpl := MustParseTemplate("SELECT ?x ?y WHERE { ?x $r ?y }", "r")
	p, err := e.Prepare(tmpl)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := p.Iter(IRIArg("http://b/p"))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for it.Next() {
			n++
		}
		if n != benchProbeRows {
			b.Fatalf("rows = %d", n)
		}
	}
}

// BenchmarkFilterClosureProbe measures the compiled-filter hot loop:
// a join with an attached comparison + EXISTS filter over the large
// predicate, the shape the closure lowering (cexpr.go) targets.
func BenchmarkFilterClosureProbe(b *testing.B) {
	k := benchKB(2_000)
	e := NewEngineSeeded(k, 1)
	tmpl := MustParseTemplate(
		"SELECT ?x ?y WHERE { ?x $r ?y . FILTER (STRLEN(STR(?y)) > 3 && NOT EXISTS { ?y <http://b/p> ?x }) } LIMIT 64", "r")
	p, err := e.Prepare(tmpl)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Exec(IRIArg("http://b/p")); err != nil {
			b.Fatal(err)
		}
	}
}
