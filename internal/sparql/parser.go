package sparql

import (
	"fmt"
	"strconv"

	"sofya/internal/rdf"
)

// Parse parses a SPARQL query using the standard prefixes
// (rdf.StandardPrefixes) as the initial prefix environment; PREFIX
// declarations in the query extend or override it.
func Parse(query string) (*Query, error) {
	return ParseWithPrefixes(query, rdf.StandardPrefixes())
}

// ParseWithPrefixes parses a SPARQL query with a caller-supplied prefix
// environment. The map is copied before applying in-query PREFIX
// declarations.
func ParseWithPrefixes(query string, prefixes *rdf.PrefixMap) (*Query, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	pm := rdf.NewPrefixMap()
	for _, p := range prefixes.Prefixes() {
		base, _ := prefixes.Base(p)
		pm.Add(p, base)
	}
	p := &parser{toks: toks, prefixes: pm}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses a query and panics on error; for tests and examples.
func MustParse(query string) *Query {
	q, err := Parse(query)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks     []token
	pos      int
	prefixes *rdf.PrefixMap
}

func (p *parser) peek() token { return p.toks[p.pos] }

// take consumes and returns the current token. The trailing EOF token
// is never consumed, so peek stays in bounds on any malformed input.
func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: near position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && keywordEq(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) query() (*Query, error) {
	for p.keyword("PREFIX") {
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	q := &Query{Limit: -1}
	switch {
	case p.keyword("SELECT"):
		q.Form = SelectForm
		if p.keyword("DISTINCT") {
			q.Distinct = true
		}
		if p.punct("*") {
			// all vars
		} else {
			for p.peek().kind == tokVar {
				q.Vars = append(q.Vars, p.take().text)
			}
			if len(q.Vars) == 0 {
				return nil, p.errf("SELECT needs * or at least one variable")
			}
		}
	case p.keyword("ASK"):
		q.Form = AskForm
	default:
		return nil, p.errf("expected SELECT or ASK, got %q", p.peek().text)
	}
	// WHERE is optional before '{' per the grammar
	p.keyword("WHERE")
	g, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = g

	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			key, ok, err := p.orderKey()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.OrderBy = append(q.OrderBy, key)
		}
		if len(q.OrderBy) == 0 {
			return nil, p.errf("ORDER BY needs at least one key")
		}
	}
	// LIMIT and OFFSET in either order
	for {
		switch {
		case p.keyword("LIMIT"):
			if t := p.peek(); t.kind == tokVar {
				// "LIMIT $n": a template parameter slot.
				p.pos++
				q.LimitVar = t.text
			} else {
				n, err := p.integer()
				if err != nil {
					return nil, err
				}
				q.Limit = n
			}
		case p.keyword("OFFSET"):
			n, err := p.integer()
			if err != nil {
				return nil, err
			}
			q.Offset = n
		default:
			goto done
		}
	}
done:
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	if q.Form == SelectForm && len(q.Vars) == 0 {
		q.Vars = q.Where.AllVars()
	}
	return q, nil
}

func (p *parser) prefixDecl() error {
	t := p.peek()
	if t.kind != tokPName {
		return p.errf("expected prefix declaration name, got %q", t.text)
	}
	p.pos++
	// t.text is "prefix:" possibly with empty local part
	name := t.text
	if name[len(name)-1] != ':' {
		return p.errf("malformed PREFIX name %q", name)
	}
	iriTok := p.take()
	if iriTok.kind != tokIRI {
		return p.errf("expected IRI after PREFIX %q", name)
	}
	p.prefixes.Add(name[:len(name)-1], iriTok.text)
	return nil
}

func (p *parser) integer() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	if n < 0 {
		return 0, p.errf("expected non-negative integer, got %d", n)
	}
	return n, nil
}

func (p *parser) orderKey() (OrderKey, bool, error) {
	switch {
	case p.keyword("ASC"):
		e, err := p.parenExpr()
		return OrderKey{Expr: e}, true, err
	case p.keyword("DESC"):
		e, err := p.parenExpr()
		return OrderKey{Expr: e, Desc: true}, true, err
	}
	t := p.peek()
	if t.kind == tokVar {
		p.pos++
		return OrderKey{Expr: exVar{name: t.text}}, true, nil
	}
	if t.kind == tokIdent {
		if _, _, ok := knownFunction(upper(t.text)); ok {
			e, err := p.primaryExpr()
			return OrderKey{Expr: e}, true, err
		}
	}
	return OrderKey{}, false, nil
}

func (p *parser) parenExpr() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) groupPattern() (*GroupPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	for {
		if p.punct("}") {
			return g, nil
		}
		if p.atEOF() {
			return nil, p.errf("unterminated group pattern")
		}
		if p.keyword("FILTER") {
			f, err := p.filter()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, f)
			p.punct(".") // optional separator
			continue
		}
		tp, err := p.triplePattern()
		if err != nil {
			return nil, err
		}
		g.Triples = append(g.Triples, tp)
		// property-object list shorthand: s p1 o1 ; p2 o2 .
		for p.punct(";") {
			if p.peek().kind == tokPunct && (p.peek().text == "." || p.peek().text == "}") {
				break
			}
			pt, err := p.patternTerm(false)
			if err != nil {
				return nil, err
			}
			ot, err := p.patternTerm(true)
			if err != nil {
				return nil, err
			}
			g.Triples = append(g.Triples, TriplePattern{S: tp.S, P: pt, O: ot})
		}
		p.punct(".") // optional trailing separator
	}
}

func (p *parser) filter() (Expr, error) {
	// FILTER EXISTS { ... } | FILTER NOT EXISTS { ... } | FILTER ( expr ) |
	// FILTER builtinCall
	if p.keyword("EXISTS") {
		g, err := p.groupPattern()
		if err != nil {
			return nil, err
		}
		return exExists{group: g}, nil
	}
	if p.keyword("NOT") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		g, err := p.groupPattern()
		if err != nil {
			return nil, err
		}
		return exExists{negate: true, group: g}, nil
	}
	if p.peek().kind == tokPunct && p.peek().text == "(" {
		return p.parenExpr()
	}
	return p.primaryExpr()
}

func (p *parser) triplePattern() (TriplePattern, error) {
	s, err := p.patternTerm(false)
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.patternTerm(false)
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.patternTerm(true)
	if err != nil {
		return TriplePattern{}, err
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

// patternTerm parses one position of a triple pattern. allowLiteral
// permits literal objects.
func (p *parser) patternTerm(allowLiteral bool) (PatternTerm, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.pos++
		return Variable(t.text), nil
	case tokIRI:
		p.pos++
		return Concrete(rdf.NewIRI(t.text)), nil
	case tokPName:
		p.pos++
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return PatternTerm{}, p.errf("%v", err)
		}
		return Concrete(rdf.NewIRI(iri)), nil
	case tokIdent:
		// 'a' is rdf:type shorthand
		if t.text == "a" {
			p.pos++
			return Concrete(rdf.NewIRI(rdf.RDFType)), nil
		}
		return PatternTerm{}, p.errf("unexpected identifier %q in triple pattern", t.text)
	case tokString:
		if !allowLiteral {
			return PatternTerm{}, p.errf("literal not allowed in this position")
		}
		p.pos++
		lit, err := p.literalTail(t.text)
		if err != nil {
			return PatternTerm{}, err
		}
		return Concrete(lit), nil
	case tokNumber:
		if !allowLiteral {
			return PatternTerm{}, p.errf("literal not allowed in this position")
		}
		p.pos++
		dt := rdf.XSDInteger
		for _, c := range t.text {
			if c == '.' {
				dt = rdf.XSDDecimal
			}
		}
		return Concrete(rdf.NewTypedLiteral(t.text, dt)), nil
	default:
		return PatternTerm{}, p.errf("unexpected token %q in triple pattern", t.text)
	}
}

// literalTail parses the optional @lang / ^^<dt> suffix after a string.
func (p *parser) literalTail(lex string) (rdf.Term, error) {
	if p.punct("@") {
		t := p.take()
		if t.kind != tokIdent {
			return rdf.Term{}, p.errf("expected language tag")
		}
		return rdf.NewLangLiteral(lex, t.text), nil
	}
	if p.punct("^^") {
		t := p.take()
		switch t.kind {
		case tokIRI:
			return rdf.NewTypedLiteral(lex, t.text), nil
		case tokPName:
			iri, err := p.prefixes.Expand(t.text)
			if err != nil {
				return rdf.Term{}, p.errf("%v", err)
			}
			return rdf.NewTypedLiteral(lex, iri), nil
		default:
			return rdf.Term{}, p.errf("expected datatype IRI")
		}
	}
	return rdf.NewLiteral(lex), nil
}

// expr parses a full boolean expression with precedence:
// || < && < comparison < unary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.punct("||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = exOr{l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.punct("&&") {
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = exAnd{l: l, r: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return exCompare{op: t.text, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.punct("!") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return exNot{arg: e}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			return p.parenExpr()
		}
	case tokVar:
		p.pos++
		return exVar{name: t.text}, nil
	case tokNumber:
		p.pos++
		return exNum{n: t.num}, nil
	case tokString:
		p.pos++
		lit, err := p.literalTail(t.text)
		if err != nil {
			return nil, err
		}
		return exConst{t: lit}, nil
	case tokIRI:
		p.pos++
		return exConst{t: rdf.NewIRI(t.text)}, nil
	case tokPName:
		p.pos++
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return exConst{t: rdf.NewIRI(iri)}, nil
	case tokIdent:
		name := upper(t.text)
		if keywordEq(name, "TRUE") {
			p.pos++
			return exBool{b: true}, nil
		}
		if keywordEq(name, "FALSE") {
			p.pos++
			return exBool{b: false}, nil
		}
		if keywordEq(name, "NOT") {
			// NOT EXISTS {...} inside a larger expression
			p.pos++
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			g, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			return exExists{negate: true, group: g}, nil
		}
		if keywordEq(name, "EXISTS") {
			p.pos++
			g, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			return exExists{group: g}, nil
		}
		if minA, maxA, ok := knownFunction(name); ok {
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var args []Expr
			if !p.punct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.punct(",") {
						continue
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			if len(args) < minA || len(args) > maxA {
				return nil, p.errf("%s takes %d..%d arguments, got %d", name, minA, maxA, len(args))
			}
			return exCall{name: name, args: args}, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
