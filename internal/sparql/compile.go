package sparql

import (
	"fmt"
	"strings"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// compile.go is the middle stage of the parse → compile → exec
// pipeline: it turns a parsed Query (or Template) into a Prepared —
// a slot-addressed plan in which variables are integer registers,
// constants are resolved to term IDs, and parameters are argument
// positions. A Prepared is immutable and reusable; join ordering is
// finalized per execution (plan.go) because it depends on the argument
// values' cardinalities.

// cterm is one compiled triple-pattern position: a register slot or an
// index into the execution's resolved-constant table.
type cterm struct {
	isVar bool
	slot  int32 // register index, when isVar
	res   int32 // resolved-value index, when !isVar
}

// cpattern is a compiled triple pattern.
type cpattern struct{ s, p, o cterm }

// cfilter is a compiled filter: the lowered closure chain (cexpr.go)
// plus the register slots it reads, for cost-free attachment during
// planning. expr keeps the source AST for RAND detection and shape
// diagnostics; the hot loop only calls pred.
type cfilter struct {
	expr     Expr
	pred     cpred
	deps     []int32
	unplaced bool // reads a variable no pattern ever binds
	exists   bool // top-level [NOT] EXISTS: attaches after the last step
}

// cgroup is a compiled basic graph pattern.
type cgroup struct {
	pats    []cpattern
	filters []cfilter
}

// paramSpec describes one declared parameter of a compiled template.
type paramSpec struct {
	name  string
	isInt bool
}

// Prepared is a query compiled against an Engine's KB. It may carry
// parameters (compiled from a Template, or lifted from a concrete
// query's constants by the engine's plan cache), in which case Exec
// binds them positionally. A Prepared is safe for concurrent Exec.
type Prepared struct {
	eng      *Engine
	form     Form
	distinct bool
	vars     []string
	projSlot []int32
	projOK   bool // every projected variable is bound by the main pattern
	nslots   int
	slots    map[string]int32
	main     *cgroup
	mainBind []bool // slots bound by the main group's patterns
	orderBy  []OrderKey
	// orderKeys are the lowered ORDER BY expressions, one per orderBy
	// entry, evaluated per surviving row; orderDesc are their Desc
	// flags, in the form CompareKeys consumes.
	orderKeys []cexpr
	orderDesc []bool
	limit     int
	offset    int

	params      []paramSpec
	constTerms  []rdf.Term // resolved values [len(params):] in exec order
	limitParam  int32      // parameter index for LIMIT, or -1
	offsetParam int32      // parameter index for OFFSET (lifted plans), or -1

	// usesRand marks queries whose results depend on the RAND() stream;
	// they are planned with the reference greedy order so that the
	// per-row draw sequence — and therefore the output bytes — match
	// the tree-walking evaluator exactly.
	usesRand bool
	// orderTotal marks ORDER BY key lists whose values are totally
	// ordered on every row (currently: every key is numeric by
	// construction, like RAND()). Only then is the bounded top-k
	// selection provably equal to the reference stable sort; mixed
	// comparable/incomparable keys make the comparator non-transitive,
	// so those queries take the materialize-and-stable-sort path.
	orderTotal bool

	text string    // canonical text, when the plan has no parameters
	tmpl *Template // source template, when compiled from one
}

// Template returns the template this plan was compiled from, or nil.
func (p *Prepared) Template() *Template { return p.tmpl }

// compiler carries state across the two compile passes.
type compiler struct {
	eng      *Engine
	q        *Query
	lift     bool
	paramIdx map[string]int // template parameter name → position
	params   []paramSpec
	consts   []rdf.Term
	slots    map[string]int32
	exists   map[*GroupPattern]*cgroup
	groups   []*cgroup
	err      error
}

// compile builds a Prepared. Exactly one of tmpl/lift modes may be
// active; with both zero it compiles the concrete query.
func (e *Engine) compile(q *Query, tmpl *Template, lift bool) (*Prepared, error) {
	if q.Where == nil {
		return nil, fmt.Errorf("sparql: query has no WHERE pattern")
	}
	if q.Form != SelectForm && q.Form != AskForm {
		return nil, fmt.Errorf("sparql: unsupported query form %d", q.Form)
	}
	c := &compiler{
		eng:      e,
		q:        q,
		lift:     lift,
		paramIdx: map[string]int{},
		slots:    map[string]int32{},
		exists:   map[*GroupPattern]*cgroup{},
	}
	if tmpl != nil {
		for i, name := range tmpl.params {
			c.paramIdx[name] = i
			c.params = append(c.params, paramSpec{name: name, isInt: tmpl.isInt[i]})
		}
	}

	// Pass 1: assign register slots to every pattern variable, in
	// deterministic traversal order across the main group and all
	// EXISTS subgroups.
	c.assignSlots(q.Where)

	p := &Prepared{
		eng:         e,
		form:        q.Form,
		distinct:    q.Distinct,
		vars:        q.Vars,
		orderBy:     q.OrderBy,
		limit:       q.Limit,
		offset:      q.Offset,
		limitParam:  -1,
		offsetParam: -1,
		tmpl:        tmpl,
	}

	// Pass 2: compile pattern terms and filters.
	p.main = c.group(q.Where)
	if c.err != nil {
		return nil, c.err
	}
	p.slots = c.slots
	p.nslots = len(c.slots)
	p.params = c.params
	p.constTerms = c.consts

	// LIMIT / OFFSET parameters.
	switch {
	case q.LimitVar != "" && tmpl != nil:
		i, ok := c.paramIdx[q.LimitVar]
		if !ok || !tmpl.isInt[i] {
			return nil, fmt.Errorf("sparql: LIMIT $%s is not an integer parameter", q.LimitVar)
		}
		p.limitParam = int32(i)
	case q.LimitVar != "":
		return nil, fmt.Errorf("sparql: unbound LIMIT parameter $%s", q.LimitVar)
	case lift:
		p.limitParam = int32(len(c.params))
		c.params = append(c.params, paramSpec{isInt: true})
		p.offsetParam = int32(len(c.params))
		c.params = append(c.params, paramSpec{isInt: true})
		p.params = c.params
	}

	// Projection: which slots feed result rows. A projected variable
	// that the main pattern never binds drops every row (the reference
	// evaluator's behavior), decided statically here.
	p.mainBind = make([]bool, p.nslots)
	for _, tp := range p.main.pats {
		for _, ct := range []cterm{tp.s, tp.p, tp.o} {
			if ct.isVar {
				p.mainBind[ct.slot] = true
			}
		}
	}
	p.projOK = true
	if q.Form == SelectForm {
		p.projSlot = make([]int32, len(q.Vars))
		for i, v := range q.Vars {
			slot, ok := c.slots[v]
			if !ok || !p.mainBind[slot] {
				p.projOK = false
				p.projSlot[i] = -1
				continue
			}
			p.projSlot[i] = slot
		}
	}

	// RAND() anywhere forces reference-greedy planning (see plan.go).
	for _, g := range c.groups {
		for _, f := range g.filters {
			if exprUsesRand(f.expr) {
				p.usesRand = true
			}
		}
	}
	for _, k := range q.OrderBy {
		if exprUsesRand(k.Expr) {
			p.usesRand = true
		}
	}

	// Pass 3: lower filters and ORDER BY keys to slot-resolved closures
	// (cexpr.go). EXISTS lowering captures the compiled subgroup
	// directly, so this pass runs once the whole pattern tree exists.
	for _, g := range c.groups {
		for i := range g.filters {
			g.filters[i].pred = c.lowerPred(g.filters[i].expr)
		}
	}
	p.orderKeys = make([]cexpr, len(q.OrderBy))
	p.orderDesc = make([]bool, len(q.OrderBy))
	p.orderTotal = len(q.OrderBy) > 0
	for i, k := range q.OrderBy {
		p.orderKeys[i] = c.lowerExpr(k.Expr)
		p.orderDesc[i] = k.Desc
		if !exprAlwaysNumeric(k.Expr) {
			p.orderTotal = false
		}
	}

	if len(p.params) == 0 {
		p.text = q.String()
	}
	return p, nil
}

// assignSlots allocates registers for pattern variables in traversal
// order: triples of a group first (S, P, O), then each filter's EXISTS
// subgroups depth-first in syntactic order.
func (c *compiler) assignSlots(g *GroupPattern) {
	for _, tp := range g.Triples {
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if pt.IsVar {
				if _, isParam := c.paramIdx[pt.Var]; isParam {
					continue
				}
				if _, ok := c.slots[pt.Var]; !ok {
					c.slots[pt.Var] = int32(len(c.slots))
				}
			}
		}
	}
	for _, f := range g.Filters {
		eachExists(f, func(ex exExists) { c.assignSlots(ex.group) })
	}
}

// group compiles one basic graph pattern and, recursively, the EXISTS
// subgroups referenced by its filters.
func (c *compiler) group(g *GroupPattern) *cgroup {
	cg := &cgroup{}
	c.groups = append(c.groups, cg)
	for _, tp := range g.Triples {
		cg.pats = append(cg.pats, cpattern{c.term(tp.S), c.term(tp.P), c.term(tp.O)})
	}
	for _, f := range g.Filters {
		cf := cfilter{expr: f}
		if _, ok := f.(exExists); ok {
			cf.exists = true
		} else {
			for _, name := range exprVars(f) {
				slot, ok := c.slots[name]
				if !ok {
					cf.unplaced = true
					continue
				}
				cf.deps = append(cf.deps, slot)
			}
		}
		cg.filters = append(cg.filters, cf)
		eachExists(f, func(ex exExists) {
			if _, done := c.exists[ex.group]; !done {
				c.exists[ex.group] = nil // placeholder breaks self-recursion
				c.exists[ex.group] = c.group(ex.group)
			}
		})
	}
	return cg
}

// term compiles one triple-pattern position.
func (c *compiler) term(pt PatternTerm) cterm {
	if pt.IsVar {
		if i, isParam := c.paramIdx[pt.Var]; isParam {
			if c.params[i].isInt {
				c.err = fmt.Errorf("sparql: integer parameter $%s used in a triple pattern", pt.Var)
			}
			return cterm{res: int32(i)}
		}
		return cterm{isVar: true, slot: c.slots[pt.Var]}
	}
	if c.lift {
		// lifted plans turn every pattern constant into a parameter so
		// that structurally identical queries share one plan
		i := len(c.params)
		c.params = append(c.params, paramSpec{})
		return cterm{res: int32(i)}
	}
	i := int32(len(c.params)) + int32(len(c.consts))
	c.consts = append(c.consts, pt.Term)
	return cterm{res: i} // resolved table is params, then constants
}

// exprVars collects the variables mentioned by an expression (EXISTS
// subgroups are existential and excluded).
func exprVars(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case exVar:
			out = append(out, x.name)
		case exNot:
			walk(x.arg)
		case exAnd:
			walk(x.l)
			walk(x.r)
		case exOr:
			walk(x.l)
			walk(x.r)
		case exCompare:
			walk(x.l)
			walk(x.r)
		case exCall:
			for _, a := range x.args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// exprAlwaysNumeric reports whether the expression yields a numeric
// Value on every row regardless of bindings — the static guarantee
// under which ORDER BY comparison is a total order (numeric pairs are
// always comparable). RAND() and numeric literals qualify; anything
// value-dependent does not.
func exprAlwaysNumeric(e Expr) bool {
	switch x := e.(type) {
	case exNum:
		return true
	case exCall:
		return x.name == "RAND"
	default:
		return false
	}
}

// exprUsesRand reports whether the expression draws from the RAND()
// stream anywhere, including inside EXISTS subgroup filters.
func exprUsesRand(e Expr) bool {
	found := false
	var walk func(Expr)
	var walkGroup func(*GroupPattern)
	walkGroup = func(g *GroupPattern) {
		for _, f := range g.Filters {
			walk(f)
		}
	}
	walk = func(e Expr) {
		switch x := e.(type) {
		case exCall:
			if x.name == "RAND" {
				found = true
			}
			for _, a := range x.args {
				walk(a)
			}
		case exNot:
			walk(x.arg)
		case exAnd:
			walk(x.l)
			walk(x.r)
		case exOr:
			walk(x.l)
			walk(x.r)
		case exCompare:
			walk(x.l)
			walk(x.r)
		case exExists:
			walkGroup(x.group)
		}
	}
	walk(e)
	return found
}

// shapeKey serializes the structure of a query with pattern constants,
// LIMIT and OFFSET blanked out — the key of the engine's plan cache.
// Two queries with equal shapes compile to the same lifted plan and
// differ only in their extracted arguments.
func shapeKey(q *Query) string {
	var sb strings.Builder
	if q.Form == AskForm {
		sb.WriteString("A|")
	} else {
		sb.WriteString("S|")
	}
	if q.Distinct {
		sb.WriteString("D|")
	}
	for _, v := range q.Vars {
		sb.WriteString("?" + v + " ")
	}
	var writeGroupKey func(g *GroupPattern)
	writePT := func(pt PatternTerm) {
		if pt.IsVar {
			sb.WriteString("?" + pt.Var + " ")
		} else {
			sb.WriteString("\x00 ") // lifted constant
		}
	}
	writeGroupKey = func(g *GroupPattern) {
		sb.WriteString("{")
		for _, tp := range g.Triples {
			writePT(tp.S)
			writePT(tp.P)
			writePT(tp.O)
			sb.WriteString(".")
		}
		for _, f := range g.Filters {
			if ex, ok := f.(exExists); ok {
				if ex.negate {
					sb.WriteString("FNE")
				} else {
					sb.WriteString("FE")
				}
				writeGroupKey(ex.group)
				continue
			}
			sb.WriteString("F(" + f.String() + ")")
			eachExists(f, func(ex exExists) { writeGroupKey(ex.group) })
		}
		sb.WriteString("}")
	}
	writeGroupKey(q.Where)
	for _, k := range q.OrderBy {
		if k.Desc {
			sb.WriteString("OD(")
		} else {
			sb.WriteString("OA(")
		}
		sb.WriteString(k.Expr.String() + ")")
	}
	sb.WriteString("|L$|O$")
	return sb.String()
}

// liftArgs extracts, in compile traversal order, the argument values of
// a concrete query for its lifted plan: every pattern constant, then
// LIMIT and OFFSET.
func liftArgs(q *Query, out []Arg) []Arg {
	var walkGroup func(g *GroupPattern)
	walkGroup = func(g *GroupPattern) {
		for _, tp := range g.Triples {
			for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
				if !pt.IsVar {
					out = append(out, TermArg(pt.Term))
				}
			}
		}
		for _, f := range g.Filters {
			eachExists(f, func(ex exExists) { walkGroup(ex.group) })
		}
	}
	walkGroup(q.Where)
	out = append(out, IntArg(q.Limit), IntArg(q.Offset))
	return out
}

// resolve builds the execution's resolved-value table: parameter
// values first (in declaration order), then the plan's own constants.
// Unknown terms resolve to NoTerm, which simply matches nothing.
func (p *Prepared) resolve(args []Arg) []kb.TermID {
	res := make([]kb.TermID, len(p.params)+len(p.constTerms))
	k := p.eng.kb
	for i, a := range args {
		if p.params[i].isInt {
			res[i] = kb.NoTerm
			continue
		}
		res[i] = k.Lookup(a.term)
	}
	for i, t := range p.constTerms {
		res[len(p.params)+i] = k.Lookup(t)
	}
	return res
}

// checkArgs validates Exec arguments against the plan's parameters.
func (p *Prepared) checkArgs(args []Arg) error {
	if len(args) != len(p.params) {
		return fmt.Errorf("sparql: prepared query needs %d args, got %d", len(p.params), len(args))
	}
	for i, a := range args {
		if a.isInt != p.params[i].isInt {
			return fmt.Errorf("sparql: prepared arg %d has the wrong kind", i)
		}
	}
	return nil
}
