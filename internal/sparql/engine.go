package sparql

import (
	"container/list"
	"fmt"
	"sync"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// Result is the outcome of evaluating a query.
type Result struct {
	// Vars are the projected variable names, in projection order.
	Vars []string
	// Rows hold one term per projected variable. A row never contains
	// zero terms for SELECT results produced by this engine (all
	// projected variables are bound by the BGP or the row is dropped).
	Rows [][]rdf.Term
	// Ask is the boolean answer for ASK queries.
	Ask bool
	// Truncated is set by access-limited endpoints when the row cap
	// cut the result short. The engine itself never sets it.
	Truncated bool
}

// Bindings returns row i as a var→term map.
func (r *Result) Bindings(i int) map[string]rdf.Term {
	m := make(map[string]rdf.Term, len(r.Vars))
	for j, v := range r.Vars {
		m[v] = r.Rows[i][j]
	}
	return m
}

// Column returns the index of variable v in the projection, or -1.
func (r *Result) Column(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// maxCachedPlans bounds the engine's compiled-plan cache. Workloads
// like the SOFYA aligner issue thousands of queries drawn from a
// handful of shapes, so a small LRU captures effectively all of them.
const maxCachedPlans = 256

// Engine evaluates parsed queries against a KB through a three-stage
// pipeline: parse → compile (slot-addressed plan, constants lifted) →
// exec (register-file joins). Compiled plans are cached under an LRU
// bound keyed by query shape, so repeated queries that differ only in
// their constants re-plan nothing; Prepare skips parsing too.
//
// An Engine is safe for concurrent use. RAND() is deterministic and
// order-independent: each execution draws from a PRNG derived from the
// engine seed and a fingerprint of the canonical query text, so a given
// query sees the same random stream under a given seed no matter which
// other queries ran before or are running concurrently — and no matter
// whether it arrived as text or through a prepared template. This is
// what lets caching and coalescing endpoint decorators, and parallel
// aligners, reproduce the sequential results byte for byte.
type Engine struct {
	kb   *kb.KB
	seed int64

	mu    sync.Mutex
	plans map[string]*list.Element
	order *list.List // front = most recently used
}

type planEntry struct {
	key  string
	plan *Prepared
}

// NewEngine returns an engine over k with seed 1.
func NewEngine(k *kb.KB) *Engine { return NewEngineSeeded(k, 1) }

// NewEngineSeeded returns an engine with an explicit RAND() seed.
func NewEngineSeeded(k *kb.KB, seed int64) *Engine {
	return &Engine{kb: k, seed: seed, plans: make(map[string]*list.Element), order: list.New()}
}

// KB returns the underlying knowledge base.
func (e *Engine) KB() *kb.KB { return e.kb }

// EvalString parses and evaluates a query.
func (e *Engine) EvalString(query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Eval(q)
}

// Eval evaluates a parsed query: its shape is compiled (or fetched from
// the plan cache) and executed with the query's constants as arguments.
func (e *Engine) Eval(q *Query) (*Result, error) {
	p, err := e.planFor(q)
	if err != nil {
		return nil, err
	}
	args := liftArgs(q, make([]Arg, 0, len(p.params)))
	var text string
	textFn := func() string {
		if text == "" {
			text = q.String()
		}
		return text
	}
	return p.exec(args, textFn)
}

// Prepare compiles a template into a reusable, parameterized plan —
// the fast path for hot query shapes: no parsing, no planning, no
// string interpolation per call.
func (e *Engine) Prepare(t *Template) (*Prepared, error) {
	return e.compile(t.q, t, false)
}

// planFor returns the cached lifted plan for q's shape, compiling and
// inserting it on a miss.
func (e *Engine) planFor(q *Query) (*Prepared, error) {
	if q.Where == nil {
		return nil, fmt.Errorf("sparql: query has no WHERE pattern")
	}
	key := shapeKey(q)
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.plans[key]; ok {
		e.order.MoveToFront(el)
		return el.Value.(*planEntry).plan, nil
	}
	p, err := e.compile(q, nil, true)
	if err != nil {
		return nil, err
	}
	e.plans[key] = e.order.PushFront(&planEntry{key: key, plan: p})
	for e.order.Len() > maxCachedPlans {
		last := e.order.Back()
		e.order.Remove(last)
		delete(e.plans, last.Value.(*planEntry).key)
	}
	return p, nil
}

// CachedPlans reports how many compiled plans the engine currently
// holds, for tests and diagnostics.
func (e *Engine) CachedPlans() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.plans)
}
