package sparql

import (
	"fmt"
	"sync"
	"testing"

	"sofya/internal/kb"
	"sofya/internal/synth"
)

func streamTestKB() *kb.KB {
	k := kb.New("stream")
	for i := 0; i < 12; i++ {
		k.AddIRIs(fmt.Sprintf("http://x/s%02d", i), "http://x/p", fmt.Sprintf("http://x/o%02d", i%5))
	}
	k.AddIRIs("http://x/s00", "http://x/q", "http://x/o00")
	k.Freeze()
	return k
}

// TestRowIterBasics exercises the iterator protocol: Vars, exhaustion,
// idempotent Close, Err on bad queries, and ASK rejection.
func TestRowIterBasics(t *testing.T) {
	e := NewEngine(streamTestKB())

	it, err := e.StreamString("SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY ?s ?o")
	if err != nil {
		t.Fatal(err)
	}
	if got := it.Vars(); len(got) != 2 || got[0] != "s" || got[1] != "o" {
		t.Fatalf("Vars = %v", got)
	}
	n := 0
	for it.Next() {
		if len(it.Row()) != 2 {
			t.Fatalf("row width = %d", len(it.Row()))
		}
		n++
	}
	if n != 12 {
		t.Fatalf("streamed %d rows, want 12", n)
	}
	if it.Err() != nil {
		t.Fatalf("Err = %v", it.Err())
	}
	if it.Next() {
		t.Fatal("Next after exhaustion")
	}
	it.Close() // idempotent after exhaustion

	if _, err := e.StreamString("ASK { ?s <http://x/p> ?o }"); err == nil {
		t.Fatal("Stream accepted an ASK query")
	}
	if _, err := e.StreamString("SELECT ?s WHERE { broken"); err == nil {
		t.Fatal("Stream accepted an unparsable query")
	}
}

// TestRowIterEarlyClose proves closing mid-result aborts cleanly and a
// second iterator is unaffected.
func TestRowIterEarlyClose(t *testing.T) {
	e := NewEngine(streamTestKB())
	const q = "SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY ?s ?o"
	want, err := e.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	it, err := e.StreamString(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !it.Next() {
			t.Fatalf("stream ended at row %d", i)
		}
		for c := range it.Row() {
			if it.Row()[c] != want.Rows[i][c] {
				t.Fatalf("row %d col %d differs", i, c)
			}
		}
	}
	it.Close()
	if it.Next() {
		t.Fatal("Next after Close")
	}
	if it.Err() != nil {
		t.Fatalf("Err after Close = %v", it.Err())
	}
	it2, err := e.StreamString(q)
	if err := rowsEqual(want, drainIter(t, it2, err)); err != nil {
		t.Fatalf("second stream differs: %v", err)
	}
}

// TestRowIterLimitSpan checks streamed LIMIT handling at the span edges
// on both the unordered early-exit path and the bounded ordered path.
func TestRowIterLimitSpan(t *testing.T) {
	e := NewEngine(streamTestKB())
	for _, limit := range []int{0, 1, 5, 1000} {
		for _, shape := range []string{
			"SELECT ?s ?o WHERE { ?s <http://x/p> ?o } LIMIT %d",
			"SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY ?s ?o LIMIT %d",
			"SELECT ?s ?o WHERE { ?s <http://x/p> ?o } ORDER BY RAND() LIMIT %d",
			"SELECT DISTINCT ?o WHERE { ?s <http://x/p> ?o } ORDER BY DESC(?o) LIMIT %d OFFSET 1",
		} {
			q := fmt.Sprintf(shape, limit)
			want, err := e.EvalString(q)
			if err != nil {
				t.Fatal(err)
			}
			it, err := e.StreamString(q)
			if err := rowsEqual(want, drainIter(t, it, err)); err != nil {
				t.Fatalf("streamed %q differs: %v", q, err)
			}
		}
	}
}

// TestConcurrentIterators runs many goroutines pulling independent
// iterators — text and prepared — from one shared Engine over a frozen
// synth KB, each asserting byte-identical rows to the sequential drain.
// Some goroutines close early to exercise abort under contention. Run
// with -race.
func TestConcurrentIterators(t *testing.T) {
	spec := synth.TinySpec()
	w := synth.Generate(spec)
	k := w.Yago
	k.Freeze()
	e := NewEngineSeeded(k, 42)

	rels := k.Relations()
	var queries []string
	for i := 0; i < 6 && i < len(rels); i++ {
		r := k.Term(rels[i]).Value
		queries = append(queries,
			fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y } ORDER BY RAND() LIMIT 19", r),
			fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%s> ?y . FILTER (STRLEN(STR(?y)) > 3) } LIMIT 7", r),
			fmt.Sprintf("SELECT DISTINCT ?x WHERE { ?x <%s> ?y } ORDER BY ?x", r),
		)
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := e.EvalString(q)
		if err != nil {
			t.Fatalf("eval %q: %v", q, err)
		}
		want[i] = res
	}

	tmpl := MustParseTemplate("SELECT ?x ?y WHERE { ?x $r ?y } ORDER BY RAND() LIMIT $n", "r", "n")
	prep, err := e.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	prepWant, err := prep.Exec(IRIArg(k.Term(rels[0]).Value), IntArg(23))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*(len(queries)+2))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, q := range queries {
				it, err := e.StreamString(q)
				if err != nil {
					errs <- err
					return
				}
				if g%3 == 0 && len(want[i].Rows) > 1 {
					// early closer: check the first row then abandon
					if !it.Next() {
						errs <- fmt.Errorf("%q: empty stream, want %d rows", q, len(want[i].Rows))
						it.Close()
						continue
					}
					for c := range it.Row() {
						if it.Row()[c] != want[i].Rows[0][c] {
							errs <- fmt.Errorf("%q: first row differs", q)
						}
					}
					it.Close()
					continue
				}
				got := &Result{Vars: it.Vars()}
				for it.Next() {
					got.Rows = append(got.Rows, it.Row())
				}
				if err := it.Err(); err != nil {
					errs <- err
					continue
				}
				if err := rowsEqual(want[i], got); err != nil {
					errs <- fmt.Errorf("%q: %v", q, err)
				}
			}
			it, err := prep.Iter(IRIArg(k.Term(rels[0]).Value), IntArg(23))
			if err != nil {
				errs <- err
				return
			}
			got := &Result{Vars: it.Vars()}
			for it.Next() {
				got.Rows = append(got.Rows, it.Row())
			}
			if err := rowsEqual(prepWant, got); err != nil {
				errs <- fmt.Errorf("prepared stream: %v", err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
