package sparql

import (
	"math/rand"
	"regexp"

	"sofya/internal/kb"
	"sofya/internal/rdf"
)

// cexpr.go lowers filter and ORDER BY expressions into closure chains at
// compile time, so the hot join loop never walks an AST or resolves a
// variable name: variables are pre-resolved to register slots, constants
// are folded to Values once, and EXISTS subgroups become probes over
// their pre-compiled cgroups. The lowered closures evaluate against the
// execution's register file with exactly the semantics of Expr.eval over
// an execState — which is what keeps compiled, streamed, and reference
// results byte-identical.

// cexpr is a compiled expression: it evaluates against one execution's
// register file. Closures are immutable and shared by concurrent
// executions of the same Prepared.
type cexpr func(ex *execState) Value

// cpred is a compiled filter predicate — the effective boolean value of
// a lowered expression, as the join loop consumes it.
type cpred func(ex *execState) (ok, valid bool)

// lowerPred lowers a filter expression to its EBV form.
func (c *compiler) lowerPred(e Expr) cpred {
	f := c.lowerExpr(e)
	return func(ex *execState) (bool, bool) { return f(ex).EBV() }
}

// constEnv evaluates constant subtrees at compile time. Lowering only
// uses it on expressions without variables, BOUND, RAND or EXISTS, so
// none of its methods are ever reached.
type constEnv struct{}

func (constEnv) lookupVar(string) (rdf.Term, bool)      { return rdf.Term{}, false }
func (constEnv) rng() *rand.Rand                        { return nil }
func (constEnv) evalExists(*GroupPattern) (bool, error) { return false, nil }

// isConstExpr reports whether e evaluates to the same Value on every
// row: no variables, no randomness, no pattern probes.
func isConstExpr(e Expr) bool {
	switch x := e.(type) {
	case exConst, exNum, exBool:
		return true
	case exNot:
		return isConstExpr(x.arg)
	case exAnd:
		return isConstExpr(x.l) && isConstExpr(x.r)
	case exOr:
		return isConstExpr(x.l) && isConstExpr(x.r)
	case exCompare:
		return isConstExpr(x.l) && isConstExpr(x.r)
	case exCall:
		if x.name == "RAND" || x.name == "BOUND" {
			return false
		}
		for _, a := range x.args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	default: // exVar, exExists
		return false
	}
}

// lowerExpr compiles e into a closure over the register file.
func (c *compiler) lowerExpr(e Expr) cexpr {
	if isConstExpr(e) {
		v := e.eval(constEnv{})
		return func(*execState) Value { return v }
	}
	switch x := e.(type) {
	case exVar:
		slot, ok := c.slots[x.name]
		if !ok {
			// a variable no pattern binds: unbound on every row
			return func(*execState) Value { return errValue() }
		}
		return func(ex *execState) Value {
			id := ex.regs[slot]
			if id == kb.NoTerm {
				return errValue()
			}
			return termValue(ex.k.Term(id))
		}
	case exNot:
		arg := c.lowerExpr(x.arg)
		return func(ex *execState) Value {
			b, ok := arg(ex).EBV()
			if !ok {
				return errValue()
			}
			return boolValue(!b)
		}
	case exAnd:
		l, r := c.lowerExpr(x.l), c.lowerExpr(x.r)
		return func(ex *execState) Value {
			lb, lok := l(ex).EBV()
			if lok && !lb {
				return boolValue(false)
			}
			rb, rok := r(ex).EBV()
			if rok && !rb {
				return boolValue(false)
			}
			if !lok || !rok {
				return errValue()
			}
			return boolValue(true)
		}
	case exOr:
		l, r := c.lowerExpr(x.l), c.lowerExpr(x.r)
		return func(ex *execState) Value {
			lb, lok := l(ex).EBV()
			if lok && lb {
				return boolValue(true)
			}
			rb, rok := r(ex).EBV()
			if rok && rb {
				return boolValue(true)
			}
			if !lok || !rok {
				return errValue()
			}
			return boolValue(false)
		}
	case exCompare:
		return c.lowerCompare(x)
	case exCall:
		return c.lowerCall(x)
	case exExists:
		cg := c.exists[x.group]
		neg := x.negate
		return func(ex *execState) Value {
			found, err := ex.runExists(cg)
			if err != nil {
				return errValue()
			}
			if neg {
				found = !found
			}
			return boolValue(found)
		}
	default:
		// unreachable with the current parser; evaluate conservatively
		return func(*execState) Value { return errValue() }
	}
}

// lowerCompare dispatches the comparison operator once at compile time.
func (c *compiler) lowerCompare(x exCompare) cexpr {
	l, r := c.lowerExpr(x.l), c.lowerExpr(x.r)
	switch x.op {
	case "=", "!=":
		neq := x.op == "!="
		return func(ex *execState) Value {
			lv, rv := l(ex), r(ex)
			if lv.IsErr() || rv.IsErr() {
				return errValue()
			}
			eq, ok := valuesEqual(lv, rv)
			if !ok {
				return errValue()
			}
			if neq {
				eq = !eq
			}
			return boolValue(eq)
		}
	}
	var test func(c int) bool
	switch x.op {
	case "<":
		test = func(c int) bool { return c < 0 }
	case "<=":
		test = func(c int) bool { return c <= 0 }
	case ">":
		test = func(c int) bool { return c > 0 }
	case ">=":
		test = func(c int) bool { return c >= 0 }
	default:
		return func(*execState) Value { return errValue() }
	}
	return func(ex *execState) Value {
		lv, rv := l(ex), r(ex)
		if lv.IsErr() || rv.IsErr() {
			return errValue()
		}
		cmp, ok := valuesOrder(lv, rv)
		if !ok {
			return errValue()
		}
		return boolValue(test(cmp))
	}
}

// lowerCall compiles a builtin call: BOUND and RAND read the execution
// state directly, the hottest unary predicates are inlined, REGEX with a
// constant pattern precompiles its automaton, and the rest evaluate
// their lowered arguments strictly and share callBuiltin with the
// reference evaluator.
func (c *compiler) lowerCall(x exCall) cexpr {
	switch x.name {
	case "BOUND":
		v, ok := x.args[0].(exVar)
		if !ok {
			return func(*execState) Value { return errValue() }
		}
		slot, ok := c.slots[v.name]
		if !ok {
			return func(*execState) Value { return boolValue(false) }
		}
		return func(ex *execState) Value {
			return boolValue(ex.regs[slot] != kb.NoTerm)
		}
	case "RAND":
		return func(ex *execState) Value {
			return numValue(ex.rng().Float64())
		}
	case "ISIRI", "ISURI":
		a := c.lowerExpr(x.args[0])
		return func(ex *execState) Value {
			v := a(ex)
			if v.IsErr() {
				return errValue()
			}
			return boolValue(v.kind == vTerm && v.t.IsIRI())
		}
	case "ISLITERAL":
		a := c.lowerExpr(x.args[0])
		return func(ex *execState) Value {
			v := a(ex)
			if v.IsErr() {
				return errValue()
			}
			return boolValue(v.kind == vTerm && v.t.IsLiteral())
		}
	case "ISBLANK":
		a := c.lowerExpr(x.args[0])
		return func(ex *execState) Value {
			v := a(ex)
			if v.IsErr() {
				return errValue()
			}
			return boolValue(v.kind == vTerm && v.t.IsBlank())
		}
	case "REGEX":
		if re, ok := c.constRegex(x); ok {
			a := c.lowerExpr(x.args[0])
			return func(ex *execState) Value {
				v := a(ex)
				if v.IsErr() {
					return errValue()
				}
				text, ok := v.asString()
				if !ok || re == nil {
					return errValue()
				}
				return boolValue(re.MatchString(text))
			}
		}
	}
	args := make([]cexpr, len(x.args))
	for i, a := range x.args {
		args[i] = c.lowerExpr(a)
	}
	name := x.name
	return func(ex *execState) Value {
		vals := make([]Value, len(args))
		for i, a := range args {
			vals[i] = a(ex)
			if vals[i].IsErr() {
				return errValue()
			}
		}
		return callBuiltin(name, vals)
	}
}

// constRegex precompiles REGEX's automaton when the pattern (and flags,
// if present) are constant. ok=false falls back to per-row compilation;
// ok=true with re=nil preserves the always-error behavior of an invalid
// or non-string constant pattern.
func (c *compiler) constRegex(x exCall) (re *regexp.Regexp, ok bool) {
	if !isConstExpr(x.args[1]) || (len(x.args) > 2 && !isConstExpr(x.args[2])) {
		return nil, false
	}
	pv := x.args[1].eval(constEnv{})
	pat, ok := pv.asString()
	if !ok {
		return nil, true
	}
	var flags string
	if len(x.args) > 2 {
		flags, _ = x.args[2].eval(constEnv{}).asString()
	}
	compiled, err := compileRegex(pat, flags)
	if err != nil {
		return nil, true
	}
	return compiled, true
}
