package loadtest

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// The exact region: every nanosecond value below 2*subCount gets its
// own bucket, so sub-microsecond latencies are not smeared together.
func TestBucketExactRegion(t *testing.T) {
	for v := int64(0); v < subCount*2; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
		if got := bucketBound(int(v)); got != v {
			t.Fatalf("bucketBound(%d) = %d, want exact", v, got)
		}
	}
}

// Bucket boundaries are exact: the bound of bucket i maps back to i,
// and the next value up maps to i+1 — no value falls between buckets,
// none is claimed by two.
func TestBucketBoundaryExactness(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		b := bucketBound(i)
		if got := bucketIndex(b); got != i {
			t.Fatalf("bucketIndex(bucketBound(%d)=%d) = %d", i, b, got)
		}
		if b < math.MaxInt64 {
			if got := bucketIndex(b + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d+1) = %d, want %d", b, got, i+1)
			}
		}
	}
	if got := bucketIndex(math.MaxInt64); got != numBuckets-1 {
		t.Fatalf("MaxInt64 bucket = %d, want %d", got, numBuckets-1)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative bucket = %d, want 0", got)
	}
}

// The bucketing's relative error stays under the design bound: the
// bucket bound overestimates a recorded value by at most 1/subCount.
func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 100000; n++ {
		v := rng.Int63()
		b := bucketBound(bucketIndex(v))
		if b < v {
			t.Fatalf("bound %d below value %d", b, v)
		}
		if rel := float64(b-v) / float64(v+1); rel > 1.0/subCount {
			t.Fatalf("relative error %f for value %d (bound %d)", rel, v, b)
		}
	}
}

func TestQuantileMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Hist
	for i := 0; i < 50000; i++ {
		// Log-uniform latencies: nanoseconds to seconds.
		h.Record(time.Duration(math.Exp(rng.Float64() * math.Log(1e9))))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile(%f) = %v < previous %v", q, cur, prev)
		}
		prev = cur
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %v, Max = %v", h.Quantile(1), h.Max())
	}
	if h.Quantile(2) != h.Max() || h.Quantile(-1) > h.Quantile(0) {
		t.Fatal("out-of-range q must clamp")
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(123 * time.Microsecond)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 123*time.Microsecond {
			t.Fatalf("single-value Quantile(%f) = %v", q, got)
		}
	}
	if h.Count() != 1 || h.Mean() != 123*time.Microsecond {
		t.Fatalf("count/mean = %d/%v", h.Count(), h.Mean())
	}
}

// Quantiles of a known distribution land in the right bucket: 1000
// distinct values 1ms..1000ms, p50 within a bucket width of 500ms.
func TestQuantileKnownDistribution(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Millisecond}, {0.9, 900 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*(1+2.0/subCount) {
			t.Fatalf("Quantile(%f) = %v, want within a bucket of %v", c.q, got, c.want)
		}
	}
}

// Merge is associative and commutative: any grouping of per-worker
// histograms produces identical counts, quantiles, sum and max.
func TestMergeAssociativity(t *testing.T) {
	mk := func(seed int64, n int) *Hist {
		rng := rand.New(rand.NewSource(seed))
		var h Hist
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(int64(time.Second))))
		}
		return &h
	}
	a, b, c := mk(1, 1000), mk(2, 500), mk(3, 1500)

	// (a+b)+c
	var left Hist
	left.Merge(a)
	left.Merge(b)
	var lc Hist
	lc.Merge(&left)
	lc.Merge(c)
	// a+(b+c), merged in a different order
	var right Hist
	right.Merge(c)
	right.Merge(b)
	var rc Hist
	rc.Merge(&right)
	rc.Merge(a)

	if lc != rc {
		t.Fatal("merge order changed the histogram")
	}
	if lc.Count() != 3000 {
		t.Fatalf("merged count = %d", lc.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if lc.Quantile(q) != rc.Quantile(q) {
			t.Fatalf("quantile %f differs across merge orders", q)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * 37 * time.Nanosecond)
	}
	if h.Count() == 0 {
		b.Fatal("nothing recorded")
	}
}
