package loadtest

import (
	"math"
	"testing"
)

// FuzzBucketIndex pins the bucket function's contract for arbitrary
// inputs: it never panics, stays in range, round-trips through
// bucketBound, and is monotone across the bucket boundary.
func FuzzBucketIndex(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(-1))
	f.Add(int64(1))
	f.Add(int64(subCount*2 - 1))
	f.Add(int64(subCount * 2))
	f.Add(int64(math.MaxInt64))
	f.Add(int64(math.MinInt64))
	f.Fuzz(func(t *testing.T, v int64) {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		b := bucketBound(i)
		if v > 0 && b < v {
			t.Fatalf("bound %d below value %d", b, v)
		}
		if got := bucketIndex(b); got != i {
			t.Fatalf("round trip: bucketIndex(bucketBound(%d)=%d) = %d", i, b, got)
		}
		if b < math.MaxInt64 {
			if got := bucketIndex(b + 1); got != i+1 {
				t.Fatalf("monotonicity: bucketIndex(%d+1) = %d, want %d", b, got, i+1)
			}
		}
	})
}
