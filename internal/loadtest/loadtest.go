package loadtest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sofya/internal/endpoint"
)

// Probe is one query shape in the traffic mix, selected with
// probability proportional to Weight. The query is prepared once per
// run and executed whole-result (Select or Ask by its form), which is
// how alignment probes and protocol clients consume the endpoint.
type Probe struct {
	Name   string
	Weight int
	Query  string
}

// DefaultMix is the standard probe mix: shapes that exercise the
// engine at different cost tiers and work against any KB — a cheap
// existence probe, a LIMIT-bounded scan, a RAND()-sampled top-k (the
// paper's sampling shape), and a DISTINCT aggregation walk.
func DefaultMix() []Probe {
	return []Probe{
		{Name: "ask", Weight: 4, Query: `ASK { ?s ?p ?o }`},
		{Name: "scan", Weight: 3, Query: `SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 100`},
		{Name: "rand", Weight: 2, Query: `SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY RAND() LIMIT 10`},
		{Name: "distinct", Weight: 1, Query: `SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 50`},
	}
}

// ParseMix reweights DefaultMix from a flag spec like
// "ask=4,scan=3,rand=2,distinct=1". Omitted shapes get weight 0;
// unknown names are an error. An empty spec returns DefaultMix.
func ParseMix(spec string) ([]Probe, error) {
	mix := DefaultMix()
	if strings.TrimSpace(spec) == "" {
		return mix, nil
	}
	byName := make(map[string]*Probe, len(mix))
	for i := range mix {
		mix[i].Weight = 0
		byName[mix[i].Name] = &mix[i]
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadtest: bad mix entry %q: want name=weight", part)
		}
		p := byName[strings.TrimSpace(name)]
		if p == nil {
			return nil, fmt.Errorf("loadtest: unknown probe %q (have ask, scan, rand, distinct)", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("loadtest: bad weight in %q", part)
		}
		p.Weight = n
	}
	out := mix[:0]
	for _, p := range mix {
		if p.Weight > 0 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("loadtest: mix has no probe with positive weight")
	}
	return out, nil
}

// Config parameterizes one load-test run.
type Config struct {
	// Rate > 0 selects the open loop: Poisson arrivals at Rate requests
	// per second, dispatched without waiting for completions. Rate == 0
	// selects the closed loop: Clients workers issuing back to back.
	Rate float64
	// Clients is the closed loop's concurrency. In the open loop it
	// caps outstanding requests (0 = DefaultMaxOutstanding): an arrival
	// past the cap is dropped client-side and counted, not blocked —
	// the generator never silently turns into a closed loop.
	Clients int
	// Duration is the measured window; Warmup runs the same traffic
	// before it without recording (caches fill, pools spin up).
	Duration time.Duration
	Warmup   time.Duration
	// Mix is the probe mix (DefaultMix when empty).
	Mix []Probe
	// Seed drives probe selection and arrival spacing; runs with the
	// same seed replay the same schedule.
	Seed int64
}

// DefaultMaxOutstanding caps the open loop's concurrent requests when
// Config.Clients is 0 — a safety rail so an overloaded target degrades
// into counted drops instead of unbounded goroutine growth.
const DefaultMaxOutstanding = 1024

// Result is one run's measurements. Latency quantiles cover completed
// successful requests; sheds and errors are counted, not timed (a
// rejection answered in microseconds would otherwise drag p50 down
// exactly when the server is at its worst).
type Result struct {
	Mode     string  `json:"mode"` // "open" or "closed"
	Rate     float64 `json:"rate_per_sec,omitempty"`
	Clients  int     `json:"clients"`
	Duration float64 `json:"duration_sec"`

	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`    // ErrOverloaded / ErrQuotaExceeded family
	Errors    uint64 `json:"errors"`  // everything else
	Dropped   uint64 `json:"dropped"` // open loop: arrivals past the outstanding cap

	Throughput float64 `json:"throughput_per_sec"` // completed / duration

	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`

	PerProbe map[string]uint64 `json:"per_probe,omitempty"`

	// Hist is the merged latency histogram, for callers that want more
	// than the summary quantiles. Not serialized.
	Hist *Hist `json:"-"`
}

// ShedRate is the shed fraction of issued requests.
func (r Result) ShedRate() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Issued)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runner is the shared machinery of both loops: prepared probes,
// cumulative-weight selection, and per-worker recorders.
type runner struct {
	probes    []preparedProbe
	cum       []int // cumulative weights for selection
	totalW    int
	recording atomic.Bool
}

type preparedProbe struct {
	name string
	ask  bool
	pq   endpoint.PreparedQuery
}

// recorder is one worker's private tally; merged after the run.
type recorder struct {
	hist     Hist
	issued   uint64
	done     uint64
	shed     uint64
	errs     uint64
	perProbe map[string]uint64
}

func newRecorder() *recorder { return &recorder{perProbe: make(map[string]uint64)} }

func (r *recorder) merge(o *recorder) {
	r.hist.Merge(&o.hist)
	r.issued += o.issued
	r.done += o.done
	r.shed += o.shed
	r.errs += o.errs
	for k, v := range o.perProbe {
		r.perProbe[k] += v
	}
}

func newRunner(ep endpoint.Endpoint, mix []Probe) (*runner, error) {
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	r := &runner{}
	for _, p := range mix {
		if p.Weight <= 0 {
			continue
		}
		pq, err := ep.Prepare(p.Query)
		if err != nil {
			return nil, fmt.Errorf("loadtest: prepare %s: %w", p.Name, err)
		}
		ask := strings.HasPrefix(strings.TrimSpace(strings.ToUpper(p.Query)), "ASK")
		r.probes = append(r.probes, preparedProbe{name: p.Name, ask: ask, pq: pq})
		r.totalW += p.Weight
		r.cum = append(r.cum, r.totalW)
	}
	if len(r.probes) == 0 {
		return nil, errors.New("loadtest: mix has no probe with positive weight")
	}
	return r, nil
}

// pick selects a probe by cumulative weight.
func (r *runner) pick(rng *rand.Rand) *preparedProbe {
	w := rng.Intn(r.totalW)
	i := sort.SearchInts(r.cum, w+1)
	return &r.probes[i]
}

// issue sends one probe and reports its latency and outcome.
func (r *runner) issue(ctx context.Context, p *preparedProbe) (time.Duration, error) {
	start := time.Now()
	var err error
	if p.ask {
		_, err = p.pq.AskCtx(ctx)
	} else {
		_, err = p.pq.SelectCtx(ctx)
	}
	return time.Since(start), err
}

// record tallies one completed request. Callers skip it for requests
// dispatched outside the measured window (the recording decision is
// taken at dispatch, so a request straddling the warmup boundary is
// not half counted) and for completions after the run's context ended,
// whose latency would be an artifact of teardown.
func (rec *recorder) record(p *preparedProbe, lat time.Duration, err error) {
	rec.issued++
	rec.perProbe[p.name]++
	switch {
	case err == nil:
		rec.done++
		rec.hist.Record(lat)
	case errors.Is(err, endpoint.ErrQuotaExceeded): // sheds included: Is(ErrOverloaded, ErrQuotaExceeded)
		rec.shed++
	default:
		rec.errs++
	}
}

// Run executes one load test against ep and reports its measurements.
// ctx cancels the run early (the partial window is still reported,
// scaled to the time actually measured).
func Run(ctx context.Context, ep endpoint.Endpoint, cfg Config) (*Result, error) {
	if cfg.Duration <= 0 {
		return nil, errors.New("loadtest: Duration must be positive")
	}
	run, err := newRunner(ep, cfg.Mix)
	if err != nil {
		return nil, err
	}
	if cfg.Rate > 0 {
		return runOpen(ctx, run, cfg)
	}
	return runClosed(ctx, run, cfg)
}

// runClosed drives cfg.Clients workers issuing probes back to back.
func runClosed(ctx context.Context, run *runner, cfg Config) (*Result, error) {
	clients := cfg.Clients
	if clients <= 0 {
		clients = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	recs := make([]*recorder, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		rec := newRecorder()
		recs[i] = rec
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				p := run.pick(rng)
				record := run.recording.Load()
				lat, err := run.issue(ctx, p)
				if record && ctx.Err() == nil {
					rec.record(p, lat, err)
				}
			}
		}()
	}

	measured, err := window(ctx, run, cfg)
	cancel()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	res := collect(recs, measured)
	res.Mode = "closed"
	res.Clients = clients
	return res, nil
}

// runOpen dispatches Poisson arrivals at cfg.Rate per second: each
// arrival gets its own goroutine, bounded only by the outstanding cap.
func runOpen(ctx context.Context, run *runner, cfg Config) (*Result, error) {
	maxOut := cfg.Clients
	if maxOut <= 0 {
		maxOut = DefaultMaxOutstanding
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Striped recorders: arrivals round-robin over a small pool so the
	// per-request goroutines never share a histogram without a lock.
	const stripes = 16
	recs := make([]*recorder, stripes)
	locks := make([]sync.Mutex, stripes)
	for i := range recs {
		recs[i] = newRecorder()
	}
	var dropped atomic.Uint64
	outstanding := make(chan struct{}, maxOut)

	rng := rand.New(rand.NewSource(cfg.Seed))
	var wg sync.WaitGroup
	dispatchDone := make(chan struct{})
	go func() {
		defer close(dispatchDone)
		next := time.Now()
		for seq := 0; ; seq++ {
			// Exponential inter-arrival spacing: a Poisson process at
			// cfg.Rate. The schedule is absolute (next += gap), so a
			// slow dispatch does not stretch the offered load.
			next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return
				}
			} else if ctx.Err() != nil {
				return
			}
			p := run.pick(rng)
			record := run.recording.Load()
			select {
			case outstanding <- struct{}{}:
			default:
				// The cap is the open loop's honesty: the offered load
				// exceeded what the target absorbs, and we say so
				// instead of queueing arrivals into a hidden closed loop.
				if record {
					dropped.Add(1)
				}
				continue
			}
			wg.Add(1)
			go func(stripe int) {
				defer wg.Done()
				defer func() { <-outstanding }()
				lat, err := run.issue(ctx, p)
				if record && ctx.Err() == nil {
					locks[stripe].Lock()
					recs[stripe].record(p, lat, err)
					locks[stripe].Unlock()
				}
			}(seq % stripes)
		}
	}()

	measured, err := window(ctx, run, cfg)
	cancel()
	<-dispatchDone
	wg.Wait()
	if err != nil {
		return nil, err
	}
	res := collect(recs, measured)
	res.Mode = "open"
	res.Rate = cfg.Rate
	res.Clients = maxOut
	res.Dropped = dropped.Load()
	res.Issued += res.Dropped
	return res, nil
}

// window runs the warmup then the measured window, flipping the
// recording flag in between; it returns the time actually measured.
func window(ctx context.Context, run *runner, cfg Config) (time.Duration, error) {
	if cfg.Warmup > 0 {
		select {
		case <-time.After(cfg.Warmup):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	run.recording.Store(true)
	start := time.Now()
	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	run.recording.Store(false)
	return time.Since(start), nil
}

func collect(recs []*recorder, measured time.Duration) *Result {
	total := newRecorder()
	for _, r := range recs {
		total.merge(r)
	}
	res := &Result{
		Duration:  measured.Seconds(),
		Issued:    total.issued,
		Completed: total.done,
		Shed:      total.shed,
		Errors:    total.errs,
		PerProbe:  total.perProbe,
		Hist:      &total.hist,
		P50:       ms(total.hist.Quantile(0.50)),
		P90:       ms(total.hist.Quantile(0.90)),
		P99:       ms(total.hist.Quantile(0.99)),
		P999:      ms(total.hist.Quantile(0.999)),
		Max:       ms(total.hist.Max()),
		Mean:      ms(total.hist.Mean()),
	}
	if s := measured.Seconds(); s > 0 {
		res.Throughput = float64(total.done) / s
	}
	return res
}

// Sweep runs a closed-loop test at each client count, reusing cfg for
// everything else — the capacity curve: where throughput saturates and
// what latency does past that point.
func Sweep(ctx context.Context, ep endpoint.Endpoint, cfg Config, clients []int) ([]Result, error) {
	out := make([]Result, 0, len(clients))
	for _, n := range clients {
		c := cfg
		c.Rate = 0
		c.Clients = n
		res, err := Run(ctx, ep, c)
		if err != nil {
			return out, err
		}
		out = append(out, *res)
	}
	return out, nil
}

// MarshalJSON renders results as indented JSON, one array.
func MarshalJSON(results []Result) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}

// MarkdownTable renders results as the EXPERIMENTS.md table: one row
// per run, latencies in milliseconds, shed rate as a percentage.
func MarkdownTable(results []Result) string {
	var sb strings.Builder
	sb.WriteString("| mode | clients | rate/s | throughput/s | p50 ms | p90 ms | p99 ms | p999 ms | max ms | shed % | errors |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range results {
		rate := "—"
		if r.Rate > 0 {
			rate = strconv.FormatFloat(r.Rate, 'f', -1, 64)
		}
		fmt.Fprintf(&sb, "| %s | %d | %s | %.0f | %.2f | %.2f | %.2f | %.2f | %.2f | %.1f | %d |\n",
			r.Mode, r.Clients, rate, r.Throughput,
			r.P50, r.P90, r.P99, r.P999, r.Max,
			100*r.ShedRate(), r.Errors)
	}
	return sb.String()
}

// Saturation returns the index of the sweep row where throughput stops
// improving meaningfully: the first count whose throughput is within
// tol (e.g. 0.1 = 10%) of the best seen at any larger count. It is the
// anchor for "overload = ≥ 4× the saturation client count".
func Saturation(results []Result, tol float64) int {
	best := 0.0
	for _, r := range results {
		best = math.Max(best, r.Throughput)
	}
	for i, r := range results {
		if r.Throughput >= best*(1-tol) {
			return i
		}
	}
	return len(results) - 1
}
