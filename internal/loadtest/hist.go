// Package loadtest measures concurrent serving behavior instead of
// asserting it: an open-loop (Poisson-arrival) and closed-loop
// (fixed-concurrency) load generator that drives any endpoint.Endpoint
// — an in-process Local, a decorated stack, a federation group, or an
// HTTP client for a live sparqld — with a weighted mix of prepared
// probe shapes, and a log-bucketed HDR-style latency histogram that
// reports p50/p90/p99/p999, max, throughput, and error/shed counts.
//
// The two loops answer different questions. The closed loop ("N
// clients, back to back") measures capacity: throughput at saturation
// and how latency degrades as concurrency grows — the sweep that shows
// whether admission control keeps p99 bounded under overload or lets
// it collapse. The open loop ("λ arrivals per second, regardless of
// completions") measures behavior at a given offered load: unlike a
// closed loop it does not self-throttle when the server slows down, so
// it exposes queue growth the way real traffic — which does not wait
// for other users' queries — would.
//
// Results marshal to JSON for machines and render to a markdown table
// for EXPERIMENTS.md; cmd/loadtest is the CLI.
package loadtest

import (
	"math"
	"math/bits"
	"time"
)

// The histogram buckets durations (in nanoseconds) on a logarithmic
// grid with linear sub-buckets, HDR-histogram style: values below
// 2*subCount are exact, and each power-of-two octave above splits into
// subCount sub-buckets, for a worst-case relative error of 1/subCount
// (~3%) at any magnitude — microseconds and minutes share one fixed
// array of numBuckets counters, no allocation per Record.
const (
	subBits  = 5
	subCount = 1 << subBits // 32 sub-buckets per octave

	// numBuckets covers every int64 nanosecond value: the top octave
	// (bits.Len64 == 63) lands at index 57*subCount + 63.
	numBuckets = 57*subCount + subCount*2
)

// bucketIndex maps a duration in nanoseconds to its bucket. Negative
// values clamp to bucket 0. The mapping is monotone non-decreasing.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < subCount*2 {
		return int(v) // exact region: one value per bucket
	}
	exp := bits.Len64(v) - (subBits + 1)
	return exp<<subBits + int(v>>uint(exp))
}

// bucketBound returns the largest nanosecond value that maps to bucket
// i — the inverse of bucketIndex in the sense that
// bucketIndex(bucketBound(i)) == i for every i < numBuckets.
func bucketBound(i int) int64 {
	if i < subCount*2 {
		return int64(i)
	}
	exp := i>>subBits - 1
	sub := i&(subCount-1) | subCount
	bound := uint64(sub+1)<<uint(exp) - 1
	if bound > math.MaxInt64 {
		bound = math.MaxInt64
	}
	return int64(bound)
}

// Hist is a fixed-size log-bucketed latency histogram. The zero value
// is ready to use. A Hist is not safe for concurrent use: the load
// generators record into per-worker histograms and Merge them.
type Hist struct {
	counts [numBuckets]uint64
	total  uint64
	sum    int64
	max    int64
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)]++
	h.total++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge adds o's observations into h. Merging is commutative and
// associative: any grouping of per-worker histograms yields the same
// counts, sum and max.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count is the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Max is the largest recorded observation (0 when empty).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean is the arithmetic mean of the recorded observations (exact, not
// bucketed; 0 when empty).
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Quantile returns an upper bound on the q-quantile observation: the
// bound of the bucket holding the ceil(q*Count)-th smallest recording,
// clamped to the exact Max. q outside [0,1] clamps. Quantile is
// monotone in q, and its relative error is bounded by the bucket width
// (~3%). Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if b := bucketBound(i); b < h.max {
				return time.Duration(b)
			}
			return time.Duration(h.max)
		}
	}
	return time.Duration(h.max) // unreachable: seen ends at total ≥ rank
}
