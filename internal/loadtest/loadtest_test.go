package loadtest

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sofya/internal/endpoint"
	"sofya/internal/kb"
	"sofya/internal/rdf"
)

func testKB() *kb.KB {
	k := kb.New("test")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/b")
	k.AddIRIs("http://x/a", "http://x/p", "http://x/c")
	k.AddIRIs("http://x/b", "http://x/q", "http://x/c")
	k.Add(rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/name"), rdf.NewLangLiteral("Ay", "en")))
	return k
}

// The closed loop drives real traffic: every probe shape executes,
// latencies land in the histogram, throughput and per-probe counts add
// up.
func TestClosedLoopAgainstLocal(t *testing.T) {
	ep := endpoint.NewLocal(testKB(), 1)
	res, err := Run(context.Background(), ep, Config{
		Clients:  4,
		Duration: 150 * time.Millisecond,
		Warmup:   30 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Clients != 4 {
		t.Fatalf("mode/clients = %s/%d", res.Mode, res.Clients)
	}
	if res.Completed == 0 || res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("completed=%d errors=%d shed=%d", res.Completed, res.Errors, res.Shed)
	}
	if res.Issued != res.Completed {
		t.Fatalf("issued %d != completed %d on an unrestricted endpoint", res.Issued, res.Completed)
	}
	if res.Hist.Count() != res.Completed {
		t.Fatalf("histogram count %d != completed %d", res.Hist.Count(), res.Completed)
	}
	if res.Throughput <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("throughput=%f p50=%f p99=%f", res.Throughput, res.P50, res.P99)
	}
	var probes uint64
	for _, n := range res.PerProbe {
		probes += n
	}
	if probes != res.Issued {
		t.Fatalf("per-probe counts %d != issued %d", probes, res.Issued)
	}
	// All four default shapes must actually run under the default mix.
	for _, name := range []string{"ask", "scan", "rand", "distinct"} {
		if res.PerProbe[name] == 0 {
			t.Fatalf("probe %s never selected: %v", name, res.PerProbe)
		}
	}
}

// The open loop dispatches Poisson arrivals: completed traffic tracks
// the offered rate on an unloaded endpoint, and nothing is dropped.
func TestOpenLoopTracksOfferedRate(t *testing.T) {
	ep := endpoint.NewLocal(testKB(), 1)
	res, err := Run(context.Background(), ep, Config{
		Rate:     400,
		Duration: 300 * time.Millisecond,
		Warmup:   30 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.Rate != 400 {
		t.Fatalf("mode/rate = %s/%f", res.Mode, res.Rate)
	}
	if res.Dropped != 0 || res.Errors != 0 {
		t.Fatalf("dropped=%d errors=%d", res.Dropped, res.Errors)
	}
	// ~120 arrivals expected; Poisson noise and scheduler jitter allow
	// a wide band, but the loop must neither stall nor run away.
	if res.Completed < 40 || res.Completed > 400 {
		t.Fatalf("completed = %d, want ≈120", res.Completed)
	}
}

// An open loop over a saturated admission gate counts sheds instead of
// collapsing: the arrival schedule never blocks on completions.
func TestOpenLoopCountsSheds(t *testing.T) {
	inner := endpoint.NewLocalRestricted(testKB(), 1, endpoint.Quota{Latency: 30 * time.Millisecond})
	ep := endpoint.NewAdmission(inner, endpoint.Limits{MaxInFlight: 1})
	res, err := Run(context.Background(), ep, Config{
		Rate:     300,
		Clients:  2, // outstanding cap: beyond 2 in flight, arrivals drop client-side
		Duration: 250 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 && res.Dropped == 0 {
		t.Fatalf("overloaded run shed nothing: %+v", res)
	}
	if res.Issued != res.Completed+res.Shed+res.Errors+res.Dropped {
		t.Fatalf("counters do not add up: %+v", res)
	}
}

// A closed-loop sweep over an admission-controlled endpoint: the
// capacity curve rises to saturation, and past it completed-request
// latency stays bounded because excess load sheds. This is the
// EXPERIMENTS.md scenario in miniature.
func TestSweepWithAdmissionSheds(t *testing.T) {
	inner := endpoint.NewLocalRestricted(testKB(), 1, endpoint.Quota{Latency: time.Millisecond})
	ep := endpoint.NewAdmission(inner, endpoint.Limits{MaxInFlight: 2, Queue: 2, QueueTimeout: time.Millisecond})
	results, err := Sweep(context.Background(), ep, Config{
		Duration: 120 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Seed:     4,
	}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Clients != 1 || results[1].Clients != 8 {
		t.Fatalf("sweep shape: %+v", results)
	}
	if results[0].Shed != 0 {
		t.Fatalf("1 client against max-inflight 2 shed %d", results[0].Shed)
	}
	if results[1].Shed == 0 {
		t.Fatal("8 clients against max-inflight 2 shed nothing")
	}
	if sat := Saturation(results, 0.1); sat < 0 || sat >= len(results) {
		t.Fatalf("saturation index %d", sat)
	}
	md := MarkdownTable(results)
	if !strings.Contains(md, "| closed | 8 |") || strings.Count(md, "\n") != 4 {
		t.Fatalf("markdown table malformed:\n%s", md)
	}
	if _, err := MarshalJSON(results); err != nil {
		t.Fatal(err)
	}
}

// Canceling the run's context ends it early and still reports the
// partial window.
func TestRunCancellation(t *testing.T) {
	ep := endpoint.NewLocal(testKB(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, ep, Config{Clients: 2, Duration: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not end the run")
	}
	if res.Duration > 5 {
		t.Fatalf("measured window %fs, want the partial window", res.Duration)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ep := endpoint.NewLocal(testKB(), 1)
	if _, err := Run(context.Background(), ep, Config{}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(context.Background(), ep, Config{Duration: time.Second, Mix: []Probe{{Name: "bad", Weight: 1, Query: "SELEC"}}}); err == nil {
		t.Fatal("unparseable probe accepted")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("")
	if err != nil || len(mix) != 4 {
		t.Fatalf("default mix: %v %v", mix, err)
	}
	mix, err = ParseMix("ask=1, scan=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Name != "ask" || mix[1].Weight != 5 {
		t.Fatalf("mix = %+v", mix)
	}
	for _, bad := range []string{"nope=1", "ask", "ask=-2", "ask=x", "ask=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

// Identical seeds replay identical probe schedules, and the weighted
// selection honors the weights.
func TestPickDeterministicAndWeighted(t *testing.T) {
	ep := endpoint.NewLocal(testKB(), 1)
	run, err := newRunner(ep, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	counts := make(map[string]int)
	for i := 0; i < 10000; i++ {
		a, b := run.pick(r1), run.pick(r2)
		if a.name != b.name {
			t.Fatalf("pick %d diverged for equal seeds: %s vs %s", i, a.name, b.name)
		}
		counts[a.name]++
	}
	// DefaultMix weights 4:3:2:1 — each shape's share within ±5 points.
	for name, weight := range map[string]float64{"ask": 0.4, "scan": 0.3, "rand": 0.2, "distinct": 0.1} {
		share := float64(counts[name]) / 10000
		if share < weight-0.05 || share > weight+0.05 {
			t.Fatalf("probe %s share %.3f, want ≈%.1f", name, share, weight)
		}
	}
}
