package core

import (
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/ilp"
	"sofya/internal/kb"
	"sofya/internal/rdf"
	"sofya/internal/sameas"
	"sofya/internal/sampling"
)

const (
	yNS = "http://y/"
	dNS = "http://d/"
)

// paperWorld mirrors the §2.2 examples (same construction as the
// sampling tests, kept locally to avoid exporting test helpers):
// creatorOf ⊐ {composerOf, writerOf}; directedBy ≡ hasDirector with
// hasProducer as a correlated confounder; bornYear ≡ birthDate
// (literals). Scaled up enough that 10-subject samples behave.
func paperWorld() (*kb.KB, *kb.KB, *sameas.Links) {
	y := kb.New("yago")
	d := kb.New("dbpedia")
	links := sameas.New()
	link := func(name string) { links.Add(yNS+name, dNS+name) }
	addBoth := func(yRel, dRel, s, o string) {
		y.AddIRIs(yNS+s, yNS+yRel, yNS+o)
		d.AddIRIs(dNS+s, dNS+dRel, dNS+o)
	}
	num := func(i int) string { return string(rune('a'+i/10)) + string(rune('0'+i%10)) }

	for i := 0; i < 30; i++ {
		n := num(i)
		link("comp" + n)
		link("book" + n)
		link("movie" + n)
		link("dirP" + n)
		link("prodP" + n)
		link("c" + n)
		link("w" + n)
		link("poly" + n)
	}
	for i := 0; i < 25; i++ {
		n := num(i)
		addBoth("creatorOf", "composerOf", "c"+n, "comp"+n)
		addBoth("creatorOf", "writerOf", "w"+n, "book"+n)
	}
	// five polymaths: overlap subjects for UBS
	for i := 25; i < 30; i++ {
		n := num(i)
		addBoth("creatorOf", "composerOf", "poly"+n, "comp"+n)
		addBoth("creatorOf", "writerOf", "poly"+n, "book"+n)
	}
	// movies: director always; producer == director for 70%
	for i := 0; i < 30; i++ {
		n := num(i)
		addBoth("directedBy", "hasDirector", "movie"+n, "dirP"+n)
		if i%10 < 7 {
			addBoth("producedBy", "hasProducer", "movie"+n, "dirP"+n)
		} else {
			addBoth("producedBy", "hasProducer", "movie"+n, "prodP"+n)
		}
	}
	// literals
	for i := 0; i < 25; i++ {
		n := num(i)
		year := 1900 + i
		y.Add(rdf.NewTriple(rdf.NewIRI(yNS+"c"+n), rdf.NewIRI(yNS+"bornYear"),
			rdf.NewTypedLiteral(itoa(year), rdf.XSDGYear)))
		d.Add(rdf.NewTriple(rdf.NewIRI(dNS+"c"+n), rdf.NewIRI(dNS+"birthDate"),
			rdf.NewTypedLiteral(itoa(year)+"-03-04", rdf.XSDDate)))
	}
	return y, d, links
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// alignerD2Y aligns DBpedia bodies against YAGO heads (K = yago).
func alignerD2Y(cfg Config) *Aligner {
	y, d, links := paperWorld()
	return New(
		endpoint.NewLocal(y, 3),
		endpoint.NewLocal(d, 4),
		sampling.LinkView{Links: links, KIsA: true},
		cfg)
}

// alignerY2D aligns YAGO bodies against DBpedia heads (K = dbpedia).
func alignerY2D(cfg Config) *Aligner {
	y, d, links := paperWorld()
	return New(
		endpoint.NewLocal(d, 5),
		endpoint.NewLocal(y, 6),
		sampling.LinkView{Links: links, KIsA: false},
		cfg)
}

func find(als []Alignment, body string) *Alignment {
	for i := range als {
		if als[i].Rule.Body == body {
			return &als[i]
		}
	}
	return nil
}

func TestAlignCreatorOfFindsSpecializations(t *testing.T) {
	a := alignerD2Y(DefaultConfig())
	als, err := a.AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatal(err)
	}
	comp := find(als, dNS+"composerOf")
	wr := find(als, dNS+"writerOf")
	if comp == nil || wr == nil {
		t.Fatalf("candidates missing: %+v", als)
	}
	if !comp.Accepted || !wr.Accepted {
		t.Fatalf("true subsumptions rejected: comp=%+v wr=%+v", comp, wr)
	}
	if comp.Confidence != 1 || wr.Confidence != 1 {
		t.Fatalf("confidences: %f, %f", comp.Confidence, wr.Confidence)
	}
	if comp.Rule.String() == "" || comp.Rule.HeadKB != "yago" || comp.Rule.BodyKB != "dbpedia" {
		t.Fatalf("rule labels wrong: %+v", comp.Rule)
	}
}

func TestAlignDirectedByBaselineAcceptsConfounder(t *testing.T) {
	a := alignerD2Y(DefaultConfig())
	als, err := a.AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	dir := find(als, dNS+"hasDirector")
	prod := find(als, dNS+"hasProducer")
	if dir == nil || !dir.Accepted {
		t.Fatalf("hasDirector should be accepted: %+v", dir)
	}
	if prod == nil {
		t.Skip("confounder not discovered in this sample")
	}
	if !prod.Accepted {
		t.Fatalf("baseline should accept the correlated confounder (pca ≈ 0.7): %+v", prod)
	}
}

func TestAlignDirectedByUBSPrunesConfounder(t *testing.T) {
	a := alignerD2Y(UBSConfig())
	als, err := a.AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	dir := find(als, dNS+"hasDirector")
	prod := find(als, dNS+"hasProducer")
	if dir == nil || !dir.Accepted {
		t.Fatalf("hasDirector should stay accepted: %+v", dir)
	}
	if prod != nil && prod.Accepted {
		t.Fatalf("UBS failed to prune hasProducer ⇒ directedBy: %+v", prod)
	}
	if prod != nil && prod.Contradictions == 0 {
		t.Fatalf("pruned without recorded contradictions: %+v", prod)
	}
}

func TestAlignUBSDemotesEquivalenceForSpecialization(t *testing.T) {
	a := alignerD2Y(UBSConfig())
	als, err := a.AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatal(err)
	}
	comp := find(als, dNS+"composerOf")
	if comp == nil || !comp.Accepted {
		t.Fatalf("composerOf ⇒ creatorOf should be accepted: %+v", comp)
	}
	if comp.Equivalent {
		t.Fatalf("creatorOf ⇔ composerOf must be demoted to subsumption: %+v", comp)
	}
	if comp.ReverseContradictions == 0 {
		t.Fatalf("no reverse contradictions recorded: %+v", comp)
	}
}

func TestAlignEquivalenceConfirmedForTrueEquivalence(t *testing.T) {
	cfg := UBSConfig()
	a := alignerD2Y(cfg)
	als, err := a.AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	dir := find(als, dNS+"hasDirector")
	if dir == nil || !dir.Accepted {
		t.Fatalf("hasDirector missing: %+v", dir)
	}
	if !dir.Equivalent {
		t.Fatalf("directedBy ⇔ hasDirector should be equivalent: %+v", dir)
	}
}

func TestAlignReverseDirectionUBSPrunesBroaderBody(t *testing.T) {
	// Direction yago ⊂ dbpd, head = composerOf: the only candidate body
	// is creatorOf, which is broader. Baseline accepts it (pca ≈ 0.9);
	// UBS head-sibling sampling must prune it.
	base := alignerY2D(DefaultConfig())
	als, err := base.AlignRelation(dNS + "composerOf")
	if err != nil {
		t.Fatal(err)
	}
	cr := find(als, yNS+"creatorOf")
	if cr == nil || !cr.Accepted {
		t.Fatalf("baseline should accept creatorOf ⇒ composerOf: %+v", cr)
	}

	ubs := alignerY2D(UBSConfig())
	als, err = ubs.AlignRelation(dNS + "composerOf")
	if err != nil {
		t.Fatal(err)
	}
	cr = find(als, yNS+"creatorOf")
	if cr == nil {
		t.Fatal("candidate vanished under UBS")
	}
	if cr.Accepted {
		t.Fatalf("UBS failed to prune creatorOf ⇒ composerOf: %+v", cr)
	}
}

func TestAlignLiteralRelation(t *testing.T) {
	a := alignerD2Y(DefaultConfig())
	als, err := a.AlignRelation(yNS + "bornYear")
	if err != nil {
		t.Fatal(err)
	}
	bd := find(als, dNS+"birthDate")
	if bd == nil || !bd.Accepted {
		t.Fatalf("birthDate ⇒ bornYear not aligned: %+v", als)
	}
}

func TestAlignUnknownRelation(t *testing.T) {
	a := alignerD2Y(DefaultConfig())
	als, err := a.AlignRelation(yNS + "neverSeen")
	if err != nil {
		t.Fatal(err)
	}
	if len(als) != 0 {
		t.Fatalf("alignments for unknown relation: %+v", als)
	}
}

func TestAlignDeterministic(t *testing.T) {
	r1, err := alignerD2Y(UBSConfig()).AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := alignerD2Y(UBSConfig()).AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Rule != r2[i].Rule || r1[i].Accepted != r2[i].Accepted ||
			r1[i].Confidence != r2[i].Confidence {
			t.Fatalf("run %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestAlignMinSupport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSupport = 100 // unreachable
	a := alignerD2Y(cfg)
	als, err := a.AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range als {
		if al.Accepted {
			t.Fatalf("accepted despite impossible support: %+v", al)
		}
	}
}

func TestAcceptedFilter(t *testing.T) {
	all := []Alignment{
		{Accepted: true, Rule: ilp.Rule{Body: "a"}},
		{Accepted: false, Rule: ilp.Rule{Body: "b"}},
		{Accepted: true, Rule: ilp.Rule{Body: "c"}},
	}
	got := Accepted(all)
	if len(got) != 2 || got[0].Rule.Body != "a" || got[1].Rule.Body != "c" {
		t.Fatalf("Accepted = %+v", got)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.SampleSize != 10 || c.DiscoverySize != 10 || c.MaxCandidates != 16 ||
		c.MinSupport != 1 || c.MinContradictions != 1 {
		t.Fatalf("normalized = %+v", c)
	}
	c2 := Config{SampleSize: 5}.normalized()
	if c2.DiscoverySize != 5 || c2.UBSSampleSize != 5 {
		t.Fatalf("normalized = %+v", c2)
	}
}

func TestAlignerQueryCounts(t *testing.T) {
	y, d, links := paperWorld()
	ky := endpoint.NewLocal(y, 3)
	kd := endpoint.NewLocal(d, 4)
	a := New(ky, kd, sampling.LinkView{Links: links, KIsA: true}, DefaultConfig())
	if _, err := a.AlignRelation(yNS + "directedBy"); err != nil {
		t.Fatal(err)
	}
	kq, dq := ky.Stats().Queries, kd.Stats().Queries
	if kq == 0 || dq == 0 {
		t.Fatalf("no queries recorded: K=%d K'=%d", kq, dq)
	}
	// "works with few queries": discovery (1 + ≤10) on each side plus
	// ≤ candidates × (1 + 10) validations — two orders below dataset
	// size.
	if kq > 60 || dq > 60 {
		t.Fatalf("too many queries for one alignment: K=%d K'=%d", kq, dq)
	}
}
