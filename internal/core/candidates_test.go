package core

import (
	"reflect"
	"testing"
)

// TestAlignPruningOffBuildsNoIndex pins the exact-mode contract: with
// CandidateTopK unset the aligner must never touch the candidate
// index, so output (and endpoint traffic) is identical to builds
// predating the feature.
func TestAlignPruningOffBuildsNoIndex(t *testing.T) {
	a := alignerD2Y(UBSConfig())
	als, err := a.AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	if len(als) == 0 {
		t.Fatal("no alignments")
	}
	if a.candProber != nil {
		t.Fatal("candidate index built despite CandidateTopK == 0")
	}
}

// TestAlignPrunedMatchesExactOnPaperWorld runs the same alignment with
// and without candidate pruning at a top-k wide enough for the paper
// world: the outputs must be deep-equal, because pruning only filters
// the candidate universe and the universe fits inside k.
func TestAlignPrunedMatchesExactOnPaperWorld(t *testing.T) {
	exact, err := alignerD2Y(UBSConfig()).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("exact align: %v", err)
	}
	cfg := UBSConfig()
	cfg.CandidateTopK = 16
	pruned, err := alignerD2Y(cfg).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("pruned align: %v", err)
	}
	if !reflect.DeepEqual(exact, pruned) {
		t.Fatalf("pruned output differs from exact:\nexact:  %+v\npruned: %+v", exact, pruned)
	}
}

// TestAlignPrunedIsSubsetOfExact pins the pruning invariant at any k:
// the pruned run's candidate rules are a subset of the exact run's.
func TestAlignPrunedIsSubsetOfExact(t *testing.T) {
	exact, err := alignerD2Y(UBSConfig()).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("exact align: %v", err)
	}
	inExact := map[string]bool{}
	for _, al := range exact {
		inExact[al.Rule.Body] = true
	}
	cfg := UBSConfig()
	cfg.CandidateTopK = 2
	pruned, err := alignerD2Y(cfg).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("pruned align: %v", err)
	}
	if len(pruned) == 0 || len(pruned) > len(exact) {
		t.Fatalf("pruned run emitted %d rules, exact %d", len(pruned), len(exact))
	}
	for _, al := range pruned {
		if !inExact[al.Rule.Body] {
			t.Errorf("pruned rule body %s absent from exact run", al.Rule.Body)
		}
	}
}

// TestAlignRelationWithin checks the injected-universe form directly.
func TestAlignRelationWithin(t *testing.T) {
	a := alignerD2Y(DefaultConfig())
	als, err := a.AlignRelationWithin(yNS+"creatorOf", map[string]bool{dNS + "composerOf": true})
	if err != nil {
		t.Fatalf("align within: %v", err)
	}
	if len(als) != 1 || als[0].Rule.Body != dNS+"composerOf" {
		t.Fatalf("restricted universe leaked: %+v", als)
	}
	// nil universe = unrestricted: same as AlignRelation.
	all, err := a.AlignRelationWithin(yNS+"creatorOf", nil)
	if err != nil {
		t.Fatalf("align within nil: %v", err)
	}
	plain, err := a.AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	if !reflect.DeepEqual(all, plain) {
		t.Fatal("nil universe differs from AlignRelation")
	}
}
