package core

// AlignRelations is the batch API: it aligns every relation in rs,
// scheduling up to Config.Parallelism relations concurrently, and
// returns one result slice per input relation, positionally matching
// rs. The in-flight relations share the aligner's global admission
// gate, so total endpoint concurrency stays at Parallelism no matter
// how many relations are being aligned at once.
//
// Point the aligner at endpoints decorated with endpoint.Caching and
// endpoint.Coalescing and the batch shares deduplicated endpoint
// traffic across relations — the concurrent aligners probe overlapping
// subjects and samples, and each distinct query reaches the backing
// service once. For deterministic endpoints (fixed Local seeds) the
// output is identical to calling AlignRelation sequentially, at any
// Parallelism.
//
// The first error (in rs order) aborts the batch.
func (a *Aligner) AlignRelations(rs []string) ([][]Alignment, error) {
	out := make([][]Alignment, len(rs))
	err := runIndexed(a.cfg.Parallelism, len(rs), func(i int) error {
		als, err := a.AlignRelation(rs[i])
		if err != nil {
			return err
		}
		out[i] = als
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
