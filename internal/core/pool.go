package core

import (
	"sync"
	"sync/atomic"
)

// runIndexed runs fn(0) … fn(n-1) on at most workers goroutines.
// Tasks write results into caller-owned slots indexed by i, so the
// output of a parallel run is positionally identical to the sequential
// one; only endpoint-level side effects (query arrival order) may
// differ. Once a task fails, tasks that have not started are skipped
// and the lowest-index recorded error is returned — under failure the
// caller discards the partial output anyway.
//
// With workers <= 1 the tasks run inline in order, stopping at the
// first error exactly like the pre-pipeline sequential code.
//
// runIndexed is the scheduler for work that does not itself occupy an
// endpoint (whole-relation tasks); endpoint-bound stage tasks go
// through Aligner.runStage, which adds the global admission gate.
func runIndexed(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runStage runs the endpoint-bound tasks of one pipeline stage,
// admitting every task through the aligner's shared semaphore. The
// semaphore is what makes Config.Parallelism a global bound: however
// many relations AlignRelations has in flight, at most Parallelism
// stage tasks touch the endpoints at any moment, instead of the
// Parallelism² a nested per-stage pool would allow.
//
// Stage tasks must be leaves — they issue endpoint queries but never
// call runStage themselves, so holding a slot cannot deadlock.
// Error handling matches runIndexed: first failure skips unstarted
// tasks and the lowest-index recorded error is returned.
func (a *Aligner) runStage(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := cap(a.sem)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			a.sem <- struct{}{}
			err := fn(i)
			<-a.sem
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue
				}
				a.sem <- struct{}{}
				errs[i] = fn(i)
				<-a.sem
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
