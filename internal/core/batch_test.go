package core

import (
	"reflect"
	"sync"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/sampling"
)

// batchHeads are the relations the batch tests align — every head-side
// relation of the paperWorld with candidates, plus an unknown one.
var batchHeads = []string{
	yNS + "creatorOf",
	yNS + "directedBy",
	yNS + "producedBy",
	yNS + "bornYear",
	yNS + "neverSeen",
}

// alignerWithParallelism builds a D2Y aligner over fresh endpoints with
// fixed seeds and the given worker bound.
func alignerWithParallelism(cfg Config, parallelism int) (*Aligner, *endpoint.Local, *endpoint.Local) {
	y, d, links := paperWorld()
	cfg.Parallelism = parallelism
	ky := endpoint.NewLocal(y, 3)
	kd := endpoint.NewLocal(d, 4)
	return New(ky, kd, sampling.LinkView{Links: links, KIsA: true}, cfg), ky, kd
}

// The headline acceptance property: for fixed endpoint seeds, the
// parallel batch output is byte-identical to the sequential path.
func TestAlignRelationsParallelMatchesSequential(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), UBSConfig()} {
		seq, _, _ := alignerWithParallelism(cfg, 1)
		want := make([][]Alignment, len(batchHeads))
		for i, r := range batchHeads {
			als, err := seq.AlignRelation(r)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = als
		}

		for _, p := range []int{2, 8} {
			par, _, _ := alignerWithParallelism(cfg, p)
			got, err := par.AlignRelations(batchHeads)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallelism %d: batch output differs from sequential:\ngot  %+v\nwant %+v", p, got, want)
			}
		}
	}
}

// Decorating the endpoints must not change the verdicts either: the
// cache answers exactly what the seeded Local would.
func TestAlignRelationsDecoratedMatchesUndecorated(t *testing.T) {
	seq, _, _ := alignerWithParallelism(UBSConfig(), 1)
	want, err := seq.AlignRelations(batchHeads)
	if err != nil {
		t.Fatal(err)
	}

	y, d, links := paperWorld()
	cfg := UBSConfig()
	cfg.Parallelism = 8
	qy := endpoint.NewCoalescing(endpoint.NewCaching(endpoint.NewLocal(y, 3), 0))
	qd := endpoint.NewCoalescing(endpoint.NewCaching(endpoint.NewLocal(d, 4), 0))
	dec := New(qy, qd, sampling.LinkView{Links: links, KIsA: true}, cfg)
	got, err := dec.AlignRelations(batchHeads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decorated batch differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// The acceptance criterion on endpoint economy: a batch over shared
// Caching+Coalescing endpoints issues strictly fewer queries than N
// independent sequential AlignRelation calls.
func TestBatchSharedCacheIssuesFewerQueries(t *testing.T) {
	heads := batchHeads[:4] // the relations that actually exist

	independent := 0
	for _, r := range heads {
		a, ky, kd := alignerWithParallelism(UBSConfig(), 1)
		if _, err := a.AlignRelation(r); err != nil {
			t.Fatal(err)
		}
		independent += ky.Stats().Queries + kd.Stats().Queries
	}

	y, d, links := paperWorld()
	cfg := UBSConfig()
	cfg.Parallelism = 8
	ky := endpoint.NewLocal(y, 3)
	kd := endpoint.NewLocal(d, 4)
	qy := endpoint.NewCoalescing(endpoint.NewCaching(ky, 0))
	qd := endpoint.NewCoalescing(endpoint.NewCaching(kd, 0))
	batch := New(qy, qd, sampling.LinkView{Links: links, KIsA: true}, cfg)
	if _, err := batch.AlignRelations(heads); err != nil {
		t.Fatal(err)
	}
	shared := ky.Stats().Queries + kd.Stats().Queries

	if shared >= independent {
		t.Fatalf("shared decorated batch issued %d queries, independent runs %d — want strictly fewer", shared, independent)
	}
	t.Logf("endpoint queries: independent=%d shared=%d (saved %d)", independent, shared, independent-shared)
}

// AlignRelations must surface the first error in input order.
func TestAlignRelationsErrorPropagation(t *testing.T) {
	y, d, links := paperWorld()
	cfg := UBSConfig()
	cfg.Parallelism = 4
	// a budget too small for the batch: some relation fails mid-flight
	ky := endpoint.NewLocalRestricted(y, 3, endpoint.Quota{MaxQueries: 5})
	kd := endpoint.NewLocal(d, 4)
	a := New(ky, kd, sampling.LinkView{Links: links, KIsA: true}, cfg)
	if _, err := a.AlignRelations(batchHeads); err == nil {
		t.Fatal("quota exhaustion did not surface")
	}
}

// Concurrent cache misses on one relation must run a single alignment:
// the query bill of 8 racing callers equals one sequential computation.
func TestCacheSingleflightsConcurrentMisses(t *testing.T) {
	ref, refY, refD := alignerWithParallelism(DefaultConfig(), 1)
	if _, err := ref.AlignRelation(yNS + "directedBy"); err != nil {
		t.Fatal(err)
	}
	oneRun := refY.Stats().Queries + refD.Stats().Queries

	a, ky, kd := alignerWithParallelism(DefaultConfig(), 1)
	c := NewCache(a)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.AlignRelation(yNS + "directedBy"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := ky.Stats().Queries + kd.Stats().Queries; got != oneRun {
		t.Fatalf("8 concurrent misses issued %d queries, one sequential run %d — duplicate work not singleflighted", got, oneRun)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// Cache.AlignRelations batches through the memo: overlapping batches
// share results, and positions match inputs.
func TestCacheAlignRelationsBatch(t *testing.T) {
	a, ky, kd := alignerWithParallelism(UBSConfig(), 4)
	c := NewCache(a)
	first, err := c.AlignRelations(batchHeads)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(batchHeads) {
		t.Fatalf("results = %d", len(first))
	}
	spent := ky.Stats().Queries + kd.Stats().Queries

	second, err := c.AlignRelations(batchHeads)
	if err != nil {
		t.Fatal(err)
	}
	if ky.Stats().Queries+kd.Stats().Queries != spent {
		t.Fatal("cached batch issued queries")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached batch differs")
	}
	if dir := find(first[1], dNS+"hasDirector"); dir == nil || !dir.Accepted {
		t.Fatalf("directedBy batch slot wrong: %+v", first[1])
	}
}
