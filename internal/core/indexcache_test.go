package core

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"sofya/internal/candidates"
	"sofya/internal/endpoint"
	"sofya/internal/sampling"
)

// d2yTarget returns the K'-side endpoint and link view of the paper
// world exactly as alignerD2Y's aligner sees them, for building sidecar
// indexes the aligner should accept.
func d2yTarget() (endpoint.Endpoint, sampling.LinkView) {
	_, d, links := paperWorld()
	return endpoint.NewLocal(d, 4), sampling.LinkView{Links: links, KIsA: true}
}

// TestIndexCacheConcurrentGet hammers one cache key from many
// goroutines (run under -race): every caller must receive the same
// index, and the build must run exactly once.
func TestIndexCacheConcurrentGet(t *testing.T) {
	target, links := d2yTarget()
	cache := NewIndexCache()

	const callers = 8
	got := make([]*candidates.Index, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ix, err := cache.Get(context.Background(), target, links, "", candidates.Options{})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			got[i] = ix
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different index instance", i)
		}
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Built != 1 || s.Loaded != 0 {
		t.Fatalf("want exactly one building miss, got %+v", s)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
	if _, err := cache.Get(context.Background(), target, links, "", candidates.Options{}); err != nil {
		t.Fatalf("warm get: %v", err)
	}
	if s := cache.Stats(); s.Hits < 1 {
		t.Fatalf("warm get not served from memory: %+v", s)
	}
}

// TestAlignersShareIndexCache points two independent aligners at one
// IndexCache: the second aligner must reuse the first's index (one
// build total) and still produce the exact-mode output.
func TestAlignersShareIndexCache(t *testing.T) {
	exact, err := alignerD2Y(UBSConfig()).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("exact align: %v", err)
	}
	cache := NewIndexCache()
	cfg := UBSConfig()
	cfg.CandidateTopK = 16
	cfg.CandidateIndexCache = cache
	for i := 0; i < 2; i++ {
		als, err := alignerD2Y(cfg).AlignRelation(yNS + "creatorOf")
		if err != nil {
			t.Fatalf("aligner %d: %v", i, err)
		}
		if !reflect.DeepEqual(als, exact) {
			t.Fatalf("aligner %d output differs from exact run", i)
		}
	}
	s := cache.Stats()
	if s.Built != 1 {
		t.Fatalf("shared cache built %d indexes for one target, want 1 (%+v)", s.Built, s)
	}
	if s.Hits < 1 {
		t.Fatalf("second aligner did not hit the shared cache: %+v", s)
	}
}

// TestAlignerSidecarRestore writes a matching candidate-index sidecar
// and checks the aligner restores it instead of sampling — and that the
// restored index prunes identically to a freshly built one.
func TestAlignerSidecarRestore(t *testing.T) {
	target, links := d2yTarget()
	rels, err := candidates.Relations(target)
	if err != nil {
		t.Fatalf("relations: %v", err)
	}
	ix, err := candidates.Build(target, rels, links, candidates.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	path := filepath.Join(t.TempDir(), "dbpedia-candidates.idx")
	if err := ix.WriteIndexFile(path); err != nil {
		t.Fatalf("write sidecar: %v", err)
	}

	cfg := UBSConfig()
	cfg.CandidateTopK = 16
	built, err := alignerD2Y(cfg).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("built-index align: %v", err)
	}

	cache := NewIndexCache()
	cfg.CandidateIndexCache = cache
	cfg.CandidateIndexPath = path
	restored, err := alignerD2Y(cfg).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("sidecar align: %v", err)
	}
	if !reflect.DeepEqual(restored, built) {
		t.Fatal("sidecar-restored index aligns differently from built index")
	}
	s := cache.Stats()
	if s.Loaded != 1 || s.Built != 0 {
		t.Fatalf("want the index restored from the sidecar, got %+v", s)
	}
}

// TestAlignerStaleSidecarFallsBack points the aligner at a sidecar
// built under different options: the fingerprint mismatch must be
// detected and the index rebuilt with the aligner's own options, never
// served from the stale file.
func TestAlignerStaleSidecarFallsBack(t *testing.T) {
	target, links := d2yTarget()
	rels, err := candidates.Relations(target)
	if err != nil {
		t.Fatalf("relations: %v", err)
	}
	stale, err := candidates.Build(target, rels, links, candidates.Options{SampleSize: 3})
	if err != nil {
		t.Fatalf("build stale: %v", err)
	}
	path := filepath.Join(t.TempDir(), "dbpedia-candidates.idx")
	if err := stale.WriteIndexFile(path); err != nil {
		t.Fatalf("write sidecar: %v", err)
	}

	cache := NewIndexCache()
	cfg := UBSConfig()
	cfg.CandidateTopK = 16
	cfg.CandidateIndexCache = cache
	cfg.CandidateIndexPath = path
	als, err := alignerD2Y(cfg).AlignRelation(yNS + "creatorOf")
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	if len(als) == 0 {
		t.Fatal("no alignments")
	}
	s := cache.Stats()
	if s.Built != 1 || s.Loaded != 0 {
		t.Fatalf("stale sidecar must force a rebuild, got %+v", s)
	}
}

// TestIndexCacheCachesErrors checks a failing target is computed once,
// the error replayed from memory, and Invalidate clears the way for a
// retry.
func TestIndexCacheCachesErrors(t *testing.T) {
	target, links := d2yTarget()
	cache := NewIndexCache()
	bad := candidates.Options{}
	// Fail the first computation by cancelling its build.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.Get(ctx, target, links, "", bad); err == nil {
		t.Fatal("cancelled build did not fail")
	}
	if _, err := cache.Get(context.Background(), target, links, "", bad); err == nil {
		t.Fatal("error was not cached")
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("want one miss then one (error) hit, got %+v", s)
	}
	cache.Invalidate()
	if _, err := cache.Get(context.Background(), target, links, "", bad); err != nil {
		t.Fatalf("retry after Invalidate: %v", err)
	}
	if s := cache.Stats(); s.Built != 1 {
		t.Fatalf("retry did not rebuild: %+v", s)
	}
}
