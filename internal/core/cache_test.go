package core

import (
	"sync"
	"testing"

	"sofya/internal/endpoint"
	"sofya/internal/sampling"
)

func TestCacheMemoizes(t *testing.T) {
	y, d, links := paperWorld()
	ky := endpoint.NewLocal(y, 3)
	kd := endpoint.NewLocal(d, 4)
	a := New(ky, kd, sampling.LinkView{Links: links, KIsA: true}, DefaultConfig())
	c := NewCache(a)

	first, err := c.AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	queriesAfterFirst := ky.Stats().Queries + kd.Stats().Queries

	second, err := c.AlignRelation(yNS + "directedBy")
	if err != nil {
		t.Fatal(err)
	}
	if ky.Stats().Queries+kd.Stats().Queries != queriesAfterFirst {
		t.Fatal("cached call issued queries")
	}
	if len(first) != len(second) {
		t.Fatal("cached result differs")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}

	c.Invalidate(yNS + "directedBy")
	if c.Len() != 0 {
		t.Fatal("Invalidate did not drop entry")
	}
	if _, err := c.AlignRelation(yNS + "directedBy"); err != nil {
		t.Fatal(err)
	}
	if ky.Stats().Queries+kd.Stats().Queries == queriesAfterFirst {
		t.Fatal("recompute after Invalidate issued no queries")
	}

	c.AlignRelation(yNS + "creatorOf")
	c.Invalidate("")
	if c.Len() != 0 {
		t.Fatal("Invalidate all failed")
	}
}

func TestCacheConcurrent(t *testing.T) {
	y, d, links := paperWorld()
	a := New(endpoint.NewLocal(y, 3), endpoint.NewLocal(d, 4),
		sampling.LinkView{Links: links, KIsA: true}, DefaultConfig())
	c := NewCache(a)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := c.AlignRelation(yNS + "directedBy"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheCachesErrors(t *testing.T) {
	y, d, links := paperWorld()
	// a one-query budget: first alignment exhausts it mid-flight
	ky := endpoint.NewLocalRestricted(y, 3, endpoint.Quota{MaxQueries: 1})
	kd := endpoint.NewLocal(d, 4)
	a := New(ky, kd, sampling.LinkView{Links: links, KIsA: true}, DefaultConfig())
	c := NewCache(a)
	_, err1 := c.AlignRelation(yNS + "directedBy")
	if err1 == nil {
		t.Fatal("expected quota error")
	}
	denied := ky.Stats().Denied
	_, err2 := c.AlignRelation(yNS + "directedBy")
	if err2 == nil {
		t.Fatal("cached error lost")
	}
	if ky.Stats().Denied != denied {
		t.Fatal("cached error call hit the endpoint again")
	}
}
