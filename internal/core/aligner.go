package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sofya/internal/candidates"
	"sofya/internal/endpoint"
	"sofya/internal/ilp"
	"sofya/internal/rdf"
	"sofya/internal/sampling"
	"sofya/internal/sparql"
)

// Query templates of the aligner's own probe sites. Like the sampling
// templates they are prepared once per aligner and bound per stage, so
// the thousands of structurally identical probes an alignment fires
// skip query construction, parsing and planning entirely.
const (
	// tmplPredsBetween asks which predicates connect two entities —
	// the discovery stage's entity probe and, mirrored onto K, the
	// head-sibling (equivalence) probe.
	tmplPredsBetween = "SELECT ?p WHERE { $x ?p $y }"
	// tmplLiteralAttrs scans an entity's literal attributes for the
	// discovery stage's literal matcher.
	tmplLiteralAttrs = "SELECT ?p ?v WHERE { $x ?p ?v . FILTER ISLITERAL(?v) }"
)

// Alignment is the aligner's verdict on one candidate rule r' ⇒ r.
type Alignment struct {
	// Rule is the subsumption hypothesis (body in K', head in K).
	Rule ilp.Rule
	// Accepted reports whether the rule passed threshold, support and
	// UBS pruning.
	Accepted bool
	// Confidence is the configured measure's value; PCA and CWA carry
	// both measures for inspection.
	Confidence float64
	PCA, CWA   float64
	// Support and Evidence are the confirming pairs and the total
	// sampled pairs.
	Support, Evidence int
	// DiscoveryHits is how many discovery pairs the candidate
	// co-occurred with.
	DiscoveryHits int
	// Contradictions counts UBS counter-examples against this rule
	// across all sibling pairs; UBSRows counts the overlap rows
	// inspected with this rule as the prune target. Pruning is decided
	// per sibling pair (see PrunedByUBS); the totals are reported for
	// inspection.
	Contradictions int
	UBSRows        int
	// PrunedByUBS records that some sibling pair produced at least
	// Config.MinContradictions counter-examples covering at least
	// Config.UBSContradictionRatio of that pair's rows.
	PrunedByUBS bool
	// ReverseContradictions counts UBS counter-examples against the
	// reverse rule r ⇒ r' out of ReverseUBSRows inspected;
	// ReverseRefuted is the per-pair demotion verdict.
	ReverseContradictions int
	ReverseUBSRows        int
	ReverseRefuted        bool
	// Equivalent reports that the reverse rule was also validated
	// (only meaningful when Config.CheckEquivalence is set).
	Equivalent bool
	// ReverseConfidence is the reverse rule's confidence when
	// CheckEquivalence ran.
	ReverseConfidence float64
}

// Aligner aligns relations of a source KB K against a target KB K'.
// It is deterministic for fixed endpoint seeds.
type Aligner struct {
	cfg Config
	val *sampling.Validator
	// sem admits endpoint-bound stage tasks; its capacity
	// (Config.Parallelism) is the aligner-wide concurrency bound shared
	// by every pipeline stage of every concurrently aligning relation.
	sem chan struct{}
	// names label the KBs in emitted rules.
	kName, kPrimeName string

	// prepared probe templates, compiled once in New and bound per
	// stage; prepErr surfaces a failed Prepare at alignment time.
	pDiscover     endpoint.PreparedQuery // on K: sampling.TmplSample
	pEntityPreds  endpoint.PreparedQuery // on K': tmplPredsBetween
	pLiteralAttrs endpoint.PreparedQuery // on K': tmplLiteralAttrs
	pHeadPreds    endpoint.PreparedQuery // on K: tmplPredsBetween
	prepErr       error

	// flipped validates reverse rules r ⇒ r' (roles of K and K'
	// swapped); built once so its prepared probes are shared by every
	// equivalence check.
	flipped *sampling.Validator

	// candidate-generation index (Config.CandidateTopK > 0), built
	// lazily on first alignment so aligners that never align do not pay
	// the per-target-relation sampling pass.
	candOnce   sync.Once
	candErr    error
	candProber *candidates.Prober
}

// New builds an aligner from the head-side endpoint k (the KB whose
// relation arrives in a query), the body-side endpoint kprime (the KB
// to align against), and the sameAs translator between them.
func New(k, kprime endpoint.Endpoint, links sampling.Translator, cfg Config) *Aligner {
	cfg = cfg.normalized()
	a := &Aligner{
		cfg: cfg,
		sem: make(chan struct{}, cfg.Parallelism),
		val: &sampling.Validator{
			K:           k,
			KPrime:      kprime,
			Links:       links,
			Matcher:     cfg.Matcher,
			FetchWindow: cfg.FetchWindow,
		},
		flipped: &sampling.Validator{
			K:           kprime,
			KPrime:      k,
			Links:       flipTranslator{links},
			Matcher:     cfg.Matcher,
			FetchWindow: cfg.FetchWindow,
		},
		kName:      k.Name(),
		kPrimeName: kprime.Name(),
	}
	prep := func(ep endpoint.Endpoint, tmpl string, params ...string) endpoint.PreparedQuery {
		if a.prepErr != nil {
			return nil
		}
		pq, err := ep.Prepare(tmpl, params...)
		if err != nil {
			a.prepErr = fmt.Errorf("core: preparing probe against %s: %w", ep.Name(), err)
		}
		return pq
	}
	a.pDiscover = prep(k, sampling.TmplSample, "r", "n")
	a.pEntityPreds = prep(kprime, tmplPredsBetween, "x", "y")
	a.pLiteralAttrs = prep(kprime, tmplLiteralAttrs, "x")
	a.pHeadPreds = prep(k, tmplPredsBetween, "x", "y")
	return a
}

// Config returns the aligner's (normalized) configuration.
func (a *Aligner) Config() Config { return a.cfg }

func (a *Aligner) tracef(format string, args ...any) {
	if a.cfg.Trace != nil {
		a.cfg.Trace(format, args...)
	}
}

// candidate tracks one discovered relation during alignment.
type candidate struct {
	rel  string
	hits int
	ev   *ilp.Evidence
	set  *sampling.SampleSet
}

// AlignRelation finds relations r' of K' with r'(x,y) ⇒ r(x,y), for r a
// relation IRI of K. It returns every validated candidate (accepted or
// not), ordered by decreasing confidence.
//
// The alignment runs as an explicit pipeline — discover → validate →
// UBS → equivalence — whose fan-out stages (per-candidate validation,
// per-sibling-pair contradiction checks, per-rule equivalence tests)
// execute on a worker pool bounded by Config.Parallelism. Results are
// collected by index, so the output is identical to the sequential run
// for deterministic endpoints.
func (a *Aligner) AlignRelation(r string) ([]Alignment, error) {
	allowed, err := a.prune(r)
	if err != nil {
		return nil, err
	}
	return a.AlignRelationWithin(r, allowed)
}

// AlignRelationWithin is AlignRelation with an injected candidate
// universe: only target relations in allowed survive discovery (nil
// means unrestricted). The experiments' differential harness uses it to
// run the alignment pipeline over an externally computed candidate set;
// AlignRelation itself passes the candidate index's top-k when
// Config.CandidateTopK is on.
func (a *Aligner) AlignRelationWithin(r string, allowed map[string]bool) ([]Alignment, error) {
	if a.prepErr != nil {
		return nil, a.prepErr
	}
	cands, err := a.discover(r, allowed)
	if err != nil {
		return nil, err
	}
	if err := a.validate(r, cands); err != nil {
		return nil, err
	}
	out, aligns := a.score(r, cands)
	if a.cfg.UseUBS {
		if err := a.applyUBS(r, cands, aligns); err != nil {
			return nil, err
		}
	}
	if a.cfg.CheckEquivalence {
		if err := a.checkEquivalences(r, out); err != nil {
			return nil, err
		}
	}
	sortAlignments(out)
	return out, nil
}

// validate runs Simple Sample Extraction for every discovered
// candidate, fanning the per-candidate endpoint work out over the
// worker pool.
func (a *Aligner) validate(r string, cands []*candidate) error {
	return a.runStage(len(cands), func(i int) error {
		c := cands[i]
		ev, set, err := a.val.SimpleEvidence(c.rel, r, a.cfg.SampleSize)
		if err != nil {
			return fmt.Errorf("core: validating %s ⇒ %s: %w", c.rel, r, err)
		}
		c.ev, c.set = ev, set
		return nil
	})
}

// score turns validated candidates into Alignments and applies the
// confidence threshold and support gates. Pure computation — no
// endpoint traffic.
func (a *Aligner) score(r string, cands []*candidate) ([]Alignment, map[string]*Alignment) {
	out := make([]Alignment, 0, len(cands))
	aligns := make(map[string]*Alignment, len(cands))
	for _, c := range cands {
		al := Alignment{
			Rule: ilp.Rule{
				BodyKB: a.kPrimeName, HeadKB: a.kName,
				Body: c.rel, Head: r,
			},
			PCA:           c.ev.PCAConf(),
			CWA:           c.ev.CWAConf(),
			Support:       c.ev.Support(),
			Evidence:      c.ev.Total(),
			DiscoveryHits: c.hits,
		}
		al.Confidence = a.cfg.Measure.Conf(c.ev)
		al.Accepted = al.Confidence >= a.cfg.Threshold && al.Support >= a.cfg.MinSupport
		out = append(out, al)
		aligns[c.rel] = &out[len(out)-1]
	}
	return out, aligns
}

// sortAlignments orders accepted-first, then by decreasing confidence,
// then by body IRI.
func sortAlignments(out []Alignment) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Accepted != out[j].Accepted {
			return out[i].Accepted
		}
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Rule.Body < out[j].Rule.Body
	})
}

// discoveryProbe is one K'-side co-occurrence query of the discovery
// stage: an entity probe (which predicates connect the translated
// pair?) or, when lit is a literal, a literal scan matched against it.
// exec runs the bound prepared query.
type discoveryProbe struct {
	exec func() (*sparql.Result, error)
	lit  rdf.Term
}

// discoverProbes pulls the discovery sample stream until DiscoverySize
// translatable probes are collected, then closes it — rows past that
// point are never pulled from the endpoint.
func (a *Aligner) discoverProbes(r string, window int) ([]discoveryProbe, error) {
	rows, err := a.pDiscover.Stream(context.Background(), sparql.IRIArg(r), sparql.IntArg(window))
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var probes []discoveryProbe
	for len(probes) < a.cfg.DiscoverySize && rows.Next() {
		row := rows.Row()
		x, y := row[0], row[1]
		if !x.IsIRI() {
			continue
		}
		xp, ok := a.val.Links.FromK(x.Value)
		if !ok {
			continue
		}
		switch {
		case y.IsIRI():
			yp, ok := a.val.Links.FromK(y.Value)
			if !ok {
				continue
			}
			probes = append(probes, discoveryProbe{
				exec: func() (*sparql.Result, error) {
					return a.pEntityPreds.Select(sparql.IRIArg(xp), sparql.IRIArg(yp))
				},
			})
		case y.IsLiteral():
			if a.cfg.Matcher == nil {
				continue
			}
			probes = append(probes, discoveryProbe{
				exec: func() (*sparql.Result, error) {
					return a.pLiteralAttrs.Select(sparql.IRIArg(xp))
				},
				lit: y,
			})
		}
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return probes, nil
}

// discover samples r-facts from K, translates them into K', and
// collects candidate predicates by co-occurrence. The sample window is
// consumed as a stream: once DiscoverySize translatable probes are
// found, the stream closes and the endpoint stops producing — the
// window rows past that point are never materialized. The collected
// probes then fan out over the worker pool; hit counts merge
// commutatively, so the result is independent of probe completion
// order.
// ensureCandidates obtains the candidate index over the target
// inventory, once per aligner: from Config.CandidateIndexCache when one
// is shared (so co-targeted aligners resolve the index once), through a
// private cache otherwise — the cache handles sidecar restore and the
// build fallback either way. The resolution holds one admission-gate
// slot like any endpoint-bound stage; a build fans its sampling out
// over its own Config.Parallelism-bounded pool, which stands in for the
// gate during this one-time pass.
func (a *Aligner) ensureCandidates() (*candidates.Prober, error) {
	a.candOnce.Do(func() {
		a.sem <- struct{}{}
		defer func() { <-a.sem }()
		cache := a.cfg.CandidateIndexCache
		if cache == nil {
			cache = NewIndexCache()
			cache.Trace = a.cfg.Trace
		}
		ix, err := cache.Get(context.Background(), a.val.KPrime, a.val.Links, a.cfg.CandidateIndexPath, candidates.Options{
			SampleSize:  a.cfg.CandidateSampleSize,
			MaxPostings: a.cfg.CandidateMaxPostings,
			Parallelism: a.cfg.Parallelism,
		})
		if err != nil {
			a.candErr = err
			return
		}
		a.candProber, a.candErr = candidates.NewProber(ix, a.val.K)
	})
	return a.candProber, a.candErr
}

// prune computes the allowed candidate set for r from the candidate
// index — or nil (no restriction) when pruning is off.
func (a *Aligner) prune(r string) (map[string]bool, error) {
	if a.cfg.CandidateTopK <= 0 {
		return nil, nil
	}
	prober, err := a.ensureCandidates()
	if err != nil {
		return nil, fmt.Errorf("core: candidate index: %w", err)
	}
	a.sem <- struct{}{}
	top, err := prober.TopK(r, a.cfg.CandidateTopK)
	<-a.sem
	if err != nil {
		return nil, fmt.Errorf("core: candidate probe for <%s>: %w", r, err)
	}
	allowed := make(map[string]bool, len(top))
	for _, c := range top {
		allowed[c.Rel] = true
	}
	a.tracef("candidates: top-%d pruned universe for %s holds %d relations",
		a.cfg.CandidateTopK, r, len(allowed))
	return allowed, nil
}

func (a *Aligner) discover(r string, allowed map[string]bool) ([]*candidate, error) {
	window := a.cfg.FetchWindow
	if window <= 0 {
		window = 40 * a.cfg.DiscoverySize
		if window < 200 {
			window = 200
		}
	}
	// the sample stream occupies an endpoint like any stage task
	a.sem <- struct{}{}
	probes, err := a.discoverProbes(r, window)
	<-a.sem
	if err != nil {
		return nil, fmt.Errorf("core: discovery sample for <%s>: %w", r, err)
	}

	partial := make([]map[string]int, len(probes))
	err = a.runStage(len(probes), func(i int) error {
		p := probes[i]
		pres, err := p.exec()
		if err != nil {
			return err
		}
		h := map[string]int{}
		for _, prow := range pres.Rows {
			if !prow[0].IsIRI() {
				continue
			}
			if p.lit.IsLiteral() {
				if ok, _ := a.cfg.Matcher.Match(p.lit, prow[1]); ok {
					h[prow[0].Value]++
				}
			} else {
				h[prow[0].Value]++
			}
		}
		partial[i] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	hits := map[string]int{}
	for _, h := range partial {
		for rel, n := range h {
			if allowed != nil && !allowed[rel] {
				continue
			}
			hits[rel] += n
		}
	}

	cands := make([]*candidate, 0, len(hits))
	for rel, h := range hits {
		cands = append(cands, &candidate{rel: rel, hits: h})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits > cands[j].hits
		}
		return cands[i].rel < cands[j].rel
	})
	if len(cands) > a.cfg.MaxCandidates {
		cands = cands[:a.cfg.MaxCandidates]
	}
	return cands, nil
}

// applyUBS runs both contradiction-search strategies and prunes. The
// endpoint-heavy contradiction searches fan out over the worker pool;
// their results are applied sequentially in pair order, so the
// aggregated counters and verdicts match the sequential run exactly.
func (a *Aligner) applyUBS(r string, cands []*candidate, aligns map[string]*Alignment) error {
	// provisional = accepted so far (confidence+support); only those
	// are worth the extra queries.
	var provisional []*candidate
	for _, c := range cands {
		if aligns[c.rel].Accepted && a.entityCandidate(c) {
			provisional = append(provisional, c)
		}
	}

	if a.cfg.UBSBodySiblings {
		type bodyPair struct{ rA, rB string }
		var pairs []bodyPair
		for i := 0; i < len(provisional); i++ {
			for j := 0; j < len(provisional); j++ {
				if i != j {
					pairs = append(pairs, bodyPair{provisional[i].rel, provisional[j].rel})
				}
			}
		}
		results := make([]*sampling.UBSResult, len(pairs))
		err := a.runStage(len(pairs), func(k int) error {
			res, err := a.val.Contradictions(sampling.BodySide, pairs[k].rA, pairs[k].rB, r, a.cfg.UBSSampleSize)
			if err != nil {
				return err
			}
			results[k] = res
			return nil
		})
		if err != nil {
			return err
		}
		for k, p := range pairs {
			res := results[k]
			rA, rB := p.rA, p.rB
			// rows refute rB ⇒ r (subsumption) and r ⇒ rA (reverse)
			aligns[rB].Contradictions += res.CounterSubsumption()
			aligns[rB].UBSRows += len(res.Rows)
			if a.pairRefutes(res.CounterSubsumption(), len(res.Rows)) {
				aligns[rB].PrunedByUBS = true
				a.tracef("UBS body-pair (%s, %s) refutes %s ⇒ %s: %d/%d rows",
					rA, rB, rB, r, res.CounterSubsumption(), len(res.Rows))
			}
			aligns[rA].ReverseContradictions += res.CounterReverse()
			aligns[rA].ReverseUBSRows += len(res.Rows)
			if a.pairRefutes(res.CounterReverse(), len(res.Rows)) {
				aligns[rA].ReverseRefuted = true
			}
		}
	}

	if a.cfg.UBSHeadSiblings {
		type headOutcome struct {
			siblings []string
			results  []*sampling.UBSResult
		}
		outcomes := make([]headOutcome, len(provisional))
		err := a.runStage(len(provisional), func(i int) error {
			c := provisional[i]
			siblings, err := a.headSiblings(r, c)
			if err != nil {
				return err
			}
			results := make([]*sampling.UBSResult, len(siblings))
			for k, z := range siblings {
				res, err := a.val.Contradictions(sampling.HeadSide, r, z, c.rel, a.cfg.UBSSampleSize)
				if err != nil {
					return err
				}
				results[k] = res
			}
			outcomes[i] = headOutcome{siblings: siblings, results: results}
			return nil
		})
		if err != nil {
			return err
		}
		for i, c := range provisional {
			for k, z := range outcomes[i].siblings {
				res := outcomes[i].results[k]
				// rows with check(x,y2) refute c.rel ⇒ r
				aligns[c.rel].Contradictions += res.CounterReverse()
				aligns[c.rel].UBSRows += len(res.Rows)
				if a.pairRefutes(res.CounterReverse(), len(res.Rows)) {
					aligns[c.rel].PrunedByUBS = true
					a.tracef("UBS head-pair (%s, %s) refutes %s ⇒ %s: %d/%d rows",
						r, z, c.rel, r, res.CounterReverse(), len(res.Rows))
				}
			}
		}
	}

	for _, c := range cands {
		if aligns[c.rel].PrunedByUBS {
			aligns[c.rel].Accepted = false
		}
	}
	return nil
}

// pairRefutes applies the contradiction gate to one sibling pair's
// result: an absolute minimum of counter-examples plus a minimum
// fraction of the pair's inspected rows (residual cross-KB value noise
// produces isolated counter-examples even for true rules, because the
// overlap query adversely selects disagreement).
func (a *Aligner) pairRefutes(contradictions, rows int) bool {
	if contradictions < a.cfg.MinContradictions {
		return false
	}
	return float64(contradictions) >= a.cfg.UBSContradictionRatio*float64(rows)
}

// entityCandidate reports whether the candidate's sampled objects are
// entities (UBS applies only to entity-entity relations).
func (a *Aligner) entityCandidate(c *candidate) bool {
	if c.set == nil || len(c.set.Facts) == 0 {
		return false
	}
	return c.set.Facts[0].Y.IsIRI()
}

// headSiblings discovers relations z of K (z ≠ r) that also cover the
// candidate's translated sample pairs — the sibling set for the
// mirrored UBS strategy.
func (a *Aligner) headSiblings(r string, c *candidate) ([]string, error) {
	counts := map[string]int{}
	checked := 0
	for _, f := range c.set.Facts {
		if checked >= a.cfg.UBSSampleSize {
			break
		}
		if !f.Y.IsIRI() {
			continue
		}
		checked++
		rows, err := a.pHeadPreds.Stream(context.Background(), sparql.IRIArg(f.X), sparql.IRIArg(f.Y.Value))
		if err != nil {
			return nil, err
		}
		for rows.Next() {
			row := rows.Row()
			if row[0].IsIRI() && row[0].Value != r {
				counts[row[0].Value]++
			}
		}
		if err := rows.Err(); err != nil {
			return nil, err
		}
	}
	type sib struct {
		rel string
		n   int
	}
	sibs := make([]sib, 0, len(counts))
	for rel, n := range counts {
		sibs = append(sibs, sib{rel, n})
	}
	sort.Slice(sibs, func(i, j int) bool {
		if sibs[i].n != sibs[j].n {
			return sibs[i].n > sibs[j].n
		}
		return sibs[i].rel < sibs[j].rel
	})
	if len(sibs) > a.cfg.UBSMaxSiblings {
		sibs = sibs[:a.cfg.UBSMaxSiblings]
	}
	out := make([]string, len(sibs))
	for i, s := range sibs {
		out[i] = s.rel
	}
	return out, nil
}

// checkEquivalences validates the reverse rule r ⇒ r' for accepted
// alignments through the aligner's flipped validator (roles of K and
// K' swapped), one worker-pool task per accepted rule. Each task
// writes only its own Alignment, so no collection step is needed.
func (a *Aligner) checkEquivalences(r string, out []Alignment) error {
	flipped := a.flipped
	var accepted []int
	for i := range out {
		if out[i].Accepted {
			accepted = append(accepted, i)
		}
	}
	return a.runStage(len(accepted), func(k int) error {
		al := &out[accepted[k]]
		ev, _, err := flipped.SimpleEvidence(r, al.Rule.Body, a.cfg.SampleSize)
		if err != nil {
			return err
		}
		al.ReverseConfidence = a.cfg.Measure.Conf(ev)
		al.Equivalent = al.ReverseConfidence >= a.cfg.Threshold &&
			ev.Support() >= a.cfg.MinSupport &&
			!al.ReverseRefuted
		return nil
	})
}

// flipTranslator swaps the directions of a Translator.
type flipTranslator struct{ t sampling.Translator }

func (f flipTranslator) ToK(x string) (string, bool)   { return f.t.FromK(x) }
func (f flipTranslator) FromK(x string) (string, bool) { return f.t.ToK(x) }

// Accepted filters alignments down to the accepted ones.
func Accepted(all []Alignment) []Alignment {
	out := make([]Alignment, 0, len(all))
	for _, al := range all {
		if al.Accepted {
			out = append(out, al)
		}
	}
	return out
}
