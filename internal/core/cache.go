package core

import "sync"

// Cache memoizes AlignRelation results so that repeated queries over
// the same relation — the common case at query time — pay the sampling
// cost once per session. It is safe for concurrent use.
type Cache struct {
	aligner *Aligner

	mu      sync.Mutex
	results map[string]cached
}

type cached struct {
	als []Alignment
	err error
}

// NewCache wraps an aligner with memoization.
func NewCache(a *Aligner) *Cache {
	return &Cache{aligner: a, results: make(map[string]cached)}
}

// AlignRelation returns the memoized alignment for r, computing it on
// first use. Errors are cached too: a failing endpoint will not be
// hammered by retries within a session; call Invalidate to retry.
func (c *Cache) AlignRelation(r string) ([]Alignment, error) {
	c.mu.Lock()
	if got, ok := c.results[r]; ok {
		c.mu.Unlock()
		return got.als, got.err
	}
	c.mu.Unlock()

	als, err := c.aligner.AlignRelation(r)
	c.mu.Lock()
	defer c.mu.Unlock()
	// a concurrent caller may have stored meanwhile; keep the first
	// result for determinism.
	if got, ok := c.results[r]; ok {
		return got.als, got.err
	}
	c.results[r] = cached{als: als, err: err}
	return als, err
}

// Invalidate drops the cached result for r (all relations when r is
// empty).
func (c *Cache) Invalidate(r string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r == "" {
		c.results = make(map[string]cached)
		return
	}
	delete(c.results, r)
}

// Len reports how many relations are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}
