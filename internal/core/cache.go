package core

import (
	"sync"

	"sofya/internal/flight"
)

// Cache memoizes AlignRelation results so that repeated queries over
// the same relation — the common case at query time — pay the sampling
// cost once per session. It is safe for concurrent use, and concurrent
// misses on the same relation are singleflighted: one caller runs the
// (expensive) alignment while the others wait for its result.
type Cache struct {
	aligner *Aligner
	group   flight.Group[string, cached]

	mu      sync.Mutex
	results map[string]cached
}

type cached struct {
	als []Alignment
	err error
}

// NewCache wraps an aligner with memoization.
func NewCache(a *Aligner) *Cache {
	return &Cache{aligner: a, results: make(map[string]cached)}
}

// AlignRelation returns the memoized alignment for r, computing it on
// first use. Errors are cached too: a failing endpoint will not be
// hammered by retries within a session; call Invalidate to retry.
func (c *Cache) AlignRelation(r string) ([]Alignment, error) {
	c.mu.Lock()
	if got, ok := c.results[r]; ok {
		c.mu.Unlock()
		return got.als, got.err
	}
	c.mu.Unlock()

	// Miss: compute through the singleflight group so that concurrent
	// misses on the same relation run one alignment. The computation
	// stores its outcome (error included) before releasing the waiters;
	// flightErr is only non-nil if the aligner panicked.
	got, flightErr, _ := c.group.Do(r, func() (cached, error) {
		als, err := c.aligner.AlignRelation(r)
		got := cached{als: als, err: err}
		c.mu.Lock()
		c.results[r] = got
		c.mu.Unlock()
		return got, nil
	})
	if flightErr != nil {
		return nil, flightErr
	}
	return got.als, got.err
}

// AlignRelations is the batch variant: it aligns every relation in rs
// through the cache, scheduling up to the aligner's Parallelism
// relations concurrently. Cached relations cost nothing, in-flight ones
// are joined, and the rest compute once each. Results positionally
// match rs; the first error (in rs order) aborts.
func (c *Cache) AlignRelations(rs []string) ([][]Alignment, error) {
	out := make([][]Alignment, len(rs))
	err := runIndexed(c.aligner.cfg.Parallelism, len(rs), func(i int) error {
		als, err := c.AlignRelation(rs[i])
		if err != nil {
			return err
		}
		out[i] = als
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Invalidate drops the cached result for r (all relations when r is
// empty).
func (c *Cache) Invalidate(r string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r == "" {
		c.results = make(map[string]cached)
		return
	}
	delete(c.results, r)
}

// Len reports how many relations are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}
