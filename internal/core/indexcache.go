package core

import (
	"context"
	"fmt"
	"sync"

	"sofya/internal/candidates"
	"sofya/internal/endpoint"
	"sofya/internal/flight"
)

// IndexCache shares candidate-generation indexes across aligners. The
// index over a target inventory is pure function of that inventory and
// the build options, so N aligners pointed at the same target — one per
// serving goroutine, one per experiment arm — have no reason to pay the
// per-relation sampling pass N times. A process-wide cache (handed to
// each aligner via Config.CandidateIndexCache) builds or loads each
// distinct index once; concurrent first requests are singleflighted,
// exactly like Cache does for alignments.
//
// Entries are keyed by target name, sidecar path, and the options
// fingerprint (candidates.Fingerprint — which excludes the build-shape
// Parallelism field, so aligners differing only in parallelism share an
// entry). Errors are cached like results: a target whose inventory
// query fails is not hammered by every aligner in turn; call Invalidate
// to retry. The zero value is ready to use.
type IndexCache struct {
	group flight.Group[string, idxCached]

	// Trace, when non-nil, receives printf-style diagnostics about
	// loads, builds and fallbacks. Set it before the first Get.
	Trace func(format string, args ...any)

	mu      sync.Mutex
	results map[string]idxCached
	stats   IndexCacheStats
}

type idxCached struct {
	ix  *candidates.Index
	err error
}

// IndexCacheStats counts how Get calls were served.
type IndexCacheStats struct {
	// Hits are calls answered from memory; Misses are calls that ran
	// the load-or-build path (callers joining an in-flight computation
	// count as neither).
	Hits, Misses int
	// Loaded and Built split the misses by how the index materialized:
	// restored from a sidecar vs built by sampling the target.
	Loaded, Built int
}

// NewIndexCache returns an empty cache. (The zero value works too; the
// constructor exists for symmetry with NewCache.)
func NewIndexCache() *IndexCache { return &IndexCache{} }

// Get returns the candidate index for target under the given options,
// computing it on first use: the target inventory is listed, then the
// sidecar at path is restored if its fingerprint matches, and the index
// is built by sampling otherwise (candidates.LoadOrBuild). An empty
// path always builds. Concurrent first calls for the same key share one
// computation.
func (c *IndexCache) Get(ctx context.Context, target endpoint.Endpoint, links candidates.Translator, path string, opt candidates.Options) (*candidates.Index, error) {
	key := fmt.Sprintf("%s\x00%s\x00%016x", target.Name(), path, candidates.Fingerprint(nil, opt))
	c.mu.Lock()
	if got, ok := c.results[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return got.ix, got.err
	}
	c.mu.Unlock()

	got, flightErr, _ := c.group.Do(key, func() (idxCached, error) {
		got := c.compute(ctx, target, links, path, opt)
		c.mu.Lock()
		if c.results == nil {
			c.results = make(map[string]idxCached)
		}
		c.results[key] = got
		c.mu.Unlock()
		return got, nil
	})
	if flightErr != nil {
		return nil, flightErr
	}
	return got.ix, got.err
}

// compute runs the inventory + load-or-build path and keeps the stats.
func (c *IndexCache) compute(ctx context.Context, target endpoint.Endpoint, links candidates.Translator, path string, opt candidates.Options) idxCached {
	rels, err := candidates.Relations(target)
	if err != nil {
		c.note(func(s *IndexCacheStats) { s.Misses++ })
		return idxCached{err: err}
	}
	ix, loaded, err := candidates.LoadOrBuild(ctx, path, target, rels, links, opt)
	c.note(func(s *IndexCacheStats) {
		s.Misses++
		switch {
		case err != nil:
		case loaded:
			s.Loaded++
		default:
			s.Built++
		}
	})
	switch {
	case err != nil:
		return idxCached{err: err}
	case loaded:
		c.tracef("candidates: index for %s restored from %s (%d relations)", target.Name(), path, ix.Len())
	case path != "":
		c.tracef("candidates: sidecar %s unusable or stale, built index for %s (%d relations)", path, target.Name(), ix.Len())
	default:
		c.tracef("candidates: built index for %s (%d relations)", target.Name(), ix.Len())
	}
	if g, d := ix.TruncationStats(); err == nil && d > 0 {
		c.tracef("candidates: posting cap %d truncated %d grams, dropped %d postings", ix.Options().MaxPostings, g, d)
	}
	return idxCached{ix: ix}
}

func (c *IndexCache) note(f func(*IndexCacheStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

func (c *IndexCache) tracef(format string, args ...any) {
	if c.Trace != nil {
		c.Trace(format, args...)
	}
}

// Stats returns a snapshot of the serving counters.
func (c *IndexCache) Stats() IndexCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Invalidate drops every cached index (and cached error), forcing the
// next Get of each key to recompute.
func (c *IndexCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results = nil
}

// Len reports how many distinct indexes (or cached failures) are held.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}
